// google-benchmark microbenchmarks for the CPU kernels underlying the
// join operators: edit distance (full and banded), the sliding-window
// trackers, PAA, MBR MINDIST, prediction-matrix construction, the
// clustering algorithms, and the serial-vs-parallel cluster-join executor
// sweep. These guard the constants behind the CPU cost model
// (common/cost_model.h).
//
// The binary also carries four harness sweeps run before the
// google-benchmark suite: the distance-kernel sweep (scalar reference vs
// the batched kernel layer, per norm x dims), the file-backend
// cluster-join sweep (sync vs async read pipeline, wall-clock), the
// kNN-join sweep (adaptive-eps pruning vs brute-force page expansion at
// k = 8), and the sharding sweep (cut weight, replication, and modeled
// per-shard I/O efficiency at 1/2/4/8 shards). In --json mode the
// sweeps' rows are mirrored to BENCH_kernels.json so CI's bench-smoke
// job can diff them against bench/BENCH_kernels.baseline.json with
// tools/bench_compare.py.

#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "geom/distance.h"
#include "geom/distance_kernels.h"
#include "harness/bench_util.h"
#include "common/thread_pool.h"
#include "core/cost_clustering.h"
#include "core/executor.h"
#include "core/joiners.h"
#include "core/knn_join.h"
#include "core/plane_sweep.h"
#include "core/scheduler.h"
#include "core/shard_coordinator.h"
#include "core/shard_planner.h"
#include "core/square_clustering.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "geom/mbr.h"
#include "io/buffer_pool.h"
#include "io/file_backend.h"
#include "io/simulated_disk.h"
#include "io/storage_backend.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/span.h"
#include "seq/edit_distance.h"
#include "seq/frequency_vector.h"
#include "seq/paa.h"
#include "seq/window_join.h"

namespace pmjoin {
namespace {

std::vector<uint8_t> MakeString(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> s(n);
  for (auto& c : s) c = static_cast<uint8_t>(rng.Uniform(4));
  return s;
}

std::vector<float> MakeSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> s(n);
  for (auto& v : s) v = static_cast<float>(rng.UniformDouble());
  return s;
}

void BM_EditDistanceFull(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto a = MakeString(n, 1);
  const auto b = MakeString(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_EditDistanceFull)->Arg(64)->Arg(256)->Arg(500);

void BM_EditDistanceBanded(benchmark::State& state) {
  const size_t n = 500;
  const size_t k = state.range(0);
  const auto a = MakeString(n, 1);
  auto b = a;
  Rng rng(3);
  for (size_t i = 0; i < k; ++i)
    b[rng.Uniform(n)] = static_cast<uint8_t>(rng.Uniform(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BandedEditDistance(a, b, k));
  }
  state.SetItemsProcessed(state.iterations() * (2 * k + 1) * n);
}
BENCHMARK(BM_EditDistanceBanded)->Arg(1)->Arg(5)->Arg(20);

void BM_FreqPairTrackerSlide(benchmark::State& state) {
  const size_t n = 8192, L = 500;
  const auto x = MakeString(n, 5);
  const auto y = MakeString(n, 6);
  FreqPairTracker tracker(std::span<const uint8_t>(x).subspan(0, L),
                          std::span<const uint8_t>(y).subspan(0, L), 4);
  size_t t = 0;
  for (auto _ : state) {
    tracker.Slide(x[t], x[t + L], y[t], y[t + L]);
    benchmark::DoNotOptimize(tracker.FrequencyDist());
    t = (t + 1) % (n - L - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqPairTrackerSlide);

void BM_SlidingL2TrackerSlide(benchmark::State& state) {
  const size_t n = 8192, L = 128;
  const auto x = MakeSeries(n, 7);
  const auto y = MakeSeries(n, 8);
  SlidingL2Tracker tracker(std::span<const float>(x).subspan(0, L),
                           std::span<const float>(y).subspan(0, L));
  size_t t = 0;
  for (auto _ : state) {
    tracker.Slide(x[t], x[t + L], y[t], y[t + L]);
    benchmark::DoNotOptimize(tracker.SquaredDistance());
    t = (t + 1) % (n - L - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingL2TrackerSlide);

void BM_Paa(benchmark::State& state) {
  const size_t L = state.range(0);
  const auto x = MakeSeries(L, 9);
  std::vector<float> out(8);
  for (auto _ : state) {
    PaaTransform(x, 8, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Paa)->Arg(32)->Arg(128)->Arg(512);

void BM_MbrMinDist(benchmark::State& state) {
  const size_t dims = state.range(0);
  Rng rng(11);
  std::vector<float> lo1(dims), hi1(dims), lo2(dims), hi2(dims);
  for (size_t d = 0; d < dims; ++d) {
    lo1[d] = static_cast<float>(rng.UniformDouble());
    hi1[d] = lo1[d] + 0.1f;
    lo2[d] = static_cast<float>(rng.UniformDouble());
    hi2[d] = lo2[d] + 0.1f;
  }
  const Mbr a = Mbr::FromBounds(lo1, hi1);
  const Mbr b = Mbr::FromBounds(lo2, hi2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MinDist(b, Norm::kL2));
  }
}
BENCHMARK(BM_MbrMinDist)->Arg(2)->Arg(16)->Arg(60);

std::vector<Mbr> MakeBoxes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Mbr> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> lo(2), hi(2);
    for (size_t d = 0; d < 2; ++d) {
      lo[d] = static_cast<float>(rng.UniformDouble());
      hi[d] = lo[d] + 0.01f;
    }
    boxes.push_back(Mbr::FromBounds(lo, hi));
  }
  return boxes;
}

void BM_MatrixBuildFlat(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto r = MakeBoxes(n, 13);
  const auto s = MakeBoxes(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildPredictionMatrixFlat(r, s, 0.01, Norm::kL2, nullptr));
  }
}
BENCHMARK(BM_MatrixBuildFlat)->Arg(256)->Arg(1024)->Arg(4096);

PredictionMatrix MakeMatrix(uint32_t n, double density, uint64_t seed) {
  Rng rng(seed);
  PredictionMatrix m(n, n);
  for (uint32_t r = 0; r < n; ++r) {
    for (uint32_t c = 0; c < n; ++c) {
      if (rng.Bernoulli(density)) m.Mark(r, c);
    }
  }
  m.Finalize();
  return m;
}

void BM_SquareClustering(benchmark::State& state) {
  const uint32_t n = state.range(0);
  const PredictionMatrix m = MakeMatrix(n, 0.05, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquareClustering(m, 32, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * m.MarkedCount());
}
BENCHMARK(BM_SquareClustering)->Arg(128)->Arg(512);

void BM_CostClustering(benchmark::State& state) {
  const uint32_t n = state.range(0);
  const PredictionMatrix m = MakeMatrix(n, 0.05, 19);
  for (auto _ : state) {
    Rng rng(23);
    benchmark::DoNotOptimize(
        CostClustering(m, 32, DiskModel(), 100, &rng, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * m.MarkedCount());
}
BENCHMARK(BM_CostClustering)->Arg(128)->Arg(512);

/// Shared workload for the executor sweep: a clustered spatial join big
/// enough that each cluster carries real distance-computation work. Built
/// once; every benchmark run replays it on a fresh buffer pool.
class ClusterJoinFixture {
 public:
  static ClusterJoinFixture& Get() {
    static ClusterJoinFixture fixture;
    return fixture;
  }

  SimulatedDisk& disk() { return disk_; }
  const JoinInput& input() const { return input_; }
  const std::vector<Cluster>& clusters() const { return clusters_; }
  const std::vector<uint32_t>& order() const { return order_; }
  uint32_t buffer_pages() const { return kBufferPages; }
  uint64_t total_entries() const { return total_entries_; }

 private:
  static constexpr uint32_t kBufferPages = 64;

  ClusterJoinFixture() {
    r_raw_ = GenRoadNetwork(30000, /*seed=*/0x5EED);
    s_raw_ = GenRoadNetwork(25000, /*seed=*/0xFEED);
    VectorDataset::Options options;
    options.page_size_bytes = 1024;
    r_.emplace(VectorDataset::Build(&disk_, "r", r_raw_, options).value());
    s_.emplace(VectorDataset::Build(&disk_, "s", s_raw_, options).value());
    joiner_.emplace(&*r_, &*s_, /*eps=*/0.01, Norm::kL2,
                    /*self_join=*/false);
    input_.r_file = r_->file_id();
    input_.s_file = s_->file_id();
    input_.r_pages = r_->num_pages();
    input_.s_pages = s_->num_pages();
    input_.self_join = false;
    input_.joiner = &*joiner_;
    const PredictionMatrix matrix = BuildPredictionMatrixFlat(
        r_->page_mbrs(), s_->page_mbrs(), 0.01, Norm::kL2, nullptr);
    clusters_ = SquareClustering(matrix, kBufferPages, nullptr);
    order_ = ScheduleClusters(clusters_, input_, nullptr);
    for (const Cluster& c : clusters_) total_entries_ += c.entries.size();
  }

  SimulatedDisk disk_;
  VectorData r_raw_, s_raw_;
  std::optional<VectorDataset> r_, s_;
  std::optional<VectorPairJoiner> joiner_;
  JoinInput input_;
  std::vector<Cluster> clusters_;
  std::vector<uint32_t> order_;
  uint64_t total_entries_ = 0;
};

/// Serial-vs-parallel executor sweep (Arg = worker count). The simulated
/// I/O counters are exported per run and must be identical across thread
/// counts — only wall-clock time may differ. Workers come from one
/// external pool reused across iterations, so per-iteration cost excludes
/// thread startup (matching a driver that keeps a pool alive).
void BM_ClusterJoinExecutor(benchmark::State& state) {
  ClusterJoinFixture& fixture = ClusterJoinFixture::Get();
  const auto threads = static_cast<uint32_t>(state.range(0));
  std::optional<ThreadPool> workers;
  if (threads > 1) workers.emplace(threads);

  IoStats io_delta;
  uint64_t result_pairs = 0;
  const auto run_once = [&]() -> Status {
    const IoStats io_before = fixture.disk().stats();
    BufferPool pool(&fixture.disk(), fixture.buffer_pages());
    CountingSink sink;
    ExecutorOptions options;
    options.num_threads = threads;
    options.thread_pool = workers ? &*workers : nullptr;
    const Status status =
        ExecuteClusteredJoin(fixture.input(), fixture.clusters(),
                             fixture.order(), &pool, &sink, nullptr,
                             options);
    if (!status.ok()) return status;
    benchmark::DoNotOptimize(sink.count());
    io_delta = fixture.disk().stats().Delta(io_before);
    result_pairs = sink.count();
    return Status::OK();
  };

  // One untimed warm-up run: the SimulatedDisk head position persists
  // across runs, so the very first run can pay a different initial seek
  // than steady state. After the warm-up every timed iteration starts
  // from the same head position and the counters exported below (taken
  // from the last iteration's delta) are steady-state values.
  if (const Status status = run_once(); !status.ok()) {
    state.SkipWithError(status.message().c_str());
  }

  for (auto _ : state) {
    if (const Status status = run_once(); !status.ok()) {
      state.SkipWithError(status.message().c_str());
      break;
    }
  }
  state.counters["pages_read"] = static_cast<double>(io_delta.pages_read);
  state.counters["seeks"] = static_cast<double>(io_delta.seeks);
  state.counters["result_pairs"] = static_cast<double>(result_pairs);
  state.SetItemsProcessed(state.iterations() * fixture.total_entries());
}
BENCHMARK(BM_ClusterJoinExecutor)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Measured-vs-modeled I/O sweep (Arg: 0 = SimulatedDisk, 1 =
/// FileBackend over a scratch directory). Both rows run the identical
/// clustered join on identical data, so the modeled counters
/// (pages_read, seeks) must match between them — the file row fails if
/// they diverge. The file row additionally pays real pread/checksum
/// work and exports the measured counters (read_syscalls, read_bytes,
/// checksum_checks), making the modeled-vs-measured gap a single-json
/// diff in BENCH_kernels.json.
void BM_ClusterJoinMeasuredIo(benchmark::State& state) {
  constexpr uint32_t kPage = 1024;
  constexpr uint32_t kBufferPages = 32;
  const bool use_file = state.range(0) == 1;

  std::unique_ptr<StorageBackend> backend;
  if (use_file) {
    std::error_code ec;
    std::filesystem::remove_all("bench-measured-io.tmp", ec);
    FileBackend::Options options;
    options.page_size_bytes = kPage;
    Result<std::unique_ptr<FileBackend>> opened =
        FileBackend::Open("bench-measured-io.tmp", options);
    if (!opened.ok()) {
      state.SkipWithError(opened.status().message().c_str());
      return;
    }
    backend = std::move(opened).value();
  } else {
    backend = std::make_unique<SimulatedDisk>(DiskModel(), kPage);
  }
  StorageBackend& disk = *backend;

  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = kPage;
  auto r = VectorDataset::Build(&disk, "r", GenRoadNetwork(12000, 0x5EED),
                                ds_options)
               .value();
  auto s = VectorDataset::Build(&disk, "s", GenRoadNetwork(10000, 0xFEED),
                                ds_options)
               .value();
  for (const VectorDataset* ds : {&r, &s}) {
    if (const Status status = ds->Persist(&disk); !status.ok()) {
      state.SkipWithError(status.message().c_str());
      return;
    }
  }
  VectorPairJoiner joiner(&r, &s, /*eps=*/0.01, Norm::kL2,
                          /*self_join=*/false);
  JoinInput input;
  input.r_file = r.file_id();
  input.s_file = s.file_id();
  input.r_pages = r.num_pages();
  input.s_pages = s.num_pages();
  input.self_join = false;
  input.joiner = &joiner;
  const PredictionMatrix matrix = BuildPredictionMatrixFlat(
      r.page_mbrs(), s.page_mbrs(), 0.01, Norm::kL2, nullptr);
  const std::vector<Cluster> clusters =
      SquareClustering(matrix, kBufferPages, nullptr);
  const std::vector<uint32_t> order = ScheduleClusters(clusters, input,
                                                       nullptr);

  IoStats io_delta;
  StorageBackend::MeasuredIo measured_delta;
  uint64_t result_pairs = 0;
  const auto run_once = [&]() -> Status {
    const IoStats io_before = disk.stats();
    const StorageBackend::MeasuredIo m_before = disk.measured();
    BufferPool pool(&disk, kBufferPages);
    CountingSink sink;
    const Status status = ExecuteClusteredJoin(input, clusters, order,
                                               &pool, &sink, nullptr,
                                               ExecutorOptions{});
    if (!status.ok()) return status;
    io_delta = disk.stats().Delta(io_before);
    const StorageBackend::MeasuredIo m = disk.measured();
    measured_delta.read_syscalls = m.read_syscalls - m_before.read_syscalls;
    measured_delta.read_bytes = m.read_bytes - m_before.read_bytes;
    measured_delta.checksum_checks =
        m.checksum_checks - m_before.checksum_checks;
    result_pairs = sink.count();
    return Status::OK();
  };

  // Same untimed warm-up rationale as BM_ClusterJoinExecutor: normalize
  // the modeled head position so every timed iteration's delta is the
  // steady-state stream.
  if (const Status status = run_once(); !status.ok()) {
    state.SkipWithError(status.message().c_str());
    return;
  }
  for (auto _ : state) {
    if (const Status status = run_once(); !status.ok()) {
      state.SkipWithError(status.message().c_str());
      break;
    }
  }

  // The modeled stream must not depend on the backend (the determinism
  // invariant the storage layer promises): remember the sim row's
  // counters and fail the file row on any divergence.
  static std::optional<IoStats> sim_delta;
  if (!use_file) {
    sim_delta = io_delta;
  } else if (sim_delta && !(*sim_delta == io_delta)) {
    state.SkipWithError("modeled I/O diverged between sim and file backends");
  }

  state.counters["pages_read"] = static_cast<double>(io_delta.pages_read);
  state.counters["seeks"] = static_cast<double>(io_delta.seeks);
  state.counters["read_syscalls"] =
      static_cast<double>(measured_delta.read_syscalls);
  state.counters["read_bytes"] =
      static_cast<double>(measured_delta.read_bytes);
  state.counters["checksum_checks"] =
      static_cast<double>(measured_delta.checksum_checks);
  state.counters["result_pairs"] = static_cast<double>(result_pairs);
}
BENCHMARK(BM_ClusterJoinMeasuredIo)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_JoinStringPages(benchmark::State& state) {
  const size_t n = 8192;
  const uint32_t L = 500;
  const auto x = MakeString(n, 29);
  WindowJoinOptions options;
  options.window_len = L;
  CountingSink sink;
  const WindowRange range{0, 1024};
  for (auto _ : state) {
    JoinStringWindows(x, x, range, range, options, 5, 4, &sink, nullptr);
  }
  state.SetItemsProcessed(state.iterations() * 1024 * 1024);
}
BENCHMARK(BM_JoinStringPages);

// --- Distance-kernel sweep (scalar reference vs kernel layer) ----------
//
// One query record against a block, the inner loop of JoinPages: the
// scalar side is the pre-kernel path (per-pair WithinDistance over
// unpadded rows), the tiled side is kernels::CountWithinBlock over the
// padded PageBlock layout. Both must agree on every count — the sweep
// aborts if they do not, so the benchmark doubles as an end-to-end
// decision check at throughput-sized inputs.

/// Seconds consumed by `fn()` repeated `iters` times.
template <typename Fn>
double TimeSeconds(uint32_t iters, Fn&& fn) {
  const int64_t start = obs::MonotonicNanos();
  for (uint32_t it = 0; it < iters; ++it) fn();
  const int64_t stop = obs::MonotonicNanos();
  return static_cast<double>(stop - start) * 1e-9;
}

/// Repeats `fn` until it has run for at least `min_seconds` total, then
/// returns the per-run seconds (adaptive iteration count so quick runs on
/// fast kernels still measure above timer resolution).
template <typename Fn>
double SecondsPerRun(double min_seconds, Fn&& fn) {
  uint32_t iters = 1;
  for (;;) {
    const double elapsed = TimeSeconds(iters, fn);
    if (elapsed >= min_seconds || iters >= (1u << 24))
      return elapsed / iters;
    iters = elapsed <= 0.0
                ? iters * 16
                : std::max(iters * 2,
                           static_cast<uint32_t>(
                               iters * (min_seconds / elapsed) * 1.2));
  }
}

std::string FormatRate(double per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", per_sec);
  return buf;
}

void RunKernelSweep(const bench::BenchArgs& args) {
  const uint32_t rows = args.quick ? 1024 : 4096;
  const uint32_t queries = args.quick ? 8 : 32;
  const double min_measure_sec = args.quick ? 0.002 : 0.02;
  const size_t kDims[] = {8, 16, 32, 64};
  const Norm kNorms[] = {Norm::kL1, Norm::kL2, Norm::kLInf};

  bench::PrintTableHeader(
      "distance_kernels",
      {"rec_s_scalar", "rec_s_tiled", "terms_s_scalar", "terms_s_tiled",
       "speedup", "simd"});

  for (const size_t dims : kDims) {
    const uint32_t stride = kernels::PaddedWidth(dims);
    // One shared point cloud per dims: tight rows for the scalar path,
    // padded rows (the PageBlock layout) for the kernels.
    Rng rng(0xD157 + dims);
    std::vector<float> tight(size_t(rows) * dims);
    for (float& v : tight) v = static_cast<float>(rng.UniformDouble());
    std::vector<float> padded(size_t(rows) * stride, 0.0f);
    for (uint32_t j = 0; j < rows; ++j) {
      std::copy_n(tight.data() + size_t(j) * dims, dims,
                  padded.data() + size_t(j) * stride);
    }
    std::vector<float> q_tight(size_t(queries) * dims);
    for (float& v : q_tight) v = static_cast<float>(rng.UniformDouble());
    std::vector<float> q_padded(size_t(queries) * stride, 0.0f);
    for (uint32_t q = 0; q < queries; ++q) {
      std::copy_n(q_tight.data() + size_t(q) * dims, dims,
                  q_padded.data() + size_t(q) * stride);
    }
    const kernels::BlockView block{padded.data(), rows, stride};

    for (const Norm norm : kNorms) {
      // eps at the median sampled query-row distance: roughly half the
      // rows pass, so neither path spends the sweep early-abandoning.
      std::vector<double> sample;
      const uint32_t sample_rows = std::min<uint32_t>(rows, 256);
      for (uint32_t q = 0; q < std::min<uint32_t>(queries, 8); ++q) {
        for (uint32_t j = 0; j < sample_rows; ++j) {
          sample.push_back(VectorDistance(
              {q_tight.data() + size_t(q) * dims, dims},
              {tight.data() + size_t(j) * dims, dims}, norm));
        }
      }
      std::nth_element(sample.begin(), sample.begin() + sample.size() / 2,
                       sample.end());
      const double eps = sample[sample.size() / 2];

      uint64_t scalar_count = 0;
      const double scalar_sec = SecondsPerRun(min_measure_sec, [&]() {
        uint64_t count = 0;
        for (uint32_t q = 0; q < queries; ++q) {
          const std::span<const float> x(q_tight.data() + size_t(q) * dims,
                                         dims);
          for (uint32_t j = 0; j < rows; ++j) {
            count += WithinDistance(
                x, {tight.data() + size_t(j) * dims, dims}, norm, eps);
          }
        }
        benchmark::DoNotOptimize(count);
        scalar_count = count;
      });

      uint64_t tiled_count = 0;
      const double tiled_sec = SecondsPerRun(min_measure_sec, [&]() {
        uint64_t count = 0;
        for (uint32_t q = 0; q < queries; ++q) {
          count += kernels::CountWithinBlock(
              q_padded.data() + size_t(q) * stride, block, dims, norm, eps);
        }
        benchmark::DoNotOptimize(count);
        tiled_count = count;
      });

      if (scalar_count != tiled_count) {
        std::fprintf(stderr,
                     "FATAL: kernel sweep mismatch (%s d=%zu): scalar=%llu "
                     "tiled=%llu\n",
                     NormName(norm).c_str(), dims,
                     static_cast<unsigned long long>(scalar_count),
                     static_cast<unsigned long long>(tiled_count));
        std::exit(1);
      }

      const double pairs = double(queries) * rows;
      bench::PrintTableRow(
          {NormName(norm) + "/d" + std::to_string(dims),
           FormatRate(pairs / scalar_sec), FormatRate(pairs / tiled_sec),
           FormatRate(pairs * double(dims) / scalar_sec),
           FormatRate(pairs * double(dims) / tiled_sec),
           FormatRate(scalar_sec / tiled_sec),
           kernels::HasExplicitSimd() ? "1" : "0"});
    }
  }
}

// --- End-to-end cluster-join wall-clock sweep (file backend) -----------
//
// The identical clustered join executed on a FileBackend scratch
// directory with the synchronous read path (io_threads = 0) and the
// async read pipeline (1/2/4 I/O threads). The pipeline is
// ledger-neutral by construction, so pages_read and result_pairs must
// be byte-identical across rows — the sweep aborts on divergence, which
// makes it an end-to-end concordance check at benchmark-sized inputs.
// Only wall-clock throughput (records_s) may move between rows; that
// column is the collapse tripwire tools/bench_compare.py watches.
//
// io_stall_ms approximates the join loop's I/O stall from the obs
// histograms: the io.pread_ns total for the sync row (every physical
// read blocks the coordinator) and the io.wait_ns total for async rows
// (the coordinator only stalls waiting on a staged run still in
// flight). Histograms are power-of-two bucketed, so totals use the
// bucket midpoint (count * 1.5 * 2^(b-1)); treat the stall columns as
// indicative, not exact.

/// Approximate sum of all values recorded into histogram `name` since
/// the session started. Bucket b >= 1 holds values in [2^(b-1), 2^b);
/// its midpoint is 1.5 * 2^(b-1). Bucket 0 holds zeros and adds nothing.
double ApproxHistogramTotalNs(const char* name) {
  const std::array<uint64_t, obs::Histogram::kBuckets> buckets =
      obs::MetricsRegistry::Get().histogram(name)->BucketCounts();
  double total = 0.0;
  for (uint32_t b = 1; b < obs::Histogram::kBuckets; ++b) {
    total += static_cast<double>(buckets[b]) * 1.5 *
             std::ldexp(1.0, static_cast<int>(b) - 1);
  }
  return total;
}

/// Drops every file under `dir` from the OS page cache
/// (posix_fadvise(POSIX_FADV_DONTNEED)), so the next read of those pages
/// hits the device. Called between timed repetitions: the sweep measures
/// the cold-read pipeline, where physical reads genuinely block and the
/// async reader's overlap with the join computation is observable — a
/// warm cache would reduce every read to a page-cache memcpy and measure
/// nothing but dispatch overhead.
void EvictPageCache(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const int fd = ::open(entry.path().c_str(), O_RDWR);
    if (fd < 0) continue;
    // DONTNEED silently skips dirty pages, so flush first — otherwise
    // whether eviction works depends on the kernel's writeback timer and
    // early repetitions run warm while later ones run cold.
    (void)::fdatasync(fd);
    (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    ::close(fd);
  }
}

/// One tight Gaussian blob per page, blob centers marching along the
/// main diagonal with unit gaps: record i sits near (i / per_page) in
/// every dimension. Any single-coordinate sort preserves blob order, so
/// the STR pack keeps each blob in its own page regardless of
/// dimensionality, page MBRs are pairwise far apart, and an eps well
/// under the gap yields an exactly diagonal prediction matrix whose
/// clusters read long contiguous page runs — the shape that isolates
/// read-pipeline overlap from matrix and compute effects.
VectorData MakeDiagonalBlobs(size_t count, size_t dims, size_t per_page,
                             uint64_t seed) {
  Rng rng(seed);
  VectorData data;
  data.dims = dims;
  data.values.reserve(count * dims);
  for (size_t i = 0; i < count; ++i) {
    const double base = static_cast<double>(i / per_page);
    for (size_t d = 0; d < dims; ++d) {
      data.values.push_back(
          static_cast<float>(base + rng.Gaussian(0.0, 0.01)));
    }
  }
  return data;
}

void RunClusterJoinFileSweep(const bench::BenchArgs&) {
  constexpr uint32_t kPage = 4096;
  constexpr uint32_t kBufferPages = 32;
  constexpr size_t kDims = 256;
  constexpr size_t kRecordsPerPage = kPage / (kDims * sizeof(float));
  const size_t nr = 18000, ns = 18000;
  const uint32_t reps = 8;

  std::error_code ec;
  std::filesystem::remove_all("bench-cluster-join.tmp", ec);
  FileBackend::Options fb_options;
  fb_options.page_size_bytes = kPage;
  Result<std::unique_ptr<FileBackend>> opened =
      FileBackend::Open("bench-cluster-join.tmp", fb_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "cluster_join_file: %s\n",
                 opened.status().ToString().c_str());
    return;
  }
  std::unique_ptr<FileBackend> backend = std::move(opened).value();
  StorageBackend& disk = *backend;

  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = kPage;
  // Both sides are the same draw (the paper's self-join scenario as an
  // R x S join): identical STR grids give the same page for the same
  // blob on both sides, so the prediction matrix is the main diagonal
  // and every cluster reads long contiguous page runs.
  const VectorData points =
      MakeDiagonalBlobs(nr, kDims, kRecordsPerPage, 0x5EED);
  auto r = VectorDataset::Build(&disk, "r", points, ds_options).value();
  auto s = VectorDataset::Build(&disk, "s", points, ds_options).value();
  for (const VectorDataset* ds : {&r, &s}) {
    if (const Status status = ds->Persist(&disk); !status.ok()) {
      std::fprintf(stderr, "cluster_join_file: %s\n",
                   status.ToString().c_str());
      return;
    }
  }
  // Half the inter-blob gap: every within-page pair joins (distances
  // ~0.01 * sqrt(2 * dims)), no cross-page pair comes close (adjacent
  // blobs are sqrt(dims) apart).
  const double eps = 0.5;
  VectorPairJoiner joiner(&r, &s, eps, Norm::kL2, /*self_join=*/false);
  JoinInput input;
  input.r_file = r.file_id();
  input.s_file = s.file_id();
  input.r_pages = r.num_pages();
  input.s_pages = s.num_pages();
  input.self_join = false;
  input.joiner = &joiner;
  const PredictionMatrix matrix = BuildPredictionMatrixHierarchical(
      r.tree(), s.tree(), r.num_pages(), s.num_pages(), eps, Norm::kL2,
      /*filter_iterations=*/2, nullptr);
  const std::vector<Cluster> clusters =
      SquareClustering(matrix, kBufferPages, nullptr);
  std::vector<uint32_t> order = ScheduleClusters(clusters, input, nullptr);
  // Deterministically shuffle the cluster order. The diagonal matrix's
  // clusters share no pages, so the order is semantically free (the
  // ledger tripwire below still holds: every row uses the same order) —
  // but a shuffled order turns the physical access pattern from one long
  // sequential scan (which the kernel's readahead hides entirely) into
  // the seek-heavy schedule real prediction matrices produce, which is
  // exactly the case the async pipeline exists to overlap.
  {
    Rng rng(0xC0FFEE);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.Uniform(i)]);
    }
  }

  bench::PrintTableHeader(
      "cluster_join_file",
      {"records_s", "wall_ms", "io_stall_ms", "io_stall_share",
       "pages_read", "result_pairs"});

  struct RowConfig {
    const char* label;
    uint32_t io_threads;
  };
  constexpr RowConfig kRows[] = {
      {"sync", 0}, {"async_1", 1}, {"async_2", 2}, {"async_4", 4}};
  std::optional<IoStats> sync_delta;
  for (const RowConfig& cfg : kRows) {
    IoStats io_delta;
    uint64_t result_pairs = 0;
    const auto run_once = [&]() -> Status {
      const IoStats io_before = disk.stats();
      BufferPool pool(&disk, kBufferPages);
      CountingSink sink;
      ExecutorOptions options;
      options.io_threads = cfg.io_threads;
      const Status status = ExecuteClusteredJoin(
          input, clusters, order, &pool, &sink, nullptr, options);
      if (!status.ok()) return status;
      io_delta = disk.stats().Delta(io_before);
      result_pairs = sink.count();
      return Status::OK();
    };

    // One untimed warm-up per row, outside the metric session: it pins
    // the modeled head position (same rationale as the executor sweep);
    // the page-cache state it leaves behind does not matter because every
    // timed repetition below starts from an evicted cache.
    if (const Status status = run_once(); !status.ok()) {
      std::fprintf(stderr, "cluster_join_file[%s]: %s\n", cfg.label,
                   status.ToString().c_str());
      return;
    }

    // StartSession resets metric values, so the histograms read below
    // cover exactly this row's timed reps.
    obs::Tracer::Get().StartSession(&disk);
    int64_t wall_ns = 0;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      // Cold-cache repetitions: eviction itself stays outside the
      // measured interval.
      EvictPageCache("bench-cluster-join.tmp");
      const int64_t t0 = obs::MonotonicNanos();
      const Status status = run_once();
      wall_ns += obs::MonotonicNanos() - t0;
      if (!status.ok()) {
        obs::Tracer::Get().StopSession();
        std::fprintf(stderr, "cluster_join_file[%s]: %s\n", cfg.label,
                     status.ToString().c_str());
        return;
      }
    }
    const double wall_s = static_cast<double>(wall_ns) * 1e-9;
    const double stall_ns = ApproxHistogramTotalNs(
        cfg.io_threads == 0 ? "io.pread_ns" : "io.wait_ns");
    obs::Tracer::Get().StopSession();

    if (!sync_delta.has_value()) {
      sync_delta = io_delta;
    } else if (!(*sync_delta == io_delta)) {
      std::fprintf(stderr,
                   "FATAL: cluster_join_file: modeled I/O diverged on %s "
                   "(async pipeline must be ledger-neutral)\n",
                   cfg.label);
      std::exit(1);
    }

    const double records = static_cast<double>(reps) *
                           static_cast<double>(nr + ns);
    char wall_ms[32], stall_ms[32], stall_share[32];
    std::snprintf(wall_ms, sizeof(wall_ms), "%.4g", wall_s * 1e3);
    std::snprintf(stall_ms, sizeof(stall_ms), "%.4g", stall_ns * 1e-6);
    std::snprintf(stall_share, sizeof(stall_share), "%.3f",
                  stall_ns / (wall_s * 1e9));
    bench::PrintTableRow({cfg.label, FormatRate(records / wall_s),
                          wall_ms, stall_ms, stall_share,
                          std::to_string(io_delta.pages_read),
                          std::to_string(result_pairs)});
  }

  // Drain the tracer's event log so main()'s CaptureSession does not
  // embed this sweep's span-by-span trace in BENCH_kernels.json (the
  // committed baseline should stay a small table of rows).
  obs::Tracer::Get().TakeEvents();
  std::filesystem::remove_all("bench-cluster-join.tmp", ec);
}

// --- kNN-join sweep (pm-kNN vs brute force) ----------------------------
//
// The kNN engine's adaptive-eps pruning (core/knn_join.h) against the
// brute-force expansion of every page pair, at k = 8 on the diagonal
// clustered workload. Pruning is answer-preserving by construction, so
// the per-row neighbor sequences must be byte-identical across rows —
// the sweep aborts on divergence — and on clustered data the
// candidate-matrix bound must actually cut modeled I/O: the pm_knn row's
// pages_read has to come in strictly below brute force or the sweep
// exits nonzero. Both tripwires run on every CI bench-smoke invocation;
// records_s is the collapse metric tools/bench_compare.py watches.

std::vector<std::pair<double, uint64_t>> FlattenNeighbors(
    const KnnResultSink& results) {
  std::vector<std::pair<double, uint64_t>> out;
  for (uint64_t i = 0; i < results.num_records(); ++i) {
    for (const KnnResultSink::Neighbor& nb : results.SortedNeighbors(i)) {
      out.emplace_back(nb.stat, nb.id);
    }
  }
  return out;
}

// Sharding sweep: one canonical clustered execution, charged per cluster,
// then the shard planner's partition at 1/2/4/8 shards with each shard's
// isolated modeled replay. The table reports the replication-vs-balance
// trade: cut weight, replicated pages, and "efficiency" — single-node
// cluster reads over the sum of per-shard isolated reads (1.0 = sharding
// is free, lower = replication overhead). The execution itself is
// shard-invariant, so every row prices the same join.
void RunShardingSweep(const bench::BenchArgs& args) {
  constexpr uint32_t kPage = 1024;
  constexpr uint32_t kBufferPages = 16;
  const size_t n = args.quick ? 4000 : 12000;

  SimulatedDisk disk;
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = kPage;
  const VectorData points = GenRoadNetwork(n, 0x0AD);
  auto r = VectorDataset::Build(&disk, "shard_r", points, ds_options).value();
  const double eps =
      bench::CalibratePageEps(r, r, /*target_selectivity=*/0.10, Norm::kL2, 7);

  VectorPairJoiner joiner(&r, &r, eps, Norm::kL2, /*self_join=*/true);
  JoinInput input;
  input.r_file = r.file_id();
  input.s_file = r.file_id();
  input.r_pages = r.num_pages();
  input.s_pages = r.num_pages();
  input.self_join = true;
  input.joiner = &joiner;
  const PredictionMatrix matrix = BuildPredictionMatrixHierarchical(
      r.tree(), r.tree(), r.num_pages(), r.num_pages(), eps, Norm::kL2,
      /*filter_iterations=*/2, nullptr);
  const std::vector<Cluster> clusters =
      SquareClustering(matrix, kBufferPages, nullptr);
  const std::vector<uint32_t> order =
      ScheduleClusters(clusters, input, nullptr);

  BufferPool pool(&disk, kBufferPages);
  CountingSink sink;
  OpCounters ops;
  std::vector<ClusterCharge> charges(clusters.size());
  ExecutorOptions exec_options;
  exec_options.cluster_charges = &charges;
  const IoStats io_before = disk.stats();
  const Status status = ExecuteClusteredJoin(input, clusters, order, &pool,
                                             &sink, &ops, exec_options);
  if (!status.ok()) {
    std::fprintf(stderr, "sharding: %s\n", status.ToString().c_str());
    return;
  }
  const IoStats join_io = disk.stats().Delta(io_before);
  IoStats charged;
  for (const ClusterCharge& charge : charges) charged += charge.io;
  if (charged.pages_read != join_io.pages_read) {
    std::fprintf(stderr,
                 "FATAL: sharding: per-cluster charges sum to %llu reads "
                 "but the execution read %llu (exact attribution broken)\n",
                 static_cast<unsigned long long>(charged.pages_read),
                 static_cast<unsigned long long>(join_io.pages_read));
    std::exit(1);
  }

  bench::PrintTableHeader(
      "sharding", {"cut_weight", "replicated_pages", "sum_modeled_reads",
                   "single_node_reads", "efficiency", "balance"});

  for (const uint32_t num_shards : {1u, 2u, 4u, 8u}) {
    ShardPlan plan = PlanShards(clusters, input, num_shards);
    AttributeCharges(charges, &plan);
    uint64_t modeled_reads = 0;
    for (uint32_t s = 0; s < plan.num_shards; ++s) {
      const std::vector<uint32_t> sub = ShardSubOrder(plan, order, s);
      Result<IoStats> replayed =
          ReplayShardModeledIo(input, clusters, sub, disk, kBufferPages);
      if (!replayed.ok()) {
        std::fprintf(stderr, "sharding: %s\n",
                     replayed.status().ToString().c_str());
        return;
      }
      modeled_reads += replayed->pages_read;
    }
    if (num_shards == 1 && modeled_reads != join_io.pages_read) {
      // One shard's replay is the execution itself: same order, same
      // pool size, same page sets.
      std::fprintf(stderr,
                   "FATAL: sharding: 1-shard replay read %llu pages, "
                   "execution read %llu (replay must reproduce the "
                   "single-node footprint)\n",
                   static_cast<unsigned long long>(modeled_reads),
                   static_cast<unsigned long long>(join_io.pages_read));
      std::exit(1);
    }

    const double efficiency =
        modeled_reads > 0 ? static_cast<double>(join_io.pages_read) /
                                static_cast<double>(modeled_reads)
                          : 1.0;
    char eff_buf[32], bal_buf[32];
    std::snprintf(eff_buf, sizeof(eff_buf), "%.4g", efficiency);
    std::snprintf(bal_buf, sizeof(bal_buf), "%.4g", plan.balance_ratio);
    bench::PrintTableRow({"shards" + std::to_string(num_shards),
                          std::to_string(plan.cut_weight),
                          std::to_string(plan.replicated_pages),
                          std::to_string(modeled_reads),
                          std::to_string(join_io.pages_read), eff_buf,
                          bal_buf});
  }
}

void RunKnnJoinSweep(const bench::BenchArgs& args) {
  constexpr size_t kDims = 8;
  constexpr uint32_t kK = 8;
  constexpr uint32_t kBufferPages = 16;
  const size_t n = args.quick ? 3000 : 12000;
  const uint32_t reps = args.quick ? 2 : 4;

  SimulatedDisk disk;
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = 1024;
  const size_t per_page = ds_options.page_size_bytes / (kDims * sizeof(float));
  // Different seeds on the two sides: blobs still align page-for-page
  // (same diagonal centers), but no record pair is identical, so the
  // k-th bound is a real distance rather than zero.
  const VectorData r_raw = MakeDiagonalBlobs(n, kDims, per_page, 0xA11CE);
  const VectorData s_raw = MakeDiagonalBlobs(n, kDims, per_page, 0xB0B);
  auto r = VectorDataset::Build(&disk, "knn_r", r_raw, ds_options).value();
  auto s = VectorDataset::Build(&disk, "knn_s", s_raw, ds_options).value();
  const KnnCandidateMatrix matrix = KnnCandidateMatrix::Build(
      r.page_mbrs(), s.page_mbrs(), Norm::kL2, nullptr);

  bench::PrintTableHeader(
      "knn_join",
      {"records_s", "wall_ms", "pages_read", "distance_terms",
       "result_pairs"});

  struct RowConfig {
    const char* label;
    bool prune;
  };
  constexpr RowConfig kRows[] = {{"pm_knn", true}, {"brute", false}};
  std::optional<std::vector<std::pair<double, uint64_t>>> pm_answers;
  uint64_t pm_pages = 0;
  for (const RowConfig& cfg : kRows) {
    KnnJoinOptions options;
    options.k = kK;
    options.norm = Norm::kL2;
    options.prune = cfg.prune;

    IoStats io_delta;
    OpCounters ops;
    uint64_t result_pairs = 0;
    std::vector<std::pair<double, uint64_t>> answers;
    int64_t wall_ns = 0;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      KnnResultSink results(r.num_records(), kK);
      BufferPool pool(&disk, kBufferPages);
      ops = OpCounters{};
      const IoStats io_before = disk.stats();
      const int64_t t0 = obs::MonotonicNanos();
      const Status status =
          KnnJoinVectors(r, s, matrix, options, &pool, &results, &ops);
      wall_ns += obs::MonotonicNanos() - t0;
      if (!status.ok()) {
        std::fprintf(stderr, "knn_join[%s]: %s\n", cfg.label,
                     status.ToString().c_str());
        return;
      }
      io_delta = disk.stats().Delta(io_before);
      CountingSink sink;
      result_pairs = results.Emit(&sink, nullptr);
      if (rep == 0) answers = FlattenNeighbors(results);
    }

    if (!pm_answers.has_value()) {
      pm_answers = std::move(answers);
      pm_pages = io_delta.pages_read;
    } else {
      if (*pm_answers != answers) {
        std::fprintf(stderr,
                     "FATAL: knn_join: %s neighbor sets diverge from "
                     "pm_knn (pruning must be answer-preserving)\n",
                     cfg.label);
        std::exit(1);
      }
      if (pm_pages >= io_delta.pages_read) {
        std::fprintf(
            stderr,
            "FATAL: knn_join: pm_knn read %llu pages but %s read %llu "
            "(pruning must strictly cut modeled I/O on clustered data)\n",
            static_cast<unsigned long long>(pm_pages), cfg.label,
            static_cast<unsigned long long>(io_delta.pages_read));
        std::exit(1);
      }
    }

    const double wall_s = static_cast<double>(wall_ns) * 1e-9;
    const double records =
        static_cast<double>(reps) * static_cast<double>(n);
    char wall_ms[32];
    std::snprintf(wall_ms, sizeof(wall_ms), "%.4g", wall_s * 1e3);
    bench::PrintTableRow({cfg.label, FormatRate(records / wall_s), wall_ms,
                          std::to_string(io_delta.pages_read),
                          std::to_string(ops.distance_terms),
                          std::to_string(result_pairs)});
  }
}

}  // namespace
}  // namespace pmjoin

int main(int argc, char** argv) {
  const pmjoin::bench::BenchArgs args =
      pmjoin::bench::BenchArgs::Parse(argc, argv);
  pmjoin::obs::RunReport report;
  if (args.json) {
    report.SetContext("binary", "bench_kernels");
    report.SetContext("quick", static_cast<int64_t>(args.quick ? 1 : 0));
    report.SetContext(
        "simd",
        static_cast<int64_t>(pmjoin::kernels::HasExplicitSimd() ? 1 : 0));
    pmjoin::bench::SetReportArtifact(&report);
  }
  pmjoin::RunKernelSweep(args);
  pmjoin::RunClusterJoinFileSweep(args);
  pmjoin::RunKnnJoinSweep(args);
  pmjoin::RunShardingSweep(args);
  pmjoin::bench::SetReportArtifact(nullptr);
  if (args.json) {
    report.CaptureSession();
    const pmjoin::Status st = report.WriteFile("BENCH_kernels.json");
    if (!st.ok()) {
      std::fprintf(stderr, "BENCH_kernels.json: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  // The google-benchmark suite runs after the sweep; --quick keeps smoke
  // runs to the sweep alone. Initialize() consumes the --benchmark* flags
  // and ignores the harness flags BenchArgs already handled.
  if (!args.quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
