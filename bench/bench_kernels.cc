// google-benchmark microbenchmarks for the CPU kernels underlying the
// join operators: edit distance (full and banded), the sliding-window
// trackers, PAA, MBR MINDIST, prediction-matrix construction, the
// clustering algorithms, and the serial-vs-parallel cluster-join executor
// sweep. These guard the constants behind the CPU cost model
// (common/cost_model.h).

#include <benchmark/benchmark.h>

#include <optional>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/cost_clustering.h"
#include "core/executor.h"
#include "core/joiners.h"
#include "core/plane_sweep.h"
#include "core/scheduler.h"
#include "core/square_clustering.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "geom/mbr.h"
#include "io/buffer_pool.h"
#include "io/simulated_disk.h"
#include "seq/edit_distance.h"
#include "seq/frequency_vector.h"
#include "seq/paa.h"
#include "seq/window_join.h"

namespace pmjoin {
namespace {

std::vector<uint8_t> MakeString(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> s(n);
  for (auto& c : s) c = static_cast<uint8_t>(rng.Uniform(4));
  return s;
}

std::vector<float> MakeSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> s(n);
  for (auto& v : s) v = static_cast<float>(rng.UniformDouble());
  return s;
}

void BM_EditDistanceFull(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto a = MakeString(n, 1);
  const auto b = MakeString(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_EditDistanceFull)->Arg(64)->Arg(256)->Arg(500);

void BM_EditDistanceBanded(benchmark::State& state) {
  const size_t n = 500;
  const size_t k = state.range(0);
  const auto a = MakeString(n, 1);
  auto b = a;
  Rng rng(3);
  for (size_t i = 0; i < k; ++i)
    b[rng.Uniform(n)] = static_cast<uint8_t>(rng.Uniform(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BandedEditDistance(a, b, k));
  }
  state.SetItemsProcessed(state.iterations() * (2 * k + 1) * n);
}
BENCHMARK(BM_EditDistanceBanded)->Arg(1)->Arg(5)->Arg(20);

void BM_FreqPairTrackerSlide(benchmark::State& state) {
  const size_t n = 8192, L = 500;
  const auto x = MakeString(n, 5);
  const auto y = MakeString(n, 6);
  FreqPairTracker tracker(std::span<const uint8_t>(x).subspan(0, L),
                          std::span<const uint8_t>(y).subspan(0, L), 4);
  size_t t = 0;
  for (auto _ : state) {
    tracker.Slide(x[t], x[t + L], y[t], y[t + L]);
    benchmark::DoNotOptimize(tracker.FrequencyDist());
    t = (t + 1) % (n - L - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqPairTrackerSlide);

void BM_SlidingL2TrackerSlide(benchmark::State& state) {
  const size_t n = 8192, L = 128;
  const auto x = MakeSeries(n, 7);
  const auto y = MakeSeries(n, 8);
  SlidingL2Tracker tracker(std::span<const float>(x).subspan(0, L),
                           std::span<const float>(y).subspan(0, L));
  size_t t = 0;
  for (auto _ : state) {
    tracker.Slide(x[t], x[t + L], y[t], y[t + L]);
    benchmark::DoNotOptimize(tracker.SquaredDistance());
    t = (t + 1) % (n - L - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingL2TrackerSlide);

void BM_Paa(benchmark::State& state) {
  const size_t L = state.range(0);
  const auto x = MakeSeries(L, 9);
  std::vector<float> out(8);
  for (auto _ : state) {
    PaaTransform(x, 8, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Paa)->Arg(32)->Arg(128)->Arg(512);

void BM_MbrMinDist(benchmark::State& state) {
  const size_t dims = state.range(0);
  Rng rng(11);
  std::vector<float> lo1(dims), hi1(dims), lo2(dims), hi2(dims);
  for (size_t d = 0; d < dims; ++d) {
    lo1[d] = static_cast<float>(rng.UniformDouble());
    hi1[d] = lo1[d] + 0.1f;
    lo2[d] = static_cast<float>(rng.UniformDouble());
    hi2[d] = lo2[d] + 0.1f;
  }
  const Mbr a = Mbr::FromBounds(lo1, hi1);
  const Mbr b = Mbr::FromBounds(lo2, hi2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MinDist(b, Norm::kL2));
  }
}
BENCHMARK(BM_MbrMinDist)->Arg(2)->Arg(16)->Arg(60);

std::vector<Mbr> MakeBoxes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Mbr> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> lo(2), hi(2);
    for (size_t d = 0; d < 2; ++d) {
      lo[d] = static_cast<float>(rng.UniformDouble());
      hi[d] = lo[d] + 0.01f;
    }
    boxes.push_back(Mbr::FromBounds(lo, hi));
  }
  return boxes;
}

void BM_MatrixBuildFlat(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto r = MakeBoxes(n, 13);
  const auto s = MakeBoxes(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildPredictionMatrixFlat(r, s, 0.01, Norm::kL2, nullptr));
  }
}
BENCHMARK(BM_MatrixBuildFlat)->Arg(256)->Arg(1024)->Arg(4096);

PredictionMatrix MakeMatrix(uint32_t n, double density, uint64_t seed) {
  Rng rng(seed);
  PredictionMatrix m(n, n);
  for (uint32_t r = 0; r < n; ++r) {
    for (uint32_t c = 0; c < n; ++c) {
      if (rng.Bernoulli(density)) m.Mark(r, c);
    }
  }
  m.Finalize();
  return m;
}

void BM_SquareClustering(benchmark::State& state) {
  const uint32_t n = state.range(0);
  const PredictionMatrix m = MakeMatrix(n, 0.05, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquareClustering(m, 32, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * m.MarkedCount());
}
BENCHMARK(BM_SquareClustering)->Arg(128)->Arg(512);

void BM_CostClustering(benchmark::State& state) {
  const uint32_t n = state.range(0);
  const PredictionMatrix m = MakeMatrix(n, 0.05, 19);
  for (auto _ : state) {
    Rng rng(23);
    benchmark::DoNotOptimize(
        CostClustering(m, 32, DiskModel(), 100, &rng, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * m.MarkedCount());
}
BENCHMARK(BM_CostClustering)->Arg(128)->Arg(512);

/// Shared workload for the executor sweep: a clustered spatial join big
/// enough that each cluster carries real distance-computation work. Built
/// once; every benchmark run replays it on a fresh buffer pool.
class ClusterJoinFixture {
 public:
  static ClusterJoinFixture& Get() {
    static ClusterJoinFixture fixture;
    return fixture;
  }

  SimulatedDisk& disk() { return disk_; }
  const JoinInput& input() const { return input_; }
  const std::vector<Cluster>& clusters() const { return clusters_; }
  const std::vector<uint32_t>& order() const { return order_; }
  uint32_t buffer_pages() const { return kBufferPages; }
  uint64_t total_entries() const { return total_entries_; }

 private:
  static constexpr uint32_t kBufferPages = 24;

  ClusterJoinFixture() {
    r_raw_ = GenRoadNetwork(30000, /*seed=*/0x5EED);
    s_raw_ = GenRoadNetwork(25000, /*seed=*/0xFEED);
    VectorDataset::Options options;
    options.page_size_bytes = 1024;
    r_.emplace(VectorDataset::Build(&disk_, "r", r_raw_, options).value());
    s_.emplace(VectorDataset::Build(&disk_, "s", s_raw_, options).value());
    joiner_.emplace(&*r_, &*s_, /*eps=*/0.01, Norm::kL2,
                    /*self_join=*/false);
    input_.r_file = r_->file_id();
    input_.s_file = s_->file_id();
    input_.r_pages = r_->num_pages();
    input_.s_pages = s_->num_pages();
    input_.self_join = false;
    input_.joiner = &*joiner_;
    const PredictionMatrix matrix = BuildPredictionMatrixFlat(
        r_->page_mbrs(), s_->page_mbrs(), 0.01, Norm::kL2, nullptr);
    clusters_ = SquareClustering(matrix, kBufferPages, nullptr);
    order_ = ScheduleClusters(clusters_, input_, nullptr);
    for (const Cluster& c : clusters_) total_entries_ += c.entries.size();
  }

  SimulatedDisk disk_;
  VectorData r_raw_, s_raw_;
  std::optional<VectorDataset> r_, s_;
  std::optional<VectorPairJoiner> joiner_;
  JoinInput input_;
  std::vector<Cluster> clusters_;
  std::vector<uint32_t> order_;
  uint64_t total_entries_ = 0;
};

/// Serial-vs-parallel executor sweep (Arg = worker count). The simulated
/// I/O counters are exported per run and must be identical across thread
/// counts — only wall-clock time may differ. Workers come from one
/// external pool reused across iterations, so per-iteration cost excludes
/// thread startup (matching a driver that keeps a pool alive).
void BM_ClusterJoinExecutor(benchmark::State& state) {
  ClusterJoinFixture& fixture = ClusterJoinFixture::Get();
  const auto threads = static_cast<uint32_t>(state.range(0));
  std::optional<ThreadPool> workers;
  if (threads > 1) workers.emplace(threads);

  IoStats io_delta;
  uint64_t result_pairs = 0;
  const auto run_once = [&]() -> Status {
    const IoStats io_before = fixture.disk().stats();
    BufferPool pool(&fixture.disk(), fixture.buffer_pages());
    CountingSink sink;
    ExecutorOptions options;
    options.num_threads = threads;
    options.thread_pool = workers ? &*workers : nullptr;
    const Status status =
        ExecuteClusteredJoin(fixture.input(), fixture.clusters(),
                             fixture.order(), &pool, &sink, nullptr,
                             options);
    if (!status.ok()) return status;
    benchmark::DoNotOptimize(sink.count());
    io_delta = fixture.disk().stats().Delta(io_before);
    result_pairs = sink.count();
    return Status::OK();
  };

  // One untimed warm-up run: the SimulatedDisk head position persists
  // across runs, so the very first run can pay a different initial seek
  // than steady state. After the warm-up every timed iteration starts
  // from the same head position and the counters exported below (taken
  // from the last iteration's delta) are steady-state values.
  if (const Status status = run_once(); !status.ok()) {
    state.SkipWithError(status.message().c_str());
  }

  for (auto _ : state) {
    if (const Status status = run_once(); !status.ok()) {
      state.SkipWithError(status.message().c_str());
      break;
    }
  }
  state.counters["pages_read"] = static_cast<double>(io_delta.pages_read);
  state.counters["seeks"] = static_cast<double>(io_delta.seeks);
  state.counters["result_pairs"] = static_cast<double>(result_pairs);
  state.SetItemsProcessed(state.iterations() * fixture.total_entries());
}
BENCHMARK(BM_ClusterJoinExecutor)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_JoinStringPages(benchmark::State& state) {
  const size_t n = 8192;
  const uint32_t L = 500;
  const auto x = MakeString(n, 29);
  WindowJoinOptions options;
  options.window_len = L;
  CountingSink sink;
  const WindowRange range{0, 1024};
  for (auto _ : state) {
    JoinStringWindows(x, x, range, range, options, 5, 4, &sink, nullptr);
  }
  state.SetItemsProcessed(state.iterations() * 1024 * 1024);
}
BENCHMARK(BM_JoinStringPages);

}  // namespace
}  // namespace pmjoin

BENCHMARK_MAIN();
