// google-benchmark microbenchmarks for the CPU kernels underlying the
// join operators: edit distance (full and banded), the sliding-window
// trackers, PAA, MBR MINDIST, prediction-matrix construction, and the
// clustering algorithms. These guard the constants behind the CPU cost
// model (common/cost_model.h).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/cost_clustering.h"
#include "core/plane_sweep.h"
#include "core/square_clustering.h"
#include "geom/mbr.h"
#include "seq/edit_distance.h"
#include "seq/frequency_vector.h"
#include "seq/paa.h"
#include "seq/window_join.h"

namespace pmjoin {
namespace {

std::vector<uint8_t> MakeString(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> s(n);
  for (auto& c : s) c = static_cast<uint8_t>(rng.Uniform(4));
  return s;
}

std::vector<float> MakeSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> s(n);
  for (auto& v : s) v = static_cast<float>(rng.UniformDouble());
  return s;
}

void BM_EditDistanceFull(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto a = MakeString(n, 1);
  const auto b = MakeString(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_EditDistanceFull)->Arg(64)->Arg(256)->Arg(500);

void BM_EditDistanceBanded(benchmark::State& state) {
  const size_t n = 500;
  const size_t k = state.range(0);
  const auto a = MakeString(n, 1);
  auto b = a;
  Rng rng(3);
  for (size_t i = 0; i < k; ++i)
    b[rng.Uniform(n)] = static_cast<uint8_t>(rng.Uniform(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BandedEditDistance(a, b, k));
  }
  state.SetItemsProcessed(state.iterations() * (2 * k + 1) * n);
}
BENCHMARK(BM_EditDistanceBanded)->Arg(1)->Arg(5)->Arg(20);

void BM_FreqPairTrackerSlide(benchmark::State& state) {
  const size_t n = 8192, L = 500;
  const auto x = MakeString(n, 5);
  const auto y = MakeString(n, 6);
  FreqPairTracker tracker(std::span<const uint8_t>(x).subspan(0, L),
                          std::span<const uint8_t>(y).subspan(0, L), 4);
  size_t t = 0;
  for (auto _ : state) {
    tracker.Slide(x[t], x[t + L], y[t], y[t + L]);
    benchmark::DoNotOptimize(tracker.FrequencyDist());
    t = (t + 1) % (n - L - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqPairTrackerSlide);

void BM_SlidingL2TrackerSlide(benchmark::State& state) {
  const size_t n = 8192, L = 128;
  const auto x = MakeSeries(n, 7);
  const auto y = MakeSeries(n, 8);
  SlidingL2Tracker tracker(std::span<const float>(x).subspan(0, L),
                           std::span<const float>(y).subspan(0, L));
  size_t t = 0;
  for (auto _ : state) {
    tracker.Slide(x[t], x[t + L], y[t], y[t + L]);
    benchmark::DoNotOptimize(tracker.SquaredDistance());
    t = (t + 1) % (n - L - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingL2TrackerSlide);

void BM_Paa(benchmark::State& state) {
  const size_t L = state.range(0);
  const auto x = MakeSeries(L, 9);
  std::vector<float> out(8);
  for (auto _ : state) {
    PaaTransform(x, 8, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Paa)->Arg(32)->Arg(128)->Arg(512);

void BM_MbrMinDist(benchmark::State& state) {
  const size_t dims = state.range(0);
  Rng rng(11);
  std::vector<float> lo1(dims), hi1(dims), lo2(dims), hi2(dims);
  for (size_t d = 0; d < dims; ++d) {
    lo1[d] = static_cast<float>(rng.UniformDouble());
    hi1[d] = lo1[d] + 0.1f;
    lo2[d] = static_cast<float>(rng.UniformDouble());
    hi2[d] = lo2[d] + 0.1f;
  }
  const Mbr a = Mbr::FromBounds(lo1, hi1);
  const Mbr b = Mbr::FromBounds(lo2, hi2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MinDist(b, Norm::kL2));
  }
}
BENCHMARK(BM_MbrMinDist)->Arg(2)->Arg(16)->Arg(60);

std::vector<Mbr> MakeBoxes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Mbr> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> lo(2), hi(2);
    for (size_t d = 0; d < 2; ++d) {
      lo[d] = static_cast<float>(rng.UniformDouble());
      hi[d] = lo[d] + 0.01f;
    }
    boxes.push_back(Mbr::FromBounds(lo, hi));
  }
  return boxes;
}

void BM_MatrixBuildFlat(benchmark::State& state) {
  const size_t n = state.range(0);
  const auto r = MakeBoxes(n, 13);
  const auto s = MakeBoxes(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildPredictionMatrixFlat(r, s, 0.01, Norm::kL2, nullptr));
  }
}
BENCHMARK(BM_MatrixBuildFlat)->Arg(256)->Arg(1024)->Arg(4096);

PredictionMatrix MakeMatrix(uint32_t n, double density, uint64_t seed) {
  Rng rng(seed);
  PredictionMatrix m(n, n);
  for (uint32_t r = 0; r < n; ++r) {
    for (uint32_t c = 0; c < n; ++c) {
      if (rng.Bernoulli(density)) m.Mark(r, c);
    }
  }
  m.Finalize();
  return m;
}

void BM_SquareClustering(benchmark::State& state) {
  const uint32_t n = state.range(0);
  const PredictionMatrix m = MakeMatrix(n, 0.05, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquareClustering(m, 32, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * m.MarkedCount());
}
BENCHMARK(BM_SquareClustering)->Arg(128)->Arg(512);

void BM_CostClustering(benchmark::State& state) {
  const uint32_t n = state.range(0);
  const PredictionMatrix m = MakeMatrix(n, 0.05, 19);
  for (auto _ : state) {
    Rng rng(23);
    benchmark::DoNotOptimize(
        CostClustering(m, 32, DiskModel(), 100, &rng, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * m.MarkedCount());
}
BENCHMARK(BM_CostClustering)->Arg(128)->Arg(512);

void BM_JoinStringPages(benchmark::State& state) {
  const size_t n = 8192;
  const uint32_t L = 500;
  const auto x = MakeString(n, 29);
  WindowJoinOptions options;
  options.window_len = L;
  CountingSink sink;
  const WindowRange range{0, 1024};
  for (auto _ : state) {
    JoinStringWindows(x, x, range, range, options, 5, 4, &sink, nullptr);
  }
  state.SetItemsProcessed(state.iterations() * 1024 * 1024);
}
BENCHMARK(BM_JoinStringPages);

}  // namespace
}  // namespace pmjoin

BENCHMARK_MAIN();
