// Reproduces Fig. 13 (a, b, c): total join cost vs. buffer size for NLJ,
// BFRJ, EGO, and SC on (a) LBeach x MCounty, (b) Landsat1 x Landsat2, and
// (c) the HChr18 self subsequence join.
//
// Paper shape: SC lowest everywhere with EGO second on spatial data; BFRJ
// is omitted below the buffer size where its intermediate structures fit
// (Fig. 13a footnote); on sequence data both EGO and BFRJ degrade (data
// cannot be reordered; EGO must materialize window features and verify
// with random reads), giving SC a 13–133x lead.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "baselines/bfrj.h"
#include "core/join_driver.h"
#include "data/vector_dataset.h"
#include "harness/bench_util.h"
#include "io/simulated_disk.h"
#include "seq/sequence_store.h"

namespace pmjoin {
namespace bench {
namespace {

using RunFn = std::function<Result<JoinReport>(Algorithm, uint32_t)>;

void Sweep(const std::string& label, const std::vector<uint32_t>& buffers,
           const RunFn& run,
           const std::function<bool(uint32_t)>& bfrj_feasible) {
  PrintTableHeader(label + " — total seconds (rows: B)",
                   {"NLJ", "BFRJ", "EGO", "SC"});
  for (uint32_t buffer : buffers) {
    std::vector<std::string> row{"B=" + std::to_string(buffer)};
    for (Algorithm algorithm :
         {Algorithm::kNlj, Algorithm::kBfrj, Algorithm::kEgo,
          Algorithm::kSc}) {
      if (algorithm == Algorithm::kBfrj && !bfrj_feasible(buffer)) {
        row.push_back("n/a");  // Fig. 13a footnote: intermediates don't fit.
        continue;
      }
      auto report = run(algorithm, buffer);
      row.push_back(report.ok() ? FormatSeconds(report->TotalSeconds())
                                : "err");
    }
    PrintTableRow(row);
  }
}

std::vector<uint32_t> BufferSweep(uint32_t pages) {
  std::vector<uint32_t> buffers;
  for (double frac : {0.03, 0.06, 0.12, 0.25, 0.50, 1.0}) {
    const uint32_t b =
        std::max<uint32_t>(4, static_cast<uint32_t>(frac * pages));
    if (buffers.empty() || b != buffers.back()) buffers.push_back(b);
  }
  return buffers;
}

int Run(const BenchArgs& args) {
  const double scale = args.EffectiveScale(0.025);
  std::printf("Fig. 13 — competitors vs buffer size (scale %.3f)\n", scale);

  // (a) LBeach x MCounty.
  {
    SimulatedDisk disk(PaperIoModel());
    VectorDataset::Options options;
    options.page_size_bytes = kSpatialPageBytes;
    auto r = VectorDataset::Build(&disk, "LBeach", LBeachData(scale * 5),
                                  options);
    auto s = VectorDataset::Build(&disk, "MCounty", MCountyData(scale * 5),
                                  options);
    if (!r.ok() || !s.ok()) return 1;
    const double eps = CalibratePageEps(*r, *s, 0.10, Norm::kL2, 0xF13A);
    JoinDriver driver(&disk);
    const uint64_t peak = BfrjPeakIntermediatePages(
        r->tree(), s->tree(), eps, Norm::kL2, kSpatialPageBytes);
    Sweep(
        "Fig. 13a LBeach x MCounty",
        BufferSweep(r->num_pages() + s->num_pages()),
        [&](Algorithm algorithm, uint32_t buffer) {
          JoinOptions jo;
          jo.algorithm = algorithm;
          jo.buffer_pages = buffer;
          jo.page_size_bytes = kSpatialPageBytes;
          CountingSink sink;
          return driver.RunVector(*r, *s, eps, jo, &sink);
        },
        [&](uint32_t buffer) { return peak <= buffer / 2; });
  }

  // (b) Landsat1 x Landsat2.
  {
    SimulatedDisk disk(PaperIoModel());
    VectorDataset::Options options;
    options.page_size_bytes = kSequencePageBytes;
    auto r = VectorDataset::Build(&disk, "Landsat1",
                                  LandsatSplit(scale * 5, 0), options);
    auto s = VectorDataset::Build(&disk, "Landsat2",
                                  LandsatSplit(scale * 5, 1), options);
    if (!r.ok() || !s.ok()) return 1;
    const double eps = CalibratePageEps(*r, *s, 0.10, Norm::kL2, 0xF13B);
    JoinDriver driver(&disk);
    const uint64_t peak = BfrjPeakIntermediatePages(
        r->tree(), s->tree(), eps, Norm::kL2, kSequencePageBytes);
    Sweep(
        "Fig. 13b Landsat1 x Landsat2",
        BufferSweep(r->num_pages() + s->num_pages()),
        [&](Algorithm algorithm, uint32_t buffer) {
          JoinOptions jo;
          jo.algorithm = algorithm;
          jo.buffer_pages = buffer;
          jo.page_size_bytes = kSequencePageBytes;
          CountingSink sink;
          return driver.RunVector(*r, *s, eps, jo, &sink);
        },
        [&](uint32_t buffer) { return peak <= buffer / 2; });
  }

  // (c) HChr18 self join.
  {
    SimulatedDisk disk(PaperIoModel());
    const uint32_t page_bytes = SequencePageBytes(scale);
    auto store = StringSequenceStore::Build(&disk, "HChr18",
                                            HChr18Data(scale), 4,
                                            kGenomeWindowLen, page_bytes);
    if (!store.ok()) return 1;
    JoinDriver driver(&disk);
    Sweep(
        "Fig. 13c HChr18 self join",
        BufferSweep(2 * store->layout().NumPages()),
        [&](Algorithm algorithm, uint32_t buffer) {
          JoinOptions jo;
          jo.algorithm = algorithm;
          jo.buffer_pages = buffer;
          jo.page_size_bytes = page_bytes;
          CountingSink sink;
          return driver.RunString(*store, *store, kGenomeMaxEdits, jo,
                                  &sink);
        },
        [](uint32_t) { return true; });
  }

  PrintPaperNote(
      "Fig. 13: SC lowest at every buffer size; EGO second on spatial;"
      " BFRJ omitted for B<200 in (a); on sequences (c) EGO/BFRJ degrade"
      " badly (no reordering possible), SC 13-133x faster.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmjoin

int main(int argc, char** argv) {
  return pmjoin::bench::Run(pmjoin::bench::BenchArgs::Parse(argc, argv));
}
