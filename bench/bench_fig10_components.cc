// Reproduces Fig. 10: cost components (preprocess / CPU-join / I/O) of
// joining the LBeach and MCounty datasets with ε = 0.1 for NLJ, pm-NLJ,
// random-SC, and SC. Buffer = 25 pages of 1 KB (scaled with the data).
//
// Paper shape: pm-NLJ's CPU is ~10× below NLJ's and its I/O ~4.3× below;
// random-SC halves pm-NLJ's I/O; SC shaves a further ~35% off random-SC;
// SC total ≈ 10× below NLJ. Clustering preprocess is small (~1 s of ~10).

#include <cstdio>

#include "core/join_driver.h"
#include "data/vector_dataset.h"
#include "harness/bench_util.h"
#include "io/simulated_disk.h"

namespace pmjoin {
namespace bench {
namespace {

int Run(const BenchArgs& args) {
  const double scale = args.EffectiveScale(0.25);
  std::printf("Fig. 10 — LBeach x MCounty component costs (scale %.3f)\n",
              scale);

  SimulatedDisk disk(PaperIoModel());
  const VectorData lbeach = LBeachData(scale);
  const VectorData mcounty = MCountyData(scale);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = kSpatialPageBytes;
  auto r = VectorDataset::Build(&disk, "LBeach", lbeach, ds_options);
  auto s = VectorDataset::Build(&disk, "MCounty", mcounty, ds_options);
  if (!r.ok() || !s.ok()) {
    std::fprintf(stderr, "dataset build failed\n");
    return 1;
  }
  // The paper's ε = 0.1 on TIGER coordinates yields ~10% query (page)
  // selectivity; our road generator lives in the unit square, so ε is
  // calibrated to reproduce that selectivity rather than copied verbatim.
  const double eps =
      CalibratePageEps(*r, *s, 0.10, Norm::kL2, /*seed=*/0xF1610);
  const uint32_t buffer = static_cast<uint32_t>(Scaled(25, scale, 6));
  std::printf("records: %zu x %zu, pages: %u x %u, eps=%.3f, B=%u\n",
              lbeach.count(), mcounty.count(), r->num_pages(),
              s->num_pages(), eps, buffer);

  JoinDriver driver(&disk);
  PrintTableHeader("Fig. 10 components", ReportColumns());
  for (Algorithm algorithm :
       {Algorithm::kNlj, Algorithm::kPmNlj, Algorithm::kRandomSc,
        Algorithm::kSc}) {
    JoinOptions options;
    options.algorithm = algorithm;
    options.buffer_pages = buffer;
    options.page_size_bytes = kSpatialPageBytes;
    CountingSink sink;
    auto report = driver.RunVector(*r, *s, eps, options, &sink);
    if (!report.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   AlgorithmName(algorithm).c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    PrintReportRow(AlgorithmName(algorithm), *report);
  }
  PrintPaperNote(
      "Fig. 10 (ε=0.1, B=25 1KB pages): NLJ 0/44.7/58.4, pm-NLJ 0/4.3/13.6,"
      " rand-SC 1/4.3/7.5, SC 1/4.3/4.8 (preproc/CPU/IO seconds);"
      " SC total ~10x below NLJ.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmjoin

int main(int argc, char** argv) {
  return pmjoin::bench::Run(pmjoin::bench::BenchArgs::Parse(argc, argv));
}
