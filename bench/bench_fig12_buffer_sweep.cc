// Reproduces Fig. 12: total cost of the HChr18 self subsequence join vs.
// buffer size (log-log in the paper) for NLJ, pm-NLJ, random-SC, and SC.
//
// Paper shape: pm-NLJ is always well below NLJ; both show a knee at the
// buffer size where one dataset's marked pages fit entirely in the buffer,
// after which they converge toward SC; SC is flat and lowest until very
// large buffers, where pm-NLJ's lack of clustering preprocessing wins by a
// hair.

#include <cstdio>
#include <vector>

#include "core/join_driver.h"
#include "harness/bench_util.h"
#include "io/simulated_disk.h"
#include "seq/sequence_store.h"

namespace pmjoin {
namespace bench {
namespace {

int Run(const BenchArgs& args) {
  const double scale = args.EffectiveScale(0.025);
  std::printf("Fig. 12 — HChr18 self join, total cost vs buffer size "
              "(scale %.3f)\n",
              scale);

  SimulatedDisk disk(PaperIoModel());
  const uint32_t page_bytes = SequencePageBytes(scale);
  auto store = StringSequenceStore::Build(&disk, "HChr18",
                                          HChr18Data(scale), 4,
                                          kGenomeWindowLen, page_bytes);
  if (!store.ok()) {
    std::fprintf(stderr, "store build failed\n");
    return 1;
  }
  const uint32_t pages = store->layout().NumPages();
  std::printf("pages: %u, L=%u k=%u\n", pages, kGenomeWindowLen,
              kGenomeMaxEdits);

  // Paper sweep: B = 100..3200 over 1,032 pages (4 KB); scale the sweep so
  // B/pages ratios match, and extend past the knee where the dataset fits.
  std::vector<uint32_t> buffers;
  for (double frac : {0.05, 0.10, 0.20, 0.40, 0.80, 1.20}) {
    const uint32_t b = std::max<uint32_t>(
        4, static_cast<uint32_t>(frac * pages));
    if (buffers.empty() || b != buffers.back()) buffers.push_back(b);
  }

  const Algorithm algorithms[] = {Algorithm::kNlj, Algorithm::kPmNlj,
                                  Algorithm::kRandomSc, Algorithm::kSc};
  JoinDriver driver(&disk);
  std::vector<std::vector<std::string>> total_rows, io_rows;
  for (uint32_t buffer : buffers) {
    std::vector<std::string> total_row{"B=" + std::to_string(buffer)};
    std::vector<std::string> io_row = total_row;
    for (Algorithm algorithm : algorithms) {
      JoinOptions options;
      options.algorithm = algorithm;
      options.buffer_pages = buffer;
      options.page_size_bytes = page_bytes;
      CountingSink sink;
      auto report = driver.RunString(*store, *store, kGenomeMaxEdits,
                                     options, &sink);
      if (!report.ok()) {
        total_row.push_back("err");
        io_row.push_back("err");
        continue;
      }
      total_row.push_back(FormatSeconds(report->TotalSeconds()));
      io_row.push_back(FormatSeconds(report->io_seconds));
    }
    total_rows.push_back(std::move(total_row));
    io_rows.push_back(std::move(io_row));
  }
  PrintTableHeader("Fig. 12 total seconds (rows: B)",
                   {"NLJ", "pm-NLJ", "rand-SC", "SC"});
  for (const auto& row : total_rows) PrintTableRow(row);
  // The paper's curves are I/O-dominated; this view isolates that
  // component (our NLJ carries a constant record-level CPU term that
  // flattens its *total* curve, see EXPERIMENTS.md).
  PrintTableHeader("Fig. 12 io seconds only (rows: B)",
                   {"NLJ", "pm-NLJ", "rand-SC", "SC"});
  for (const auto& row : io_rows) PrintTableRow(row);
  PrintPaperNote(
      "Fig. 12: NLJ/pm-NLJ knee at B=800 (dataset fits next step); SC up to"
      " two orders below NLJ, up to 30x below pm-NLJ, up to 26% below"
      " rand-SC at small B; pm-NLJ edges out SC at very large B"
      " (no clustering preprocess).");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmjoin

int main(int argc, char** argv) {
  return pmjoin::bench::Run(pmjoin::bench::BenchArgs::Parse(argc, argv));
}
