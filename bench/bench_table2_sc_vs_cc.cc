// Reproduces Table 2: I/O cost of SC vs. CC (parenthesized in the paper)
// for four dataset pairs across five buffer sizes. CC serves as an
// approximate lower bound on the achievable I/O cost; the claim to
// reproduce is that CC is (almost) always at or below SC, and that both
// fall as the buffer grows.
//
// Reported under both I/O accountings: the paper's uniform 10 ms/page
// model and the library's linear seek-aware model (seek 10 ms + transfer
// 1 ms), where CC's seek-avoidance is visible directly.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/join_driver.h"
#include "data/vector_dataset.h"
#include "harness/bench_util.h"
#include "io/simulated_disk.h"
#include "seq/sequence_store.h"

namespace pmjoin {
namespace bench {
namespace {

struct Row {
  std::string label;
  /// Runs the configured algorithm against a fresh driver; returns io
  /// seconds (uniform model) and the linear-model equivalent.
  std::function<JoinReport(Algorithm, uint32_t buffer)> run;
  std::vector<uint32_t> paper_buffers;
  /// Page counts for buffer-ratio scaling (ScaledBuffer).
  uint64_t paper_pages = 1;
  uint64_t actual_pages = 1;
};

void RunRow(const Row& row) {
  PrintTableHeader(row.label, {"B", "SC io(s)", "CC io(s)", "SC pages",
                               "CC pages", "SC lin(s)", "CC lin(s)"});
  for (uint32_t paper_b : row.paper_buffers) {
    const uint32_t buffer =
        ScaledBuffer(paper_b, row.paper_pages, row.actual_pages);
    const JoinReport sc = row.run(Algorithm::kSc, buffer);
    const JoinReport cc = row.run(Algorithm::kCc, buffer);
    DiskModel linear;  // Library default: 10 ms seek + 1 ms transfer.
    PrintTableRow({"B=" + std::to_string(buffer),
                   FormatSeconds(sc.io_seconds),
                   FormatSeconds(cc.io_seconds),
                   FormatCount(sc.io.pages_read),
                   FormatCount(cc.io.pages_read),
                   FormatSeconds(sc.io.ModeledSeconds(linear)),
                   FormatSeconds(cc.io.ModeledSeconds(linear))});
  }
}

int Run(const BenchArgs& args) {
  const double scale = args.EffectiveScale(0.025);
  std::printf("Table 2 — I/O cost of SC vs CC (scale %.3f)\n", scale);

  // LBeach / MCounty.
  {
    SimulatedDisk disk(PaperIoModel());
    VectorDataset::Options options;
    options.page_size_bytes = kSpatialPageBytes;
    auto r = VectorDataset::Build(&disk, "LBeach", LBeachData(scale * 5),
                                  options);
    auto s = VectorDataset::Build(&disk, "MCounty", MCountyData(scale * 5),
                                  options);
    if (!r.ok() || !s.ok()) return 1;
    const double eps = CalibratePageEps(*r, *s, 0.10, Norm::kL2, 0x7AB1);
    Row row;
    row.label = "Table 2: LBeach/MCounty";
    row.paper_buffers = {50, 100, 200, 400, 800};
    row.paper_pages = kPaperPagesSpatial;
    row.actual_pages = r->num_pages() + s->num_pages();
    JoinDriver driver(&disk);
    row.run = [&](Algorithm algorithm, uint32_t buffer) {
      JoinOptions jo;
      jo.algorithm = algorithm;
      jo.buffer_pages = buffer;
      jo.page_size_bytes = kSpatialPageBytes;
      CountingSink sink;
      return driver.RunVector(*r, *s, eps, jo, &sink).value();
    };
    RunRow(row);
  }

  // Landsat1 / Landsat2.
  {
    SimulatedDisk disk(PaperIoModel());
    VectorDataset::Options options;
    options.page_size_bytes = kSequencePageBytes;
    auto r = VectorDataset::Build(&disk, "Landsat1",
                                  LandsatSplit(scale * 5, 0), options);
    auto s = VectorDataset::Build(&disk, "Landsat2",
                                  LandsatSplit(scale * 5, 1), options);
    if (!r.ok() || !s.ok()) return 1;
    const double eps = CalibratePageEps(*r, *s, 0.10, Norm::kL2, 0x7AB2);
    Row row;
    row.label = "Table 2: Landsat1/Landsat2";
    row.paper_buffers = {125, 250, 500, 1000, 2000};
    row.paper_pages = kPaperPagesLandsatPair;
    row.actual_pages = r->num_pages() + s->num_pages();
    JoinDriver driver(&disk);
    row.run = [&](Algorithm algorithm, uint32_t buffer) {
      JoinOptions jo;
      jo.algorithm = algorithm;
      jo.buffer_pages = buffer;
      jo.page_size_bytes = kSequencePageBytes;
      CountingSink sink;
      return driver.RunVector(*r, *s, eps, jo, &sink).value();
    };
    RunRow(row);
  }

  // HChr18 self join and HChr18/MChr18.
  {
    SimulatedDisk disk(PaperIoModel());
    std::vector<uint8_t> human, mouse;
    Chr18Pair(scale, &human, &mouse);
    const uint32_t page_bytes = SequencePageBytes(scale);
    auto hs = StringSequenceStore::Build(&disk, "HChr18", std::move(human),
                                         4, kGenomeWindowLen, page_bytes);
    auto ms = StringSequenceStore::Build(&disk, "MChr18", std::move(mouse),
                                         4, kGenomeWindowLen, page_bytes);
    if (!hs.ok() || !ms.ok()) return 1;
    JoinDriver driver(&disk);

    Row self_row;
    self_row.label = "Table 2: HChr18/HChr18";
    self_row.paper_buffers = {100, 200, 400, 800, 1600};
    self_row.paper_pages = kPaperPagesHChr18;
    self_row.actual_pages = hs->layout().NumPages();
    self_row.run = [&](Algorithm algorithm, uint32_t buffer) {
      JoinOptions jo;
      jo.algorithm = algorithm;
      jo.buffer_pages = buffer;
      jo.page_size_bytes = page_bytes;
      CountingSink sink;
      return driver.RunString(*hs, *hs, kGenomeMaxEdits, jo, &sink).value();
    };
    RunRow(self_row);

    Row cross_row;
    cross_row.label = "Table 2: HChr18/MChr18";
    cross_row.paper_buffers = {50, 100, 200, 400, 800};
    cross_row.paper_pages = kPaperPagesChr18Pair;
    cross_row.actual_pages = hs->layout().NumPages() + ms->layout().NumPages();
    cross_row.run = [&](Algorithm algorithm, uint32_t buffer) {
      JoinOptions jo;
      jo.algorithm = algorithm;
      jo.buffer_pages = buffer;
      jo.page_size_bytes = page_bytes;
      CountingSink sink;
      return driver.RunString(*hs, *ms, kGenomeMaxEdits, jo, &sink).value();
    };
    RunRow(cross_row);
  }

  PrintPaperNote(
      "Table 2: CC (parenthesized) at or below SC almost everywhere, both"
      " falling roughly linearly in B; e.g. LBeach/MCounty B=50: SC 2.06s,"
      " CC 1.68s; HChr18 self B=100: SC 23.72s, CC 12.02s.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmjoin

int main(int argc, char** argv) {
  return pmjoin::bench::Run(pmjoin::bench::BenchArgs::Parse(argc, argv));
}
