// Reproduces Fig. 11: cost components of the HChr18 *subsequence self
// join* with ε/symbol = 0.01 (k = 5 edits on length-500 windows) for NLJ,
// pm-NLJ, random-SC, and SC. Buffer = 100 pages of 4 KB (scaled).
//
// Paper shape: query selectivity ≈ 2%; pm-NLJ I/O ≈ 3.2× below NLJ;
// rand-SC ≈ 3.7× below pm-NLJ; SC total ≈ 16× below NLJ total.

#include <cstdio>

#include "core/join_driver.h"
#include "harness/bench_util.h"
#include "io/simulated_disk.h"
#include "seq/sequence_store.h"

namespace pmjoin {
namespace bench {
namespace {

int Run(const BenchArgs& args) {
  const double scale = args.EffectiveScale(0.04);
  std::printf("Fig. 11 — HChr18 self subsequence join components "
              "(scale %.3f)\n",
              scale);

  SimulatedDisk disk(PaperIoModel());
  std::vector<uint8_t> hchr18 = HChr18Data(scale);
  const uint32_t page_bytes = SequencePageBytes(scale);
  auto store = StringSequenceStore::Build(&disk, "HChr18",
                                          std::move(hchr18), 4,
                                          kGenomeWindowLen, page_bytes);
  if (!store.ok()) {
    std::fprintf(stderr, "store build failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  const uint32_t buffer = ScaledBuffer(100, kPaperPagesHChr18,
                                       store->layout().NumPages());
  std::printf("symbols: %llu, windows: %llu, pages: %u, L=%u k=%u, B=%u\n",
              static_cast<unsigned long long>(store->layout().num_symbols),
              static_cast<unsigned long long>(store->layout().NumWindows()),
              store->layout().NumPages(), kGenomeWindowLen, kGenomeMaxEdits,
              buffer);

  JoinDriver driver(&disk);
  PrintTableHeader("Fig. 11 components", ReportColumns());
  for (Algorithm algorithm :
       {Algorithm::kNlj, Algorithm::kPmNlj, Algorithm::kRandomSc,
        Algorithm::kSc}) {
    JoinOptions options;
    options.algorithm = algorithm;
    options.buffer_pages = buffer;
    options.page_size_bytes = page_bytes;
    CountingSink sink;
    auto report =
        driver.RunString(*store, *store, kGenomeMaxEdits, options, &sink);
    if (!report.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   AlgorithmName(algorithm).c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    PrintReportRow(AlgorithmName(algorithm), *report);
    if (algorithm == Algorithm::kSc) {
      std::printf("matrix selectivity: %.3f (paper: ~0.02)\n",
                  report->matrix_selectivity);
    }
  }
  PrintPaperNote(
      "Fig. 11 (eps/sym=0.01, B=100 4KB pages): NLJ 0/62.1/344.0,"
      " pm-NLJ 0/1.3/106.3, rand-SC 0.9/1.3/28.8, SC 0.9/1.3/23.7;"
      " SC total ~16x below NLJ.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmjoin

int main(int argc, char** argv) {
  return pmjoin::bench::Run(pmjoin::bench::BenchArgs::Parse(argc, argv));
}
