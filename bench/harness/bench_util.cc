#include "harness/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "geom/distance.h"
#include "obs/run_report.h"

namespace pmjoin {
namespace bench {

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      args.scale = std::atof(arg.c_str() + 8);
    } else if (arg == "--full") {
      args.full = true;
    } else if (arg == "--quick") {
      args.quick = true;
    } else if (arg == "--json") {
      args.json = true;
      SetJsonOutput(true);
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // Tolerated so `for b in build/bench/*; do $b; done` can pass shared
      // google-benchmark flags without breaking the table binaries.
    } else {
      std::fprintf(
          stderr,
          "unknown flag %s (supported: --scale=F --full --quick --json)\n",
          arg.c_str());
    }
  }
  return args;
}

double BenchArgs::EffectiveScale(double default_scale) const {
  if (full) return 1.0;
  if (quick) return default_scale / 4.0;
  if (scale > 0.0) return scale;
  return default_scale;
}

uint64_t Scaled(uint64_t paper_value, double scale, uint64_t min_value) {
  const uint64_t v = static_cast<uint64_t>(std::llround(
      static_cast<double>(paper_value) * scale));
  return std::max(min_value, v);
}

VectorData LBeachData(double scale) {
  return GenRoadNetwork(Scaled(53145, scale, 500), /*seed=*/0xBEAC);
}

VectorData MCountyData(double scale) {
  return GenRoadNetwork(Scaled(39231, scale, 500), /*seed=*/0xC0DE);
}

VectorData LandsatSplit(double scale, int split) {
  return GenCorrelatedClusters(Scaled(275465 / 8, scale, 200), 60,
                               /*seed=*/0x1A5D + split);
}

VectorData LandsatSized(size_t count, uint64_t seed_salt) {
  return GenCorrelatedClusters(count, 60, 0x1A5D00 + seed_salt);
}

std::vector<uint8_t> HChr18Data(double scale) {
  std::vector<uint8_t> human, mouse;
  Chr18Pair(scale, &human, &mouse);
  return human;
}

void Chr18Pair(double scale, std::vector<uint8_t>* human,
               std::vector<uint8_t>* mouse) {
  // The isochore length scales with the data so the page/regime ratio —
  // and hence the matrix selectivity — is preserved, but it is floored so
  // a regime always spans several pages (below that, every page straddles
  // regimes and its frequency MBR degenerates). The floor matches the
  // 1 KB pages that SequencePageBytes uses for scaled-down runs.
  const double regime_scale = std::max(scale, 0.15);
  GenDnaPair(Scaled(4225477, scale, 20000), Scaled(2313942, scale, 15000),
             /*seed=*/0xD7A, human, mouse,
             /*repeat_fraction=*/0.30, /*mutation_rate=*/0.004,
             regime_scale);
}

double CalibrateEps(const VectorData& r, const VectorData& s,
                    double pair_fraction, Norm norm, uint64_t seed,
                    size_t samples) {
  Rng rng(seed);
  std::vector<double> dists;
  dists.reserve(samples);
  for (size_t i = 0; i < samples; ++i) {
    const size_t a = rng.Uniform(r.count());
    const size_t b = rng.Uniform(s.count());
    dists.push_back(VectorDistance({r.record(a), r.dims},
                                   {s.record(b), s.dims}, norm));
  }
  std::sort(dists.begin(), dists.end());
  const size_t idx = std::min(
      dists.size() - 1,
      static_cast<size_t>(pair_fraction * static_cast<double>(samples)));
  return std::max(dists[idx], 1e-9);
}

double CalibratePageEps(const VectorDataset& r, const VectorDataset& s,
                        double target_selectivity, Norm norm,
                        uint64_t seed, size_t samples) {
  const uint64_t grid = uint64_t(r.num_pages()) * s.num_pages();
  std::vector<double> dists;
  if (grid <= samples) {
    dists.reserve(grid);
    for (uint32_t i = 0; i < r.num_pages(); ++i) {
      for (uint32_t j = 0; j < s.num_pages(); ++j) {
        dists.push_back(r.PageMbr(i).MinDist(s.PageMbr(j), norm));
      }
    }
  } else {
    Rng rng(seed);
    dists.reserve(samples);
    for (size_t k = 0; k < samples; ++k) {
      const uint32_t i = static_cast<uint32_t>(rng.Uniform(r.num_pages()));
      const uint32_t j = static_cast<uint32_t>(rng.Uniform(s.num_pages()));
      dists.push_back(r.PageMbr(i).MinDist(s.PageMbr(j), norm));
    }
  }
  std::sort(dists.begin(), dists.end());
  const size_t idx = std::min(
      dists.size() - 1,
      static_cast<size_t>(target_selectivity *
                          static_cast<double>(dists.size())));
  return std::max(dists[idx], 1e-9);
}

namespace {
constexpr int kColWidth = 12;
constexpr int kLabelWidth = 18;

// JSON-mode state: the current table's title and column names, captured by
// PrintTableHeader so rows can be keyed by column.
bool json_output = false;
obs::RunReport* report_artifact = nullptr;
std::string json_table_title;
std::vector<std::string> json_table_columns;

/// Prints one JSON Lines record to stdout and, when set, mirrors it into
/// the report artifact's rows.
void EmitJsonLine(const std::string& line) {
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  if (report_artifact != nullptr) report_artifact->AddRowJson(line);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Numeric-looking cells ("4.25", "1234", "-3") become JSON numbers;
/// everything else (labels, "n/a") is emitted as a string.
std::string JsonValue(const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() + cell.size()) return cell;
  }
  // Built with += to sidestep GCC 12's -Wrestrict false positive on
  // operator+(const char*, std::string&&) (GCC PR 105651).
  std::string quoted = "\"";
  quoted += JsonEscape(cell);
  quoted += '"';
  return quoted;
}
}  // namespace

void SetJsonOutput(bool enabled) { json_output = enabled; }

void SetReportArtifact(obs::RunReport* report) { report_artifact = report; }

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  if (json_output) {
    json_table_title = title;
    json_table_columns = columns;
    std::string line = "{\"table\": \"" + JsonEscape(title) +
                       "\", \"columns\": [";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i != 0) line += ", ";
      line += '"';
      line += JsonEscape(columns[i]);
      line += '"';
    }
    line += "]}";
    EmitJsonLine(line);
    return;
  }
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-*s", kLabelWidth, "");
  for (const std::string& c : columns) {
    std::printf("%*s", kColWidth, c.c_str());
  }
  std::printf("\n");
  std::printf("%s\n",
              std::string(kLabelWidth + kColWidth * columns.size(), '-')
                  .c_str());
}

void PrintTableRow(const std::vector<std::string>& cells) {
  if (json_output) {
    std::string line = "{\"table\": \"" + JsonEscape(json_table_title) + '"';
    if (!cells.empty()) line += ", \"label\": " + JsonValue(cells[0]);
    for (size_t i = 1; i < cells.size(); ++i) {
      const std::string key = i - 1 < json_table_columns.size()
                                  ? json_table_columns[i - 1]
                                  : "col" + std::to_string(i - 1);
      line += ", \"" + JsonEscape(key) + "\": " + JsonValue(cells[i]);
    }
    line += '}';
    EmitJsonLine(line);
    return;
  }
  if (!cells.empty()) std::printf("%-*s", kLabelWidth, cells[0].c_str());
  for (size_t i = 1; i < cells.size(); ++i) {
    std::printf("%*s", kColWidth, cells[i].c_str());
  }
  std::printf("\n");
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", seconds);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  }
  return buf;
}

std::string FormatCount(uint64_t count) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(count));
  return buf;
}

std::vector<std::string> ReportColumns() {
  return {"preproc(s)", "cpu(s)", "io(s)",  "total(s)",
          "pg_read",    "seeks",  "pairs"};
}

void PrintReportRow(const std::string& label, const JoinReport& report) {
  PrintTableRow({label, FormatSeconds(report.preprocess_seconds),
                 FormatSeconds(report.cpu_join_seconds),
                 FormatSeconds(report.io_seconds),
                 FormatSeconds(report.TotalSeconds()),
                 FormatCount(report.io.pages_read),
                 FormatCount(report.io.seeks),
                 FormatCount(report.result_pairs)});
}

void PrintPaperNote(const std::string& note) {
  if (json_output) {
    EmitJsonLine("{\"paper_note\": \"" + JsonEscape(note) + "\"}");
    return;
  }
  std::printf("paper: %s\n", note.c_str());
}

}  // namespace bench
}  // namespace pmjoin
