#ifndef PMJOIN_BENCH_HARNESS_BENCH_UTIL_H_
#define PMJOIN_BENCH_HARNESS_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/join_driver.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "io/simulated_disk.h"
#include "seq/sequence_store.h"

namespace pmjoin {
namespace obs {
class RunReport;
}  // namespace obs
namespace bench {

/// Common command-line handling for the experiment binaries.
///
/// Every bench accepts:
///   --scale=<f>   fraction of the paper's dataset cardinalities
///                 (default per bench; buffer sizes scale along)
///   --full        the paper's full cardinalities (slow)
///   --quick       an extra-small smoke configuration
///   --json        emit JSON Lines instead of fixed-width tables: one
///                 object per table row, keyed by the column names, plus
///                 {"table": ...} header and {"paper_note": ...} records
struct BenchArgs {
  double scale = 0.0;  // 0 → use the bench's default.
  bool full = false;
  bool quick = false;
  bool json = false;

  static BenchArgs Parse(int argc, char** argv);

  /// Resolves the effective scale given this bench's default.
  double EffectiveScale(double default_scale) const;
};

/// Scales a paper quantity (cardinality, buffer pages) with a floor.
uint64_t Scaled(uint64_t paper_value, double scale, uint64_t min_value = 1);

/// The paper's datasets (synthetic stand-ins, DESIGN.md "Dataset
/// substitutions"), at a fraction `scale` of their published cardinality.
/// Paper cardinalities: LBeach 53,145 / MCounty 39,231 2-d road points;
/// Landsat 275,465 60-d vectors in 8 splits; HChr18 4,225,477 nt;
/// MChr18 2,313,942 nt.
VectorData LBeachData(double scale);
VectorData MCountyData(double scale);
/// Landsat split i (0-based, i < 8), each 275,465/8 vectors.
VectorData LandsatSplit(double scale, int split);
/// A Landsat-like dataset of exactly `count` vectors with split-disjoint
/// seeding (Fig. 14 merges).
VectorData LandsatSized(size_t count, uint64_t seed_salt);
std::vector<uint8_t> HChr18Data(double scale);
/// Both chromosomes from the shared motif pool (cross-species homology).
void Chr18Pair(double scale, std::vector<uint8_t>* human,
               std::vector<uint8_t>* mouse);

/// Paper experiment constants.
constexpr uint32_t kSpatialPageBytes = 1024;   // Fig. 10: 1 KB pages.
constexpr uint32_t kSequencePageBytes = 4096;  // Fig. 11: 4 KB pages.
constexpr uint32_t kGenomeWindowLen = 500;     // §3's genome query.
constexpr uint32_t kGenomeMaxEdits = 5;        // ε/symbol = 0.01.

/// Page size for sequence benches at a given scale. Scaled-down runs use
/// 1 KB pages so the *page count* (and hence the buffer-to-pages ratio and
/// matrix structure) stays proportional to the paper's setup; full-scale
/// runs use the paper's 4 KB.
inline uint32_t SequencePageBytes(double scale) {
  return scale >= 0.5 ? kSequencePageBytes : 1024;
}

/// Buffer size preserving the paper's buffer-to-pages ratio:
/// paper_b out of paper_pages, applied to the actual page count.
inline uint32_t ScaledBuffer(uint32_t paper_b, uint64_t paper_pages,
                             uint64_t actual_pages) {
  const double ratio =
      static_cast<double>(paper_b) / static_cast<double>(paper_pages);
  const auto b = static_cast<uint32_t>(ratio * actual_pages + 0.5);
  return b < 4 ? 4 : b;
}

/// Full-scale page counts of the paper's datasets (for ScaledBuffer):
/// LBeach+MCounty at 1 KB pages; one Landsat split pair at 4 KB;
/// HChr18 (self) and HChr18+MChr18 at 4 KB with the L−1 tail.
constexpr uint64_t kPaperPagesSpatial = 723;
constexpr uint64_t kPaperPagesLandsatPair = 4052;
constexpr uint64_t kPaperPagesHChr18 = 1175;
constexpr uint64_t kPaperPagesChr18Pair = 1819;

/// The paper's effective I/O accounting: a uniform ~10 ms per page I/O
/// (its reported seconds equal page-I/O counts × 10 ms across Figs. 10–14,
/// e.g. NLJ's 58.4 s ≈ 5,942 page reads). Benches reproducing the paper's
/// figures use this model; the library's default linear model (10 ms seek
/// + 1 ms transfer) is exercised by the ablation bench, where sequential
/// scans are rewarded.
inline DiskModel PaperIoModel() {
  DiskModel model;
  model.seek_sec = 0.0;
  model.transfer_sec = 0.010;
  return model;
}

/// Picks ε such that approximately `pair_fraction` of record pairs join,
/// by sampling `samples` random cross pairs (deterministic in `seed`).
double CalibrateEps(const VectorData& r, const VectorData& s,
                    double pair_fraction, Norm norm, uint64_t seed,
                    size_t samples = 20000);

/// Picks ε such that approximately `target_selectivity` of the prediction
/// matrix is marked (page-pair MINDIST quantile over sampled page pairs).
/// The paper quotes its experiments' "query selectivity" at this page
/// level (e.g. ~10% for Fig. 10, ~2% for Fig. 11).
double CalibratePageEps(const VectorDataset& r, const VectorDataset& s,
                        double target_selectivity, Norm norm,
                        uint64_t seed, size_t samples = 200000);

/// Fixed-width table printing. In JSON mode (`--json`, or SetJsonOutput)
/// the same calls emit JSON Lines: the header emits
/// `{"table": <title>, "columns": [...]}` and each row emits one object
/// keyed by the header's column names (numeric-looking cells are emitted
/// as JSON numbers). tools/assemble_bench_output.sh concatenates either
/// format unchanged.
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);

/// Switches PrintTable*/PrintPaperNote to JSON Lines output. Called by
/// BenchArgs::Parse when it sees --json.
void SetJsonOutput(bool enabled);

/// Mirrors every JSON line (header, row, paper note) into `report`'s
/// "rows" array as well as stdout, so a bench can leave a machine-readable
/// run-report artifact (e.g. BENCH_kernels.json) while still printing.
/// Only active in JSON mode. Pass nullptr to stop mirroring; the caller
/// owns the report and decides when to write it out.
void SetReportArtifact(obs::RunReport* report);
std::string FormatSeconds(double seconds);
std::string FormatCount(uint64_t count);

/// Prints the standard per-algorithm report row:
/// algorithm | preprocess | cpu-join | io | total | pages read | seeks |
/// result pairs.
void PrintReportRow(const std::string& label, const JoinReport& report);
std::vector<std::string> ReportColumns();

/// Prints the paper's expectation for shape comparison.
void PrintPaperNote(const std::string& note);

}  // namespace bench
}  // namespace pmjoin

#endif  // PMJOIN_BENCH_HARNESS_BENCH_UTIL_H_
