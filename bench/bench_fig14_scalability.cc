// Reproduces Fig. 14: total join cost vs. dataset size for NLJ, BFRJ, EGO,
// and SC on Landsat-style data. The paper merges the eight Landsat splits
// into pairs of datasets at 12.5%, 25%, 37.5%, and 50% of the original
// 275,465 vectors (i.e. 34,433 / 68,866 / 103,299 / 137,732 per side) and
// joins them with a 2,000-page buffer.
//
// Paper shape: every technique grows quadratically (both sides grow); SC
// is fastest at every size and its lead widens with size — 2-4.3x over
// EGO, 4-6.5x over BFRJ, 10-150x over NLJ.

#include <cstdio>
#include <string>
#include <vector>

#include "core/join_driver.h"
#include "data/vector_dataset.h"
#include "harness/bench_util.h"
#include "io/simulated_disk.h"

namespace pmjoin {
namespace bench {
namespace {

int Run(const BenchArgs& args) {
  const double scale = args.EffectiveScale(0.05);
  std::printf("Fig. 14 — Landsat scalability (scale %.3f)\n", scale);

  const size_t paper_sizes[] = {34433, 68866, 103299, 137732};
  const uint32_t buffer =
      std::max<uint32_t>(8, static_cast<uint32_t>(2000 * scale));
  std::printf("buffer: %u pages of %u bytes\n", buffer, kSequencePageBytes);

  PrintTableHeader("Fig. 14 total seconds (rows: per-side tuples)",
                   {"NLJ", "BFRJ", "EGO", "SC"});
  for (size_t paper_n : paper_sizes) {
    const size_t n = Scaled(paper_n, scale, 300);
    SimulatedDisk disk(PaperIoModel());
    VectorDataset::Options options;
    options.page_size_bytes = kSequencePageBytes;
    auto r = VectorDataset::Build(&disk, "LandsatA", LandsatSized(n, 1),
                                  options);
    auto s = VectorDataset::Build(&disk, "LandsatB", LandsatSized(n, 2),
                                  options);
    if (!r.ok() || !s.ok()) return 1;
    const double eps = CalibratePageEps(*r, *s, 0.10, Norm::kL2, 0xF14);
    JoinDriver driver(&disk);

    std::vector<std::string> row{"n=" + std::to_string(n)};
    for (Algorithm algorithm : {Algorithm::kNlj, Algorithm::kBfrj,
                                Algorithm::kEgo, Algorithm::kSc}) {
      JoinOptions jo;
      jo.algorithm = algorithm;
      jo.buffer_pages = buffer;
      jo.page_size_bytes = kSequencePageBytes;
      CountingSink sink;
      auto report = driver.RunVector(*r, *s, eps, jo, &sink);
      row.push_back(report.ok() ? FormatSeconds(report->TotalSeconds())
                                : "err");
    }
    PrintTableRow(row);
  }
  PrintPaperNote(
      "Fig. 14 (B=2000): quadratic growth for all; SC fastest at every"
      " size with a widening gap — 2-4.3x vs EGO, 4-6.5x vs BFRJ,"
      " 10-150x vs NLJ.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmjoin

int main(int argc, char** argv) {
  return pmjoin::bench::Run(pmjoin::bench::BenchArgs::Parse(argc, argv));
}
