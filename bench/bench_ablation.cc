// Ablations for the design choices DESIGN.md calls out:
//
//  A1. Cluster scheduling (§8): SC with the sharing-graph order vs. matrix
//      order vs. random order — isolates Optimization 3.
//  A2. Fig. 2 filter iterations k ∈ {0, 1, 5}: MBR tests done by the
//      hierarchical matrix construction (CPU-only effect; the matrix is
//      identical by construction).
//  A3. CC histogram resolution: seed quality vs. preprocessing cost.
//  A4. Disk-model sensitivity: the same SC/NLJ runs accounted under the
//      paper's uniform 10 ms/page model vs. the linear seek-aware model
//      (sequential scans get cheap, shrinking SC's lead over NLJ).
//  A5. Sub-box granularity T: the multi-resolution summary width inside a
//      page (seq/sequence_store.h) trades summary CPU against pruning
//      power in the string join.

#include <cstdio>
#include <string>
#include <vector>

#include "core/join_driver.h"
#include "data/vector_dataset.h"
#include "harness/bench_util.h"
#include "io/simulated_disk.h"
#include "seq/sequence_store.h"

namespace pmjoin {
namespace bench {
namespace {

int Run(const BenchArgs& args) {
  const double scale = args.EffectiveScale(0.25);
  std::printf("Ablations (scale %.3f)\n", scale);

  SimulatedDisk disk(PaperIoModel());
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = kSpatialPageBytes;
  auto r = VectorDataset::Build(&disk, "LBeach", LBeachData(scale),
                                ds_options);
  auto s = VectorDataset::Build(&disk, "MCounty", MCountyData(scale),
                                ds_options);
  if (!r.ok() || !s.ok()) return 1;
  const double eps = CalibratePageEps(*r, *s, 0.10, Norm::kL2, 0xAB1A);
  const uint32_t buffer = static_cast<uint32_t>(Scaled(25, scale, 6));
  JoinDriver driver(&disk);

  auto run = [&](JoinOptions options) {
    options.page_size_bytes = kSpatialPageBytes;
    options.buffer_pages = buffer;
    CountingSink sink;
    return driver.RunVector(*r, *s, eps, options, &sink).value();
  };

  // A1: scheduling.
  {
    PrintTableHeader("A1: cluster ordering (SC)", ReportColumns());
    JoinOptions scheduled;
    scheduled.algorithm = Algorithm::kSc;
    PrintReportRow("scheduled", run(scheduled));
    JoinOptions matrix_order = scheduled;
    matrix_order.schedule_clusters = false;
    PrintReportRow("matrix order", run(matrix_order));
    JoinOptions random_order;
    random_order.algorithm = Algorithm::kRandomSc;
    PrintReportRow("random order", run(random_order));
  }

  // A2: filter iterations.
  {
    PrintTableHeader("A2: Fig. 2 filter iterations (SC build CPU)",
                     {"mbr_tests", "marked"});
    for (uint32_t k : {0u, 1u, 5u}) {
      JoinOptions options;
      options.algorithm = Algorithm::kSc;
      options.filter_iterations = k;
      const JoinReport report = run(options);
      PrintTableRow({"k=" + std::to_string(k),
                     FormatCount(report.ops.mbr_tests),
                     FormatCount(report.marked_entries)});
    }
  }

  // A3: CC histogram resolution.
  {
    PrintTableHeader("A3: CC histogram resolution",
                     {"io(s)", "preproc(s)", "clusters"});
    for (uint32_t res : {4u, 16u, 100u}) {
      JoinOptions options;
      options.algorithm = Algorithm::kCc;
      options.cc_histogram_resolution = res;
      const JoinReport report = run(options);
      PrintTableRow({"res=" + std::to_string(res),
                     FormatSeconds(report.io_seconds),
                     FormatSeconds(report.preprocess_seconds),
                     FormatCount(report.num_clusters)});
    }
  }

  // A4: disk-model sensitivity (re-account the same IoStats).
  {
    PrintTableHeader("A4: disk model sensitivity (io seconds)",
                     {"uniform", "linear"});
    DiskModel linear;  // 10 ms seek + 1 ms transfer.
    for (Algorithm algorithm : {Algorithm::kNlj, Algorithm::kPmNlj,
                                Algorithm::kSc}) {
      JoinOptions options;
      options.algorithm = algorithm;
      const JoinReport report = run(options);
      PrintTableRow({AlgorithmName(algorithm),
                     FormatSeconds(report.io_seconds),
                     FormatSeconds(report.io.ModeledSeconds(linear))});
    }
    std::printf(
        "note: under the linear model NLJ's repeated sequential scans are\n"
        "cheap, so SC's advantage narrows — the paper's accounting\n"
        "(uniform cost per I/O) is what its 2-86x headline reflects.\n");
  }
  // A5: sequence sub-box granularity.
  {
    PrintTableHeader("A5: sub-box granularity T (string self join)",
                     {"cpu(s)", "mbr_tests", "pairs"});
    const double seq_scale = scale / 5.0;
    std::vector<uint8_t> dna = HChr18Data(seq_scale);
    for (uint32_t t : {16u, 64u, 256u}) {
      SimulatedDisk seq_disk(PaperIoModel());
      auto store = StringSequenceStore::Build(
          &seq_disk, "HChr18", dna, 4, kGenomeWindowLen,
          SequencePageBytes(seq_scale), t);
      if (!store.ok()) continue;
      JoinDriver seq_driver(&seq_disk);
      JoinOptions jo;
      jo.algorithm = Algorithm::kSc;
      jo.buffer_pages = ScaledBuffer(100, kPaperPagesHChr18,
                                     store->layout().NumPages());
      jo.page_size_bytes = SequencePageBytes(seq_scale);
      CountingSink sink;
      auto report =
          seq_driver.RunString(*store, *store, kGenomeMaxEdits, jo, &sink);
      if (!report.ok()) continue;
      PrintTableRow({"T=" + std::to_string(t),
                     FormatSeconds(report->cpu_join_seconds),
                     FormatCount(report->ops.mbr_tests),
                     FormatCount(report->result_pairs)});
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmjoin

int main(int argc, char** argv) {
  return pmjoin::bench::Run(pmjoin::bench::BenchArgs::Parse(argc, argv));
}
