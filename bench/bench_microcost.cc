// Micro-cost checks for the paper's worked examples:
//
//  - Example 1 / Fig. 3 / Lemma 1: joining the 5-entry sub-region costs
//    pm-NLJ w + min{r, c} = 7 page reads under a 2-page buffer, while a
//    cluster read (Lemma 2) needs only r + c = 5 under a 5-page buffer.
//  - Example 2 / §8: scheduling the five clusters by the sharing graph
//    reduces total page reads from 21 (no reuse) toward the paper's 15.

#include <cstdio>
#include <numeric>

#include "core/executor.h"
#include "core/pm_nlj.h"
#include "core/scheduler.h"
#include "harness/bench_util.h"
#include "io/buffer_pool.h"
#include "io/simulated_disk.h"

namespace pmjoin {
namespace bench {
namespace {

class NullJoiner : public PagePairJoiner {
 public:
  void JoinPages(uint32_t, uint32_t, PairSink*, OpCounters*) override {}
  void ChargeScanned(uint32_t, uint32_t, OpCounters*) const override {}
};

void Example1() {
  std::printf("\nExample 1 (Fig. 3 sub-region, Lemma 1 vs Lemma 2)\n");
  SimulatedDisk disk;
  const uint32_t r_file = disk.CreateFile("r", 3);
  const uint32_t s_file = disk.CreateFile("s", 4);
  PredictionMatrix matrix(3, 4);
  matrix.Mark(0, 0);
  matrix.Mark(0, 1);
  matrix.Mark(0, 2);
  matrix.Mark(2, 1);
  matrix.Mark(2, 2);
  matrix.Finalize();

  NullJoiner joiner;
  JoinInput input;
  input.r_file = r_file;
  input.s_file = s_file;
  input.r_pages = 3;
  input.s_pages = 4;
  input.joiner = &joiner;

  {
    BufferPool pool(&disk, 2);
    CountingSink sink;
    (void)PmNlj(input, matrix, &pool, &sink, nullptr);
    std::printf("  pm-NLJ, B=2:    %llu page reads (paper: 7 = w+min{r,c})\n",
                static_cast<unsigned long long>(disk.stats().pages_read));
  }
  disk.ResetStats();
  {
    BufferPool pool(&disk, 5);
    CountingSink sink;
    Cluster cluster;
    cluster.rows = {0, 2};
    cluster.cols = {0, 1, 2};
    cluster.entries = matrix.AllEntries();
    const std::vector<Cluster> clusters{cluster};
    const std::vector<uint32_t> order{0};
    (void)ExecuteClusteredJoin(input, clusters, order, &pool, &sink,
                               nullptr);
    std::printf("  cluster, B=5:   %llu page reads (paper: 5 = r+c)\n",
                static_cast<unsigned long long>(disk.stats().pages_read));
  }
}

void Example2() {
  std::printf("\nExample 2 (Section 8 cluster scheduling)\n");
  SimulatedDisk disk;
  const uint32_t r_file = disk.CreateFile("r", 7);
  const uint32_t s_file = disk.CreateFile("s", 7);

  auto make = [](std::vector<uint32_t> rows, std::vector<uint32_t> cols) {
    Cluster c;
    c.rows = std::move(rows);
    c.cols = std::move(cols);
    for (uint32_t r : c.rows) {
      for (uint32_t col : c.cols) c.entries.push_back(MatrixEntry{r, col});
    }
    return c;
  };
  // Page sets with the paper's sharing structure (its exact ids are
  // garbled in the scan): C1–C2 share 3 pages, C2–C3, C3–C4, C4–C5 one
  // page each; total pages = 21, best schedule saves 6 reads.
  const std::vector<Cluster> clusters{
      make({1, 2}, {2, 5, 6}), make({1, 2, 3}, {2, 3}),
      make({4, 5}, {3, 6}),    make({0, 3, 5}, {1, 4}),
      make({5}, {0}),
  };

  NullJoiner joiner;
  JoinInput input;
  input.r_file = r_file;
  input.s_file = s_file;
  input.r_pages = 7;
  input.s_pages = 7;
  input.joiner = &joiner;

  uint64_t total_pages = 0;
  for (const Cluster& c : clusters) total_pages += c.PageCount();
  std::printf("  sum of cluster pages: %llu (paper: 21)\n",
              static_cast<unsigned long long>(total_pages));

  auto run_order = [&](const std::vector<uint32_t>& order) {
    SimulatedDisk fresh;
    fresh.CreateFile("r", 7);
    fresh.CreateFile("s", 7);
    BufferPool pool(&fresh, 5);
    CountingSink sink;
    (void)ExecuteClusteredJoin(input, clusters, order, &pool, &sink,
                               nullptr);
    return fresh.stats().pages_read;
  };

  std::vector<uint32_t> index_order(clusters.size());
  std::iota(index_order.begin(), index_order.end(), 0u);
  const std::vector<uint32_t> scheduled =
      ScheduleClusters(clusters, input, nullptr);

  std::printf("  index order reads:     %llu\n",
              static_cast<unsigned long long>(run_order(index_order)));
  std::printf("  scheduled order reads: %llu (paper scenario 2: 15)\n",
              static_cast<unsigned long long>(run_order(scheduled)));
}

}  // namespace
}  // namespace bench
}  // namespace pmjoin

int main() {
  std::printf("Micro-cost checks (paper worked examples)\n");
  pmjoin::bench::Example1();
  pmjoin::bench::Example2();
  return 0;
}
