
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bfrj.cc" "src/CMakeFiles/pmjoin.dir/baselines/bfrj.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/baselines/bfrj.cc.o.d"
  "/root/repo/src/baselines/block_nlj.cc" "src/CMakeFiles/pmjoin.dir/baselines/block_nlj.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/baselines/block_nlj.cc.o.d"
  "/root/repo/src/baselines/ego.cc" "src/CMakeFiles/pmjoin.dir/baselines/ego.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/baselines/ego.cc.o.d"
  "/root/repo/src/baselines/pbsm.cc" "src/CMakeFiles/pmjoin.dir/baselines/pbsm.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/baselines/pbsm.cc.o.d"
  "/root/repo/src/common/cost_model.cc" "src/CMakeFiles/pmjoin.dir/common/cost_model.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/common/cost_model.cc.o.d"
  "/root/repo/src/common/op_counters.cc" "src/CMakeFiles/pmjoin.dir/common/op_counters.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/common/op_counters.cc.o.d"
  "/root/repo/src/common/pair_sink.cc" "src/CMakeFiles/pmjoin.dir/common/pair_sink.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/common/pair_sink.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/pmjoin.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/pmjoin.dir/common/status.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/common/status.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/CMakeFiles/pmjoin.dir/core/cluster.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/core/cluster.cc.o.d"
  "/root/repo/src/core/cost_clustering.cc" "src/CMakeFiles/pmjoin.dir/core/cost_clustering.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/core/cost_clustering.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/CMakeFiles/pmjoin.dir/core/executor.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/core/executor.cc.o.d"
  "/root/repo/src/core/join_driver.cc" "src/CMakeFiles/pmjoin.dir/core/join_driver.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/core/join_driver.cc.o.d"
  "/root/repo/src/core/joiners.cc" "src/CMakeFiles/pmjoin.dir/core/joiners.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/core/joiners.cc.o.d"
  "/root/repo/src/core/plane_sweep.cc" "src/CMakeFiles/pmjoin.dir/core/plane_sweep.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/core/plane_sweep.cc.o.d"
  "/root/repo/src/core/pm_nlj.cc" "src/CMakeFiles/pmjoin.dir/core/pm_nlj.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/core/pm_nlj.cc.o.d"
  "/root/repo/src/core/prediction_matrix.cc" "src/CMakeFiles/pmjoin.dir/core/prediction_matrix.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/core/prediction_matrix.cc.o.d"
  "/root/repo/src/core/reference_join.cc" "src/CMakeFiles/pmjoin.dir/core/reference_join.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/core/reference_join.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/CMakeFiles/pmjoin.dir/core/scheduler.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/core/scheduler.cc.o.d"
  "/root/repo/src/core/square_clustering.cc" "src/CMakeFiles/pmjoin.dir/core/square_clustering.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/core/square_clustering.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/pmjoin.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/data/generators.cc.o.d"
  "/root/repo/src/data/sequence_dataset.cc" "src/CMakeFiles/pmjoin.dir/data/sequence_dataset.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/data/sequence_dataset.cc.o.d"
  "/root/repo/src/data/vector_dataset.cc" "src/CMakeFiles/pmjoin.dir/data/vector_dataset.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/data/vector_dataset.cc.o.d"
  "/root/repo/src/geom/distance.cc" "src/CMakeFiles/pmjoin.dir/geom/distance.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/geom/distance.cc.o.d"
  "/root/repo/src/geom/mbr.cc" "src/CMakeFiles/pmjoin.dir/geom/mbr.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/geom/mbr.cc.o.d"
  "/root/repo/src/index/rstar_tree.cc" "src/CMakeFiles/pmjoin.dir/index/rstar_tree.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/index/rstar_tree.cc.o.d"
  "/root/repo/src/index/str_bulk_load.cc" "src/CMakeFiles/pmjoin.dir/index/str_bulk_load.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/index/str_bulk_load.cc.o.d"
  "/root/repo/src/io/buffer_pool.cc" "src/CMakeFiles/pmjoin.dir/io/buffer_pool.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/io/buffer_pool.cc.o.d"
  "/root/repo/src/io/disk_scheduler.cc" "src/CMakeFiles/pmjoin.dir/io/disk_scheduler.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/io/disk_scheduler.cc.o.d"
  "/root/repo/src/io/external_sort.cc" "src/CMakeFiles/pmjoin.dir/io/external_sort.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/io/external_sort.cc.o.d"
  "/root/repo/src/io/io_stats.cc" "src/CMakeFiles/pmjoin.dir/io/io_stats.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/io/io_stats.cc.o.d"
  "/root/repo/src/io/page_file.cc" "src/CMakeFiles/pmjoin.dir/io/page_file.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/io/page_file.cc.o.d"
  "/root/repo/src/io/simulated_disk.cc" "src/CMakeFiles/pmjoin.dir/io/simulated_disk.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/io/simulated_disk.cc.o.d"
  "/root/repo/src/seq/edit_distance.cc" "src/CMakeFiles/pmjoin.dir/seq/edit_distance.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/seq/edit_distance.cc.o.d"
  "/root/repo/src/seq/frequency_vector.cc" "src/CMakeFiles/pmjoin.dir/seq/frequency_vector.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/seq/frequency_vector.cc.o.d"
  "/root/repo/src/seq/paa.cc" "src/CMakeFiles/pmjoin.dir/seq/paa.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/seq/paa.cc.o.d"
  "/root/repo/src/seq/sequence_store.cc" "src/CMakeFiles/pmjoin.dir/seq/sequence_store.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/seq/sequence_store.cc.o.d"
  "/root/repo/src/seq/window_join.cc" "src/CMakeFiles/pmjoin.dir/seq/window_join.cc.o" "gcc" "src/CMakeFiles/pmjoin.dir/seq/window_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
