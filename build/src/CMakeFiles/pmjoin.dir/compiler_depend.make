# Empty compiler generated dependencies file for pmjoin.
# This may be replaced when dependencies are built.
