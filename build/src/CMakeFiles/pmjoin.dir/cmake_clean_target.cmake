file(REMOVE_RECURSE
  "libpmjoin.a"
)
