# Empty dependencies file for pmjoin_cli.
# This may be replaced when dependencies are built.
