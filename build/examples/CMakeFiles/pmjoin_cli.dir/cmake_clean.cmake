file(REMOVE_RECURSE
  "CMakeFiles/pmjoin_cli.dir/pmjoin_cli.cpp.o"
  "CMakeFiles/pmjoin_cli.dir/pmjoin_cli.cpp.o.d"
  "pmjoin_cli"
  "pmjoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmjoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
