# Empty dependencies file for genome_join.
# This may be replaced when dependencies are built.
