file(REMOVE_RECURSE
  "CMakeFiles/genome_join.dir/genome_join.cpp.o"
  "CMakeFiles/genome_join.dir/genome_join.cpp.o.d"
  "genome_join"
  "genome_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
