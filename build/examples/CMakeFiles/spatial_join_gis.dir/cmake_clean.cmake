file(REMOVE_RECURSE
  "CMakeFiles/spatial_join_gis.dir/spatial_join_gis.cpp.o"
  "CMakeFiles/spatial_join_gis.dir/spatial_join_gis.cpp.o.d"
  "spatial_join_gis"
  "spatial_join_gis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_join_gis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
