# Empty compiler generated dependencies file for spatial_join_gis.
# This may be replaced when dependencies are built.
