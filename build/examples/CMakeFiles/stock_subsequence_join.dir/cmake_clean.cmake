file(REMOVE_RECURSE
  "CMakeFiles/stock_subsequence_join.dir/stock_subsequence_join.cpp.o"
  "CMakeFiles/stock_subsequence_join.dir/stock_subsequence_join.cpp.o.d"
  "stock_subsequence_join"
  "stock_subsequence_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_subsequence_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
