# Empty compiler generated dependencies file for stock_subsequence_join.
# This may be replaced when dependencies are built.
