file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sc_vs_cc.dir/bench_table2_sc_vs_cc.cc.o"
  "CMakeFiles/bench_table2_sc_vs_cc.dir/bench_table2_sc_vs_cc.cc.o.d"
  "bench_table2_sc_vs_cc"
  "bench_table2_sc_vs_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sc_vs_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
