# Empty compiler generated dependencies file for bench_table2_sc_vs_cc.
# This may be replaced when dependencies are built.
