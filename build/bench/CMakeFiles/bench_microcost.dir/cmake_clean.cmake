file(REMOVE_RECURSE
  "CMakeFiles/bench_microcost.dir/bench_microcost.cc.o"
  "CMakeFiles/bench_microcost.dir/bench_microcost.cc.o.d"
  "bench_microcost"
  "bench_microcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
