file(REMOVE_RECURSE
  "../lib/libpmjoin_bench_harness.a"
)
