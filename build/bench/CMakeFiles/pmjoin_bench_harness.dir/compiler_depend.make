# Empty compiler generated dependencies file for pmjoin_bench_harness.
# This may be replaced when dependencies are built.
