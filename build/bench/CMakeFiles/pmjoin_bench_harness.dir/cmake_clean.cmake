file(REMOVE_RECURSE
  "../lib/libpmjoin_bench_harness.a"
  "../lib/libpmjoin_bench_harness.pdb"
  "CMakeFiles/pmjoin_bench_harness.dir/harness/bench_util.cc.o"
  "CMakeFiles/pmjoin_bench_harness.dir/harness/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmjoin_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
