# Empty dependencies file for bench_fig11_seq_components.
# This may be replaced when dependencies are built.
