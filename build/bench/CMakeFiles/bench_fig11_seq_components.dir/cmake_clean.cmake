file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_seq_components.dir/bench_fig11_seq_components.cc.o"
  "CMakeFiles/bench_fig11_seq_components.dir/bench_fig11_seq_components.cc.o.d"
  "bench_fig11_seq_components"
  "bench_fig11_seq_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_seq_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
