# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pmjoin_common_tests[1]_include.cmake")
include("/root/repo/build/tests/pmjoin_seq_tests[1]_include.cmake")
include("/root/repo/build/tests/pmjoin_index_data_tests[1]_include.cmake")
include("/root/repo/build/tests/pmjoin_core_tests[1]_include.cmake")
include("/root/repo/build/tests/pmjoin_integration_tests[1]_include.cmake")
include("/root/repo/build/tests/pmjoin_bench_harness_tests[1]_include.cmake")
