file(REMOVE_RECURSE
  "CMakeFiles/pmjoin_common_tests.dir/common/op_counters_test.cc.o"
  "CMakeFiles/pmjoin_common_tests.dir/common/op_counters_test.cc.o.d"
  "CMakeFiles/pmjoin_common_tests.dir/common/pair_sink_test.cc.o"
  "CMakeFiles/pmjoin_common_tests.dir/common/pair_sink_test.cc.o.d"
  "CMakeFiles/pmjoin_common_tests.dir/common/rng_test.cc.o"
  "CMakeFiles/pmjoin_common_tests.dir/common/rng_test.cc.o.d"
  "CMakeFiles/pmjoin_common_tests.dir/common/status_test.cc.o"
  "CMakeFiles/pmjoin_common_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/pmjoin_common_tests.dir/geom/distance_test.cc.o"
  "CMakeFiles/pmjoin_common_tests.dir/geom/distance_test.cc.o.d"
  "CMakeFiles/pmjoin_common_tests.dir/geom/mbr_test.cc.o"
  "CMakeFiles/pmjoin_common_tests.dir/geom/mbr_test.cc.o.d"
  "CMakeFiles/pmjoin_common_tests.dir/io/buffer_pool_test.cc.o"
  "CMakeFiles/pmjoin_common_tests.dir/io/buffer_pool_test.cc.o.d"
  "CMakeFiles/pmjoin_common_tests.dir/io/disk_scheduler_test.cc.o"
  "CMakeFiles/pmjoin_common_tests.dir/io/disk_scheduler_test.cc.o.d"
  "CMakeFiles/pmjoin_common_tests.dir/io/external_sort_test.cc.o"
  "CMakeFiles/pmjoin_common_tests.dir/io/external_sort_test.cc.o.d"
  "CMakeFiles/pmjoin_common_tests.dir/io/simulated_disk_test.cc.o"
  "CMakeFiles/pmjoin_common_tests.dir/io/simulated_disk_test.cc.o.d"
  "pmjoin_common_tests"
  "pmjoin_common_tests.pdb"
  "pmjoin_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmjoin_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
