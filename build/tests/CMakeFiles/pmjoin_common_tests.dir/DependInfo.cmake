
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/op_counters_test.cc" "tests/CMakeFiles/pmjoin_common_tests.dir/common/op_counters_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_common_tests.dir/common/op_counters_test.cc.o.d"
  "/root/repo/tests/common/pair_sink_test.cc" "tests/CMakeFiles/pmjoin_common_tests.dir/common/pair_sink_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_common_tests.dir/common/pair_sink_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/pmjoin_common_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_common_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/pmjoin_common_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_common_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/geom/distance_test.cc" "tests/CMakeFiles/pmjoin_common_tests.dir/geom/distance_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_common_tests.dir/geom/distance_test.cc.o.d"
  "/root/repo/tests/geom/mbr_test.cc" "tests/CMakeFiles/pmjoin_common_tests.dir/geom/mbr_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_common_tests.dir/geom/mbr_test.cc.o.d"
  "/root/repo/tests/io/buffer_pool_test.cc" "tests/CMakeFiles/pmjoin_common_tests.dir/io/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_common_tests.dir/io/buffer_pool_test.cc.o.d"
  "/root/repo/tests/io/disk_scheduler_test.cc" "tests/CMakeFiles/pmjoin_common_tests.dir/io/disk_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_common_tests.dir/io/disk_scheduler_test.cc.o.d"
  "/root/repo/tests/io/external_sort_test.cc" "tests/CMakeFiles/pmjoin_common_tests.dir/io/external_sort_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_common_tests.dir/io/external_sort_test.cc.o.d"
  "/root/repo/tests/io/simulated_disk_test.cc" "tests/CMakeFiles/pmjoin_common_tests.dir/io/simulated_disk_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_common_tests.dir/io/simulated_disk_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmjoin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
