# Empty compiler generated dependencies file for pmjoin_common_tests.
# This may be replaced when dependencies are built.
