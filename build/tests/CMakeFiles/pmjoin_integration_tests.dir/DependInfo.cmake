
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/bfrj_test.cc" "tests/CMakeFiles/pmjoin_integration_tests.dir/baselines/bfrj_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_integration_tests.dir/baselines/bfrj_test.cc.o.d"
  "/root/repo/tests/baselines/block_nlj_test.cc" "tests/CMakeFiles/pmjoin_integration_tests.dir/baselines/block_nlj_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_integration_tests.dir/baselines/block_nlj_test.cc.o.d"
  "/root/repo/tests/baselines/ego_test.cc" "tests/CMakeFiles/pmjoin_integration_tests.dir/baselines/ego_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_integration_tests.dir/baselines/ego_test.cc.o.d"
  "/root/repo/tests/baselines/pbsm_test.cc" "tests/CMakeFiles/pmjoin_integration_tests.dir/baselines/pbsm_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_integration_tests.dir/baselines/pbsm_test.cc.o.d"
  "/root/repo/tests/integration/accounting_test.cc" "tests/CMakeFiles/pmjoin_integration_tests.dir/integration/accounting_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_integration_tests.dir/integration/accounting_test.cc.o.d"
  "/root/repo/tests/integration/driver_sweep_test.cc" "tests/CMakeFiles/pmjoin_integration_tests.dir/integration/driver_sweep_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_integration_tests.dir/integration/driver_sweep_test.cc.o.d"
  "/root/repo/tests/integration/join_driver_test.cc" "tests/CMakeFiles/pmjoin_integration_tests.dir/integration/join_driver_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_integration_tests.dir/integration/join_driver_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmjoin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
