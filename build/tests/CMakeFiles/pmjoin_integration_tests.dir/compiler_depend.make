# Empty compiler generated dependencies file for pmjoin_integration_tests.
# This may be replaced when dependencies are built.
