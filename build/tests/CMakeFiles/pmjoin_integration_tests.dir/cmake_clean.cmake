file(REMOVE_RECURSE
  "CMakeFiles/pmjoin_integration_tests.dir/baselines/bfrj_test.cc.o"
  "CMakeFiles/pmjoin_integration_tests.dir/baselines/bfrj_test.cc.o.d"
  "CMakeFiles/pmjoin_integration_tests.dir/baselines/block_nlj_test.cc.o"
  "CMakeFiles/pmjoin_integration_tests.dir/baselines/block_nlj_test.cc.o.d"
  "CMakeFiles/pmjoin_integration_tests.dir/baselines/ego_test.cc.o"
  "CMakeFiles/pmjoin_integration_tests.dir/baselines/ego_test.cc.o.d"
  "CMakeFiles/pmjoin_integration_tests.dir/baselines/pbsm_test.cc.o"
  "CMakeFiles/pmjoin_integration_tests.dir/baselines/pbsm_test.cc.o.d"
  "CMakeFiles/pmjoin_integration_tests.dir/integration/accounting_test.cc.o"
  "CMakeFiles/pmjoin_integration_tests.dir/integration/accounting_test.cc.o.d"
  "CMakeFiles/pmjoin_integration_tests.dir/integration/driver_sweep_test.cc.o"
  "CMakeFiles/pmjoin_integration_tests.dir/integration/driver_sweep_test.cc.o.d"
  "CMakeFiles/pmjoin_integration_tests.dir/integration/join_driver_test.cc.o"
  "CMakeFiles/pmjoin_integration_tests.dir/integration/join_driver_test.cc.o.d"
  "pmjoin_integration_tests"
  "pmjoin_integration_tests.pdb"
  "pmjoin_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmjoin_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
