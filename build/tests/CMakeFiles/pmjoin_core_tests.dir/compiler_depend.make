# Empty compiler generated dependencies file for pmjoin_core_tests.
# This may be replaced when dependencies are built.
