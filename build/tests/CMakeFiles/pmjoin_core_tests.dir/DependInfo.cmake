
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cost_clustering_test.cc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/cost_clustering_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/cost_clustering_test.cc.o.d"
  "/root/repo/tests/core/executor_test.cc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/executor_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/executor_test.cc.o.d"
  "/root/repo/tests/core/joiners_test.cc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/joiners_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/joiners_test.cc.o.d"
  "/root/repo/tests/core/plane_sweep_test.cc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/plane_sweep_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/plane_sweep_test.cc.o.d"
  "/root/repo/tests/core/pm_nlj_test.cc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/pm_nlj_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/pm_nlj_test.cc.o.d"
  "/root/repo/tests/core/prediction_matrix_test.cc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/prediction_matrix_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/prediction_matrix_test.cc.o.d"
  "/root/repo/tests/core/scheduler_test.cc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/scheduler_test.cc.o.d"
  "/root/repo/tests/core/square_clustering_test.cc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/square_clustering_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_core_tests.dir/core/square_clustering_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmjoin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
