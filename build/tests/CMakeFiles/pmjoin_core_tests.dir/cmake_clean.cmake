file(REMOVE_RECURSE
  "CMakeFiles/pmjoin_core_tests.dir/core/cost_clustering_test.cc.o"
  "CMakeFiles/pmjoin_core_tests.dir/core/cost_clustering_test.cc.o.d"
  "CMakeFiles/pmjoin_core_tests.dir/core/executor_test.cc.o"
  "CMakeFiles/pmjoin_core_tests.dir/core/executor_test.cc.o.d"
  "CMakeFiles/pmjoin_core_tests.dir/core/joiners_test.cc.o"
  "CMakeFiles/pmjoin_core_tests.dir/core/joiners_test.cc.o.d"
  "CMakeFiles/pmjoin_core_tests.dir/core/plane_sweep_test.cc.o"
  "CMakeFiles/pmjoin_core_tests.dir/core/plane_sweep_test.cc.o.d"
  "CMakeFiles/pmjoin_core_tests.dir/core/pm_nlj_test.cc.o"
  "CMakeFiles/pmjoin_core_tests.dir/core/pm_nlj_test.cc.o.d"
  "CMakeFiles/pmjoin_core_tests.dir/core/prediction_matrix_test.cc.o"
  "CMakeFiles/pmjoin_core_tests.dir/core/prediction_matrix_test.cc.o.d"
  "CMakeFiles/pmjoin_core_tests.dir/core/scheduler_test.cc.o"
  "CMakeFiles/pmjoin_core_tests.dir/core/scheduler_test.cc.o.d"
  "CMakeFiles/pmjoin_core_tests.dir/core/square_clustering_test.cc.o"
  "CMakeFiles/pmjoin_core_tests.dir/core/square_clustering_test.cc.o.d"
  "pmjoin_core_tests"
  "pmjoin_core_tests.pdb"
  "pmjoin_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmjoin_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
