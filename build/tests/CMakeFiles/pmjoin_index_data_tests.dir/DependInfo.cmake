
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/generators_test.cc" "tests/CMakeFiles/pmjoin_index_data_tests.dir/data/generators_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_index_data_tests.dir/data/generators_test.cc.o.d"
  "/root/repo/tests/data/vector_dataset_test.cc" "tests/CMakeFiles/pmjoin_index_data_tests.dir/data/vector_dataset_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_index_data_tests.dir/data/vector_dataset_test.cc.o.d"
  "/root/repo/tests/index/rstar_tree_test.cc" "tests/CMakeFiles/pmjoin_index_data_tests.dir/index/rstar_tree_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_index_data_tests.dir/index/rstar_tree_test.cc.o.d"
  "/root/repo/tests/index/str_bulk_load_test.cc" "tests/CMakeFiles/pmjoin_index_data_tests.dir/index/str_bulk_load_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_index_data_tests.dir/index/str_bulk_load_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmjoin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
