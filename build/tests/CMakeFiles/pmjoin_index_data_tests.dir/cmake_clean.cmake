file(REMOVE_RECURSE
  "CMakeFiles/pmjoin_index_data_tests.dir/data/generators_test.cc.o"
  "CMakeFiles/pmjoin_index_data_tests.dir/data/generators_test.cc.o.d"
  "CMakeFiles/pmjoin_index_data_tests.dir/data/vector_dataset_test.cc.o"
  "CMakeFiles/pmjoin_index_data_tests.dir/data/vector_dataset_test.cc.o.d"
  "CMakeFiles/pmjoin_index_data_tests.dir/index/rstar_tree_test.cc.o"
  "CMakeFiles/pmjoin_index_data_tests.dir/index/rstar_tree_test.cc.o.d"
  "CMakeFiles/pmjoin_index_data_tests.dir/index/str_bulk_load_test.cc.o"
  "CMakeFiles/pmjoin_index_data_tests.dir/index/str_bulk_load_test.cc.o.d"
  "pmjoin_index_data_tests"
  "pmjoin_index_data_tests.pdb"
  "pmjoin_index_data_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmjoin_index_data_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
