# Empty dependencies file for pmjoin_index_data_tests.
# This may be replaced when dependencies are built.
