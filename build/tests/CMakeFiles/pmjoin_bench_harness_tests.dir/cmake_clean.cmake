file(REMOVE_RECURSE
  "CMakeFiles/pmjoin_bench_harness_tests.dir/bench/bench_util_test.cc.o"
  "CMakeFiles/pmjoin_bench_harness_tests.dir/bench/bench_util_test.cc.o.d"
  "pmjoin_bench_harness_tests"
  "pmjoin_bench_harness_tests.pdb"
  "pmjoin_bench_harness_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmjoin_bench_harness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
