# Empty dependencies file for pmjoin_bench_harness_tests.
# This may be replaced when dependencies are built.
