
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/seq/edit_distance_test.cc" "tests/CMakeFiles/pmjoin_seq_tests.dir/seq/edit_distance_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_seq_tests.dir/seq/edit_distance_test.cc.o.d"
  "/root/repo/tests/seq/frequency_vector_test.cc" "tests/CMakeFiles/pmjoin_seq_tests.dir/seq/frequency_vector_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_seq_tests.dir/seq/frequency_vector_test.cc.o.d"
  "/root/repo/tests/seq/paa_test.cc" "tests/CMakeFiles/pmjoin_seq_tests.dir/seq/paa_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_seq_tests.dir/seq/paa_test.cc.o.d"
  "/root/repo/tests/seq/sequence_store_test.cc" "tests/CMakeFiles/pmjoin_seq_tests.dir/seq/sequence_store_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_seq_tests.dir/seq/sequence_store_test.cc.o.d"
  "/root/repo/tests/seq/window_join_test.cc" "tests/CMakeFiles/pmjoin_seq_tests.dir/seq/window_join_test.cc.o" "gcc" "tests/CMakeFiles/pmjoin_seq_tests.dir/seq/window_join_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pmjoin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
