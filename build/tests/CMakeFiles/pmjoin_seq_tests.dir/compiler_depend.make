# Empty compiler generated dependencies file for pmjoin_seq_tests.
# This may be replaced when dependencies are built.
