file(REMOVE_RECURSE
  "CMakeFiles/pmjoin_seq_tests.dir/seq/edit_distance_test.cc.o"
  "CMakeFiles/pmjoin_seq_tests.dir/seq/edit_distance_test.cc.o.d"
  "CMakeFiles/pmjoin_seq_tests.dir/seq/frequency_vector_test.cc.o"
  "CMakeFiles/pmjoin_seq_tests.dir/seq/frequency_vector_test.cc.o.d"
  "CMakeFiles/pmjoin_seq_tests.dir/seq/paa_test.cc.o"
  "CMakeFiles/pmjoin_seq_tests.dir/seq/paa_test.cc.o.d"
  "CMakeFiles/pmjoin_seq_tests.dir/seq/sequence_store_test.cc.o"
  "CMakeFiles/pmjoin_seq_tests.dir/seq/sequence_store_test.cc.o.d"
  "CMakeFiles/pmjoin_seq_tests.dir/seq/window_join_test.cc.o"
  "CMakeFiles/pmjoin_seq_tests.dir/seq/window_join_test.cc.o.d"
  "pmjoin_seq_tests"
  "pmjoin_seq_tests.pdb"
  "pmjoin_seq_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmjoin_seq_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
