#!/usr/bin/env python3
"""Compare a kernel-benchmark run against a committed baseline.

Reads the artifact emitted by `bench_kernels --json` — either the current
pmjoin.run_report.v1 object (table rows under its "rows" array) or the
legacy JSON Lines stream — from a baseline file and a current run,
matches rows of the known tables by (table, label), and compares each
table's throughput metric:

    distance_kernels   terms_s_tiled   (tiled-kernel throughput)
    cluster_join_file  records_s       (file-backend cluster-join
                                        wall-clock throughput, sync and
                                        async read-pipeline rows)
    knn_join           records_s       (kNN-join engine throughput,
                                        pm_knn and brute-force rows)

Labels or metrics present in only one file are skipped with a warning, so
a baseline regenerated under an older schema keeps comparing on the rows
it has.

The check is deliberately loose: CI runners are noisy, so only a
catastrophic regression — current throughput below baseline / THRESHOLD
(default 2.0x) — fails. Everything else, including labels present in
only one file, is reported but tolerated. This makes the bench-smoke CI
job a tripwire for "the kernels fell off a cliff" (e.g. vectorization
silently disabled), not a perf gate.

One additional intra-run tripwire guards the async read pipeline: within
the *current* run's cluster_join_file table, the best async row must not
fall below the sync row by more than the threshold. That comparison is
between two rows of the same run on the same machine, so it is immune to
host-speed differences and catches the failure mode where the pipeline
still produces correct results but silently serializes (every staged run
claimed back, wall-clock collapsing to sync plus staging overhead).

Usage: tools/bench_compare.py BASELINE.json CURRENT.json [--threshold X]
Exits non-zero iff any label regressed by more than the threshold, or the
async tripwire fired.
"""

import argparse
import json
import os
import sys

# Headline metric per table ("higher is better"; the ratio test below
# flags drops); rows of other tables are ignored. The sharding table's
# efficiency is fully modeled, so any change there is a planner change,
# not noise.
TABLE_METRICS = {
    "distance_kernels": "terms_s_tiled",
    "cluster_join_file": "records_s",
    "knn_join": "records_s",
    "sharding": "efficiency",
}


def load_rows(path):
    """Returns {(table, label): row} for data rows of the known tables.

    Accepts both artifact formats: a pmjoin.run_report.v1 object (rows in
    its "rows" array) and the legacy JSON Lines stream (one object per
    line). A pmjoin.server_report.v1 (the multi-query aggregate emitted
    by pmjoin_server) is recognized but carries no kernel rows — naming
    that mistake beats a confusing line-by-line parse failure."""
    with open(path, encoding="utf-8") as f:
        text = f.read()

    def collect(records):
        rows = {}
        for row in records:
            if not isinstance(row, dict):
                continue
            if row.get("table") not in TABLE_METRICS or "label" not in row:
                continue
            rows[(row["table"], row["label"])] = row
        return rows

    try:
        obj = json.loads(text)
    except json.JSONDecodeError:
        obj = None
    if isinstance(obj, dict):
        schema = str(obj.get("schema", ""))
        if schema.startswith("pmjoin.server_report"):
            print(f"{path}: {schema} is a server report; it aggregates "
                  "join queries, not kernel benchmark rows",
                  file=sys.stderr)
            return {}
        if schema.startswith("pmjoin.run_report"):
            return collect(obj.get("rows", []))

    records = []
    for lineno, line in enumerate(text.split("\n"), 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as err:
            print(f"{path}:{lineno}: skipping unparseable line ({err})",
                  file=sys.stderr)
    return collect(records)


def sort_key(key):
    """Distance-kernel labels group by dimension ("L2/d16" -> "d16");
    other tables sort by plain label."""
    table, label = key
    if table == "distance_kernels" and "/" in label:
        return (table, label.split("/")[1], label)
    return (table, label)


def check_async_tripwire(curr, threshold):
    """Intra-run collapse check: in `curr`'s cluster_join_file table, the
    best async row's records_s must be at least sync's / threshold.
    Returns an error string, or None if the check passes or does not
    apply (no sync or no async rows — e.g. an older binary)."""
    sync = curr.get(("cluster_join_file", "sync"))
    async_rows = {label: row for (table, label), row in curr.items()
                  if table == "cluster_join_file"
                  and label.startswith("async")}
    if sync is None or "records_s" not in sync or not async_rows:
        return None
    sync_rate = float(sync["records_s"])
    best_label, best_rate = None, -1.0
    for label, row in async_rows.items():
        if "records_s" not in row:
            continue
        rate = float(row["records_s"])
        if rate > best_rate:
            best_label, best_rate = label, rate
    if best_label is None or best_rate <= 0:
        return ("async rows carry no records_s"
                if best_label is None else
                f"async path produced no throughput ({best_label})")
    if sync_rate > best_rate * threshold:
        return (f"async read pipeline collapsed: best async row "
                f"{best_label} ({best_rate:.4g} records/s) is "
                f"{sync_rate / best_rate:.1f}x below sync "
                f"({sync_rate:.4g} records/s) in the same run")
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("baseline", help="committed baseline JSONL")
    parser.add_argument("current", help="JSONL from the current run")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail if baseline/current exceeds this "
                        "(default: 2.0)")
    args = parser.parse_args()

    # A missing input is an operator error (stale path, baseline never
    # committed, bench run skipped) — explain it instead of tracebacking.
    for role, path in (("baseline", args.baseline), ("current", args.current)):
        if not os.path.exists(path):
            print(f"error: {role} file '{path}' does not exist"
                  + ("; regenerate it with `bench_kernels --json` and "
                     "commit it" if role == "baseline" else
                     "; run `bench_kernels --json` first"),
                  file=sys.stderr)
            return 2

    base = load_rows(args.baseline)
    curr = load_rows(args.current)
    if not base:
        print(f"error: no benchmark rows in {args.baseline}",
              file=sys.stderr)
        return 2
    if not curr:
        print(f"error: no benchmark rows in {args.current}",
              file=sys.stderr)
        return 2

    regressions = []
    print(f"{'table':<18} {'label':<10} {'baseline':>12} {'current':>12} "
          f"{'ratio':>7}")
    for key in sorted(base, key=sort_key):
        table, label = key
        metric = TABLE_METRICS[table]
        if key not in curr:
            print(f"{table:<18} {label:<10} "
                  f"{'(missing in current run)':>33}")
            continue
        if metric not in base[key]:
            print(f"{table:<18} {label:<10} warning: {metric} missing in "
                  "baseline; skipped")
            continue
        if metric not in curr[key]:
            print(f"{table:<18} {label:<10} warning: {metric} missing in "
                  "current run; skipped")
            continue
        b = float(base[key][metric])
        c = float(curr[key][metric])
        ratio = b / c if c > 0 else float("inf")
        flag = "  << REGRESSION" if ratio > args.threshold else ""
        print(f"{table:<18} {label:<10} {b:>12.4g} {c:>12.4g} "
              f"{ratio:>7.2f}{flag}")
        if ratio > args.threshold:
            regressions.append((f"{table}/{label}", ratio))
    for table, label in sorted(set(curr) - set(base)):
        print(f"{table:<18} {label:<10} {'(new label, no baseline)':>33}")

    failed = False
    if regressions:
        names = ", ".join(f"{l} ({r:.1f}x)" for l, r in regressions)
        print(f"\nbench_compare: throughput regressed more than "
              f"{args.threshold}x vs baseline: {names}", file=sys.stderr)
        failed = True

    tripwire = check_async_tripwire(curr, args.threshold)
    if tripwire is not None:
        print(f"\nbench_compare: {tripwire}", file=sys.stderr)
        failed = True

    if failed:
        return 1
    print(f"\nbench_compare: OK ({len(base)} labels, threshold "
          f"{args.threshold}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
