#!/usr/bin/env python3
"""Compare a kernel-benchmark run against a committed baseline.

Reads the artifact emitted by `bench_kernels --json` — either the current
pmjoin.run_report.v1 object (table rows under its "rows" array) or the
legacy JSON Lines stream — from a baseline file and a current run,
matches `"table": "distance_kernels"` rows by label (e.g. "L2/d16"), and
compares tiled-kernel throughput (`terms_s_tiled`). Labels or metrics
present in only one file are skipped with a warning, so a baseline
regenerated under an older schema keeps comparing on the rows it has.

The check is deliberately loose: CI runners are noisy, so only a
catastrophic regression — current throughput below baseline / THRESHOLD
(default 2.0x) — fails. Everything else, including labels present in
only one file, is reported but tolerated. This makes the bench-smoke CI
job a tripwire for "the kernels fell off a cliff" (e.g. vectorization
silently disabled), not a perf gate.

Usage: tools/bench_compare.py BASELINE.json CURRENT.json [--threshold X]
Exits non-zero iff any label regressed by more than the threshold.
"""

import argparse
import json
import os
import sys

METRIC = "terms_s_tiled"


def load_rows(path):
    """Returns {label: row} for distance_kernels data rows.

    Accepts both artifact formats: a pmjoin.run_report.v1 object (rows in
    its "rows" array) and the legacy JSON Lines stream (one object per
    line). A pmjoin.server_report.v1 (the multi-query aggregate emitted
    by pmjoin_server) is recognized but carries no kernel rows — naming
    that mistake beats a confusing line-by-line parse failure."""
    with open(path, encoding="utf-8") as f:
        text = f.read()

    def collect(records):
        rows = {}
        for row in records:
            if not isinstance(row, dict):
                continue
            if row.get("table") != "distance_kernels" or "label" not in row:
                continue
            rows[row["label"]] = row
        return rows

    try:
        obj = json.loads(text)
    except json.JSONDecodeError:
        obj = None
    if isinstance(obj, dict):
        schema = str(obj.get("schema", ""))
        if schema.startswith("pmjoin.server_report"):
            print(f"{path}: {schema} is a server report; it aggregates "
                  "join queries, not kernel benchmark rows",
                  file=sys.stderr)
            return {}
        if schema.startswith("pmjoin.run_report"):
            return collect(obj.get("rows", []))

    records = []
    for lineno, line in enumerate(text.split("\n"), 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as err:
            print(f"{path}:{lineno}: skipping unparseable line ({err})",
                  file=sys.stderr)
    return collect(records)


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("baseline", help="committed baseline JSONL")
    parser.add_argument("current", help="JSONL from the current run")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail if baseline/current exceeds this "
                        "(default: 2.0)")
    args = parser.parse_args()

    # A missing input is an operator error (stale path, baseline never
    # committed, bench run skipped) — explain it instead of tracebacking.
    for role, path in (("baseline", args.baseline), ("current", args.current)):
        if not os.path.exists(path):
            print(f"error: {role} file '{path}' does not exist"
                  + ("; regenerate it with `bench_kernels --json` and "
                     "commit it" if role == "baseline" else
                     "; run `bench_kernels --json` first"),
                  file=sys.stderr)
            return 2

    base = load_rows(args.baseline)
    curr = load_rows(args.current)
    if not base:
        print(f"error: no distance_kernels rows in {args.baseline}",
              file=sys.stderr)
        return 2
    if not curr:
        print(f"error: no distance_kernels rows in {args.current}",
              file=sys.stderr)
        return 2

    regressions = []
    print(f"{'label':<10} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for label in sorted(base, key=lambda l: (l.split("/")[1], l)):
        if label not in curr:
            print(f"{label:<10} {'(missing in current run)':>33}")
            continue
        if METRIC not in base[label]:
            print(f"{label:<10} warning: {METRIC} missing in baseline; "
                  "skipped")
            continue
        if METRIC not in curr[label]:
            print(f"{label:<10} warning: {METRIC} missing in current run; "
                  "skipped")
            continue
        b = float(base[label][METRIC])
        c = float(curr[label][METRIC])
        ratio = b / c if c > 0 else float("inf")
        flag = "  << REGRESSION" if ratio > args.threshold else ""
        print(f"{label:<10} {b:>12.4g} {c:>12.4g} {ratio:>7.2f}{flag}")
        if ratio > args.threshold:
            regressions.append((label, ratio))
    for label in sorted(set(curr) - set(base)):
        print(f"{label:<10} {'(new label, no baseline)':>33}")

    if regressions:
        names = ", ".join(f"{l} ({r:.1f}x)" for l, r in regressions)
        print(f"\nbench_compare: {METRIC} regressed more than "
              f"{args.threshold}x vs baseline: {names}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: OK ({len(base)} labels, threshold "
          f"{args.threshold}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
