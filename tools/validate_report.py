#!/usr/bin/env python3
"""Validate a pmjoin report (run report or server report).

Dispatches on the top-level "schema" key:

  pmjoin.run_report.v1    -> tools/run_report_schema.json
  pmjoin.server_report.v1 -> tools/server_report_schema.json

Two layers of checking, stdlib only (no jsonschema dependency):

  1. Structure: the report is validated against the subset of JSON Schema
     used by the schema files (type, required, properties,
     additionalProperties, items, enum, const, minimum, $ref into
     #/definitions).
  2. Semantics: the exact-attribution ledger. For a run report, the sum
     of per-phase exclusive deltas (`io_self`) plus `unattributed_io`
     must equal `io_totals` exactly. For a server report, the sum of
     per-query `io` rows plus `unattributed_io` must equal `io_totals`.
     This is the subsystem's hard invariant: the breakdown is a partition
     of the modeled I/O, not an approximation of it. Any "shards" section
     (top-level in a run report, per executed query in a server report)
     carries its own ledger, checked the same way: the sum of
     per_shard[].io plus its unattributed_io must equal its join_io, and
     likewise per_shard[].ops against join_ops.

Usage: tools/validate_report.py REPORT.json [...]
Exit code is non-zero if any report fails.
"""

import json
import os
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
SCHEMA_PATHS = {
    "pmjoin.run_report.v1": os.path.join(TOOLS_DIR,
                                         "run_report_schema.json"),
    "pmjoin.server_report.v1": os.path.join(TOOLS_DIR,
                                            "server_report_schema.json"),
}

IO_FIELDS = ("pages_read", "pages_written", "seeks", "sequential_reads",
             "buffer_hits")

OPS_FIELDS = ("distance_terms", "filter_checks", "edit_cells", "mbr_tests",
              "cluster_ops", "result_pairs")

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; a JSON true is not an integer.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def resolve_ref(schema_root, ref):
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref: {ref}")
    node = schema_root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def check(value, schema, schema_root, path, errors):
    """Validates `value` against the JSON Schema subset; appends to errors."""
    if "$ref" in schema:
        check(value, resolve_ref(schema_root, schema["$ref"]), schema_root,
              path, errors)
        return
    if "const" in schema:
        if value != schema["const"]:
            errors.append(f"{path}: expected {schema['const']!r}, "
                          f"got {value!r}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
        return
    if "type" in schema:
        if not TYPE_CHECKS[schema["type"]](value):
            errors.append(f"{path}: expected {schema['type']}, "
                          f"got {type(value).__name__}")
            return
    if "minimum" in schema and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in props:
                    errors.append(f"{path}: unexpected key {key!r}")
        for key, sub in props.items():
            if key in value:
                check(value[key], sub, schema_root, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            check(item, schema["items"], schema_root, f"{path}[{i}]", errors)


def check_ledger(report, rows, io_key, errors):
    """Σ rows[].<io_key> + unattributed_io == io_totals, field by field."""
    totals = report.get("io_totals", {})
    ledger = dict(report.get("unattributed_io", {}))
    for row in rows:
        for field, delta in row.get(io_key, {}).items():
            ledger[field] = ledger.get(field, 0) + delta
    for field in IO_FIELDS:
        if ledger.get(field) != totals.get(field):
            errors.append(
                f"ledger mismatch on {field}: "
                f"sum({io_key}) + unattributed = {ledger.get(field)}, "
                f"io_totals = {totals.get(field)}")


def check_shard_ledger(section, where, errors):
    """A shard section's own exact partition: Σ per_shard[].io +
    unattributed_io == join_io, and the same for ops, field by field."""
    rows = section.get("per_shard", [])
    for key, total_key, fields in (("io", "join_io", IO_FIELDS),
                                   ("ops", "join_ops", OPS_FIELDS)):
        totals = section.get(total_key, {})
        unattr = section.get("unattributed_" + key, {})
        ledger = dict(unattr)
        for row in rows:
            for field, delta in row.get(key, {}).items():
                ledger[field] = ledger.get(field, 0) + delta
        for field in fields:
            if ledger.get(field) != totals.get(field):
                errors.append(
                    f"{where}: shard ledger mismatch on {field}: "
                    f"sum(per_shard.{key}) + unattributed = "
                    f"{ledger.get(field)}, {total_key} = "
                    f"{totals.get(field)}")
    if section.get("count", 0) != 0 and len(rows) != section.get("count"):
        errors.append(f"{where}: per_shard has {len(rows)} rows, "
                      f"count = {section.get('count')}")


def validate_file(path, schemas):
    errors = []
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable: {exc}"]
    name = report.get("schema") if isinstance(report, dict) else None
    if name not in schemas:
        return [f"unknown schema {name!r}; expected one of "
                f"{sorted(schemas)}"]
    schema = schemas[name]
    check(report, schema, schema, "$", errors)
    if errors:
        return errors
    if name == "pmjoin.server_report.v1":
        # A server's I/O partitions over its queries' obs sessions.
        check_ledger(report, report.get("queries", []), "io", errors)
        for query in report.get("queries", []):
            if "shards" in query:
                check_shard_ledger(query["shards"],
                                   f"query {query.get('id')!r}", errors)
    else:
        # A run's I/O partitions over its span tree's exclusive deltas.
        check_ledger(report, report.get("phases", []), "io_self", errors)
        if "shards" in report:
            check_shard_ledger(report["shards"], "$.shards", errors)
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schemas = {}
    for name, schema_path in SCHEMA_PATHS.items():
        with open(schema_path, encoding="utf-8") as fh:
            schemas[name] = json.load(fh)
    failed = False
    for path in argv[1:]:
        errors = validate_file(path, schemas)
        if errors:
            failed = True
            print(f"FAIL {path}")
            for error in errors:
                print(f"  {error}")
        else:
            print(f"OK   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
