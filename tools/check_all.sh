#!/usr/bin/env bash
# One-shot correctness-tooling driver: project lint + clang-format check +
# clang-tidy over the exported compile database. CI runs the same three
# stages (see .github/workflows/ci.yml); locally, stages whose tool is not
# installed are skipped with a warning so the script is useful on minimal
# containers (the repo image ships only the compiler toolchain).
#
# Usage: tools/check_all.sh [build-dir]
#   build-dir: a CMake build directory with compile_commands.json
#              (default: build; configured automatically if missing).
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
FAILED=0

note() { printf '== %s\n' "$*"; }
skip() { printf '!! %s -- skipped\n' "$*"; }

# 1. Project linter + documentation checker (no dependencies beyond
#    python3).
note "pmjoin_lint"
if command -v python3 >/dev/null 2>&1; then
  python3 "$ROOT/tools/pmjoin_lint.py" || FAILED=1
  note "check_docs"
  python3 "$ROOT/tools/check_docs.py" || FAILED=1
else
  skip "python3 not found"
fi

# Source files for the format stage.
mapfile -t SOURCES < <(find "$ROOT/src" "$ROOT/tests" "$ROOT/bench" \
  "$ROOT/examples" -name '*.h' -o -name '*.cc' -o -name '*.cpp' | sort)

# 2. clang-format (check only; run with -i manually to apply).
note "clang-format --dry-run"
if command -v clang-format >/dev/null 2>&1; then
  clang-format --dry-run --Werror "${SOURCES[@]}" || FAILED=1
else
  skip "clang-format not found"
fi

# 3. clang-tidy over the compile database.
note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    note "configuring $BUILD_DIR for compile_commands.json"
    cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null || FAILED=1
  fi
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -quiet -p "$BUILD_DIR" \
        "$ROOT/(src|bench|examples)/.*" || FAILED=1
    else
      # Serial fallback: library sources only (the expensive part).
      find "$ROOT/src" -name '*.cc' | sort | while read -r f; do
        clang-tidy -quiet -p "$BUILD_DIR" "$f" || exit 1
      done || FAILED=1
    fi
  else
    skip "no compile_commands.json in $BUILD_DIR"
  fi
else
  skip "clang-tidy not found"
fi

if [ "$FAILED" -ne 0 ]; then
  echo "check_all: FAILED"
  exit 1
fi
echo "check_all: OK"
