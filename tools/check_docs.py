#!/usr/bin/env python3
"""Documentation consistency checker (stdlib only, no build needed).

Three rules, all derived from the source tree so the docs cannot drift
silently:

  1. Directory map: every direct subdirectory of src/ that contains
     sources must be named in DESIGN.md (the "Repository layout" /
     architecture map), so a new subsystem cannot land undocumented.
  2. Flag coverage: every command-line flag a tool parses (ParseFlag /
     strcmp call sites in its main source file) must appear both in that
     tool's own usage text and in the markdown documentation. Flags are
     extracted from source because this runs in the lint CI job, which
     never builds the binaries.
  3. Links: every relative markdown link in the documentation set must
     resolve to an existing file in the repository.

Usage: tools/check_docs.py [--repo DIR]
Exit code is non-zero if any rule fails.
"""

import argparse
import os
import re
import sys

# Tool entry points and where their flags must be documented (beyond the
# usage text embedded in the tool itself).
TOOL_SOURCES = {
    "examples/pmjoin_cli.cpp": ["README.md"],
    "src/tools/pmjoin_server.cc": ["docs/SERVER.md"],
}

# The documentation set scanned for links (plus everything in docs/).
DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
             "CHANGES.md"]

FLAG_PARSE_RE = re.compile(
    r'(?:ParseFlag\(argv\[i\],\s*|std::strcmp\(argv\[i\],\s*)"(--[a-z0-9-]+)"')
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SOURCE_SUFFIXES = (".h", ".cc", ".cpp")


def read(path):
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def check_directory_map(repo, errors):
    design = read(os.path.join(repo, "DESIGN.md"))
    src = os.path.join(repo, "src")
    for entry in sorted(os.listdir(src)):
        full = os.path.join(src, entry)
        if not os.path.isdir(full):
            continue
        if not any(name.endswith(SOURCE_SUFFIXES)
                   for name in os.listdir(full)):
            continue
        if f"src/{entry}" not in design:
            errors.append(f"DESIGN.md: src/{entry} missing from the "
                          "repository map (rule 1)")


def extract_flags(source_text):
    """All distinct --flags a tool's argv loop parses, except --help."""
    return sorted(set(FLAG_PARSE_RE.findall(source_text)) - {"--help"})


def check_flags(repo, errors):
    for source_rel, doc_rels in TOOL_SOURCES.items():
        source_path = os.path.join(repo, source_rel)
        if not os.path.exists(source_path):
            errors.append(f"{source_rel}: tool source missing "
                          "(stale TOOL_SOURCES entry?)")
            continue
        source = read(source_path)
        flags = extract_flags(source)
        if not flags:
            errors.append(f"{source_rel}: no flags found — parser idiom "
                          "changed? (rule 2)")
            continue
        docs = {rel: read(os.path.join(repo, rel)) for rel in doc_rels
                if os.path.exists(os.path.join(repo, rel))}
        for missing in set(doc_rels) - set(docs):
            errors.append(f"{source_rel}: doc file {missing} does not "
                          "exist (rule 2)")
        for flag in flags:
            # `--flag` must appear outside its own parse call: strip the
            # argv loop's string literals by requiring a usage-text or
            # comment occurrence too. The usage text repeats every flag,
            # so two occurrences anywhere is the cheap reliable proxy.
            if source.count(flag) < 2:
                errors.append(f"{source_rel}: {flag} parsed but absent "
                              "from the usage text (rule 2)")
            for rel, text in docs.items():
                if flag not in text:
                    errors.append(f"{rel}: {flag} (from {source_rel}) "
                                  "is undocumented (rule 2)")


def doc_set(repo):
    files = [rel for rel in DOC_FILES
             if os.path.exists(os.path.join(repo, rel))]
    docs_dir = os.path.join(repo, "docs")
    if os.path.isdir(docs_dir):
        files.extend(os.path.join("docs", name)
                     for name in sorted(os.listdir(docs_dir))
                     if name.endswith(".md"))
    return files


def check_links(repo, errors):
    for rel in doc_set(repo):
        text = read(os.path.join(repo, rel))
        base = os.path.dirname(os.path.join(repo, rel))
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link to {target} (rule 3)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repo",
                        default=os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))),
                        help="repository root (default: this script's repo)")
    args = parser.parse_args()

    errors = []
    check_directory_map(args.repo, errors)
    check_flags(args.repo, errors)
    check_links(args.repo, errors)
    if errors:
        for error in errors:
            print(f"check_docs: {error}")
        print(f"check_docs: {len(errors)} error(s)")
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
