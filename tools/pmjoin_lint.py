#!/usr/bin/env python3
"""pmjoin project linter: repo-specific rules clang-tidy cannot express.

Rules (see DESIGN.md "Invariants & checking"):

  no-throw          No exception may cross the public Status/Result API, so
                    `throw` / `try` / `catch` are banned outright in src/,
                    bench/, and examples/ (errors travel as Status; fatal
                    invariant violations abort via PMJOIN_CHECK).
  determinism       Every experiment must be exactly reproducible: no
                    rand()/srand(), std::random_device, or getenv() in src/
                    outside the seeded generator src/common/rng.*.
  wall-clock        Timing is observability metadata, never an input: all
                    clock reads (std::chrono clocks, clock_gettime,
                    gettimeofday, time()) in src/, bench/, and examples/
                    must go through obs::MonotonicNanos(), whose
                    implementation src/obs/clock.* is the only file allowed
                    to touch a clock primitive.
  io-accounting     IoStats is the single source of truth for every I/O
                    figure. Counter mutation (mutable_stats) is restricted
                    to the accounting owners (StorageBackend, BufferPool),
                    and direct disk access (ReadPage/ReadPages/WritePage/
                    ScanFile) is restricted to src/io/ and the sequential
                    baseline phases in src/baselines/ — core operators must
                    go through the BufferPool so buffer accounting stays
                    truthful.
  file-io           Raw file I/O primitives (open/fopen/pread/pwrite/...)
                    in src/ are restricted to the FileBackend
                    implementation, the obs artifact writers (run_report,
                    trace_exporter), and the server entry point's
                    control-plane job-file/report handling — everything
                    else must do its I/O through a StorageBackend so every
                    byte is both modeled and measured.
  sync-primitives   All locking in src/ goes through the annotated wrappers
                    in src/common/sync.h (Mutex, MutexLock, CondVar) so
                    Clang thread-safety analysis and the paranoid lock-rank
                    checker see every acquisition: raw std::mutex,
                    std::condition_variable, std::lock_guard & friends are
                    banned in src/ outside src/common/sync.{h,cc}.
  kernel-dispatch   Instruction-set selection is an implementation detail
                    of the batch distance kernels: src/ code must reach
                    them through geom/distance_kernels.h, so __AVX2__,
                    <immintrin.h>, and vector intrinsics are banned in
                    src/ outside src/geom/distance_kernels.{h,cc}.
  lock-rank         The global lock hierarchy is defined once, in
                    src/common/sync.h's lock_rank constants, and documented
                    once, in DESIGN.md's hierarchy table. Every constant
                    must have a unique rank value (the paranoid checker
                    orders acquisitions by it; a duplicate would let two
                    different mutexes interleave undetected) and every rank
                    must appear in DESIGN.md — an undocumented rank means
                    the capability table no longer describes the hierarchy
                    the code enforces.
  include-hygiene   Header guards match the file path (PMJOIN_<PATH>_H_),
                    each src/ .cc includes its own header first, no "../"
                    includes, no angle-bracket includes of project headers.
  whitespace        No tabs, no trailing whitespace, newline at EOF.

Usage: tools/pmjoin_lint.py [--root DIR] [paths...]
Exits non-zero iff any finding is reported.
"""

import argparse
import os
import re
import sys

DEFAULT_SCAN_DIRS = ("src", "tests", "bench", "examples")

# Rules that only make sense for (or are only enforced on) library code.
NO_THROW_DIRS = ("src", "bench", "examples")
DETERMINISM_DIR = "src"
DETERMINISM_ALLOWED = ("src/common/rng.h", "src/common/rng.cc")
WALL_CLOCK_DIRS = ("src", "bench", "examples")
WALL_CLOCK_ALLOWED = ("src/obs/clock.h", "src/obs/clock.cc")
MUTABLE_STATS_ALLOWED = (
    "src/io/storage_backend.h",
    "src/io/storage_backend.cc",
    "src/io/buffer_pool.cc",
)
DIRECT_DISK_ALLOWED_PREFIXES = ("src/io/", "src/baselines/")
FILE_IO_DIR = "src"
FILE_IO_ALLOWED = (
    "src/io/file_backend.cc",
    "src/obs/run_report.cc",
    "src/obs/trace_exporter.cc",
    # Control-plane I/O of the server entry point: reading the job file
    # and writing report artifacts. Data-plane bytes still flow through a
    # StorageBackend.
    "src/tools/pmjoin_server.cc",
)
KERNEL_DISPATCH_ALLOWED = (
    "src/geom/distance_kernels.h",
    "src/geom/distance_kernels.cc",
)
SYNC_PRIMITIVES_DIR = "src"
SYNC_PRIMITIVES_ALLOWED = ("src/common/sync.h", "src/common/sync.cc")

THROW_RE = re.compile(r"\b(throw|try|catch)\b")
DETERMINISM_RE = re.compile(
    r"\b(s?rand\s*\(|std::random_device|random_device\s+\w|getenv\s*\()"
)
WALL_CLOCK_RE = re.compile(
    r"\b(system_clock|steady_clock|high_resolution_clock"
    r"|clock_gettime\s*\(|gettimeofday\s*\(|time\s*\(\s*(NULL|nullptr|0)\s*\))"
)
MUTABLE_STATS_RE = re.compile(r"\bmutable_stats\s*\(")
DIRECT_DISK_RE = re.compile(
    r"(->|\.)\s*(ReadPage|ReadPages|WritePage|ScanFile)\s*\(")
FILE_IO_RE = re.compile(
    r"\b(open|openat|creat|fopen|fdopen|freopen|pread|pwrite|preadv"
    r"|pwritev)\s*\(")
KERNEL_DISPATCH_RE = re.compile(
    r"(__AVX2__|immintrin\.h|\b_mm\d*_\w+|\b(?:FloatStat)?Avx2\w*)")
SYNC_PRIMITIVES_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable"
    r"|condition_variable_any|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock)\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
GUARD_RE = re.compile(r"^\s*#\s*ifndef\s+(\S+)")

LOCK_RANK_HEADER = "src/common/sync.h"
LOCK_RANK_DOC = "DESIGN.md"
LOCK_RANK_RE = re.compile(r"\binline constexpr uint32_t (k\w+) = (\d+);")
# A rank is documented if it appears as the numeric second column of a
# DESIGN.md table row (the hierarchy capability table) or in "Rank N"
# prose (kLeaf is described in prose, not a table row).
LOCK_RANK_TABLE_RE = re.compile(r"^\|[^|]+\|\s*(\d+)\s*\|")
LOCK_RANK_PROSE_RE = re.compile(r"[Rr]ank (\d+)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Replaces comment and string/char-literal contents with spaces,
    preserving line structure so reported line numbers stay exact."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
                out.append(quote)
            elif ch == "\n":  # unterminated; fail safe
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def expected_guard(rel_path):
    stem = rel_path[len("src/"):] if rel_path.startswith("src/") else rel_path
    token = re.sub(r"[^A-Za-z0-9]", "_", stem[:-2])  # strip ".h"
    return f"PMJOIN_{token.upper()}_H_"


def in_dirs(rel_path, dirs):
    return any(rel_path == d or rel_path.startswith(d + "/") for d in dirs)


def lint_file(root, rel_path):
    findings = []
    abs_path = os.path.join(root, rel_path)
    with open(abs_path, encoding="utf-8") as f:
        raw = f.read()
    code = strip_comments_and_strings(raw)
    raw_lines = raw.split("\n")
    code_lines = code.split("\n")

    # whitespace ------------------------------------------------------------
    for lineno, line in enumerate(raw_lines, 1):
        if "\t" in line:
            findings.append(Finding(rel_path, lineno, "whitespace", "tab character"))
        if line != line.rstrip():
            findings.append(
                Finding(rel_path, lineno, "whitespace", "trailing whitespace"))
    if raw and not raw.endswith("\n"):
        findings.append(
            Finding(rel_path, len(raw_lines), "whitespace", "missing newline at EOF"))

    # token rules over comment/string-stripped code -------------------------
    for lineno, line in enumerate(code_lines, 1):
        if in_dirs(rel_path, NO_THROW_DIRS):
            m = THROW_RE.search(line)
            if m:
                findings.append(Finding(
                    rel_path, lineno, "no-throw",
                    f"'{m.group(1)}': exceptions are banned; return Status "
                    "(common/status.h) or abort via PMJOIN_CHECK"))
        if (in_dirs(rel_path, (DETERMINISM_DIR,))
                and rel_path not in DETERMINISM_ALLOWED):
            m = DETERMINISM_RE.search(line)
            if m:
                findings.append(Finding(
                    rel_path, lineno, "determinism",
                    f"'{m.group(0).strip()}': unseeded nondeterminism; route "
                    "all randomness through a seeded pmjoin::Rng "
                    "(src/common/rng.h)"))
        if (in_dirs(rel_path, (SYNC_PRIMITIVES_DIR,))
                and rel_path not in SYNC_PRIMITIVES_ALLOWED):
            m = SYNC_PRIMITIVES_RE.search(line)
            if m:
                findings.append(Finding(
                    rel_path, lineno, "sync-primitives",
                    f"'{m.group(0)}': raw sync primitive outside "
                    "src/common/sync.*; use the annotated Mutex / MutexLock "
                    "/ CondVar wrappers (common/sync.h) so thread-safety "
                    "analysis and the lock-rank checker see it"))
        if (in_dirs(rel_path, WALL_CLOCK_DIRS)
                and rel_path not in WALL_CLOCK_ALLOWED):
            m = WALL_CLOCK_RE.search(line)
            if m:
                findings.append(Finding(
                    rel_path, lineno, "wall-clock",
                    f"'{m.group(0).strip()}': clock primitive outside "
                    "src/obs/clock.*; read time through "
                    "obs::MonotonicNanos() (obs/clock.h) so timing stays "
                    "observability-only"))
        if (rel_path.startswith("src/")
                and rel_path not in KERNEL_DISPATCH_ALLOWED):
            m = KERNEL_DISPATCH_RE.search(line)
            if m:
                findings.append(Finding(
                    rel_path, lineno, "kernel-dispatch",
                    f"'{m.group(0)}': explicit SIMD lives only in "
                    "src/geom/distance_kernels.*; call the batch kernels "
                    "through geom/distance_kernels.h"))
        if rel_path.startswith("src/"):
            if (MUTABLE_STATS_RE.search(line)
                    and rel_path not in MUTABLE_STATS_ALLOWED):
                findings.append(Finding(
                    rel_path, lineno, "io-accounting",
                    "mutable_stats() outside the accounting owners "
                    "(StorageBackend / BufferPool); counters must only be "
                    "mutated where the I/O is performed"))
            m = DIRECT_DISK_RE.search(line)
            if m and not rel_path.startswith(DIRECT_DISK_ALLOWED_PREFIXES):
                findings.append(Finding(
                    rel_path, lineno, "io-accounting",
                    f"direct disk access '{m.group(2)}' outside src/io/ and "
                    "src/baselines/; operators must read through the "
                    "BufferPool so residency accounting stays truthful"))
            m = FILE_IO_RE.search(line)
            if m and rel_path not in FILE_IO_ALLOWED:
                findings.append(Finding(
                    rel_path, lineno, "file-io",
                    f"raw file I/O '{m.group(1)}' outside the FileBackend "
                    "TU and the obs artifact writers; go through a "
                    "StorageBackend so the byte is modeled and measured"))

    # include hygiene -------------------------------------------------------
    # Directives are detected on the comment-stripped text (so commented-out
    # includes don't count) but targets are read from the raw line (the
    # stripper blanks string contents).
    includes = []  # (lineno, style, target)
    for lineno, line in enumerate(code_lines, 1):
        if INCLUDE_RE.match(line):
            m = INCLUDE_RE.match(raw_lines[lineno - 1])
            if m:
                includes.append((lineno, m.group(1), m.group(2)))
    for lineno, style, target in includes:
        if target.startswith("../"):
            findings.append(Finding(
                rel_path, lineno, "include-hygiene",
                f'relative include "{target}"; include project headers by '
                "their src/-relative path"))
        if style == "<" and os.path.exists(os.path.join(root, "src", target)):
            findings.append(Finding(
                rel_path, lineno, "include-hygiene",
                f"project header <{target}> included with angle brackets; "
                "use quotes"))

    if rel_path.startswith("src/"):
        if rel_path.endswith(".h"):
            guards = [(ln, GUARD_RE.match(l).group(1))
                      for ln, l in enumerate(code_lines, 1) if GUARD_RE.match(l)]
            want = expected_guard(rel_path)
            if not guards:
                findings.append(Finding(
                    rel_path, 1, "include-hygiene",
                    f"missing header guard (expected {want})"))
            elif guards[0][1] != want:
                findings.append(Finding(
                    rel_path, guards[0][0], "include-hygiene",
                    f"header guard {guards[0][1]} should be {want}"))
        if rel_path.endswith(".cc"):
            own = rel_path[len("src/"):-len(".cc")] + ".h"
            if os.path.exists(os.path.join(root, "src", own)):
                if not includes or includes[0][2] != own:
                    findings.append(Finding(
                        rel_path, includes[0][0] if includes else 1,
                        "include-hygiene",
                        f'first include must be the own header "{own}"'))

    return findings


def lint_lock_ranks(root):
    """Repo-level rule: the sync.h lock-rank constants are unique and each
    rank appears in DESIGN.md's lock hierarchy documentation."""
    findings = []
    sync_path = os.path.join(root, LOCK_RANK_HEADER)
    doc_path = os.path.join(root, LOCK_RANK_DOC)
    if not os.path.exists(sync_path) or not os.path.exists(doc_path):
        return findings

    with open(sync_path, encoding="utf-8") as f:
        sync_code = strip_comments_and_strings(f.read())
    ranks = []  # (lineno, name, value)
    for lineno, line in enumerate(sync_code.split("\n"), 1):
        m = LOCK_RANK_RE.search(line)
        if m:
            ranks.append((lineno, m.group(1), int(m.group(2))))
    if not ranks:
        findings.append(Finding(
            LOCK_RANK_HEADER, 1, "lock-rank",
            "no lock_rank constants found; the lint rule and the header "
            "have diverged"))
        return findings

    first_with = {}
    for lineno, name, value in ranks:
        if value in first_with:
            findings.append(Finding(
                LOCK_RANK_HEADER, lineno, "lock-rank",
                f"{name} reuses rank {value} of {first_with[value]}; ranks "
                "must be unique so the paranoid checker totally orders "
                "acquisitions"))
        else:
            first_with[value] = name

    with open(doc_path, encoding="utf-8") as f:
        doc_lines = f.read().split("\n")
    documented = set()
    for line in doc_lines:
        m = LOCK_RANK_TABLE_RE.match(line)
        if m:
            documented.add(int(m.group(1)))
        for m in LOCK_RANK_PROSE_RE.finditer(line):
            documented.add(int(m.group(1)))
    for lineno, name, value in ranks:
        if value not in documented:
            findings.append(Finding(
                LOCK_RANK_HEADER, lineno, "lock-rank",
                f"rank {value} ({name}) is not in {LOCK_RANK_DOC}'s lock "
                "hierarchy table; document every rank so the capability "
                "table matches what the code enforces"))
    return findings


def collect_files(root, paths):
    rels = []
    if paths:
        for p in paths:
            # Interpret explicit paths relative to --root first (the form
            # check_all.sh and CI use), falling back to the cwd.
            if not os.path.isabs(p) and os.path.exists(os.path.join(root, p)):
                rels.append(p)
            else:
                rels.append(os.path.relpath(os.path.abspath(p), root))
        return rels
    for d in DEFAULT_SCAN_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, d)):
            for name in sorted(names):
                if name.endswith((".h", ".cc", ".cpp")):
                    rels.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(rels)


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: src tests bench examples)")
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    args = parser.parse_args()

    all_findings = []
    for rel in collect_files(args.root, args.paths):
        all_findings.extend(lint_file(args.root, rel))
    all_findings.extend(lint_lock_ranks(args.root))

    for finding in all_findings:
        print(finding)
    if all_findings:
        print(f"pmjoin_lint: {len(all_findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
