#!/bin/sh
# Concatenates the per-binary experiment outputs into bench_output.txt,
# in the canonical figure/table order, with section banners. Equivalent to
# running `for b in build/bench/*; do $b; done` and teeing, but keeps the
# long-running binaries' outputs from the recorded definitive run.
#
# Usage: tools/assemble_bench_output.sh <outputs-dir> > bench_output.txt
set -e
dir="${1:-/tmp/benchout}"
for b in bench_fig10_components bench_fig11_seq_components \
         bench_fig12_buffer_sweep bench_table2_sc_vs_cc \
         bench_fig13_competitors bench_fig14_scalability \
         bench_microcost bench_ablation bench_kernels; do
  echo "===================================================================="
  echo "==== $b"
  echo "===================================================================="
  cat "$dir/$b.txt"
  echo
done
