// Quickstart: the smallest end-to-end pmjoin program.
//
// Builds two small 2-d point datasets on the simulated disk, runs the
// paper's SC join (prediction matrix → square clustering → scheduled
// execution) through the one-call JoinDriver API, and prints the result
// count plus the attributed cost report.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/join_driver.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "io/simulated_disk.h"

int main() {
  using namespace pmjoin;

  // 1. A simulated disk holds every file and charges all I/O.
  SimulatedDisk disk;

  // 2. Generate two synthetic point sets and lay them out as paged,
  //    spatially clustered datasets (STR packing; one R*-tree over the
  //    page MBRs each).
  const VectorData red = GenRoadNetwork(20000, /*seed=*/1);
  const VectorData blue = GenRoadNetwork(15000, /*seed=*/2);
  VectorDataset::Options layout;
  layout.page_size_bytes = 1024;
  Result<VectorDataset> r = VectorDataset::Build(&disk, "red", red, layout);
  Result<VectorDataset> s =
      VectorDataset::Build(&disk, "blue", blue, layout);
  if (!r.ok() || !s.ok()) {
    std::fprintf(stderr, "build failed: %s / %s\n",
                 r.status().ToString().c_str(),
                 s.status().ToString().c_str());
    return 1;
  }

  // 3. Join: all pairs within ε = 0.005 (L2), via the paper's SC pipeline
  //    with a 32-page buffer.
  JoinDriver driver(&disk);
  JoinOptions options;
  options.algorithm = Algorithm::kSc;
  options.buffer_pages = 32;
  CountingSink sink;  // Use CollectingSink to keep the pairs.
  Result<JoinReport> report =
      driver.RunVector(*r, *s, /*eps=*/0.005, options, &sink);
  if (!report.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("pmjoin quickstart\n");
  std::printf("  datasets:        %llu x %llu records (%u x %u pages)\n",
              (unsigned long long)r->num_records(),
              (unsigned long long)s->num_records(), r->num_pages(),
              s->num_pages());
  std::printf("  result pairs:    %llu\n",
              (unsigned long long)sink.count());
  std::printf("  marked entries:  %llu of %llu page pairs (%.1f%%)\n",
              (unsigned long long)report->marked_entries,
              (unsigned long long)(report->matrix_rows *
                                   report->matrix_cols),
              100.0 * report->matrix_selectivity);
  std::printf("  clusters:        %llu\n",
              (unsigned long long)report->num_clusters);
  std::printf("  pages read:      %llu (%llu seeks)\n",
              (unsigned long long)report->io.pages_read,
              (unsigned long long)report->io.seeks);
  std::printf("  modeled seconds: %.3f io + %.3f cpu + %.3f preprocess"
              " = %.3f total\n",
              report->io_seconds, report->cpu_join_seconds,
              report->preprocess_seconds, report->TotalSeconds());
  return 0;
}
