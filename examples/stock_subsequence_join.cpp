// Stock subsequence join — the paper's sequence motivating query (§1/§3):
//
//   "Find all pairs of companies from the New York Exchange and the Tokyo
//    Exchange that have similar closing prices for one month."
//
// Two exchanges are simulated as collections of random-walk price series
// concatenated into one sequence per exchange (a common layout for tick
// archives); a subsequence join with L = 20 trading days finds all window
// pairs within ε in L2 after per-window normalization is approximated by
// using log-ish volatility scaling in the generator.
//
//   ./examples/stock_subsequence_join

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/join_driver.h"
#include "data/generators.h"
#include "io/simulated_disk.h"
#include "seq/sequence_store.h"

int main() {
  using namespace pmjoin;
  constexpr uint32_t kMonth = 20;    // Trading days in a month.
  constexpr uint32_t kPaaDims = 5;   // Must divide kMonth.
  constexpr double kEps = 1.5;       // Price-distance threshold.

  SimulatedDisk disk;
  // Each exchange: 40 tickers x 750 days, concatenated. Every ticker
  // trades at its own price level (otherwise all walks start equal and
  // everything joins with everything in the first weeks).
  auto build_exchange = [](uint64_t seed) {
    Rng levels(seed);
    std::vector<float> prices;
    for (int ticker = 0; ticker < 40; ++ticker) {
      std::vector<float> series =
          GenRandomWalk(750, seed * 1000 + ticker, /*volatility=*/0.012);
      const float scale =
          static_cast<float>(levels.UniformDouble(0.2, 6.0));
      for (float& v : series) v *= scale;
      prices.insert(prices.end(), series.begin(), series.end());
    }
    return prices;
  };
  std::vector<float> nyse_prices = build_exchange(1);
  std::vector<float> tokyo_prices = build_exchange(2);
  // Plant one dual-listed company: Tokyo ticker 7 tracks NYSE ticker 3
  // with small idiosyncratic noise — the pair the query should surface.
  {
    Rng noise(77);
    for (size_t day = 0; day < 750; ++day) {
      tokyo_prices[7 * 750 + day] = static_cast<float>(
          nyse_prices[3 * 750 + day] * (1.0 + noise.Gaussian(0.0, 0.001)));
    }
  }
  auto nyse = TimeSeriesStore::Build(&disk, "NYSE", std::move(nyse_prices),
                                     kMonth, kPaaDims, 4096);
  auto tokyo = TimeSeriesStore::Build(&disk, "Tokyo",
                                      std::move(tokyo_prices), kMonth,
                                      kPaaDims, 4096);
  if (!nyse.ok() || !tokyo.ok()) {
    std::fprintf(stderr, "store build failed\n");
    return 1;
  }

  std::printf("Stock subsequence join: %llu x %llu windows of %u days\n",
              (unsigned long long)nyse->layout().NumWindows(),
              (unsigned long long)tokyo->layout().NumWindows(), kMonth);

  JoinDriver driver(&disk);
  JoinOptions options;
  options.algorithm = Algorithm::kSc;
  options.buffer_pages = 64;
  CollectingSink sink;
  auto report = driver.RunTimeSeries(*nyse, *tokyo, kEps, options, &sink);
  if (!report.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("matched window pairs: %zu\n", sink.pairs().size());
  std::printf("matrix: %llu marked of %llu page pairs (%.1f%%), "
              "%llu clusters\n",
              (unsigned long long)report->marked_entries,
              (unsigned long long)(report->matrix_rows *
                                   report->matrix_cols),
              100.0 * report->matrix_selectivity,
              (unsigned long long)report->num_clusters);
  std::printf("io: %llu pages, %.3f modeled seconds total\n",
              (unsigned long long)report->io.pages_read,
              report->TotalSeconds());

  // Show a few matches, decoded back to (ticker, day).
  const uint64_t per_ticker = 750;
  size_t shown = 0;
  for (const auto& [a, b] : sink.pairs()) {
    if (shown >= 5) break;
    // Skip windows straddling two tickers' concatenation boundary.
    if (a % per_ticker + kMonth > per_ticker) continue;
    if (b % per_ticker + kMonth > per_ticker) continue;
    std::printf("  NYSE ticker %llu day %llu  ~  Tokyo ticker %llu day"
                " %llu\n",
                (unsigned long long)(a / per_ticker),
                (unsigned long long)(a % per_ticker),
                (unsigned long long)(b / per_ticker),
                (unsigned long long)(b % per_ticker));
    ++shown;
  }
  if (shown == 0) {
    std::printf("  (matches exist only across ticker boundaries at this"
                " ε; raise kEps to see in-ticker samples)\n");
  }
  return 0;
}
