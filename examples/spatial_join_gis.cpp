// GIS spatial join — the paper's motivating query (§1):
//
//   "Find all hotels in California that are within three miles of a
//    recreation area."
//
// Hotels and recreation areas are two synthetic 2-d point sets over a
// 100 x 100 mile region; the join threshold is 3 miles. The example runs
// the same query with every technique in the library and prints a cost
// comparison — a miniature Fig. 13.
//
//   ./examples/spatial_join_gis

#include <cstdio>

#include "core/join_driver.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "io/simulated_disk.h"

namespace {

/// Rescales unit-square points to a miles-based region.
pmjoin::VectorData ToMiles(pmjoin::VectorData data, float miles) {
  for (float& v : data.values) v *= miles;
  return data;
}

}  // namespace

int main() {
  using namespace pmjoin;
  constexpr double kRegionMiles = 100.0;
  constexpr double kRadiusMiles = 3.0;

  SimulatedDisk disk;
  // Hotels hug the road network; recreation areas cluster in a few
  // regions (parks).
  const VectorData hotels =
      ToMiles(GenRoadNetwork(30000, /*seed=*/11), kRegionMiles);
  const VectorData parks = ToMiles(
      GenCorrelatedClusters(8000, /*dims=*/2, /*seed=*/12,
                            /*num_clusters=*/12, /*latent_factors=*/2),
      kRegionMiles);

  VectorDataset::Options layout;
  layout.page_size_bytes = 1024;
  auto hotel_ds = VectorDataset::Build(&disk, "hotels", hotels, layout);
  auto park_ds = VectorDataset::Build(&disk, "parks", parks, layout);
  if (!hotel_ds.ok() || !park_ds.ok()) {
    std::fprintf(stderr, "dataset build failed\n");
    return 1;
  }

  std::printf("GIS join: hotels within %.0f miles of a recreation area\n",
              kRadiusMiles);
  std::printf("hotels: %llu (%u pages)   parks: %llu (%u pages)\n\n",
              (unsigned long long)hotel_ds->num_records(),
              hotel_ds->num_pages(),
              (unsigned long long)park_ds->num_records(),
              park_ds->num_pages());

  JoinDriver driver(&disk);
  std::printf("%-10s %12s %12s %12s %14s\n", "technique", "pages read",
              "io (s)", "total (s)", "result pairs");
  for (Algorithm algorithm :
       {Algorithm::kNlj, Algorithm::kPmNlj, Algorithm::kBfrj,
        Algorithm::kEgo, Algorithm::kPbsm, Algorithm::kRandomSc,
        Algorithm::kSc, Algorithm::kCc}) {
    JoinOptions options;
    options.algorithm = algorithm;
    options.buffer_pages = 32;
    options.page_size_bytes = 1024;
    CountingSink sink;
    auto report =
        driver.RunVector(*hotel_ds, *park_ds, kRadiusMiles, options, &sink);
    if (!report.ok()) {
      std::printf("%-10s failed: %s\n", AlgorithmName(algorithm).c_str(),
                  report.status().ToString().c_str());
      continue;
    }
    std::printf("%-10s %12llu %12.3f %12.3f %14llu\n",
                AlgorithmName(algorithm).c_str(),
                (unsigned long long)report->io.pages_read,
                report->io_seconds, report->TotalSeconds(),
                (unsigned long long)sink.count());
  }
  std::printf("\nEvery row reports the identical result set — the\n"
              "techniques differ only in how they schedule page I/O.\n");

  // Distance semijoin variant: "which hotels have at least one
  // recreation area within 3 miles?" — same join, SemiJoinSink.
  JoinOptions options;
  options.algorithm = Algorithm::kSc;
  options.buffer_pages = 32;
  options.page_size_bytes = 1024;
  SemiJoinSink semi;
  auto report =
      driver.RunVector(*hotel_ds, *park_ds, kRadiusMiles, options, &semi);
  if (report.ok()) {
    std::printf("\nsemijoin: %zu of %llu hotels are within %.0f miles of"
                " a recreation area\n",
                semi.left_ids().size(),
                (unsigned long long)hotel_ds->num_records(), kRadiusMiles);
  }
  return 0;
}
