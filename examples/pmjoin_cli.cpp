// pmjoin_cli — run any join in the library from the command line against
// the built-in synthetic dataset generators, printing the full cost
// report. Useful for exploring the algorithm/buffer/selectivity space
// without writing code.
//
// Usage:
//   pmjoin_cli [--data=road|clusters|uniform|dna|walk]
//              [--algo=nlj|pm-nlj|rand-sc|sc|cc|ego|bfrj|pbsm]
//              [--n=20000] [--dims=2] [--eps=0.01] [--k=0] [--edits=5]
//              [--buffer=64] [--page=1024] [--window=500] [--self]
//              [--seed=1] [--norm=l1|l2|linf] [--shards=N]
//              [--backend=sim|file] [--data-dir=DIR] [--io-threads=N]
//              [--trace=FILE] [--report=FILE]
//
// --k=N switches the vector-data join from an ε-join to a kNN join: each
// record of R is paired with its N nearest records of S under --norm
// (JoinDriver::RunKnnJoin). --algo is ignored with --k; combining --k
// with an explicit --eps is a flag error (the two select different query
// types); the sequence datasets (dna, walk) have no kNN path.
//
// --shards=N partitions the cluster sharing graph across N modeled
// shards (clustered engines and kNN only; see core/shard_coordinator.h).
// Pairs and total counters are byte-identical to --shards=1; the report
// gains a per-shard section (attributed I/O/CPU, isolated modeled I/O,
// cut weight, replication, balance).
//
// --backend selects the storage backend: `sim` (default) models I/O cost
// only; `file` runs the identical pipeline against real page files under
// --data-dir (default pmjoin-data), with per-page checksums, and reports
// measured I/O (syscalls, bytes, pread latency) next to the modeled cost.
// Result pairs and modeled I/O are byte-identical across backends.
//
// --io-threads enables the async read pipeline on the file backend: N
// dedicated I/O threads physically read the next cluster's pages while
// the current cluster joins. Results and modeled I/O are unchanged; only
// wall-clock time improves. 0 (default) reads synchronously; ignored on
// --backend=sim, which has no physical reads to overlap.
//
// --trace writes the run's phase spans as Chrome trace-event JSON (open in
// chrome://tracing or Perfetto); --report writes the
// pmjoin.run_report.v1 JSON object (per-phase I/O attribution, metrics,
// IoStats totals; see tools/run_report_schema.json). Neither changes the
// join's results or its modeled I/O accounting.
//
// Examples:
//   pmjoin_cli --data=road --algo=sc --n=30000 --eps=0.004 --buffer=32
//   pmjoin_cli --data=dna --algo=sc --n=150000 --edits=5 --self
//   pmjoin_cli --data=walk --algo=pm-nlj --n=50000 --eps=1.5 --window=20
//   pmjoin_cli --data=road --algo=cc --trace=trace.json --report=run.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/join_driver.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "io/file_backend.h"
#include "io/simulated_disk.h"
#include "io/storage_backend.h"
#include "obs/run_report.h"
#include "obs/span.h"
#include "obs/trace_exporter.h"
#include "seq/sequence_store.h"

namespace {

using namespace pmjoin;

struct CliArgs {
  std::string data = "road";
  std::string algo = "sc";
  size_t n = 20000;
  size_t dims = 2;
  double eps = 0.01;
  bool eps_explicit = false;  // --eps was typed (vs. the default above).
  uint32_t k = 0;  // 0 = ε-join; >= 1 = kNN join (vector data only).
  uint32_t shards = 1;  // modeled shards; 1 = single-node.
  uint32_t edits = 5;
  uint32_t buffer = 64;
  uint32_t page = 1024;
  uint32_t window = 500;
  bool self = false;
  uint64_t seed = 1;
  std::string norm = "l2";
  std::string backend = "sim";
  std::string data_dir = "pmjoin-data";
  uint32_t io_threads = 0;
  std::string trace;   // Chrome trace-event JSON output path.
  std::string report;  // pmjoin.run_report.v1 JSON output path.

  bool observed() const { return !trace.empty() || !report.empty(); }
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

std::optional<CliArgs> Parse(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--data", &value)) {
      args.data = value;
    } else if (ParseFlag(argv[i], "--algo", &value)) {
      args.algo = value;
    } else if (ParseFlag(argv[i], "--n", &value)) {
      args.n = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--dims", &value)) {
      args.dims = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--eps", &value)) {
      args.eps = std::atof(value.c_str());
      args.eps_explicit = true;
    } else if (ParseFlag(argv[i], "--shards", &value)) {
      args.shards = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--k", &value)) {
      args.k = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--edits", &value)) {
      args.edits = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--buffer", &value)) {
      args.buffer = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--page", &value)) {
      args.page = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--window", &value)) {
      args.window = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      args.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--norm", &value)) {
      args.norm = value;
    } else if (ParseFlag(argv[i], "--backend", &value)) {
      args.backend = value;
    } else if (ParseFlag(argv[i], "--data-dir", &value)) {
      args.data_dir = value;
    } else if (ParseFlag(argv[i], "--io-threads", &value)) {
      args.io_threads = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--trace", &value)) {
      args.trace = value;
    } else if (ParseFlag(argv[i], "--report", &value)) {
      args.report = value;
    } else if (std::strcmp(argv[i], "--self") == 0) {
      args.self = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", argv[i]);
      return std::nullopt;
    }
  }
  if (args.k > 0 && args.eps_explicit) {
    std::fprintf(stderr,
                 "--k and --eps are mutually exclusive: --k=N runs a kNN "
                 "join (no ε threshold), --eps=E runs an ε-join (no k). "
                 "Pick one.\n");
    return std::nullopt;
  }
  return args;
}

std::optional<Algorithm> AlgoOf(const std::string& name) {
  if (name == "nlj") return Algorithm::kNlj;
  if (name == "pm-nlj") return Algorithm::kPmNlj;
  if (name == "rand-sc") return Algorithm::kRandomSc;
  if (name == "sc") return Algorithm::kSc;
  if (name == "cc") return Algorithm::kCc;
  if (name == "ego") return Algorithm::kEgo;
  if (name == "bfrj") return Algorithm::kBfrj;
  if (name == "pbsm") return Algorithm::kPbsm;
  return std::nullopt;
}

std::optional<Norm> NormOf(const std::string& name) {
  if (name == "l1") return Norm::kL1;
  if (name == "l2") return Norm::kL2;
  if (name == "linf") return Norm::kLInf;
  return std::nullopt;
}

/// Prints the backend's real-I/O counters (nonzero only for --backend=file)
/// so modeled and measured cost sit side by side in the output.
void PrintMeasuredIo(const StorageBackend& disk) {
  const StorageBackend::MeasuredIo& m = disk.measured();
  if (m.read_syscalls + m.write_syscalls == 0) return;
  std::printf("measured io:      %llu preads / %llu bytes, %llu pwrites / "
              "%llu bytes, %llu checksum checks\n",
              (unsigned long long)m.read_syscalls,
              (unsigned long long)m.read_bytes,
              (unsigned long long)m.write_syscalls,
              (unsigned long long)m.write_bytes,
              (unsigned long long)m.checksum_checks);
}

void PrintReport(const JoinReport& report, uint64_t result_pairs) {
  std::printf("algorithm:        %s\n",
              AlgorithmName(report.algorithm).c_str());
  std::printf("result pairs:     %llu\n",
              (unsigned long long)result_pairs);
  if (report.matrix_rows != 0) {
    std::printf("matrix:           %llux%llu, %llu marked (%.2f%%)\n",
                (unsigned long long)report.matrix_rows,
                (unsigned long long)report.matrix_cols,
                (unsigned long long)report.marked_entries,
                100.0 * report.matrix_selectivity);
  }
  if (report.num_clusters != 0) {
    std::printf("clusters:         %llu\n",
                (unsigned long long)report.num_clusters);
  }
  std::printf("io:               %llu pages read, %llu written, %llu "
              "seeks, %llu buffer hits\n",
              (unsigned long long)report.io.pages_read,
              (unsigned long long)report.io.pages_written,
              (unsigned long long)report.io.seeks,
              (unsigned long long)report.io.buffer_hits);
  std::printf("cpu counters:     %s\n", report.ops.ToString().c_str());
  std::printf("modeled seconds:  io %.3f + cpu %.3f + preprocess %.3f = "
              "%.3f\n",
              report.io_seconds, report.cpu_join_seconds,
              report.preprocess_seconds, report.TotalSeconds());
  if (report.shards > 1) {
    std::printf("shards:           %u, cut %llu/%llu, replicated %llu/%llu "
                "pages, balance %.3f\n",
                report.shards,
                (unsigned long long)report.shard_cut_weight,
                (unsigned long long)report.shard_sharing_weight,
                (unsigned long long)report.shard_replicated_pages,
                (unsigned long long)report.shard_distinct_pages,
                report.shard_balance_ratio);
    for (size_t i = 0; i < report.shard_stats.size(); ++i) {
      const ShardStats& s = report.shard_stats[i];
      std::printf("  shard %zu:        %llu clusters, %llu entries, "
                  "%llu pages, io %llu read / %llu hits, modeled %llu read\n",
                  i, (unsigned long long)s.clusters,
                  (unsigned long long)s.entries, (unsigned long long)s.pages,
                  (unsigned long long)s.io.pages_read,
                  (unsigned long long)s.io.buffer_hits,
                  (unsigned long long)s.modeled_io.pages_read);
    }
  }
}

/// Ends the observability session and writes the --trace / --report
/// artifacts. Called after the join has printed its report;
/// `join_report` feeds the run report's shard section when sharded.
int FinishObservability(const CliArgs& args, const JoinReport& join_report) {
  if (!args.observed()) return 0;
  obs::Tracer::Get().StopSession();
  const std::vector<obs::TraceEvent> events = obs::Tracer::Get().TakeEvents();
  if (!args.trace.empty()) {
    const Status st = obs::WriteChromeTrace(events, args.trace);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("trace:            %s (%zu spans)\n", args.trace.c_str(),
                events.size());
  }
  if (!args.report.empty()) {
    obs::RunReport report;
    report.SetContext("binary", "pmjoin_cli");
    report.SetContext("backend", args.backend);
    report.SetContext("data", args.data);
    report.SetContext("algo", args.algo);
    report.SetContext("n", static_cast<uint64_t>(args.n));
    report.SetContext("buffer", static_cast<uint64_t>(args.buffer));
    report.SetContext("page", static_cast<uint64_t>(args.page));
    report.SetContext("seed", args.seed);
    report.SetContext("shards", static_cast<uint64_t>(args.shards));
    if (join_report.shards > 1)
      report.SetShardSection(ShardSectionOf(join_report));
    report.CaptureSession(events);
    const Status st = report.WriteFile(args.report);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("report:           %s (%zu phases)\n", args.report.c_str(),
                report.phases().size());
  }
  return 0;
}

int Run(const CliArgs& args) {
  const auto algorithm = AlgoOf(args.algo);
  const auto norm = NormOf(args.norm);
  if (!algorithm || !norm) {
    std::fprintf(stderr, "bad --algo or --norm value\n");
    return 2;
  }
  std::unique_ptr<StorageBackend> backend;
  if (args.backend == "sim") {
    backend = std::make_unique<SimulatedDisk>();
  } else if (args.backend == "file") {
    FileBackend::Options fb;
    fb.page_size_bytes = args.page;
    auto opened = FileBackend::Open(args.data_dir, fb);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    backend = std::move(opened).value();
  } else {
    std::fprintf(stderr, "bad --backend value: %s\n", args.backend.c_str());
    return 2;
  }
  StorageBackend& disk = *backend;
  // The session brackets dataset build + join: disk traffic outside the
  // instrumented join phases surfaces as the report's unattributed_io.
  if (args.observed()) obs::Tracer::Get().StartSession(&disk);
  JoinDriver driver(&disk);
  JoinOptions options;
  options.algorithm = *algorithm;
  options.buffer_pages = args.buffer;
  options.page_size_bytes = args.page;
  options.norm = *norm;
  options.seed = args.seed;
  options.io_threads = args.io_threads;
  options.shards = args.shards;
  CountingSink sink;

  if (args.data == "road" || args.data == "clusters" ||
      args.data == "uniform") {
    VectorData r_data, s_data;
    if (args.data == "road") {
      r_data = GenRoadNetwork(args.n, args.seed);
      s_data = GenRoadNetwork(args.n, args.seed + 1);
    } else if (args.data == "clusters") {
      r_data = GenCorrelatedClusters(args.n, args.dims, args.seed);
      s_data = GenCorrelatedClusters(args.n, args.dims, args.seed + 1);
    } else {
      r_data = GenUniform(args.n, args.dims, args.seed);
      s_data = GenUniform(args.n, args.dims, args.seed + 1);
    }
    VectorDataset::Options layout;
    layout.page_size_bytes = args.page;
    auto r = VectorDataset::Build(&disk, "R", r_data, layout);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::optional<VectorDataset> s;
    if (!args.self) {
      auto built = VectorDataset::Build(&disk, "S", s_data, layout);
      if (!built.ok()) {
        std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
        return 1;
      }
      s.emplace(std::move(built).value());
    }
    auto report =
        args.k > 0
            ? driver.RunKnnJoin(*r, args.self ? *r : *s, args.k, options,
                                &sink)
            : driver.RunVector(*r, args.self ? *r : *s, args.eps, options,
                               &sink);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    PrintReport(*report, sink.count());
    PrintMeasuredIo(disk);
    return FinishObservability(args, *report);
  }

  if (args.k > 0) {
    std::fprintf(stderr,
                 "--k is for vector data only (road|clusters|uniform)\n");
    return 2;
  }

  if (args.data == "dna") {
    std::vector<uint8_t> a, b;
    GenDnaPair(args.n, args.n, args.seed, &a, &b, 0.3, 0.004,
               /*regime_scale=*/std::min(1.0, args.n / 4225477.0 + 0.15));
    auto r = StringSequenceStore::Build(&disk, "R", std::move(a), 4,
                                        args.window, args.page);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::optional<StringSequenceStore> s;
    if (!args.self) {
      auto built = StringSequenceStore::Build(&disk, "S", std::move(b), 4,
                                              args.window, args.page);
      if (!built.ok()) {
        std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
        return 1;
      }
      s.emplace(std::move(built).value());
    }
    auto report = driver.RunString(*r, args.self ? *r : *s, args.edits,
                                   options, &sink);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    PrintReport(*report, sink.count());
    PrintMeasuredIo(disk);
    return FinishObservability(args, *report);
  }

  if (args.data == "walk") {
    const uint32_t window = args.window > 64 ? 20 : args.window;
    const uint32_t paa = window % 5 == 0 ? 5 : (window % 4 == 0 ? 4 : 1);
    auto r = TimeSeriesStore::Build(&disk, "R",
                                    GenRandomWalk(args.n, args.seed),
                                    window, paa, args.page);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::optional<TimeSeriesStore> s;
    if (!args.self) {
      auto built = TimeSeriesStore::Build(
          &disk, "S", GenRandomWalk(args.n, args.seed + 1), window, paa,
          args.page);
      if (!built.ok()) {
        std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
        return 1;
      }
      s.emplace(std::move(built).value());
    }
    auto report = driver.RunTimeSeries(*r, args.self ? *r : *s, args.eps,
                                       options, &sink);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    PrintReport(*report, sink.count());
    PrintMeasuredIo(disk);
    return FinishObservability(args, *report);
  }

  std::fprintf(stderr, "bad --data value: %s\n", args.data.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = Parse(argc, argv);
  if (!args) {
    std::printf(
        "usage: pmjoin_cli [--data=road|clusters|uniform|dna|walk]\n"
        "                  [--algo=nlj|pm-nlj|rand-sc|sc|cc|ego|bfrj|pbsm]\n"
        "                  [--n=N] [--dims=D] [--eps=E] [--k=N] [--edits=K]\n"
        "                  [--buffer=B] [--page=BYTES] [--window=L]\n"
        "                  [--self] [--seed=S] [--norm=l1|l2|linf]\n"
        "                  [--shards=N] [--trace=FILE] [--report=FILE]\n"
        "                  [--backend=sim|file] [--data-dir=DIR]\n"
        "                  [--io-threads=N]\n"
        "--trace writes Chrome trace-event JSON (chrome://tracing);\n"
        "--report writes the pmjoin.run_report.v1 JSON object.\n"
        "--backend=file stores pages in DIR (default pmjoin-data) with\n"
        "real pread/pwrite and per-page checksums; modeled I/O counters\n"
        "are identical to --backend=sim.\n"
        "--io-threads=N overlaps the file backend's physical reads with\n"
        "the joins (async prefetch); results and modeled I/O unchanged.\n"
        "--k=N runs a kNN join on vector data (ignores --algo; cannot be\n"
        "combined with an explicit --eps).\n"
        "--shards=N partitions the cluster sharing graph across N modeled\n"
        "shards; results are byte-identical to --shards=1 and the report\n"
        "gains per-shard I/O, cut-weight, and replication stats.\n");
    return 2;
  }
  return Run(*args);
}
