// Genome subsequence join — the paper's second §3 query:
//
//   "Find all similar genome substring pairs of length 500, one from the
//    Human Genome and the other from the Mouse Genome."
//
// Two homologous synthetic chromosomes (shared motif pool, per-symbol
// mutations) are joined for all length-500 substring pairs within 5 edit
// operations. Shows the MRS-style frequency-vector page summaries at work
// and compares SC against plain NLJ on the same query.
//
//   ./examples/genome_join

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/join_driver.h"
#include "data/generators.h"
#include "io/simulated_disk.h"
#include "seq/sequence_store.h"

int main() {
  using namespace pmjoin;
  constexpr uint32_t kSubstringLen = 500;
  constexpr uint32_t kMaxEdits = 5;  // ε/symbol = 0.01.

  SimulatedDisk disk;
  std::vector<uint8_t> human, mouse;
  GenDnaPair(/*length_a=*/60000, /*length_b=*/45000, /*seed=*/42, &human,
             &mouse, /*repeat_fraction=*/0.30, /*mutation_rate=*/0.004,
             /*regime_scale=*/0.15);  // Isochores scaled to the sizes.
  // Plant two conserved (orthologous) regions: mouse carries copies of
  // human segments with ~0.3% divergence — the pairs the query surfaces.
  {
    Rng ortho(7);
    const size_t spans[][2] = {{12000, 30000}, {31000, 8000}};
    for (const auto& [src, dst] : spans) {
      for (size_t i = 0; i < 2500; ++i) {
        uint8_t c = human[src + i];
        if (ortho.Bernoulli(0.003))
          c = static_cast<uint8_t>(ortho.Uniform(4));
        mouse[dst + i] = c;
      }
    }
  }
  auto human_store = StringSequenceStore::Build(
      &disk, "human", std::move(human), 4, kSubstringLen, 4096);
  auto mouse_store = StringSequenceStore::Build(
      &disk, "mouse", std::move(mouse), 4, kSubstringLen, 4096);
  if (!human_store.ok() || !mouse_store.ok()) {
    std::fprintf(stderr, "store build failed\n");
    return 1;
  }

  std::printf("Genome join: length-%u substrings within %u edits\n",
              kSubstringLen, kMaxEdits);
  std::printf("human: %llu windows (%u pages)  mouse: %llu windows"
              " (%u pages)\n\n",
              (unsigned long long)human_store->layout().NumWindows(),
              human_store->layout().NumPages(),
              (unsigned long long)mouse_store->layout().NumWindows(),
              mouse_store->layout().NumPages());

  JoinDriver driver(&disk);
  for (Algorithm algorithm : {Algorithm::kNlj, Algorithm::kSc}) {
    JoinOptions options;
    options.algorithm = algorithm;
    options.buffer_pages = 24;
    CollectingSink sink;
    auto report = driver.RunString(*human_store, *mouse_store, kMaxEdits,
                                   options, &sink);
    if (!report.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   AlgorithmName(algorithm).c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6s matches=%-8zu pages_read=%-8llu total=%.3fs"
                " (io %.3f, cpu %.3f)\n",
                AlgorithmName(algorithm).c_str(), sink.pairs().size(),
                (unsigned long long)report->io.pages_read,
                report->TotalSeconds(), report->io_seconds,
                report->cpu_join_seconds);
    if (algorithm == Algorithm::kSc && !sink.pairs().empty()) {
      std::printf("\nsample homologous pairs (human offset ~ mouse"
                  " offset):\n");
      size_t shown = 0;
      uint64_t last = ~uint64_t(0);
      for (const auto& [h, m] : sink.Sorted()) {
        if (shown >= 5) break;
        if (h / 1000 == last) continue;  // One sample per human region.
        last = h / 1000;
        std::printf("  human @%llu  ~  mouse @%llu\n",
                    (unsigned long long)h, (unsigned long long)m);
        ++shown;
      }
    }
  }
  return 0;
}
