#include "geom/mbr.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::RandomBox;
using testing_util::RandomPoint;

TEST(MbrTest, NewBoxIsEmpty) {
  Mbr m(3);
  EXPECT_TRUE(m.empty());
  EXPECT_DOUBLE_EQ(m.Area(), 0.0);
}

TEST(MbrTest, ExpandPointMakesDegenerateBox) {
  Mbr m(2);
  const std::vector<float> p{0.25f, 0.75f};
  m.Expand(p);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.lo(0), 0.25f);
  EXPECT_EQ(m.hi(0), 0.25f);
  EXPECT_TRUE(m.Contains(p));
}

TEST(MbrTest, ExpandCoversAllPoints) {
  Rng rng(3);
  Mbr m(4);
  std::vector<std::vector<float>> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back(RandomPoint(&rng, 4));
    m.Expand(points.back());
  }
  for (const auto& p : points) EXPECT_TRUE(m.Contains(p));
}

TEST(MbrTest, ExpandWithBoxCoversBoth) {
  Rng rng(5);
  Mbr a = RandomBox(&rng, 3);
  const Mbr b = RandomBox(&rng, 3);
  Mbr u = a;
  u.Expand(b);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
}

TEST(MbrTest, ExtendGrowsSymmetrically) {
  Mbr m = Mbr::FromBounds({0.0f, 0.0f}, {1.0f, 2.0f});
  m.Extend(0.5f);
  EXPECT_FLOAT_EQ(m.lo(0), -0.5f);
  EXPECT_FLOAT_EQ(m.hi(0), 1.5f);
  EXPECT_FLOAT_EQ(m.lo(1), -0.5f);
  EXPECT_FLOAT_EQ(m.hi(1), 2.5f);
}

TEST(MbrTest, IntersectsSymmetric) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const Mbr a = RandomBox(&rng, 2, 0.5);
    const Mbr b = RandomBox(&rng, 2, 0.5);
    EXPECT_EQ(a.Intersects(b), b.Intersects(a));
  }
}

TEST(MbrTest, TouchingBoxesIntersect) {
  const Mbr a = Mbr::FromBounds({0.0f}, {1.0f});
  const Mbr b = Mbr::FromBounds({1.0f}, {2.0f});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(a.MinDist(b, Norm::kL2), 0.0);
}

TEST(MbrTest, DisjointBoxesDoNotIntersect) {
  const Mbr a = Mbr::FromBounds({0.0f, 0.0f}, {1.0f, 1.0f});
  const Mbr b = Mbr::FromBounds({2.0f, 2.0f}, {3.0f, 3.0f});
  EXPECT_FALSE(a.Intersects(b));
}

TEST(MbrTest, IntersectionBox) {
  const Mbr a = Mbr::FromBounds({0.0f, 0.0f}, {2.0f, 2.0f});
  const Mbr b = Mbr::FromBounds({1.0f, 1.0f}, {3.0f, 3.0f});
  const Mbr i = a.Intersection(b);
  EXPECT_FALSE(i.empty());
  EXPECT_FLOAT_EQ(i.lo(0), 1.0f);
  EXPECT_FLOAT_EQ(i.hi(0), 2.0f);
  EXPECT_DOUBLE_EQ(i.Area(), 1.0);
}

TEST(MbrTest, IntersectionOfDisjointIsEmpty) {
  const Mbr a = Mbr::FromBounds({0.0f}, {1.0f});
  const Mbr b = Mbr::FromBounds({5.0f}, {6.0f});
  EXPECT_TRUE(a.Intersection(b).empty());
}

TEST(MbrTest, KnownMinDistL2) {
  const Mbr a = Mbr::FromBounds({0.0f, 0.0f}, {1.0f, 1.0f});
  const Mbr b = Mbr::FromBounds({4.0f, 5.0f}, {6.0f, 7.0f});
  // Gap is 3 in x, 4 in y.
  EXPECT_DOUBLE_EQ(a.MinDist(b, Norm::kL2), 5.0);
  EXPECT_DOUBLE_EQ(a.MinDist(b, Norm::kL1), 7.0);
  EXPECT_DOUBLE_EQ(a.MinDist(b, Norm::kLInf), 4.0);
}

class MbrNormTest : public ::testing::TestWithParam<Norm> {};

TEST_P(MbrNormTest, MinDistIsLowerBoundOnPointDistances) {
  // The Table-1 contract: for any points x in A and y in B,
  // MinDist(A, B) <= distance(x, y). This is the correctness backbone of
  // Theorem 1.
  Rng rng(11);
  const Norm n = GetParam();
  for (int trial = 0; trial < 100; ++trial) {
    Mbr a(3), b(3);
    std::vector<std::vector<float>> pa, pb;
    for (int i = 0; i < 8; ++i) {
      pa.push_back(RandomPoint(&rng, 3));
      a.Expand(pa.back());
      pb.push_back(RandomPoint(&rng, 3));
      b.Expand(pb.back());
    }
    const double lb = a.MinDist(b, n);
    for (const auto& x : pa) {
      for (const auto& y : pb) {
        EXPECT_LE(lb, VectorDistance(x, y, n) + 1e-6);
      }
    }
  }
}

TEST_P(MbrNormTest, MinDistZeroIffIntersecting) {
  Rng rng(13);
  const Norm n = GetParam();
  for (int trial = 0; trial < 200; ++trial) {
    const Mbr a = RandomBox(&rng, 2, 0.4);
    const Mbr b = RandomBox(&rng, 2, 0.4);
    if (a.Intersects(b)) {
      EXPECT_DOUBLE_EQ(a.MinDist(b, n), 0.0);
    } else {
      EXPECT_GT(a.MinDist(b, n), 0.0);
    }
  }
}

TEST_P(MbrNormTest, MinDistSymmetric) {
  Rng rng(17);
  const Norm n = GetParam();
  for (int trial = 0; trial < 100; ++trial) {
    const Mbr a = RandomBox(&rng, 3);
    const Mbr b = RandomBox(&rng, 3);
    EXPECT_DOUBLE_EQ(a.MinDist(b, n), b.MinDist(a, n));
  }
}

TEST(MbrTest, MinDistSquaredIsExactSquareOfMinDist) {
  // MinDistSquared accumulates the same gap terms in the same order as
  // MinDist(L2) and skips only the final sqrt, so squaring MinDist must
  // reproduce it to the last bit that sqrt preserves.
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t dims = 1 + trial % 6;
    const Mbr a = RandomBox(&rng, dims, 0.3);
    const Mbr b = RandomBox(&rng, dims, 0.3);
    const double d = a.MinDist(b, Norm::kL2);
    EXPECT_DOUBLE_EQ(a.MinDistSquared(b), d * d);
    EXPECT_DOUBLE_EQ(a.MinDistSquared(b), b.MinDistSquared(a));
  }
}

TEST_P(MbrNormTest, MinDistWithinMatchesThresholdComparison) {
  // MinDistWithin(o, n, t) must equal the norm's exact threshold
  // comparison — MinDistSquared <= t² for L2 (its documented boundary
  // semantics, no sqrt rounding), MinDist <= t otherwise — including at
  // thresholds placed exactly on the boundary.
  Rng rng(31);
  const Norm n = GetParam();
  const auto expect_within = [n](const Mbr& a, const Mbr& b, double t) {
    return n == Norm::kL2 ? a.MinDistSquared(b) <= t * t
                          : a.MinDist(b, n) <= t;
  };
  for (int trial = 0; trial < 500; ++trial) {
    const size_t dims = 1 + trial % 5;
    const Mbr a = RandomBox(&rng, dims, 0.3);
    const Mbr b = RandomBox(&rng, dims, 0.3);
    const double d = a.MinDist(b, n);
    // Random thresholds plus the boundary value and its neighborhood.
    for (const double t :
         {rng.UniformDouble() * 2.0, d, d * 0.999, d * 1.001}) {
      EXPECT_EQ(a.MinDistWithin(b, n, t), expect_within(a, b, t))
          << NormName(n) << " d=" << d << " t=" << t;
    }
    const auto p = RandomPoint(&rng, dims);
    const Mbr pb = Mbr::FromPoint(p);
    for (const double t :
         {rng.UniformDouble() * 2.0, a.MinDist(p, n)}) {
      EXPECT_EQ(a.MinDistWithin(std::span<const float>(p), n, t),
                expect_within(a, pb, t))
          << NormName(n) << " t=" << t;
    }
  }
}

TEST_P(MbrNormTest, ExtendedIntersectionEquivalentToGapTest) {
  // The §5.1 construction: MBRs extended by ε/2 intersect ⟺ every
  // per-dimension gap <= ε ⟺ MinDist_Linf <= ε. For Linf this is exactly
  // the marking condition; for other norms it is a necessary condition.
  Rng rng(19);
  const Norm n = GetParam();
  for (int trial = 0; trial < 300; ++trial) {
    const Mbr a = RandomBox(&rng, 2, 0.3);
    const Mbr b = RandomBox(&rng, 2, 0.3);
    const float eps = static_cast<float>(rng.UniformDouble() * 0.5);
    const bool extended_intersect =
        a.Extended(eps / 2).Intersects(b.Extended(eps / 2));
    if (a.MinDist(b, n) <= eps) {
      EXPECT_TRUE(extended_intersect);
    }
    if (n == Norm::kLInf && !extended_intersect) {
      EXPECT_GT(a.MinDist(b, Norm::kLInf), eps - 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllNorms, MbrNormTest,
                         ::testing::Values(Norm::kL1, Norm::kL2,
                                           Norm::kLInf),
                         [](const ::testing::TestParamInfo<Norm>& info) {
                           return NormName(info.param);
                         });

TEST(MbrTest, AreaAndMargin) {
  const Mbr m = Mbr::FromBounds({0.0f, 0.0f, 0.0f}, {1.0f, 2.0f, 3.0f});
  EXPECT_DOUBLE_EQ(m.Area(), 6.0);
  EXPECT_DOUBLE_EQ(m.Margin(), 6.0);
}

TEST(MbrTest, OverlapArea) {
  const Mbr a = Mbr::FromBounds({0.0f, 0.0f}, {2.0f, 2.0f});
  const Mbr b = Mbr::FromBounds({1.0f, 1.0f}, {4.0f, 4.0f});
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  const Mbr c = Mbr::FromBounds({3.0f, 3.0f}, {4.0f, 4.0f});
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
}

TEST(MbrTest, CenterMidpoint) {
  const Mbr m = Mbr::FromBounds({0.0f, 2.0f}, {1.0f, 4.0f});
  EXPECT_DOUBLE_EQ(m.Center(0), 0.5);
  EXPECT_DOUBLE_EQ(m.Center(1), 3.0);
}

TEST(MbrTest, EqualityAndToString) {
  const Mbr a = Mbr::FromBounds({0.0f}, {1.0f});
  const Mbr b = Mbr::FromBounds({0.0f}, {1.0f});
  const Mbr c = Mbr::FromBounds({0.0f}, {2.0f});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.ToString().find("0"), std::string::npos);
}

TEST(MbrTest, ContainsBoxTransitivity) {
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const Mbr inner = RandomBox(&rng, 2, 0.1);
    Mbr outer = inner;
    outer.Extend(0.05f);
    EXPECT_TRUE(outer.Contains(inner));
    EXPECT_TRUE(outer.Intersects(inner));
  }
}

}  // namespace
}  // namespace pmjoin
