#include "geom/distance_kernels.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/distance.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::RandomPoint;

/// A padded record block built from `count` random points: rows are
/// `PaddedWidth(dims)` floats apart with the padding zero-filled, matching
/// VectorDataset::PageBlock's layout guarantee.
struct TestBlock {
  std::vector<float> storage;
  std::vector<std::vector<float>> points;
  kernels::BlockView view;

  TestBlock(Rng* rng, uint32_t count, size_t dims) {
    const uint32_t stride = kernels::PaddedWidth(dims);
    storage.assign(size_t(count) * stride, 0.0f);
    for (uint32_t j = 0; j < count; ++j) {
      points.push_back(RandomPoint(rng, dims));
      std::copy(points.back().begin(), points.back().end(),
                storage.begin() + size_t(j) * stride);
    }
    view = kernels::BlockView{storage.data(), count, stride};
  }
};

/// Query padded out to the block's stride (zero tail).
std::vector<float> PaddedQuery(const std::vector<float>& q,
                               uint32_t stride) {
  std::vector<float> padded(stride, 0.0f);
  std::copy(q.begin(), q.end(), padded.begin());
  return padded;
}

class KernelDecisionTest : public ::testing::TestWithParam<Norm> {};

/// The determinism contract: for every row, the kernel's bit equals the
/// scalar double-precision reference's bit — including eps values placed
/// exactly at sampled pair distances, where the float fast path must fall
/// back to the exact comparison.
TEST_P(KernelDecisionTest, MaskMatchesScalarReferenceAcrossDims) {
  const Norm norm = GetParam();
  Rng rng(101);
  for (const size_t dims : {1u, 3u, 8u, 13u, 16u, 33u, 64u, 70u, 129u}) {
    const TestBlock block(&rng, 97, dims);
    for (int trial = 0; trial < 8; ++trial) {
      const auto query = RandomPoint(&rng, dims);
      const auto padded = PaddedQuery(query, block.view.stride);
      // Mix random thresholds with exact pair distances (boundary case:
      // distance(q, row) == eps must be "within", as in the reference).
      double eps;
      if (trial % 2 == 0) {
        eps = rng.UniformDouble() * (norm == Norm::kL1 ? dims * 0.3 : 1.5);
      } else {
        const size_t j = rng.Uniform(block.view.count);
        eps = VectorDistance(query, block.points[j], norm);
      }
      std::vector<uint8_t> mask(block.view.count, 0xFF);
      const uint32_t n = kernels::WithinMaskBlock(
          padded.data(), block.view, dims, norm, eps, mask.data());
      uint32_t expect_count = 0;
      for (uint32_t j = 0; j < block.view.count; ++j) {
        const bool expect =
            WithinDistance(query, block.points[j], norm, eps);
        expect_count += expect;
        EXPECT_EQ(mask[j] != 0, expect)
            << NormName(norm) << " dims=" << dims << " row=" << j
            << " eps=" << eps;
        EXPECT_LE(mask[j], 1) << "mask must be 0/1";
      }
      EXPECT_EQ(n, expect_count);
      EXPECT_EQ(kernels::CountWithinBlock(padded.data(), block.view, dims,
                                          norm, eps),
                expect_count);
    }
  }
}

TEST_P(KernelDecisionTest, UnpaddedBlockMatchesScalarReference) {
  // stride == dims (EGO/PBSM-style tight rows, no padding) exercises the
  // generic runtime-width path for every dims value.
  const Norm norm = GetParam();
  Rng rng(211);
  for (const size_t dims : {2u, 5u, 8u, 31u, 64u, 100u}) {
    std::vector<float> rows(60 * dims);
    for (float& v : rows) v = static_cast<float>(rng.UniformDouble());
    const kernels::BlockView view{rows.data(), 60,
                                  static_cast<uint32_t>(dims)};
    const auto query = RandomPoint(&rng, dims);
    const double eps = rng.UniformDouble() * (norm == Norm::kL1 ? 8.0 : 1.0);
    std::vector<uint8_t> mask(view.count);
    kernels::WithinMaskBlock(query.data(), view, dims, norm, eps,
                             mask.data());
    for (uint32_t j = 0; j < view.count; ++j) {
      const std::span<const float> row(rows.data() + size_t(j) * dims, dims);
      EXPECT_EQ(mask[j] != 0, WithinDistance(query, row, norm, eps))
          << NormName(norm) << " dims=" << dims << " row=" << j;
    }
  }
}

TEST_P(KernelDecisionTest, WithinOneMatchesScalarReference) {
  const Norm norm = GetParam();
  Rng rng(307);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t dims = 1 + rng.Uniform(80);
    const auto a = RandomPoint(&rng, dims);
    const auto b = RandomPoint(&rng, dims);
    const double eps = trial % 3 == 0 ? VectorDistance(a, b, norm)
                                      : rng.UniformDouble() * 2.0;
    EXPECT_EQ(kernels::WithinOne(a.data(), b.data(), dims, norm, eps),
              WithinDistance(a, b, norm, eps))
        << NormName(norm) << " dims=" << dims << " eps=" << eps;
  }
}

TEST_P(KernelDecisionTest, EmptyBlockReturnsZero) {
  const Norm norm = GetParam();
  const float query[8] = {0.0f};
  const kernels::BlockView empty{nullptr, 0, 8};
  uint8_t mask[1] = {0xAB};
  EXPECT_EQ(kernels::WithinMaskBlock(query, empty, 8, norm, 1.0, mask), 0u);
  EXPECT_EQ(kernels::CountWithinBlock(query, empty, 8, norm, 1.0), 0u);
  EXPECT_EQ(mask[0], 0xAB) << "mask untouched for an empty block";
}

TEST_P(KernelDecisionTest, SingleRecordBlock) {
  const Norm norm = GetParam();
  Rng rng(401);
  const size_t dims = 16;
  const TestBlock block(&rng, 1, dims);
  const auto query = RandomPoint(&rng, dims);
  const auto padded = PaddedQuery(query, block.view.stride);
  const double d = VectorDistance(query, block.points[0], norm);
  uint8_t mask = 0;
  EXPECT_EQ(kernels::WithinMaskBlock(padded.data(), block.view, dims, norm,
                                     d * 1.01, &mask),
            1u);
  EXPECT_EQ(mask, 1);
  EXPECT_EQ(kernels::WithinMaskBlock(padded.data(), block.view, dims, norm,
                                     d * 0.99, &mask),
            0u);
  EXPECT_EQ(mask, 0);
}

TEST_P(KernelDecisionTest, ZeroEpsilonAcceptsOnlyIdenticalRecords) {
  const Norm norm = GetParam();
  Rng rng(503);
  const size_t dims = 33;
  TestBlock block(&rng, 10, dims);
  // Make row 4 an exact copy of the query.
  const auto query = RandomPoint(&rng, dims);
  std::copy(query.begin(), query.end(),
            block.storage.begin() + size_t(4) * block.view.stride);
  const auto padded = PaddedQuery(query, block.view.stride);
  std::vector<uint8_t> mask(block.view.count);
  EXPECT_EQ(kernels::WithinMaskBlock(padded.data(), block.view, dims, norm,
                                     0.0, mask.data()),
            1u);
  EXPECT_EQ(mask[4], 1);
}

INSTANTIATE_TEST_SUITE_P(AllNorms, KernelDecisionTest,
                         ::testing::Values(Norm::kL1, Norm::kL2,
                                           Norm::kLInf),
                         [](const ::testing::TestParamInfo<Norm>& info) {
                           return NormName(info.param);
                         });

TEST(KernelLayoutTest, PaddedWidthRoundsUpToLaneMultiples) {
  EXPECT_EQ(kernels::PaddedWidth(1), 8u);
  EXPECT_EQ(kernels::PaddedWidth(8), 8u);
  EXPECT_EQ(kernels::PaddedWidth(9), 16u);
  EXPECT_EQ(kernels::PaddedWidth(16), 16u);
  EXPECT_EQ(kernels::PaddedWidth(60), 64u);
  EXPECT_EQ(kernels::PaddedWidth(64), 64u);
  EXPECT_EQ(kernels::PaddedWidth(65), 72u);
  for (size_t d = 1; d <= 200; ++d) {
    EXPECT_EQ(kernels::PaddedWidth(d) % kernels::kLaneFloats, 0u);
    EXPECT_GE(kernels::PaddedWidth(d), d);
    EXPECT_LT(kernels::PaddedWidth(d), d + kernels::kLaneFloats);
  }
}

}  // namespace
}  // namespace pmjoin
