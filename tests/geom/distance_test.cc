#include "geom/distance.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::RandomPoint;

TEST(DistanceTest, KnownL2) {
  const std::vector<float> a{0.0f, 0.0f};
  const std::vector<float> b{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(VectorDistance(a, b, Norm::kL2), 5.0);
}

TEST(DistanceTest, KnownL1) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{4.0f, 0.0f, 3.0f};
  EXPECT_DOUBLE_EQ(VectorDistance(a, b, Norm::kL1), 5.0);
}

TEST(DistanceTest, KnownLInf) {
  const std::vector<float> a{1.0f, 2.0f};
  const std::vector<float> b{4.0f, 0.0f};
  EXPECT_DOUBLE_EQ(VectorDistance(a, b, Norm::kLInf), 3.0);
}

TEST(DistanceTest, ZeroForIdenticalVectors) {
  const std::vector<float> a{0.5f, -1.5f, 2.25f};
  for (Norm n : {Norm::kL1, Norm::kL2, Norm::kLInf}) {
    EXPECT_DOUBLE_EQ(VectorDistance(a, a, n), 0.0);
  }
}

TEST(DistanceTest, SquaredL2MatchesL2) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = RandomPoint(&rng, 8);
    const auto b = RandomPoint(&rng, 8);
    const double d = VectorDistance(a, b, Norm::kL2);
    EXPECT_NEAR(SquaredL2(a, b), d * d, 1e-9);
  }
}

class DistancePropertyTest : public ::testing::TestWithParam<Norm> {};

TEST_P(DistancePropertyTest, Symmetry) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = RandomPoint(&rng, 4);
    const auto b = RandomPoint(&rng, 4);
    EXPECT_DOUBLE_EQ(VectorDistance(a, b, GetParam()),
                     VectorDistance(b, a, GetParam()));
  }
}

TEST_P(DistancePropertyTest, TriangleInequality) {
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = RandomPoint(&rng, 4);
    const auto b = RandomPoint(&rng, 4);
    const auto c = RandomPoint(&rng, 4);
    const Norm n = GetParam();
    EXPECT_LE(VectorDistance(a, c, n),
              VectorDistance(a, b, n) + VectorDistance(b, c, n) + 1e-9);
  }
}

TEST_P(DistancePropertyTest, WithinDistanceMatchesThreshold) {
  Rng rng(17);
  const Norm n = GetParam();
  for (int trial = 0; trial < 500; ++trial) {
    const auto a = RandomPoint(&rng, 5);
    const auto b = RandomPoint(&rng, 5);
    const double eps = rng.UniformDouble() * 1.5;
    const double d = VectorDistance(a, b, n);
    if (std::fabs(d - eps) < 1e-6) continue;  // Avoid FP-boundary flakes.
    EXPECT_EQ(WithinDistance(a, b, n, eps), d <= eps)
        << "d=" << d << " eps=" << eps;
  }
}

TEST_P(DistancePropertyTest, NormOrdering) {
  // Linf <= L2 <= L1 pointwise.
  Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = RandomPoint(&rng, 6);
    const auto b = RandomPoint(&rng, 6);
    const double l1 = VectorDistance(a, b, Norm::kL1);
    const double l2 = VectorDistance(a, b, Norm::kL2);
    const double li = VectorDistance(a, b, Norm::kLInf);
    EXPECT_LE(li, l2 + 1e-9);
    EXPECT_LE(l2, l1 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNorms, DistancePropertyTest,
                         ::testing::Values(Norm::kL1, Norm::kL2,
                                           Norm::kLInf),
                         [](const ::testing::TestParamInfo<Norm>& info) {
                           return NormName(info.param);
                         });

TEST(DistanceTest, NormNames) {
  EXPECT_EQ(NormName(Norm::kL1), "L1");
  EXPECT_EQ(NormName(Norm::kL2), "L2");
  EXPECT_EQ(NormName(Norm::kLInf), "Linf");
}

}  // namespace
}  // namespace pmjoin
