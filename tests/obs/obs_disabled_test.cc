// Compiles the observability macros with PMJOIN_OBS_DISABLED in force —
// regardless of how the rest of the build is configured — and checks they
// are true no-ops: type-checked but unevaluated, recording nothing even
// while a session is active. This is the per-TU version of the
// -DPMJOIN_OBS=OFF build invariant.
#define PMJOIN_OBS_DISABLED 1

#include <gtest/gtest.h>

#include "common/op_counters.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace pmjoin {
namespace obs {
namespace {

TEST(ObsDisabledTest, EnabledFlagMacroIsAbsent) {
#ifdef PMJOIN_OBS_ENABLED
  FAIL() << "span.h defined PMJOIN_OBS_ENABLED despite PMJOIN_OBS_DISABLED";
#endif
}

TEST(ObsDisabledTest, SpanMacrosRecordNothingInsideSession) {
  Tracer::Get().StartSession(nullptr);
  OpCounters ops;
  {
    PMJOIN_SPAN("disabled_root");
    PMJOIN_SPAN_OPS("disabled_ops", &ops);
    PMJOIN_SPAN_ARG("disabled_arg", 7);
    PMJOIN_SPAN_OPS_ARG("disabled_both", &ops, 9);
    ops.distance_terms += 3;
  }
  Tracer::Get().StopSession();
  EXPECT_TRUE(Tracer::Get().TakeEvents().empty());
  EXPECT_EQ(ops.distance_terms, 3u);  // the macros did not touch the counters
}

TEST(ObsDisabledTest, MetricMacrosRecordNothingInsideSession) {
  Counter* counter = MetricsRegistry::Get().counter("test.disabled_tu");
  Gauge* gauge = MetricsRegistry::Get().gauge("test.disabled_tu_g");
  Tracer::Get().StartSession(nullptr);
  counter->Reset();
  gauge->Reset();
  PMJOIN_METRIC_COUNT("test.disabled_tu", 5);
  PMJOIN_METRIC_GAUGE_SET("test.disabled_tu_g", 5);
  PMJOIN_METRIC_RECORD("test.disabled_tu_h", 5);
  Tracer::Get().StopSession();
  Tracer::Get().TakeEvents();
  EXPECT_EQ(counter->Total(), 0u);
  EXPECT_EQ(gauge->Value(), 0);
}

TEST(ObsDisabledTest, MacroOperandsAreNotEvaluated) {
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return uint64_t{1};
  };
  Tracer::Get().StartSession(nullptr);
  PMJOIN_METRIC_COUNT("test.unevaluated", count());
  PMJOIN_SPAN_ARG("unevaluated", count());
  Tracer::Get().StopSession();
  Tracer::Get().TakeEvents();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace obs
}  // namespace pmjoin
