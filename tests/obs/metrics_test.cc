#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/span.h"

namespace pmjoin {
namespace obs {
namespace {

/// Scoped session without a disk: arms the metric macros for one test and
/// guarantees the global flag is dropped (and events drained) on exit so
/// tests cannot leak state into each other.
class ScopedSession {
 public:
  ScopedSession() { Tracer::Get().StartSession(nullptr); }
  ~ScopedSession() {
    Tracer::Get().StopSession();
    Tracer::Get().TakeEvents();
  }
};

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  EXPECT_EQ(registry.counter("test.same"), registry.counter("test.same"));
  EXPECT_EQ(registry.gauge("test.same_g"), registry.gauge("test.same_g"));
  EXPECT_EQ(registry.histogram("test.same_h"),
            registry.histogram("test.same_h"));
  EXPECT_NE(registry.counter("test.same"), registry.counter("test.other"));
}

TEST(MetricsRegistryTest, CounterAccumulatesAndResets) {
  Counter* counter = MetricsRegistry::Get().counter("test.counter");
  counter->Reset();
  counter->Add(3);
  counter->Increment();
  EXPECT_EQ(counter->Total(), 4u);
  counter->Reset();
  EXPECT_EQ(counter->Total(), 0u);
}

TEST(MetricsRegistryTest, CounterSumsAcrossThreads) {
  Counter* counter = MetricsRegistry::Get().counter("test.sharded");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Total(), uint64_t{kThreads} * kAddsPerThread);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  Gauge* gauge = MetricsRegistry::Get().gauge("test.gauge");
  gauge->Set(7);
  gauge->Set(-2);
  EXPECT_EQ(gauge->Value(), -2);
  gauge->Reset();
  EXPECT_EQ(gauge->Value(), 0);
}

TEST(MetricsRegistryTest, HistogramBucketsByBitWidth) {
  Histogram* histogram = MetricsRegistry::Get().histogram("test.hist");
  histogram->Reset();
  histogram->Record(0);   // bucket 0
  histogram->Record(1);   // bucket 1
  histogram->Record(2);   // bucket 2
  histogram->Record(3);   // bucket 2
  histogram->Record(9);   // bucket 4
  EXPECT_EQ(histogram->TotalCount(), 5u);
  const auto buckets = histogram->BucketCounts();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[3], 0u);
  EXPECT_EQ(buckets[4], 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.counter("test.zzz");
  registry.counter("test.aaa");
  const auto rows = registry.Snapshot();
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].name, rows[i].name);
  }
}

TEST(MetricsMacroTest, MacrosAreInertWithoutSession) {
  ASSERT_FALSE(ObsEnabled());
  Counter* counter = MetricsRegistry::Get().counter("test.macro_inert");
  counter->Reset();
  for (int i = 0; i < 10; ++i) PMJOIN_METRIC_COUNT("test.macro_inert", 5);
  EXPECT_EQ(counter->Total(), 0u);
}

TEST(MetricsMacroTest, MacrosRecordInsideSession) {
#ifdef PMJOIN_OBS_ENABLED
  ScopedSession session;
  ASSERT_TRUE(ObsEnabled());
  PMJOIN_METRIC_COUNT("test.macro_live", 2);
  PMJOIN_METRIC_COUNT("test.macro_live", 3);
  PMJOIN_METRIC_GAUGE_SET("test.macro_gauge", 11);
  PMJOIN_METRIC_RECORD("test.macro_hist", 4);
  EXPECT_EQ(MetricsRegistry::Get().counter("test.macro_live")->Total(), 5u);
  EXPECT_EQ(MetricsRegistry::Get().gauge("test.macro_gauge")->Value(), 11);
  EXPECT_EQ(MetricsRegistry::Get().histogram("test.macro_hist")->TotalCount(),
            1u);
#endif
}

TEST(MetricsMacroTest, SessionStartResetsValuesButKeepsHandles) {
  Counter* counter = MetricsRegistry::Get().counter("test.session_reset");
  counter->Add(9);
  ASSERT_GT(counter->Total(), 0u);
  {
    ScopedSession session;
    // StartSession zeroed every metric so the session's snapshot only
    // covers the session.
    EXPECT_EQ(counter->Total(), 0u);
    EXPECT_EQ(MetricsRegistry::Get().counter("test.session_reset"), counter);
  }
}

}  // namespace
}  // namespace obs
}  // namespace pmjoin
