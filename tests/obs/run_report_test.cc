#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/simulated_disk.h"
#include "obs/span.h"

namespace pmjoin {
namespace obs {
namespace {

TraceEvent Event(const std::string& path, int64_t wall_ns) {
  TraceEvent event;
  event.path = path;
  event.depth = 0;
  for (char c : path) {
    if (c == '/') ++event.depth;
  }
  event.start_ns = 0;
  event.end_ns = wall_ns;
  return event;
}

TraceEvent IoEvent(const std::string& path, uint64_t pages_read,
                   uint64_t seeks) {
  TraceEvent event = Event(path, 10);
  event.has_io = true;
  event.io.pages_read = pages_read;
  event.io.seeks = seeks;
  return event;
}

/// Ensures no stale tracer session leaks into a synthetic-events test (the
/// report still snapshots Tracer::SessionIo for its totals).
void ResetTracer() {
  Tracer::Get().StartSession(nullptr);
  Tracer::Get().StopSession();
  Tracer::Get().TakeEvents();
}

TEST(RunReportTest, FoldsOccurrencesByPath) {
  ResetTracer();
  std::vector<TraceEvent> events;
  events.push_back(Event("join/execute/cluster", 5));
  events.push_back(Event("join/execute/cluster", 7));
  events.push_back(Event("join/execute", 20));
  events.push_back(Event("join", 30));

  RunReport report;
  report.CaptureSession(events);
  ASSERT_EQ(report.phases().size(), 3u);
  // Lexicographic by path.
  EXPECT_EQ(report.phases()[0].path, "join");
  EXPECT_EQ(report.phases()[1].path, "join/execute");
  EXPECT_EQ(report.phases()[2].path, "join/execute/cluster");
  EXPECT_EQ(report.phases()[2].name, "cluster");
  EXPECT_EQ(report.phases()[2].count, 2u);
  EXPECT_EQ(report.phases()[2].wall_ns, 12);
}

TEST(RunReportTest, ExclusiveIoTelescopesToTotals) {
  // Real session so io_totals is a live disk delta.
  SimulatedDisk disk;
  const uint32_t file = disk.CreateFile("f", 16);
  Tracer::Get().StartSession(&disk);
  {
    PMJOIN_SPAN("outer");
    ASSERT_TRUE(disk.ReadPage({file, 0}).ok());
    {
      PMJOIN_SPAN("inner");
      ASSERT_TRUE(disk.ReadPage({file, 4}).ok());
      ASSERT_TRUE(disk.ReadPage({file, 5}).ok());
    }
    ASSERT_TRUE(disk.ReadPage({file, 1}).ok());
  }
  // Session traffic outside any span becomes unattributed.
  ASSERT_TRUE(disk.ReadPage({file, 9}).ok());
  Tracer::Get().StopSession();

  RunReport report;
  report.CaptureSession();
#ifdef PMJOIN_OBS_ENABLED
  ASSERT_EQ(report.phases().size(), 2u);
  const PhaseRow& outer = report.phases()[0];
  const PhaseRow& inner = report.phases()[1];
  EXPECT_EQ(outer.path, "outer");
  EXPECT_EQ(inner.path, "outer/inner");
  // Inclusive: outer saw all four of its reads; inner two of them.
  EXPECT_EQ(outer.io.pages_read, 4u);
  EXPECT_EQ(inner.io.pages_read, 2u);
  // Exclusive: the child's share is subtracted from the parent.
  EXPECT_EQ(outer.io_self.pages_read, 2u);
  EXPECT_EQ(inner.io_self.pages_read, 2u);
  EXPECT_EQ(report.unattributed_io().pages_read, 1u);
#endif
  // The ledger invariant, field by field.
  IoStats sum = report.unattributed_io();
  for (const PhaseRow& row : report.phases()) sum += row.io_self;
  EXPECT_EQ(sum, report.io_totals());
  EXPECT_EQ(report.io_totals().pages_read, 5u);
}

TEST(RunReportTest, OrphanedChildDegradesToRootNotDoubleCount) {
  ResetTracer();
  // Parent span was dropped (straddled the session boundary): the child's
  // I/O must count once against the totals, not vanish or double.
  std::vector<TraceEvent> events;
  events.push_back(IoEvent("join/execute", 3, 1));

  RunReport report;
  report.CaptureSession(events);
  ASSERT_EQ(report.phases().size(), 1u);
  EXPECT_EQ(report.phases()[0].io_self.pages_read, 3u);
  IoStats sum = report.unattributed_io();
  for (const PhaseRow& row : report.phases()) sum += row.io_self;
  EXPECT_EQ(sum, report.io_totals());
}

TEST(RunReportTest, JsonCarriesSchemaContextAndRows) {
  ResetTracer();
  RunReport report;
  report.SetContext("binary", "test");
  report.SetContext("n", static_cast<uint64_t>(123));
  report.AddRowJson("{\"table\": \"t\", \"label\": \"x\"}");
  report.CaptureSession(std::vector<TraceEvent>());

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\":\"pmjoin.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"binary\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":123"), std::string::npos);
  EXPECT_NE(json.find("{\"table\": \"t\", \"label\": \"x\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"io_totals\""), std::string::npos);
  EXPECT_NE(json.find("\"unattributed_io\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

TEST(RunReportTest, CapturesMetricsSnapshot) {
  SimulatedDisk disk;
  Tracer::Get().StartSession(&disk);
  PMJOIN_METRIC_COUNT("test.report_metric", 4);
  Tracer::Get().StopSession();
  RunReport report;
  report.CaptureSession();
#ifdef PMJOIN_OBS_ENABLED
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"test.report_metric\""), std::string::npos);
#endif
}

}  // namespace
}  // namespace obs
}  // namespace pmjoin
