#include "obs/span.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/op_counters.h"
#include "io/simulated_disk.h"

// Span events only exist when the macros are compiled in; under
// -DPMJOIN_OBS_DISABLED the whole suite vacuously passes (the determinism
// tests in tests/integration/obs_attribution_test.cc still run there).
#ifdef PMJOIN_OBS_ENABLED

namespace pmjoin {
namespace obs {
namespace {

std::vector<TraceEvent> Capture(void (*body)()) {
  Tracer::Get().StartSession(nullptr);
  body();
  Tracer::Get().StopSession();
  return Tracer::Get().TakeEvents();
}

TEST(SpanTest, NoSessionRecordsNothing) {
  ASSERT_FALSE(Tracer::Get().active());
  { PMJOIN_SPAN("orphan"); }
  EXPECT_TRUE(Tracer::Get().TakeEvents().empty());
}

TEST(SpanTest, NestingBuildsPathsAndDepths) {
  const auto events = Capture([] {
    PMJOIN_SPAN("outer");
    {
      PMJOIN_SPAN("inner");
      { PMJOIN_SPAN("leaf"); }
    }
  });
  // Spans complete innermost-first.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].path, "outer/inner/leaf");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[1].path, "outer/inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].path, "outer");
  EXPECT_EQ(events[2].depth, 0u);
  EXPECT_STREQ(events[2].name, "outer");
}

TEST(SpanTest, SiblingSpansShareParentPrefix) {
  const auto events = Capture([] {
    PMJOIN_SPAN("parent");
    { PMJOIN_SPAN("first"); }
    { PMJOIN_SPAN("second"); }
  });
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].path, "parent/first");
  EXPECT_EQ(events[1].path, "parent/second");
  EXPECT_EQ(events[2].path, "parent");
}

TEST(SpanTest, WallClockIsMonotoneAndNested) {
  const auto events = Capture([] {
    PMJOIN_SPAN("outer");
    { PMJOIN_SPAN("inner"); }
  });
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_LE(inner.start_ns, inner.end_ns);
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
}

TEST(SpanTest, OpsDeltaIsCapturedPerSpan) {
  Tracer::Get().StartSession(nullptr);
  OpCounters ops;
  ops.distance_terms = 100;  // pre-span work must not be attributed
  {
    PMJOIN_SPAN_OPS("work", &ops);
    ops.distance_terms += 7;
    ops.result_pairs += 2;
  }
  Tracer::Get().StopSession();
  const auto events = Tracer::Get().TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_TRUE(events[0].has_ops);
  EXPECT_EQ(events[0].ops.distance_terms, 7u);
  EXPECT_EQ(events[0].ops.result_pairs, 2u);
  EXPECT_FALSE(events[0].has_io);
}

TEST(SpanTest, ArgIsRecorded) {
  const auto events = Capture([] { PMJOIN_SPAN_ARG("cluster", 42); });
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].arg, 42u);
}

TEST(SpanTest, IoDeltaCapturedOnSessionThreadOnly) {
  SimulatedDisk disk;
  const uint32_t file = disk.CreateFile("f", 8);
  ASSERT_TRUE(disk.ReadPage({file, 0}).ok());  // pre-session traffic

  Tracer::Get().StartSession(&disk);
  {
    PMJOIN_SPAN("read_phase");
    ASSERT_TRUE(disk.ReadPage({file, 1}).ok());
    ASSERT_TRUE(disk.ReadPage({file, 2}).ok());
  }
  std::thread worker([] { PMJOIN_SPAN("worker_phase"); });
  worker.join();
  Tracer::Get().StopSession();

  const auto events = Tracer::Get().TakeEvents();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& read_phase = events[0];
  ASSERT_TRUE(read_phase.has_io);
  EXPECT_EQ(read_phase.io.pages_read, 2u);  // not the pre-session read
  const TraceEvent& worker_phase = events[1];
  EXPECT_FALSE(worker_phase.has_io);  // off the session thread
  EXPECT_NE(worker_phase.tid, read_phase.tid);
}

TEST(SpanTest, SessionIoCoversSessionOnly) {
  SimulatedDisk disk;
  const uint32_t file = disk.CreateFile("f", 8);
  ASSERT_TRUE(disk.ReadPage({file, 0}).ok());
  Tracer::Get().StartSession(&disk);
  ASSERT_TRUE(disk.ReadPage({file, 1}).ok());
  Tracer::Get().StopSession();
  ASSERT_TRUE(disk.ReadPage({file, 2}).ok());  // after stop: not counted
  EXPECT_EQ(Tracer::Get().SessionIo().pages_read, 1u);
  Tracer::Get().TakeEvents();
}

TEST(SpanTest, SpanStraddlingStopIsDropped) {
  Tracer::Get().StartSession(nullptr);
  {
    PMJOIN_SPAN("straddler");
    Tracer::Get().StopSession();
  }
  EXPECT_TRUE(Tracer::Get().TakeEvents().empty());
}

TEST(SpanTest, StartSessionClearsPriorEvents) {
  Tracer::Get().StartSession(nullptr);
  { PMJOIN_SPAN("stale"); }
  Tracer::Get().StopSession();
  // Deliberately not drained: the next session must start clean anyway.
  Tracer::Get().StartSession(nullptr);
  { PMJOIN_SPAN("fresh"); }
  Tracer::Get().StopSession();
  const auto events = Tracer::Get().TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].path, "fresh");
}

}  // namespace
}  // namespace obs
}  // namespace pmjoin

#endif  // PMJOIN_OBS_ENABLED
