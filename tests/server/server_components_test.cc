// Unit tests for the server building blocks: the job-line parser, the
// dataset-spec grammar, the admission policy, the bounded query queue,
// and the artifact cache.

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/admission.h"
#include "server/artifact_cache.h"
#include "server/job.h"
#include "test_util.h"

namespace pmjoin {
namespace server {
namespace {

using testing_util::MakeTestBackend;

// ---------------------------------------------------------------------------
// DatasetSpec grammar.

TEST(DatasetSpecTest, ParsesRoad) {
  auto spec = DatasetSpec::Parse("road/2000/7");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, DatasetSpec::Kind::kRoad);
  EXPECT_EQ(spec->n, 2000u);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_EQ(spec->dims, 2u);
  EXPECT_EQ(spec->Canonical(), "road-2000-7");
}

TEST(DatasetSpecTest, ParsesDimsSegment) {
  auto spec = DatasetSpec::Parse("uniform/1000/3/8");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, DatasetSpec::Kind::kUniform);
  EXPECT_EQ(spec->dims, 8u);
  EXPECT_EQ(spec->Canonical(), "uniform-1000-3-d8");

  auto defaulted = DatasetSpec::Parse("clusters/500/1");
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(defaulted->dims, 8u);
}

TEST(DatasetSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(DatasetSpec::Parse("").ok());
  EXPECT_FALSE(DatasetSpec::Parse("road").ok());
  EXPECT_FALSE(DatasetSpec::Parse("road/2000").ok());
  EXPECT_FALSE(DatasetSpec::Parse("road/2000/7/2").ok());  // road is 2-d
  EXPECT_FALSE(DatasetSpec::Parse("warehouse/10/1").ok());
  EXPECT_FALSE(DatasetSpec::Parse("road/0/1").ok());
  EXPECT_FALSE(DatasetSpec::Parse("road/abc/1").ok());
  EXPECT_FALSE(DatasetSpec::Parse("uniform/10/1/0").ok());
  EXPECT_FALSE(DatasetSpec::Parse("uniform/10/1/9999").ok());
}

TEST(DatasetSpecTest, GenerateIsDeterministic) {
  const DatasetSpec spec = *DatasetSpec::Parse("uniform/100/5/4");
  const VectorData a = spec.Generate();
  const VectorData b = spec.Generate();
  EXPECT_EQ(a.dims, 4u);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.values, b.values);
}

// ---------------------------------------------------------------------------
// Job lines.

TEST(JobLineTest, ParsesFullSubmitLine) {
  auto line = ParseJobLine(
      "{\"cmd\": \"submit\", \"id\": \"warm\", \"r\": \"road/2000/7\", "
      "\"s\": \"road/2000/8\", \"eps\": 0.01, \"engine\": \"cc\", "
      "\"buffer_pages\": 32, \"threads\": 2}");
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  ASSERT_TRUE(line->has_value());
  const JobSpec& job = **line;
  EXPECT_EQ(job.id, "warm");
  EXPECT_EQ(job.r, "road/2000/7");
  EXPECT_EQ(job.s, "road/2000/8");
  EXPECT_DOUBLE_EQ(job.eps, 0.01);
  EXPECT_EQ(job.engine, Algorithm::kCc);
  EXPECT_EQ(job.buffer_pages, 32u);
  EXPECT_EQ(job.num_threads, 2u);
}

TEST(JobLineTest, DefaultsAndComments) {
  auto line =
      ParseJobLine("{\"r\": \"road/10/1\", \"s\": \"road/10/2\", \"eps\": 1}");
  ASSERT_TRUE(line.ok());
  ASSERT_TRUE(line->has_value());
  EXPECT_EQ((*line)->engine, Algorithm::kSc);  // default engine
  EXPECT_EQ((*line)->buffer_pages, 0u);        // 0 = server default

  EXPECT_FALSE(ParseJobLine("")->has_value());
  EXPECT_FALSE(ParseJobLine("   ")->has_value());
  EXPECT_FALSE(ParseJobLine("# a comment")->has_value());
}

TEST(JobLineTest, RejectsMalformedLines) {
  // Missing required keys.
  EXPECT_FALSE(ParseJobLine("{\"r\": \"road/10/1\", \"eps\": 1}").ok());
  EXPECT_FALSE(
      ParseJobLine("{\"r\": \"road/10/1\", \"s\": \"road/10/2\"}").ok());
  // eps must be positive.
  EXPECT_FALSE(
      ParseJobLine(
          "{\"r\": \"road/10/1\", \"s\": \"road/10/2\", \"eps\": 0}")
          .ok());
  // Unknown command / key / engine.
  EXPECT_FALSE(ParseJobLine("{\"cmd\": \"drop\", \"r\": \"road/10/1\", "
                            "\"s\": \"road/10/2\", \"eps\": 1}")
                   .ok());
  // Unknown keys are rejected *by name* — a typo must surface as itself,
  // not as a missing-eps or wrong-shape complaint.
  auto unknown = ParseJobLine("{\"r\": \"road/10/1\", \"s\": \"road/10/2\", "
                              "\"eps\": 1, \"frobnicate\": true}");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("unknown job key"),
            std::string::npos)
      << unknown.status().ToString();
  EXPECT_NE(unknown.status().message().find("frobnicate"), std::string::npos)
      << unknown.status().ToString();
  EXPECT_FALSE(ParseJobLine("{\"r\": \"road/10/1\", \"s\": \"road/10/2\", "
                            "\"eps\": 1, \"engine\": \"ego\"}")
                   .ok());
  // Not flat JSON.
  EXPECT_FALSE(ParseJobLine("{\"r\": {\"gen\": \"road\"}, "
                            "\"s\": \"road/10/2\", \"eps\": 1}")
                   .ok());
  // Duplicate key.
  EXPECT_FALSE(ParseJobLine("{\"r\": \"road/10/1\", \"r\": \"road/10/2\", "
                            "\"s\": \"road/10/2\", \"eps\": 1}")
                   .ok());
  // Trailing garbage.
  EXPECT_FALSE(ParseJobLine("{\"r\": \"road/10/1\", \"s\": \"road/10/2\", "
                            "\"eps\": 1} extra")
                   .ok());
}

TEST(JobLineTest, ParsesKnnJobs) {
  auto line = ParseJobLine(
      "{\"r\": \"road/2000/7\", \"s\": \"road/2000/8\", \"k\": 8}");
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  ASSERT_TRUE(line->has_value());
  EXPECT_EQ((*line)->k, 8u);
  EXPECT_DOUBLE_EQ((*line)->eps, 0.0);

  // eps and k are mutually exclusive — two predicates, one query.
  EXPECT_FALSE(ParseJobLine("{\"r\": \"road/10/1\", \"s\": \"road/10/2\", "
                            "\"eps\": 0.5, \"k\": 4}")
                   .ok());
  // engine only applies to eps-joins.
  EXPECT_FALSE(ParseJobLine("{\"r\": \"road/10/1\", \"s\": \"road/10/2\", "
                            "\"k\": 4, \"engine\": \"sc\"}")
                   .ok());
  // k must be a positive small integer.
  EXPECT_FALSE(
      ParseJobLine(
          "{\"r\": \"road/10/1\", \"s\": \"road/10/2\", \"k\": 0}")
          .ok());
  EXPECT_FALSE(
      ParseJobLine(
          "{\"r\": \"road/10/1\", \"s\": \"road/10/2\", \"k\": 2.5}")
          .ok());
  EXPECT_FALSE(
      ParseJobLine(
          "{\"r\": \"road/10/1\", \"s\": \"road/10/2\", \"k\": -3}")
          .ok());
}

TEST(JobStreamTest, ParsesStreamAndNamesBadLine) {
  std::istringstream good(
      "# warmup\n"
      "{\"r\": \"road/10/1\", \"s\": \"road/10/2\", \"eps\": 0.5}\n"
      "\n"
      "{\"r\": \"road/10/1\", \"s\": \"road/10/2\", \"eps\": 0.25}\n");
  auto jobs = ParseJobStream(good);
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  EXPECT_EQ(jobs->size(), 2u);

  std::istringstream bad(
      "{\"r\": \"road/10/1\", \"s\": \"road/10/2\", \"eps\": 0.5}\n"
      "{\"r\": \"road/10/1\"}\n");
  auto failed = ParseJobStream(bad);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("line 2"), std::string::npos)
      << failed.status().ToString();
}

TEST(EngineTokenTest, RoundTripsServedFamily) {
  for (const char* token : {"nlj", "pm-nlj", "rand-sc", "sc", "cc"}) {
    auto engine = ParseEngine(token);
    ASSERT_TRUE(engine.ok()) << token;
    EXPECT_EQ(EngineToken(*engine), token);
  }
  EXPECT_FALSE(ParseEngine("ego").ok());
  EXPECT_FALSE(ParseEngine("bfrj").ok());
  EXPECT_FALSE(ParseEngine("pbsm").ok());
  EXPECT_FALSE(ParseEngine("").ok());
}

// ---------------------------------------------------------------------------
// Admission.

JobSpec MakeJob(const std::string& r, const std::string& s, double eps) {
  JobSpec job;
  job.r = r;
  job.s = s;
  job.eps = eps;
  return job;
}

TEST(AdmissionTest, ResolvesDefaultsInPlace) {
  AdmissionController admission(
      AdmissionController::Options{128, 48, 2, 8});
  JobSpec job = MakeJob("road/100/1", "road/100/2", 0.1);
  ASSERT_TRUE(admission.Admit(&job).ok());
  EXPECT_EQ(job.buffer_pages, 48u);
  EXPECT_EQ(job.num_threads, 2u);

  JobSpec pinned = MakeJob("road/100/1", "road/100/2", 0.1);
  pinned.buffer_pages = 16;
  pinned.num_threads = 4;
  ASSERT_TRUE(admission.Admit(&pinned).ok());
  EXPECT_EQ(pinned.buffer_pages, 16u);
  EXPECT_EQ(pinned.num_threads, 4u);
}

TEST(AdmissionTest, RejectsPolicyViolations) {
  AdmissionController admission(
      AdmissionController::Options{128, 48, 2, 8});

  JobSpec bad_spec = MakeJob("road/100/1", "nonsense", 0.1);
  EXPECT_FALSE(admission.Admit(&bad_spec).ok());

  JobSpec dims = MakeJob("road/100/1", "uniform/100/1/8", 0.1);
  EXPECT_FALSE(admission.Admit(&dims).ok());

  JobSpec eps = MakeJob("road/100/1", "road/100/2", 0.0);
  EXPECT_FALSE(admission.Admit(&eps).ok());

  JobSpec engine = MakeJob("road/100/1", "road/100/2", 0.1);
  engine.engine = Algorithm::kEgo;
  EXPECT_FALSE(admission.Admit(&engine).ok());

  JobSpec buffer = MakeJob("road/100/1", "road/100/2", 0.1);
  buffer.buffer_pages = 129;  // > pool_pages
  EXPECT_FALSE(admission.Admit(&buffer).ok());

  JobSpec threads = MakeJob("road/100/1", "road/100/2", 0.1);
  threads.num_threads = 9;  // > max_threads
  EXPECT_FALSE(admission.Admit(&threads).ok());
}

TEST(AdmissionTest, AdmitsKnnJobsAndRejectsMixedPredicates) {
  AdmissionController admission(
      AdmissionController::Options{128, 48, 2, 8});

  JobSpec knn = MakeJob("road/100/1", "road/100/2", 0.0);
  knn.k = 8;
  ASSERT_TRUE(admission.Admit(&knn).ok());
  EXPECT_EQ(knn.buffer_pages, 48u);  // defaults resolve for kNN jobs too

  // The engine field is inert for kNN jobs: even a value the eps-join
  // family would reject passes (programmatic submissions only — the
  // parser refuses the engine key on kNN job lines outright).
  JobSpec engine = MakeJob("road/100/1", "road/100/2", 0.0);
  engine.k = 4;
  engine.engine = Algorithm::kEgo;
  EXPECT_TRUE(admission.Admit(&engine).ok());

  // A nonzero eps alongside k signals a confused submission.
  JobSpec mixed = MakeJob("road/100/1", "road/100/2", 0.5);
  mixed.k = 4;
  EXPECT_FALSE(admission.Admit(&mixed).ok());

  // Pool and thread caps apply to kNN jobs unchanged.
  JobSpec buffer = MakeJob("road/100/1", "road/100/2", 0.0);
  buffer.k = 4;
  buffer.buffer_pages = 129;
  EXPECT_FALSE(admission.Admit(&buffer).ok());
}

// ---------------------------------------------------------------------------
// QueryQueue.

QueuedQuery Queued(uint64_t index) {
  QueuedQuery q;
  q.index = index;
  return q;
}

TEST(QueryQueueTest, BoundedTryPushAndDrain) {
  QueryQueue queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  ASSERT_TRUE(queue.TryPush(Queued(0)).ok());
  ASSERT_TRUE(queue.TryPush(Queued(1)).ok());
  const Status full = queue.TryPush(Queued(2));
  ASSERT_FALSE(full.ok());
  EXPECT_TRUE(full.IsBufferFull());
  EXPECT_EQ(queue.Depth(), 2u);
  EXPECT_EQ(queue.MaxDepthSeen(), 2u);

  auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->index, 0u);  // FIFO
  ASSERT_TRUE(queue.TryPush(Queued(2)).ok());

  queue.Close();
  EXPECT_FALSE(queue.TryPush(Queued(3)).ok());
  // Close drains before signalling end-of-stream.
  EXPECT_EQ(queue.Pop()->index, 1u);
  EXPECT_EQ(queue.Pop()->index, 2u);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(QueryQueueTest, PushBlockingWaitsForSpace) {
  QueryQueue queue(1);
  ASSERT_TRUE(queue.TryPush(Queued(0)).ok());

  Status pushed = Status::OK();
  std::thread producer(
      [&queue, &pushed] { pushed = queue.PushBlocking(Queued(1)); });
  // The producer can only finish after the consumer makes room.
  EXPECT_EQ(queue.Pop()->index, 0u);
  producer.join();
  EXPECT_TRUE(pushed.ok());
  EXPECT_EQ(queue.Pop()->index, 1u);

  queue.Close();
  EXPECT_FALSE(queue.PushBlocking(Queued(2)).ok());
}

TEST(QueryQueueTest, ManySubmittersRacingShutdown) {
  // Backpressure under contention racing Close: many producers hammer a
  // tiny queue with PushBlocking while the consumer pops a few entries
  // and then shuts the queue down under the producers. Every push must
  // resolve exactly once — OK (the entry is popped exactly once) or
  // "queue closed" — with no deadlock, no lost entry, no duplicate, and
  // the bound never exceeded.
  constexpr size_t kCapacity = 4;
  constexpr size_t kProducers = 16;
  constexpr size_t kPerProducer = 8;
  QueryQueue queue(kCapacity);

  std::atomic<uint64_t> ok_pushes{0};
  std::atomic<uint64_t> closed_pushes{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &ok_pushes, &closed_pushes, p] {
      for (size_t j = 0; j < kPerProducer; ++j) {
        const Status st = queue.PushBlocking(Queued(p * kPerProducer + j));
        if (st.ok()) {
          ok_pushes.fetch_add(1);
        } else {
          // The only failure PushBlocking may report is a closed queue —
          // backpressure itself must block, never bounce.
          EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
          closed_pushes.fetch_add(1);
        }
      }
    });
  }

  // Serve a prefix of the traffic, then close mid-flight: at this point
  // most producers are parked in PushBlocking on the full queue.
  std::vector<uint64_t> popped;
  for (size_t i = 0; i < 20; ++i) {
    auto entry = queue.Pop();
    ASSERT_TRUE(entry.has_value());
    popped.push_back(entry->index);
  }
  queue.Close();
  for (std::thread& t : producers) t.join();

  // Close drains before end-of-stream: everything pushed OK but not yet
  // served is still in the queue.
  while (auto entry = queue.Pop()) popped.push_back(entry->index);
  EXPECT_FALSE(queue.Pop().has_value());

  EXPECT_EQ(ok_pushes.load() + closed_pushes.load(),
            kProducers * kPerProducer);
  EXPECT_GT(closed_pushes.load(), 0u);  // Close really raced submitters.
  EXPECT_EQ(popped.size(), ok_pushes.load());
  std::sort(popped.begin(), popped.end());
  EXPECT_EQ(std::adjacent_find(popped.begin(), popped.end()), popped.end());
  EXPECT_LE(queue.MaxDepthSeen(), kCapacity);
}

// ---------------------------------------------------------------------------
// ArtifactCache.

TEST(ArtifactCacheTest, DatasetPointersAreStableAndShared) {
  auto disk = MakeTestBackend(DiskModel(), 1024);
  ArtifactCache cache(disk.get(), ArtifactCache::Options{1024, false, true, 5});

  const DatasetSpec spec = *DatasetSpec::Parse("road/500/3");
  auto first = cache.GetDataset(spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.GetDataset(*DatasetSpec::Parse("road/500/3"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // same object: self-joins need identity
  EXPECT_EQ(cache.stats().dataset_builds, 1u);
  EXPECT_EQ(cache.stats().dataset_hits, 1u);

  auto other = cache.GetDataset(*DatasetSpec::Parse("road/500/4"));
  ASSERT_TRUE(other.ok());
  EXPECT_NE(*first, *other);
  EXPECT_EQ(cache.stats().dataset_builds, 2u);
}

TEST(ArtifactCacheTest, MatrixMemoizationKeysOnEpsAndNorm) {
  auto disk = MakeTestBackend(DiskModel(), 1024);
  ArtifactCache cache(disk.get(), ArtifactCache::Options{1024, false, true, 5});
  const DatasetSpec r = *DatasetSpec::Parse("road/500/3");
  const DatasetSpec s = *DatasetSpec::Parse("road/500/4");

  bool hit = true;
  auto cold = cache.GetMatrix(r, s, 0.01, Norm::kL2, &hit);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(hit);

  auto warm = cache.GetMatrix(r, s, 0.01, Norm::kL2, &hit);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(*cold, *warm);  // memoized object

  // Different eps and different norm are different artifacts.
  ASSERT_TRUE(cache.GetMatrix(r, s, 0.02, Norm::kL2, &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(cache.GetMatrix(r, s, 0.01, Norm::kL1, &hit).ok());
  EXPECT_FALSE(hit);

  EXPECT_EQ(cache.stats().matrix_builds, 3u);
  EXPECT_EQ(cache.stats().matrix_hits, 1u);
}

TEST(ArtifactCacheTest, KnnMatrixIsSharedAcrossEveryK) {
  auto disk = MakeTestBackend(DiskModel(), 1024);
  ArtifactCache cache(disk.get(), ArtifactCache::Options{1024, false, true, 5});
  const DatasetSpec r = *DatasetSpec::Parse("road/500/3");
  const DatasetSpec s = *DatasetSpec::Parse("road/500/4");

  bool hit = true;
  auto cold = cache.GetKnnMatrix(r, s, Norm::kL2, &hit);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(hit);
  ASSERT_TRUE((*cold)->matrix.ValidateInvariants().ok());

  // The key has no eps and no k: any later kNN query on the pair hits.
  auto warm = cache.GetKnnMatrix(r, s, Norm::kL2, &hit);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(*cold, *warm);

  // A different norm is a different comparison space, hence a different
  // artifact; eps-join matrices live in their own namespace entirely.
  ASSERT_TRUE(cache.GetKnnMatrix(r, s, Norm::kL1, &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(cache.GetMatrix(r, s, 0.01, Norm::kL2, &hit).ok());
  EXPECT_FALSE(hit);

  EXPECT_EQ(cache.stats().knn_matrix_builds, 2u);
  EXPECT_EQ(cache.stats().knn_matrix_hits, 1u);
  EXPECT_EQ(cache.stats().matrix_builds, 1u);
  EXPECT_EQ(cache.stats().matrix_hits, 0u);
}

TEST(ArtifactCacheTest, PersistedDatasetReopensInFreshCache) {
  auto disk = MakeTestBackend(DiskModel(), 1024);
  const DatasetSpec spec = *DatasetSpec::Parse("uniform/200/9/4");

  ArtifactCache::Options options{1024, /*persist_datasets=*/true, true, 5};
  {
    ArtifactCache cache(disk.get(), options);
    ASSERT_TRUE(cache.GetDataset(spec).ok());
    EXPECT_EQ(cache.stats().dataset_builds, 1u);
  }
  // A fresh cache over the same backend finds the persisted copy.
  ArtifactCache reopened(disk.get(), options);
  auto dataset = reopened.GetDataset(spec);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(reopened.stats().dataset_opens, 1u);
  EXPECT_EQ(reopened.stats().dataset_builds, 0u);
  EXPECT_EQ((*dataset)->num_records(), 200u);
}

}  // namespace
}  // namespace server
}  // namespace pmjoin
