// Server ↔ standalone concordance (ISSUE 6 correctness gate): every
// query served by a JoinServer — warm or cold cache, shared pool, any
// submission interleaving — must produce result pairs and OpCounters
// byte-identical to a standalone JoinDriver run of the same job on a
// fresh backend. On top of concordance this file checks the server-only
// properties: the exact I/O-attribution ledger, artifact-cache savings
// over a mixed-ε stream, admission rejection, and cross-process dataset
// persistence.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_driver.h"
#include "data/vector_dataset.h"
#include "io/storage_backend.h"
#include "server/job.h"
#include "server/server.h"
#include "server/server_report.h"
#include "test_util.h"

namespace pmjoin {
namespace server {
namespace {

using testing_util::MakeTestBackend;

constexpr uint32_t kPageBytes = 1024;
constexpr uint32_t kBufferPages = 24;

JoinServer::Options ServerOptions() {
  JoinServer::Options options;
  options.pool_pages = 96;
  options.default_buffer_pages = kBufferPages;
  options.page_size_bytes = kPageBytes;
  options.seed = 1;
  return options;
}

JobSpec MakeJob(const std::string& r, const std::string& s, double eps,
                Algorithm engine = Algorithm::kSc) {
  JobSpec job;
  job.r = r;
  job.s = s;
  job.eps = eps;
  job.engine = engine;
  return job;
}

JobSpec MakeKnnJob(const std::string& r, const std::string& s, uint32_t k) {
  JobSpec job;
  job.r = r;
  job.s = s;
  job.k = k;
  return job;
}

struct StandaloneRun {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  OpCounters ops;
  IoStats join_io;
  uint64_t result_pairs = 0;
};

/// Runs `job` the way pmjoin_cli would: fresh backend, fresh datasets,
/// private buffer pool, matrix built from scratch. This is the oracle the
/// server must match.
StandaloneRun RunStandalone(const JobSpec& job) {
  auto disk = MakeTestBackend(DiskModel(), kPageBytes);
  const DatasetSpec r_spec = *DatasetSpec::Parse(job.r);
  const DatasetSpec s_spec = *DatasetSpec::Parse(job.s);
  VectorDataset::Options build{kPageBytes};
  auto r = VectorDataset::Build(disk.get(), r_spec.Canonical(),
                                r_spec.Generate(), build);
  PMJOIN_CHECK(r.ok());

  JoinOptions options;
  options.algorithm = job.engine;
  options.buffer_pages =
      job.buffer_pages == 0 ? kBufferPages : job.buffer_pages;
  options.page_size_bytes = kPageBytes;
  options.seed = 1;

  JoinDriver driver(disk.get());
  CollectingSink sink;
  Result<JoinReport> report(Status::Internal("unset"));
  std::optional<VectorDataset> s;
  if (r_spec.Canonical() != s_spec.Canonical()) {
    auto built = VectorDataset::Build(disk.get(), s_spec.Canonical(),
                                      s_spec.Generate(), build);
    PMJOIN_CHECK(built.ok());
    s.emplace(std::move(built).value());
  }
  const VectorDataset& s_ref = s.has_value() ? *s : *r;
  report = job.k > 0
               ? driver.RunKnnJoin(*r, s_ref, job.k, options, &sink)
               : driver.RunVector(*r, s_ref, job.eps, options, &sink);
  PMJOIN_CHECK(report.ok());
  StandaloneRun run;
  run.pairs = sink.Sorted();
  run.ops = report->ops;
  run.join_io = report->io;
  run.result_pairs = report->result_pairs;
  return run;
}

void ExpectConcordant(const JoinServer::QueryResult& served,
                      const StandaloneRun& standalone,
                      const std::string& label) {
  EXPECT_EQ(served.row.status, "ok") << label << ": " << served.row.error;
  EXPECT_EQ(served.pairs, standalone.pairs) << label;
  EXPECT_EQ(served.row.ops, standalone.ops) << label;
  EXPECT_EQ(served.row.result_pairs, standalone.result_pairs) << label;
}

void ExpectExactLedger(const ServerReport& report) {
  IoStats attributed;
  for (const QueryRow& row : report.queries()) {
    attributed.pages_read += row.io.pages_read;
    attributed.pages_written += row.io.pages_written;
    attributed.seeks += row.io.seeks;
    attributed.sequential_reads += row.io.sequential_reads;
    attributed.buffer_hits += row.io.buffer_hits;
  }
  const IoStats unattributed = report.UnattributedIo();
  const IoStats& totals = report.io_totals();
  EXPECT_EQ(attributed.pages_read + unattributed.pages_read,
            totals.pages_read);
  EXPECT_EQ(attributed.pages_written + unattributed.pages_written,
            totals.pages_written);
  EXPECT_EQ(attributed.seeks + unattributed.seeks, totals.seeks);
  EXPECT_EQ(attributed.sequential_reads + unattributed.sequential_reads,
            totals.sequential_reads);
  EXPECT_EQ(attributed.buffer_hits + unattributed.buffer_hits,
            totals.buffer_hits);
}

// The gate: concurrent submitters, two dataset pairs, mixed ε, every
// served engine — each result byte-identical to a cold standalone run.
TEST(ServerConcordanceTest, ConcurrentMixedQueriesMatchStandalone) {
  std::vector<JobSpec> jobs;
  const std::string pair_a_r = "road/1500/11";
  const std::string pair_a_s = "road/1500/12";
  const std::string pair_b_r = "uniform/900/5/4";
  const std::string pair_b_s = "uniform/900/6/4";
  for (const Algorithm engine :
       {Algorithm::kNlj, Algorithm::kPmNlj, Algorithm::kRandomSc,
        Algorithm::kSc, Algorithm::kCc}) {
    jobs.push_back(MakeJob(pair_a_r, pair_a_s, 0.01, engine));
    jobs.push_back(MakeJob(pair_b_r, pair_b_s, 0.2, engine));
  }
  // Warm repeats (cache hits) and a self-join.
  jobs.push_back(MakeJob(pair_a_r, pair_a_s, 0.01, Algorithm::kSc));
  jobs.push_back(MakeJob(pair_b_r, pair_b_s, 0.2, Algorithm::kCc));
  jobs.push_back(MakeJob(pair_a_r, pair_a_r, 0.01, Algorithm::kSc));

  auto disk = MakeTestBackend(DiskModel(), kPageBytes);
  JoinServer join_server(disk.get(), ServerOptions());
  ASSERT_TRUE(join_server.Start().ok());

  // Four submitter threads racing into the bounded queue.
  std::vector<Result<uint64_t>> indices(jobs.size(),
                                        Status::Internal("unset"));
  std::vector<std::thread> submitters;
  const size_t kSubmitters = 4;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = t; i < jobs.size(); i += kSubmitters)
        indices[i] = join_server.SubmitBlocking(jobs[i]);
    });
  }
  for (std::thread& thread : submitters) thread.join();
  join_server.WaitAll();
  join_server.Shutdown();

  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(indices[i].ok()) << indices[i].status().ToString();
    const JoinServer::QueryResult& served = join_server.Wait(*indices[i]);
    const StandaloneRun standalone = RunStandalone(jobs[i]);
    ExpectConcordant(served, standalone,
                     "job " + std::to_string(i) + " engine " +
                         EngineToken(jobs[i].engine));
    EXPECT_FALSE(served.pairs.empty()) << "job " << i << " found nothing";
  }

  // The warm repeats must have been served from the matrix cache, and the
  // ledger must balance exactly.
  ServerReport report = join_server.BuildReport();
  EXPECT_GE(join_server.cache_stats().matrix_hits, 2u);
  EXPECT_EQ(join_server.cache_stats().dataset_builds, 4u);
  EXPECT_EQ(report.queries().size(), jobs.size());
  ExpectExactLedger(report);
}

// Warm-cache parity in isolation: the same job twice; the second run hits
// the matrix cache yet reports identical pairs and OpCounters.
TEST(ServerConcordanceTest, WarmCacheQueryMatchesColdStandalone) {
  const JobSpec job = MakeJob("road/1200/3", "road/1200/4", 0.015);
  const StandaloneRun standalone = RunStandalone(job);

  auto disk = MakeTestBackend(DiskModel(), kPageBytes);
  JoinServer join_server(disk.get(), ServerOptions());
  ASSERT_TRUE(join_server.Start().ok());
  auto cold = join_server.SubmitBlocking(job);
  auto warm = join_server.SubmitBlocking(job);
  ASSERT_TRUE(cold.ok() && warm.ok());
  join_server.WaitAll();

  const JoinServer::QueryResult& cold_result = join_server.Wait(*cold);
  const JoinServer::QueryResult& warm_result = join_server.Wait(*warm);
  EXPECT_FALSE(cold_result.row.matrix_cache_hit);
  EXPECT_TRUE(warm_result.row.matrix_cache_hit);
  ExpectConcordant(cold_result, standalone, "cold");
  ExpectConcordant(warm_result, standalone, "warm");

  // The warm query re-reads nothing the pool still holds.
  EXPECT_LT(warm_result.row.io.pages_read, cold_result.row.io.pages_read);
}

// ISSUE 6 serving-economics gate: a 50-query mixed-ε stream must hit the
// matrix cache and move strictly fewer modeled pages than 50 standalone
// runs of the same jobs.
TEST(ServerConcordanceTest, FiftyQueryStreamBeatsStandaloneIo) {
  std::vector<JobSpec> jobs;
  const double eps_values[] = {0.005, 0.01, 0.015, 0.02, 0.025};
  for (int i = 0; i < 50; ++i) {
    const bool pair_a = i % 2 == 0;
    jobs.push_back(MakeJob(pair_a ? "road/1000/21" : "uniform/800/7/4",
                           pair_a ? "road/1000/22" : "uniform/800/8/4",
                           eps_values[i % 5] * (pair_a ? 1.0 : 10.0),
                           i % 3 == 0 ? Algorithm::kCc : Algorithm::kSc));
  }

  auto disk = MakeTestBackend(DiskModel(), kPageBytes);
  JoinServer join_server(disk.get(), ServerOptions());
  ASSERT_TRUE(join_server.Start().ok());
  for (const JobSpec& job : jobs)
    ASSERT_TRUE(join_server.SubmitBlocking(job).ok());
  join_server.WaitAll();
  join_server.Shutdown();
  ServerReport report = join_server.BuildReport();

  uint64_t standalone_pages_read = 0;
  for (const JobSpec& job : jobs)
    standalone_pages_read += RunStandalone(job).join_io.pages_read;

  // Every job repeats its (pair, eps, norm) key at least 4 times, so the
  // stream is cache-heavy by construction.
  EXPECT_GE(join_server.cache_stats().matrix_hits, 1u);
  EXPECT_EQ(report.queries().size(), 50u);
  EXPECT_LT(report.io_totals().pages_read, standalone_pages_read);
  ExpectExactLedger(report);
}

// Mixed ε/kNN traffic on one server: every query concordant with its
// standalone oracle, the kNN candidate matrix shared across different k
// (its key has neither eps nor k), ε and kNN caches independent, and the
// I/O ledger exact across both query types.
TEST(ServerConcordanceTest, MixedEpsAndKnnStreamSharesArtifacts) {
  const std::string pair_r = "road/1200/31";
  const std::string pair_s = "road/1200/32";
  std::vector<JobSpec> jobs;
  jobs.push_back(MakeJob(pair_r, pair_s, 0.01, Algorithm::kSc));
  jobs.push_back(MakeKnnJob(pair_r, pair_s, 4));   // builds the kNN matrix
  jobs.push_back(MakeKnnJob(pair_r, pair_s, 8));   // hits it despite new k
  jobs.push_back(MakeJob(pair_r, pair_s, 0.01, Algorithm::kCc));
  jobs.push_back(MakeKnnJob(pair_r, pair_s, 4));   // warm repeat
  jobs.push_back(MakeKnnJob(pair_r, pair_r, 2));   // kNN self join
  jobs.push_back(MakeKnnJob("uniform/700/9/4", "uniform/700/10/4", 8));

  auto disk = MakeTestBackend(DiskModel(), kPageBytes);
  JoinServer join_server(disk.get(), ServerOptions());
  ASSERT_TRUE(join_server.Start().ok());
  std::vector<uint64_t> indices;
  for (const JobSpec& job : jobs) {
    auto index = join_server.SubmitBlocking(job);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    indices.push_back(*index);
  }
  join_server.WaitAll();
  join_server.Shutdown();

  for (size_t i = 0; i < jobs.size(); ++i) {
    const JoinServer::QueryResult& served = join_server.Wait(indices[i]);
    ExpectConcordant(served, RunStandalone(jobs[i]),
                     "job " + std::to_string(i) +
                         (jobs[i].k > 0 ? " knn" : " eps"));
    EXPECT_EQ(served.row.k, jobs[i].k) << i;
    if (jobs[i].k > 0) EXPECT_EQ(served.row.engine, "knn") << i;
  }

  // One kNN matrix build per dataset pair — (r,s), (r,r), and the uniform
  // pair — every other kNN query a hit, including the k=8 one. The ε
  // matrices are keyed separately: the two eps jobs share one build (same
  // eps and norm; the engine is not part of the key) untouched by the
  // interleaved kNN traffic.
  const ArtifactCache::Stats stats = join_server.cache_stats();
  EXPECT_EQ(stats.knn_matrix_builds, 3u);
  EXPECT_EQ(stats.knn_matrix_hits, 2u);
  EXPECT_EQ(stats.matrix_builds, 1u);
  EXPECT_EQ(stats.matrix_hits, 1u);

  ServerReport report = join_server.BuildReport();
  EXPECT_EQ(report.queries().size(), jobs.size());
  const std::vector<QueryRow>& rows = report.queries();
  EXPECT_FALSE(rows[1].matrix_cache_hit);  // cold kNN matrix
  EXPECT_TRUE(rows[2].matrix_cache_hit);   // different k, same matrix
  EXPECT_TRUE(rows[4].matrix_cache_hit);   // warm repeat
  ExpectExactLedger(report);
}

TEST(ServerConcordanceTest, RejectsUnservedEngineWithResultRow) {
  auto disk = MakeTestBackend(DiskModel(), kPageBytes);
  JoinServer join_server(disk.get(), ServerOptions());
  ASSERT_TRUE(join_server.Start().ok());

  JobSpec bad = MakeJob("road/100/1", "road/100/2", 0.1);
  bad.engine = Algorithm::kEgo;
  bad.id = "unserved";
  auto rejected = join_server.Submit(bad);
  EXPECT_FALSE(rejected.ok());

  auto good = join_server.SubmitBlocking(
      MakeJob("road/100/1", "road/100/2", 0.1));
  ASSERT_TRUE(good.ok());
  join_server.WaitAll();
  join_server.Shutdown();

  ServerReport report = join_server.BuildReport();
  ASSERT_EQ(report.queries().size(), 2u);
  const QueryRow& row = report.queries()[0];
  EXPECT_EQ(row.id, "unserved");
  EXPECT_EQ(row.status, "rejected");
  EXPECT_FALSE(row.executed);
  EXPECT_EQ(row.io, IoStats());  // nothing was built or read for it
  ExpectExactLedger(report);
}

// Dataset persistence across server processes: with persist_datasets on,
// a second server over the same backend reopens instead of regenerating,
// and still serves byte-identical results.
TEST(ServerConcordanceTest, PersistedDatasetsServeIdenticalResults) {
  const JobSpec job = MakeJob("clusters/600/2/4", "clusters/600/3/4", 0.9);
  auto disk = MakeTestBackend(DiskModel(), kPageBytes);

  JoinServer::Options options = ServerOptions();
  options.persist_datasets = true;

  std::vector<std::pair<uint64_t, uint64_t>> first_pairs;
  OpCounters first_ops;
  {
    JoinServer first(disk.get(), options);
    ASSERT_TRUE(first.Start().ok());
    auto index = first.SubmitBlocking(job);
    ASSERT_TRUE(index.ok());
    first.WaitAll();
    const JoinServer::QueryResult& result = first.Wait(*index);
    ASSERT_EQ(result.row.status, "ok") << result.row.error;
    EXPECT_EQ(first.cache_stats().dataset_builds, 2u);
    first_pairs = result.pairs;
    first_ops = result.row.ops;
  }

  JoinServer second(disk.get(), options);
  ASSERT_TRUE(second.Start().ok());
  auto index = second.SubmitBlocking(job);
  ASSERT_TRUE(index.ok());
  second.WaitAll();
  const JoinServer::QueryResult& result = second.Wait(*index);
  ASSERT_EQ(result.row.status, "ok") << result.row.error;
  EXPECT_EQ(second.cache_stats().dataset_opens, 2u);
  EXPECT_EQ(second.cache_stats().dataset_builds, 0u);
  EXPECT_EQ(result.pairs, first_pairs);
  EXPECT_EQ(result.row.ops, first_ops);
}

}  // namespace
}  // namespace server
}  // namespace pmjoin
