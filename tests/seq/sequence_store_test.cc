#include "seq/sequence_store.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/distance.h"
#include "io/simulated_disk.h"
#include "seq/edit_distance.h"
#include "seq/frequency_vector.h"
#include "seq/paa.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::RandomSeries;
using testing_util::RandomString;

TEST(SequenceLayoutTest, WindowArithmetic) {
  SequenceLayout layout;
  layout.num_symbols = 100;
  layout.window_len = 10;
  layout.windows_per_page = 25;
  EXPECT_EQ(layout.NumWindows(), 91u);
  EXPECT_EQ(layout.NumPages(), 4u);
  EXPECT_EQ(layout.FirstWindow(0), 0u);
  EXPECT_EQ(layout.FirstWindow(3), 75u);
  EXPECT_EQ(layout.WindowCount(0), 25u);
  EXPECT_EQ(layout.WindowCount(3), 16u);  // 91 − 75.
  EXPECT_EQ(layout.PageOfWindow(0), 0u);
  EXPECT_EQ(layout.PageOfWindow(74), 2u);
  EXPECT_EQ(layout.PageOfWindow(75), 3u);
}

TEST(SequenceLayoutTest, ShortSequence) {
  SequenceLayout layout;
  layout.num_symbols = 5;
  layout.window_len = 10;
  layout.windows_per_page = 4;
  EXPECT_EQ(layout.NumWindows(), 0u);
}

TEST(StringSequenceStoreTest, BuildValidation) {
  SimulatedDisk disk;
  EXPECT_FALSE(StringSequenceStore::Build(&disk, "x", {0, 1, 2}, 4, 10, 64)
                   .ok());  // Too short.
  EXPECT_FALSE(StringSequenceStore::Build(&disk, "x", {0, 1, 2, 3}, 4, 4, 3)
                   .ok());  // Page too small.
  EXPECT_FALSE(StringSequenceStore::Build(&disk, "x", {0, 9}, 4, 1, 64)
                   .ok());  // Symbol outside alphabet.
}

TEST(StringSequenceStoreTest, LayoutAndFile) {
  SimulatedDisk disk;
  Rng rng(3);
  auto symbols = RandomString(&rng, 500, 4);
  auto store = StringSequenceStore::Build(&disk, "dna", std::move(symbols),
                                          4, 16, 64);
  ASSERT_TRUE(store.ok());
  const SequenceLayout& layout = store->layout();
  EXPECT_EQ(layout.window_len, 16u);
  EXPECT_EQ(layout.windows_per_page, 64u - 15u);
  EXPECT_EQ(disk.file(store->file_id()).num_pages, layout.NumPages());
}

TEST(StringSequenceStoreTest, PageMbrCoversAllWindowFrequencies) {
  SimulatedDisk disk;
  Rng rng(5);
  auto symbols = RandomString(&rng, 400, 4);
  auto store = StringSequenceStore::Build(&disk, "dna", symbols, 4, 12, 48);
  ASSERT_TRUE(store.ok());
  const SequenceLayout& layout = store->layout();
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    const Mbr& mbr = store->PageMbr(p);
    for (uint64_t w = layout.FirstWindow(p);
         w < layout.FirstWindow(p) + layout.WindowCount(p); ++w) {
      const auto freq = BuildFrequencyVector(
          std::span<const uint8_t>(symbols).subspan(w, 12), 4);
      std::vector<float> point(freq.begin(), freq.end());
      EXPECT_TRUE(mbr.Contains(point)) << "page " << p << " window " << w;
    }
  }
}

TEST(StringSequenceStoreTest, PageLowerBoundHolds) {
  // PageLowerBound(p, q) <= ED(x, y) for every window pair (x in p, y in
  // q): the Theorem-1 premise for string pages.
  SimulatedDisk disk;
  Rng rng(7);
  auto symbols = RandomString(&rng, 200, 4);
  const uint32_t L = 8;
  auto store = StringSequenceStore::Build(&disk, "dna", symbols, 4, L, 40);
  ASSERT_TRUE(store.ok());
  const SequenceLayout& layout = store->layout();
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    for (uint32_t q = 0; q < layout.NumPages(); ++q) {
      const double lb = store->PageLowerBound(p, *store, q);
      for (uint64_t x = layout.FirstWindow(p);
           x < layout.FirstWindow(p) + layout.WindowCount(p); x += 3) {
        for (uint64_t y = layout.FirstWindow(q);
             y < layout.FirstWindow(q) + layout.WindowCount(q); y += 3) {
          const size_t ed = EditDistance(
              std::span<const uint8_t>(symbols).subspan(x, L),
              std::span<const uint8_t>(symbols).subspan(y, L));
          EXPECT_LE(lb, double(ed) + 1e-9)
              << "pages " << p << "," << q << " windows " << x << "," << y;
        }
      }
    }
  }
}

TEST(TimeSeriesStoreTest, BuildValidation) {
  SimulatedDisk disk;
  std::vector<float> series(100, 1.0f);
  EXPECT_FALSE(
      TimeSeriesStore::Build(&disk, "t", series, 10, 3, 4096).ok());
  EXPECT_FALSE(TimeSeriesStore::Build(&disk, "t", {1.0f, 2.0f}, 10, 2, 4096)
                   .ok());
}

TEST(TimeSeriesStoreTest, PageMbrCoversAllWindowFeatures) {
  SimulatedDisk disk;
  Rng rng(11);
  auto series = RandomSeries(&rng, 300);
  const uint32_t L = 16, f = 4;
  auto store =
      TimeSeriesStore::Build(&disk, "ts", series, L, f, 60 * sizeof(float));
  ASSERT_TRUE(store.ok());
  const SequenceLayout& layout = store->layout();
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    const Mbr& mbr = store->PageMbr(p);
    for (uint64_t w = layout.FirstWindow(p);
         w < layout.FirstWindow(p) + layout.WindowCount(p); ++w) {
      const auto feat =
          Paa(std::span<const float>(series).subspan(w, L), f);
      // Prefix-sum computation may differ from direct means by FP noise.
      for (size_t d = 0; d < f; ++d) {
        EXPECT_GE(feat[d], mbr.lo(d) - 1e-4);
        EXPECT_LE(feat[d], mbr.hi(d) + 1e-4);
      }
    }
  }
}

TEST(TimeSeriesStoreTest, PageLowerBoundHolds) {
  SimulatedDisk disk;
  Rng rng(13);
  auto series = RandomSeries(&rng, 200);
  const uint32_t L = 8, f = 4;
  auto store =
      TimeSeriesStore::Build(&disk, "ts", series, L, f, 30 * sizeof(float));
  ASSERT_TRUE(store.ok());
  const SequenceLayout& layout = store->layout();
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    for (uint32_t q = 0; q < layout.NumPages(); ++q) {
      const double lb = store->PageLowerBound(p, *store, q);
      for (uint64_t x = layout.FirstWindow(p);
           x < layout.FirstWindow(p) + layout.WindowCount(p); x += 2) {
        for (uint64_t y = layout.FirstWindow(q);
             y < layout.FirstWindow(q) + layout.WindowCount(q); y += 2) {
          const double raw = VectorDistance(
              std::span<const float>(series).subspan(x, L),
              std::span<const float>(series).subspan(y, L), Norm::kL2);
          EXPECT_LE(lb, raw + 1e-3)
              << "pages " << p << "," << q << " windows " << x << "," << y;
        }
      }
    }
  }
}

TEST(TimeSeriesStoreTest, LastPageShortButCovered) {
  SimulatedDisk disk;
  Rng rng(17);
  auto series = RandomSeries(&rng, 101);
  auto store =
      TimeSeriesStore::Build(&disk, "ts", series, 8, 4, 40 * sizeof(float));
  ASSERT_TRUE(store.ok());
  const SequenceLayout& layout = store->layout();
  uint64_t covered = 0;
  for (uint32_t p = 0; p < layout.NumPages(); ++p)
    covered += layout.WindowCount(p);
  EXPECT_EQ(covered, layout.NumWindows());
}


TEST(SequenceLayoutTest, SubBoxArithmetic) {
  SequenceLayout layout;
  layout.num_symbols = 1000;
  layout.window_len = 10;
  layout.windows_per_page = 150;
  layout.windows_per_sub_box = 64;
  // 991 windows, 7 pages; full pages have ceil(150/64) = 3 sub-boxes.
  ASSERT_EQ(layout.NumPages(), 7u);
  EXPECT_EQ(layout.SubBoxCount(0), 3u);
  EXPECT_EQ(layout.SubBoxWindowCount(0, 0), 64u);
  EXPECT_EQ(layout.SubBoxWindowCount(0, 1), 64u);
  EXPECT_EQ(layout.SubBoxWindowCount(0, 2), 22u);
  EXPECT_EQ(layout.SubBoxFirstWindow(1, 1), 150u + 64u);
  // Last page holds 991 - 6*150 = 91 windows -> 2 sub-boxes.
  EXPECT_EQ(layout.WindowCount(6), 91u);
  EXPECT_EQ(layout.SubBoxCount(6), 2u);
  EXPECT_EQ(layout.SubBoxWindowCount(6, 1), 27u);
}

TEST(SequenceLayoutTest, SubBoxesPartitionPageWindows) {
  SequenceLayout layout;
  layout.num_symbols = 5000;
  layout.window_len = 37;
  layout.windows_per_page = 201;
  layout.windows_per_sub_box = 64;
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    uint64_t covered = 0;
    uint64_t expected_start = layout.FirstWindow(p);
    for (uint32_t b = 0; b < layout.SubBoxCount(p); ++b) {
      EXPECT_EQ(layout.SubBoxFirstWindow(p, b), expected_start);
      const uint32_t count = layout.SubBoxWindowCount(p, b);
      EXPECT_GT(count, 0u);
      covered += count;
      expected_start += count;
    }
    EXPECT_EQ(covered, layout.WindowCount(p));
  }
}

TEST(StringSequenceStoreTest, SubBoxMbrsCoverTheirWindows) {
  SimulatedDisk disk;
  Rng rng(41);
  auto symbols = RandomString(&rng, 600, 4);
  const uint32_t L = 10;
  auto store = StringSequenceStore::Build(&disk, "dna", symbols, 4, L, 80);
  ASSERT_TRUE(store.ok());
  const SequenceLayout& layout = store->layout();
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    for (uint32_t b = 0; b < layout.SubBoxCount(p); ++b) {
      const Mbr& sub = store->SubBoxMbr(p, b);
      // Sub-box nested in the page box.
      EXPECT_TRUE(store->PageMbr(p).Contains(sub));
      const uint64_t first = layout.SubBoxFirstWindow(p, b);
      for (uint64_t w = first; w < first + layout.SubBoxWindowCount(p, b);
           ++w) {
        const auto freq = BuildFrequencyVector(
            std::span<const uint8_t>(symbols).subspan(w, L), 4);
        std::vector<float> point(freq.begin(), freq.end());
        EXPECT_TRUE(sub.Contains(point)) << "p" << p << " b" << b;
      }
    }
  }
}

TEST(TimeSeriesStoreTest, SubBoxMbrsCoverTheirWindows) {
  SimulatedDisk disk;
  Rng rng(43);
  auto series = RandomSeries(&rng, 700);
  const uint32_t L = 16, f = 4;
  auto store =
      TimeSeriesStore::Build(&disk, "ts", series, L, f, 90 * sizeof(float));
  ASSERT_TRUE(store.ok());
  const SequenceLayout& layout = store->layout();
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    for (uint32_t b = 0; b < layout.SubBoxCount(p); ++b) {
      const Mbr& sub = store->SubBoxMbr(p, b);
      EXPECT_TRUE(store->PageMbr(p).Contains(sub));
      const uint64_t first = layout.SubBoxFirstWindow(p, b);
      for (uint64_t w = first; w < first + layout.SubBoxWindowCount(p, b);
           ++w) {
        const auto feat =
            Paa(std::span<const float>(series).subspan(w, L), f);
        for (size_t d = 0; d < f; ++d) {
          EXPECT_GE(feat[d], sub.lo(d) - 1e-4);
          EXPECT_LE(feat[d], sub.hi(d) + 1e-4);
        }
      }
    }
  }
}


TEST(SequenceLayoutTest, CoarseBoxArithmetic) {
  SequenceLayout layout;
  layout.num_symbols = 3000;
  layout.window_len = 10;
  layout.windows_per_page = 600;
  layout.windows_per_sub_box = 64;
  layout.windows_per_coarse_box = 256;
  EXPECT_EQ(layout.FinePerCoarse(), 4u);
  // Full page: 600 windows -> 10 fine boxes, 3 coarse boxes.
  EXPECT_EQ(layout.SubBoxCount(0), 10u);
  EXPECT_EQ(layout.CoarseBoxCount(0), 3u);
  uint32_t lo, hi;
  layout.CoarseToFine(0, 0, &lo, &hi);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 4u);
  layout.CoarseToFine(0, 2, &lo, &hi);
  EXPECT_EQ(lo, 8u);
  EXPECT_EQ(hi, 10u);  // Clamped to the fine-box count.
}

TEST(SequenceLayoutTest, CoarseBoxesCoverAllFineBoxes) {
  SequenceLayout layout;
  layout.num_symbols = 7777;
  layout.window_len = 21;
  layout.windows_per_page = 500;
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    uint32_t covered = 0;
    for (uint32_t cb = 0; cb < layout.CoarseBoxCount(p); ++cb) {
      uint32_t lo, hi;
      layout.CoarseToFine(p, cb, &lo, &hi);
      EXPECT_EQ(lo, covered);
      EXPECT_GT(hi, lo);
      covered = hi;
    }
    EXPECT_EQ(covered, layout.SubBoxCount(p));
  }
}

TEST(StringSequenceStoreTest, CoarseBoxesContainTheirFineBoxes) {
  SimulatedDisk disk;
  Rng rng(47);
  auto symbols = RandomString(&rng, 1200, 4);
  auto store = StringSequenceStore::Build(&disk, "dna", symbols, 4, 10,
                                          400);
  ASSERT_TRUE(store.ok());
  const SequenceLayout& layout = store->layout();
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    for (uint32_t cb = 0; cb < layout.CoarseBoxCount(p); ++cb) {
      const Mbr& coarse = store->CoarseBoxMbr(p, cb);
      EXPECT_TRUE(store->PageMbr(p).Contains(coarse));
      uint32_t lo, hi;
      layout.CoarseToFine(p, cb, &lo, &hi);
      for (uint32_t b = lo; b < hi; ++b) {
        EXPECT_TRUE(coarse.Contains(store->SubBoxMbr(p, b)))
            << "p" << p << " cb" << cb << " b" << b;
      }
    }
  }
}

TEST(TimeSeriesStoreTest, CoarseBoxesContainTheirFineBoxes) {
  SimulatedDisk disk;
  Rng rng(53);
  auto series = RandomSeries(&rng, 1500);
  auto store = TimeSeriesStore::Build(&disk, "ts", series, 16, 4,
                                      420 * sizeof(float));
  ASSERT_TRUE(store.ok());
  const SequenceLayout& layout = store->layout();
  for (uint32_t p = 0; p < layout.NumPages(); ++p) {
    for (uint32_t cb = 0; cb < layout.CoarseBoxCount(p); ++cb) {
      const Mbr& coarse = store->CoarseBoxMbr(p, cb);
      uint32_t lo, hi;
      layout.CoarseToFine(p, cb, &lo, &hi);
      for (uint32_t b = lo; b < hi; ++b) {
        EXPECT_TRUE(coarse.Contains(store->SubBoxMbr(p, b)));
      }
    }
  }
}

}  // namespace
}  // namespace pmjoin
