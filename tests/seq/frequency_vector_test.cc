#include "seq/frequency_vector.h"

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "seq/edit_distance.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::RandomString;

TEST(FrequencyVectorTest, CountsSymbols) {
  const std::vector<uint8_t> w{0, 1, 1, 2, 2, 2};
  const std::vector<uint32_t> freq = BuildFrequencyVector(w, 4);
  EXPECT_EQ(freq, (std::vector<uint32_t>{1, 2, 3, 0}));
}

TEST(FrequencyVectorTest, FrequencyDistanceOfEqualIsZero) {
  Rng rng(3);
  const auto w = RandomString(&rng, 40, 4);
  const auto f = BuildFrequencyVector(w, 4);
  EXPECT_EQ(FrequencyDistance(f, f), 0u);
}

TEST(FrequencyVectorTest, FrequencyDistanceKnown) {
  const std::vector<uint32_t> u{4, 0, 0, 0};
  const std::vector<uint32_t> v{0, 4, 0, 0};
  // L1 = 8, FD = 4 (four substitutions needed).
  EXPECT_EQ(FrequencyDistance(u, v), 4u);
}

TEST(FrequencyVectorTest, LowerBoundsEditDistanceProperty) {
  // The MRS-index contract (Table 1): FD(freq(x), freq(y)) <= ED(x, y)
  // for equal-length windows. This is the correctness basis for string
  // prediction-matrix marking.
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t len = 4 + rng.Uniform(30);
    const auto x = RandomString(&rng, len, 4);
    const auto y = RandomString(&rng, len, 4);
    const uint32_t fd = FrequencyDistance(BuildFrequencyVector(x, 4),
                                          BuildFrequencyVector(y, 4));
    EXPECT_LE(fd, EditDistance(x, y));
  }
}

TEST(FrequencyVectorTest, LowerBoundTightForPureSubstitutions) {
  // x = all zeros, y = k ones: ED = k = FD.
  for (uint32_t k = 0; k <= 10; ++k) {
    std::vector<uint8_t> x(20, 0), y(20, 0);
    for (uint32_t i = 0; i < k; ++i) y[i] = 1;
    const uint32_t fd = FrequencyDistance(BuildFrequencyVector(x, 4),
                                          BuildFrequencyVector(y, 4));
    EXPECT_EQ(fd, k);
    EXPECT_EQ(EditDistance(x, y), k);
  }
}

class FreqPairTrackerTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FreqPairTrackerTest, MatchesRecomputationWhileSliding) {
  const uint32_t alphabet = GetParam();
  Rng rng(7 + alphabet);
  const size_t L = 12;
  const auto x = RandomString(&rng, 100, alphabet);
  const auto y = RandomString(&rng, 100, alphabet);
  FreqPairTracker tracker(std::span<const uint8_t>(x).subspan(0, L),
                          std::span<const uint8_t>(y).subspan(0, L),
                          alphabet);
  for (size_t t = 0;; ++t) {
    const auto fx = BuildFrequencyVector(
        std::span<const uint8_t>(x).subspan(t, L), alphabet);
    const auto fy = BuildFrequencyVector(
        std::span<const uint8_t>(y).subspan(t, L), alphabet);
    uint32_t l1 = 0;
    for (size_t c = 0; c < alphabet; ++c)
      l1 += static_cast<uint32_t>(
          std::abs(int64_t(fx[c]) - int64_t(fy[c])));
    EXPECT_EQ(tracker.L1(), l1) << "offset " << t;
    EXPECT_EQ(tracker.FrequencyDist(), (l1 + 1) / 2);
    if (t + L + 1 > x.size()) break;
    tracker.Slide(x[t], x[t + L], y[t], y[t + L]);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphabets, FreqPairTrackerTest,
                         ::testing::Values(2, 4, 8, 26));

TEST(FreqPairTrackerTest, IdenticalWindowsStayZero) {
  Rng rng(11);
  const auto x = RandomString(&rng, 50, 4);
  const size_t L = 10;
  FreqPairTracker tracker(std::span<const uint8_t>(x).subspan(0, L),
                          std::span<const uint8_t>(x).subspan(0, L), 4);
  EXPECT_EQ(tracker.L1(), 0u);
  for (size_t t = 0; t + L + 1 <= x.size(); ++t) {
    tracker.Slide(x[t], x[t + L], x[t], x[t + L]);
    EXPECT_EQ(tracker.L1(), 0u);
  }
}

}  // namespace
}  // namespace pmjoin
