#include "seq/edit_distance.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::RandomString;

std::vector<uint8_t> Str(const char* s) {
  std::vector<uint8_t> v;
  for (const char* p = s; *p; ++p) v.push_back(static_cast<uint8_t>(*p));
  return v;
}

/// Exponential reference implementation for tiny strings.
size_t SlowEd(std::span<const uint8_t> a, std::span<const uint8_t> b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  const size_t subst = SlowEd(a.subspan(1), b.subspan(1)) +
                       (a[0] != b[0] ? 1 : 0);
  const size_t del = SlowEd(a.subspan(1), b) + 1;
  const size_t ins = SlowEd(a, b.subspan(1)) + 1;
  return std::min({subst, del, ins});
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance(Str("kitten"), Str("sitting")), 3u);
  EXPECT_EQ(EditDistance(Str("flaw"), Str("lawn")), 2u);
  EXPECT_EQ(EditDistance(Str("abc"), Str("abc")), 0u);
  EXPECT_EQ(EditDistance(Str(""), Str("abc")), 3u);
  EXPECT_EQ(EditDistance(Str("abc"), Str("")), 3u);
}

TEST(EditDistanceTest, Symmetric) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = RandomString(&rng, 1 + rng.Uniform(20), 4);
    const auto b = RandomString(&rng, 1 + rng.Uniform(20), 4);
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
  }
}

TEST(EditDistanceTest, MatchesExponentialReference) {
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    const auto a = RandomString(&rng, rng.Uniform(7), 3);
    const auto b = RandomString(&rng, rng.Uniform(7), 3);
    EXPECT_EQ(EditDistance(a, b), SlowEd(a, b));
  }
}

TEST(EditDistanceTest, BoundedByLengthDifferenceAndMax) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = RandomString(&rng, 1 + rng.Uniform(30), 4);
    const auto b = RandomString(&rng, 1 + rng.Uniform(30), 4);
    const size_t ed = EditDistance(a, b);
    const size_t diff =
        a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    EXPECT_GE(ed, diff);
    EXPECT_LE(ed, std::max(a.size(), b.size()));
  }
}

TEST(EditDistanceTest, TriangleInequality) {
  Rng rng(9);
  for (int trial = 0; trial < 40; ++trial) {
    const auto a = RandomString(&rng, 5 + rng.Uniform(10), 4);
    const auto b = RandomString(&rng, 5 + rng.Uniform(10), 4);
    const auto c = RandomString(&rng, 5 + rng.Uniform(10), 4);
    EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
  }
}

TEST(EditDistanceTest, CountsCells) {
  OpCounters ops;
  EditDistance(Str("abcd"), Str("xy"), &ops);
  EXPECT_EQ(ops.edit_cells, 8u);  // 4 rows × 2 columns.
}

class BandedEditDistanceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BandedEditDistanceTest, AgreesWithFullWhenWithinBand) {
  const size_t k = GetParam();
  Rng rng(11 + k);
  for (int trial = 0; trial < 100; ++trial) {
    // Construct near pairs: mutate a few positions.
    auto a = RandomString(&rng, 20 + rng.Uniform(20), 4);
    auto b = a;
    const size_t edits = rng.Uniform(k + 2);
    for (size_t e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(b.size());
      b[pos] = static_cast<uint8_t>(rng.Uniform(4));
    }
    const size_t full = EditDistance(a, b);
    const size_t banded = BandedEditDistance(a, b, k);
    if (full <= k) {
      EXPECT_EQ(banded, full);
    } else {
      EXPECT_GT(banded, k);
    }
  }
}

TEST_P(BandedEditDistanceTest, RandomPairs) {
  const size_t k = GetParam();
  Rng rng(23 + k);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = RandomString(&rng, 1 + rng.Uniform(25), 4);
    const auto b = RandomString(&rng, 1 + rng.Uniform(25), 4);
    const size_t full = EditDistance(a, b);
    const size_t banded = BandedEditDistance(a, b, k);
    if (full <= k) {
      EXPECT_EQ(banded, full);
    } else {
      EXPECT_GT(banded, k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BandedEditDistanceTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8));

TEST(BandedEditDistanceTest, LengthGapShortCircuit) {
  OpCounters ops;
  const auto a = Str("aaaaaaaaaa");
  const auto b = Str("aa");
  EXPECT_GT(BandedEditDistance(a, b, 3, &ops), 3u);
  EXPECT_EQ(ops.edit_cells, 0u);  // Rejected before any DP work.
}

TEST(BandedEditDistanceTest, CheaperThanFullForSmallK) {
  Rng rng(31);
  const auto a = RandomString(&rng, 200, 4);
  const auto b = RandomString(&rng, 200, 4);
  OpCounters full_ops, banded_ops;
  EditDistance(a, b, &full_ops);
  BandedEditDistance(a, b, 5, &banded_ops);
  EXPECT_LT(banded_ops.edit_cells, full_ops.edit_cells / 4);
}

TEST(BandedEditDistanceTest, IdenticalStringsZero) {
  Rng rng(37);
  const auto a = RandomString(&rng, 50, 4);
  EXPECT_EQ(BandedEditDistance(a, a, 0), 0u);
  EXPECT_EQ(BandedEditDistance(a, a, 5), 0u);
}

}  // namespace
}  // namespace pmjoin
