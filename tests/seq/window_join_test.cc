#include "seq/window_join.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/reference_join.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::RandomSeries;
using testing_util::RandomString;
using testing_util::SortedPairs;

/// Filters a reference result down to a window-range rectangle.
std::vector<std::pair<uint64_t, uint64_t>> Restrict(
    const std::vector<std::pair<uint64_t, uint64_t>>& pairs, WindowRange xr,
    WindowRange yr) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (const auto& [x, y] : pairs) {
    if (x >= xr.first && x < xr.first + xr.count && y >= yr.first &&
        y < yr.first + yr.count) {
      out.push_back({x, y});
    }
  }
  return out;
}

TEST(TimeSeriesWindowJoinTest, MatchesReferenceFullRange) {
  Rng rng(3);
  const auto x = RandomSeries(&rng, 80);
  const auto y = RandomSeries(&rng, 60);
  const uint32_t L = 8;
  const double eps = 0.8;

  WindowJoinOptions options;
  options.window_len = L;
  CollectingSink kernel_sink;
  JoinTimeSeriesWindows(x, y, {0, uint32_t(x.size() - L + 1)},
                        {0, uint32_t(y.size() - L + 1)}, options, eps,
                        &kernel_sink, nullptr);

  CollectingSink ref_sink;
  ReferenceTimeSeriesJoin(x, y, L, eps, /*self_join=*/false, &ref_sink);
  EXPECT_EQ(SortedPairs(kernel_sink), SortedPairs(ref_sink));
  EXPECT_GT(kernel_sink.pairs().size(), 0u);  // Sanity: non-trivial test.
}

TEST(TimeSeriesWindowJoinTest, MatchesReferenceOnSubRanges) {
  Rng rng(5);
  const auto x = RandomSeries(&rng, 100);
  const auto y = RandomSeries(&rng, 100);
  const uint32_t L = 10;
  const double eps = 0.9;

  CollectingSink ref_sink;
  ReferenceTimeSeriesJoin(x, y, L, eps, false, &ref_sink);
  const auto ref = SortedPairs(ref_sink);

  WindowJoinOptions options;
  options.window_len = L;
  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t nx = x.size() - L + 1;
    const uint64_t ny = y.size() - L + 1;
    WindowRange xr{rng.Uniform(nx),
                   static_cast<uint32_t>(1 + rng.Uniform(30))};
    WindowRange yr{rng.Uniform(ny),
                   static_cast<uint32_t>(1 + rng.Uniform(30))};
    xr.count = static_cast<uint32_t>(
        std::min<uint64_t>(xr.count, nx - xr.first));
    yr.count = static_cast<uint32_t>(
        std::min<uint64_t>(yr.count, ny - yr.first));
    CollectingSink sink;
    JoinTimeSeriesWindows(x, y, xr, yr, options, eps, &sink, nullptr);
    EXPECT_EQ(SortedPairs(sink), Restrict(ref, xr, yr));
  }
}

TEST(TimeSeriesWindowJoinTest, SelfJoinExcludesOverlaps) {
  Rng rng(7);
  const auto x = RandomSeries(&rng, 90);
  const uint32_t L = 8;
  const double eps = 1.2;

  WindowJoinOptions options;
  options.window_len = L;
  options.self_join = true;
  const uint32_t n = static_cast<uint32_t>(x.size() - L + 1);
  CollectingSink sink;
  JoinTimeSeriesWindows(x, x, {0, n}, {0, n}, options, eps, &sink, nullptr);
  for (const auto& [a, b] : sink.pairs()) {
    EXPECT_LE(a + L, b);
  }
  CollectingSink ref_sink;
  ReferenceTimeSeriesJoin(x, x, L, eps, true, &ref_sink);
  EXPECT_EQ(SortedPairs(sink), SortedPairs(ref_sink));
}

TEST(TimeSeriesWindowJoinTest, CountersCharged) {
  Rng rng(9);
  const auto x = RandomSeries(&rng, 50);
  const uint32_t L = 8;
  WindowJoinOptions options;
  options.window_len = L;
  CountingSink sink;
  OpCounters ops;
  const uint32_t n = static_cast<uint32_t>(x.size() - L + 1);
  JoinTimeSeriesWindows(x, x, {0, n}, {0, n}, options, 0.5, &sink, &ops);
  const uint64_t diagonals = 2 * uint64_t(n) - 1;
  EXPECT_EQ(ops.distance_terms, diagonals * L);
  EXPECT_EQ(ops.filter_checks, uint64_t(n) * n - diagonals);
}

TEST(StringWindowJoinTest, MatchesReferenceFullRange) {
  Rng rng(11);
  // Two related strings so there are actual matches at small k.
  auto x = RandomString(&rng, 70, 4);
  auto y = x;
  for (int i = 0; i < 8; ++i)
    y[rng.Uniform(y.size())] = static_cast<uint8_t>(rng.Uniform(4));
  const uint32_t L = 10;
  const uint32_t k = 2;

  WindowJoinOptions options;
  options.window_len = L;
  CollectingSink sink;
  JoinStringWindows(x, y, {0, uint32_t(x.size() - L + 1)},
                    {0, uint32_t(y.size() - L + 1)}, options, k, 4, &sink,
                    nullptr);

  CollectingSink ref_sink;
  ReferenceStringJoin(x, y, L, k, false, &ref_sink);
  EXPECT_EQ(SortedPairs(sink), SortedPairs(ref_sink));
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(StringWindowJoinTest, SelfJoinMatchesReference) {
  Rng rng(13);
  // Plant a repeat so the self join is non-empty.
  auto x = RandomString(&rng, 60, 4);
  for (int i = 0; i < 12; ++i) x.push_back(x[i]);
  const uint32_t L = 10;
  const uint32_t k = 1;

  WindowJoinOptions options;
  options.window_len = L;
  options.self_join = true;
  const uint32_t n = static_cast<uint32_t>(x.size() - L + 1);
  CollectingSink sink;
  JoinStringWindows(x, x, {0, n}, {0, n}, options, k, 4, &sink, nullptr);

  CollectingSink ref_sink;
  ReferenceStringJoin(x, x, L, k, true, &ref_sink);
  EXPECT_EQ(SortedPairs(sink), SortedPairs(ref_sink));
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(StringWindowJoinTest, ZeroEditsFindsExactRepeats) {
  std::vector<uint8_t> x;
  for (int rep = 0; rep < 3; ++rep) {
    for (uint8_t c : {0, 1, 2, 3, 0, 1, 2, 3}) x.push_back(c);
  }
  const uint32_t L = 8;
  WindowJoinOptions options;
  options.window_len = L;
  options.self_join = true;
  const uint32_t n = static_cast<uint32_t>(x.size() - L + 1);
  CollectingSink sink;
  JoinStringWindows(x, x, {0, n}, {0, n}, options, 0, 4, &sink, nullptr);
  CollectingSink ref_sink;
  ReferenceStringJoin(x, x, L, 0, true, &ref_sink);
  EXPECT_EQ(SortedPairs(sink), SortedPairs(ref_sink));
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(StringWindowJoinTest, EmptyRangesProduceNothing) {
  Rng rng(17);
  const auto x = RandomString(&rng, 40, 4);
  WindowJoinOptions options;
  options.window_len = 8;
  CollectingSink sink;
  JoinStringWindows(x, x, {0, 0}, {0, 10}, options, 2, 4, &sink, nullptr);
  EXPECT_TRUE(sink.pairs().empty());
}

}  // namespace
}  // namespace pmjoin
