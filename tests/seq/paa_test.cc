#include "seq/paa.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/distance.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::RandomSeries;

TEST(PaaTest, SegmentMeans) {
  const std::vector<float> w{1.0f, 3.0f, 5.0f, 7.0f};
  const std::vector<float> paa = Paa(w, 2);
  ASSERT_EQ(paa.size(), 2u);
  EXPECT_FLOAT_EQ(paa[0], 2.0f);
  EXPECT_FLOAT_EQ(paa[1], 6.0f);
}

TEST(PaaTest, FullResolutionIsIdentity) {
  Rng rng(3);
  const auto w = RandomSeries(&rng, 16);
  const std::vector<float> paa = Paa(w, 16);
  for (size_t i = 0; i < w.size(); ++i) EXPECT_FLOAT_EQ(paa[i], w[i]);
}

TEST(PaaTest, SingleSegmentIsMean) {
  const std::vector<float> w{2.0f, 4.0f, 6.0f, 8.0f};
  const std::vector<float> paa = Paa(w, 1);
  EXPECT_FLOAT_EQ(paa[0], 5.0f);
}

TEST(PaaTest, ScaleFactor) {
  EXPECT_DOUBLE_EQ(PaaScale(16, 4), 2.0);
  EXPECT_DOUBLE_EQ(PaaScale(8, 8), 1.0);
}

class PaaContractionTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(PaaContractionTest, LowerBoundsTrueDistance) {
  // The MR-index contract: sqrt(L/f)·||PAA(x)−PAA(y)||₂ <= ||x−y||₂.
  // This makes PAA-MBR MINDIST a valid page-level predictor (Theorem 1
  // for time-series pages).
  const auto [L, f] = GetParam();
  Rng rng(11 + L + f);
  for (int trial = 0; trial < 200; ++trial) {
    const auto x = RandomSeries(&rng, L);
    const auto y = RandomSeries(&rng, L);
    const auto px = Paa(x, f);
    const auto py = Paa(y, f);
    const double feature = VectorDistance(px, py, Norm::kL2);
    const double raw = VectorDistance(x, y, Norm::kL2);
    EXPECT_LE(PaaScale(L, f) * feature, raw + 1e-5)
        << "L=" << L << " f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PaaContractionTest,
    ::testing::Values(std::make_pair<size_t, size_t>(8, 2),
                      std::make_pair<size_t, size_t>(16, 4),
                      std::make_pair<size_t, size_t>(32, 8),
                      std::make_pair<size_t, size_t>(64, 8),
                      std::make_pair<size_t, size_t>(32, 32)));

TEST(PaaTest, ContractionTightForConstantShift) {
  // x and y differing by a constant: PAA preserves the full distance.
  const size_t L = 16, f = 4;
  std::vector<float> x(L, 1.0f), y(L, 3.0f);
  const double feature = VectorDistance(Paa(x, f), Paa(y, f), Norm::kL2);
  const double raw = VectorDistance(x, y, Norm::kL2);
  EXPECT_NEAR(PaaScale(L, f) * feature, raw, 1e-5);
}

TEST(SlidingL2TrackerTest, MatchesRecomputation) {
  Rng rng(17);
  const auto x = RandomSeries(&rng, 120);
  const auto y = RandomSeries(&rng, 120);
  const size_t L = 16;
  SlidingL2Tracker tracker(std::span<const float>(x).subspan(0, L),
                           std::span<const float>(y).subspan(0, L));
  for (size_t t = 0;; ++t) {
    double expected = 0.0;
    for (size_t i = 0; i < L; ++i) {
      const double d = double(x[t + i]) - y[t + i];
      expected += d * d;
    }
    EXPECT_NEAR(tracker.SquaredDistance(), expected, 1e-6) << "t=" << t;
    if (t + L + 1 > x.size()) break;
    tracker.Slide(x[t], x[t + L], y[t], y[t + L]);
  }
}

TEST(SlidingL2TrackerTest, IdenticalWindowsZero) {
  Rng rng(19);
  const auto x = RandomSeries(&rng, 60);
  const size_t L = 8;
  SlidingL2Tracker tracker(std::span<const float>(x).subspan(0, L),
                           std::span<const float>(x).subspan(0, L));
  for (size_t t = 0; t + L + 1 <= x.size(); ++t) {
    tracker.Slide(x[t], x[t + L], x[t], x[t + L]);
    EXPECT_NEAR(tracker.SquaredDistance(), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace pmjoin
