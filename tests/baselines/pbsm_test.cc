#include "baselines/pbsm.h"

#include <gtest/gtest.h>

#include "core/reference_join.h"
#include "data/generators.h"
#include "io/simulated_disk.h"
#include "join_test_util.h"

namespace pmjoin {
namespace {

using testing_util::SmallVectorJoin;

TEST(PbsmTest, MatchesReferenceJoin) {
  SmallVectorJoin fixture(250, 200, 3, 0.06);
  BufferPool pool(&fixture.disk(), 16);
  CollectingSink sink;
  ASSERT_TRUE(PbsmJoinVectors(fixture.r(), fixture.s(), false,
                              fixture.eps(), fixture.norm(),
                              &fixture.disk(), &pool, &sink, nullptr)
                  .ok());
  EXPECT_EQ(sink.Sorted(), fixture.Expected());
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(PbsmTest, NoDuplicateEmissions) {
  // Replication must be compensated exactly once per result pair.
  SmallVectorJoin fixture(300, 300, 5, 0.08);
  BufferPool pool(&fixture.disk(), 8);
  CollectingSink sink;
  ASSERT_TRUE(PbsmJoinVectors(fixture.r(), fixture.s(), false,
                              fixture.eps(), fixture.norm(),
                              &fixture.disk(), &pool, &sink, nullptr)
                  .ok());
  EXPECT_EQ(sink.pairs().size(), sink.Sorted().size());
}

TEST(PbsmTest, SelfJoinMatchesReference) {
  SimulatedDisk disk;
  const VectorData data = GenRoadNetwork(250, 7);
  VectorDataset::Options options;
  options.page_size_bytes = 64;
  auto ds = VectorDataset::Build(&disk, "r", data, options);
  ASSERT_TRUE(ds.ok());
  BufferPool pool(&disk, 16);
  CollectingSink sink;
  ASSERT_TRUE(PbsmJoinVectors(*ds, *ds, true, 0.05, Norm::kL2, &disk,
                              &pool, &sink, nullptr)
                  .ok());
  CollectingSink ref;
  ReferenceVectorJoin(data, data, 0.05, Norm::kL2, true, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(PbsmTest, OtherNorms) {
  for (Norm norm : {Norm::kL1, Norm::kLInf}) {
    SmallVectorJoin fixture(150, 150, 11, 0.05, 64, norm);
    BufferPool pool(&fixture.disk(), 16);
    CollectingSink sink;
    ASSERT_TRUE(PbsmJoinVectors(fixture.r(), fixture.s(), false,
                                fixture.eps(), norm, &fixture.disk(),
                                &pool, &sink, nullptr)
                    .ok());
    EXPECT_EQ(sink.Sorted(), fixture.Expected());
  }
}

TEST(PbsmTest, ChargesPartitionIo) {
  SmallVectorJoin fixture(300, 250, 13, 0.05);
  BufferPool pool(&fixture.disk(), 8);
  CountingSink sink;
  const IoStats before = fixture.disk().stats();
  ASSERT_TRUE(PbsmJoinVectors(fixture.r(), fixture.s(), false,
                              fixture.eps(), fixture.norm(),
                              &fixture.disk(), &pool, &sink, nullptr)
                  .ok());
  const IoStats delta = fixture.disk().stats().Delta(before);
  EXPECT_GT(delta.pages_written, 0u);  // Partition files.
  // Both inputs scanned plus partitions read back.
  EXPECT_GT(delta.pages_read,
            uint64_t(fixture.input().r_pages) + fixture.input().s_pages);
}

TEST(PbsmTest, ExplicitPartitionCounts) {
  SmallVectorJoin fixture(200, 200, 17, 0.06);
  const auto expected = fixture.Expected();
  for (uint32_t partitions : {1u, 3u, 9u, 50u}) {
    BufferPool pool(&fixture.disk(), 16);
    CollectingSink sink;
    PbsmOptions options;
    options.partitions = partitions;
    ASSERT_TRUE(PbsmJoinVectors(fixture.r(), fixture.s(), false,
                                fixture.eps(), fixture.norm(),
                                &fixture.disk(), &pool, &sink, nullptr,
                                options)
                    .ok());
    EXPECT_EQ(sink.Sorted(), expected) << "partitions=" << partitions;
  }
}

TEST(PbsmTest, GridResolutions) {
  SmallVectorJoin fixture(200, 200, 19, 0.07);
  const auto expected = fixture.Expected();
  for (uint32_t grid : {1u, 4u, 16u, 64u}) {
    BufferPool pool(&fixture.disk(), 16);
    CollectingSink sink;
    PbsmOptions options;
    options.grid = grid;
    ASSERT_TRUE(PbsmJoinVectors(fixture.r(), fixture.s(), false,
                                fixture.eps(), fixture.norm(),
                                &fixture.disk(), &pool, &sink, nullptr,
                                options)
                    .ok());
    EXPECT_EQ(sink.Sorted(), expected) << "grid=" << grid;
  }
}

}  // namespace
}  // namespace pmjoin
