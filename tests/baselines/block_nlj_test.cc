#include "baselines/block_nlj.h"

#include <gtest/gtest.h>

#include "join_test_util.h"

namespace pmjoin {
namespace {

using testing_util::SmallVectorJoin;

TEST(BlockNljTest, MatchesReferenceJoin) {
  SmallVectorJoin fixture(250, 200, 3, 0.06);
  BufferPool pool(&fixture.disk(), 8);
  CollectingSink sink;
  ASSERT_TRUE(BlockNlj(fixture.input(), &pool, &sink, nullptr, nullptr)
                  .ok());
  EXPECT_EQ(sink.Sorted(), fixture.Expected());
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(BlockNljTest, OracleDoesNotChangeResultsOrCounters) {
  // The DESIGN.md "simulation shortcut": with the matrix as oracle, NLJ
  // must produce exactly the same results and exactly the same CPU
  // counters (ChargeScanned == real scan of a resultless pair).
  SmallVectorJoin fixture(200, 200, 5, 0.04);

  BufferPool pool_a(&fixture.disk(), 8);
  CollectingSink sink_a;
  OpCounters ops_a;
  ASSERT_TRUE(
      BlockNlj(fixture.input(), &pool_a, &sink_a, &ops_a, nullptr).ok());

  BufferPool pool_b(&fixture.disk(), 8);
  CollectingSink sink_b;
  OpCounters ops_b;
  ASSERT_TRUE(BlockNlj(fixture.input(), &pool_b, &sink_b, &ops_b,
                       &fixture.matrix())
                  .ok());

  EXPECT_EQ(sink_a.Sorted(), sink_b.Sorted());
  EXPECT_EQ(ops_a.distance_terms, ops_b.distance_terms);
  EXPECT_EQ(ops_a.result_pairs, ops_b.result_pairs);
}

TEST(BlockNljTest, IoCountIndependentOfSelectivity) {
  // NLJ reads the full cross product regardless of the predicate.
  SmallVectorJoin tight(150, 150, 7, 0.001);
  SmallVectorJoin loose(150, 150, 7, 0.5);
  for (SmallVectorJoin* fixture : {&tight, &loose}) {
    BufferPool pool(&fixture->disk(), 6);
    CountingSink sink;
    const IoStats before = fixture->disk().stats();
    ASSERT_TRUE(BlockNlj(fixture->input(), &pool, &sink, nullptr,
                         &fixture->matrix())
                    .ok());
    const IoStats delta = fixture->disk().stats().Delta(before);
    // Blocks of B−2 = 4 R pages; S scanned once per block.
    const uint32_t r_pages = fixture->input().r_pages;
    const uint32_t s_pages = fixture->input().s_pages;
    const uint32_t blocks = (r_pages + 3) / 4;
    EXPECT_EQ(delta.pages_read,
              uint64_t(r_pages) + uint64_t(blocks) * s_pages);
  }
}

TEST(BlockNljTest, LargerBufferReadsFewerPages) {
  SmallVectorJoin fixture(300, 300, 9, 0.05);
  uint64_t previous = UINT64_MAX;
  for (uint32_t buffer : {4, 8, 16, 32}) {
    BufferPool pool(&fixture.disk(), buffer);
    CountingSink sink;
    const IoStats before = fixture.disk().stats();
    ASSERT_TRUE(BlockNlj(fixture.input(), &pool, &sink, nullptr,
                         &fixture.matrix())
                    .ok());
    const uint64_t reads = fixture.disk().stats().Delta(before).pages_read;
    EXPECT_LE(reads, previous);
    previous = reads;
  }
}

TEST(BlockNljTest, TinyBufferWorks) {
  SmallVectorJoin fixture(60, 60, 11, 0.1);
  BufferPool pool(&fixture.disk(), 2);
  CollectingSink sink;
  ASSERT_TRUE(BlockNlj(fixture.input(), &pool, &sink, nullptr,
                       &fixture.matrix())
                  .ok());
  EXPECT_EQ(sink.Sorted(), fixture.Expected());
}

}  // namespace
}  // namespace pmjoin
