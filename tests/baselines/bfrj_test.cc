#include "baselines/bfrj.h"

#include <gtest/gtest.h>

#include "io/simulated_disk.h"
#include "join_test_util.h"

namespace pmjoin {
namespace {

using testing_util::SmallVectorJoin;

TEST(BfrjTest, MatchesReferenceJoin) {
  SmallVectorJoin fixture(250, 200, 3, 0.06);
  BufferPool pool(&fixture.disk(), 16);
  CollectingSink sink;
  ASSERT_TRUE(BfrjJoin(fixture.r().tree(), fixture.s().tree(),
                       fixture.input(), fixture.eps(), fixture.norm(),
                       /*page_size_bytes=*/64, &fixture.disk(), &pool,
                       &sink, nullptr)
                  .ok());
  EXPECT_EQ(sink.Sorted(), fixture.Expected());
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(BfrjTest, RequiresAttachedNodeFiles) {
  SmallVectorJoin fixture(50, 50, 5, 0.05);
  RStarTree detached(2);  // No node file.
  BufferPool pool(&fixture.disk(), 8);
  CountingSink sink;
  EXPECT_FALSE(BfrjJoin(detached, fixture.s().tree(), fixture.input(), 0.05,
                        Norm::kL2, 64, &fixture.disk(), &pool, &sink,
                        nullptr)
                   .ok());
}

TEST(BfrjTest, ChargesNodeIo) {
  SmallVectorJoin fixture(300, 300, 7, 0.04);
  BufferPool pool(&fixture.disk(), 16);
  CountingSink sink;
  const IoStats before = fixture.disk().stats();
  ASSERT_TRUE(BfrjJoin(fixture.r().tree(), fixture.s().tree(),
                       fixture.input(), fixture.eps(), fixture.norm(), 64,
                       &fixture.disk(), &pool, &sink, nullptr)
                  .ok());
  const IoStats delta = fixture.disk().stats().Delta(before);
  // Node pages of both trees are read in addition to data pages.
  EXPECT_GT(delta.pages_read,
            uint64_t(fixture.matrix().MarkedRowCount()));
}

TEST(BfrjTest, DisjointDatasetsReadNothing) {
  // Two far-apart box sets: the root test prunes everything.
  SimulatedDisk disk;
  std::vector<RStarTree::Entry> left, right;
  for (uint32_t i = 0; i < 50; ++i) {
    const float x = i * 0.01f;
    left.push_back(RStarTree::Entry{
        Mbr::FromBounds({x, 0.0f}, {x + 0.005f, 0.1f}), i});
    right.push_back(RStarTree::Entry{
        Mbr::FromBounds({x + 100.0f, 0.0f}, {x + 100.005f, 0.1f}), i});
  }
  RStarTree rt = RStarTree::BulkLoadStr(2, left);
  RStarTree st = RStarTree::BulkLoadStr(2, right);
  rt.AttachFile(&disk, "rt");
  st.AttachFile(&disk, "st");

  class NullJoiner : public PagePairJoiner {
   public:
    void JoinPages(uint32_t, uint32_t, PairSink*, OpCounters*) override {}
    void ChargeScanned(uint32_t, uint32_t, OpCounters*) const override {}
  };
  NullJoiner joiner;
  JoinInput input;
  input.r_file = disk.CreateFile("r", 50);
  input.s_file = disk.CreateFile("s", 50);
  input.r_pages = 50;
  input.s_pages = 50;
  input.joiner = &joiner;

  BufferPool pool(&disk, 8);
  CountingSink sink;
  ASSERT_TRUE(BfrjJoin(rt, st, input, 0.01, Norm::kL2, 64, &disk, &pool,
                       &sink, nullptr)
                  .ok());
  EXPECT_EQ(disk.stats().pages_read, 0u);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(BfrjTest, PeakIntermediateGrowsWithSelectivity) {
  SmallVectorJoin fixture(400, 400, 9, 0.02);
  const uint64_t tight = BfrjPeakIntermediatePages(
      fixture.r().tree(), fixture.s().tree(), 0.002, Norm::kL2, 64);
  const uint64_t loose = BfrjPeakIntermediatePages(
      fixture.r().tree(), fixture.s().tree(), 0.2, Norm::kL2, 64);
  EXPECT_LE(tight, loose);
  EXPECT_GT(loose, 0u);
}

TEST(BfrjTest, SmallBufferSpillsIntermediates) {
  SmallVectorJoin fixture(400, 400, 11, 0.1);
  // Buffer of 2 pages: the candidate-pair list cannot stay in memory.
  BufferPool pool(&fixture.disk(), 2);
  CollectingSink sink;
  const IoStats before = fixture.disk().stats();
  ASSERT_TRUE(BfrjJoin(fixture.r().tree(), fixture.s().tree(),
                       fixture.input(), fixture.eps(), fixture.norm(), 64,
                       &fixture.disk(), &pool, &sink, nullptr)
                  .ok());
  const IoStats delta = fixture.disk().stats().Delta(before);
  EXPECT_GT(delta.pages_written, 0u);  // Spilled.
  EXPECT_EQ(sink.Sorted(), fixture.Expected());  // Still correct.
}

}  // namespace
}  // namespace pmjoin
