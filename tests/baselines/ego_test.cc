#include "baselines/ego.h"

#include <gtest/gtest.h>

#include "core/reference_join.h"
#include "data/generators.h"
#include "io/simulated_disk.h"
#include "join_test_util.h"

namespace pmjoin {
namespace {

using testing_util::SmallVectorJoin;

TEST(EgoVectorTest, MatchesReferenceJoin) {
  SmallVectorJoin fixture(250, 200, 3, 0.06);
  BufferPool pool(&fixture.disk(), 16);
  CollectingSink sink;
  ASSERT_TRUE(EgoJoinVectors(fixture.r(), fixture.s(), false, fixture.eps(),
                             fixture.norm(), &fixture.disk(), &pool, &sink,
                             nullptr)
                  .ok());
  EXPECT_EQ(sink.Sorted(), fixture.Expected());
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(EgoVectorTest, SelfJoinMatchesReference) {
  SimulatedDisk disk;
  const VectorData data = GenRoadNetwork(200, 7);
  VectorDataset::Options options;
  options.page_size_bytes = 64;
  auto ds = VectorDataset::Build(&disk, "r", data, options);
  ASSERT_TRUE(ds.ok());

  BufferPool pool(&disk, 16);
  CollectingSink sink;
  ASSERT_TRUE(EgoJoinVectors(*ds, *ds, true, 0.05, Norm::kL2, &disk, &pool,
                             &sink, nullptr)
                  .ok());
  CollectingSink ref;
  ReferenceVectorJoin(data, data, 0.05, Norm::kL2, true, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(EgoVectorTest, L1AndLInfNorms) {
  for (Norm norm : {Norm::kL1, Norm::kLInf}) {
    SmallVectorJoin fixture(150, 150, 11, 0.05, 64, norm);
    BufferPool pool(&fixture.disk(), 16);
    CollectingSink sink;
    ASSERT_TRUE(EgoJoinVectors(fixture.r(), fixture.s(), false,
                               fixture.eps(), norm, &fixture.disk(), &pool,
                               &sink, nullptr)
                    .ok());
    EXPECT_EQ(sink.Sorted(), fixture.Expected());
  }
}

TEST(EgoVectorTest, ChargesSortIo) {
  SmallVectorJoin fixture(300, 300, 13, 0.03);
  BufferPool pool(&fixture.disk(), 8);
  CountingSink sink;
  const IoStats before = fixture.disk().stats();
  ASSERT_TRUE(EgoJoinVectors(fixture.r(), fixture.s(), false, fixture.eps(),
                             fixture.norm(), &fixture.disk(), &pool, &sink,
                             nullptr)
                  .ok());
  const IoStats delta = fixture.disk().stats().Delta(before);
  // External sorting writes at least one full copy of both datasets.
  EXPECT_GT(delta.pages_written, 0u);
  EXPECT_GT(delta.pages_read,
            uint64_t(fixture.input().r_pages) + fixture.input().s_pages);
}

TEST(EgoTimeSeriesTest, MatchesReference) {
  SimulatedDisk disk;
  const std::vector<float> x = GenRandomWalk(400, 17);
  const std::vector<float> y = GenRandomWalk(350, 18);
  const uint32_t L = 16, f = 4;
  auto xs = TimeSeriesStore::Build(&disk, "x", x, L, f, 60 * sizeof(float));
  auto ys = TimeSeriesStore::Build(&disk, "y", y, L, f, 60 * sizeof(float));
  ASSERT_TRUE(xs.ok());
  ASSERT_TRUE(ys.ok());

  const double eps = 2.0;
  BufferPool pool(&disk, 16);
  CollectingSink sink;
  ASSERT_TRUE(EgoJoinTimeSeries(*xs, *ys, false, eps, &disk, &pool, &sink,
                                nullptr)
                  .ok());
  CollectingSink ref;
  ReferenceTimeSeriesJoin(x, y, L, eps, false, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(EgoTimeSeriesTest, SelfJoinMatchesReference) {
  SimulatedDisk disk;
  const std::vector<float> x = GenRandomWalk(500, 19);
  const uint32_t L = 16, f = 4;
  auto xs = TimeSeriesStore::Build(&disk, "x", x, L, f, 60 * sizeof(float));
  ASSERT_TRUE(xs.ok());
  BufferPool pool(&disk, 16);
  CollectingSink sink;
  ASSERT_TRUE(
      EgoJoinTimeSeries(*xs, *xs, true, 1.0, &disk, &pool, &sink, nullptr)
          .ok());
  CollectingSink ref;
  ReferenceTimeSeriesJoin(x, x, L, 1.0, true, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
}

TEST(EgoStringTest, MatchesReference) {
  SimulatedDisk disk;
  std::vector<uint8_t> a, b;
  GenDnaPair(500, 400, 23, &a, &b, 0.5, 0.01);
  // Plant a homologous chunk so the cross join is non-empty (tiny test
  // sequences occupy single, different composition regimes).
  for (size_t i = 0; i < 60; ++i) b[100 + i] = a[200 + i];
  const uint32_t L = 12, k = 2;
  auto as = StringSequenceStore::Build(&disk, "a", a, 4, L, 64);
  auto bs = StringSequenceStore::Build(&disk, "b", b, 4, L, 64);
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(bs.ok());

  BufferPool pool(&disk, 16);
  CollectingSink sink;
  ASSERT_TRUE(
      EgoJoinStrings(*as, *bs, false, k, &disk, &pool, &sink, nullptr)
          .ok());
  CollectingSink ref;
  ReferenceStringJoin(a, b, L, k, false, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(EgoStringTest, SelfJoinMatchesReference) {
  SimulatedDisk disk;
  const std::vector<uint8_t> a = GenDnaSequence(600, 29, 0.5, 0.01);
  const uint32_t L = 12, k = 1;
  auto as = StringSequenceStore::Build(&disk, "a", a, 4, L, 64);
  ASSERT_TRUE(as.ok());
  BufferPool pool(&disk, 16);
  CollectingSink sink;
  ASSERT_TRUE(
      EgoJoinStrings(*as, *as, true, k, &disk, &pool, &sink, nullptr).ok());
  CollectingSink ref;
  ReferenceStringJoin(a, a, L, k, true, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
}

TEST(EgoSequenceTest, MaterializationCostsExceedVectorEquivalent) {
  // §9.2's observation: EGO on sequences pays for materialized feature
  // files plus random verification reads.
  SimulatedDisk disk;
  const std::vector<uint8_t> a = GenDnaSequence(2000, 31, 0.5, 0.01);
  auto as = StringSequenceStore::Build(&disk, "a", a, 4, 12, 64);
  ASSERT_TRUE(as.ok());
  BufferPool pool(&disk, 8);
  CountingSink sink;
  const IoStats before = disk.stats();
  ASSERT_TRUE(
      EgoJoinStrings(*as, *as, true, 1, &disk, &pool, &sink, nullptr).ok());
  const IoStats delta = disk.stats().Delta(before);
  // Far more I/O than one scan of the store.
  EXPECT_GT(delta.pages_read + delta.pages_written,
            4u * as->layout().NumPages());
}

}  // namespace
}  // namespace pmjoin
