#include <optional>
#include <tuple>

#include <gtest/gtest.h>

#include "core/join_driver.h"
#include "core/reference_join.h"
#include "data/generators.h"
#include "io/simulated_disk.h"
#include "test_util.h"

namespace pmjoin {
namespace {

/// Cross-product sweep: every (page size × buffer size × norm) cell must
/// give exactly the brute-force result for the core techniques. This is
/// the harness that catches layout- and capacity-dependent bugs (short
/// last pages, buffers smaller than a cluster, norm-specific MINDIST).
class VectorSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, Norm>> {
};

TEST_P(VectorSweepTest, CoreTechniquesMatchReference) {
  const auto [page_bytes, buffer, norm] = GetParam();
  SimulatedDisk disk;
  const VectorData r_raw = GenRoadNetwork(220, 5);
  const VectorData s_raw = GenRoadNetwork(180, 6);
  VectorDataset::Options options;
  options.page_size_bytes = page_bytes;
  auto r = VectorDataset::Build(&disk, "r", r_raw, options);
  auto s = VectorDataset::Build(&disk, "s", s_raw, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());

  const double eps = 0.05;
  CollectingSink ref;
  ReferenceVectorJoin(r_raw, s_raw, eps, norm, false, &ref);
  const auto expected = ref.Sorted();

  JoinDriver driver(&disk);
  for (Algorithm algorithm : {Algorithm::kNlj, Algorithm::kPmNlj,
                              Algorithm::kSc, Algorithm::kCc}) {
    JoinOptions jo;
    jo.algorithm = algorithm;
    jo.buffer_pages = buffer;
    jo.page_size_bytes = page_bytes;
    jo.norm = norm;
    jo.shards = testing_util::TestShardCount();
    CollectingSink sink;
    auto report = driver.RunVector(*r, *s, eps, jo, &sink);
    ASSERT_TRUE(report.ok()) << AlgorithmName(algorithm) << ": "
                             << report.status().ToString();
    EXPECT_EQ(sink.Sorted(), expected)
        << AlgorithmName(algorithm) << " page=" << page_bytes
        << " B=" << buffer << " norm=" << NormName(norm);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VectorSweepTest,
    ::testing::Combine(::testing::Values(32u, 64u, 256u),
                       ::testing::Values(3u, 8u, 64u),
                       ::testing::Values(Norm::kL1, Norm::kL2,
                                         Norm::kLInf)),
    [](const ::testing::TestParamInfo<
        std::tuple<uint32_t, uint32_t, Norm>>& info) {
      return "page" + std::to_string(std::get<0>(info.param)) + "_B" +
             std::to_string(std::get<1>(info.param)) + "_" +
             NormName(std::get<2>(info.param));
    });

/// Window-length × buffer sweep for the string subsequence join.
class StringSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(StringSweepTest, CoreTechniquesMatchReference) {
  const auto [window, buffer] = GetParam();
  SimulatedDisk disk;
  std::vector<uint8_t> a = GenDnaSequence(420, 31, 0.5, 0.01);
  // Plant a self-repeat so results exist at every window length.
  for (size_t i = 0; i < 70; ++i) a[300 + i] = a[40 + i];
  auto store = StringSequenceStore::Build(&disk, "a", a, 4, window, 96);
  ASSERT_TRUE(store.ok());

  const uint32_t k = 1;
  CollectingSink ref;
  ReferenceStringJoin(a, a, window, k, true, &ref);
  const auto expected = ref.Sorted();
  ASSERT_FALSE(expected.empty());

  JoinDriver driver(&disk);
  for (Algorithm algorithm : {Algorithm::kNlj, Algorithm::kPmNlj,
                              Algorithm::kSc, Algorithm::kCc}) {
    JoinOptions jo;
    jo.algorithm = algorithm;
    jo.buffer_pages = buffer;
    jo.page_size_bytes = 96;
    CollectingSink sink;
    auto report = driver.RunString(*store, *store, k, jo, &sink);
    ASSERT_TRUE(report.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(sink.Sorted(), expected)
        << AlgorithmName(algorithm) << " L=" << window << " B=" << buffer;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StringSweepTest,
    ::testing::Combine(::testing::Values(8u, 16u, 40u),
                       ::testing::Values(3u, 16u)),
    [](const ::testing::TestParamInfo<std::tuple<uint32_t, uint32_t>>&
           info) {
      // Built with += to sidestep GCC 12's -Wrestrict false positive on
      // operator+(const char*, std::string&&) (GCC PR 105651).
      std::string name = "L";
      name += std::to_string(std::get<0>(info.param));
      name += "_B";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

/// PAA-dims × window sweep for the time-series subsequence join: the
/// feature-space threshold conversion must stay lossless for any (L, f).
class TimeSeriesSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(TimeSeriesSweepTest, CoreTechniquesMatchReference) {
  const auto [window, paa] = GetParam();
  if (window % paa != 0) GTEST_SKIP();
  SimulatedDisk disk;
  const std::vector<float> x = GenRandomWalk(350, 37);
  auto store = TimeSeriesStore::Build(&disk, "x", x, window, paa,
                                      70 * sizeof(float));
  ASSERT_TRUE(store.ok());

  const double eps = 1.0;
  CollectingSink ref;
  ReferenceTimeSeriesJoin(x, x, window, eps, true, &ref);
  const auto expected = ref.Sorted();

  JoinDriver driver(&disk);
  for (Algorithm algorithm : {Algorithm::kNlj, Algorithm::kPmNlj,
                              Algorithm::kSc, Algorithm::kCc}) {
    JoinOptions jo;
    jo.algorithm = algorithm;
    jo.buffer_pages = 10;
    CollectingSink sink;
    auto report = driver.RunTimeSeries(*store, *store, eps, jo, &sink);
    ASSERT_TRUE(report.ok()) << AlgorithmName(algorithm);
    EXPECT_EQ(sink.Sorted(), expected)
        << AlgorithmName(algorithm) << " L=" << window << " f=" << paa;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TimeSeriesSweepTest,
    ::testing::Combine(::testing::Values(8u, 16u, 32u),
                       ::testing::Values(2u, 4u, 8u)),
    [](const ::testing::TestParamInfo<std::tuple<uint32_t, uint32_t>>&
           info) {
      std::string name = "L";
      name += std::to_string(std::get<0>(info.param));
      name += "_f";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

}  // namespace
}  // namespace pmjoin
