#include "core/join_driver.h"

#include <memory>
#include <optional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/reference_join.h"
#include "data/generators.h"
#include "data/sequence_dataset.h"
#include "io/simulated_disk.h"
#include "test_util.h"

namespace pmjoin {
namespace {

const Algorithm kSequenceAlgorithms[] = {
    Algorithm::kNlj, Algorithm::kPmNlj, Algorithm::kRandomSc,
    Algorithm::kSc,  Algorithm::kCc,    Algorithm::kEgo,
    Algorithm::kBfrj,
};

const Algorithm kVectorAlgorithms[] = {
    Algorithm::kNlj, Algorithm::kPmNlj, Algorithm::kRandomSc,
    Algorithm::kSc,  Algorithm::kCc,    Algorithm::kEgo,
    Algorithm::kBfrj, Algorithm::kPbsm,
};

JoinOptions BaseOptions(Algorithm algorithm, uint32_t buffer) {
  JoinOptions options;
  options.algorithm = algorithm;
  options.buffer_pages = buffer;
  options.page_size_bytes = 64;
  // CI's sharded job (PMJOIN_TEST_SHARDS=4) re-runs every reference
  // comparison with the shard coordinator in the loop; results must not
  // change. Engines without clusters ignore the knob.
  options.shards = testing_util::TestShardCount();
  return options;
}

class VectorDriverTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  VectorDriverTest() {
    r_raw_ = GenRoadNetwork(300, 3);
    s_raw_ = GenRoadNetwork(250, 4);
    VectorDataset::Options ds_options;
    ds_options.page_size_bytes = 64;
    r_.emplace(VectorDataset::Build(&disk_, "r", r_raw_, ds_options).value());
    s_.emplace(VectorDataset::Build(&disk_, "s", s_raw_, ds_options).value());
  }

  std::unique_ptr<StorageBackend> disk_holder_ =
      testing_util::MakeTestBackend();
  StorageBackend& disk_ = *disk_holder_;
  VectorData r_raw_, s_raw_;
  std::optional<VectorDataset> r_, s_;
};

TEST_P(VectorDriverTest, CrossJoinMatchesReference) {
  JoinDriver driver(&disk_);
  CollectingSink sink;
  const double eps = 0.05;
  auto report =
      driver.RunVector(*r_, *s_, eps, BaseOptions(GetParam(), 12), &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  CollectingSink ref;
  ReferenceVectorJoin(r_raw_, s_raw_, eps, Norm::kL2, false, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
  EXPECT_GT(sink.pairs().size(), 0u);
  EXPECT_EQ(report->result_pairs, sink.pairs().size());
  EXPECT_GT(report->io.pages_read, 0u);
  EXPECT_GT(report->TotalSeconds(), 0.0);
}

TEST_P(VectorDriverTest, SelfJoinMatchesReference) {
  JoinDriver driver(&disk_);
  CollectingSink sink;
  const double eps = 0.04;
  auto report =
      driver.RunVector(*r_, *r_, eps, BaseOptions(GetParam(), 12), &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  CollectingSink ref;
  ReferenceVectorJoin(r_raw_, r_raw_, eps, Norm::kL2, true, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
  EXPECT_GT(sink.pairs().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, VectorDriverTest,
                         ::testing::ValuesIn(kVectorAlgorithms),
                         [](const ::testing::TestParamInfo<Algorithm>& i) {
                           std::string name = AlgorithmName(i.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

class TimeSeriesDriverTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  TimeSeriesDriverTest() {
    x_ = GenRandomWalk(400, 17);
    y_ = GenRandomWalk(300, 18);
    xs_.emplace(TimeSeriesStore::Build(&disk_, "x", x_, 16, 4,
                                       60 * sizeof(float))
                    .value());
    ys_.emplace(TimeSeriesStore::Build(&disk_, "y", y_, 16, 4,
                                       60 * sizeof(float))
                    .value());
  }

  std::unique_ptr<StorageBackend> disk_holder_ =
      testing_util::MakeTestBackend();
  StorageBackend& disk_ = *disk_holder_;
  std::vector<float> x_, y_;
  std::optional<TimeSeriesStore> xs_, ys_;
};

TEST_P(TimeSeriesDriverTest, CrossJoinMatchesReference) {
  JoinDriver driver(&disk_);
  CollectingSink sink;
  const double eps = 2.0;
  auto report = driver.RunTimeSeries(*xs_, *ys_, eps,
                                     BaseOptions(GetParam(), 12), &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CollectingSink ref;
  ReferenceTimeSeriesJoin(x_, y_, 16, eps, false, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST_P(TimeSeriesDriverTest, SelfJoinMatchesReference) {
  JoinDriver driver(&disk_);
  CollectingSink sink;
  const double eps = 1.0;
  auto report = driver.RunTimeSeries(*xs_, *xs_, eps,
                                     BaseOptions(GetParam(), 12), &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CollectingSink ref;
  ReferenceTimeSeriesJoin(x_, x_, 16, eps, true, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, TimeSeriesDriverTest,
                         ::testing::ValuesIn(kSequenceAlgorithms),
                         [](const ::testing::TestParamInfo<Algorithm>& i) {
                           std::string name = AlgorithmName(i.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

class StringDriverTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  StringDriverTest() {
    GenDnaPair(500, 400, 23, &a_, &b_, 0.5, 0.01);
    // Tiny test sequences land in single (different) composition regimes,
    // so plant explicit homologous segments to make the cross join
    // non-empty: copy two chunks of a into b with one mutation each.
    Rng rng(99);
    for (size_t chunk = 0; chunk < 2; ++chunk) {
      const size_t src = 50 + chunk * 180;
      const size_t dst = 80 + chunk * 150;
      for (size_t i = 0; i < 60; ++i) b_[dst + i] = a_[src + i];
      b_[dst + rng.Uniform(60)] = static_cast<uint8_t>(rng.Uniform(4));
    }
    as_.emplace(
        StringSequenceStore::Build(&disk_, "a", a_, 4, 12, 64).value());
    bs_.emplace(
        StringSequenceStore::Build(&disk_, "b", b_, 4, 12, 64).value());
  }

  std::unique_ptr<StorageBackend> disk_holder_ =
      testing_util::MakeTestBackend();
  StorageBackend& disk_ = *disk_holder_;
  std::vector<uint8_t> a_, b_;
  std::optional<StringSequenceStore> as_, bs_;
};

TEST_P(StringDriverTest, CrossJoinMatchesReference) {
  JoinDriver driver(&disk_);
  CollectingSink sink;
  const uint32_t k = 2;
  auto report =
      driver.RunString(*as_, *bs_, k, BaseOptions(GetParam(), 12), &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CollectingSink ref;
  ReferenceStringJoin(a_, b_, 12, k, false, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST_P(StringDriverTest, SelfJoinMatchesReference) {
  JoinDriver driver(&disk_);
  CollectingSink sink;
  const uint32_t k = 1;
  auto report =
      driver.RunString(*as_, *as_, k, BaseOptions(GetParam(), 12), &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CollectingSink ref;
  ReferenceStringJoin(a_, a_, 12, k, true, &ref);
  EXPECT_EQ(sink.Sorted(), ref.Sorted());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, StringDriverTest,
                         ::testing::ValuesIn(kSequenceAlgorithms),
                         [](const ::testing::TestParamInfo<Algorithm>& i) {
                           std::string name = AlgorithmName(i.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });


TEST(JoinDriverTest, SequenceHierarchicalAndFlatMatricesAgree) {
  SimulatedDisk disk;
  std::vector<uint8_t> a = GenDnaSequence(2500, 91, 0.5, 0.01, 0.05);
  auto store = StringSequenceStore::Build(&disk, "a", a, 4, 12, 64);
  ASSERT_TRUE(store.ok());
  JoinDriver driver(&disk);
  JoinOptions hier = BaseOptions(Algorithm::kSc, 12);
  JoinOptions flat = hier;
  flat.hierarchical_matrix = false;
  CollectingSink hier_sink, flat_sink;
  auto x = driver.RunString(*store, *store, 1, hier, &hier_sink);
  auto y = driver.RunString(*store, *store, 1, flat, &flat_sink);
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(x->marked_entries, y->marked_entries);
  EXPECT_EQ(hier_sink.Sorted(), flat_sink.Sorted());
}

TEST(JoinDriverTest, TimeSeriesHierarchicalAndFlatMatricesAgree) {
  SimulatedDisk disk;
  const std::vector<float> x_vals = GenRandomWalk(600, 93);
  auto store = TimeSeriesStore::Build(&disk, "x", x_vals, 16, 4,
                                      60 * sizeof(float));
  ASSERT_TRUE(store.ok());
  JoinDriver driver(&disk);
  JoinOptions hier = BaseOptions(Algorithm::kSc, 12);
  JoinOptions flat = hier;
  flat.hierarchical_matrix = false;
  CollectingSink hier_sink, flat_sink;
  auto a = driver.RunTimeSeries(*store, *store, 1.0, hier, &hier_sink);
  auto b = driver.RunTimeSeries(*store, *store, 1.0, flat, &flat_sink);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->marked_entries, b->marked_entries);
  EXPECT_EQ(hier_sink.Sorted(), flat_sink.Sorted());
}

TEST(JoinDriverTest, PbsmRejectedForSequenceData) {
  SimulatedDisk disk;
  const std::vector<uint8_t> a = GenDnaSequence(300, 81);
  auto store = StringSequenceStore::Build(&disk, "a", a, 4, 12, 64);
  ASSERT_TRUE(store.ok());
  JoinDriver driver(&disk);
  CountingSink sink;
  auto report = driver.RunString(*store, *store, 1,
                                 BaseOptions(Algorithm::kPbsm, 8), &sink);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsUnimplemented());
}

TEST(JoinDriverTest, AlgorithmNames) {
  EXPECT_EQ(AlgorithmName(Algorithm::kNlj), "NLJ");
  EXPECT_EQ(AlgorithmName(Algorithm::kPmNlj), "pm-NLJ");
  EXPECT_EQ(AlgorithmName(Algorithm::kRandomSc), "rand-SC");
  EXPECT_EQ(AlgorithmName(Algorithm::kSc), "SC");
  EXPECT_EQ(AlgorithmName(Algorithm::kCc), "CC");
  EXPECT_EQ(AlgorithmName(Algorithm::kEgo), "EGO");
  EXPECT_EQ(AlgorithmName(Algorithm::kBfrj), "BFRJ");
  EXPECT_EQ(AlgorithmName(Algorithm::kPbsm), "PBSM");
}

TEST(JoinDriverTest, ScBeatsNljOnModeledCost) {
  // The headline claim at test scale: SC's modeled total is below NLJ's
  // when the data is much larger than the buffer.
  SimulatedDisk disk;
  const VectorData r_raw = GenRoadNetwork(2000, 31);
  const VectorData s_raw = GenRoadNetwork(1500, 32);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = 64;
  auto r = VectorDataset::Build(&disk, "r", r_raw, ds_options);
  auto s = VectorDataset::Build(&disk, "s", s_raw, ds_options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());

  JoinDriver driver(&disk);
  CountingSink nlj_sink, sc_sink;
  auto nlj = driver.RunVector(*r, *s, 0.01,
                              BaseOptions(Algorithm::kNlj, 16), &nlj_sink);
  auto sc = driver.RunVector(*r, *s, 0.01,
                             BaseOptions(Algorithm::kSc, 16), &sc_sink);
  ASSERT_TRUE(nlj.ok());
  ASSERT_TRUE(sc.ok());
  EXPECT_EQ(nlj_sink.count(), sc_sink.count());
  EXPECT_LT(sc->TotalSeconds(), nlj->TotalSeconds());
  EXPECT_LT(sc->io.pages_read, nlj->io.pages_read);
}

TEST(JoinDriverTest, HierarchicalAndFlatMatricesAgree) {
  SimulatedDisk disk;
  const VectorData r_raw = GenRoadNetwork(500, 41);
  const VectorData s_raw = GenRoadNetwork(400, 42);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = 64;
  auto r = VectorDataset::Build(&disk, "r", r_raw, ds_options);
  auto s = VectorDataset::Build(&disk, "s", s_raw, ds_options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());

  JoinDriver driver(&disk);
  JoinOptions hier = BaseOptions(Algorithm::kSc, 12);
  JoinOptions flat = hier;
  flat.hierarchical_matrix = false;
  CollectingSink hier_sink, flat_sink;
  auto a = driver.RunVector(*r, *s, 0.05, hier, &hier_sink);
  auto b = driver.RunVector(*r, *s, 0.05, flat, &flat_sink);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->marked_entries, b->marked_entries);
  EXPECT_EQ(hier_sink.Sorted(), flat_sink.Sorted());
}

TEST(JoinDriverTest, ReportBreakdownConsistent) {
  SimulatedDisk disk;
  const VectorData raw = GenRoadNetwork(300, 51);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = 64;
  auto ds = VectorDataset::Build(&disk, "r", raw, ds_options);
  ASSERT_TRUE(ds.ok());

  JoinDriver driver(&disk);
  CountingSink sink;
  auto report = driver.RunVector(*ds, *ds, 0.05,
                                 BaseOptions(Algorithm::kSc, 10), &sink);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->TotalSeconds(),
              report->io_seconds + report->cpu_join_seconds +
                  report->preprocess_seconds,
              1e-12);
  EXPECT_GT(report->preprocess_seconds, 0.0);  // SC clustering happened.
  EXPECT_GT(report->marked_entries, 0u);
  EXPECT_GT(report->num_clusters, 0u);
  EXPECT_GT(report->matrix_selectivity, 0.0);
}

TEST(JoinDriverTest, NljHasNoPreprocessCost) {
  SimulatedDisk disk;
  const VectorData raw = GenRoadNetwork(200, 61);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = 64;
  auto ds = VectorDataset::Build(&disk, "r", raw, ds_options);
  ASSERT_TRUE(ds.ok());
  JoinDriver driver(&disk);
  CountingSink sink;
  auto report = driver.RunVector(*ds, *ds, 0.05,
                                 BaseOptions(Algorithm::kNlj, 10), &sink);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->preprocess_seconds, 0.0);
  EXPECT_EQ(report->ops.mbr_tests, 0u);  // Oracle build is uncharged.
}

TEST(JoinDriverTest, CcIoAtMostScIoOnSequenceData) {
  // Table 2's qualitative claim: CC (the cost-based lower bound) is no
  // worse than SC on I/O for sequence self joins.
  SimulatedDisk disk;
  DnaStoreParams params;
  params.length = 4000;
  params.seed = 71;
  params.window_len = 12;
  params.page_size_bytes = 64;
  auto store = BuildDnaStore(&disk, "dna", params);
  ASSERT_TRUE(store.ok());

  JoinDriver driver(&disk);
  CountingSink sc_sink, cc_sink;
  auto sc = driver.RunString(*store, *store, 1,
                             BaseOptions(Algorithm::kSc, 16), &sc_sink);
  auto cc = driver.RunString(*store, *store, 1,
                             BaseOptions(Algorithm::kCc, 16), &cc_sink);
  ASSERT_TRUE(sc.ok());
  ASSERT_TRUE(cc.ok());
  EXPECT_EQ(sc_sink.count(), cc_sink.count());
  // Allow slack: CC is a heuristic lower bound, not a guarantee, and at
  // this tiny scale its rectangle growth can lose to SC's column sweep.
  EXPECT_LE(cc->io_seconds, sc->io_seconds * 2.5);
}

}  // namespace
}  // namespace pmjoin
