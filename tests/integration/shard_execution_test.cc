// Sharded execution end-to-end (core/shard_coordinator.h): for every
// shard count the clustered engines and the kNN join must produce pairs,
// merged IoStats, and OpCounters byte-identical to single-node, report an
// exact per-shard ledger (Σ attributed + unattributed == totals), and —
// for the clustered engines — per-shard isolated modeled I/O whose excess
// over the single-node footprint is the plan's replication.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_driver.h"
#include "data/generators.h"
#include "data/sequence_dataset.h"
#include "io/storage_backend.h"
#include "test_util.h"

namespace pmjoin {
namespace {

const uint32_t kShardCounts[] = {1, 2, 4, 8};

JoinOptions BaseOptions(Algorithm algorithm, uint32_t shards) {
  JoinOptions options;
  options.algorithm = algorithm;
  options.buffer_pages = 12;
  options.page_size_bytes = 64;
  options.shards = shards;
  return options;
}

/// The shard ledger must be an exact partition of the report totals:
/// Σ shard_stats[].io + shard_unattributed_io == report.io, field by
/// field, and the same for ops (IoStats/OpCounters operator== is
/// member-wise, so whole-struct equality is the field-by-field check).
void CheckShardLedger(const JoinReport& report) {
  ASSERT_EQ(report.shard_stats.size(), report.shards);
  IoStats io_sum = report.shard_unattributed_io;
  OpCounters ops_sum = report.shard_unattributed_ops;
  uint64_t clusters = 0;
  for (const ShardStats& stats : report.shard_stats) {
    io_sum += stats.io;
    ops_sum += stats.ops;
    clusters += stats.clusters;
  }
  EXPECT_EQ(io_sum, report.io);
  EXPECT_EQ(ops_sum, report.ops);
  EXPECT_GE(report.shard_balance_ratio, 1.0);
  EXPECT_LE(report.shard_cut_weight, report.shard_sharing_weight);
  // Every shard's ownership units are accounted for (the kNN path's units
  // are R pages, not clusters, so only a lower bound holds generally).
  EXPECT_GT(clusters, 0u);
}

class ShardedVectorJoinTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, uint32_t>> {
 protected:
  ShardedVectorJoinTest() {
    r_raw_ = GenRoadNetwork(600, 3);
    s_raw_ = GenRoadNetwork(500, 4);
    VectorDataset::Options ds_options;
    ds_options.page_size_bytes = 64;
    r_.emplace(VectorDataset::Build(&disk_, "r", r_raw_, ds_options).value());
    s_.emplace(VectorDataset::Build(&disk_, "s", s_raw_, ds_options).value());
  }

  std::unique_ptr<StorageBackend> disk_holder_ =
      testing_util::MakeTestBackend();
  StorageBackend& disk_ = *disk_holder_;
  VectorData r_raw_, s_raw_;
  std::optional<VectorDataset> r_, s_;
};

TEST_P(ShardedVectorJoinTest, ByteIdenticalToSingleNode) {
  const auto [algorithm, shards] = GetParam();
  const double eps = 0.05;

  // Single-node baseline on a fresh backend so residual pool state never
  // leaks between the runs being compared.
  auto base_disk = testing_util::MakeTestBackend();
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = 64;
  auto base_r = VectorDataset::Build(base_disk.get(), "r", r_raw_, ds_options);
  auto base_s = VectorDataset::Build(base_disk.get(), "s", s_raw_, ds_options);
  ASSERT_TRUE(base_r.ok());
  ASSERT_TRUE(base_s.ok());
  JoinDriver base_driver(base_disk.get());
  CollectingSink base_sink;
  auto base = base_driver.RunVector(*base_r, *base_s, eps,
                                    BaseOptions(algorithm, 1), &base_sink);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  JoinDriver driver(&disk_);
  CollectingSink sink;
  auto sharded = driver.RunVector(*r_, *s_, eps,
                                  BaseOptions(algorithm, shards), &sink);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  // The answer path is single-node by construction: identical pairs,
  // modeled I/O, and CPU counters at any shard count.
  EXPECT_EQ(sink.Sorted(), base_sink.Sorted());
  EXPECT_EQ(sharded->io, base->io);
  EXPECT_EQ(sharded->ops, base->ops);
  EXPECT_EQ(sharded->result_pairs, base->result_pairs);

  if (shards <= 1) {
    EXPECT_EQ(sharded->shards, 1u);
    EXPECT_TRUE(sharded->shard_stats.empty());
    return;
  }
  EXPECT_EQ(sharded->shards, shards);
  CheckShardLedger(*sharded);

  // Each shard's isolated replay reads at least its distinct pages, and
  // the per-shard distinct counts exceed the global one by exactly the
  // replicated pages.
  uint64_t modeled_reads = 0, shard_pages = 0, shard_clusters = 0;
  for (const ShardStats& stats : sharded->shard_stats) {
    EXPECT_GE(stats.modeled_io.pages_read, stats.pages);
    modeled_reads += stats.modeled_io.pages_read;
    shard_pages += stats.pages;
    shard_clusters += stats.clusters;
  }
  EXPECT_EQ(shard_pages,
            sharded->shard_distinct_pages + sharded->shard_replicated_pages);
  EXPECT_EQ(shard_clusters, sharded->num_clusters);
  EXPECT_GE(modeled_reads, sharded->shard_distinct_pages);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesTimesShards, ShardedVectorJoinTest,
    ::testing::Combine(::testing::Values(Algorithm::kSc, Algorithm::kCc),
                       ::testing::ValuesIn(kShardCounts)),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, uint32_t>>& i) {
      return AlgorithmName(std::get<0>(i.param)) + "_shards" +
             std::to_string(std::get<1>(i.param));
    });

class ShardedKnnJoinTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShardedKnnJoinTest, ByteIdenticalToSingleNode) {
  const uint32_t shards = GetParam();
  const VectorData r_raw = GenRoadNetwork(400, 5);
  const VectorData s_raw = GenRoadNetwork(350, 6);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = 64;

  auto run = [&](uint32_t num_shards, CollectingSink* sink) {
    auto disk = testing_util::MakeTestBackend();
    auto r = VectorDataset::Build(disk.get(), "r", r_raw, ds_options);
    auto s = VectorDataset::Build(disk.get(), "s", s_raw, ds_options);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(s.ok());
    JoinDriver driver(disk.get());
    return driver.RunKnnJoin(*r, *s, 3, BaseOptions(Algorithm::kSc, num_shards),
                             sink);
  };

  CollectingSink base_sink, sink;
  auto base = run(1, &base_sink);
  auto sharded = run(shards, &sink);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  EXPECT_EQ(sink.Sorted(), base_sink.Sorted());
  EXPECT_EQ(sharded->io, base->io);
  EXPECT_EQ(sharded->ops, base->ops);

  if (shards <= 1) {
    EXPECT_EQ(sharded->shards, 1u);
    return;
  }
  EXPECT_EQ(sharded->shards, shards);
  CheckShardLedger(*sharded);
  // kNN expansion is bound-driven, so there is no isolated replay: the
  // modeled view stays zero (documented in core/shard_coordinator.h).
  for (const ShardStats& stats : sharded->shard_stats)
    EXPECT_EQ(stats.modeled_io, IoStats());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedKnnJoinTest,
                         ::testing::ValuesIn(kShardCounts),
                         [](const ::testing::TestParamInfo<uint32_t>& i) {
                           return "shards" + std::to_string(i.param);
                         });

TEST(ShardedSequenceJoinTest, StringJoinByteIdenticalAndLedgerExact) {
  const std::vector<uint8_t> a = GenDnaSequence(2500, 91, 0.5, 0.01, 0.05);

  auto run = [&](uint32_t num_shards, CollectingSink* sink) {
    auto disk = testing_util::MakeTestBackend();
    auto store = StringSequenceStore::Build(disk.get(), "a", a, 4, 12, 64);
    EXPECT_TRUE(store.ok());
    JoinDriver driver(disk.get());
    return driver.RunString(*store, *store, 1,
                            BaseOptions(Algorithm::kSc, num_shards), sink);
  };

  CollectingSink base_sink, sink;
  auto base = run(1, &base_sink);
  auto sharded = run(4, &sink);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  EXPECT_EQ(sink.Sorted(), base_sink.Sorted());
  EXPECT_EQ(sharded->io, base->io);
  EXPECT_EQ(sharded->ops, base->ops);
  EXPECT_EQ(sharded->shards, 4u);
  CheckShardLedger(*sharded);
}

TEST(ShardedExecutionTest, NonClusteredEnginesIgnoreShards) {
  // NLJ has no clusters to shard; --shards must be inert, not an error.
  auto disk = testing_util::MakeTestBackend();
  const VectorData raw = GenRoadNetwork(200, 61);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = 64;
  auto ds = VectorDataset::Build(disk.get(), "r", raw, ds_options);
  ASSERT_TRUE(ds.ok());
  JoinDriver driver(disk.get());
  CountingSink sink;
  auto report = driver.RunVector(*ds, *ds, 0.05,
                                 BaseOptions(Algorithm::kNlj, 4), &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->shards, 1u);
  EXPECT_TRUE(report->shard_stats.empty());
}

TEST(ShardedExecutionTest, ShardedRunsAreDeterministic) {
  // Same inputs, same shard count → identical plans and per-shard stats
  // (workers only parallelize the replays; merge order is shard order).
  const VectorData raw = GenRoadNetwork(500, 71);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = 64;

  auto run = [&](CollectingSink* sink) {
    auto disk = testing_util::MakeTestBackend();
    auto ds = VectorDataset::Build(disk.get(), "r", raw, ds_options);
    EXPECT_TRUE(ds.ok());
    JoinDriver driver(disk.get());
    JoinOptions options = BaseOptions(Algorithm::kSc, 4);
    options.num_threads = 3;  // Replays fan out on the worker pool.
    return driver.RunVector(*ds, *ds, 0.04, options, sink);
  };

  CollectingSink sink_a, sink_b;
  auto a = run(&sink_a);
  auto b = run(&sink_b);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(sink_a.Sorted(), sink_b.Sorted());
  EXPECT_EQ(a->shard_cut_weight, b->shard_cut_weight);
  EXPECT_EQ(a->shard_replicated_pages, b->shard_replicated_pages);
  ASSERT_EQ(a->shard_stats.size(), b->shard_stats.size());
  for (size_t s = 0; s < a->shard_stats.size(); ++s) {
    EXPECT_EQ(a->shard_stats[s].io, b->shard_stats[s].io);
    EXPECT_EQ(a->shard_stats[s].ops, b->shard_stats[s].ops);
    EXPECT_EQ(a->shard_stats[s].modeled_io, b->shard_stats[s].modeled_io);
  }
  CheckShardLedger(*a);
}

TEST(ShardedExecutionTest, EnvShardCountAppliesCleanly) {
  // The PMJOIN_TEST_SHARDS hook other suites consume: whatever count it
  // selects must keep the identity and ledger invariants.
  const uint32_t shards = testing_util::TestShardCount();
  auto disk = testing_util::MakeTestBackend();
  const VectorData raw = GenRoadNetwork(300, 81);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = 64;
  auto ds = VectorDataset::Build(disk.get(), "r", raw, ds_options);
  ASSERT_TRUE(ds.ok());
  JoinDriver driver(disk.get());
  CollectingSink sink;
  auto report = driver.RunVector(*ds, *ds, 0.05,
                                 BaseOptions(Algorithm::kSc, shards), &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  if (shards > 1) CheckShardLedger(*report);
}

}  // namespace
}  // namespace pmjoin
