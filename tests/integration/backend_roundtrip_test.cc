// Round-trip determinism across storage backends (PR-5 tentpole): a join
// must produce byte-identical result pairs, OpCounters, and modeled
// IoStats whether the datasets were freshly built or persisted and
// reopened, whether the backend is simulated or file-backed, and whether
// the executor runs on 1 or 8 threads.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/join_driver.h"
#include "data/generators.h"
#include "io/file_backend.h"
#include "io/simulated_disk.h"
#include "test_util.h"

namespace pmjoin {
namespace {

constexpr uint32_t kPageBytes = 64;
constexpr Algorithm kAlgorithms[] = {Algorithm::kSc, Algorithm::kCc};
constexpr uint32_t kThreadCounts[] = {1, 8};

/// One join execution, reduced to everything the determinism matrix
/// compares.
struct RunResult {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  OpCounters ops;
  IoStats io;

  bool operator==(const RunResult& other) const = default;
};

JoinOptions MakeOptions(Algorithm algorithm, uint32_t threads) {
  JoinOptions options;
  options.algorithm = algorithm;
  options.buffer_pages = 12;
  options.page_size_bytes = kPageBytes;
  options.num_threads = threads;
  return options;
}

std::string ScratchDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "pmjoin-roundtrip-" +
                          std::to_string(::getpid()) + "-" + tag;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

std::unique_ptr<FileBackend> OpenFileBackend(const std::string& dir) {
  FileBackend::Options options;
  options.page_size_bytes = kPageBytes * 4;
  auto opened = FileBackend::Open(dir, options);
  PMJOIN_CHECK(opened.ok(), opened.status().ToString().c_str());
  return std::move(opened).value();
}

template <typename RunFn>
RunResult RunJoin(StorageBackend* disk, RunFn&& run) {
  JoinDriver driver(disk);
  CollectingSink sink;
  auto report = run(&driver, &sink);
  PMJOIN_CHECK(report.ok(), report.status().ToString().c_str());
  return RunResult{sink.Sorted(), report->ops, report->io};
}

/// The full SC/CC x threads sweep for a vector dataset pair.
std::vector<RunResult> VectorSweep(StorageBackend* disk,
                                   const VectorDataset& r,
                                   const VectorDataset& s) {
  std::vector<RunResult> results;
  for (const Algorithm algorithm : kAlgorithms) {
    for (const uint32_t threads : kThreadCounts) {
      results.push_back(RunJoin(disk, [&](JoinDriver* d, PairSink* sink) {
        return d->RunVector(r, s, /*eps=*/0.05,
                            MakeOptions(algorithm, threads), sink);
      }));
    }
  }
  return results;
}

TEST(BackendRoundTripTest, VectorFileBackendSurvivesReopen) {
  const std::string dir = ScratchDir("vector");
  const VectorData r_raw = GenRoadNetwork(300, 3);
  const VectorData s_raw = GenRoadNetwork(250, 4);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = kPageBytes;

  std::vector<RunResult> fresh;
  {
    auto backend = OpenFileBackend(dir);
    auto r = VectorDataset::Build(backend.get(), "r", r_raw, ds_options)
                 .value();
    auto s = VectorDataset::Build(backend.get(), "s", s_raw, ds_options)
                 .value();
    fresh = VectorSweep(backend.get(), r, s);
    ASSERT_TRUE(r.Persist(backend.get()).ok());
    ASSERT_TRUE(s.Persist(backend.get()).ok());
  }

  // A fresh backend instance over the same directory: the reopened
  // datasets must reproduce every run of the sweep byte for byte.
  auto backend = OpenFileBackend(dir);
  auto r = VectorDataset::Open(backend.get(), "r").value();
  auto s = VectorDataset::Open(backend.get(), "s").value();
  EXPECT_EQ(r.num_records(), r_raw.count());
  EXPECT_EQ(s.num_records(), s_raw.count());
  const std::vector<RunResult> reopened = VectorSweep(backend.get(), r, s);

  ASSERT_EQ(fresh.size(), reopened.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_GT(fresh[i].pairs.size(), 0u) << "run " << i;
    EXPECT_EQ(fresh[i], reopened[i]) << "run " << i;
  }
}

TEST(BackendRoundTripTest, VectorSimAndFileBackendsAgree) {
  const VectorData r_raw = GenRoadNetwork(300, 3);
  const VectorData s_raw = GenRoadNetwork(250, 4);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = kPageBytes;

  SimulatedDisk sim(DiskModel(), kPageBytes * 4);
  auto r_sim = VectorDataset::Build(&sim, "r", r_raw, ds_options).value();
  auto s_sim = VectorDataset::Build(&sim, "s", s_raw, ds_options).value();
  const std::vector<RunResult> on_sim = VectorSweep(&sim, r_sim, s_sim);

  auto file = OpenFileBackend(ScratchDir("simvsfile"));
  auto r_file =
      VectorDataset::Build(file.get(), "r", r_raw, ds_options).value();
  auto s_file =
      VectorDataset::Build(file.get(), "s", s_raw, ds_options).value();
  const std::vector<RunResult> on_file = VectorSweep(file.get(), r_file,
                                                     s_file);

  ASSERT_EQ(on_sim.size(), on_file.size());
  for (size_t i = 0; i < on_sim.size(); ++i)
    EXPECT_EQ(on_sim[i], on_file[i]) << "run " << i;
  // The file backend really did the work physically.
  EXPECT_GT(file->measured().read_syscalls, 0u);
  EXPECT_GT(file->measured().checksum_checks, 0u);
  EXPECT_EQ(sim.measured().read_syscalls, 0u);
}

TEST(BackendRoundTripTest, StringStoreSurvivesReopen) {
  const std::string dir = ScratchDir("string");
  std::vector<uint8_t> a, b;
  GenDnaPair(500, 400, 23, &a, &b, 0.5, 0.01);
  // Plant homologous segments so the cross join is non-empty (see
  // join_driver_test.cc for the rationale).
  Rng rng(99);
  for (size_t chunk = 0; chunk < 2; ++chunk) {
    const size_t src = 50 + chunk * 180;
    const size_t dst = 80 + chunk * 150;
    for (size_t i = 0; i < 60; ++i) b[dst + i] = a[src + i];
    b[dst + rng.Uniform(60)] = static_cast<uint8_t>(rng.Uniform(4));
  }

  const auto sweep = [](StorageBackend* disk, const StringSequenceStore& as,
                        const StringSequenceStore& bs) {
    std::vector<RunResult> results;
    for (const Algorithm algorithm : kAlgorithms) {
      for (const uint32_t threads : kThreadCounts) {
        results.push_back(RunJoin(disk, [&](JoinDriver* d, PairSink* sink) {
          return d->RunString(as, bs, /*max_edits=*/5,
                              MakeOptions(algorithm, threads), sink);
        }));
      }
    }
    return results;
  };

  std::vector<RunResult> fresh;
  {
    auto backend = OpenFileBackend(dir);
    auto as =
        StringSequenceStore::Build(backend.get(), "a", a, 4, 12, kPageBytes)
            .value();
    auto bs =
        StringSequenceStore::Build(backend.get(), "b", b, 4, 12, kPageBytes)
            .value();
    fresh = sweep(backend.get(), as, bs);
    ASSERT_TRUE(as.Persist(backend.get()).ok());
    ASSERT_TRUE(bs.Persist(backend.get()).ok());
  }

  auto backend = OpenFileBackend(dir);
  auto as = StringSequenceStore::Open(backend.get(), "a").value();
  auto bs = StringSequenceStore::Open(backend.get(), "b").value();
  EXPECT_EQ(as.symbols().size(), a.size());
  const std::vector<RunResult> reopened = sweep(backend.get(), as, bs);

  ASSERT_EQ(fresh.size(), reopened.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_GT(fresh[i].pairs.size(), 0u) << "run " << i;
    EXPECT_EQ(fresh[i], reopened[i]) << "run " << i;
  }
}

TEST(BackendRoundTripTest, TimeSeriesStoreSurvivesReopen) {
  const std::string dir = ScratchDir("series");
  const std::vector<float> x = GenRandomWalk(400, 17);
  const std::vector<float> y = GenRandomWalk(300, 18);

  const auto sweep = [](StorageBackend* disk, const TimeSeriesStore& xs,
                        const TimeSeriesStore& ys) {
    std::vector<RunResult> results;
    for (const Algorithm algorithm : kAlgorithms) {
      for (const uint32_t threads : kThreadCounts) {
        results.push_back(RunJoin(disk, [&](JoinDriver* d, PairSink* sink) {
          return d->RunTimeSeries(xs, ys, /*eps=*/2.0,
                                  MakeOptions(algorithm, threads), sink);
        }));
      }
    }
    return results;
  };

  std::vector<RunResult> fresh;
  {
    auto backend = OpenFileBackend(dir);
    auto xs = TimeSeriesStore::Build(backend.get(), "x", x, 16, 4,
                                     60 * sizeof(float))
                  .value();
    auto ys = TimeSeriesStore::Build(backend.get(), "y", y, 16, 4,
                                     60 * sizeof(float))
                  .value();
    fresh = sweep(backend.get(), xs, ys);
    ASSERT_TRUE(xs.Persist(backend.get()).ok());
    ASSERT_TRUE(ys.Persist(backend.get()).ok());
  }

  auto backend = OpenFileBackend(dir);
  auto xs = TimeSeriesStore::Open(backend.get(), "x").value();
  auto ys = TimeSeriesStore::Open(backend.get(), "y").value();
  EXPECT_EQ(xs.values().size(), x.size());
  const std::vector<RunResult> reopened = sweep(backend.get(), xs, ys);

  ASSERT_EQ(fresh.size(), reopened.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_GT(fresh[i].pairs.size(), 0u) << "run " << i;
    EXPECT_EQ(fresh[i], reopened[i]) << "run " << i;
  }
}

// A corrupted data page must surface as Status::Corruption through the
// whole driver stack — matrix build, buffer pool, executor — without
// aborting the process.
TEST(BackendRoundTripTest, CorruptPageSurfacesThroughDriver) {
  const std::string dir = ScratchDir("corrupt");
  auto backend = OpenFileBackend(dir);
  const VectorData r_raw = GenRoadNetwork(300, 3);
  const VectorData s_raw = GenRoadNetwork(250, 4);
  VectorDataset::Options ds_options;
  ds_options.page_size_bytes = kPageBytes;
  auto r = VectorDataset::Build(backend.get(), "r", r_raw, ds_options)
               .value();
  auto s = VectorDataset::Build(backend.get(), "s", s_raw, ds_options)
               .value();
  ASSERT_TRUE(backend->Sync().ok());

  // Flip one bit in every page of r on disk, so whichever pages the
  // join touches, the first read of r hits a bad checksum.
  std::string path;
  char prefix[16];
  std::snprintf(prefix, sizeof(prefix), "pf%06u_", r.file_id());
  for (const auto& entry :
       std::filesystem::directory_iterator(backend->directory())) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0)
      path = entry.path().string();
  }
  ASSERT_FALSE(path.empty());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    for (uint32_t page = 0; page < r.num_pages(); ++page) {
      const uint64_t offset =
          FileBackend::SlotOffset(backend->page_size_bytes(), page) + 11;
      f.seekg(static_cast<std::streamoff>(offset));
      char byte = 0;
      f.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0x10);
      f.seekp(static_cast<std::streamoff>(offset));
      f.write(&byte, 1);
    }
  }

  JoinDriver driver(backend.get());
  CollectingSink sink;
  const auto report = driver.RunVector(r, s, /*eps=*/0.05,
                                       MakeOptions(Algorithm::kSc, 1),
                                       &sink);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsCorruption())
      << report.status().ToString();
}

}  // namespace
}  // namespace pmjoin
