#include <gtest/gtest.h>

#include "core/join_driver.h"
#include "data/generators.h"
#include "io/simulated_disk.h"
#include "test_util.h"

namespace pmjoin {
namespace {

JoinOptions Opt(Algorithm algorithm, uint32_t buffer) {
  JoinOptions options;
  options.algorithm = algorithm;
  options.buffer_pages = buffer;
  options.page_size_bytes = 64;
  // Under PMJOIN_TEST_SHARDS the attribution identities below must keep
  // holding with the shard coordinator in the loop.
  options.shards = testing_util::TestShardCount();
  return options;
}

class AccountingFixture : public ::testing::Test {
 protected:
  AccountingFixture() {
    r_raw_ = GenRoadNetwork(400, 21);
    s_raw_ = GenRoadNetwork(350, 22);
    VectorDataset::Options layout;
    layout.page_size_bytes = 64;
    r_.emplace(
        VectorDataset::Build(&disk_, "r", r_raw_, layout).value());
    s_.emplace(
        VectorDataset::Build(&disk_, "s", s_raw_, layout).value());
  }

  SimulatedDisk disk_;
  VectorData r_raw_, s_raw_;
  std::optional<VectorDataset> r_, s_;
};

TEST_F(AccountingFixture, EveryMarkedPageIsReadAtLeastOnce) {
  // Information-theoretic floor: each marked page holds at least one
  // record participating in a potential result, so every matrix-driven
  // operator must read all marked rows + marked cols at least once.
  JoinDriver driver(&disk_);
  for (Algorithm algorithm : {Algorithm::kPmNlj, Algorithm::kSc,
                              Algorithm::kRandomSc, Algorithm::kCc}) {
    CountingSink sink;
    auto report = driver.RunVector(*r_, *s_, 0.05, Opt(algorithm, 10),
                                   &sink);
    ASSERT_TRUE(report.ok());
    // Lower bound via marked rows/cols is not directly exposed; use the
    // weaker but exact floor: pages_read >= marked rows of the matrix
    // (every marked row page must become resident at least once).
    EXPECT_GE(report->io.pages_read, report->matrix_rows > 0
                                         ? 1u
                                         : 0u);  // Sanity floor.
    EXPECT_GT(report->io.pages_read, 0u);
    // And never more than NLJ's full cross-scan at the same buffer.
    CountingSink nlj_sink;
    auto nlj = driver.RunVector(*r_, *s_, 0.05,
                                Opt(Algorithm::kNlj, 10), &nlj_sink);
    ASSERT_TRUE(nlj.ok());
    EXPECT_LE(report->io.pages_read, nlj->io.pages_read)
        << AlgorithmName(algorithm);
  }
}

TEST_F(AccountingFixture, NljReadsExactBlockFormula) {
  JoinDriver driver(&disk_);
  for (uint32_t buffer : {4u, 10u, 30u}) {
    CountingSink sink;
    auto report = driver.RunVector(*r_, *s_, 0.05,
                                   Opt(Algorithm::kNlj, buffer), &sink);
    ASSERT_TRUE(report.ok());
    const uint32_t block = buffer - 2;
    const uint64_t blocks = (r_->num_pages() + block - 1) / block;
    EXPECT_EQ(report->io.pages_read,
              uint64_t(r_->num_pages()) + blocks * s_->num_pages());
  }
}

TEST_F(AccountingFixture, RunsAreFullyDeterministic) {
  // Two drivers over identical fresh disks must produce byte-identical
  // reports — any nondeterminism (hash iteration order, uninitialized
  // state) breaks reproducibility of every figure.
  auto run_once = [&](Algorithm algorithm) {
    SimulatedDisk disk;
    VectorDataset::Options layout;
    layout.page_size_bytes = 64;
    auto r = VectorDataset::Build(&disk, "r", r_raw_, layout).value();
    auto s = VectorDataset::Build(&disk, "s", s_raw_, layout).value();
    JoinDriver driver(&disk);
    CountingSink sink;
    auto report =
        driver.RunVector(r, s, 0.05, Opt(algorithm, 10), &sink).value();
    return std::tuple<uint64_t, uint64_t, uint64_t, uint64_t>(
        report.io.pages_read, report.io.seeks, report.ops.distance_terms,
        sink.count());
  };
  for (Algorithm algorithm :
       {Algorithm::kNlj, Algorithm::kPmNlj, Algorithm::kRandomSc,
        Algorithm::kSc, Algorithm::kCc, Algorithm::kEgo, Algorithm::kBfrj,
        Algorithm::kPbsm}) {
    EXPECT_EQ(run_once(algorithm), run_once(algorithm))
        << AlgorithmName(algorithm);
  }
}

TEST_F(AccountingFixture, BufferHitsPlusReadsCoverAllAccesses) {
  // Consistency of the pool counters: every page access is either a hit
  // or a read; hits never exceed total accesses.
  JoinDriver driver(&disk_);
  CountingSink sink;
  auto report =
      driver.RunVector(*r_, *s_, 0.05, Opt(Algorithm::kSc, 10), &sink);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->io.buffer_hits + report->io.pages_read, 0u);
  EXPECT_EQ(report->io.pages_written, 0u);  // SC never spills.
}

TEST_F(AccountingFixture, SeeksNeverExceedReads) {
  JoinDriver driver(&disk_);
  for (Algorithm algorithm : {Algorithm::kNlj, Algorithm::kPmNlj,
                              Algorithm::kSc, Algorithm::kCc}) {
    CountingSink sink;
    auto report = driver.RunVector(*r_, *s_, 0.05, Opt(algorithm, 10),
                                   &sink);
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->io.seeks,
              report->io.pages_read + report->io.pages_written)
        << AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace pmjoin
