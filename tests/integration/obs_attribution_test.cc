// End-to-end contract of the observability subsystem (src/obs):
//
//  1. Exactness — the run report's per-phase exclusive I/O deltas plus its
//     unattributed remainder reproduce the session IoStats totals field by
//     field, and the session totals equal the JoinReport's own delta.
//  2. Harmlessness — enabling a tracing session changes neither the emitted
//     pairs nor the op counters nor the simulated I/O, at any thread count.
#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "core/join_driver.h"
#include "data/generators.h"
#include "io/io_stats.h"
#include "io/simulated_disk.h"
#include "obs/run_report.h"
#include "obs/span.h"

namespace pmjoin {
namespace {

struct RunResult {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  OpCounters ops;
  IoStats io;
  obs::RunReport report;  // captured only when observed
};

/// One fully fresh SC/CC join (own disk + datasets, deterministic seeds),
/// optionally bracketed by a tracer session around the join itself.
RunResult RunOnce(Algorithm algorithm, uint32_t num_threads, bool observed) {
  SimulatedDisk disk;
  const VectorData r_raw = GenRoadNetwork(600, 31);
  const VectorData s_raw = GenRoadNetwork(500, 32);
  VectorDataset::Options layout;
  layout.page_size_bytes = 64;
  VectorDataset r = VectorDataset::Build(&disk, "r", r_raw, layout).value();
  VectorDataset s = VectorDataset::Build(&disk, "s", s_raw, layout).value();

  JoinOptions options;
  options.algorithm = algorithm;
  options.buffer_pages = 10;
  options.page_size_bytes = 64;
  options.num_threads = num_threads;

  JoinDriver driver(&disk);
  CollectingSink sink;
  if (observed) obs::Tracer::Get().StartSession(&disk);
  auto report = driver.RunVector(r, s, 0.05, options, &sink);
  if (observed) obs::Tracer::Get().StopSession();

  RunResult result;
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) {
    result.pairs = sink.Sorted();
    result.ops = report->ops;
    result.io = report->io;
  }
  if (observed) {
    result.report.CaptureSession();
  } else {
    // A stray session would invalidate the harmlessness comparison.
    EXPECT_FALSE(obs::Tracer::Get().active());
  }
  return result;
}

IoStats LedgerSum(const obs::RunReport& report) {
  IoStats sum = report.unattributed_io();
  for (const obs::PhaseRow& row : report.phases()) sum += row.io_self;
  return sum;
}

TEST(ObsAttributionTest, PhaseLedgerSumsToSessionTotalsExactly) {
  for (Algorithm algorithm : {Algorithm::kSc, Algorithm::kCc}) {
    for (uint32_t threads : {1u, 4u}) {
      const RunResult run = RunOnce(algorithm, threads, /*observed=*/true);
      // Session == join bracket, so totals must equal the JoinReport delta.
      EXPECT_EQ(run.report.io_totals(), run.io)
          << AlgorithmName(algorithm) << " threads=" << threads;
      // The ledger invariant: exclusive phase deltas + unattributed ==
      // totals, every field.
      EXPECT_EQ(LedgerSum(run.report), run.report.io_totals())
          << AlgorithmName(algorithm) << " threads=" << threads;
    }
  }
}

#ifdef PMJOIN_OBS_ENABLED
TEST(ObsAttributionTest, ExpectedPhasesArePresent) {
  const RunResult run = RunOnce(Algorithm::kSc, 1, /*observed=*/true);
  bool saw_join = false;
  bool saw_matrix = false;
  bool saw_execute = false;
  bool saw_cluster = false;
  for (const obs::PhaseRow& row : run.report.phases()) {
    if (row.path == "join") saw_join = true;
    if (row.path == "join/matrix_build") saw_matrix = true;
    if (row.path == "join/execute") saw_execute = true;
    if (row.path == "join/execute/cluster") saw_cluster = true;
  }
  EXPECT_TRUE(saw_join);
  EXPECT_TRUE(saw_matrix);
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_cluster);
  // The root phase carries the whole join's op counters.
  for (const obs::PhaseRow& row : run.report.phases()) {
    if (row.path != "join") continue;
    ASSERT_TRUE(row.has_ops);
    EXPECT_EQ(row.ops, run.ops);
  }
}

TEST(ObsAttributionTest, WorkerSpansAppearAtHigherThreadCounts) {
  const RunResult run = RunOnce(Algorithm::kSc, 4, /*observed=*/true);
  bool saw_worker_chunk = false;
  for (const obs::PhaseRow& row : run.report.phases()) {
    if (row.name == "join_entries") {
      saw_worker_chunk = true;
      // Worker-track spans never carry I/O — all disk traffic is on the
      // coordinator, which is what makes the ledger race-free.
      EXPECT_FALSE(row.has_io);
    }
  }
  EXPECT_TRUE(saw_worker_chunk);
}
#endif  // PMJOIN_OBS_ENABLED

TEST(ObsAttributionTest, ObservationDoesNotChangeResults) {
  for (Algorithm algorithm : {Algorithm::kSc, Algorithm::kCc}) {
    const RunResult base = RunOnce(algorithm, 1, /*observed=*/false);
    ASSERT_FALSE(base.pairs.empty());
    for (bool observed : {false, true}) {
      for (uint32_t threads : {1u, 8u}) {
        const RunResult run = RunOnce(algorithm, threads, observed);
        EXPECT_EQ(run.pairs, base.pairs)
            << AlgorithmName(algorithm) << " observed=" << observed
            << " threads=" << threads;
        EXPECT_EQ(run.ops, base.ops)
            << AlgorithmName(algorithm) << " observed=" << observed
            << " threads=" << threads;
        EXPECT_EQ(run.io, base.io)
            << AlgorithmName(algorithm) << " observed=" << observed
            << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace pmjoin
