// Status/Result error-path coverage: failures must surface as typed
// statuses through every public layer — never as crashes, and never with
// the pool's bookkeeping left inconsistent (ValidateInvariants after each
// failed call).

#include <vector>

#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/join_driver.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "io/buffer_pool.h"
#include "io/simulated_disk.h"
#include "join_test_util.h"

namespace pmjoin {
namespace {

// ---------------------------------------------------------------------------
// SimulatedDisk: bad page coordinates are typed statuses, not crashes.

TEST(DiskErrorPathTest, ReadOfUnknownFileIsInvalidArgument) {
  SimulatedDisk disk;
  const Status st = disk.ReadPage({99, 0});
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(DiskErrorPathTest, ReadPastEndOfFileIsOutOfRange) {
  SimulatedDisk disk;
  const uint32_t file = disk.CreateFile("data", 4);
  EXPECT_TRUE(disk.ReadPage({file, 3}).ok());
  const Status st = disk.ReadPage({file, 4});
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfRange());
  // A failed access charges nothing.
  EXPECT_EQ(disk.stats().pages_read, 1u);
}

TEST(DiskErrorPathTest, ReadPagesCheckedBeforeAnyCharge) {
  SimulatedDisk disk;
  const uint32_t file = disk.CreateFile("data", 4);
  const Status st = disk.ReadPages({file, 2}, 5);  // Tail out of bounds.
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfRange());
  EXPECT_EQ(disk.stats().pages_read, 0u);
}

// ---------------------------------------------------------------------------
// BufferPool: failed operations propagate the disk's status and leave the
// pool audit-clean.

TEST(BufferPoolErrorPathTest, PinOfBadPagePropagatesStatus) {
  SimulatedDisk disk;
  const uint32_t file = disk.CreateFile("data", 4);
  BufferPool pool(&disk, 2);
  const Status st = pool.Pin({file, 40});
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfRange());
  EXPECT_FALSE(pool.Contains({file, 40}));
  EXPECT_EQ(pool.PinnedCount(), 0u);
  EXPECT_TRUE(pool.ValidateInvariants().ok());
}

TEST(BufferPoolErrorPathTest, PinBeyondAllPinnedCapacityIsBufferFull) {
  SimulatedDisk disk;
  const uint32_t file = disk.CreateFile("data", 8);
  BufferPool pool(&disk, 2);
  ASSERT_TRUE(pool.Pin({file, 0}).ok());
  ASSERT_TRUE(pool.Pin({file, 1}).ok());
  const Status st = pool.Pin({file, 2});
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsBufferFull());
  EXPECT_TRUE(pool.ValidateInvariants().ok());
}

TEST(BufferPoolErrorPathTest, ClearWithPinsOutstandingFails) {
  SimulatedDisk disk;
  const uint32_t file = disk.CreateFile("data", 8);
  BufferPool pool(&disk, 2);
  ASSERT_TRUE(pool.Pin({file, 0}).ok());
  const Status st = pool.Clear();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInternal());
  pool.Unpin({file, 0});
  EXPECT_TRUE(pool.Clear().ok());
}

// ---------------------------------------------------------------------------
// Executor: cluster/pool mismatches become BufferFull/InvalidArgument from
// both the serial and the parallel path, with identical classification.

class ExecutorErrorPathTest : public ::testing::Test {
 protected:
  ExecutorErrorPathTest() : join_(40, 40, /*seed=*/5, /*eps=*/0.05) {}

  /// One cluster holding every marked entry of the matrix.
  Cluster WholeMatrixCluster() const {
    Cluster cluster;
    cluster.rows = join_.matrix().MarkedRows();
    cluster.cols = join_.matrix().MarkedCols();
    cluster.entries = join_.matrix().AllEntries();
    return cluster;
  }

  testing_util::SmallVectorJoin join_;
};

TEST_F(ExecutorErrorPathTest, OversizedClusterIsBufferFullSerialAndParallel) {
  const Cluster cluster = WholeMatrixCluster();
  ASSERT_GT(cluster.PageCount(), 2u);
  const std::vector<Cluster> clusters{cluster};
  const std::vector<uint32_t> order{0};
  for (uint32_t threads : {1u, 2u}) {
    BufferPool pool(&join_.disk(), 2);
    CountingSink sink;
    OpCounters ops;
    ExecutorOptions options;
    options.num_threads = threads;
    const Status st = ExecuteClusteredJoin(join_.input(), clusters, order,
                                           &pool, &sink, &ops, options);
    ASSERT_FALSE(st.ok()) << "threads=" << threads;
    EXPECT_TRUE(st.IsBufferFull()) << "threads=" << threads;
    EXPECT_EQ(sink.count(), 0u) << "threads=" << threads;
    EXPECT_TRUE(pool.ValidateInvariants().ok()) << "threads=" << threads;
  }
}

TEST_F(ExecutorErrorPathTest, ExternallyPinnedPoolSurfacesBufferFull) {
  const Cluster cluster = WholeMatrixCluster();
  const std::vector<Cluster> clusters{cluster};
  const std::vector<uint32_t> order{0};
  // Capacity fits the cluster alone, but pins on an unrelated file starve
  // the batch of one frame: PinBatch must fail with BufferFull (not crash
  // mid-eviction) and the executor must propagate it.
  const uint32_t extra = join_.disk().CreateFile("extra", 2);
  BufferPool pool(&join_.disk(), cluster.PageCount() + 1);
  ASSERT_TRUE(pool.Pin({extra, 0}).ok());
  ASSERT_TRUE(pool.Pin({extra, 1}).ok());
  CountingSink sink;
  OpCounters ops;
  const Status st = ExecuteClusteredJoin(join_.input(), clusters, order,
                                         &pool, &sink, &ops);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsBufferFull());
  EXPECT_EQ(pool.PinnedCount(), 2u) << "failed batch must roll back";
  EXPECT_TRUE(pool.ValidateInvariants().ok());
}

TEST_F(ExecutorErrorPathTest, OrderSizeMismatchIsInvalidArgument) {
  const std::vector<Cluster> clusters{WholeMatrixCluster()};
  const std::vector<uint32_t> order{0, 0};
  BufferPool pool(&join_.disk(), 64);
  CountingSink sink;
  OpCounters ops;
  const Status st = ExecuteClusteredJoin(join_.input(), clusters, order,
                                         &pool, &sink, &ops);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// JoinDriver: Result-returning facade surfaces argument errors as typed
// statuses.

TEST(DriverErrorPathTest, DimensionMismatchIsInvalidArgument) {
  SimulatedDisk disk;
  VectorDataset::Options options;
  options.page_size_bytes = 64;
  auto r = VectorDataset::Build(&disk, "r", GenUniform(50, 2, 1), options);
  auto s = VectorDataset::Build(&disk, "s", GenUniform(50, 3, 2), options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());
  JoinDriver driver(&disk);
  CountingSink sink;
  const auto report =
      driver.RunVector(*r, *s, 0.05, JoinOptions{}, &sink);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

TEST(DriverErrorPathTest, EmptyDatasetBuildFails) {
  SimulatedDisk disk;
  VectorData empty;
  empty.dims = 2;
  const auto ds =
      VectorDataset::Build(&disk, "empty", empty, VectorDataset::Options{});
  ASSERT_FALSE(ds.ok());
  EXPECT_TRUE(ds.status().IsInvalidArgument());
}

}  // namespace
}  // namespace pmjoin
