#include "io/simulated_disk.h"

#include <gtest/gtest.h>

namespace pmjoin {
namespace {

TEST(SimulatedDiskTest, CreateFileAssignsIdsAndRegions) {
  SimulatedDisk disk;
  const uint32_t a = disk.CreateFile("a", 10);
  const uint32_t b = disk.CreateFile("b", 5);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(disk.file(a).num_pages, 10u);
  EXPECT_EQ(disk.file(b).name, "b");
  EXPECT_NE(disk.file(a).base_offset, disk.file(b).base_offset);
}

TEST(SimulatedDiskTest, FirstReadSeeks) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 4);
  ASSERT_TRUE(disk.ReadPage({f, 0}).ok());
  EXPECT_EQ(disk.stats().seeks, 1u);
  EXPECT_EQ(disk.stats().pages_read, 1u);
}

TEST(SimulatedDiskTest, SequentialReadsDoNotSeek) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 4);
  for (uint32_t p = 0; p < 4; ++p) ASSERT_TRUE(disk.ReadPage({f, p}).ok());
  EXPECT_EQ(disk.stats().seeks, 1u);  // Only the first access.
  EXPECT_EQ(disk.stats().pages_read, 4u);
  EXPECT_EQ(disk.stats().sequential_reads, 3u);
}

TEST(SimulatedDiskTest, BackwardReadSeeks) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 4);
  ASSERT_TRUE(disk.ReadPage({f, 2}).ok());
  ASSERT_TRUE(disk.ReadPage({f, 1}).ok());
  EXPECT_EQ(disk.stats().seeks, 2u);
}

TEST(SimulatedDiskTest, SkipReadSeeks) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 10);
  ASSERT_TRUE(disk.ReadPage({f, 0}).ok());
  ASSERT_TRUE(disk.ReadPage({f, 2}).ok());  // Skips page 1.
  EXPECT_EQ(disk.stats().seeks, 2u);
}

TEST(SimulatedDiskTest, CrossFileReadSeeks) {
  SimulatedDisk disk;
  const uint32_t a = disk.CreateFile("a", 2);
  const uint32_t b = disk.CreateFile("b", 2);
  ASSERT_TRUE(disk.ReadPage({a, 0}).ok());
  ASSERT_TRUE(disk.ReadPage({b, 0}).ok());
  EXPECT_EQ(disk.stats().seeks, 2u);
}

TEST(SimulatedDiskTest, ReadPagesChargesOneSeek) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 100);
  ASSERT_TRUE(disk.ReadPages({f, 10}, 50).ok());
  EXPECT_EQ(disk.stats().seeks, 1u);
  EXPECT_EQ(disk.stats().pages_read, 50u);
}

TEST(SimulatedDiskTest, RunThenAdjacentPageIsSequential) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 100);
  ASSERT_TRUE(disk.ReadPages({f, 0}, 10).ok());
  ASSERT_TRUE(disk.ReadPage({f, 10}).ok());
  EXPECT_EQ(disk.stats().seeks, 1u);
}

TEST(SimulatedDiskTest, WritesCharged) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 4);
  ASSERT_TRUE(disk.WritePage({f, 0}).ok());
  ASSERT_TRUE(disk.WritePage({f, 1}).ok());
  EXPECT_EQ(disk.stats().pages_written, 2u);
  EXPECT_EQ(disk.stats().seeks, 1u);  // Sequential write pair.
}

TEST(SimulatedDiskTest, ScanFileIsOneSeek) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 64);
  ASSERT_TRUE(disk.ScanFile(f).ok());
  EXPECT_EQ(disk.stats().seeks, 1u);
  EXPECT_EQ(disk.stats().pages_read, 64u);
}

TEST(SimulatedDiskTest, AppendGrowsFile) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 2);
  Result<uint32_t> first = disk.AllocatePages(f, 3);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 2u);
  EXPECT_EQ(disk.file(f).num_pages, 5u);
  EXPECT_TRUE(disk.ReadPage({f, 4}).ok());
}

TEST(SimulatedDiskTest, OutOfBoundsReadFails) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 2);
  EXPECT_TRUE(disk.ReadPage({f, 2}).IsOutOfRange());
  EXPECT_TRUE(disk.ReadPage({99, 0}).IsInvalidArgument());
}

TEST(SimulatedDiskTest, ModeledSecondsUsesModel) {
  DiskModel model;
  model.seek_sec = 0.010;
  model.transfer_sec = 0.001;
  SimulatedDisk disk(model);
  const uint32_t f = disk.CreateFile("f", 10);
  ASSERT_TRUE(disk.ReadPages({f, 0}, 10).ok());
  // 1 seek + 10 transfers = 10ms + 10ms.
  EXPECT_NEAR(disk.ModeledSeconds(), 0.020, 1e-12);
}

TEST(SimulatedDiskTest, ResetStatsClearsCountersOnly) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 4);
  ASSERT_TRUE(disk.ReadPage({f, 0}).ok());
  disk.ResetStats();
  EXPECT_EQ(disk.stats().pages_read, 0u);
  EXPECT_EQ(disk.file(f).num_pages, 4u);
}

TEST(SimulatedDiskTest, DeltaAccounting) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 10);
  ASSERT_TRUE(disk.ReadPage({f, 0}).ok());
  const IoStats snapshot = disk.stats();
  ASSERT_TRUE(disk.ReadPages({f, 5}, 3).ok());
  const IoStats delta = disk.stats().Delta(snapshot);
  EXPECT_EQ(delta.pages_read, 3u);
  EXPECT_EQ(delta.seeks, 1u);
}

}  // namespace
}  // namespace pmjoin
