// Staging lifecycle of the async read pipeline (io/async_reader.h +
// FileBackend staging): staged reads must be ledger-neutral — the modeled
// IoStats charged when a staged run is consumed through ReadPages are
// byte-identical to a synchronous read of the same run — while the
// measured (real) counters faithfully record every physical read,
// consumed or dropped.

#include "io/async_reader.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include <gtest/gtest.h>

#include "io/file_backend.h"
#include "io/page_file.h"
#include "io/simulated_disk.h"

namespace pmjoin {
namespace {

/// A fresh scratch directory under the gtest temp dir (removed up front so
/// reruns start clean).
std::string ScratchDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "pmjoin-artest-" +
                          std::to_string(::getpid()) + "-" + tag;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

FileBackend::Options SmallPages() {
  FileBackend::Options options;
  options.page_size_bytes = 128;
  return options;
}

/// Path of `file`'s page file inside the backend directory (resolved by
/// prefix so the name-sanitization rules stay internal to the backend).
std::string PagePath(const FileBackend& backend, uint32_t file) {
  char prefix[16];
  std::snprintf(prefix, sizeof(prefix), "pf%06u_", file);
  for (const auto& entry :
       std::filesystem::directory_iterator(backend.directory())) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0)
      return entry.path().string();
  }
  return {};
}

/// Flips one bit at byte `offset` of `path`.
void FlipBit(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

constexpr uint32_t kPages = 6;

/// Backend with one file of `kPages` pages whose payloads are distinct per
/// page (so consumed staging buffers can be verified byte-for-byte).
std::unique_ptr<FileBackend> MakeBackend(const char* tag,
                                         uint32_t* file_out) {
  auto backend = FileBackend::Open(ScratchDir(tag), SmallPages()).value();
  const uint32_t file = backend->CreateFile("data", kPages);
  std::vector<uint8_t> payload(backend->page_size_bytes());
  for (uint32_t page = 0; page < kPages; ++page) {
    for (size_t i = 0; i < payload.size(); ++i)
      payload[i] = static_cast<uint8_t>(page * 31 + i);
    EXPECT_TRUE(backend->WritePagePayload({file, page}, payload).ok());
  }
  *file_out = file;
  return backend;
}

TEST(FileBackendStagingTest, StagedConsumeMatchesSyncRead) {
  uint32_t file = 0;
  auto backend = MakeBackend("consume", &file);
  // Warm-up read so the two measured runs below start from the same head
  // position (the first access after Build charges a different seek).
  ASSERT_TRUE(backend->ReadPages({file, 0}, 3).ok());

  // Synchronous reference read of the run.
  const IoStats sync_io_before = backend->stats();
  const StorageBackend::MeasuredIo sync_meas_before = backend->measured();
  ASSERT_TRUE(backend->ReadPages({file, 0}, 3).ok());
  const IoStats sync_io = backend->stats().Delta(sync_io_before);
  const uint64_t sync_syscalls =
      backend->measured().read_syscalls - sync_meas_before.read_syscalls;
  const uint64_t sync_bytes =
      backend->measured().read_bytes - sync_meas_before.read_bytes;
  const uint64_t sync_checks =
      backend->measured().checksum_checks - sync_meas_before.checksum_checks;

  // The same run staged and driven to completion, then consumed.
  ASSERT_TRUE(backend->BeginStage({file, 0}, 3));
  EXPECT_EQ(backend->StagedCount(), 1u);
  backend->PerformStage({file, 0}, 3);

  const IoStats staged_io_before = backend->stats();
  const StorageBackend::MeasuredIo staged_meas_before = backend->measured();
  ASSERT_TRUE(backend->ReadPages({file, 0}, 3).ok());
  EXPECT_EQ(backend->StagedCount(), 0u);

  // Modeled ledger: byte-identical to the synchronous read.
  EXPECT_EQ(backend->stats().Delta(staged_io_before), sync_io);
  // Measured ledger: the staged physical read (performed above, merged at
  // consumption) did exactly the synchronous read's work.
  EXPECT_EQ(backend->measured().read_syscalls -
                staged_meas_before.read_syscalls,
            sync_syscalls);
  EXPECT_EQ(backend->measured().read_bytes - staged_meas_before.read_bytes,
            sync_bytes);
  EXPECT_EQ(backend->measured().checksum_checks -
                staged_meas_before.checksum_checks,
            sync_checks);
}

TEST(FileBackendStagingTest, StagedPayloadRoundTrips) {
  uint32_t file = 0;
  auto backend = MakeBackend("payload", &file);
  ASSERT_TRUE(backend->BeginStage({file, 4}, 1));
  backend->PerformStage({file, 4}, 1);

  std::vector<uint8_t> out(backend->page_size_bytes(), 0xAA);
  ASSERT_TRUE(backend->ReadPagePayload({file, 4}, out).ok());
  EXPECT_EQ(backend->StagedCount(), 0u);
  for (size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], static_cast<uint8_t>(4 * 31 + i)) << "byte " << i;
}

TEST(FileBackendStagingTest, PendingRunClaimedBackSynchronously) {
  uint32_t file = 0;
  auto backend = MakeBackend("claimback", &file);
  // Registered but never reached by an I/O thread: the coordinator's own
  // read claims it back and reads synchronously.
  ASSERT_TRUE(backend->BeginStage({file, 1}, 2));
  ASSERT_TRUE(backend->ReadPages({file, 1}, 2).ok());
  EXPECT_EQ(backend->StagedCount(), 0u);

  // A PerformStage arriving after the claim-back is a no-op.
  const StorageBackend::MeasuredIo before = backend->measured();
  backend->PerformStage({file, 1}, 2);
  EXPECT_EQ(backend->measured().read_syscalls, before.read_syscalls);
  EXPECT_EQ(backend->StagedCount(), 0u);
}

TEST(FileBackendStagingTest, CountMismatchReadsSynchronouslyAndKeepsRun) {
  uint32_t file = 0;
  auto backend = MakeBackend("mismatch", &file);
  ASSERT_TRUE(backend->BeginStage({file, 0}, 2));
  backend->PerformStage({file, 0}, 2);
  // Same start, different length: consumption requires an exact match, so
  // this reads synchronously and leaves the staged run for DropStaged.
  ASSERT_TRUE(backend->ReadPage({file, 0}).ok());
  EXPECT_EQ(backend->StagedCount(), 1u);
  backend->DropStaged();
  EXPECT_EQ(backend->StagedCount(), 0u);
}

TEST(FileBackendStagingTest, BeginStageRejectsDuplicatesAndBadRanges) {
  uint32_t file = 0;
  auto backend = MakeBackend("reject", &file);
  EXPECT_TRUE(backend->BeginStage({file, 0}, 2));
  EXPECT_FALSE(backend->BeginStage({file, 0}, 1));       // same start
  EXPECT_FALSE(backend->BeginStage({file, 0}, 0));       // empty run
  EXPECT_FALSE(backend->BeginStage({file, kPages}, 1));  // past the end
  EXPECT_FALSE(backend->BeginStage({file, kPages - 1}, 2));  // overruns
  EXPECT_FALSE(backend->BeginStage({file + 7, 0}, 1));   // no such file
  EXPECT_EQ(backend->StagedCount(), 1u);
  backend->DropStaged();
  EXPECT_EQ(backend->StagedCount(), 0u);
}

TEST(FileBackendStagingTest, DropStagedKeepsMeasuredBytes) {
  uint32_t file = 0;
  auto backend = MakeBackend("drop", &file);
  ASSERT_TRUE(backend->BeginStage({file, 0}, 2));
  backend->PerformStage({file, 0}, 2);

  const IoStats io_before = backend->stats();
  const StorageBackend::MeasuredIo meas_before = backend->measured();
  backend->DropStaged();
  EXPECT_EQ(backend->StagedCount(), 0u);
  // The physical read really happened: it lands in the measured ledger on
  // the drop. The modeled ledger never sees dropped staging.
  EXPECT_GT(backend->measured().read_syscalls, meas_before.read_syscalls);
  EXPECT_GT(backend->measured().checksum_checks, meas_before.checksum_checks);
  EXPECT_EQ(backend->stats(), io_before);
}

TEST(FileBackendStagingTest, AdviseWillNeedCountsFadviseCalls) {
  uint32_t file = 0;
  auto backend = MakeBackend("fadvise", &file);
  const uint64_t before = backend->measured().fadvise_calls;
  backend->AdviseWillNeed({file, 0}, 3);
#if defined(POSIX_FADV_WILLNEED)
  EXPECT_EQ(backend->measured().fadvise_calls, before + 1);
#else
  EXPECT_EQ(backend->measured().fadvise_calls, before);
#endif
  // Invalid ranges are ignored without counting.
  const uint64_t after_valid = backend->measured().fadvise_calls;
  backend->AdviseWillNeed({file, kPages}, 1);
  backend->AdviseWillNeed({file + 7, 0}, 1);
  EXPECT_EQ(backend->measured().fadvise_calls, after_valid);
}

TEST(SimulatedDiskStagingTest, DeclinesStaging) {
  SimulatedDisk disk;
  disk.CreateFile("d", 4);
  EXPECT_FALSE(disk.SupportsStaging());
  EXPECT_FALSE(disk.BeginStage({0, 0}, 2));
  EXPECT_EQ(disk.StagedCount(), 0u);
  disk.DropStaged();  // no-op

  AsyncReader reader(&disk, 2);
  EXPECT_FALSE(reader.Submit(PageRun{{0, 0}, 2}));
  // Reads are untouched by the declined staging.
  EXPECT_TRUE(disk.ReadPages({0, 0}, 4).ok());
}

TEST(AsyncReaderTest, StagesRunsForLaterConsumption) {
  uint32_t file = 0;
  auto backend = MakeBackend("reader", &file);
  {
    AsyncReader reader(backend.get(), 2);
    EXPECT_EQ(reader.num_threads(), 2u);
    EXPECT_TRUE(reader.Submit(PageRun{{file, 0}, 3}));
    EXPECT_TRUE(reader.Submit(PageRun{{file, 4}, 2}));
    EXPECT_FALSE(reader.Submit(PageRun{{file, 0}, 3}));  // duplicate start
    EXPECT_FALSE(reader.Submit(PageRun{{file, 0}, 0}));  // empty run
  }  // joins the reader threads
  // Whatever the readers finished is consumed as staged; anything they
  // never reached is claimed back — either way the reads succeed and the
  // staging table drains.
  EXPECT_TRUE(backend->ReadPages({file, 0}, 3).ok());
  EXPECT_TRUE(backend->ReadPages({file, 4}, 2).ok());
  EXPECT_EQ(backend->StagedCount(), 0u);
}

TEST(AsyncReaderTest, TinyQueueStillCompletes) {
  uint32_t file = 0;
  auto backend = MakeBackend("tinyqueue", &file);
  {
    // Capacity 1 forces Submit to block on the queue bound and exercise
    // the backpressure path.
    AsyncReader reader(backend.get(), 1, /*queue_capacity=*/1);
    for (uint32_t page = 0; page < kPages; ++page)
      EXPECT_TRUE(reader.Submit(PageRun{{file, page}, 1}));
  }
  for (uint32_t page = 0; page < kPages; ++page)
    EXPECT_TRUE(backend->ReadPage({file, page}).ok());
  EXPECT_EQ(backend->StagedCount(), 0u);
}

TEST(AsyncReaderTest, CorruptStagedReadSurfacesThroughReadPages) {
  uint32_t file = 0;
  auto backend = MakeBackend("corrupt", &file);
  const std::string path = PagePath(*backend, file);
  ASSERT_FALSE(path.empty());
  // Corrupt page 2's payload on disk, then stage the run covering it.
  FlipBit(path, FileBackend::SlotOffset(backend->page_size_bytes(), 2) + 7);
  {
    AsyncReader reader(backend.get(), 1);
    ASSERT_TRUE(reader.Submit(PageRun{{file, 1}, 3}));
  }
  const IoStats io_before = backend->stats();
  const Status st = backend->ReadPages({file, 1}, 3);
  EXPECT_TRUE(st.IsCorruption()) << st.message();
  EXPECT_EQ(backend->StagedCount(), 0u);
  // A failed read charges nothing on the modeled ledger (same rule as the
  // synchronous path), and the backend stays usable for intact pages.
  EXPECT_EQ(backend->stats(), io_before);
  EXPECT_TRUE(backend->ReadPage({file, 0}).ok());
}

}  // namespace
}  // namespace pmjoin
