#include "io/file_backend.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include <gtest/gtest.h>

#include "io/buffer_pool.h"
#include "io/checksum.h"
#include "io/page_file.h"

namespace pmjoin {
namespace {

/// A fresh scratch directory under the gtest temp dir (removed up front so
/// reruns start clean).
std::string ScratchDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "pmjoin-fbtest-" +
                          std::to_string(::getpid()) + "-" + tag;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

FileBackend::Options SmallPages() {
  FileBackend::Options options;
  options.page_size_bytes = 128;
  return options;
}

/// Path of `file`'s page file inside the backend directory (resolved by
/// prefix so the name-sanitization rules stay internal to the backend).
std::string PagePath(const FileBackend& backend, uint32_t file) {
  char prefix[16];
  std::snprintf(prefix, sizeof(prefix), "pf%06u_", file);
  for (const auto& entry :
       std::filesystem::directory_iterator(backend.directory())) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0)
      return entry.path().string();
  }
  return {};
}

/// Flips one bit at byte `offset` of `path`.
void FlipBit(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

// Known-answer vectors for the XXH64 implementation (reference values of
// the canonical xxHash implementation, seed 0).
TEST(ChecksumTest, KnownAnswers) {
  EXPECT_EQ(Xxh64(nullptr, 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(Xxh64("a", 1), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(Xxh64("abc", 3), 0x44BC2CF5AD770999ULL);
}

TEST(ChecksumTest, SensitiveToEveryByteAndSeed) {
  std::vector<uint8_t> data(100);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<uint8_t>(i * 7);
  const uint64_t base = Xxh64(data.data(), data.size());
  EXPECT_NE(base, Xxh64(data.data(), data.size(), /*seed=*/1));
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 1;
    EXPECT_NE(base, Xxh64(data.data(), data.size())) << "byte " << i;
    data[i] ^= 1;
  }
  EXPECT_EQ(base, Xxh64(data.data(), data.size()));
}

TEST(FileBackendTest, WriteReadRoundTrip) {
  const std::string dir = ScratchDir("roundtrip");
  auto backend = FileBackend::Open(dir, SmallPages()).value();
  const uint32_t file = backend->CreateFile("data", 3);

  std::vector<uint8_t> payload(backend->page_size_bytes());
  for (size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(backend->WritePagePayload({file, 1}, payload).ok());

  std::vector<uint8_t> read_back(backend->page_size_bytes(), 0xAA);
  ASSERT_TRUE(backend->ReadPagePayload({file, 1}, read_back).ok());
  EXPECT_EQ(read_back, payload);

  // Never-written pages read back as zeros (slots are zero-filled, with
  // valid checksums, at allocation).
  ASSERT_TRUE(backend->ReadPagePayload({file, 0}, read_back).ok());
  EXPECT_EQ(read_back, std::vector<uint8_t>(backend->page_size_bytes(), 0));

  // A short payload zero-fills the remainder of the page.
  const std::vector<uint8_t> head = {1, 2, 3};
  ASSERT_TRUE(backend->WritePagePayload({file, 2}, head).ok());
  ASSERT_TRUE(backend->ReadPagePayload({file, 2}, read_back).ok());
  EXPECT_EQ(read_back[0], 1);
  EXPECT_EQ(read_back[2], 3);
  EXPECT_EQ(read_back[3], 0);
  EXPECT_EQ(read_back.back(), 0);
}

TEST(FileBackendTest, ReopenRestoresFilesAndPayloads) {
  const std::string dir = ScratchDir("reopen");
  std::vector<uint8_t> payload(128, 0x5A);
  {
    auto backend = FileBackend::Open(dir, SmallPages()).value();
    const uint32_t a = backend->CreateFile("alpha", 2);
    const uint32_t b = backend->CreateFile("beta", 1);
    ASSERT_EQ(a, 0u);
    ASSERT_EQ(b, 1u);
    ASSERT_TRUE(backend->WritePagePayload({a, 1}, payload).ok());
    ASSERT_TRUE(backend->AllocatePages(b, 2).ok());
    ASSERT_TRUE(backend->Sync().ok());
  }
  auto backend = FileBackend::Open(dir, SmallPages()).value();
  ASSERT_EQ(backend->NumFiles(), 2u);
  EXPECT_EQ(backend->file(0).name, "alpha");
  EXPECT_EQ(backend->file(1).name, "beta");
  EXPECT_EQ(backend->num_pages(0), 2u);
  EXPECT_EQ(backend->num_pages(1), 3u);
  std::vector<uint8_t> read_back(128);
  ASSERT_TRUE(backend->ReadPagePayload({0, 1}, read_back).ok());
  EXPECT_EQ(read_back, payload);
  // A reopened backend starts with fresh modeled counters.
  EXPECT_EQ(backend->stats().pages_read, 1u);
}

TEST(FileBackendTest, BadMagicIsCorruption) {
  const std::string dir = ScratchDir("badmagic");
  {
    auto backend = FileBackend::Open(dir, SmallPages()).value();
    backend->CreateFile("data", 1);
  }
  FlipBit(PagePath(*FileBackend::Open(dir, SmallPages()).value(), 0), 0);
  const auto reopened = FileBackend::Open(dir, SmallPages());
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption()) << reopened.status().ToString();
}

TEST(FileBackendTest, BadVersionIsCorruption) {
  const std::string dir = ScratchDir("badversion");
  std::string path;
  {
    auto backend = FileBackend::Open(dir, SmallPages()).value();
    backend->CreateFile("data", 1);
    path = PagePath(*backend, 0);
  }
  // Rewrite the version field *and* recompute the superblock checksum, so
  // the version check itself (not the checksum) must catch it.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  std::vector<char> super(FileBackend::kSuperblockBytes);
  f.read(super.data(), super.size());
  super[8] = 99;  // version u32 at offset 8, little-endian
  const uint64_t sum = Xxh64(super.data(), 504);
  for (int i = 0; i < 8; ++i)
    super[504 + i] = static_cast<char>((sum >> (8 * i)) & 0xFF);
  f.seekp(0);
  f.write(super.data(), super.size());
  f.close();

  const auto reopened = FileBackend::Open(dir, SmallPages());
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption()) << reopened.status().ToString();
  EXPECT_NE(reopened.status().ToString().find("version"), std::string::npos);
}

TEST(FileBackendTest, PageSizeMismatchIsInvalidArgument) {
  const std::string dir = ScratchDir("pagesize");
  {
    auto backend = FileBackend::Open(dir, SmallPages()).value();
    backend->CreateFile("data", 1);
  }
  FileBackend::Options other;
  other.page_size_bytes = 256;
  const auto reopened = FileBackend::Open(dir, other);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), Status::Code::kInvalidArgument);
}

TEST(FileBackendTest, TruncatedFileIsCorruption) {
  const std::string dir = ScratchDir("truncated");
  auto backend = FileBackend::Open(dir, SmallPages()).value();
  const uint32_t file = backend->CreateFile("data", 2);
  ASSERT_TRUE(backend->Sync().ok());
  const std::string path = PagePath(*backend, file);
  // Cut the file mid-way through the last page slot: the read comes up
  // short, which must surface as Corruption, not a crash.
  std::error_code ec;
  std::filesystem::resize_file(
      path, FileBackend::SlotOffset(backend->page_size_bytes(), 1) + 7, ec);
  ASSERT_FALSE(ec);
  const Status status = backend->ReadPage({file, 1});
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  // The failed read charges no modeled transfer.
  EXPECT_EQ(backend->stats().pages_read, 0u);
}

TEST(FileBackendTest, BitFlippedPageIsCorruption) {
  const std::string dir = ScratchDir("bitflip");
  auto backend = FileBackend::Open(dir, SmallPages()).value();
  const uint32_t file = backend->CreateFile("data", 3);
  std::vector<uint8_t> payload(128, 0x33);
  ASSERT_TRUE(backend->WritePagePayload({file, 1}, payload).ok());
  ASSERT_TRUE(backend->Sync().ok());

  FlipBit(PagePath(*backend, file),
          FileBackend::SlotOffset(backend->page_size_bytes(), 1) + 17);

  EXPECT_TRUE(backend->ReadPage({file, 0}).ok());
  const Status status = backend->ReadPage({file, 1});
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  // Payload reads hit the same verification.
  std::vector<uint8_t> read_back(128);
  EXPECT_TRUE(backend->ReadPagePayload({file, 1}, read_back).IsCorruption());
  // Neighbouring pages stay readable.
  EXPECT_TRUE(backend->ReadPage({file, 2}).ok());
}

TEST(FileBackendTest, CorruptionPropagatesThroughPinBatch) {
  const std::string dir = ScratchDir("pinbatch");
  auto backend = FileBackend::Open(dir, SmallPages()).value();
  const uint32_t file = backend->CreateFile("data", 6);
  ASSERT_TRUE(backend->Sync().ok());
  FlipBit(PagePath(*backend, file),
          FileBackend::SlotOffset(backend->page_size_bytes(), 4) + 3);

  BufferPool pool(backend.get(), 8);
  const std::vector<PageId> batch = {
      {file, 0}, {file, 1}, {file, 2}, {file, 3}, {file, 4}, {file, 5}};
  const Status status = pool.PinBatch(batch);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  // The PR-1 rollback contract: pins acquired before the failure are
  // released, and the pool's bookkeeping stays structurally sound.
  EXPECT_EQ(pool.PinnedCount(), 0u);
  EXPECT_TRUE(pool.ValidateInvariants().ok());
  // Pages fetched before the corrupt one may remain resident (rollback is
  // not state-neutral), but the pool must still work for clean pages.
  ASSERT_TRUE(pool.Pin({file, 0}).ok());
  pool.Unpin({file, 0});
}

TEST(FileBackendTest, CreateFailureIsStickyNotFatal) {
  const std::string dir = ScratchDir("sticky");
  auto backend = FileBackend::Open(dir, SmallPages()).value();
  // Remove the directory out from under the backend: the next physical
  // create must fail, but CreateFile stays infallible by contract — the
  // error is recorded per-file and returned by every later operation.
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  const uint32_t file = backend->CreateFile("orphan", 2);
  EXPECT_FALSE(backend->FileStatus(file).ok());
  EXPECT_FALSE(backend->ReadPage({file, 0}).ok());
  EXPECT_FALSE(backend->WritePage({file, 0}).ok());
  EXPECT_FALSE(backend->AllocatePages(file, 1).ok());
  // Failed operations charge nothing.
  EXPECT_EQ(backend->stats().pages_read, 0u);
  EXPECT_EQ(backend->stats().pages_written, 0u);
}

}  // namespace
}  // namespace pmjoin
