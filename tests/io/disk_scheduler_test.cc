#include "io/disk_scheduler.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/simulated_disk.h"

namespace pmjoin {
namespace {

TEST(DiskSchedulerTest, EmptyInput) {
  SimulatedDisk disk;
  EXPECT_TRUE(BuildSchedule(disk, {}).empty());
}

TEST(DiskSchedulerTest, CoalescesAdjacentPages) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 10);
  const std::vector<PageRun> runs =
      BuildSchedule(disk, {{f, 3}, {f, 1}, {f, 2}});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].start.page, 1u);
  EXPECT_EQ(runs[0].length, 3u);
}

TEST(DiskSchedulerTest, SplitsNonAdjacent) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 10);
  const std::vector<PageRun> runs =
      BuildSchedule(disk, {{f, 0}, {f, 5}, {f, 6}});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].start.page, 0u);
  EXPECT_EQ(runs[0].length, 1u);
  EXPECT_EQ(runs[1].start.page, 5u);
  EXPECT_EQ(runs[1].length, 2u);
}

TEST(DiskSchedulerTest, Deduplicates) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 10);
  const std::vector<PageRun> runs =
      BuildSchedule(disk, {{f, 4}, {f, 4}, {f, 4}});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].length, 1u);
}

TEST(DiskSchedulerTest, SeparatesFiles) {
  SimulatedDisk disk;
  const uint32_t a = disk.CreateFile("a", 4);
  const uint32_t b = disk.CreateFile("b", 4);
  const std::vector<PageRun> runs =
      BuildSchedule(disk, {{b, 0}, {a, 3}, {a, 2}});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].start.file, a);
  EXPECT_EQ(runs[0].length, 2u);
  EXPECT_EQ(runs[1].start.file, b);
}

TEST(DiskSchedulerTest, ExecuteChargesOneSeekPerRun) {
  SimulatedDisk disk;
  const uint32_t f = disk.CreateFile("f", 100);
  const std::vector<PageRun> runs =
      BuildSchedule(disk, {{f, 0}, {f, 1}, {f, 50}, {f, 51}, {f, 52}});
  ASSERT_TRUE(ExecuteSchedule(&disk, runs).ok());
  EXPECT_EQ(disk.stats().seeks, 2u);
  EXPECT_EQ(disk.stats().pages_read, 5u);
}

TEST(DiskSchedulerTest, SortedOrderMinimizesSeeksVsRandomOrder) {
  // Property: the schedule's seek count never exceeds that of reading the
  // pages in arbitrary order (Seeger '96 optimality on a linear disk).
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    SimulatedDisk scheduled_disk, naive_disk;
    const uint32_t fs = scheduled_disk.CreateFile("f", 1000);
    const uint32_t fn = naive_disk.CreateFile("f", 1000);
    std::vector<PageId> pages;
    for (int i = 0; i < 50; ++i) {
      pages.push_back({fs, static_cast<uint32_t>(rng.Uniform(1000))});
    }
    std::vector<PageId> naive_pages = pages;
    for (PageId& p : naive_pages) p.file = fn;

    ASSERT_TRUE(
        ExecuteSchedule(&scheduled_disk,
                        BuildSchedule(scheduled_disk, pages))
            .ok());
    // Naive: dedupe but keep the random order.
    std::vector<PageId> seen;
    for (const PageId& p : naive_pages) {
      bool dup = false;
      for (const PageId& q : seen) dup |= q == p;
      if (!dup) {
        seen.push_back(p);
        ASSERT_TRUE(naive_disk.ReadPage(p).ok());
      }
    }
    EXPECT_LE(scheduled_disk.stats().seeks, naive_disk.stats().seeks);
    EXPECT_EQ(scheduled_disk.stats().pages_read,
              naive_disk.stats().pages_read);
  }
}

}  // namespace
}  // namespace pmjoin
