#include "io/external_sort.h"
#include "io/simulated_disk.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pmjoin {
namespace {

TEST(ExternalSortPlanTest, EmptyFile) {
  const ExternalSortPlan plan = PlanExternalSort(0, 10);
  EXPECT_EQ(plan.initial_runs, 0u);
  EXPECT_EQ(plan.merge_passes, 0u);
  EXPECT_EQ(plan.page_reads, 0u);
}

TEST(ExternalSortPlanTest, FitsInBufferIsOnePass) {
  const ExternalSortPlan plan = PlanExternalSort(8, 10);
  EXPECT_EQ(plan.initial_runs, 1u);
  EXPECT_EQ(plan.merge_passes, 0u);
  EXPECT_EQ(plan.page_reads, 8u);
  EXPECT_EQ(plan.page_writes, 8u);
}

TEST(ExternalSortPlanTest, TextbookPassCount) {
  // ceil(log_{B-1}(ceil(N/B))) merge passes.
  struct Case {
    uint64_t pages;
    uint32_t buffer;
    uint32_t expected_passes;
  };
  const Case cases[] = {
      {100, 10, 2},    // 10 runs, fan-in 9 → 2 passes.
      {1000, 10, 3},   // 100 runs → 12 → 2 → 1: 3 passes.
      {1000, 100, 1},  // 10 runs, fan-in 99 → 1 pass.
      {81, 4, 3},      // 21 runs, fan-in 3 → 7 → 3 → 1.
      {2, 2, 1},       // 1 run? 2 pages / 2 = 1 run → 0 passes... see below.
  };
  for (const Case& c : cases) {
    const ExternalSortPlan plan = PlanExternalSort(c.pages, c.buffer);
    const uint64_t runs = (c.pages + c.buffer - 1) / c.buffer;
    uint32_t expected = 0;
    uint64_t remaining = runs;
    const uint64_t fan_in = c.buffer > 2 ? c.buffer - 1 : 2;
    while (remaining > 1) {
      remaining = (remaining + fan_in - 1) / fan_in;
      ++expected;
    }
    EXPECT_EQ(plan.merge_passes, expected)
        << "pages=" << c.pages << " buffer=" << c.buffer;
    EXPECT_EQ(plan.page_reads, c.pages * (1 + plan.merge_passes));
  }
}

TEST(ExternalSortPlanTest, TinyBufferClamped) {
  const ExternalSortPlan plan = PlanExternalSort(16, 1);
  EXPECT_EQ(plan.buffer_pages, 2u);
  EXPECT_GT(plan.merge_passes, 0u);
}

TEST(ExternalSortChargeTest, ChargesPlanTransfers) {
  SimulatedDisk disk;
  const IoStats before = disk.stats();
  ASSERT_TRUE(ChargeExternalSort(&disk, 100, 10).ok());
  const IoStats delta = disk.stats().Delta(before);
  const ExternalSortPlan plan = PlanExternalSort(100, 10);
  EXPECT_EQ(delta.pages_read, plan.page_reads);
  EXPECT_EQ(delta.pages_written, plan.page_writes);
  EXPECT_GT(delta.seeks, 0u);
}

TEST(ExternalSortChargeTest, MorePassesMoreIo) {
  SimulatedDisk small_disk, big_disk;
  ASSERT_TRUE(ChargeExternalSort(&small_disk, 500, 4).ok());
  ASSERT_TRUE(ChargeExternalSort(&big_disk, 500, 100).ok());
  EXPECT_GT(small_disk.stats().TotalTransfers(),
            big_disk.stats().TotalTransfers());
}

TEST(ExternalSortChargeTest, ZeroPagesNoIo) {
  SimulatedDisk disk;
  ASSERT_TRUE(ChargeExternalSort(&disk, 0, 8).ok());
  EXPECT_EQ(disk.stats().TotalTransfers(), 0u);
}

}  // namespace
}  // namespace pmjoin
