#include "io/buffer_pool.h"
#include "io/simulated_disk.h"

#include <gtest/gtest.h>

namespace pmjoin {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : file_(disk_.CreateFile("data", 100)) {}

  SimulatedDisk disk_;
  uint32_t file_;
};

TEST_F(BufferPoolTest, MissReadsFromDisk) {
  BufferPool pool(&disk_, 4);
  ASSERT_TRUE(pool.Touch({file_, 0}).ok());
  EXPECT_EQ(disk_.stats().pages_read, 1u);
  EXPECT_TRUE(pool.Contains({file_, 0}));
}

TEST_F(BufferPoolTest, HitCostsNothing) {
  BufferPool pool(&disk_, 4);
  ASSERT_TRUE(pool.Touch({file_, 0}).ok());
  const uint64_t reads = disk_.stats().pages_read;
  ASSERT_TRUE(pool.Touch({file_, 0}).ok());
  EXPECT_EQ(disk_.stats().pages_read, reads);
  EXPECT_EQ(disk_.stats().buffer_hits, 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(&disk_, 3);
  ASSERT_TRUE(pool.Touch({file_, 0}).ok());
  ASSERT_TRUE(pool.Touch({file_, 1}).ok());
  ASSERT_TRUE(pool.Touch({file_, 2}).ok());
  // Refresh page 0, making page 1 the LRU victim.
  ASSERT_TRUE(pool.Touch({file_, 0}).ok());
  ASSERT_TRUE(pool.Touch({file_, 3}).ok());
  EXPECT_TRUE(pool.Contains({file_, 0}));
  EXPECT_FALSE(pool.Contains({file_, 1}));
  EXPECT_TRUE(pool.Contains({file_, 2}));
  EXPECT_TRUE(pool.Contains({file_, 3}));
}

TEST_F(BufferPoolTest, PinnedPagesNotEvicted) {
  BufferPool pool(&disk_, 2);
  ASSERT_TRUE(pool.Pin({file_, 0}).ok());
  ASSERT_TRUE(pool.Touch({file_, 1}).ok());
  ASSERT_TRUE(pool.Touch({file_, 2}).ok());  // Evicts 1, not pinned 0.
  EXPECT_TRUE(pool.Contains({file_, 0}));
  EXPECT_FALSE(pool.Contains({file_, 1}));
  pool.Unpin({file_, 0});
}

TEST_F(BufferPoolTest, AllPinnedIsBufferFull) {
  BufferPool pool(&disk_, 2);
  ASSERT_TRUE(pool.Pin({file_, 0}).ok());
  ASSERT_TRUE(pool.Pin({file_, 1}).ok());
  EXPECT_TRUE(pool.Touch({file_, 2}).IsBufferFull());
  pool.Unpin({file_, 0});
  pool.Unpin({file_, 1});
}

TEST_F(BufferPoolTest, UnpinnedBecomesEvictable) {
  BufferPool pool(&disk_, 2);
  ASSERT_TRUE(pool.Pin({file_, 0}).ok());
  ASSERT_TRUE(pool.Pin({file_, 1}).ok());
  pool.Unpin({file_, 0});
  ASSERT_TRUE(pool.Touch({file_, 2}).ok());
  EXPECT_FALSE(pool.Contains({file_, 0}));
  pool.Unpin({file_, 1});
}

TEST_F(BufferPoolTest, PinCountNesting) {
  BufferPool pool(&disk_, 2);
  ASSERT_TRUE(pool.Pin({file_, 0}).ok());
  ASSERT_TRUE(pool.Pin({file_, 0}).ok());
  pool.Unpin({file_, 0});
  // Still pinned once: not evictable.
  ASSERT_TRUE(pool.Pin({file_, 1}).ok());
  EXPECT_TRUE(pool.Touch({file_, 2}).IsBufferFull());
  pool.Unpin({file_, 0});
  pool.Unpin({file_, 1});
}

TEST_F(BufferPoolTest, PinBatchUsesOptimalSchedule) {
  BufferPool pool(&disk_, 10);
  // Pages 5,6,7 and 20: two runs → two seeks, 4 transfers.
  const std::vector<PageId> batch{{file_, 7}, {file_, 20}, {file_, 5},
                                  {file_, 6}};
  ASSERT_TRUE(pool.PinBatch(batch).ok());
  EXPECT_EQ(disk_.stats().seeks, 2u);
  EXPECT_EQ(disk_.stats().pages_read, 4u);
  pool.UnpinBatch(batch);
}

TEST_F(BufferPoolTest, PinBatchHitsAreFree) {
  BufferPool pool(&disk_, 10);
  ASSERT_TRUE(pool.Touch({file_, 5}).ok());
  const uint64_t reads = disk_.stats().pages_read;
  const std::vector<PageId> batch{{file_, 5}, {file_, 6}};
  ASSERT_TRUE(pool.PinBatch(batch).ok());
  EXPECT_EQ(disk_.stats().pages_read, reads + 1);  // Only page 6.
  EXPECT_GE(disk_.stats().buffer_hits, 1u);
  pool.UnpinBatch(batch);
}

TEST_F(BufferPoolTest, PinBatchTooLargeFails) {
  BufferPool pool(&disk_, 3);
  std::vector<PageId> batch;
  for (uint32_t p = 0; p < 4; ++p) batch.push_back({file_, p});
  EXPECT_FALSE(pool.PinBatch(batch).ok());
  // Rollback: nothing left pinned.
  EXPECT_EQ(pool.PinnedCount(), 0u);
}

TEST_F(BufferPoolTest, CapacityEnforced) {
  BufferPool pool(&disk_, 5);
  for (uint32_t p = 0; p < 20; ++p) ASSERT_TRUE(pool.Touch({file_, p}).ok());
  EXPECT_LE(pool.ResidentCount(), 5u);
}

TEST_F(BufferPoolTest, ClearDropsResidency) {
  BufferPool pool(&disk_, 4);
  ASSERT_TRUE(pool.Touch({file_, 0}).ok());
  ASSERT_TRUE(pool.Clear().ok());
  EXPECT_FALSE(pool.Contains({file_, 0}));
  EXPECT_EQ(pool.ResidentCount(), 0u);
}

TEST_F(BufferPoolTest, ClearWithPinsFails) {
  BufferPool pool(&disk_, 4);
  ASSERT_TRUE(pool.Pin({file_, 0}).ok());
  EXPECT_FALSE(pool.Clear().ok());
  pool.Unpin({file_, 0});
  EXPECT_TRUE(pool.Clear().ok());
}

TEST_F(BufferPoolTest, RereadAfterEvictionCharged) {
  BufferPool pool(&disk_, 2);
  ASSERT_TRUE(pool.Touch({file_, 0}).ok());
  ASSERT_TRUE(pool.Touch({file_, 1}).ok());
  ASSERT_TRUE(pool.Touch({file_, 2}).ok());  // Evicts 0.
  ASSERT_TRUE(pool.Touch({file_, 0}).ok());  // Must re-read.
  EXPECT_EQ(disk_.stats().pages_read, 4u);
}

TEST_F(BufferPoolTest, PinnedBatchRaiiUnpins) {
  BufferPool pool(&disk_, 4);
  {
    std::vector<PageId> batch{{file_, 0}, {file_, 1}};
    ASSERT_TRUE(pool.PinBatch(batch).ok());
    PinnedBatch guard(&pool, std::move(batch));
    EXPECT_EQ(pool.PinnedCount(), 2u);
  }
  EXPECT_EQ(pool.PinnedCount(), 0u);
}


TEST_F(BufferPoolTest, DuplicatePageIdsInOneBatch) {
  BufferPool pool(&disk_, 4);
  const std::vector<PageId> batch{{file_, 3}, {file_, 3}, {file_, 4}};
  ASSERT_TRUE(pool.PinBatch(batch).ok());
  EXPECT_EQ(disk_.stats().pages_read, 2u);  // Page 3 read once.
  pool.UnpinBatch(batch);                   // Unpins each occurrence.
  EXPECT_EQ(pool.PinnedCount(), 0u);
}

}  // namespace
}  // namespace pmjoin
