#ifndef PMJOIN_TESTS_JOIN_TEST_UTIL_H_
#define PMJOIN_TESTS_JOIN_TEST_UTIL_H_

#include <optional>
#include <utility>
#include <vector>

#include "core/joiners.h"
#include "core/plane_sweep.h"
#include "core/prediction_matrix.h"
#include "core/reference_join.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "io/simulated_disk.h"

namespace pmjoin {
namespace testing_util {

/// A small, fully wired two-sided vector join: datasets on a simulated
/// disk, joiner, JoinInput, exact prediction matrix, and the brute-force
/// expected result. Page size is deliberately tiny so even small inputs
/// span many pages.
class SmallVectorJoin {
 public:
  SmallVectorJoin(size_t nr, size_t ns, uint64_t seed, double eps,
                  uint32_t page_bytes = 64, Norm norm = Norm::kL2)
      : eps_(eps), norm_(norm) {
    r_raw_ = GenRoadNetwork(nr, seed);
    s_raw_ = GenRoadNetwork(ns, seed + 1000);
    VectorDataset::Options options;
    options.page_size_bytes = page_bytes;
    r_.emplace(
        VectorDataset::Build(&disk_, "r", r_raw_, options).value());
    s_.emplace(
        VectorDataset::Build(&disk_, "s", s_raw_, options).value());
    joiner_.emplace(&*r_, &*s_, eps, norm, /*self_join=*/false);
    input_.r_file = r_->file_id();
    input_.s_file = s_->file_id();
    input_.r_pages = r_->num_pages();
    input_.s_pages = s_->num_pages();
    input_.self_join = false;
    input_.joiner = &*joiner_;
    matrix_.emplace(BuildPredictionMatrixFlat(
        r_->page_mbrs(), s_->page_mbrs(), eps, norm, nullptr));
  }

  SimulatedDisk& disk() { return disk_; }
  const VectorDataset& r() const { return *r_; }
  const VectorDataset& s() const { return *s_; }
  const JoinInput& input() const { return input_; }
  const PredictionMatrix& matrix() const { return *matrix_; }
  double eps() const { return eps_; }
  Norm norm() const { return norm_; }

  /// Brute-force expected pairs (sorted, unique).
  std::vector<std::pair<uint64_t, uint64_t>> Expected() const {
    CollectingSink sink;
    ReferenceVectorJoin(r_raw_, s_raw_, eps_, norm_, false, &sink);
    return sink.Sorted();
  }

 private:
  SimulatedDisk disk_;
  VectorData r_raw_, s_raw_;
  std::optional<VectorDataset> r_, s_;
  std::optional<VectorPairJoiner> joiner_;
  JoinInput input_;
  std::optional<PredictionMatrix> matrix_;
  double eps_;
  Norm norm_;
};

}  // namespace testing_util
}  // namespace pmjoin

#endif  // PMJOIN_TESTS_JOIN_TEST_UTIL_H_
