#ifndef PMJOIN_TESTS_TEST_UTIL_H_
#define PMJOIN_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/pair_sink.h"
#include "common/rng.h"
#include "geom/mbr.h"
#include "io/file_backend.h"
#include "io/simulated_disk.h"
#include "io/storage_backend.h"

namespace pmjoin {
namespace testing_util {

/// Storage backend factory honoring the PMJOIN_TEST_BACKEND environment
/// variable: unset or "sim" builds a SimulatedDisk; "file" builds a
/// FileBackend over a fresh scratch directory under the gtest temp dir.
/// CI's file-backend job exports PMJOIN_TEST_BACKEND=file so the whole
/// suite re-runs its modeled-I/O assertions against real files — the
/// counters must not change, which is exactly the backend-determinism
/// invariant.
inline std::unique_ptr<StorageBackend> MakeTestBackend(
    DiskModel model = DiskModel(),
    uint32_t page_size_bytes = kDefaultPageSizeBytes) {
  const char* kind = std::getenv("PMJOIN_TEST_BACKEND");
  if (kind == nullptr || std::string_view(kind) != "file")
    return std::make_unique<SimulatedDisk>(model, page_size_bytes);
  static std::atomic<uint64_t> counter{0};
  const std::string dir = ::testing::TempDir() + "pmjoin-backend-" +
                          std::to_string(::getpid()) + "-" +
                          std::to_string(counter.fetch_add(1));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  FileBackend::Options options;
  options.model = model;
  options.page_size_bytes = page_size_bytes;
  auto opened = FileBackend::Open(dir, options);
  PMJOIN_CHECK(opened.ok());
  return std::move(opened).value();
}

/// Shard count honoring the PMJOIN_TEST_SHARDS environment variable:
/// unset, empty, or unparsable means 1 (single-node). CI's sharded job
/// exports PMJOIN_TEST_SHARDS=4 so the whole suite re-runs with the
/// shard coordinator in the loop — pairs and modeled I/O must not
/// change, which is the sharding byte-identity invariant.
inline uint32_t TestShardCount() {
  const char* shards = std::getenv("PMJOIN_TEST_SHARDS");
  if (shards == nullptr) return 1;
  const int parsed = std::atoi(shards);
  return parsed > 1 ? static_cast<uint32_t>(parsed) : 1;
}

/// A random box in [0,1]^dims with side lengths up to `max_side`.
inline Mbr RandomBox(Rng* rng, size_t dims, double max_side = 0.2) {
  std::vector<float> lo(dims), hi(dims);
  for (size_t d = 0; d < dims; ++d) {
    const double a = rng->UniformDouble();
    const double b = a + rng->UniformDouble() * max_side;
    lo[d] = static_cast<float>(a);
    hi[d] = static_cast<float>(b);
  }
  return Mbr::FromBounds(std::move(lo), std::move(hi));
}

/// A random point in [0,1]^dims.
inline std::vector<float> RandomPoint(Rng* rng, size_t dims) {
  std::vector<float> p(dims);
  for (float& v : p) v = static_cast<float>(rng->UniformDouble());
  return p;
}

/// Random symbol string over [0, alphabet).
inline std::vector<uint8_t> RandomString(Rng* rng, size_t length,
                                         uint32_t alphabet) {
  std::vector<uint8_t> s(length);
  for (uint8_t& c : s) c = static_cast<uint8_t>(rng->Uniform(alphabet));
  return s;
}

/// Random float series in [0, 1).
inline std::vector<float> RandomSeries(Rng* rng, size_t length) {
  std::vector<float> s(length);
  for (float& v : s) v = static_cast<float>(rng->UniformDouble());
  return s;
}

/// Sorted, deduplicated pair list of a sink.
inline std::vector<std::pair<uint64_t, uint64_t>> SortedPairs(
    const CollectingSink& sink) {
  return sink.Sorted();
}

}  // namespace testing_util
}  // namespace pmjoin

#endif  // PMJOIN_TESTS_TEST_UTIL_H_
