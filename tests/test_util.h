#ifndef PMJOIN_TESTS_TEST_UTIL_H_
#define PMJOIN_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/pair_sink.h"
#include "common/rng.h"
#include "geom/mbr.h"

namespace pmjoin {
namespace testing_util {

/// A random box in [0,1]^dims with side lengths up to `max_side`.
inline Mbr RandomBox(Rng* rng, size_t dims, double max_side = 0.2) {
  std::vector<float> lo(dims), hi(dims);
  for (size_t d = 0; d < dims; ++d) {
    const double a = rng->UniformDouble();
    const double b = a + rng->UniformDouble() * max_side;
    lo[d] = static_cast<float>(a);
    hi[d] = static_cast<float>(b);
  }
  return Mbr::FromBounds(std::move(lo), std::move(hi));
}

/// A random point in [0,1]^dims.
inline std::vector<float> RandomPoint(Rng* rng, size_t dims) {
  std::vector<float> p(dims);
  for (float& v : p) v = static_cast<float>(rng->UniformDouble());
  return p;
}

/// Random symbol string over [0, alphabet).
inline std::vector<uint8_t> RandomString(Rng* rng, size_t length,
                                         uint32_t alphabet) {
  std::vector<uint8_t> s(length);
  for (uint8_t& c : s) c = static_cast<uint8_t>(rng->Uniform(alphabet));
  return s;
}

/// Random float series in [0, 1).
inline std::vector<float> RandomSeries(Rng* rng, size_t length) {
  std::vector<float> s(length);
  for (float& v : s) v = static_cast<float>(rng->UniformDouble());
  return s;
}

/// Sorted, deduplicated pair list of a sink.
inline std::vector<std::pair<uint64_t, uint64_t>> SortedPairs(
    const CollectingSink& sink) {
  return sink.Sorted();
}

}  // namespace testing_util
}  // namespace pmjoin

#endif  // PMJOIN_TESTS_TEST_UTIL_H_
