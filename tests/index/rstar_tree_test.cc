#include "index/rstar_tree.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/simulated_disk.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::RandomBox;
using testing_util::RandomPoint;

RStarTree::Options SmallNodes() {
  RStarTree::Options options;
  options.max_entries = 8;
  options.min_entries = 3;
  options.reinsert_count = 2;
  return options;
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree(2);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<uint32_t> out;
  tree.RangeSearch(Mbr::FromBounds({0.0f, 0.0f}, {1.0f, 1.0f}), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RStarTreeTest, SingleInsert) {
  RStarTree tree(2, SmallNodes());
  tree.Insert(Mbr::FromBounds({0.1f, 0.1f}, {0.2f, 0.2f}), 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  std::vector<uint32_t> out;
  tree.RangeSearch(Mbr::FromBounds({0.0f, 0.0f}, {1.0f, 1.0f}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
}

TEST(RStarTreeTest, InsertManyKeepsInvariants) {
  Rng rng(3);
  RStarTree tree(2, SmallNodes());
  for (uint32_t i = 0; i < 500; ++i) {
    tree.Insert(RandomBox(&rng, 2, 0.05), i);
    if (i % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "at insert " << i;
    }
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GT(tree.height(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, RangeSearchMatchesBruteForce) {
  Rng rng(5);
  RStarTree tree(2, SmallNodes());
  std::vector<Mbr> boxes;
  for (uint32_t i = 0; i < 300; ++i) {
    boxes.push_back(RandomBox(&rng, 2, 0.1));
    tree.Insert(boxes.back(), i);
  }
  for (int trial = 0; trial < 30; ++trial) {
    const Mbr query = RandomBox(&rng, 2, 0.4);
    std::vector<uint32_t> got;
    tree.RangeSearch(query, &got);
    std::sort(got.begin(), got.end());
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].Intersects(query)) expected.push_back(i);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(RStarTreeTest, DistanceSearchMatchesBruteForce) {
  Rng rng(7);
  RStarTree tree(2, SmallNodes());
  std::vector<Mbr> boxes;
  for (uint32_t i = 0; i < 200; ++i) {
    boxes.push_back(RandomBox(&rng, 2, 0.05));
    tree.Insert(boxes.back(), i);
  }
  for (int trial = 0; trial < 20; ++trial) {
    const Mbr query = RandomBox(&rng, 2, 0.05);
    const double eps = rng.UniformDouble() * 0.2;
    std::vector<uint32_t> got;
    tree.DistanceSearch(query, eps, Norm::kL2, &got);
    std::sort(got.begin(), got.end());
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].MinDist(query, Norm::kL2) <= eps) expected.push_back(i);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(RStarTreeTest, BulkLoadInvariantsAndSearch) {
  Rng rng(9);
  std::vector<RStarTree::Entry> entries;
  std::vector<Mbr> boxes;
  for (uint32_t i = 0; i < 1000; ++i) {
    boxes.push_back(RandomBox(&rng, 2, 0.02));
    entries.push_back(RStarTree::Entry{boxes.back(), i});
  }
  RStarTree tree = RStarTree::BulkLoadStr(2, entries, SmallNodes());
  EXPECT_EQ(tree.size(), 1000u);
  // Bulk load packs nodes full, so underflow is possible only at slab
  // boundaries; the structural invariants we can demand are coverage and
  // reachability — verified via search equivalence.
  for (int trial = 0; trial < 20; ++trial) {
    const Mbr query = RandomBox(&rng, 2, 0.3);
    std::vector<uint32_t> got;
    tree.RangeSearch(query, &got);
    std::sort(got.begin(), got.end());
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].Intersects(query)) expected.push_back(i);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(RStarTreeTest, BulkLoadReachesAllIds) {
  Rng rng(11);
  std::vector<RStarTree::Entry> entries;
  for (uint32_t i = 0; i < 500; ++i) {
    entries.push_back(RStarTree::Entry{RandomBox(&rng, 3, 0.1), i});
  }
  RStarTree tree = RStarTree::BulkLoadStr(3, entries);
  std::vector<uint32_t> got;
  Mbr everything = Mbr::FromBounds({-10.0f, -10.0f, -10.0f},
                                   {10.0f, 10.0f, 10.0f});
  tree.RangeSearch(everything, &got);
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), 500u);
  for (uint32_t i = 0; i < 500; ++i) EXPECT_EQ(got[i], i);
}

TEST(RStarTreeTest, BulkLoadHeightLogarithmic) {
  Rng rng(13);
  std::vector<RStarTree::Entry> entries;
  for (uint32_t i = 0; i < 5000; ++i) {
    entries.push_back(RStarTree::Entry{RandomBox(&rng, 2, 0.01), i});
  }
  RStarTree::Options options;  // Fanout 64.
  RStarTree tree = RStarTree::BulkLoadStr(2, entries, options);
  // 5000 / 64 = 79 leaves, / 64 → 2 level-1 nodes, → height 3.
  EXPECT_LE(tree.height(), 3u);
}

TEST(RStarTreeTest, DuplicatePointsHandled) {
  RStarTree tree(2, SmallNodes());
  const Mbr box = Mbr::FromBounds({0.5f, 0.5f}, {0.5f, 0.5f});
  for (uint32_t i = 0; i < 100; ++i) tree.Insert(box, i);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<uint32_t> got;
  tree.RangeSearch(box, &got);
  EXPECT_EQ(got.size(), 100u);
}

TEST(RStarTreeTest, AttachFileSizesNodeFile) {
  Rng rng(17);
  std::vector<RStarTree::Entry> entries;
  for (uint32_t i = 0; i < 300; ++i) {
    entries.push_back(RStarTree::Entry{RandomBox(&rng, 2), i});
  }
  RStarTree tree = RStarTree::BulkLoadStr(2, entries, SmallNodes());
  SimulatedDisk disk;
  tree.AttachFile(&disk, "tree.idx");
  ASSERT_TRUE(tree.file_id().has_value());
  EXPECT_EQ(disk.file(*tree.file_id()).num_pages, tree.NumNodes());
}

TEST(RStarTreeTest, HighDimensionalInserts) {
  Rng rng(19);
  RStarTree tree(8, SmallNodes());
  for (uint32_t i = 0; i < 200; ++i) {
    tree.Insert(Mbr::FromPoint(RandomPoint(&rng, 8)), i);
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<uint32_t> got;
  std::vector<float> lo(8, -1.0f), hi(8, 2.0f);
  tree.RangeSearch(Mbr::FromBounds(lo, hi), &got);
  EXPECT_EQ(got.size(), 200u);
}

TEST(RStarTreeTest, ClusteredInsertionQuality) {
  // Overlap between sibling leaf MBRs should stay modest on clustered
  // data — a smoke test that the R* split/reinsert heuristics engage.
  Rng rng(23);
  RStarTree tree(2, SmallNodes());
  for (uint32_t i = 0; i < 400; ++i) {
    const double cx = (i % 4) * 0.25 + 0.1;
    const double cy = (i / 4 % 4) * 0.25 + 0.1;
    std::vector<float> p{static_cast<float>(cx + rng.Gaussian(0, 0.01)),
                         static_cast<float>(cy + rng.Gaussian(0, 0.01))};
    tree.Insert(Mbr::FromPoint(p), i);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Query a small region: should touch far fewer than all leaves.
  std::vector<uint32_t> got;
  tree.RangeSearch(Mbr::FromBounds({0.05f, 0.05f}, {0.15f, 0.15f}), &got);
  EXPECT_LT(got.size(), 100u);
  EXPECT_GT(got.size(), 0u);
}


TEST(RStarTreeTest, MixedBulkLoadThenInserts) {
  // A bulk-loaded tree must keep its invariants and search correctness
  // through subsequent incremental inserts (the paper's setting: index
  // built ahead, data keeps arriving).
  Rng rng(29);
  std::vector<RStarTree::Entry> entries;
  std::vector<Mbr> boxes;
  for (uint32_t i = 0; i < 300; ++i) {
    boxes.push_back(RandomBox(&rng, 2, 0.05));
    entries.push_back(RStarTree::Entry{boxes.back(), i});
  }
  RStarTree tree = RStarTree::BulkLoadStr(2, entries, SmallNodes());
  for (uint32_t i = 300; i < 600; ++i) {
    boxes.push_back(RandomBox(&rng, 2, 0.05));
    tree.Insert(boxes.back(), i);
  }
  EXPECT_EQ(tree.size(), 600u);
  for (int trial = 0; trial < 20; ++trial) {
    const Mbr query = RandomBox(&rng, 2, 0.3);
    std::vector<uint32_t> got;
    tree.RangeSearch(query, &got);
    std::sort(got.begin(), got.end());
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].Intersects(query)) expected.push_back(i);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(RStarTreeTest, SequentialIdsInsertedInOrder) {
  // Monotone insertion order (sorted data) is a classic R-tree stress:
  // every split happens at the same frontier.
  RStarTree tree(1, SmallNodes());
  for (uint32_t i = 0; i < 400; ++i) {
    const float x = static_cast<float>(i) * 0.01f;
    tree.Insert(Mbr::FromBounds({x}, {x + 0.005f}), i);
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<uint32_t> got;
  tree.RangeSearch(Mbr::FromBounds({-1.0f}, {10.0f}), &got);
  EXPECT_EQ(got.size(), 400u);
}

}  // namespace
}  // namespace pmjoin
