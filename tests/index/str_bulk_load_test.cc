#include "index/str_bulk_load.h"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::RandomBox;

TEST(StrPackTest, EmptyInput) {
  EXPECT_TRUE(StrPack({}, 4).empty());
}

TEST(StrPackTest, SingleGroupWhenSmall) {
  Rng rng(3);
  std::vector<Mbr> items;
  for (int i = 0; i < 4; ++i) items.push_back(RandomBox(&rng, 2));
  const auto groups = StrPack(items, 10);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 4u);
}

class StrPackPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(StrPackPropertyTest, PartitionIsExactCover) {
  const auto [n, capacity] = GetParam();
  Rng rng(5 + n);
  std::vector<Mbr> items;
  for (size_t i = 0; i < n; ++i) items.push_back(RandomBox(&rng, 3));
  const auto groups = StrPack(items, capacity);

  std::set<uint32_t> seen;
  for (const auto& g : groups) {
    EXPECT_LE(g.size(), capacity);
    EXPECT_FALSE(g.empty());
    for (uint32_t idx : g) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
      EXPECT_LT(idx, n);
    }
  }
  EXPECT_EQ(seen.size(), n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, StrPackPropertyTest,
    ::testing::Values(std::make_pair<size_t, size_t>(1, 4),
                      std::make_pair<size_t, size_t>(10, 4),
                      std::make_pair<size_t, size_t>(100, 8),
                      std::make_pair<size_t, size_t>(1000, 64),
                      std::make_pair<size_t, size_t>(257, 16)));

TEST(StrPackTest, SpatialLocalityBeatsRandomGrouping) {
  // The packed groups' total MBR area should be far below a random
  // partition's — that is STR's purpose.
  Rng rng(11);
  std::vector<Mbr> items;
  for (int i = 0; i < 500; ++i) items.push_back(RandomBox(&rng, 2, 0.01));
  const size_t capacity = 25;
  const auto groups = StrPack(items, capacity);

  auto total_area = [&items](const std::vector<std::vector<uint32_t>>& gs) {
    double area = 0.0;
    for (const auto& g : gs) {
      Mbr cover(2);
      for (uint32_t i : g) cover.Expand(items[i]);
      area += cover.Area();
    }
    return area;
  };

  std::vector<uint32_t> shuffled(items.size());
  std::iota(shuffled.begin(), shuffled.end(), 0u);
  rng.Shuffle(shuffled);
  std::vector<std::vector<uint32_t>> random_groups;
  for (size_t i = 0; i < shuffled.size(); i += capacity) {
    random_groups.emplace_back(
        shuffled.begin() + i,
        shuffled.begin() + std::min(i + capacity, shuffled.size()));
  }
  EXPECT_LT(total_area(groups), 0.5 * total_area(random_groups));
}

TEST(StrPackTest, DeterministicAcrossRuns) {
  Rng rng1(13), rng2(13);
  std::vector<Mbr> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(RandomBox(&rng1, 2));
    b.push_back(RandomBox(&rng2, 2));
  }
  EXPECT_EQ(StrPack(a, 10), StrPack(b, 10));
}

TEST(StrPackTest, HighDimensional) {
  Rng rng(17);
  std::vector<Mbr> items;
  for (int i = 0; i < 200; ++i) items.push_back(RandomBox(&rng, 16));
  const auto groups = StrPack(items, 32);
  size_t covered = 0;
  for (const auto& g : groups) covered += g.size();
  EXPECT_EQ(covered, items.size());
}

}  // namespace
}  // namespace pmjoin
