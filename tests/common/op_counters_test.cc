#include "common/op_counters.h"

#include <gtest/gtest.h>

#include "common/cost_model.h"

namespace pmjoin {
namespace {

TEST(OpCountersTest, DefaultZero) {
  OpCounters ops;
  EXPECT_EQ(ops.distance_terms, 0u);
  EXPECT_EQ(ops.filter_checks, 0u);
  EXPECT_EQ(ops.edit_cells, 0u);
  EXPECT_EQ(ops.mbr_tests, 0u);
  EXPECT_EQ(ops.cluster_ops, 0u);
  EXPECT_EQ(ops.result_pairs, 0u);
}

TEST(OpCountersTest, Accumulate) {
  OpCounters a, b;
  a.distance_terms = 10;
  a.edit_cells = 3;
  b.distance_terms = 5;
  b.result_pairs = 2;
  a += b;
  EXPECT_EQ(a.distance_terms, 15u);
  EXPECT_EQ(a.edit_cells, 3u);
  EXPECT_EQ(a.result_pairs, 2u);
}

TEST(OpCountersTest, Delta) {
  OpCounters start;
  start.mbr_tests = 7;
  OpCounters now = start;
  now.mbr_tests = 12;
  now.cluster_ops = 4;
  const OpCounters d = now.Delta(start);
  EXPECT_EQ(d.mbr_tests, 5u);
  EXPECT_EQ(d.cluster_ops, 4u);
}

TEST(OpCountersTest, ResetClearsAll) {
  OpCounters ops;
  ops.filter_checks = 99;
  ops.Reset();
  EXPECT_EQ(ops.filter_checks, 0u);
}

TEST(OpCountersTest, ToStringMentionsFields) {
  OpCounters ops;
  ops.distance_terms = 42;
  EXPECT_NE(ops.ToString().find("dist_terms=42"), std::string::npos);
}

TEST(ShardedOpCountersTest, TotalSumsShards) {
  ShardedOpCounters sharded(3);
  sharded.shard(0)->distance_terms = 10;
  sharded.shard(1)->distance_terms = 5;
  sharded.shard(1)->result_pairs = 2;
  sharded.shard(2)->mbr_tests = 7;
  const OpCounters total = sharded.Total();
  EXPECT_EQ(total.distance_terms, 15u);
  EXPECT_EQ(total.result_pairs, 2u);
  EXPECT_EQ(total.mbr_tests, 7u);
}

TEST(ShardedOpCountersTest, DrainIntoAggregatesAndResets) {
  ShardedOpCounters sharded(2);
  sharded.shard(0)->edit_cells = 4;
  sharded.shard(1)->edit_cells = 6;
  OpCounters total;
  total.edit_cells = 1;
  sharded.DrainInto(&total);
  EXPECT_EQ(total.edit_cells, 11u);
  EXPECT_EQ(sharded.Total(), OpCounters());
  // Null target discards (the executor's ops == nullptr case).
  sharded.shard(0)->edit_cells = 3;
  sharded.DrainInto(nullptr);
  EXPECT_EQ(sharded.Total(), OpCounters());
}

TEST(ShardedOpCountersTest, AggregationIsPartitionInvariant) {
  // Distributing the same charges across different shard counts must
  // produce the same total — the property the parallel executor's
  // per-thread accounting rests on.
  ShardedOpCounters a(2), b(5);
  for (int i = 0; i < 10; ++i) {
    a.shard(i % 2)->distance_terms += 100 + i;
    b.shard(i % 5)->distance_terms += 100 + i;
  }
  EXPECT_EQ(a.Total(), b.Total());
}

TEST(CpuCostModelTest, SecondsLinearInCounts) {
  CpuCostModel model;
  OpCounters ops;
  ops.distance_terms = 1000;
  const double once = model.Seconds(ops);
  ops.distance_terms = 2000;
  EXPECT_DOUBLE_EQ(model.Seconds(ops), 2.0 * once);
}

TEST(CpuCostModelTest, JoinSecondsExcludesPreprocess) {
  CpuCostModel model;
  OpCounters ops;
  ops.distance_terms = 1000;
  ops.cluster_ops = 500;
  EXPECT_GT(model.Seconds(ops), model.JoinSeconds(ops));
  EXPECT_DOUBLE_EQ(model.JoinSeconds(ops) + model.PreprocessSeconds(ops),
                   model.Seconds(ops));
}

TEST(CpuCostModelTest, PreprocessOnlyCountsClusterOps) {
  CpuCostModel model;
  OpCounters ops;
  ops.distance_terms = 12345;
  EXPECT_DOUBLE_EQ(model.PreprocessSeconds(ops), 0.0);
  ops.cluster_ops = 10;
  EXPECT_GT(model.PreprocessSeconds(ops), 0.0);
}

}  // namespace
}  // namespace pmjoin
