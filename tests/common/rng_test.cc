#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace pmjoin {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 25);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng rng(0);
  // Must not be stuck on zero output.
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) any_nonzero |= rng.Next() != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianMeanStddev) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleDeterministic) {
  std::vector<int> a(50), b(50);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng r1(37), r2(37);
  r1.Shuffle(a);
  r2.Shuffle(b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pmjoin
