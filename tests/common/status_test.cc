#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace pmjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCodesMatchPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::BufferFull("x").IsBufferFull());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ErrorsAreNotOk) {
  EXPECT_FALSE(Status::IoError("disk on fire").ok());
  EXPECT_FALSE(Status::Internal("").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::IoError("page 12 out of bounds").ToString(),
            "IoError: page 12 out of bounds");
  EXPECT_EQ(Status::NotFound("").ToString(), "NotFound");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::Corruption("bad node");
  Status b = a;
  EXPECT_TRUE(b.IsCorruption());
  EXPECT_EQ(b.message(), "bad node");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::OutOfRange("boom"); };
  auto outer = [&inner]() -> Status {
    PMJOIN_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsOutOfRange());
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto inner = []() { return Status::OK(); };
  auto outer = [&inner]() -> Status {
    PMJOIN_RETURN_IF_ERROR(inner());
    return Status::NotFound("reached end");
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, MoveOnlyType) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 7);
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace pmjoin
