#include "common/sync.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pmjoin {
namespace {

TEST(MutexTest, ExposesRankAndName) {
  Mutex mu(lock_rank::kLeaf, "test::mu");
  EXPECT_EQ(mu.rank(), lock_rank::kLeaf);
  EXPECT_STREQ(mu.name(), "test::mu");
}

TEST(MutexTest, MutualExclusionAcrossThreads) {
  Mutex mu(lock_rank::kLeaf, "counter::mu");
  int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, MutexLockReleasesOnScopeExit) {
  Mutex mu(lock_rank::kLeaf, "scope::mu");
  {
    MutexLock lock(&mu);
  }
  // Re-acquiring on the same thread only succeeds if the scope above
  // released; a leaked hold would deadlock (or rank-abort under paranoid).
  MutexLock again(&mu);
}

TEST(CondVarTest, WaitObservesNotifiedPredicate) {
  Mutex mu(lock_rank::kLeaf, "cv::mu");
  CondVar cv;
  bool ready = false;
  int64_t observed = -1;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = 42;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu(lock_rank::kLeaf, "cvall::mu");
  CondVar cv;
  bool released = false;
  int64_t awake = 0;
  constexpr int kWaiters = 3;

  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&] {
      MutexLock lock(&mu);
      while (!released) cv.Wait(&mu);
      ++awake;
    });
  }
  {
    MutexLock lock(&mu);
    released = true;
  }
  cv.NotifyAll();
  for (std::thread& t : threads) t.join();

  MutexLock lock(&mu);
  EXPECT_EQ(awake, kWaiters);
}

TEST(LockRankTest, OrderedAcquisitionIsSilent) {
  // The real hierarchy in miniature: strictly increasing ranks may nest
  // freely, under paranoid builds and plain builds alike.
  Mutex a(lock_rank::kServer, "rank::a");
  Mutex b(lock_rank::kQueryQueue, "rank::b");
  Mutex c(lock_rank::kMetricsRegistry, "rank::c");
  MutexLock la(&a);
  MutexLock lb(&b);
  MutexLock lc(&c);
}

TEST(LockRankTest, ReacquisitionAfterReleaseIsSilent) {
  Mutex a(lock_rank::kServer, "rank::a");
  Mutex b(lock_rank::kQueryQueue, "rank::b");
  for (int i = 0; i < 3; ++i) {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  // Dropping back down is fine once the higher lock is released.
  {
    MutexLock lb(&b);
  }
  MutexLock la(&a);
}

#ifdef PMJOIN_PARANOID

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, InvertedAcquisitionAborts) {
  // Seeded A->B / B->A inversion: taking the low-rank lock while holding
  // the high-rank one is exactly the ordering that can deadlock against a
  // thread doing the documented A->B nesting.
  Mutex a(lock_rank::kServer, "inv::a");
  Mutex b(lock_rank::kQueryQueue, "inv::b");
  EXPECT_DEATH(
      {
        MutexLock lb(&b);
        MutexLock la(&a);
      },
      "lock-rank");
}

TEST(LockRankDeathTest, SameRankAcquisitionAborts) {
  // Two locks of equal rank have no defined order, so nesting them is a
  // latent deadlock; the checker requires strictly increasing ranks.
  Mutex a(lock_rank::kLeaf, "same::a");
  Mutex b(lock_rank::kLeaf, "same::b");
  EXPECT_DEATH(
      {
        MutexLock la(&a);
        MutexLock lb(&b);
      },
      "lock-rank");
}

#endif  // PMJOIN_PARANOID

}  // namespace
}  // namespace pmjoin
