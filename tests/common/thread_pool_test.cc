#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace pmjoin {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);

  std::atomic<uint64_t> sum{0};
  WaitGroup wg;
  constexpr int kTasks = 1000;
  wg.Add(kTasks);
  for (int i = 1; i <= kTasks; ++i) {
    pool.Submit([&sum, &wg, i] {
      sum.fetch_add(static_cast<uint64_t>(i), std::memory_order_relaxed);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(sum.load(), uint64_t(kTasks) * (kTasks + 1) / 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  WaitGroup wg;
  wg.Add(1);
  bool ran = false;
  pool.Submit([&] {
    ran = true;
    wg.Done();
  });
  wg.Wait();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, WaitGroupMakesWorkerWritesVisible) {
  // Non-atomic per-slot writes synchronized only by the WaitGroup: the
  // executor relies on exactly this pattern for its sink/counter shards.
  ThreadPool pool(4);
  std::vector<uint64_t> slots(64, 0);
  WaitGroup wg;
  wg.Add(static_cast<uint32_t>(slots.size()));
  for (size_t i = 0; i < slots.size(); ++i) {
    pool.Submit([&slots, &wg, i] {
      slots[i] = i * i;
      wg.Done();
    });
  }
  wg.Wait();
  for (size_t i = 0; i < slots.size(); ++i) EXPECT_EQ(slots[i], i * i);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    WaitGroup wg;
    wg.Add(16);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&] {
        count.fetch_add(1, std::memory_order_relaxed);
        wg.Done();
      });
    }
    wg.Wait();
    EXPECT_EQ(count.load(), 16);
  }
}

}  // namespace
}  // namespace pmjoin
