#include "common/check.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace pmjoin {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  PMJOIN_CHECK(1 + 1 == 2);
  PMJOIN_CHECK(true, "detail ", 42, " never rendered");
  PMJOIN_CHECK_OK(Status::OK());
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(PMJOIN_CHECK(false), "PMJOIN_CHECK failed");
}

TEST(CheckDeathTest, FailingCheckRendersDetail) {
  EXPECT_DEATH(PMJOIN_CHECK(2 < 1, "got ", 2, " vs ", 1),
               "got 2 vs 1");
}

TEST(CheckDeathTest, FailingCheckOkRendersStatus) {
  EXPECT_DEATH(PMJOIN_CHECK_OK(Status::Internal("seeded violation")),
               "seeded violation");
}

TEST(CheckTest, DcheckMatchesBuildMode) {
#ifdef PMJOIN_PARANOID
  EXPECT_DEATH(PMJOIN_DCHECK(false, "paranoid audit"), "paranoid audit");
  EXPECT_DEATH(PMJOIN_DCHECK_OK(Status::Internal("paranoid status")),
               "paranoid status");
#else
  // Compiled to nothing: the condition must not even be evaluated.
  bool evaluated = false;
  auto touch = [&evaluated] {
    evaluated = true;
    return false;
  };
  PMJOIN_DCHECK(touch());
  PMJOIN_DCHECK_OK(
      (evaluated = true, Status::Internal("never constructed")));
  EXPECT_FALSE(evaluated);
#endif
}

}  // namespace
}  // namespace pmjoin
