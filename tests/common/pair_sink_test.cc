#include "common/pair_sink.h"

#include <gtest/gtest.h>

namespace pmjoin {
namespace {

TEST(CountingSinkTest, Counts) {
  CountingSink sink;
  sink.OnPair(1, 2);
  sink.OnPair(1, 3);
  EXPECT_EQ(sink.count(), 2u);
}

TEST(CollectingSinkTest, SortedDeduplicates) {
  CollectingSink sink;
  sink.OnPair(3, 4);
  sink.OnPair(1, 2);
  sink.OnPair(3, 4);
  EXPECT_EQ(sink.pairs().size(), 3u);
  const auto sorted = sink.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  const std::pair<uint64_t, uint64_t> first{1, 2}, second{3, 4};
  EXPECT_EQ(sorted[0], first);
  EXPECT_EQ(sorted[1], second);
}

TEST(SemiJoinSinkTest, KeepsDistinctLeftIds) {
  SemiJoinSink sink;
  sink.OnPair(7, 1);
  sink.OnPair(7, 2);
  sink.OnPair(3, 9);
  EXPECT_EQ(sink.left_ids().size(), 2u);
  EXPECT_EQ(sink.Sorted(), (std::vector<uint64_t>{3, 7}));
}

TEST(SemiJoinSinkTest, EmptyIsEmpty) {
  SemiJoinSink sink;
  EXPECT_TRUE(sink.Sorted().empty());
}

}  // namespace
}  // namespace pmjoin
