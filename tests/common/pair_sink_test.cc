#include "common/pair_sink.h"

#include <gtest/gtest.h>

namespace pmjoin {
namespace {

TEST(CountingSinkTest, Counts) {
  CountingSink sink;
  sink.OnPair(1, 2);
  sink.OnPair(1, 3);
  EXPECT_EQ(sink.count(), 2u);
}

TEST(CollectingSinkTest, SortedDeduplicates) {
  CollectingSink sink;
  sink.OnPair(3, 4);
  sink.OnPair(1, 2);
  sink.OnPair(3, 4);
  EXPECT_EQ(sink.pairs().size(), 3u);
  const auto sorted = sink.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  const std::pair<uint64_t, uint64_t> first{1, 2}, second{3, 4};
  EXPECT_EQ(sorted[0], first);
  EXPECT_EQ(sorted[1], second);
}

TEST(SemiJoinSinkTest, KeepsDistinctLeftIds) {
  SemiJoinSink sink;
  sink.OnPair(7, 1);
  sink.OnPair(7, 2);
  sink.OnPair(3, 9);
  EXPECT_EQ(sink.left_ids().size(), 2u);
  EXPECT_EQ(sink.Sorted(), (std::vector<uint64_t>{3, 7}));
}

TEST(SemiJoinSinkTest, EmptyIsEmpty) {
  SemiJoinSink sink;
  EXPECT_TRUE(sink.Sorted().empty());
}

TEST(ShardedPairSinkTest, DrainPreservesShardOrder) {
  ShardedPairSink sharded(3);
  sharded.shard(1)->OnPair(10, 11);
  sharded.shard(0)->OnPair(1, 2);
  sharded.shard(0)->OnPair(3, 4);
  sharded.shard(2)->OnPair(20, 21);
  EXPECT_EQ(sharded.BufferedCount(), 4u);

  CollectingSink out;
  sharded.Drain(&out);
  const std::vector<std::pair<uint64_t, uint64_t>> expected{
      {1, 2}, {3, 4}, {10, 11}, {20, 21}};
  EXPECT_EQ(out.pairs(), expected);
  // Drain clears the buffers for reuse on the next cluster.
  EXPECT_EQ(sharded.BufferedCount(), 0u);
}

TEST(ShardedPairSinkTest, DrainSortedIsShardingInvariant) {
  ShardedPairSink a(2), b(4);
  a.shard(1)->OnPair(5, 6);
  a.shard(0)->OnPair(9, 1);
  a.shard(0)->OnPair(2, 2);
  b.shard(3)->OnPair(2, 2);
  b.shard(0)->OnPair(5, 6);
  b.shard(2)->OnPair(9, 1);

  CollectingSink out_a, out_b;
  a.DrainSorted(&out_a);
  b.DrainSorted(&out_b);
  EXPECT_EQ(out_a.pairs(), out_b.pairs());
  const std::pair<uint64_t, uint64_t> first{2, 2};
  EXPECT_EQ(out_a.pairs().front(), first);
}

TEST(ShardedPairSinkTest, ZeroShardsClampedToOne) {
  ShardedPairSink sharded(0);
  EXPECT_EQ(sharded.num_shards(), 1u);
  sharded.shard(0)->OnPair(1, 1);
  CountingSink out;
  sharded.Drain(&out);
  EXPECT_EQ(out.count(), 1u);
}

}  // namespace
}  // namespace pmjoin
