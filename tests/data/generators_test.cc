#include "data/generators.h"

#include "common/rng.h"
#include "io/simulated_disk.h"
#include "seq/edit_distance.h"
#include "seq/sequence_store.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace pmjoin {
namespace {

TEST(GeneratorsTest, RoadNetworkShapeAndBounds) {
  const VectorData data = GenRoadNetwork(1000, 42);
  EXPECT_EQ(data.dims, 2u);
  EXPECT_EQ(data.count(), 1000u);
  for (float v : data.values) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(GeneratorsTest, RoadNetworkDeterministic) {
  const VectorData a = GenRoadNetwork(500, 7);
  const VectorData b = GenRoadNetwork(500, 7);
  EXPECT_EQ(a.values, b.values);
}

TEST(GeneratorsTest, RoadNetworkSeedsDiffer) {
  const VectorData a = GenRoadNetwork(500, 7);
  const VectorData b = GenRoadNetwork(500, 8);
  EXPECT_NE(a.values, b.values);
}

TEST(GeneratorsTest, RoadNetworkIsSkewed) {
  // Road data clusters along 1-d polyline structures: on a fine grid it
  // must occupy far fewer cells than uniform data of the same size.
  const VectorData roads = GenRoadNetwork(5000, 11);
  const VectorData uniform = GenUniform(5000, 2, 11);
  auto occupied_cells = [](const VectorData& data) {
    std::set<int> occupied;
    for (size_t i = 0; i < data.count(); ++i) {
      const int cx = std::min(39, int(data.record(i)[0] * 40));
      const int cy = std::min(39, int(data.record(i)[1] * 40));
      occupied.insert(cx * 40 + cy);
    }
    return occupied.size();
  };
  EXPECT_LT(occupied_cells(roads), 0.8 * occupied_cells(uniform));
}

TEST(GeneratorsTest, CorrelatedClustersShape) {
  const VectorData data = GenCorrelatedClusters(800, 60, 3);
  EXPECT_EQ(data.dims, 60u);
  EXPECT_EQ(data.count(), 800u);
}

TEST(GeneratorsTest, CorrelatedClustersDeterministic) {
  const VectorData a = GenCorrelatedClusters(200, 16, 5);
  const VectorData b = GenCorrelatedClusters(200, 16, 5);
  EXPECT_EQ(a.values, b.values);
}

TEST(GeneratorsTest, CorrelatedClustersAreClustered) {
  // Mean nearest-cluster-center spread should be far below the uniform
  // expectation; cheap proxy: per-dimension variance of the data is
  // dominated by the center spread, and points repeat cluster structure —
  // test that many points are close to some other point.
  const VectorData data = GenCorrelatedClusters(400, 8, 13, 8, 3);
  int close_pairs = 0;
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = i + 1; j < 100; ++j) {
      double sq = 0.0;
      for (size_t d = 0; d < 8; ++d) {
        const double diff = double(data.record(i)[d]) - data.record(j)[d];
        sq += diff * diff;
      }
      if (std::sqrt(sq) < 0.2) ++close_pairs;
    }
  }
  EXPECT_GT(close_pairs, 50);
}

TEST(GeneratorsTest, UniformBounds) {
  const VectorData data = GenUniform(300, 5, 17);
  EXPECT_EQ(data.count(), 300u);
  for (float v : data.values) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(GeneratorsTest, DnaSequenceAlphabetAndLength) {
  const std::vector<uint8_t> seq = GenDnaSequence(10000, 19);
  EXPECT_EQ(seq.size(), 10000u);
  for (uint8_t c : seq) EXPECT_LT(c, 4);
}

TEST(GeneratorsTest, DnaSequenceDeterministic) {
  EXPECT_EQ(GenDnaSequence(5000, 3), GenDnaSequence(5000, 3));
  EXPECT_NE(GenDnaSequence(5000, 3), GenDnaSequence(5000, 4));
}

/// Packs a 20-mer over a 4-letter alphabet into 40 bits.
uint64_t PackKmer(const std::vector<uint8_t>& seq, size_t start) {
  uint64_t packed = 0;
  for (size_t i = 0; i < 20; ++i) packed = (packed << 2) | seq[start + i];
  return packed;
}

TEST(GeneratorsTest, DnaSequenceHasRepeats) {
  // With planted motifs, some 20-mers must appear more than once; in an
  // i.i.d. uniform sequence of this length a repeated 20-mer is
  // essentially impossible (4^20 >> (5·10^4)² pairs).
  const std::vector<uint8_t> seq = GenDnaSequence(50000, 23, 0.4, 0.0);
  std::set<uint64_t> seen;
  bool found_repeat = false;
  for (size_t i = 0; i + 20 <= seq.size() && !found_repeat; ++i) {
    found_repeat = !seen.insert(PackKmer(seq, i)).second;
  }
  EXPECT_TRUE(found_repeat);
}

TEST(GeneratorsTest, DnaPairSharesMotifs) {
  std::vector<uint8_t> a, b;
  // Small regime blocks so both sequences visit many regimes — motifs are
  // regime-local, so shared motifs require shared regimes.
  GenDnaPair(50000, 40000, 29, &a, &b, 0.4, 0.0, /*regime_scale=*/0.05);
  EXPECT_EQ(a.size(), 50000u);
  EXPECT_EQ(b.size(), 40000u);
  // Cross-sequence repeated 20-mers should exist (shared motif pool).
  std::set<uint64_t> a_kmers;
  for (size_t i = 0; i + 20 <= a.size(); ++i) {
    a_kmers.insert(PackKmer(a, i));
  }
  bool shared = false;
  for (size_t i = 0; i + 20 <= b.size() && !shared; ++i) {
    shared = a_kmers.count(PackKmer(b, i)) > 0;
  }
  EXPECT_TRUE(shared);
}


TEST(GeneratorsTest, DnaPageSummariesAreSelective) {
  // Regression guard for the generator's isochore/drift design: page-level
  // frequency MBRs of a paged store must separate most page pairs, or the
  // prediction matrix degenerates to all-marked and every genome bench
  // collapses (see DESIGN.md, "Synthetic-genome design").
  SimulatedDisk disk;
  const std::vector<uint8_t> seq =
      GenDnaSequence(120000, 0xD7A, 0.30, 0.004, /*regime_scale=*/0.15);
  auto store = StringSequenceStore::Build(&disk, "dna", seq, 4, 500, 1024);
  ASSERT_TRUE(store.ok());
  const uint32_t pages = store->layout().NumPages();
  ASSERT_GT(pages, 50u);
  uint64_t marked = 0;
  for (uint32_t p = 0; p < pages; ++p) {
    for (uint32_t q = 0; q < pages; ++q) {
      if (store->PageLowerBound(p, *store, q) <= 5.0) ++marked;
    }
  }
  const double selectivity =
      double(marked) / (double(pages) * double(pages));
  EXPECT_LT(selectivity, 0.30) << "page summaries no longer selective";
  EXPECT_GT(selectivity, 0.005) << "self-similarity vanished";
}

TEST(GeneratorsTest, DnaWindowsAreNotLowComplexity) {
  // Random (non-repeat) window pairs must NOT fall within a small edit
  // distance — low-complexity text floods the join with bogus results
  // (the regime palette caps letter dominance for this reason).
  const std::vector<uint8_t> seq =
      GenDnaSequence(20000, 7, 0.0, 0.0, /*regime_scale=*/0.15);
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t x = rng.Uniform(seq.size() - 1600);
    const size_t y =
        x + 600 + rng.Uniform(seq.size() - 500 - (x + 600) + 1);
    const size_t ed = BandedEditDistance(
        std::span<const uint8_t>(seq).subspan(x, 500),
        std::span<const uint8_t>(seq).subspan(y, 500), 25);
    EXPECT_GT(ed, 25u) << "windows at " << x << "," << y;
  }
}

TEST(GeneratorsTest, RandomWalkPositiveAndDeterministic) {
  const std::vector<float> w = GenRandomWalk(2000, 31);
  EXPECT_EQ(w.size(), 2000u);
  for (float v : w) EXPECT_GT(v, 0.0f);
  EXPECT_EQ(w, GenRandomWalk(2000, 31));
}

TEST(GeneratorsTest, RandomWalkMoves) {
  const std::vector<float> w = GenRandomWalk(1000, 37);
  const auto [mn, mx] = std::minmax_element(w.begin(), w.end());
  EXPECT_GT(*mx - *mn, 0.1f);
}

}  // namespace
}  // namespace pmjoin
