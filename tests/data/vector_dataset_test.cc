#include "data/vector_dataset.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "io/simulated_disk.h"

namespace pmjoin {
namespace {

VectorDataset::Options PageBytes(uint32_t bytes) {
  VectorDataset::Options options;
  options.page_size_bytes = bytes;
  return options;
}

TEST(VectorDatasetTest, BuildValidation) {
  SimulatedDisk disk;
  VectorData empty;
  empty.dims = 2;
  EXPECT_FALSE(VectorDataset::Build(&disk, "x", empty, PageBytes(4096)).ok());

  VectorData tiny = GenUniform(10, 64, 3);
  // 64 floats = 256 bytes > 128-byte page.
  EXPECT_FALSE(VectorDataset::Build(&disk, "x", tiny, PageBytes(128)).ok());
}

TEST(VectorDatasetTest, PageGeometry) {
  SimulatedDisk disk;
  const VectorData data = GenUniform(1000, 2, 5);
  auto ds = VectorDataset::Build(&disk, "pts", data, PageBytes(256));
  ASSERT_TRUE(ds.ok());
  // 256 / (2·4) = 32 records per page → 32 pages except a short last one.
  EXPECT_EQ(ds->records_per_page(), 32u);
  EXPECT_EQ(ds->num_pages(), 32u);  // 1000/32 = 31.25 → 32 pages.
  uint64_t total = 0;
  for (uint32_t p = 0; p < ds->num_pages(); ++p)
    total += ds->PageRecordCount(p);
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(ds->PageRecordCount(ds->num_pages() - 1), 1000u - 31u * 32u);
}

TEST(VectorDatasetTest, OriginalIdRoundTrip) {
  SimulatedDisk disk;
  const VectorData data = GenRoadNetwork(500, 7);
  auto ds = VectorDataset::Build(&disk, "pts", data, PageBytes(128));
  ASSERT_TRUE(ds.ok());
  std::set<uint64_t> seen;
  for (uint32_t p = 0; p < ds->num_pages(); ++p) {
    for (uint32_t s = 0; s < ds->PageRecordCount(p); ++s) {
      const uint64_t orig = ds->OriginalId(p, s);
      EXPECT_TRUE(seen.insert(orig).second);
      // The stored record equals the original record.
      const std::span<const float> stored = ds->Record(p, s);
      for (size_t d = 0; d < 2; ++d) {
        EXPECT_EQ(stored[d], data.record(orig)[d]);
      }
      // And the reverse lookup agrees.
      const std::span<const float> by_id = ds->RecordByOriginalId(orig);
      EXPECT_EQ(by_id.data(), stored.data());
    }
  }
  EXPECT_EQ(seen.size(), 500u);
}

TEST(VectorDatasetTest, PageBlockIsContiguousPaddedRowMajor) {
  // The PageBlock contract the distance kernels rely on: per page, one
  // contiguous row-major block; stride = PaddedWidth(dims); slot s starts
  // exactly s * stride floats after slot 0; padding (and the tail of a
  // short last page) reads as zeros.
  SimulatedDisk disk;
  for (const size_t dims : {2u, 8u, 13u, 60u}) {
    const VectorData data = GenUniform(333, dims, 19 + dims);
    auto ds = VectorDataset::Build(
        &disk, "blk" + std::to_string(dims), data,
        PageBytes(static_cast<uint32_t>(7 * dims * sizeof(float))));
    ASSERT_TRUE(ds.ok());
    EXPECT_EQ(ds->padded_stride(), kernels::PaddedWidth(dims));
    EXPECT_EQ(ds->padded_stride() % kernels::kLaneFloats, 0u);
    for (uint32_t p = 0; p < ds->num_pages(); ++p) {
      const kernels::BlockView block = ds->PageBlock(p);
      ASSERT_EQ(block.count, ds->PageRecordCount(p));
      ASSERT_EQ(block.stride, ds->padded_stride());
      for (uint32_t s = 0; s < block.count; ++s) {
        const std::span<const float> rec = ds->Record(p, s);
        const float* row = block.data + size_t(s) * block.stride;
        EXPECT_EQ(rec.data(), row) << "page " << p << " slot " << s;
        for (size_t d = dims; d < block.stride; ++d) {
          EXPECT_EQ(row[d], 0.0f) << "padding not zeroed";
        }
      }
      // Trailing slots of a short page are zero out to the lane boundary,
      // so kernels may read whole rows without a tail check.
      for (uint32_t s = block.count; s < ds->records_per_page(); ++s) {
        const float* row = block.data + size_t(s) * block.stride;
        for (size_t d = 0; d < block.stride; ++d) EXPECT_EQ(row[d], 0.0f);
      }
    }
  }
}

TEST(VectorDatasetTest, PageMbrsCoverTheirRecords) {
  SimulatedDisk disk;
  const VectorData data = GenRoadNetwork(800, 9);
  auto ds = VectorDataset::Build(&disk, "pts", data, PageBytes(256));
  ASSERT_TRUE(ds.ok());
  for (uint32_t p = 0; p < ds->num_pages(); ++p) {
    for (uint32_t s = 0; s < ds->PageRecordCount(p); ++s) {
      EXPECT_TRUE(ds->PageMbr(p).Contains(ds->Record(p, s)));
    }
  }
}

TEST(VectorDatasetTest, StrPackingGivesTightPages) {
  // Page MBRs should be dramatically tighter than input-order paging.
  SimulatedDisk disk;
  const VectorData data = GenUniform(2000, 2, 11);
  auto ds = VectorDataset::Build(&disk, "pts", data, PageBytes(256));
  ASSERT_TRUE(ds.ok());
  double packed_area = 0.0;
  for (uint32_t p = 0; p < ds->num_pages(); ++p)
    packed_area += ds->PageMbr(p).Area();

  double naive_area = 0.0;
  const uint32_t rpp = ds->records_per_page();
  for (size_t start = 0; start < data.count(); start += rpp) {
    Mbr m(2);
    for (size_t i = start; i < std::min(data.count(), start + rpp); ++i) {
      m.Expand(std::span<const float>(data.record(i), 2));
    }
    naive_area += m.Area();
  }
  EXPECT_LT(packed_area, 0.3 * naive_area);
}

TEST(VectorDatasetTest, TreeLeafIdsArePages) {
  SimulatedDisk disk;
  const VectorData data = GenUniform(600, 2, 13);
  auto ds = VectorDataset::Build(&disk, "pts", data, PageBytes(256));
  ASSERT_TRUE(ds.ok());
  const RStarTree& tree = ds->tree();
  EXPECT_EQ(tree.size(), ds->num_pages());
  std::vector<uint32_t> pages;
  tree.RangeSearch(Mbr::FromBounds({-1.0f, -1.0f}, {2.0f, 2.0f}), &pages);
  std::sort(pages.begin(), pages.end());
  ASSERT_EQ(pages.size(), ds->num_pages());
  for (uint32_t p = 0; p < pages.size(); ++p) EXPECT_EQ(pages[p], p);
}

TEST(VectorDatasetTest, FilesRegisteredOnDisk) {
  SimulatedDisk disk;
  const VectorData data = GenUniform(100, 4, 17);
  auto ds = VectorDataset::Build(&disk, "vecs", data, PageBytes(512));
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(disk.file(ds->file_id()).num_pages, ds->num_pages());
  EXPECT_EQ(disk.file(ds->file_id()).name, "vecs");
  ASSERT_TRUE(ds->tree().file_id().has_value());
  EXPECT_EQ(disk.file(*ds->tree().file_id()).num_pages,
            ds->tree().NumNodes());
}

TEST(VectorDatasetTest, HighDimensionalBuild) {
  SimulatedDisk disk;
  const VectorData data = GenCorrelatedClusters(500, 60, 19);
  auto ds = VectorDataset::Build(&disk, "landsat", data, PageBytes(4096));
  ASSERT_TRUE(ds.ok());
  // 4096 / 240 = 17 records per page.
  EXPECT_EQ(ds->records_per_page(), 17u);
  EXPECT_EQ(ds->num_pages(), (500u + 16u) / 17u);
}

}  // namespace
}  // namespace pmjoin
