#include "core/shard_planner.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/scheduler.h"

namespace pmjoin {
namespace {

/// Builds a cluster over explicit row/col page ids (entries are synthetic
/// but consistent).
Cluster MakeCluster(std::vector<uint32_t> rows, std::vector<uint32_t> cols) {
  Cluster c;
  c.rows = std::move(rows);
  c.cols = std::move(cols);
  std::sort(c.rows.begin(), c.rows.end());
  std::sort(c.cols.begin(), c.cols.end());
  for (uint32_t r : c.rows) {
    for (uint32_t col : c.cols) c.entries.push_back(MatrixEntry{r, col});
  }
  return c;
}

JoinInput TwoFileInput() {
  JoinInput input;
  input.r_file = 0;
  input.s_file = 1;
  input.r_pages = 100;
  input.s_pages = 100;
  return input;
}

/// The §8 Example-2 clusters used by the scheduler tests.
std::vector<Cluster> ExampleClusters() {
  std::vector<Cluster> clusters;
  clusters.push_back(MakeCluster({1, 2}, {2, 4, 5}));
  clusters.push_back(MakeCluster({1, 2, 3}, {2, 3}));
  clusters.push_back(MakeCluster({4, 5}, {3, 6}));
  clusters.push_back(MakeCluster({0, 3, 6}, {1, 6}));
  clusters.push_back(MakeCluster({6}, {0}));
  return clusters;
}

/// A larger pseudo-random instance: `n` clusters over a `pages`-page pair
/// of files, each touching a few nearby row and col pages so the sharing
/// graph is well connected.
std::vector<Cluster> RandomClusters(uint32_t n, uint32_t pages,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Cluster> clusters;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t base = rng.Uniform(pages - 4);
    std::vector<uint32_t> rows, cols;
    for (uint32_t j = 0; j <= rng.Uniform(3); ++j)
      rows.push_back(base + rng.Uniform(4));
    for (uint32_t j = 0; j <= rng.Uniform(3); ++j)
      cols.push_back(base + rng.Uniform(4));
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    clusters.push_back(MakeCluster(std::move(rows), std::move(cols)));
  }
  return clusters;
}

/// Checks the structural invariants every plan must satisfy.
void CheckPlanInvariants(const ShardPlan& plan,
                         const std::vector<Cluster>& clusters,
                         const JoinInput& input) {
  ASSERT_EQ(plan.owner.size(), clusters.size());
  ASSERT_EQ(plan.shard_clusters.size(), plan.num_shards);
  ASSERT_EQ(plan.shards.size(), plan.num_shards);

  // Every cluster in exactly one shard list, lists ascending and
  // consistent with owner[].
  uint64_t listed = 0;
  for (uint32_t s = 0; s < plan.num_shards; ++s) {
    EXPECT_TRUE(std::is_sorted(plan.shard_clusters[s].begin(),
                               plan.shard_clusters[s].end()));
    for (const uint32_t c : plan.shard_clusters[s]) {
      ASSERT_LT(c, clusters.size());
      EXPECT_EQ(plan.owner[c], s);
      ++listed;
    }
    EXPECT_EQ(plan.shards[s].clusters, plan.shard_clusters[s].size());
  }
  EXPECT_EQ(listed, clusters.size());

  // Cut + kept == total sharing weight, and cut matches owner[].
  const std::vector<SharingEdge> edges =
      BuildSharingGraph(clusters, input, nullptr);
  uint64_t total = 0, cut = 0;
  for (const SharingEdge& e : edges) {
    total += e.weight;
    if (plan.owner[e.a] != plan.owner[e.b]) cut += e.weight;
  }
  EXPECT_EQ(plan.sharing_weight, total);
  EXPECT_EQ(plan.cut_weight, cut);
  EXPECT_LE(plan.cut_weight, plan.sharing_weight);

  // Replication: Σ per-shard distinct pages − global distinct pages.
  uint64_t shard_pages = 0, entries = 0;
  for (const ShardStats& stats : plan.shards) {
    shard_pages += stats.pages;
    entries += stats.entries;
  }
  EXPECT_EQ(plan.replicated_pages, shard_pages - plan.distinct_pages);
  uint64_t marked = 0;
  for (const Cluster& c : clusters) marked += c.entries.size();
  EXPECT_EQ(entries, marked);

  if (!clusters.empty()) EXPECT_GE(plan.balance_ratio, 1.0);
}

TEST(ShardPlannerTest, SingleShardKeepsAllSharing) {
  const std::vector<Cluster> clusters = ExampleClusters();
  const JoinInput input = TwoFileInput();
  const ShardPlan plan = PlanShards(clusters, input, 1);
  CheckPlanInvariants(plan, clusters, input);
  EXPECT_EQ(plan.num_shards, 1u);
  EXPECT_EQ(plan.cut_weight, 0u);
  EXPECT_EQ(plan.replicated_pages, 0u);
  EXPECT_DOUBLE_EQ(plan.balance_ratio, 1.0);
  for (const uint32_t owner : plan.owner) EXPECT_EQ(owner, 0u);
  EXPECT_EQ(plan.shards[0].pages, plan.distinct_pages);
}

TEST(ShardPlannerTest, ZeroShardsMeansOne) {
  const std::vector<Cluster> clusters = ExampleClusters();
  const ShardPlan plan = PlanShards(clusters, TwoFileInput(), 0);
  EXPECT_EQ(plan.num_shards, 1u);
  EXPECT_EQ(plan.cut_weight, 0u);
}

TEST(ShardPlannerTest, TwoShardsPartitionExample) {
  const std::vector<Cluster> clusters = ExampleClusters();
  const JoinInput input = TwoFileInput();
  const ShardPlan plan = PlanShards(clusters, input, 2);
  CheckPlanInvariants(plan, clusters, input);
  EXPECT_EQ(plan.num_shards, 2u);
  // Both shards used: total load 16 entries, cap 8, and no single
  // cluster has 16 entries.
  EXPECT_GT(plan.shards[0].clusters, 0u);
  EXPECT_GT(plan.shards[1].clusters, 0u);
  // The heavy C1–C2 edge (weight 3, the maximum) should be kept inside a
  // shard: the greedy placement assigns the strongest neighborhoods
  // together, so the cut is strictly less than the total weight.
  EXPECT_LT(plan.cut_weight, plan.sharing_weight);
  EXPECT_EQ(plan.owner[0], plan.owner[1]);
}

TEST(ShardPlannerTest, DeterministicAcrossCalls) {
  const std::vector<Cluster> clusters = RandomClusters(60, 40, 7);
  const JoinInput input = TwoFileInput();
  const ShardPlan a = PlanShards(clusters, input, 4);
  const ShardPlan b = PlanShards(clusters, input, 4);
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.cut_weight, b.cut_weight);
  EXPECT_EQ(a.replicated_pages, b.replicated_pages);
  EXPECT_DOUBLE_EQ(a.balance_ratio, b.balance_ratio);
}

TEST(ShardPlannerTest, RandomInstancesSatisfyInvariants) {
  const JoinInput input = TwoFileInput();
  for (const uint32_t num_shards : {2u, 3u, 4u, 8u}) {
    for (const uint64_t seed : {11ull, 12ull, 13ull}) {
      const std::vector<Cluster> clusters = RandomClusters(50, 30, seed);
      const ShardPlan plan = PlanShards(clusters, input, num_shards);
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << num_shards << " seed=" << seed);
      CheckPlanInvariants(plan, clusters, input);
    }
  }
}

TEST(ShardPlannerTest, BalancedCapLimitsLoad) {
  // 16 equal clusters over 4 shards: the cap (4 clusters' entries) is
  // achievable exactly, so the plan must be perfectly balanced.
  std::vector<Cluster> clusters;
  for (uint32_t i = 0; i < 16; ++i)
    clusters.push_back(MakeCluster({i}, {i}));
  const ShardPlan plan = PlanShards(clusters, TwoFileInput(), 4);
  for (const ShardStats& stats : plan.shards) EXPECT_EQ(stats.entries, 4u);
  EXPECT_DOUBLE_EQ(plan.balance_ratio, 1.0);
}

TEST(ShardPlannerTest, MoreShardsThanClusters) {
  const std::vector<Cluster> clusters = ExampleClusters();
  const JoinInput input = TwoFileInput();
  const ShardPlan plan = PlanShards(clusters, input, 8);
  CheckPlanInvariants(plan, clusters, input);
  EXPECT_EQ(plan.num_shards, 8u);
  uint32_t empty = 0;
  for (const ShardStats& stats : plan.shards)
    if (stats.clusters == 0) ++empty;
  EXPECT_EQ(empty, 3u);  // 5 clusters over 8 shards.
}

TEST(ShardPlannerTest, EmptyClusterList) {
  const ShardPlan plan = PlanShards({}, TwoFileInput(), 4);
  EXPECT_EQ(plan.num_shards, 4u);
  EXPECT_TRUE(plan.owner.empty());
  EXPECT_EQ(plan.cut_weight, 0u);
  EXPECT_EQ(plan.distinct_pages, 0u);
  EXPECT_DOUBLE_EQ(plan.balance_ratio, 1.0);
}

TEST(ShardPlannerTest, SelfJoinCollapsesRowColPages) {
  // In a self join a row page and col page with the same index are one
  // physical page; the planner's page accounting must agree with
  // ClusterPageSet.
  JoinInput input;
  input.r_file = 7;
  input.s_file = 7;
  input.r_pages = 10;
  input.s_pages = 10;
  input.self_join = true;
  const std::vector<Cluster> clusters{
      MakeCluster({1}, {1}),  // One physical page.
      MakeCluster({2}, {3}),
  };
  const ShardPlan plan = PlanShards(clusters, input, 2);
  CheckPlanInvariants(plan, clusters, input);
  EXPECT_EQ(plan.distinct_pages, 3u);
}

TEST(ShardSubOrderTest, PartitionsThePermutation) {
  const std::vector<Cluster> clusters = RandomClusters(40, 25, 21);
  const JoinInput input = TwoFileInput();
  const ShardPlan plan = PlanShards(clusters, input, 3);
  const std::vector<uint32_t> order =
      ScheduleClusters(clusters, input, nullptr);

  std::set<uint32_t> seen;
  for (uint32_t s = 0; s < plan.num_shards; ++s) {
    const std::vector<uint32_t> sub = ShardSubOrder(plan, order, s);
    EXPECT_EQ(sub.size(), plan.shard_clusters[s].size());
    // Relative order preserved: sub is a subsequence of order.
    size_t pos = 0;
    for (const uint32_t c : sub) {
      EXPECT_EQ(plan.owner[c], s);
      while (pos < order.size() && order[pos] != c) ++pos;
      ASSERT_LT(pos, order.size());
      ++pos;
      EXPECT_TRUE(seen.insert(c).second);
    }
  }
  EXPECT_EQ(seen.size(), order.size());
}

}  // namespace
}  // namespace pmjoin
