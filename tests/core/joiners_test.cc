#include "core/joiners.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "io/simulated_disk.h"
#include "seq/sequence_store.h"

namespace pmjoin {
namespace {

/// The ChargeScanned contract (DESIGN.md "simulation shortcut"): for a
/// page pair the prediction matrix would leave unmarked — i.e. one that
/// produces no results and triggers no verification — ChargeScanned must
/// equal exactly what JoinPages charges. We manufacture distant page
/// pairs and compare.

TEST(VectorJoinerAccountingTest, ScanChargeMatchesResultlessExecution) {
  SimulatedDisk disk;
  // Two clusters far apart: join with tiny eps has no cross matches.
  VectorData far_a = GenUniform(200, 3, 1);
  VectorData far_b = GenUniform(200, 3, 2);
  for (float& v : far_b.values) v += 100.0f;
  VectorDataset::Options options;
  options.page_size_bytes = 96;  // 8 records per page.
  auto r = VectorDataset::Build(&disk, "a", far_a, options);
  auto s = VectorDataset::Build(&disk, "b", far_b, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());
  VectorPairJoiner joiner(&*r, &*s, 0.01, Norm::kL2, false);

  for (uint32_t p = 0; p < r->num_pages(); p += 7) {
    for (uint32_t q = 0; q < s->num_pages(); q += 5) {
      OpCounters executed, charged;
      CountingSink sink;
      joiner.JoinPages(p, q, &sink, &executed);
      joiner.ChargeScanned(p, q, &charged);
      EXPECT_EQ(sink.count(), 0u);
      EXPECT_EQ(executed.distance_terms, charged.distance_terms)
          << "pages " << p << "," << q;
      EXPECT_EQ(executed.filter_checks, charged.filter_checks);
      EXPECT_EQ(executed.edit_cells, charged.edit_cells);
    }
  }
}

TEST(TimeSeriesJoinerAccountingTest, ScanChargeIsFullDiagonalScan) {
  SimulatedDisk disk;
  std::vector<float> x = GenRandomWalk(600, 3);
  std::vector<float> y = GenRandomWalk(500, 4);
  for (float& v : y) v += 1e6f;  // No matches possible.
  const uint32_t L = 16, f = 4;
  auto xs = TimeSeriesStore::Build(&disk, "x", x, L, f, 60 * sizeof(float));
  auto ys = TimeSeriesStore::Build(&disk, "y", y, L, f, 60 * sizeof(float));
  ASSERT_TRUE(xs.ok());
  ASSERT_TRUE(ys.ok());
  TimeSeriesPairJoiner joiner(&*xs, &*ys, 0.5, false);

  for (uint32_t p = 0; p < xs->layout().NumPages(); ++p) {
    for (uint32_t q = 0; q < ys->layout().NumPages(); ++q) {
      OpCounters executed, charged;
      CountingSink sink;
      joiner.JoinPages(p, q, &sink, &executed);
      joiner.ChargeScanned(p, q, &charged);
      EXPECT_EQ(sink.count(), 0u);
      // The charge is the record-level diagonal-scan formula...
      const uint64_t nx = xs->layout().WindowCount(p);
      const uint64_t ny = ys->layout().WindowCount(q);
      const uint64_t diagonals = nx + ny - 1;
      EXPECT_EQ(charged.distance_terms, diagonals * 16);
      EXPECT_EQ(charged.filter_checks, nx * ny - diagonals);
      // ...which the summary-assisted execution never exceeds.
      EXPECT_LE(executed.distance_terms, charged.distance_terms);
      EXPECT_LE(executed.filter_checks, charged.filter_checks);
      EXPECT_EQ(executed.edit_cells, 0u);
    }
  }
}

TEST(StringJoinerAccountingTest, ScanChargeIsFullDiagonalScan) {
  SimulatedDisk disk;
  // Two compositionally disjoint strings: FD between any window pair
  // exceeds any small threshold, so no DP verification fires.
  std::vector<uint8_t> a(400, 0);  // All 'A'.
  std::vector<uint8_t> b(350, 3);  // All 'T'.
  Rng rng(7);
  for (size_t i = 0; i < a.size(); i += 3)
    a[i] = static_cast<uint8_t>(rng.Uniform(2));
  for (size_t i = 0; i < b.size(); i += 3)
    b[i] = static_cast<uint8_t>(2 + rng.Uniform(2));
  const uint32_t L = 12;
  auto as = StringSequenceStore::Build(&disk, "a", a, 4, L, 64);
  auto bs = StringSequenceStore::Build(&disk, "b", b, 4, L, 64);
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(bs.ok());
  StringPairJoiner joiner(&*as, &*bs, 1, false);

  for (uint32_t p = 0; p < as->layout().NumPages(); ++p) {
    for (uint32_t q = 0; q < bs->layout().NumPages(); ++q) {
      // This pair must really be unmarked for the contract to apply.
      if (as->PageLowerBound(p, *bs, q) <= 1.0) continue;
      OpCounters executed, charged;
      CountingSink sink;
      joiner.JoinPages(p, q, &sink, &executed);
      joiner.ChargeScanned(p, q, &charged);
      EXPECT_EQ(sink.count(), 0u);
      const uint64_t nx = as->layout().WindowCount(p);
      const uint64_t ny = bs->layout().WindowCount(q);
      const uint64_t diagonals = nx + ny - 1;
      EXPECT_EQ(charged.filter_checks,
                diagonals * 12 + (nx * ny - diagonals));
      EXPECT_LE(executed.filter_checks, charged.filter_checks);
      EXPECT_EQ(executed.edit_cells, 0u);  // Unmarked: nothing verifies.
      EXPECT_EQ(charged.edit_cells, 0u);
    }
  }
}

TEST(JoinerThresholdTest, MatrixThresholds) {
  SimulatedDisk disk;
  const std::vector<float> x = GenRandomWalk(300, 9);
  auto ts = TimeSeriesStore::Build(&disk, "x", x, 16, 4,
                                   60 * sizeof(float));
  ASSERT_TRUE(ts.ok());
  TimeSeriesPairJoiner ts_joiner(&*ts, &*ts, 2.0, true);
  // eps / sqrt(L/f) = 2.0 / 2.0.
  EXPECT_DOUBLE_EQ(ts_joiner.MatrixThreshold(), 1.0);

  const std::vector<uint8_t> a = GenDnaSequence(300, 10);
  auto ss = StringSequenceStore::Build(&disk, "a", a, 4, 12, 64);
  ASSERT_TRUE(ss.ok());
  StringPairJoiner s_joiner(&*ss, &*ss, 3, true);
  EXPECT_DOUBLE_EQ(s_joiner.MatrixThreshold(), 6.0);
}

TEST(VectorJoinerSelfJoinTest, EmitsEachUnorderedPairOnce) {
  SimulatedDisk disk;
  const VectorData data = GenRoadNetwork(150, 11);
  VectorDataset::Options options;
  options.page_size_bytes = 64;
  auto ds = VectorDataset::Build(&disk, "d", data, options);
  ASSERT_TRUE(ds.ok());
  VectorPairJoiner joiner(&*ds, &*ds, 0.1, Norm::kL2, true);

  CollectingSink sink;
  for (uint32_t p = 0; p < ds->num_pages(); ++p) {
    for (uint32_t q = 0; q < ds->num_pages(); ++q) {
      joiner.JoinPages(p, q, &sink, nullptr);
    }
  }
  // Processing the full page grid (both orders) emits each unordered
  // record pair exactly once.
  auto pairs = sink.pairs();
  auto sorted = sink.Sorted();
  EXPECT_EQ(pairs.size(), sorted.size());
  for (const auto& [a, b] : sorted) EXPECT_LT(a, b);
}

}  // namespace
}  // namespace pmjoin
