#include "core/cost_clustering.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pmjoin {
namespace {

PredictionMatrix RandomMatrix(Rng* rng, uint32_t rows, uint32_t cols,
                              double density) {
  PredictionMatrix m(rows, cols);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) m.Mark(r, c);
    }
  }
  m.Finalize();
  return m;
}

TEST(CostClusteringTest, EmptyMatrix) {
  PredictionMatrix m(5, 5);
  m.Finalize();
  Rng rng(1);
  EXPECT_TRUE(CostClustering(m, 4, DiskModel(), 10, &rng, nullptr).empty());
}

TEST(CostClusteringTest, SingleEntry) {
  PredictionMatrix m(8, 8);
  m.Mark(3, 5);
  m.Finalize();
  Rng rng(2);
  const auto clusters = CostClustering(m, 4, DiskModel(), 10, &rng, nullptr);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].entries.size(), 1u);
  EXPECT_TRUE(ValidateClustering(m, clusters, 4).ok());
}

struct CcCase {
  uint32_t rows, cols, buffer, hist;
  double density;
  uint64_t seed;
};

class CostClusteringPropertyTest : public ::testing::TestWithParam<CcCase> {
};

TEST_P(CostClusteringPropertyTest, ValidPartitionWithinBuffer) {
  const CcCase& c = GetParam();
  Rng data_rng(c.seed);
  const PredictionMatrix m =
      RandomMatrix(&data_rng, c.rows, c.cols, c.density);
  Rng rng(c.seed + 100);
  const auto clusters =
      CostClustering(m, c.buffer, DiskModel(), c.hist, &rng, nullptr);
  EXPECT_TRUE(ValidateClustering(m, clusters, c.buffer).ok())
      << ValidateClustering(m, clusters, c.buffer).ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CostClusteringPropertyTest,
    ::testing::Values(CcCase{20, 20, 8, 10, 0.3, 1},
                      CcCase{20, 20, 8, 10, 0.05, 2},
                      CcCase{40, 40, 10, 100, 0.4, 3},
                      CcCase{60, 20, 6, 8, 0.6, 4},
                      CcCase{10, 90, 12, 16, 0.2, 5},
                      CcCase{64, 64, 2, 4, 0.2, 6},
                      CcCase{1, 40, 6, 10, 0.7, 7},
                      CcCase{40, 1, 6, 10, 0.7, 8}));

TEST(CostClusteringTest, DeterministicForFixedSeed) {
  Rng data_rng(11);
  const PredictionMatrix m = RandomMatrix(&data_rng, 30, 30, 0.3);
  Rng r1(99), r2(99);
  const auto a = CostClustering(m, 8, DiskModel(), 10, &r1, nullptr);
  const auto b = CostClustering(m, 8, DiskModel(), 10, &r2, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].entries, b[i].entries);
  }
}

TEST(CostClusteringTest, PrefersContiguousGrowth) {
  // A dense block plus one far-away entry: CC should fill a cluster from
  // the block (cheap contiguous pages) before touching the outlier.
  PredictionMatrix m(100, 100);
  for (uint32_t r = 10; r < 14; ++r) {
    for (uint32_t c = 10; c < 14; ++c) m.Mark(r, c);
  }
  m.Mark(90, 90);
  m.Finalize();
  Rng rng(3);
  const auto clusters = CostClustering(m, 8, DiskModel(), 10, &rng, nullptr);
  ASSERT_TRUE(ValidateClustering(m, clusters, 8).ok());
  // The outlier must be in its own cluster.
  bool outlier_isolated = false;
  for (const Cluster& cluster : clusters) {
    for (const MatrixEntry& e : cluster.entries) {
      if (e.row == 90 && e.col == 90) {
        outlier_isolated = cluster.entries.size() == 1;
      }
    }
  }
  EXPECT_TRUE(outlier_isolated);
}

TEST(CostClusteringTest, CountsClusterOps) {
  Rng data_rng(13);
  const PredictionMatrix m = RandomMatrix(&data_rng, 30, 30, 0.2);
  Rng rng(14);
  OpCounters ops;
  CostClustering(m, 8, DiskModel(), 10, &rng, &ops);
  EXPECT_GE(ops.cluster_ops, m.MarkedCount());
}

TEST(CostClusteringTest, LowIoCostOnBandedMatrix) {
  // Band-diagonal matrix (typical of sequence self joins): both SC and CC
  // are valid, but CC's page sets should be contiguous (few seek runs).
  PredictionMatrix m(60, 60);
  for (uint32_t i = 0; i < 60; ++i) {
    for (uint32_t d = 0; d < 3 && i + d < 60; ++d) m.Mark(i, i + d);
  }
  m.Finalize();
  Rng rng(17);
  const auto clusters =
      CostClustering(m, 12, DiskModel(), 10, &rng, nullptr);
  ASSERT_TRUE(ValidateClustering(m, clusters, 12).ok());
  // Contiguity: each cluster's rows should form few runs.
  for (const Cluster& cluster : clusters) {
    uint32_t runs = cluster.rows.empty() ? 0 : 1;
    for (size_t i = 1; i < cluster.rows.size(); ++i) {
      if (cluster.rows[i] != cluster.rows[i - 1] + 1) ++runs;
    }
    EXPECT_LE(runs, 3u);
  }
}

}  // namespace
}  // namespace pmjoin
