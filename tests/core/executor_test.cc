#include "core/executor.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/scheduler.h"
#include "core/square_clustering.h"
#include "io/simulated_disk.h"
#include "join_test_util.h"

namespace pmjoin {
namespace {

using testing_util::SmallVectorJoin;

TEST(ExecutorTest, ClusteredJoinMatchesReference) {
  SmallVectorJoin fixture(300, 250, 3, 0.05);
  const uint32_t buffer = 10;
  const auto clusters =
      SquareClustering(fixture.matrix(), buffer, nullptr);
  ASSERT_TRUE(ValidateClustering(fixture.matrix(), clusters, buffer).ok());
  const auto order = ScheduleClusters(clusters, fixture.input(), nullptr);

  BufferPool pool(&fixture.disk(), buffer);
  CollectingSink sink;
  ASSERT_TRUE(ExecuteClusteredJoin(fixture.input(), clusters, order, &pool,
                                   &sink, nullptr)
                  .ok());
  EXPECT_EQ(sink.Sorted(), fixture.Expected());
}

TEST(ExecutorTest, AnyOrderIsCorrect) {
  SmallVectorJoin fixture(200, 200, 5, 0.06);
  const uint32_t buffer = 8;
  const auto clusters =
      SquareClustering(fixture.matrix(), buffer, nullptr);
  const auto expected = fixture.Expected();

  // Scheduled, index, reversed, shuffled — all must give the same result.
  std::vector<std::vector<uint32_t>> orders;
  orders.push_back(ScheduleClusters(clusters, fixture.input(), nullptr));
  std::vector<uint32_t> index_order(clusters.size());
  std::iota(index_order.begin(), index_order.end(), 0u);
  orders.push_back(index_order);
  std::vector<uint32_t> reversed = index_order;
  std::reverse(reversed.begin(), reversed.end());
  orders.push_back(reversed);
  std::vector<uint32_t> shuffled = index_order;
  Rng rng(7);
  rng.Shuffle(shuffled);
  orders.push_back(shuffled);

  for (const auto& order : orders) {
    BufferPool pool(&fixture.disk(), buffer);
    CollectingSink sink;
    ASSERT_TRUE(ExecuteClusteredJoin(fixture.input(), clusters, order,
                                     &pool, &sink, nullptr)
                    .ok());
    EXPECT_EQ(sink.Sorted(), expected);
  }
}

TEST(ExecutorTest, PerClusterIoRespectsLemma2) {
  // Lemma 2: a cluster with r rows and c cols needs at most r + c reads.
  SmallVectorJoin fixture(300, 300, 9, 0.04);
  const uint32_t buffer = 12;
  const auto clusters =
      SquareClustering(fixture.matrix(), buffer, nullptr);

  for (const Cluster& cluster : clusters) {
    SimulatedDisk fresh_disk;
    fresh_disk.CreateFile("r", fixture.input().r_pages);
    fresh_disk.CreateFile("s", fixture.input().s_pages);
    JoinInput input = fixture.input();
    input.r_file = 0;
    input.s_file = 1;
    input.joiner = fixture.input().joiner;
    BufferPool pool(&fresh_disk, buffer);
    CountingSink sink;
    const std::vector<Cluster> single{cluster};
    const std::vector<uint32_t> order{0};
    ASSERT_TRUE(ExecuteClusteredJoin(input, single, order, &pool, &sink,
                                     nullptr)
                    .ok());
    EXPECT_LE(fresh_disk.stats().pages_read, cluster.PageCount());
  }
}

TEST(ExecutorTest, ScheduledOrderReusesSharedPages) {
  // Optimization 3 (§9.1): processing clusters in the sharing-graph order
  // must not read more pages than a pessimal (reversed-schedule) order.
  SmallVectorJoin fixture(400, 400, 11, 0.05);
  const uint32_t buffer = 10;
  const auto clusters =
      SquareClustering(fixture.matrix(), buffer, nullptr);
  const auto order = ScheduleClusters(clusters, fixture.input(), nullptr);

  const IoStats before_sched = fixture.disk().stats();
  {
    BufferPool pool(&fixture.disk(), buffer);
    CountingSink sink;
    ASSERT_TRUE(ExecuteClusteredJoin(fixture.input(), clusters, order,
                                     &pool, &sink, nullptr)
                    .ok());
  }
  const uint64_t scheduled_reads =
      fixture.disk().stats().Delta(before_sched).pages_read;

  // Worst-case-ish order: shuffled.
  std::vector<uint32_t> shuffled = order;
  Rng rng(13);
  rng.Shuffle(shuffled);
  const IoStats before_rand = fixture.disk().stats();
  {
    BufferPool pool(&fixture.disk(), buffer);
    CountingSink sink;
    ASSERT_TRUE(ExecuteClusteredJoin(fixture.input(), clusters, shuffled,
                                     &pool, &sink, nullptr)
                    .ok());
  }
  const uint64_t random_reads =
      fixture.disk().stats().Delta(before_rand).pages_read;
  EXPECT_LE(scheduled_reads, random_reads);
}

TEST(ExecutorTest, SharedPageAcrossConsecutiveClustersNotReRead) {
  // Two clusters sharing a row page; back-to-back execution must read the
  // shared page once.
  SimulatedDisk disk;
  disk.CreateFile("r", 10);
  disk.CreateFile("s", 10);

  class NullJoiner : public PagePairJoiner {
   public:
    void JoinPages(uint32_t, uint32_t, PairSink*, OpCounters*) override {}
    void ChargeScanned(uint32_t, uint32_t, OpCounters*) const override {}
  };
  NullJoiner joiner;
  JoinInput input;
  input.r_file = 0;
  input.s_file = 1;
  input.r_pages = 10;
  input.s_pages = 10;
  input.joiner = &joiner;

  Cluster a;
  a.rows = {0};
  a.cols = {0, 1};
  a.entries = {MatrixEntry{0, 0}, MatrixEntry{0, 1}};
  Cluster b;
  b.rows = {0};
  b.cols = {2};
  b.entries = {MatrixEntry{0, 2}};

  BufferPool pool(&disk, 5);
  CountingSink sink;
  const std::vector<Cluster> clusters{a, b};
  const std::vector<uint32_t> order{0, 1};
  ASSERT_TRUE(
      ExecuteClusteredJoin(input, clusters, order, &pool, &sink, nullptr)
          .ok());
  // Pages: r0, s0, s1 for cluster a; cluster b needs r0 (resident) + s2.
  EXPECT_EQ(disk.stats().pages_read, 4u);
  EXPECT_GE(disk.stats().buffer_hits, 1u);
}

TEST(ExecutorTest, RejectsBadOrder) {
  SmallVectorJoin fixture(50, 50, 15, 0.05);
  const auto clusters = SquareClustering(fixture.matrix(), 8, nullptr);
  BufferPool pool(&fixture.disk(), 8);
  CountingSink sink;
  const std::vector<uint32_t> short_order;  // Wrong size.
  EXPECT_FALSE(ExecuteClusteredJoin(fixture.input(), clusters, short_order,
                                    &pool, &sink, nullptr)
                   .ok());
}

TEST(ExecutorTest, ClusterLargerThanPoolFails) {
  SimulatedDisk disk;
  disk.CreateFile("r", 10);
  disk.CreateFile("s", 10);
  class NullJoiner : public PagePairJoiner {
   public:
    void JoinPages(uint32_t, uint32_t, PairSink*, OpCounters*) override {}
    void ChargeScanned(uint32_t, uint32_t, OpCounters*) const override {}
  };
  NullJoiner joiner;
  JoinInput input;
  input.r_file = 0;
  input.s_file = 1;
  input.r_pages = 10;
  input.s_pages = 10;
  input.joiner = &joiner;

  Cluster big;
  big.rows = {0, 1, 2};
  big.cols = {0, 1, 2};
  for (uint32_t r : big.rows) {
    for (uint32_t c : big.cols) big.entries.push_back(MatrixEntry{r, c});
  }
  BufferPool pool(&disk, 4);  // Cluster needs 6 pages.
  CountingSink sink;
  const std::vector<Cluster> clusters{big};
  const std::vector<uint32_t> order{0};
  EXPECT_FALSE(
      ExecuteClusteredJoin(input, clusters, order, &pool, &sink, nullptr)
          .ok());
}


TEST(ExecutorTest, SelfJoinRowAndColSamePagePinnedOnce) {
  // In a self join a cluster's row page and col page can be the same
  // physical page; the executor's page set deduplicates it.
  SimulatedDisk disk;
  const uint32_t file = disk.CreateFile("d", 10);

  class NullJoiner : public PagePairJoiner {
   public:
    void JoinPages(uint32_t, uint32_t, PairSink*, OpCounters*) override {}
    void ChargeScanned(uint32_t, uint32_t, OpCounters*) const override {}
  };
  NullJoiner joiner;
  JoinInput input;
  input.r_file = file;
  input.s_file = file;
  input.r_pages = 10;
  input.s_pages = 10;
  input.self_join = true;
  input.joiner = &joiner;

  Cluster diag;
  diag.rows = {5};
  diag.cols = {5};
  diag.entries = {MatrixEntry{5, 5}};
  EXPECT_EQ(ClusterPageSet(diag, input).size(), 1u);

  BufferPool pool(&disk, 4);
  CountingSink sink;
  const std::vector<Cluster> clusters{diag};
  const std::vector<uint32_t> order{0};
  ASSERT_TRUE(
      ExecuteClusteredJoin(input, clusters, order, &pool, &sink, nullptr)
          .ok());
  EXPECT_EQ(disk.stats().pages_read, 1u);
}

}  // namespace
}  // namespace pmjoin
