// Determinism guarantees of the parallel cluster-join executor
// (core/executor.h): for any worker count, the emitted pair sequence, the
// aggregated OpCounters, and the simulated IoStats must be identical to
// the serial run — parallelism may only change wall-clock time.

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/executor.h"
#include "core/scheduler.h"
#include "core/square_clustering.h"
#include "io/simulated_disk.h"
#include "join_test_util.h"

namespace pmjoin {
namespace {

using testing_util::SmallVectorJoin;

/// One full clustered execution on a fresh disk/pool; returns the emitted
/// pair sequence (in emission order, not sorted) and the IoStats and
/// OpCounters deltas of the execution itself.
struct RunResult {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  IoStats io;
  OpCounters ops;
  Status status = Status::OK();
};

RunResult RunOnce(SmallVectorJoin& fixture,
                  const std::vector<Cluster>& clusters,
                  const std::vector<uint32_t>& order, uint32_t buffer,
                  uint32_t num_threads, bool prefetch = true) {
  RunResult result;
  const IoStats io_before = fixture.disk().stats();
  BufferPool pool(&fixture.disk(), buffer);
  CollectingSink sink;
  ExecutorOptions options;
  options.num_threads = num_threads;
  options.prefetch_next_cluster = prefetch;
  result.status = ExecuteClusteredJoin(fixture.input(), clusters, order,
                                       &pool, &sink, &result.ops, options);
  result.pairs = sink.pairs();
  result.io = fixture.disk().stats().Delta(io_before);
  return result;
}

class ExecutorParallelTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ExecutorParallelTest, MatchesSerialOnSeededWorkload) {
  const uint32_t threads = GetParam();
  SmallVectorJoin fixture(400, 350, 21, 0.05);
  const uint32_t buffer = 10;
  const auto clusters = SquareClustering(fixture.matrix(), buffer, nullptr);
  ASSERT_GT(clusters.size(), 1u);
  const auto order = ScheduleClusters(clusters, fixture.input(), nullptr);

  const RunResult serial = RunOnce(fixture, clusters, order, buffer, 1);
  ASSERT_TRUE(serial.status.ok());
  ASSERT_FALSE(serial.pairs.empty());

  const RunResult parallel =
      RunOnce(fixture, clusters, order, buffer, threads);
  ASSERT_TRUE(parallel.status.ok());

  // Identical emission *sequence* (stronger than set equality): chunked
  // shards drain in entry order.
  EXPECT_EQ(parallel.pairs, serial.pairs);
  // Byte-identical simulated I/O: seeks, transfers, hits.
  EXPECT_EQ(parallel.io, serial.io);
  // Identical aggregated CPU accounting.
  EXPECT_EQ(parallel.ops, serial.ops);
}

TEST_P(ExecutorParallelTest, MatchesSerialWhenPrefetchRarelyFits) {
  // A buffer barely larger than the biggest cluster forces the prefetch
  // feasibility check to decline often, exercising the serial-position
  // fallback path. Stats must still match exactly.
  const uint32_t threads = GetParam();
  SmallVectorJoin fixture(300, 300, 33, 0.06);
  uint32_t buffer = 8;
  const auto clusters = SquareClustering(fixture.matrix(), buffer, nullptr);
  const auto order = ScheduleClusters(clusters, fixture.input(), nullptr);

  const RunResult serial = RunOnce(fixture, clusters, order, buffer, 1);
  ASSERT_TRUE(serial.status.ok());
  const RunResult parallel =
      RunOnce(fixture, clusters, order, buffer, threads);
  ASSERT_TRUE(parallel.status.ok());
  EXPECT_EQ(parallel.pairs, serial.pairs);
  EXPECT_EQ(parallel.io, serial.io);
  EXPECT_EQ(parallel.ops, serial.ops);
}

TEST_P(ExecutorParallelTest, MatchesSerialWithRoomyBuffer) {
  // A roomy buffer lets every prefetch proceed; the overlap must still be
  // accounting-neutral.
  const uint32_t threads = GetParam();
  SmallVectorJoin fixture(300, 250, 45, 0.05);
  const uint32_t buffer = 48;
  const auto clusters = SquareClustering(fixture.matrix(), buffer, nullptr);
  const auto order = ScheduleClusters(clusters, fixture.input(), nullptr);

  const RunResult serial = RunOnce(fixture, clusters, order, buffer, 1);
  ASSERT_TRUE(serial.status.ok());
  const RunResult parallel =
      RunOnce(fixture, clusters, order, buffer, threads);
  ASSERT_TRUE(parallel.status.ok());
  EXPECT_EQ(parallel.pairs, serial.pairs);
  EXPECT_EQ(parallel.io, serial.io);
  EXPECT_EQ(parallel.ops, serial.ops);
}

TEST_P(ExecutorParallelTest, MatchesSerialWithPrefetchDisabled) {
  const uint32_t threads = GetParam();
  SmallVectorJoin fixture(250, 250, 57, 0.05);
  const uint32_t buffer = 12;
  const auto clusters = SquareClustering(fixture.matrix(), buffer, nullptr);
  const auto order = ScheduleClusters(clusters, fixture.input(), nullptr);

  const RunResult serial = RunOnce(fixture, clusters, order, buffer, 1);
  ASSERT_TRUE(serial.status.ok());
  const RunResult parallel = RunOnce(fixture, clusters, order, buffer,
                                     threads, /*prefetch=*/false);
  ASSERT_TRUE(parallel.status.ok());
  EXPECT_EQ(parallel.pairs, serial.pairs);
  EXPECT_EQ(parallel.io, serial.io);
  EXPECT_EQ(parallel.ops, serial.ops);
}

TEST_P(ExecutorParallelTest, ShuffledOrderAlsoMatches)
{
  // Random-SC's shuffled cluster order stresses pathological residency
  // overlaps between consecutive clusters.
  const uint32_t threads = GetParam();
  SmallVectorJoin fixture(350, 300, 69, 0.05);
  const uint32_t buffer = 10;
  const auto clusters = SquareClustering(fixture.matrix(), buffer, nullptr);
  std::vector<uint32_t> order(clusters.size());
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(99);
  rng.Shuffle(order);

  const RunResult serial = RunOnce(fixture, clusters, order, buffer, 1);
  ASSERT_TRUE(serial.status.ok());
  const RunResult parallel =
      RunOnce(fixture, clusters, order, buffer, threads);
  ASSERT_TRUE(parallel.status.ok());
  EXPECT_EQ(parallel.pairs, serial.pairs);
  EXPECT_EQ(parallel.io, serial.io);
  EXPECT_EQ(parallel.ops, serial.ops);
}

INSTANTIATE_TEST_SUITE_P(Threads, ExecutorParallelTest,
                         ::testing::Values(2u, 4u, 8u));

TEST(ExecutorParallelTest, ExternalThreadPoolReused) {
  SmallVectorJoin fixture(200, 200, 81, 0.05);
  const uint32_t buffer = 10;
  const auto clusters = SquareClustering(fixture.matrix(), buffer, nullptr);
  const auto order = ScheduleClusters(clusters, fixture.input(), nullptr);

  const RunResult serial = RunOnce(fixture, clusters, order, buffer, 1);
  ASSERT_TRUE(serial.status.ok());

  ThreadPool shared_pool(3);
  for (int round = 0; round < 3; ++round) {
    const IoStats io_before = fixture.disk().stats();
    BufferPool pool(&fixture.disk(), buffer);
    CollectingSink sink;
    OpCounters ops;
    ExecutorOptions options;
    options.num_threads = 3;
    options.thread_pool = &shared_pool;
    ASSERT_TRUE(ExecuteClusteredJoin(fixture.input(), clusters, order,
                                     &pool, &sink, &ops, options)
                    .ok());
    EXPECT_EQ(sink.pairs(), serial.pairs);
    EXPECT_EQ(fixture.disk().stats().Delta(io_before), serial.io);
    EXPECT_EQ(ops, serial.ops);
  }
}

TEST(ExecutorParallelTest, PrefetchDeclinedWhenBatchPagesAreTheVictims) {
  // Regression: the prefetch gate must not count the next cluster's own
  // resident-unpinned pages as eviction victims — PinBatch pins them
  // before admitting any miss, so they can never be evicted on behalf of
  // that batch. With capacity 4, after clusters {r0,s0} and {r1,s1} the
  // pool holds four pages with r0,s0 unpinned; prefetching {r0,s2,s3}
  // while {r1,s1} is still pinned needs two evictions but only s0 is a
  // real victim (r0 belongs to the batch). A gate that merely compares
  // evictions against UnpinnedCount() admits the pin, which then fails
  // mid-batch with BufferFull and aborts the parallel run where the
  // serial run succeeds. The fixed gate defers to the serial position,
  // where the just-unpinned {r1,s1} supply the victims.
  class NullJoiner : public PagePairJoiner {
   public:
    void JoinPages(uint32_t, uint32_t, PairSink*, OpCounters*) override {}
    void ChargeScanned(uint32_t, uint32_t, OpCounters*) const override {}
  };
  NullJoiner joiner;

  Cluster c0;
  c0.rows = {0};
  c0.cols = {0};
  c0.entries = {MatrixEntry{0, 0}};
  Cluster c1;
  c1.rows = {1};
  c1.cols = {1};
  c1.entries = {MatrixEntry{1, 1}};
  Cluster c2;
  c2.rows = {0};
  c2.cols = {2, 3};
  c2.entries = {MatrixEntry{0, 2}, MatrixEntry{0, 3}};
  const std::vector<Cluster> clusters{c0, c1, c2};
  const std::vector<uint32_t> order{0, 1, 2};

  IoStats serial_io;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    SimulatedDisk disk;
    disk.CreateFile("r", 2);
    disk.CreateFile("s", 4);
    JoinInput input;
    input.r_file = 0;
    input.s_file = 1;
    input.r_pages = 2;
    input.s_pages = 4;
    input.joiner = &joiner;
    BufferPool pool(&disk, 4);
    CountingSink sink;
    ExecutorOptions options;
    options.num_threads = threads;
    const Status st = ExecuteClusteredJoin(input, clusters, order, &pool,
                                           &sink, nullptr, options);
    ASSERT_TRUE(st.ok()) << "threads=" << threads << ": " << st.message();
    EXPECT_EQ(pool.PinnedCount(), 0u) << "threads=" << threads;
    if (threads == 1) {
      serial_io = disk.stats();
    } else {
      EXPECT_EQ(disk.stats(), serial_io) << "threads=" << threads;
    }
  }
}

TEST(ExecutorParallelTest, ErrorPositionsMatchSerial) {
  // An oversized cluster after a valid one: both executors must join the
  // valid cluster fully, then fail with BufferFull.
  SimulatedDisk disk;
  disk.CreateFile("r", 12);
  disk.CreateFile("s", 12);
  class NullJoiner : public PagePairJoiner {
   public:
    void JoinPages(uint32_t, uint32_t, PairSink*, OpCounters*) override {}
    void ChargeScanned(uint32_t, uint32_t, OpCounters*) const override {}
  };
  NullJoiner joiner;
  JoinInput input;
  input.r_file = 0;
  input.s_file = 1;
  input.r_pages = 12;
  input.s_pages = 12;
  input.joiner = &joiner;

  Cluster small;
  small.rows = {0};
  small.cols = {0};
  small.entries = {MatrixEntry{0, 0}};
  Cluster big;
  big.rows = {1, 2, 3};
  big.cols = {1, 2, 3};
  for (uint32_t r : big.rows) {
    for (uint32_t c : big.cols) big.entries.push_back(MatrixEntry{r, c});
  }
  const std::vector<Cluster> clusters{small, big};
  const std::vector<uint32_t> order{0, 1};

  for (uint32_t threads : {1u, 2u, 4u}) {
    SimulatedDisk fresh;
    fresh.CreateFile("r", 12);
    fresh.CreateFile("s", 12);
    BufferPool pool(&fresh, 4);  // big needs 6 pages.
    CountingSink sink;
    ExecutorOptions options;
    options.num_threads = threads;
    const Status st = ExecuteClusteredJoin(input, clusters, order, &pool,
                                           &sink, nullptr, options);
    EXPECT_FALSE(st.ok()) << "threads=" << threads;
    // The small cluster was processed before the failure.
    EXPECT_EQ(fresh.stats().pages_read, 2u) << "threads=" << threads;
    EXPECT_EQ(pool.PinnedCount(), 0u) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace pmjoin
