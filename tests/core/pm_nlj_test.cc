#include "core/pm_nlj.h"

#include <gtest/gtest.h>

#include "baselines/block_nlj.h"
#include "io/buffer_pool.h"
#include "io/simulated_disk.h"
#include "join_test_util.h"

namespace pmjoin {
namespace {

using testing_util::SmallVectorJoin;

TEST(PmNljTest, MatchesReferenceJoin) {
  SmallVectorJoin fixture(300, 250, 7, 0.05);
  BufferPool pool(&fixture.disk(), 10);
  CollectingSink sink;
  OpCounters ops;
  ASSERT_TRUE(
      PmNlj(fixture.input(), fixture.matrix(), &pool, &sink, &ops).ok());
  EXPECT_EQ(sink.Sorted(), fixture.Expected());
  EXPECT_GT(sink.pairs().size(), 0u);
}

TEST(PmNljTest, SmallBufferStillCorrect) {
  SmallVectorJoin fixture(200, 200, 9, 0.08);
  BufferPool pool(&fixture.disk(), 3);
  CollectingSink sink;
  ASSERT_TRUE(
      PmNlj(fixture.input(), fixture.matrix(), &pool, &sink, nullptr).ok());
  EXPECT_EQ(sink.Sorted(), fixture.Expected());
}

TEST(PmNljTest, LargeBufferFitsSmallSide) {
  SmallVectorJoin fixture(200, 100, 11, 0.05);
  BufferPool pool(&fixture.disk(), 256);  // Everything fits.
  CollectingSink sink;
  ASSERT_TRUE(
      PmNlj(fixture.input(), fixture.matrix(), &pool, &sink, nullptr).ok());
  EXPECT_EQ(sink.Sorted(), fixture.Expected());
  // Each marked page read at most once.
  EXPECT_LE(fixture.disk().stats().pages_read,
            uint64_t(fixture.input().r_pages) + fixture.input().s_pages);
}

TEST(PmNljTest, ReadsFewerPagesThanNlj) {
  SmallVectorJoin fixture(400, 400, 13, 0.03);
  // The matrix is sparse at this eps; pm-NLJ must beat NLJ on I/O
  // (Optimization 1 of §9.1).
  ASSERT_LT(fixture.matrix().Selectivity(), 0.5);

  const IoStats before_pm = fixture.disk().stats();
  {
    BufferPool pool(&fixture.disk(), 8);
    CountingSink sink;
    ASSERT_TRUE(PmNlj(fixture.input(), fixture.matrix(), &pool, &sink,
                      nullptr)
                    .ok());
  }
  const uint64_t pm_reads =
      fixture.disk().stats().Delta(before_pm).pages_read;

  const IoStats before_nlj = fixture.disk().stats();
  {
    BufferPool pool(&fixture.disk(), 8);
    CountingSink sink;
    ASSERT_TRUE(BlockNlj(fixture.input(), &pool, &sink, nullptr,
                         &fixture.matrix())
                    .ok());
  }
  const uint64_t nlj_reads =
      fixture.disk().stats().Delta(before_nlj).pages_read;
  EXPECT_LT(pm_reads, nlj_reads);
}

TEST(PmNljTest, ChargesOnlyMarkedPairsCpu) {
  SmallVectorJoin fixture(300, 300, 17, 0.02);
  BufferPool pool(&fixture.disk(), 8);
  CountingSink sink;
  OpCounters ops;
  ASSERT_TRUE(
      PmNlj(fixture.input(), fixture.matrix(), &pool, &sink, &ops).ok());
  // CPU = marked pairs × per-pair record work; must be well below the
  // full page-pair grid at low selectivity.
  const uint64_t rpp = fixture.r().records_per_page();
  const uint64_t full_terms = uint64_t(fixture.r().num_records()) *
                              fixture.s().num_records() * 2;
  EXPECT_LT(ops.distance_terms, full_terms / 2);
  EXPECT_GT(ops.distance_terms, 0u);
  (void)rpp;
}

TEST(PmNljTest, EmptyMatrixDoesNoIo) {
  SmallVectorJoin fixture(50, 50, 19, 0.05);
  PredictionMatrix empty(fixture.input().r_pages, fixture.input().s_pages);
  empty.Finalize();
  const IoStats before = fixture.disk().stats();
  BufferPool pool(&fixture.disk(), 8);
  CountingSink sink;
  ASSERT_TRUE(PmNlj(fixture.input(), empty, &pool, &sink, nullptr).ok());
  EXPECT_EQ(fixture.disk().stats().Delta(before).pages_read, 0u);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(PmNljTest, Example1Scenario) {
  // Example 1 / Fig. 3: a cluster of 5 marked entries in 3 rows × 2 cols;
  // with B = 5, pm-NLJ needs w + min{r, c} = 7 I/Os while NLJ needs
  // r·c + min{r, c} = 3·2 + 2·... — concretely 15 in the paper's shaded
  // scenario with its block layout. Here we verify the pm-NLJ half
  // (Lemma 1 bound attained) on the exact pattern of the figure.
  SimulatedDisk disk;
  const uint32_t r_file = disk.CreateFile("r", 3);  // r211..r213
  const uint32_t s_file = disk.CreateFile("s", 4);  // s60..s63

  // Marked pattern from Fig. 3 (unshaded region):
  //   r211: s60 s61 s62
  //   r213: s61 s62
  PredictionMatrix matrix(3, 4);
  matrix.Mark(0, 0);
  matrix.Mark(0, 1);
  matrix.Mark(0, 2);
  matrix.Mark(2, 1);
  matrix.Mark(2, 2);
  matrix.Finalize();
  ASSERT_EQ(matrix.MarkedCount(), 5u);

  /// A joiner that does nothing (we only measure I/O).
  class NullJoiner : public PagePairJoiner {
   public:
    void JoinPages(uint32_t, uint32_t, PairSink*, OpCounters*) override {}
    void ChargeScanned(uint32_t, uint32_t, OpCounters*) const override {}
  };
  NullJoiner joiner;
  JoinInput input;
  input.r_file = r_file;
  input.s_file = s_file;
  input.r_pages = 3;
  input.s_pages = 4;
  input.joiner = &joiner;

  {
    // B = 5: the two marked rows fit in the buffer, so the fits-in-buffer
    // branch of Fig. 4 attains the Lemma-2 cluster bound r + c = 5 —
    // better than the paper's walk-through (7), which charges the
    // block-iteration order.
    BufferPool pool(&disk, 5);
    CountingSink sink;
    ASSERT_TRUE(PmNlj(input, matrix, &pool, &sink, nullptr).ok());
    EXPECT_EQ(disk.stats().pages_read, 5u);
  }
  disk.ResetStats();
  {
    // B = 2 forces the else-branch (one V page + one-page partner blocks);
    // LRU reuse across consecutive V pages yields exactly the paper's
    // Example-1 count of w + min{r, c} = 5 + 2 = 7 reads (Lemma 1 bound).
    BufferPool pool(&disk, 2);
    CountingSink sink;
    ASSERT_TRUE(PmNlj(input, matrix, &pool, &sink, nullptr).ok());
    EXPECT_EQ(disk.stats().pages_read, 7u);
  }
}

}  // namespace
}  // namespace pmjoin
