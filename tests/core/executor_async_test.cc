// Concordance guarantees of the async read pipeline
// (ExecutorOptions::io_threads): for any combination of worker count, I/O
// thread count, and storage backend, the emitted pair sequence, the
// aggregated OpCounters, and the *modeled* IoStats must be byte-identical
// to the synchronous serial run — the async reader may only change when
// physical bytes move, never what the ledger records. Plus fault
// injection: a corrupt page read by the async reader must surface as
// Status::Corruption through ExecuteClusteredJoin with full pin rollback
// and an empty staging table.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/joiners.h"
#include "core/plane_sweep.h"
#include "core/prediction_matrix.h"
#include "core/scheduler.h"
#include "core/square_clustering.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "io/file_backend.h"
#include "io/simulated_disk.h"

namespace pmjoin {
namespace {

/// A fresh scratch directory under the gtest temp dir (removed up front so
/// reruns start clean).
std::string ScratchDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "pmjoin-exatest-" +
                          std::to_string(::getpid()) + "-" + tag;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

/// Path of `file`'s page file inside the backend directory.
std::string PagePath(const FileBackend& backend, uint32_t file) {
  char prefix[16];
  std::snprintf(prefix, sizeof(prefix), "pf%06u_", file);
  for (const auto& entry :
       std::filesystem::directory_iterator(backend.directory())) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0)
      return entry.path().string();
  }
  return {};
}

/// Flips one bit at byte `offset` of `path`.
void FlipBit(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

/// tests/join_test_util.h's SmallVectorJoin, but over a caller-supplied
/// backend so the same workload runs on the simulated and the file
/// backend. Page size is tiny so small inputs span many pages.
class BackendVectorJoin {
 public:
  BackendVectorJoin(std::unique_ptr<StorageBackend> disk, size_t nr,
                    size_t ns, uint64_t seed, double eps,
                    uint32_t page_bytes = 64)
      : disk_(std::move(disk)) {
    const VectorData r_raw = GenRoadNetwork(nr, seed);
    const VectorData s_raw = GenRoadNetwork(ns, seed + 1000);
    VectorDataset::Options options;
    options.page_size_bytes = page_bytes;
    r_.emplace(VectorDataset::Build(disk_.get(), "r", r_raw, options).value());
    s_.emplace(VectorDataset::Build(disk_.get(), "s", s_raw, options).value());
    joiner_.emplace(&*r_, &*s_, eps, Norm::kL2, /*self_join=*/false);
    input_.r_file = r_->file_id();
    input_.s_file = s_->file_id();
    input_.r_pages = r_->num_pages();
    input_.s_pages = s_->num_pages();
    input_.self_join = false;
    input_.joiner = &*joiner_;
    matrix_.emplace(BuildPredictionMatrixFlat(
        r_->page_mbrs(), s_->page_mbrs(), eps, Norm::kL2, nullptr));
  }

  StorageBackend& disk() { return *disk_; }
  const JoinInput& input() const { return input_; }
  const PredictionMatrix& matrix() const { return *matrix_; }

 private:
  std::unique_ptr<StorageBackend> disk_;
  std::optional<VectorDataset> r_, s_;
  std::optional<VectorPairJoiner> joiner_;
  JoinInput input_;
  std::optional<PredictionMatrix> matrix_;
};

struct RunResult {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  IoStats io;
  OpCounters ops;
  Status status = Status::OK();
};

RunResult RunOnce(BackendVectorJoin& fixture,
                  const std::vector<Cluster>& clusters,
                  const std::vector<uint32_t>& order, uint32_t buffer,
                  uint32_t num_threads, uint32_t io_threads) {
  RunResult result;
  const IoStats io_before = fixture.disk().stats();
  BufferPool pool(&fixture.disk(), buffer);
  CollectingSink sink;
  ExecutorOptions options;
  options.num_threads = num_threads;
  options.io_threads = io_threads;
  result.status = ExecuteClusteredJoin(fixture.input(), clusters, order,
                                       &pool, &sink, &result.ops, options);
  result.pairs = sink.pairs();
  result.io = fixture.disk().stats().Delta(io_before);
  return result;
}

constexpr size_t kNr = 400;
constexpr size_t kNs = 350;
constexpr uint64_t kSeed = 21;
constexpr double kEps = 0.05;
constexpr uint32_t kBuffer = 10;

TEST(ExecutorAsyncTest, ConcordanceAcrossBackendsWorkersAndIoThreads) {
  // The cross-backend reference: pairs/ops/modeled-IoStats of the
  // synchronous serial run, which must be identical on both backends (the
  // base class owns the model) and at every (worker, io-thread) point.
  std::optional<RunResult> reference;

  for (const bool file_backend : {false, true}) {
    std::unique_ptr<StorageBackend> disk;
    if (file_backend) {
      disk = FileBackend::Open(ScratchDir("concordance")).value();
    } else {
      disk = std::make_unique<SimulatedDisk>();
    }
    BackendVectorJoin fixture(std::move(disk), kNr, kNs, kSeed, kEps);
    const auto clusters =
        SquareClustering(fixture.matrix(), kBuffer, nullptr);
    ASSERT_GT(clusters.size(), 1u);
    const auto order = ScheduleClusters(clusters, fixture.input(), nullptr);

    // One warm-up run pins the disk-head start position, so every timed
    // run below begins from the same modeled state.
    ASSERT_TRUE(
        RunOnce(fixture, clusters, order, kBuffer, 1, 0).status.ok());

    const RunResult baseline =
        RunOnce(fixture, clusters, order, kBuffer, 1, 0);
    ASSERT_TRUE(baseline.status.ok());
    ASSERT_FALSE(baseline.pairs.empty());
    if (!reference.has_value()) {
      reference = baseline;
    } else {
      // Modeled I/O is byte-identical across backends by construction.
      EXPECT_EQ(baseline.pairs, reference->pairs) << "backend mismatch";
      EXPECT_EQ(baseline.io, reference->io) << "backend mismatch";
      EXPECT_EQ(baseline.ops, reference->ops) << "backend mismatch";
    }

    for (const uint32_t workers : {1u, 8u}) {
      for (const uint32_t io_threads : {0u, 1u, 2u, 4u}) {
        const RunResult run = RunOnce(fixture, clusters, order, kBuffer,
                                      workers, io_threads);
        const std::string where =
            std::string(file_backend ? "file" : "sim") + " workers=" +
            std::to_string(workers) + " io=" + std::to_string(io_threads);
        ASSERT_TRUE(run.status.ok()) << where << ": " << run.status.message();
        EXPECT_EQ(run.pairs, reference->pairs) << where;
        EXPECT_EQ(run.io, reference->io) << where;
        EXPECT_EQ(run.ops, reference->ops) << where;
        EXPECT_EQ(fixture.disk().StagedCount(), 0u) << where;
      }
    }
  }
}

TEST(ExecutorAsyncTest, CorruptStagedPageSurfacesWithFullRollback) {
  auto opened = FileBackend::Open(ScratchDir("corrupt"),
                                  FileBackend::Options());
  ASSERT_TRUE(opened.ok());
  FileBackend* fb = opened.value().get();
  BackendVectorJoin fixture(std::move(opened).value(), kNr, kNs, kSeed,
                            kEps);
  const auto clusters = SquareClustering(fixture.matrix(), kBuffer, nullptr);
  ASSERT_GT(clusters.size(), 2u);
  const auto order = ScheduleClusters(clusters, fixture.input(), nullptr);

  // Corrupt a page that the *last* cluster needs and the *first* does not:
  // its first physical read happens for some cluster k >= 1, i.e. on the
  // async pipeline (every cluster after the first has its miss runs
  // staged ahead of time).
  const auto last_pages =
      ClusterPageSet(clusters[order.back()], fixture.input());
  const auto first_pages =
      ClusterPageSet(clusters[order.front()], fixture.input());
  std::optional<PageId> victim;
  for (const PageId pid : last_pages) {
    bool in_first = false;
    for (const PageId other : first_pages) in_first |= (other == pid);
    if (!in_first) {
      victim = pid;
      break;
    }
  }
  ASSERT_TRUE(victim.has_value());
  const std::string path = PagePath(*fb, victim->file);
  ASSERT_FALSE(path.empty());
  FlipBit(path,
          FileBackend::SlotOffset(fb->page_size_bytes(), victim->page) + 3);

  for (const uint32_t workers : {1u, 8u}) {
    BufferPool pool(&fixture.disk(), kBuffer);
    CollectingSink sink;
    ExecutorOptions options;
    options.num_threads = workers;
    options.io_threads = 2;
    const Status st = ExecuteClusteredJoin(fixture.input(), clusters, order,
                                           &pool, &sink, nullptr, options);
    EXPECT_TRUE(st.IsCorruption()) << "workers=" << workers << ": "
                                   << st.message();
    // Full unwind: no leaked pins, a consistent pool, and an empty staging
    // table (ExecuteClusteredJoin drops staged runs on every exit path).
    EXPECT_EQ(pool.PinnedCount(), 0u) << "workers=" << workers;
    EXPECT_TRUE(pool.ValidateInvariants().ok()) << "workers=" << workers;
    EXPECT_EQ(fixture.disk().StagedCount(), 0u) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace pmjoin
