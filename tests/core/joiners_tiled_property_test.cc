#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/joiners.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "geom/distance.h"
#include "io/simulated_disk.h"

namespace pmjoin {
namespace {

/// The pre-kernel scalar page-pair join, kept verbatim as the behavioral
/// reference: per-pair WithinDistance over Record() spans, i ascending,
/// j ascending, result_pairs per emit, distance_terms charged in bulk as
/// nr * ns * dims. VectorPairJoiner::JoinPages must be byte-identical to
/// this — same pairs in the same order, same OpCounters — for every norm,
/// dimensionality, and page shape.
void ScalarReferenceJoinPages(const VectorDataset& r, const VectorDataset& s,
                              double eps, Norm norm, bool self_join,
                              uint32_t r_page, uint32_t s_page,
                              PairSink* sink, OpCounters* ops) {
  const uint32_t nr = r.PageRecordCount(r_page);
  const uint32_t ns = s.PageRecordCount(s_page);
  const size_t dims = r.dims();
  for (uint32_t i = 0; i < nr; ++i) {
    const std::span<const float> x = r.Record(r_page, i);
    const uint64_t xid = r.OriginalId(r_page, i);
    for (uint32_t j = 0; j < ns; ++j) {
      if (WithinDistance(x, s.Record(s_page, j), norm, eps)) {
        const uint64_t yid = s.OriginalId(s_page, j);
        if (!self_join || xid < yid) {
          sink->OnPair(xid, yid);
          if (ops != nullptr) ++ops->result_pairs;
        }
      }
    }
  }
  if (ops != nullptr) ops->distance_terms += uint64_t(nr) * ns * dims;
}

/// Deterministic threshold giving a meaningful accept fraction for any
/// (norm, dims): the 30th percentile of sampled cross-pair distances.
double CalibratedEps(const VectorDataset& r, const VectorDataset& s,
                     Norm norm) {
  std::vector<double> dists;
  const uint64_t n = std::min<uint64_t>(r.num_records(), s.num_records());
  for (uint64_t i = 0; i < n; ++i) {
    dists.push_back(VectorDistance(r.RecordByOriginalId(i),
                                   s.RecordByOriginalId(n - 1 - i), norm));
  }
  std::sort(dists.begin(), dists.end());
  return dists[dists.size() * 3 / 10];
}

struct JoinCase {
  size_t dims;
  uint32_t records;  // Total records per side.
  uint32_t records_per_page;
};

std::string CaseName(const ::testing::TestParamInfo<
                     std::tuple<Norm, JoinCase>>& info) {
  const auto& [norm, jc] = info.param;
  return NormName(norm) + "_d" + std::to_string(jc.dims) + "_n" +
         std::to_string(jc.records) + "_rpp" +
         std::to_string(jc.records_per_page);
}

class TiledJoinPropertyTest
    : public ::testing::TestWithParam<std::tuple<Norm, JoinCase>> {};

/// Every page pair, cross join: the tiled JoinPages and the scalar
/// reference must produce an identical ordered pair stream and identical
/// OpCounters.
TEST_P(TiledJoinPropertyTest, ByteIdenticalToScalarReference) {
  const auto& [norm, jc] = GetParam();
  SimulatedDisk disk;
  const VectorData r_data = GenUniform(jc.records, jc.dims, 0xAB + jc.dims);
  const VectorData s_data =
      GenUniform(jc.records + 3, jc.dims, 0xCD + jc.dims);
  VectorDataset::Options options;
  options.page_size_bytes = static_cast<uint32_t>(
      jc.records_per_page * jc.dims * sizeof(float));
  auto r = VectorDataset::Build(&disk, "r", r_data, options);
  auto s = VectorDataset::Build(&disk, "s", s_data, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(r->records_per_page(), jc.records_per_page);

  const double eps = CalibratedEps(*r, *s, norm);
  VectorPairJoiner joiner(&*r, &*s, eps, norm, /*self_join=*/false);

  uint64_t total_pairs = 0;
  for (uint32_t rp = 0; rp < r->num_pages(); ++rp) {
    for (uint32_t sp = 0; sp < s->num_pages(); ++sp) {
      CollectingSink tiled_sink, ref_sink;
      OpCounters tiled_ops, ref_ops;
      joiner.JoinPages(rp, sp, &tiled_sink, &tiled_ops);
      ScalarReferenceJoinPages(*r, *s, eps, norm, false, rp, sp, &ref_sink,
                               &ref_ops);
      ASSERT_EQ(tiled_sink.pairs(), ref_sink.pairs())
          << "pages " << rp << "," << sp;
      ASSERT_EQ(tiled_ops, ref_ops) << "pages " << rp << "," << sp;
      total_pairs += ref_sink.pairs().size();
    }
  }
  EXPECT_GT(total_pairs, 0u) << "degenerate case: threshold matched nothing";
}

/// Self-join duplicate suppression (xid < yid) must survive the tiling.
TEST_P(TiledJoinPropertyTest, SelfJoinByteIdenticalToScalarReference) {
  const auto& [norm, jc] = GetParam();
  SimulatedDisk disk;
  const VectorData data = GenUniform(jc.records, jc.dims, 0xEF + jc.dims);
  VectorDataset::Options options;
  options.page_size_bytes = static_cast<uint32_t>(
      jc.records_per_page * jc.dims * sizeof(float));
  auto ds = VectorDataset::Build(&disk, "d", data, options);
  ASSERT_TRUE(ds.ok());
  const double eps = CalibratedEps(*ds, *ds, norm);
  VectorPairJoiner joiner(&*ds, &*ds, eps, norm, /*self_join=*/true);

  for (uint32_t rp = 0; rp < ds->num_pages(); ++rp) {
    for (uint32_t sp = rp; sp < ds->num_pages(); ++sp) {
      CollectingSink tiled_sink, ref_sink;
      OpCounters tiled_ops, ref_ops;
      joiner.JoinPages(rp, sp, &tiled_sink, &tiled_ops);
      ScalarReferenceJoinPages(*ds, *ds, eps, norm, true, rp, sp, &ref_sink,
                               &ref_ops);
      ASSERT_EQ(tiled_sink.pairs(), ref_sink.pairs())
          << "pages " << rp << "," << sp;
      ASSERT_EQ(tiled_ops, ref_ops) << "pages " << rp << "," << sp;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TiledJoinPropertyTest,
    ::testing::Combine(
        ::testing::Values(Norm::kL1, Norm::kL2, Norm::kLInf),
        ::testing::Values(
            // dims spanning the compile-time widths (8, 16, 64 via
            // padding of 3/13/33/64) and page shapes including
            // single-record pages and a short last page.
            JoinCase{3, 101, 7}, JoinCase{8, 96, 32}, JoinCase{13, 40, 1},
            JoinCase{16, 130, 9}, JoinCase{33, 65, 5},
            JoinCase{64, 48, 16},
            // More records per page than one kernel tile (256), so a
            // single scan spans multiple tiles.
            JoinCase{3, 650, 300})),
    CaseName);

/// Boundary thresholds: eps equal to an exact record-pair distance lands
/// inside the kernels' float error band and must be re-decided exactly —
/// the pair at distance == eps is within, per the scalar reference.
TEST(TiledJoinBoundaryTest, ExactBoundaryEpsMatchesScalarReference) {
  SimulatedDisk disk;
  const size_t dims = 16;
  const VectorData r_data = GenUniform(64, dims, 0x77);
  const VectorData s_data = GenUniform(64, dims, 0x88);
  VectorDataset::Options options;
  options.page_size_bytes = 8 * dims * sizeof(float);
  auto r = VectorDataset::Build(&disk, "r", r_data, options);
  auto s = VectorDataset::Build(&disk, "s", s_data, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());

  for (const Norm norm : {Norm::kL1, Norm::kL2, Norm::kLInf}) {
    // Place eps exactly on several record-pair distances.
    for (const uint64_t probe : {0u, 17u, 40u, 63u}) {
      const double eps = VectorDistance(r->RecordByOriginalId(probe),
                                        s->RecordByOriginalId(63 - probe),
                                        norm);
      VectorPairJoiner joiner(&*r, &*s, eps, norm, false);
      for (uint32_t rp = 0; rp < r->num_pages(); ++rp) {
        for (uint32_t sp = 0; sp < s->num_pages(); ++sp) {
          CollectingSink tiled_sink, ref_sink;
          OpCounters tiled_ops, ref_ops;
          joiner.JoinPages(rp, sp, &tiled_sink, &tiled_ops);
          ScalarReferenceJoinPages(*r, *s, eps, norm, false, rp, sp,
                                   &ref_sink, &ref_ops);
          ASSERT_EQ(tiled_sink.pairs(), ref_sink.pairs())
              << NormName(norm) << " eps=" << eps << " pages " << rp << ","
              << sp;
          ASSERT_EQ(tiled_ops, ref_ops);
        }
      }
    }
  }
}

/// An empty S-side tile sequence: pages whose record count is smaller
/// than one kernel tile, and the page-count edge where the last page
/// holds a single record.
TEST(TiledJoinBoundaryTest, ShortAndSingleRecordPages) {
  SimulatedDisk disk;
  const size_t dims = 8;
  // 33 records at 4 records/page -> last page holds 1 record.
  const VectorData data = GenUniform(33, dims, 0x99);
  VectorDataset::Options options;
  options.page_size_bytes = 4 * dims * sizeof(float);
  auto ds = VectorDataset::Build(&disk, "d", data, options);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->PageRecordCount(ds->num_pages() - 1), 1u);

  VectorPairJoiner joiner(&*ds, &*ds, 0.6, Norm::kL2, false);
  const uint32_t last = ds->num_pages() - 1;
  for (const auto& [rp, sp] :
       {std::pair<uint32_t, uint32_t>{last, last}, {0, last}, {last, 0}}) {
    CollectingSink tiled_sink, ref_sink;
    OpCounters tiled_ops, ref_ops;
    joiner.JoinPages(rp, sp, &tiled_sink, &tiled_ops);
    ScalarReferenceJoinPages(*ds, *ds, 0.6, Norm::kL2, false, rp, sp,
                             &ref_sink, &ref_ops);
    ASSERT_EQ(tiled_sink.pairs(), ref_sink.pairs());
    ASSERT_EQ(tiled_ops, ref_ops);
  }
}

}  // namespace
}  // namespace pmjoin
