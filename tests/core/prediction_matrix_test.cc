#include "core/prediction_matrix.h"

#include <gtest/gtest.h>

namespace pmjoin {
namespace {

TEST(PredictionMatrixTest, EmptyMatrix) {
  PredictionMatrix m(4, 5);
  m.Finalize();
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.MarkedCount(), 0u);
  EXPECT_EQ(m.MarkedRowCount(), 0u);
  EXPECT_EQ(m.MarkedColCount(), 0u);
  EXPECT_DOUBLE_EQ(m.Selectivity(), 0.0);
  EXPECT_FALSE(m.IsMarked(0, 0));
}

TEST(PredictionMatrixTest, MarkAndQuery) {
  PredictionMatrix m(3, 3);
  m.Mark(0, 1);
  m.Mark(2, 2);
  m.Finalize();
  EXPECT_TRUE(m.IsMarked(0, 1));
  EXPECT_TRUE(m.IsMarked(2, 2));
  EXPECT_FALSE(m.IsMarked(0, 0));
  EXPECT_FALSE(m.IsMarked(1, 1));
  EXPECT_EQ(m.MarkedCount(), 2u);
}

TEST(PredictionMatrixTest, DuplicateMarksCoalesce) {
  PredictionMatrix m(2, 2);
  m.Mark(1, 0);
  m.Mark(1, 0);
  m.Mark(1, 0);
  m.Finalize();
  EXPECT_EQ(m.MarkedCount(), 1u);
  EXPECT_EQ(m.RowEntries(1).size(), 1u);
}

TEST(PredictionMatrixTest, RowEntriesSorted) {
  PredictionMatrix m(1, 10);
  m.Mark(0, 7);
  m.Mark(0, 2);
  m.Mark(0, 5);
  m.Finalize();
  EXPECT_EQ(m.RowEntries(0), (std::vector<uint32_t>{2, 5, 7}));
}

TEST(PredictionMatrixTest, AllEntriesRowMajor) {
  PredictionMatrix m(3, 3);
  m.Mark(2, 0);
  m.Mark(0, 2);
  m.Mark(0, 1);
  m.Finalize();
  const std::vector<MatrixEntry> entries = m.AllEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], (MatrixEntry{0, 1}));
  EXPECT_EQ(entries[1], (MatrixEntry{0, 2}));
  EXPECT_EQ(entries[2], (MatrixEntry{2, 0}));
}

TEST(PredictionMatrixTest, MarkedRowsAndCols) {
  PredictionMatrix m(4, 4);
  m.Mark(1, 2);
  m.Mark(1, 3);
  m.Mark(3, 0);
  m.Finalize();
  EXPECT_EQ(m.MarkedRows(), (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(m.MarkedCols(), (std::vector<uint32_t>{0, 2, 3}));
  EXPECT_EQ(m.MarkedRowCount(), 2u);
  EXPECT_EQ(m.MarkedColCount(), 3u);
}

TEST(PredictionMatrixTest, Selectivity) {
  PredictionMatrix m(10, 10);
  for (uint32_t i = 0; i < 10; ++i) m.Mark(i, i);
  m.Finalize();
  EXPECT_DOUBLE_EQ(m.Selectivity(), 0.1);
}

TEST(PredictionMatrixTest, RefinalizeIsIdempotent) {
  PredictionMatrix m(2, 2);
  m.Mark(0, 0);
  m.Finalize();
  m.Finalize();
  EXPECT_EQ(m.MarkedCount(), 1u);
}

TEST(PredictionMatrixTest, DebugString) {
  PredictionMatrix m(2, 4);
  m.Mark(0, 0);
  m.Finalize();
  const std::string s = m.ToDebugString();
  EXPECT_NE(s.find("2x4"), std::string::npos);
  EXPECT_NE(s.find("marked=1"), std::string::npos);
}


TEST(PredictionMatrixTest, ZeroSizedMatrix) {
  PredictionMatrix m(0, 0);
  m.Finalize();
  EXPECT_EQ(m.MarkedCount(), 0u);
  EXPECT_TRUE(m.AllEntries().empty());
  EXPECT_TRUE(m.MarkedRows().empty());
  EXPECT_DOUBLE_EQ(m.Selectivity(), 0.0);
}

}  // namespace
}  // namespace pmjoin
