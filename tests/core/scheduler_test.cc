#include "core/scheduler.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pmjoin {
namespace {

/// Builds a cluster over explicit row/col page ids (entries are synthetic
/// but consistent).
Cluster MakeCluster(std::vector<uint32_t> rows, std::vector<uint32_t> cols) {
  Cluster c;
  c.rows = std::move(rows);
  c.cols = std::move(cols);
  std::sort(c.rows.begin(), c.rows.end());
  std::sort(c.cols.begin(), c.cols.end());
  for (uint32_t r : c.rows) {
    for (uint32_t col : c.cols) c.entries.push_back(MatrixEntry{r, col});
  }
  return c;
}

JoinInput TwoFileInput() {
  JoinInput input;
  input.r_file = 0;
  input.s_file = 1;
  input.r_pages = 100;
  input.s_pages = 100;
  return input;
}

TEST(SharingGraphTest, WeightsAreSharedPageCounts) {
  // Example 2 (§8): five clusters with known page sets.
  // C1 = {r2,r3, s3,s5,s6}, C2 = {r2,r3,r4, s3,s4},
  // C3 = {r5,r6, s4,s7}, C4 = {r1,r4,r7, s2,s7}, C5 = {r7, s1}.
  // (Page ids 1-based in the paper; 0-based here.)
  const std::vector<Cluster> clusters{
      MakeCluster({1, 2}, {2, 4, 5}),    // C1
      MakeCluster({1, 2, 3}, {2, 3}),    // C2
      MakeCluster({4, 5}, {3, 6}),       // C3
      MakeCluster({0, 3, 6}, {1, 6}),    // C4
      MakeCluster({6}, {0}),             // C5
  };
  const JoinInput input = TwoFileInput();
  const std::vector<SharingEdge> edges =
      BuildSharingGraph(clusters, input, nullptr);

  auto weight = [&edges](uint32_t a, uint32_t b) -> uint32_t {
    for (const SharingEdge& e : edges) {
      if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return e.weight;
    }
    return 0;
  };
  // C1∩C2 = {r2,r3,s3} → 3. C2∩C3 = {s4} → 1. C2∩C4 = {r4} → 1.
  // C3∩C4 = {s7} → 1. C4∩C5 = {r7} → 1. C1∩C3 = ∅.
  EXPECT_EQ(weight(0, 1), 3u);
  EXPECT_EQ(weight(1, 2), 1u);
  EXPECT_EQ(weight(1, 3), 1u);
  EXPECT_EQ(weight(2, 3), 1u);
  EXPECT_EQ(weight(3, 4), 1u);
  EXPECT_EQ(weight(0, 2), 0u);
}

TEST(SharingGraphTest, SelfJoinPagesCanCollide) {
  // In a self join, a row page and a col page with the same index are the
  // same physical page.
  JoinInput input;
  input.r_file = 7;
  input.s_file = 7;
  input.self_join = true;
  const std::vector<Cluster> clusters{
      MakeCluster({1}, {2}),  // Pages {1, 2}.
      MakeCluster({2}, {3}),  // Pages {2, 3} — shares page 2 as a row.
  };
  const std::vector<SharingEdge> edges =
      BuildSharingGraph(clusters, input, nullptr);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].weight, 1u);
}

TEST(ScheduleClustersTest, VisitsEveryClusterExactlyOnce) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Cluster> clusters;
    const size_t n = 1 + rng.Uniform(20);
    for (size_t i = 0; i < n; ++i) {
      std::vector<uint32_t> rows, cols;
      const size_t nr = 1 + rng.Uniform(4);
      for (size_t k = 0; k < nr; ++k)
        rows.push_back(static_cast<uint32_t>(rng.Uniform(30)));
      const size_t nc = 1 + rng.Uniform(4);
      for (size_t k = 0; k < nc; ++k)
        cols.push_back(static_cast<uint32_t>(rng.Uniform(30)));
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      std::sort(cols.begin(), cols.end());
      cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
      clusters.push_back(MakeCluster(rows, cols));
    }
    const std::vector<uint32_t> order =
        ScheduleClusters(clusters, TwoFileInput(), nullptr);
    ASSERT_EQ(order.size(), clusters.size());
    std::set<uint32_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), clusters.size());
  }
}

TEST(ScheduleClustersTest, AdjacentClustersShareWhenPossible) {
  // Example-2 graph: the greedy schedule must place C1 next to C2 (their
  // weight-3 edge dominates every alternative).
  const std::vector<Cluster> clusters{
      MakeCluster({1, 2}, {2, 4, 5}),  MakeCluster({1, 2, 3}, {2, 3}),
      MakeCluster({4, 5}, {3, 6}),     MakeCluster({0, 3, 6}, {1, 6}),
      MakeCluster({6}, {0}),
  };
  const std::vector<uint32_t> order =
      ScheduleClusters(clusters, TwoFileInput(), nullptr);
  ASSERT_EQ(order.size(), 5u);
  size_t pos0 = 0, pos1 = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 0) pos0 = i;
    if (order[i] == 1) pos1 = i;
  }
  EXPECT_EQ(std::max(pos0, pos1) - std::min(pos0, pos1), 1u);
}

TEST(ScheduleClustersTest, PathBeatsIndexOrderOnTotalOverlap) {
  // Lemma 4: the schedule's saving is the sum of consecutive overlaps.
  // The greedy path must never be worse than index order on a random
  // instance where index order has no structure.
  Rng rng(11);
  std::vector<Cluster> clusters;
  for (size_t i = 0; i < 15; ++i) {
    std::vector<uint32_t> rows{static_cast<uint32_t>(rng.Uniform(10)),
                               static_cast<uint32_t>(rng.Uniform(10))};
    std::vector<uint32_t> cols{static_cast<uint32_t>(rng.Uniform(10)),
                               static_cast<uint32_t>(rng.Uniform(10))};
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    clusters.push_back(MakeCluster(rows, cols));
  }
  const JoinInput input = TwoFileInput();

  auto overlap = [&input](const Cluster& a, const Cluster& b) {
    const auto pa = ClusterPageSet(a, input);
    const auto pb = ClusterPageSet(b, input);
    size_t count = 0;
    for (const PageId& p : pa) {
      count += std::binary_search(pb.begin(), pb.end(), p) ? 1 : 0;
    }
    return count;
  };
  auto total_overlap = [&clusters,
                        &overlap](const std::vector<uint32_t>& order) {
    size_t total = 0;
    for (size_t i = 1; i < order.size(); ++i) {
      total += overlap(clusters[order[i - 1]], clusters[order[i]]);
    }
    return total;
  };

  const std::vector<uint32_t> scheduled =
      ScheduleClusters(clusters, input, nullptr);
  std::vector<uint32_t> index_order(clusters.size());
  for (uint32_t i = 0; i < clusters.size(); ++i) index_order[i] = i;
  EXPECT_GE(total_overlap(scheduled), total_overlap(index_order));
}

TEST(ScheduleClustersTest, HandlesEdgeSizes) {
  const JoinInput input = TwoFileInput();
  EXPECT_TRUE(ScheduleClusters({}, input, nullptr).empty());
  const std::vector<Cluster> one{MakeCluster({0}, {0})};
  EXPECT_EQ(ScheduleClusters(one, input, nullptr),
            (std::vector<uint32_t>{0}));
}

TEST(ScheduleClustersTest, DisconnectedComponentsAllEmitted) {
  const std::vector<Cluster> clusters{
      MakeCluster({0}, {0}), MakeCluster({0}, {1}),   // Component A.
      MakeCluster({50}, {50}), MakeCluster({50}, {51}),  // Component B.
      MakeCluster({90}, {90}),  // Isolated.
  };
  const std::vector<uint32_t> order =
      ScheduleClusters(clusters, TwoFileInput(), nullptr);
  ASSERT_EQ(order.size(), 5u);
  std::set<uint32_t> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace pmjoin
