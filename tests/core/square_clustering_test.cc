#include "core/square_clustering.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pmjoin {
namespace {

PredictionMatrix RandomMatrix(Rng* rng, uint32_t rows, uint32_t cols,
                              double density) {
  PredictionMatrix m(rows, cols);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) m.Mark(r, c);
    }
  }
  m.Finalize();
  return m;
}

PredictionMatrix ClusteredMatrix(Rng* rng, uint32_t rows, uint32_t cols,
                                 int blobs, uint32_t blob_size) {
  PredictionMatrix m(rows, cols);
  for (int b = 0; b < blobs; ++b) {
    const uint32_t r0 = static_cast<uint32_t>(rng->Uniform(rows));
    const uint32_t c0 = static_cast<uint32_t>(rng->Uniform(cols));
    for (uint32_t i = 0; i < blob_size; ++i) {
      const uint32_t r = std::min<uint32_t>(
          rows - 1, r0 + static_cast<uint32_t>(rng->Uniform(8)));
      const uint32_t c = std::min<uint32_t>(
          cols - 1, c0 + static_cast<uint32_t>(rng->Uniform(8)));
      m.Mark(r, c);
    }
  }
  m.Finalize();
  return m;
}

TEST(SquareClusteringTest, EmptyMatrix) {
  PredictionMatrix m(5, 5);
  m.Finalize();
  EXPECT_TRUE(SquareClustering(m, 4, nullptr).empty());
}

TEST(SquareClusteringTest, SingleEntry) {
  PredictionMatrix m(5, 5);
  m.Mark(2, 3);
  m.Finalize();
  const auto clusters = SquareClustering(m, 4, nullptr);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].rows, (std::vector<uint32_t>{2}));
  EXPECT_EQ(clusters[0].cols, (std::vector<uint32_t>{3}));
  EXPECT_TRUE(ValidateClustering(m, clusters, 4).ok());
}

struct ScCase {
  uint32_t rows, cols, buffer;
  double density;
  uint64_t seed;
};

class SquareClusteringPropertyTest
    : public ::testing::TestWithParam<ScCase> {};

TEST_P(SquareClusteringPropertyTest, ValidPartitionWithinBuffer) {
  const ScCase& c = GetParam();
  Rng rng(c.seed);
  const PredictionMatrix m =
      RandomMatrix(&rng, c.rows, c.cols, c.density);
  const auto clusters = SquareClustering(m, c.buffer, nullptr);
  EXPECT_TRUE(ValidateClustering(m, clusters, c.buffer).ok())
      << ValidateClustering(m, clusters, c.buffer).ToString();
}

TEST_P(SquareClusteringPropertyTest, RowsColsRoughlyBalancedWhenDense) {
  // Theorem 2's optimum is r = c = B/2; interior clusters of a dense
  // matrix should stay within a factor ~3 of balance.
  const ScCase& c = GetParam();
  if (c.density < 0.2) return;  // Only meaningful when clusters fill up.
  if (c.rows < c.buffer || c.cols < c.buffer) {
    return;  // Degenerate shapes cannot balance.
  }
  Rng rng(c.seed + 1);
  const PredictionMatrix m =
      RandomMatrix(&rng, c.rows, c.cols, c.density);
  const auto clusters = SquareClustering(m, c.buffer, nullptr);
  size_t balanced = 0;
  for (const Cluster& cluster : clusters) {
    if (cluster.PageCount() < c.buffer / 2) continue;  // Boundary cluster.
    const double ratio = double(cluster.rows.size()) /
                         std::max<size_t>(1, cluster.cols.size());
    if (ratio > 1.0 / 3 && ratio < 3.0) ++balanced;
  }
  if (!clusters.empty()) {
    EXPECT_GT(balanced + 1, clusters.size() / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SquareClusteringPropertyTest,
    ::testing::Values(ScCase{20, 20, 8, 0.3, 1}, ScCase{20, 20, 8, 0.05, 2},
                      ScCase{50, 30, 10, 0.5, 3}, ScCase{30, 50, 6, 0.9, 4},
                      ScCase{100, 100, 16, 0.02, 5},
                      ScCase{5, 200, 12, 0.3, 6},
                      ScCase{200, 5, 12, 0.3, 7},
                      ScCase{64, 64, 4, 0.2, 8},
                      ScCase{64, 64, 2, 0.2, 9},
                      ScCase{1, 50, 8, 0.8, 10},
                      ScCase{50, 1, 8, 0.8, 11}));

TEST(SquareClusteringTest, SingleRowMatrix) {
  PredictionMatrix m(1, 100);
  for (uint32_t c = 0; c < 100; ++c) m.Mark(0, c);
  m.Finalize();
  const auto clusters = SquareClustering(m, 10, nullptr);
  EXPECT_TRUE(ValidateClustering(m, clusters, 10).ok());
  // One row + up to 9 cols per cluster → at least ceil(100/9) clusters.
  EXPECT_GE(clusters.size(), 100u / 9u);
}

TEST(SquareClusteringTest, SingleColumnMatrix) {
  PredictionMatrix m(100, 1);
  for (uint32_t r = 0; r < 100; ++r) m.Mark(r, 0);
  m.Finalize();
  const auto clusters = SquareClustering(m, 10, nullptr);
  EXPECT_TRUE(ValidateClustering(m, clusters, 10).ok());
}

TEST(SquareClusteringTest, DiagonalMatrix) {
  PredictionMatrix m(50, 50);
  for (uint32_t i = 0; i < 50; ++i) m.Mark(i, i);
  m.Finalize();
  const auto clusters = SquareClustering(m, 10, nullptr);
  EXPECT_TRUE(ValidateClustering(m, clusters, 10).ok());
  // A diagonal has r = c = w per cluster → each cluster holds ~B/2
  // entries → ~10 clusters.
  EXPECT_GE(clusters.size(), 50u / 5u);
}

TEST(SquareClusteringTest, FullMatrixDenseClusters) {
  PredictionMatrix m(20, 20);
  for (uint32_t r = 0; r < 20; ++r) {
    for (uint32_t c = 0; c < 20; ++c) m.Mark(r, c);
  }
  m.Finalize();
  const uint32_t buffer = 10;
  const auto clusters = SquareClustering(m, buffer, nullptr);
  ASSERT_TRUE(ValidateClustering(m, clusters, buffer).ok());
  // Dense matrix → interior clusters should hold r·c = (B/2)² entries,
  // far more than the r + c pages they cost (Theorem 2 payoff).
  size_t dense_clusters = 0;
  for (const Cluster& cluster : clusters) {
    if (cluster.entries.size() >=
        cluster.rows.size() * cluster.cols.size()) {
      ++dense_clusters;
    }
  }
  EXPECT_EQ(dense_clusters, clusters.size());  // Rectangles fully marked.
}

TEST(SquareClusteringTest, ClusteredBlobsStayTogether) {
  Rng rng(13);
  const PredictionMatrix m = ClusteredMatrix(&rng, 100, 100, 6, 40);
  const auto clusters = SquareClustering(m, 20, nullptr);
  EXPECT_TRUE(ValidateClustering(m, clusters, 20).ok());
  // Blob structure → dramatically fewer clusters than entries.
  EXPECT_LT(clusters.size(), m.MarkedCount() / 2);
}

TEST(SquareClusteringTest, CountsClusterOps) {
  Rng rng(17);
  const PredictionMatrix m = RandomMatrix(&rng, 30, 30, 0.3);
  OpCounters ops;
  SquareClustering(m, 8, &ops);
  EXPECT_GE(ops.cluster_ops, m.MarkedCount());
}

TEST(SquareClusteringTest, TinyBufferStillTerminates) {
  Rng rng(19);
  const PredictionMatrix m = RandomMatrix(&rng, 40, 40, 0.4);
  const auto clusters = SquareClustering(m, 2, nullptr);
  EXPECT_TRUE(ValidateClustering(m, clusters, 2).ok());
}

}  // namespace
}  // namespace pmjoin
