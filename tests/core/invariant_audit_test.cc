#include "core/invariant_audit.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/square_clustering.h"
#include "io/buffer_pool.h"
#include "io/simulated_disk.h"
#include "join_test_util.h"

namespace pmjoin {
namespace {

PredictionMatrix RandomMatrix(Rng* rng, uint32_t rows, uint32_t cols,
                              double density) {
  PredictionMatrix m(rows, cols);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) m.Mark(r, c);
    }
  }
  m.Finalize();
  return m;
}

// ---------------------------------------------------------------------------
// PredictionMatrix structural audit.

TEST(PredictionMatrixAuditTest, FinalizedMatrixPasses) {
  Rng rng(7);
  const PredictionMatrix m = RandomMatrix(&rng, 20, 30, 0.2);
  EXPECT_TRUE(m.ValidateInvariants().ok());
}

TEST(PredictionMatrixAuditTest, UnfinalizedMatrixIsCaught) {
  PredictionMatrix m(4, 4);
  m.Mark(1, 2);  // Mark without Finalize: queries would see garbage.
  const Status st = m.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInternal());
}

// ---------------------------------------------------------------------------
// Square-clustering audit (Theorem 2 balance, Lemma 2 bound).

TEST(SquareClusteringAuditTest, ScOutputPassesOnRandomMatrices) {
  Rng rng(11);
  for (uint32_t buffer : {2u, 4u, 10u, 31u}) {
    const PredictionMatrix m = RandomMatrix(&rng, 40, 40, 0.15);
    const std::vector<Cluster> clusters = SquareClustering(m, buffer,
                                                           nullptr);
    EXPECT_TRUE(ValidateSquareClusters(m, clusters, buffer).ok())
        << "buffer=" << buffer;
  }
}

/// Builds the one-cluster clustering over a (rows x 1) column matrix —
/// every row marked in column 0 — used to seed shape violations.
std::pair<PredictionMatrix, Cluster> ColumnMatrixCluster(uint32_t rows) {
  PredictionMatrix m(rows, 1);
  Cluster cluster;
  for (uint32_t r = 0; r < rows; ++r) {
    m.Mark(r, 0);
    cluster.rows.push_back(r);
    cluster.entries.push_back(MatrixEntry{r, 0});
  }
  cluster.cols.push_back(0);
  m.Finalize();
  return {std::move(m), std::move(cluster)};
}

TEST(SquareClusteringAuditTest, SeededUnbalancedClusterIsCaught) {
  // 4 rows x 1 column in one cluster: PageCount 5 fits B = 6 (Lemma 2
  // holds) but the row side exceeds the equal-split bound B/2 = 3 — the
  // unbalanced shape Theorem 2 rules out for SC output.
  auto [m, cluster] = ColumnMatrixCluster(4);
  std::vector<Cluster> clusters{std::move(cluster)};
  EXPECT_TRUE(ValidateClustering(m, clusters, 6).ok())
      << "violation must be invisible to the generic clustering check";
  const Status st = ValidateSquareClusters(m, clusters, 6);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unbalanced square cluster"),
            std::string::npos)
      << st.ToString();
}

TEST(SquareClusteringAuditTest, PhantomPageInRowListIsCaught) {
  // A row listed without any entry would inflate the Lemma-2 page bound
  // silently; the exactness check rejects it.
  auto [m, cluster] = ColumnMatrixCluster(2);
  cluster.rows.push_back(2);  // Phantom: matrix has only rows 0..1 marked.
  std::vector<Cluster> clusters{std::move(cluster)};
  const Status st = ValidateSquareClusters(m, clusters, 8);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not exactly"), std::string::npos)
      << st.ToString();
}

#ifdef PMJOIN_PARANOID
TEST(SquareClusteringAuditDeathTest, ParanoidBuildAbortsOnSeededViolation) {
  // The same audit wired into the driver's phase boundary
  // (core/join_driver.cc) through PMJOIN_DCHECK_OK: in a paranoid build a
  // seeded unbalanced cluster must abort, not propagate.
  auto [m, cluster] = ColumnMatrixCluster(4);
  std::vector<Cluster> clusters{std::move(cluster)};
  EXPECT_DEATH(PMJOIN_DCHECK_OK(ValidateSquareClusters(m, clusters, 6)),
               "unbalanced square cluster");
}
#endif  // PMJOIN_PARANOID

// ---------------------------------------------------------------------------
// Matrix-covers-reference-pairs audit (Theorem 1 / Lemma 1 completeness).

TEST(MatrixCoverageAuditTest, ExactMatrixCoversReferencePairs) {
  testing_util::SmallVectorJoin join(60, 50, /*seed=*/3, /*eps=*/0.05);
  const auto expected = join.Expected();
  ASSERT_FALSE(expected.empty()) << "sample input produced no pairs";
  EXPECT_TRUE(ValidateMatrixCoversPairs(join.matrix(), join.r(), join.s(),
                                        /*self_join=*/false, expected)
                  .ok());
}

TEST(MatrixCoverageAuditTest, EmptyMatrixFailsCoverage) {
  testing_util::SmallVectorJoin join(60, 50, /*seed=*/3, /*eps=*/0.05);
  const auto expected = join.Expected();
  ASSERT_FALSE(expected.empty());
  // A matrix that marks nothing claims (Theorem 1) that no page pair can
  // contribute results — refuted by every reference pair.
  PredictionMatrix empty(join.r().num_pages(), join.s().num_pages());
  empty.Finalize();
  const Status st = ValidateMatrixCoversPairs(empty, join.r(), join.s(),
                                              /*self_join=*/false, expected);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("Theorem 1"), std::string::npos)
      << st.ToString();
}

// ---------------------------------------------------------------------------
// BufferPool bookkeeping audit across its state transitions.

TEST(BufferPoolAuditTest, InvariantsHoldAcrossPinEvictUnpinCycles) {
  SimulatedDisk disk;
  const uint32_t file = disk.CreateFile("data", 64);
  BufferPool pool(&disk, 4);
  ASSERT_TRUE(pool.ValidateInvariants().ok());

  // Fill, pin, evict, unpin, batch-pin: audit after every transition.
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(pool.Touch({file, p}).ok());
    ASSERT_TRUE(pool.ValidateInvariants().ok());
  }
  ASSERT_TRUE(pool.Pin({file, 1}).ok());
  ASSERT_TRUE(pool.ValidateInvariants().ok());
  ASSERT_TRUE(pool.Touch({file, 9}).ok());  // Evicts an unpinned page.
  ASSERT_TRUE(pool.ValidateInvariants().ok());
  pool.Unpin({file, 1});
  ASSERT_TRUE(pool.ValidateInvariants().ok());

  const std::vector<PageId> batch{{file, 20}, {file, 21}, {file, 22}};
  ASSERT_TRUE(pool.PinBatch(batch).ok());
  ASSERT_TRUE(pool.ValidateInvariants().ok());
  pool.UnpinBatch(batch);
  ASSERT_TRUE(pool.ValidateInvariants().ok());
  ASSERT_TRUE(pool.Clear().ok());
  EXPECT_TRUE(pool.ValidateInvariants().ok());
}

TEST(BufferPoolAuditTest, InvariantsHoldAfterFailedBatchRollback) {
  SimulatedDisk disk;
  const uint32_t file = disk.CreateFile("data", 64);
  BufferPool pool(&disk, 3);
  ASSERT_TRUE(pool.Pin({file, 0}).ok());
  ASSERT_TRUE(pool.Pin({file, 1}).ok());
  // Batch of 3 misses cannot fit beside 2 pinned pages: PinBatch fails
  // and rolls its own pins back; the audit must still pass afterwards.
  const std::vector<PageId> batch{{file, 10}, {file, 11}, {file, 12}};
  const Status st = pool.PinBatch(batch);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsBufferFull());
  EXPECT_TRUE(pool.ValidateInvariants().ok());
  EXPECT_EQ(pool.PinnedCount(), 2u);
  pool.Unpin({file, 0});
  pool.Unpin({file, 1});
  EXPECT_TRUE(pool.ValidateInvariants().ok());
}

}  // namespace
}  // namespace pmjoin
