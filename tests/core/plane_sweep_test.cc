#include "core/plane_sweep.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::RandomBox;

std::vector<Mbr> RandomBoxes(Rng* rng, size_t n, size_t dims,
                             double max_side) {
  std::vector<Mbr> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i)
    boxes.push_back(RandomBox(rng, dims, max_side));
  return boxes;
}

/// Brute-force the expected marks.
std::vector<MatrixEntry> BruteMarks(const std::vector<Mbr>& r,
                                    const std::vector<Mbr>& s,
                                    double threshold, Norm norm) {
  std::vector<MatrixEntry> out;
  for (uint32_t i = 0; i < r.size(); ++i) {
    for (uint32_t j = 0; j < s.size(); ++j) {
      if (r[i].MinDist(s[j], norm) <= threshold) {
        out.push_back(MatrixEntry{i, j});
      }
    }
  }
  return out;
}

struct SweepCase {
  size_t nr, ns, dims;
  double threshold;
  Norm norm;
};

class FlatSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FlatSweepTest, MatchesBruteForce) {
  const SweepCase& c = GetParam();
  Rng rng(101 + c.nr + c.dims);
  const auto r = RandomBoxes(&rng, c.nr, c.dims, 0.15);
  const auto s = RandomBoxes(&rng, c.ns, c.dims, 0.15);
  const PredictionMatrix matrix =
      BuildPredictionMatrixFlat(r, s, c.threshold, c.norm, nullptr);
  EXPECT_EQ(matrix.AllEntries(), BruteMarks(r, s, c.threshold, c.norm));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FlatSweepTest,
    ::testing::Values(SweepCase{1, 1, 2, 0.1, Norm::kL2},
                      SweepCase{50, 40, 2, 0.05, Norm::kL2},
                      SweepCase{50, 40, 2, 0.05, Norm::kL1},
                      SweepCase{50, 40, 2, 0.05, Norm::kLInf},
                      SweepCase{80, 80, 3, 0.2, Norm::kL2},
                      SweepCase{30, 60, 5, 0.3, Norm::kL2},
                      SweepCase{100, 100, 2, 0.0, Norm::kL2},
                      SweepCase{60, 60, 2, 5.0, Norm::kL2}));

TEST(FlatSweepTest, ZeroThresholdMeansTouchingOnly) {
  const std::vector<Mbr> r{Mbr::FromBounds({0.0f}, {1.0f})};
  const std::vector<Mbr> s{Mbr::FromBounds({1.0f}, {2.0f}),
                           Mbr::FromBounds({1.5f}, {2.0f})};
  const PredictionMatrix matrix =
      BuildPredictionMatrixFlat(r, s, 0.0, Norm::kL2, nullptr);
  EXPECT_TRUE(matrix.IsMarked(0, 0));
  EXPECT_FALSE(matrix.IsMarked(0, 1));
}

TEST(FlatSweepTest, CountsMbrTests) {
  Rng rng(7);
  const auto r = RandomBoxes(&rng, 40, 2, 0.1);
  const auto s = RandomBoxes(&rng, 40, 2, 0.1);
  OpCounters ops;
  BuildPredictionMatrixFlat(r, s, 0.05, Norm::kL2, &ops);
  EXPECT_GT(ops.mbr_tests, 0u);
  // The sweep must beat the full cross product on sparse data.
  EXPECT_LT(ops.mbr_tests, 40u * 40u);
}

TEST(FilterChildrenTest, NeverRemovesTruePairs) {
  // Fig. 2 safety: any (i, j) with MinDist <= threshold must survive.
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto r = RandomBoxes(&rng, 20, 2, 0.2);
    const auto s = RandomBoxes(&rng, 20, 2, 0.2);
    const double threshold = rng.UniformDouble() * 0.2;

    std::vector<SweepItem> ri, si;
    for (uint32_t i = 0; i < r.size(); ++i)
      ri.push_back(SweepItem{r[i], i});
    for (uint32_t j = 0; j < s.size(); ++j)
      si.push_back(SweepItem{s[j], j});
    std::vector<uint32_t> keep_r, keep_s;
    FilterChildren(ri, si, threshold, 5, nullptr, &keep_r, &keep_s);

    for (uint32_t i = 0; i < r.size(); ++i) {
      for (uint32_t j = 0; j < s.size(); ++j) {
        if (r[i].MinDist(s[j], Norm::kLInf) <= threshold) {
          EXPECT_TRUE(std::find(keep_r.begin(), keep_r.end(), i) !=
                      keep_r.end())
              << "filter dropped live r item " << i;
          EXPECT_TRUE(std::find(keep_s.begin(), keep_s.end(), j) !=
                      keep_s.end())
              << "filter dropped live s item " << j;
        }
      }
    }
  }
}

TEST(FilterChildrenTest, RemovesFarItems) {
  // The Fig. 2 example shape: items far from the overlap region get cut.
  std::vector<SweepItem> r, s;
  // R children spread over [0, 10]; S children over [9, 20].
  for (uint32_t i = 0; i < 10; ++i) {
    const float x = i * 1.0f;
    r.push_back(SweepItem{Mbr::FromBounds({x, 0.0f}, {x + 0.5f, 1.0f}), i});
  }
  for (uint32_t j = 0; j < 10; ++j) {
    const float x = 9.0f + j * 1.0f;
    s.push_back(SweepItem{Mbr::FromBounds({x, 0.0f}, {x + 0.5f, 1.0f}), j});
  }
  std::vector<uint32_t> keep_r, keep_s;
  FilterChildren(r, s, 0.1, 5, nullptr, &keep_r, &keep_s);
  // Only the rightmost R children and leftmost S children can interact.
  EXPECT_LT(keep_r.size(), 3u);
  EXPECT_LT(keep_s.size(), 3u);
}

TEST(FilterChildrenTest, DisjointSetsFilterToNothing) {
  std::vector<SweepItem> r{{Mbr::FromBounds({0.0f}, {1.0f}), 0}};
  std::vector<SweepItem> s{{Mbr::FromBounds({5.0f}, {6.0f}), 0}};
  std::vector<uint32_t> keep_r, keep_s;
  FilterChildren(r, s, 0.5, 5, nullptr, &keep_r, &keep_s);
  EXPECT_TRUE(keep_r.empty());
  EXPECT_TRUE(keep_s.empty());
}

struct HierCase {
  size_t nr, ns;
  double threshold;
  Norm norm;
  uint32_t filter_iters;
};

class HierarchicalSweepTest : public ::testing::TestWithParam<HierCase> {};

TEST_P(HierarchicalSweepTest, EquivalentToFlatConstruction) {
  // The paper's Fig. 1 algorithm must produce exactly the same matrix as
  // the leaf-level definition, for any filter setting.
  const HierCase& c = GetParam();
  Rng rng(211 + c.nr + c.filter_iters);
  const auto r = RandomBoxes(&rng, c.nr, 2, 0.05);
  const auto s = RandomBoxes(&rng, c.ns, 2, 0.05);

  RStarTree::Options small;
  small.max_entries = 8;
  small.min_entries = 3;
  small.reinsert_count = 2;
  std::vector<RStarTree::Entry> re, se;
  for (uint32_t i = 0; i < r.size(); ++i)
    re.push_back(RStarTree::Entry{r[i], i});
  for (uint32_t j = 0; j < s.size(); ++j)
    se.push_back(RStarTree::Entry{s[j], j});
  const RStarTree rt = RStarTree::BulkLoadStr(2, re, small);
  const RStarTree st = RStarTree::BulkLoadStr(2, se, small);

  const PredictionMatrix flat =
      BuildPredictionMatrixFlat(r, s, c.threshold, c.norm, nullptr);
  const PredictionMatrix hier = BuildPredictionMatrixHierarchical(
      rt, st, static_cast<uint32_t>(r.size()),
      static_cast<uint32_t>(s.size()), c.threshold, c.norm, c.filter_iters,
      nullptr);
  EXPECT_EQ(hier.AllEntries(), flat.AllEntries());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HierarchicalSweepTest,
    ::testing::Values(HierCase{100, 100, 0.05, Norm::kL2, 5},
                      HierCase{100, 100, 0.05, Norm::kL2, 0},
                      HierCase{100, 100, 0.05, Norm::kL2, 1},
                      HierCase{300, 200, 0.02, Norm::kL1, 5},
                      HierCase{300, 200, 0.02, Norm::kLInf, 5},
                      HierCase{64, 500, 0.1, Norm::kL2, 5},
                      HierCase{5, 5, 0.3, Norm::kL2, 5}));

TEST(HierarchicalSweepTest, FilterReducesMbrTests) {
  Rng rng(17);
  const auto r = RandomBoxes(&rng, 2000, 2, 0.01);
  const auto s = RandomBoxes(&rng, 2000, 2, 0.01);
  RStarTree::Options small;
  small.max_entries = 16;
  small.min_entries = 6;
  small.reinsert_count = 4;
  std::vector<RStarTree::Entry> re, se;
  for (uint32_t i = 0; i < r.size(); ++i)
    re.push_back(RStarTree::Entry{r[i], i});
  for (uint32_t j = 0; j < s.size(); ++j)
    se.push_back(RStarTree::Entry{s[j], j});
  const RStarTree rt = RStarTree::BulkLoadStr(2, re, small);
  const RStarTree st = RStarTree::BulkLoadStr(2, se, small);

  OpCounters flat_ops, hier_ops;
  BuildPredictionMatrixFlat(r, s, 0.01, Norm::kL2, &flat_ops);
  BuildPredictionMatrixHierarchical(rt, st, 2000, 2000, 0.01, Norm::kL2, 5,
                                    &hier_ops);
  // The hierarchy prunes whole subtree pairs; it must not do more box
  // tests than the flat sweep does on this clustered data.
  EXPECT_LT(hier_ops.mbr_tests, flat_ops.mbr_tests);
}

}  // namespace
}  // namespace pmjoin
