#include "core/knn_join.h"

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/pair_sink.h"
#include "common/thread_pool.h"
#include "core/join_driver.h"
#include "core/reference_join.h"
#include "data/generators.h"
#include "data/vector_dataset.h"
#include "io/buffer_pool.h"
#include "io/storage_backend.h"
#include "test_util.h"

namespace pmjoin {
namespace {

using testing_util::MakeTestBackend;

/// Emission-order pair list of a reference kNN run.
std::vector<std::pair<uint64_t, uint64_t>> ReferencePairs(
    const VectorData& r, const VectorData& s, uint32_t k, Norm norm,
    bool self_join) {
  CollectingSink sink;
  ReferenceKnnJoin(r, s, k, norm, self_join, &sink);
  return sink.pairs();
}

TEST(KnnResultSinkTest, KeepsKSmallestWithIdTieBreak) {
  KnnResultSink sink(1, 2);
  EXPECT_TRUE(std::isinf(sink.BoundStat(0)));
  sink.Offer(0, 5.0, 10);
  EXPECT_TRUE(std::isinf(sink.BoundStat(0)));  // heap not full yet
  sink.Offer(0, 3.0, 11);
  EXPECT_DOUBLE_EQ(sink.BoundStat(0), 5.0);
  // Equal statistic, smaller id: displaces the current k-th entry.
  sink.Offer(0, 5.0, 7);
  EXPECT_DOUBLE_EQ(sink.BoundStat(0), 5.0);
  // Equal statistic, larger id: rejected.
  sink.Offer(0, 5.0, 99);
  // Strictly smaller: displaces.
  sink.Offer(0, 1.0, 42);
  const std::vector<KnnResultSink::Neighbor> got = sink.SortedNeighbors(0);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 42u);
  EXPECT_DOUBLE_EQ(got[0].stat, 1.0);
  EXPECT_EQ(got[1].id, 11u);
  EXPECT_DOUBLE_EQ(got[1].stat, 3.0);
  // +infinity offers (filtered kernel rows) are ignored.
  sink.Offer(0, std::numeric_limits<double>::infinity(), 1);
  EXPECT_EQ(sink.SortedNeighbors(0).size(), 2u);
}

TEST(KnnResultSinkTest, EmitOrdersRowsThenStatThenId) {
  KnnResultSink sink(2, 2);
  sink.Offer(1, 2.0, 5);
  sink.Offer(1, 1.0, 9);
  sink.Offer(0, 4.0, 3);
  CollectingSink pairs;
  OpCounters ops;
  EXPECT_EQ(sink.Emit(&pairs, &ops), 3u);
  EXPECT_EQ(ops.result_pairs, 3u);
  const std::vector<std::pair<uint64_t, uint64_t>> expected = {
      {0, 3}, {1, 9}, {1, 5}};
  EXPECT_EQ(pairs.pairs(), expected);
}

TEST(KnnCandidateMatrixTest, BuildSortsRowsAndPassesAudit) {
  VectorData data = GenRoadNetwork(400, 3);
  auto disk = MakeTestBackend();
  VectorDataset::Options layout;
  layout.page_size_bytes = 128;
  VectorDataset ds =
      VectorDataset::Build(disk.get(), "m", data, layout).value();
  ASSERT_GT(ds.num_pages(), 4u);
  OpCounters ops;
  const KnnCandidateMatrix matrix = KnnCandidateMatrix::Build(
      ds.page_mbrs(), ds.page_mbrs(), Norm::kL2, &ops);
  EXPECT_EQ(matrix.rows(), ds.num_pages());
  EXPECT_EQ(matrix.cols(), ds.num_pages());
  EXPECT_EQ(ops.mbr_tests,
            uint64_t(ds.num_pages()) * ds.num_pages());
  ASSERT_TRUE(matrix.ValidateInvariants().ok());
  for (uint32_t rp = 0; rp < matrix.rows(); ++rp) {
    const auto& row = matrix.Row(rp);
    ASSERT_EQ(row.size(), matrix.cols());
    for (size_t i = 1; i < row.size(); ++i)
      EXPECT_LE(row[i - 1].bound_stat, row[i].bound_stat);
    // A self page pair has MINDIST zero, so it must lead the row.
    EXPECT_DOUBLE_EQ(row[0].bound_stat, 0.0);
  }
}

/// Property sweep: driver kNN == brute-force reference, as exact ordered
/// pair sequences, across k x dims x norm.
TEST(KnnJoinPropertyTest, MatchesReferenceAcrossKDimsNorms) {
  auto disk = MakeTestBackend();
  JoinDriver driver(disk.get());
  for (const size_t dims : {3u, 16u, 64u}) {
    const VectorData r_raw = GenUniform(90, dims, /*seed=*/7);
    const VectorData s_raw = GenUniform(120, dims, /*seed=*/8);
    VectorDataset::Options layout;
    layout.page_size_bytes = 1024;
    VectorDataset r = VectorDataset::Build(disk.get(),
                                           "r" + std::to_string(dims), r_raw,
                                           layout)
                          .value();
    VectorDataset s = VectorDataset::Build(disk.get(),
                                           "s" + std::to_string(dims), s_raw,
                                           layout)
                          .value();
    for (const uint32_t k : {1u, 4u, 16u}) {
      for (const Norm norm : {Norm::kL1, Norm::kL2, Norm::kLInf}) {
        JoinOptions options;
        options.buffer_pages = 16;
        options.norm = norm;
        CollectingSink sink;
        auto report = driver.RunKnnJoin(r, s, k, options, &sink);
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        EXPECT_EQ(report->algorithm, Algorithm::kKnn);
        const auto expected = ReferencePairs(r_raw, s_raw, k, norm, false);
        EXPECT_EQ(sink.pairs(), expected)
            << "dims=" << dims << " k=" << k;
        EXPECT_EQ(report->result_pairs, expected.size());
        EXPECT_EQ(report->ops.result_pairs, expected.size());
      }
    }
  }
}

TEST(KnnJoinPropertyTest, SelfJoinSkipsOnlyIdentityPairs) {
  auto disk = MakeTestBackend();
  JoinDriver driver(disk.get());
  const VectorData raw = GenCorrelatedClusters(150, 8, /*seed=*/3);
  VectorDataset::Options layout;
  layout.page_size_bytes = 512;
  VectorDataset r =
      VectorDataset::Build(disk.get(), "self", raw, layout).value();
  JoinOptions options;
  options.buffer_pages = 8;
  CollectingSink sink;
  auto report = driver.RunKnnJoin(r, r, 3, options, &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(sink.pairs(), ReferencePairs(raw, raw, 3, Norm::kL2, true));
  for (const auto& [rid, sid] : sink.pairs()) EXPECT_NE(rid, sid);
}

TEST(KnnJoinPropertyTest, TiesAtKthDistanceResolveToSmallerId) {
  // Four S copies of the same point at equal distance from every R record:
  // with k=2 the retained neighbors must be the two smallest ids.
  VectorData r_raw, s_raw;
  r_raw.dims = s_raw.dims = 2;
  r_raw.values = {0.0f, 0.0f, 0.25f, 0.0f};
  for (int copy = 0; copy < 4; ++copy) {
    s_raw.values.push_back(0.5f);
    s_raw.values.push_back(0.5f);
  }
  auto disk = MakeTestBackend();
  VectorDataset::Options layout;
  layout.page_size_bytes = 64;
  VectorDataset r =
      VectorDataset::Build(disk.get(), "tr", r_raw, layout).value();
  VectorDataset s =
      VectorDataset::Build(disk.get(), "ts", s_raw, layout).value();
  JoinDriver driver(disk.get());
  JoinOptions options;
  options.buffer_pages = 4;
  CollectingSink sink;
  auto report = driver.RunKnnJoin(r, s, 2, options, &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::vector<std::pair<uint64_t, uint64_t>> expected = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  EXPECT_EQ(sink.pairs(), expected);
  EXPECT_EQ(sink.pairs(), ReferencePairs(r_raw, s_raw, 2, Norm::kL2, false));
}

TEST(KnnJoinPropertyTest, KAtLeastCardinalityReturnsAllPairs) {
  auto disk = MakeTestBackend();
  JoinDriver driver(disk.get());
  const VectorData r_raw = GenUniform(40, 4, /*seed=*/11);
  const VectorData s_raw = GenUniform(10, 4, /*seed=*/12);
  VectorDataset::Options layout;
  layout.page_size_bytes = 256;
  VectorDataset r =
      VectorDataset::Build(disk.get(), "kr", r_raw, layout).value();
  VectorDataset s =
      VectorDataset::Build(disk.get(), "ks", s_raw, layout).value();
  JoinOptions options;
  options.buffer_pages = 8;
  CollectingSink sink;
  auto report = driver.RunKnnJoin(r, s, /*k=*/16, options, &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Every (r, s) pair is a neighbor when k >= |S|.
  EXPECT_EQ(sink.pairs().size(), r_raw.count() * s_raw.count());
  EXPECT_EQ(sink.pairs(), ReferencePairs(r_raw, s_raw, 16, Norm::kL2, false));
}

TEST(KnnJoinPropertyTest, ParallelRunIsByteIdenticalToSerial) {
  auto disk = MakeTestBackend();
  JoinDriver driver(disk.get());
  const VectorData r_raw = GenCorrelatedClusters(300, 8, /*seed=*/21);
  const VectorData s_raw = GenCorrelatedClusters(300, 8, /*seed=*/22);
  VectorDataset::Options layout;
  layout.page_size_bytes = 512;
  VectorDataset r =
      VectorDataset::Build(disk.get(), "pr", r_raw, layout).value();
  VectorDataset s =
      VectorDataset::Build(disk.get(), "ps", s_raw, layout).value();

  std::optional<JoinReport> serial_report;
  std::vector<std::pair<uint64_t, uint64_t>> serial_pairs;
  for (const uint32_t threads : {1u, 8u}) {
    JoinOptions options;
    options.buffer_pages = 12;
    options.num_threads = threads;
    CollectingSink sink;
    const IoStats before = disk->stats();
    auto report = driver.RunKnnJoin(r, s, 4, options, &sink);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const IoStats delta = disk->stats().Delta(before);
    if (threads == 1) {
      serial_report = *report;
      serial_pairs = sink.pairs();
      EXPECT_EQ(serial_pairs, ReferencePairs(r_raw, s_raw, 4, Norm::kL2,
                                             false));
    } else {
      EXPECT_EQ(sink.pairs(), serial_pairs);
      EXPECT_EQ(report->ops, serial_report->ops);
      EXPECT_EQ(report->io, serial_report->io);
      EXPECT_EQ(delta, serial_report->io);
    }
  }
}

/// Pruning is answer-preserving and strictly cheaper on clustered data at
/// the paper-style operating point (k=8) — the tentpole's I/O acceptance
/// criterion, asserted over modeled pages_read.
TEST(KnnJoinPruningTest, PruningKeepsAnswersAndStrictlyCutsPageReads) {
  auto disk = MakeTestBackend();
  const VectorData r_raw = GenCorrelatedClusters(500, 8, /*seed=*/31);
  const VectorData s_raw = GenCorrelatedClusters(500, 8, /*seed=*/32);
  VectorDataset::Options layout;
  layout.page_size_bytes = 512;
  VectorDataset r =
      VectorDataset::Build(disk.get(), "cr", r_raw, layout).value();
  VectorDataset s =
      VectorDataset::Build(disk.get(), "cs", s_raw, layout).value();
  const KnnCandidateMatrix matrix = KnnCandidateMatrix::Build(
      r.page_mbrs(), s.page_mbrs(), Norm::kL2, nullptr);

  IoStats reads[2];
  std::vector<std::pair<uint64_t, uint64_t>> pairs[2];
  for (const bool prune : {false, true}) {
    BufferPool pool(disk.get(), 8);
    KnnJoinOptions options;
    options.k = 8;
    options.prune = prune;
    KnnResultSink results(r.num_records(), options.k);
    OpCounters ops;
    const IoStats before = disk->stats();
    ASSERT_TRUE(KnnJoinVectors(r, s, matrix, options, &pool, &results, &ops)
                    .ok());
    reads[prune ? 1 : 0] = disk->stats().Delta(before);
    CollectingSink sink;
    results.Emit(&sink, nullptr);
    pairs[prune ? 1 : 0] = sink.pairs();
    ASSERT_TRUE(pool.CheckQuiescent().ok());
  }
  EXPECT_EQ(pairs[0], pairs[1]);
  EXPECT_EQ(pairs[1], ReferencePairs(r_raw, s_raw, 8, Norm::kL2, false));
  EXPECT_LT(reads[1].pages_read, reads[0].pages_read);
}

TEST(KnnJoinErrorTest, RejectsBadShapesAndParameters) {
  auto disk = MakeTestBackend();
  JoinDriver driver(disk.get());
  const VectorData raw = GenRoadNetwork(60, 41);
  VectorDataset::Options layout;
  layout.page_size_bytes = 128;
  VectorDataset r =
      VectorDataset::Build(disk.get(), "er", raw, layout).value();
  JoinOptions options;
  options.buffer_pages = 4;
  CollectingSink sink;
  // k = 0 is not a kNN query.
  EXPECT_TRUE(driver.RunKnnJoin(r, r, 0, options, &sink)
                  .status()
                  .IsInvalidArgument());
  // kKnn is not an eps-join algorithm.
  options.algorithm = Algorithm::kKnn;
  EXPECT_TRUE(driver.RunVector(r, r, 0.01, options, &sink)
                  .status()
                  .IsInvalidArgument());
  // Mis-shaped result sink (wrong k) is refused by the join core.
  const KnnCandidateMatrix matrix = KnnCandidateMatrix::Build(
      r.page_mbrs(), r.page_mbrs(), Norm::kL2, nullptr);
  BufferPool pool(disk.get(), 4);
  KnnJoinOptions knn_options;
  knn_options.k = 3;
  KnnResultSink wrong_k(r.num_records(), 2);
  EXPECT_TRUE(KnnJoinVectors(r, r, matrix, knn_options, &pool, &wrong_k,
                             nullptr)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace pmjoin
