#include "harness/bench_util.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/plane_sweep.h"
#include "data/generators.h"
#include "io/simulated_disk.h"

namespace pmjoin {
namespace bench {
namespace {

TEST(BenchArgsTest, Defaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const BenchArgs args = BenchArgs::Parse(1, argv);
  EXPECT_FALSE(args.full);
  EXPECT_FALSE(args.quick);
  EXPECT_DOUBLE_EQ(args.EffectiveScale(0.1), 0.1);
}

TEST(BenchArgsTest, ScaleFlag) {
  char prog[] = "bench";
  char flag[] = "--scale=0.5";
  char* argv[] = {prog, flag};
  const BenchArgs args = BenchArgs::Parse(2, argv);
  EXPECT_DOUBLE_EQ(args.EffectiveScale(0.1), 0.5);
}

TEST(BenchArgsTest, FullOverridesScale) {
  char prog[] = "bench";
  char f1[] = "--scale=0.5";
  char f2[] = "--full";
  char* argv[] = {prog, f1, f2};
  const BenchArgs args = BenchArgs::Parse(3, argv);
  EXPECT_DOUBLE_EQ(args.EffectiveScale(0.1), 1.0);
}

TEST(BenchArgsTest, QuickQuartersTheDefault) {
  char prog[] = "bench";
  char flag[] = "--quick";
  char* argv[] = {prog, flag};
  const BenchArgs args = BenchArgs::Parse(2, argv);
  EXPECT_DOUBLE_EQ(args.EffectiveScale(0.2), 0.05);
}

TEST(ScaledTest, RoundsAndFloors) {
  EXPECT_EQ(Scaled(1000, 0.5), 500u);
  EXPECT_EQ(Scaled(1000, 0.0004), 1u);
  EXPECT_EQ(Scaled(1000, 0.0004, 100), 100u);
  EXPECT_EQ(Scaled(53145, 1.0), 53145u);
}

TEST(ScaledBufferTest, PreservesRatio) {
  // Paper: B = 100 of 1175 pages. With 470 actual pages the same ratio
  // gives 40.
  EXPECT_EQ(ScaledBuffer(100, 1175, 470), 40u);
  EXPECT_EQ(ScaledBuffer(100, 1175, 1175), 100u);
  EXPECT_EQ(ScaledBuffer(4, 1000, 10), 4u);  // Floor of 4.
}

TEST(SequencePageBytesTest, ScalesPageSizeDown) {
  EXPECT_EQ(SequencePageBytes(1.0), 4096u);
  EXPECT_EQ(SequencePageBytes(0.6), 4096u);
  EXPECT_EQ(SequencePageBytes(0.05), 1024u);
}

TEST(PaperIoModelTest, UniformCostPerPage) {
  const DiskModel model = PaperIoModel();
  IoStats stats;
  stats.pages_read = 100;
  stats.seeks = 37;  // Seeks are free under the paper's accounting.
  EXPECT_DOUBLE_EQ(stats.ModeledSeconds(model), 1.0);
}

TEST(DatasetBuildersTest, CardinalitiesMatchPaperAtFullScale) {
  EXPECT_EQ(LBeachData(0.01).count(), Scaled(53145, 0.01, 500));
  EXPECT_EQ(MCountyData(0.01).count(), Scaled(39231, 0.01, 500));
  EXPECT_EQ(LandsatSplit(0.01, 0).dims, 60u);
}

TEST(DatasetBuildersTest, SplitsAreDistinct) {
  const VectorData a = LandsatSplit(0.01, 0);
  const VectorData b = LandsatSplit(0.01, 1);
  EXPECT_NE(a.values, b.values);
}

TEST(CalibratePageEpsTest, HitsTargetSelectivity) {
  SimulatedDisk disk;
  VectorDataset::Options layout;
  layout.page_size_bytes = 256;
  auto r = VectorDataset::Build(&disk, "r", GenRoadNetwork(2000, 3),
                                layout);
  auto s = VectorDataset::Build(&disk, "s", GenRoadNetwork(1500, 4),
                                layout);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());
  // Overlapping page MBRs put a floor under the achievable selectivity
  // (MINDIST == 0 pairs are marked at any ε ≥ 0); calibration can only
  // hit targets at or above that floor.
  const PredictionMatrix floor_matrix = BuildPredictionMatrixFlat(
      r->page_mbrs(), s->page_mbrs(), 1e-9, Norm::kL2, nullptr);
  const double floor = floor_matrix.Selectivity();
  for (double target : {0.05, 0.10, 0.30}) {
    const double eps =
        CalibratePageEps(*r, *s, target, Norm::kL2, 7);
    const PredictionMatrix matrix = BuildPredictionMatrixFlat(
        r->page_mbrs(), s->page_mbrs(), eps, Norm::kL2, nullptr);
    const double expected = std::max(target, floor);
    EXPECT_NEAR(matrix.Selectivity(), expected, expected * 0.5 + 0.02)
        << "target " << target << " floor " << floor;
  }
}

TEST(CalibratePageEpsTest, MonotoneInTarget) {
  SimulatedDisk disk;
  VectorDataset::Options layout;
  layout.page_size_bytes = 256;
  auto r = VectorDataset::Build(&disk, "r", GenRoadNetwork(1000, 5),
                                layout);
  ASSERT_TRUE(r.ok());
  const double lo = CalibratePageEps(*r, *r, 0.02, Norm::kL2, 7);
  const double hi = CalibratePageEps(*r, *r, 0.40, Norm::kL2, 7);
  EXPECT_LE(lo, hi);
}

}  // namespace
}  // namespace bench
}  // namespace pmjoin
