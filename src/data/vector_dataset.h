#ifndef PMJOIN_DATA_VECTOR_DATASET_H_
#define PMJOIN_DATA_VECTOR_DATASET_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "data/generators.h"
#include "geom/distance_kernels.h"
#include "geom/mbr.h"
#include "index/rstar_tree.h"
#include "io/storage_backend.h"

namespace pmjoin {

/// A paged, spatially clustered vector (point/spatial) dataset.
///
/// Construction follows the paper's §5.1 setup: records are packed into
/// pages with STR so each page is spatially tight, the page contents are
/// contiguous on disk (page i precedes page i+1 physically), each page's
/// MBR is its lower-bounding summary, and an R*-tree is bulk-loaded over
/// the page MBRs ("the capacity of each MBR is set to one page size").
///
/// Record identity: operators report the *original* record index (the
/// index into the `VectorData` passed to `Build`), so results from every
/// operator — and the brute-force reference join — are directly comparable
/// regardless of the on-disk permutation.
class VectorDataset {
 public:
  struct Options {
    /// Page capacity in bytes; records per page = page_size_bytes /
    /// (dims · sizeof(float)).
    uint32_t page_size_bytes = 4096;
  };

  /// Builds the dataset on `disk`. Fails if a page cannot hold at least
  /// one record or `data` is empty.
  static Result<VectorDataset> Build(StorageBackend* disk,
                                     std::string_view name, VectorData data,
                                     Options options);

  /// Writes the dataset's payload bytes to its backend file plus a
  /// `<name>.meta` sidecar file, so `Open` can restore it later (from a
  /// fresh process when the backend is persistent). Build itself charges
  /// no payload writes — persisting is an explicit, separately-charged
  /// step — so a join's modeled I/O is unchanged by whether the dataset
  /// was persisted. `disk` must be the backend the dataset was built on.
  Status Persist(StorageBackend* disk) const;

  /// Restores a dataset persisted as `name`. The page contents, page MBRs,
  /// original-id mapping, and bulk-loaded R*-tree are reconstructed
  /// bit-identically to the original build (floats round-trip exactly;
  /// every derived structure is recomputed by the same deterministic
  /// code), so joins against a reopened dataset match the fresh build
  /// byte for byte.
  static Result<VectorDataset> Open(StorageBackend* disk,
                                    std::string_view name);

  size_t dims() const { return dims_; }
  uint64_t num_records() const { return orig_ids_.size(); }
  uint32_t num_pages() const {
    return static_cast<uint32_t>(page_mbrs_.size());
  }
  uint32_t records_per_page() const { return records_per_page_; }
  uint32_t file_id() const { return file_id_; }

  /// MBR of page p (the lower-bounding summary used by the prediction
  /// matrix).
  const Mbr& PageMbr(uint32_t page) const { return page_mbrs_[page]; }
  const std::vector<Mbr>& page_mbrs() const { return page_mbrs_; }

  /// Number of records stored in page p (only the last page may be short).
  uint32_t PageRecordCount(uint32_t page) const;

  /// Record `slot` of page `page` (a dims()-length span).
  std::span<const float> Record(uint32_t page, uint32_t slot) const;

  /// Contiguous row-major view of page `page` for the batch distance
  /// kernels: `data` points at the page's first record, consecutive
  /// records are `stride` floats apart, and `stride` is dims() rounded up
  /// to the SIMD lane width (`kernels::PaddedWidth`) with the padding
  /// zero-filled — so a kernel can accumulate straight through `stride`
  /// terms per record without a tail loop and without changing any
  /// distance. Records of a page are guaranteed adjacent (slot s starts
  /// exactly `s * stride` floats after slot 0).
  kernels::BlockView PageBlock(uint32_t page) const {
    return kernels::BlockView{
        packed_.data() + uint64_t(page) * records_per_page_ * stride_,
        PageRecordCount(page), stride_};
  }

  /// The padded record stride of PageBlock, in floats.
  uint32_t padded_stride() const { return stride_; }

  /// Original (pre-permutation) id of record `slot` of page `page`.
  uint64_t OriginalId(uint32_t page, uint32_t slot) const;

  /// Record lookup by original id (used by the reference join and tests).
  std::span<const float> RecordByOriginalId(uint64_t orig_id) const;

  /// Page holding the record with original id `orig_id` (the inverse of
  /// OriginalId; used by the invariant audits to map reference-join result
  /// pairs back to page pairs).
  uint32_t PageOfOriginalId(uint64_t orig_id) const {
    return static_cast<uint32_t>(origin_pos_[orig_id] / records_per_page_);
  }

  /// R*-tree over the page MBRs (leaf entry ids are page indices).
  const RStarTree& tree() const { return tree_; }
  RStarTree* mutable_tree() { return &tree_; }

 private:
  VectorDataset() : tree_(1) {}

  size_t dims_ = 0;
  uint32_t records_per_page_ = 0;
  uint32_t stride_ = 0;
  uint32_t file_id_ = 0;
  /// Records in page order (page p occupies slots [p·rpp, (p+1)·rpp)),
  /// one `stride_`-float row per record, zero-padded past dims_. Sized to
  /// whole pages so PageBlock tiles may be loaded to the lane boundary.
  std::vector<float> packed_;
  /// orig_ids_[p·rpp + slot] = original record index.
  std::vector<uint64_t> orig_ids_;
  /// origin_pos_[orig_id] = packed position.
  std::vector<uint64_t> origin_pos_;
  std::vector<Mbr> page_mbrs_;
  RStarTree tree_;
};

}  // namespace pmjoin

#endif  // PMJOIN_DATA_VECTOR_DATASET_H_
