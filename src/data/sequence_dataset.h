#ifndef PMJOIN_DATA_SEQUENCE_DATASET_H_
#define PMJOIN_DATA_SEQUENCE_DATASET_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "io/storage_backend.h"
#include "seq/sequence_store.h"

namespace pmjoin {

/// Convenience builders wiring the synthetic sequence generators
/// (data/generators.h) to the paged sequence stores (seq/sequence_store.h).

struct DnaStoreParams {
  size_t length = 0;
  uint64_t seed = 1;
  /// Subsequence (window) length L; the paper's genome query uses 500.
  uint32_t window_len = 500;
  uint32_t page_size_bytes = 4096;
  double repeat_fraction = 0.30;
  double mutation_rate = 0.02;
};

/// Builds a DNA StringSequenceStore from the synthetic genome generator.
Result<StringSequenceStore> BuildDnaStore(StorageBackend* disk,
                                          std::string_view name,
                                          const DnaStoreParams& params);

/// Builds a homologous pair of DNA stores (shared motif pool — the
/// HChr18/MChr18 stand-in). Both stores are registered on `disk`.
Status BuildDnaStorePair(StorageBackend* disk, std::string_view name_a,
                         std::string_view name_b, const DnaStoreParams& a,
                         const DnaStoreParams& b,
                         StringSequenceStore* out_a,
                         StringSequenceStore* out_b);

struct WalkStoreParams {
  size_t length = 0;
  uint64_t seed = 1;
  /// Window length L; "one month" of closing prices ≈ 32 (divisible f).
  uint32_t window_len = 32;
  /// PAA feature dimensionality f (must divide window_len).
  uint32_t paa_dims = 8;
  uint32_t page_size_bytes = 4096;
  double volatility = 0.01;
};

/// Builds a stock-like TimeSeriesStore from the random-walk generator.
Result<TimeSeriesStore> BuildWalkStore(StorageBackend* disk,
                                       std::string_view name,
                                       const WalkStoreParams& params);

}  // namespace pmjoin

#endif  // PMJOIN_DATA_SEQUENCE_DATASET_H_
