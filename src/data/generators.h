#ifndef PMJOIN_DATA_GENERATORS_H_
#define PMJOIN_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace pmjoin {

/// Synthetic stand-ins for the paper's real datasets. Each generator
/// reproduces the property the corresponding experiment exercises; the
/// substitutions are documented in DESIGN.md ("Dataset substitutions").
/// All generators are deterministic in `seed`.

/// A flat row-major matrix of `count` × `dims` float records.
struct VectorData {
  size_t dims = 0;
  std::vector<float> values;

  size_t count() const { return dims == 0 ? 0 : values.size() / dims; }
  const float* record(size_t i) const { return values.data() + i * dims; }
};

/// Road-intersection-like 2-d points (stand-in for the TIGER LBeach /
/// MCounty datasets): points jittered along a web of noisy polyline roads
/// in the unit square, denser near road crossings — yielding the skewed,
/// locally dense distribution that drives spatial-join cost.
VectorData GenRoadNetwork(size_t count, uint64_t seed, size_t num_roads = 40);

/// Landsat-like high-dimensional feature vectors (stand-in for the 60-d
/// satellite image features): a Gaussian mixture whose cluster covariances
/// are low-rank (few latent factors), giving the strong inter-dimension
/// correlation typical of image features.
VectorData GenCorrelatedClusters(size_t count, size_t dims, uint64_t seed,
                                 size_t num_clusters = 32,
                                 size_t latent_factors = 6);

/// Uniform points in the unit hypercube (used by tests as an uncorrelated
/// control distribution).
VectorData GenUniform(size_t count, size_t dims, uint64_t seed);

/// Genome-like DNA (alphabet {0,1,2,3} = {A,C,G,T}): an order-2 Markov
/// chain with planted repeat blocks. Repeats are copied from a motif pool
/// with per-symbol mutation rate `mutation_rate`, producing the local
/// self-similarity (and hence join selectivity) of real chromosomes.
///
/// `regime_scale` scales the isochore (composition-regime) block length
/// (nominally 20k–80k symbols); pass the same factor used to scale the
/// sequence length so the regime structure stays self-similar across
/// scaled-down benchmark datasets.
std::vector<uint8_t> GenDnaSequence(size_t length, uint64_t seed,
                                    double repeat_fraction = 0.30,
                                    double mutation_rate = 0.02,
                                    double regime_scale = 1.0);

/// Two genomes sharing a motif pool (stand-in for the human/mouse
/// chromosome-18 pair): cross-sequence homology comes from the shared
/// motifs, intra-sequence repeats from re-use within each sequence.
void GenDnaPair(size_t length_a, size_t length_b, uint64_t seed,
                std::vector<uint8_t>* a, std::vector<uint8_t>* b,
                double repeat_fraction = 0.30, double mutation_rate = 0.02,
                double regime_scale = 1.0);

/// Stock-price-like random walk with regime-switching drift (stand-in for
/// closing-price series in the subsequence-join motivation query).
std::vector<float> GenRandomWalk(size_t length, uint64_t seed,
                                 double volatility = 0.01);

}  // namespace pmjoin

#endif  // PMJOIN_DATA_GENERATORS_H_
