#include "data/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pmjoin {
namespace {

struct Road {
  // Polyline through the unit square: start, end, plus sinusoidal wobble.
  double x0, y0, x1, y1, wobble_amp, wobble_freq, wobble_phase;
};

float Clamp01(double v) {
  return static_cast<float>(std::min(1.0, std::max(0.0, v)));
}

}  // namespace

VectorData GenRoadNetwork(size_t count, uint64_t seed, size_t num_roads) {
  Rng rng(seed);
  std::vector<Road> roads;
  roads.reserve(num_roads);
  for (size_t i = 0; i < num_roads; ++i) {
    Road r;
    // Alternate mostly-horizontal and mostly-vertical roads so they cross.
    if (i % 2 == 0) {
      r.x0 = 0.0;
      r.x1 = 1.0;
      r.y0 = rng.UniformDouble();
      r.y1 = Clamp01(r.y0 + rng.Gaussian(0.0, 0.15));
    } else {
      r.y0 = 0.0;
      r.y1 = 1.0;
      r.x0 = rng.UniformDouble();
      r.x1 = Clamp01(r.x0 + rng.Gaussian(0.0, 0.15));
    }
    r.wobble_amp = rng.UniformDouble(0.0, 0.03);
    r.wobble_freq = rng.UniformDouble(2.0, 8.0);
    r.wobble_phase = rng.UniformDouble(0.0, 2.0 * M_PI);
    roads.push_back(r);
  }

  VectorData data;
  data.dims = 2;
  data.values.reserve(count * 2);
  for (size_t i = 0; i < count; ++i) {
    const Road& r = roads[rng.Uniform(roads.size())];
    const double t = rng.UniformDouble();
    double x = r.x0 + t * (r.x1 - r.x0);
    double y = r.y0 + t * (r.y1 - r.y0);
    const double wobble =
        r.wobble_amp * std::sin(r.wobble_freq * t * 2.0 * M_PI +
                                r.wobble_phase);
    // Perpendicular wobble + small jitter (intersections near crossings
    // cluster naturally where roads meet).
    const double dx = r.x1 - r.x0;
    const double dy = r.y1 - r.y0;
    const double len = std::sqrt(dx * dx + dy * dy) + 1e-12;
    x += wobble * (-dy / len) + rng.Gaussian(0.0, 0.004);
    y += wobble * (dx / len) + rng.Gaussian(0.0, 0.004);
    data.values.push_back(Clamp01(x));
    data.values.push_back(Clamp01(y));
  }
  return data;
}

VectorData GenCorrelatedClusters(size_t count, size_t dims, uint64_t seed,
                                 size_t num_clusters,
                                 size_t latent_factors) {
  assert(dims > 0);
  Rng rng(seed);
  // Cluster centers uniform in [0,1]^d; per-cluster low-rank loading matrix
  // (dims × latent) so dimensions co-vary.
  std::vector<std::vector<float>> centers(num_clusters,
                                          std::vector<float>(dims));
  std::vector<std::vector<float>> loadings(
      num_clusters, std::vector<float>(dims * latent_factors));
  std::vector<double> weights(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    for (size_t d = 0; d < dims; ++d)
      centers[c][d] = static_cast<float>(rng.UniformDouble());
    for (float& l : loadings[c])
      l = static_cast<float>(rng.Gaussian(0.0, 0.05));
    weights[c] = rng.UniformDouble(0.2, 1.0);
  }
  // Cumulative weights for skewed cluster sizes.
  std::vector<double> cum(num_clusters);
  double total = 0.0;
  for (size_t c = 0; c < num_clusters; ++c) {
    total += weights[c];
    cum[c] = total;
  }

  VectorData data;
  data.dims = dims;
  data.values.reserve(count * dims);
  std::vector<double> factors(latent_factors);
  for (size_t i = 0; i < count; ++i) {
    const double pick = rng.UniformDouble(0.0, total);
    const size_t c = static_cast<size_t>(
        std::lower_bound(cum.begin(), cum.end(), pick) - cum.begin());
    for (double& f : factors) f = rng.Gaussian();
    for (size_t d = 0; d < dims; ++d) {
      double v = centers[c][d];
      for (size_t k = 0; k < latent_factors; ++k)
        v += loadings[c][d * latent_factors + k] * factors[k];
      v += rng.Gaussian(0.0, 0.01);  // Isotropic sensor noise.
      data.values.push_back(static_cast<float>(v));
    }
  }
  return data;
}

VectorData GenUniform(size_t count, size_t dims, uint64_t seed) {
  Rng rng(seed);
  VectorData data;
  data.dims = dims;
  data.values.reserve(count * dims);
  for (size_t i = 0; i < count * dims; ++i)
    data.values.push_back(static_cast<float>(rng.UniformDouble()));
  return data;
}

namespace {

/// Shared motif pool + generation machinery for DNA sequences.
///
/// Real chromosomes are compositionally heterogeneous at the scale the
/// MRS-index summaries operate on: GC-rich and GC-poor isochores span tens
/// of kilobases, and repeat families carry their own base composition.
/// The generator therefore alternates *composition regimes* — per-regime
/// base frequencies drawn from a wide distribution — and plants motifs
/// (repeats) from a shared pool. Without regimes, every page's frequency
/// MBR overlaps every other's and the prediction matrix degenerates to
/// all-marked, which real genome data does not exhibit.
class DnaGenerator {
 public:
  DnaGenerator(Rng* rng, double repeat_fraction, double mutation_rate,
               double regime_scale)
      : rng_(rng),
        repeat_fraction_(repeat_fraction),
        mutation_rate_(mutation_rate),
        regime_scale_(regime_scale) {
    // Regime palette: sharply skewed base compositions (like real repeat
    // families and low-complexity regions — LINEs are strongly AT-rich,
    // satellites nearly mono/di-nucleotide). The palette is a structured
    // grid on the composition simplex — dominant letter × secondary
    // letter × dominance level — so every regime pair is separated by at
    // least ~0.25 in per-letter frequency, far more than the within-page
    // drift of sliding-window counts. This is what gives genome-like
    // prediction-matrix selectivity (a few percent, as in the paper).
    // Dominance is kept moderate (max letter probability 0.55): beyond
    // that the text becomes low-complexity and *random* window pairs start
    // to fall within small edit distance, flooding the join with
    // non-repeat results (the reason BLAST-era tools mask low-complexity
    // regions).
    size_t idx = 0;
    for (uint8_t dominant = 0; dominant < 4; ++dominant) {
      for (uint8_t offset = 1; offset < 4; ++offset) {
        const uint8_t secondary = (dominant + offset) % 4;
        for (double level : {0.40, 0.55}) {
          double* regime = regimes_[idx++];
          for (int c = 0; c < 4; ++c) regime[c] = 0.06;
          regime[dominant] = level;
          regime[secondary] = 1.0 - level - 2 * 0.06;
        }
      }
    }
    static_assert(kNumRegimes == 24, "palette construction fills 24");
    // Motif pool: kMotifsPerRegime repeat families per regime, drawn from
    // the regime's own composition — like real families, repeats live in
    // compatible isochores, so pasting one does not smear the page's
    // composition. The pool size controls the copy count per family and
    // hence the (quadratic) number of genuine result pairs.
    motifs_.resize(kNumRegimes * kMotifsPerRegime);
    for (size_t i = 0; i < motifs_.size(); ++i) {
      motifs_[i].resize(300 + rng_->Uniform(1200));
      for (auto& s : motifs_[i]) s = Draw(regimes_[i / kMotifsPerRegime]);
    }
  }

  std::vector<uint8_t> Generate(size_t length) {
    std::vector<uint8_t> seq;
    seq.reserve(length);
    size_t regime_left = 0;
    size_t regime = 0;
    // Paste probability hit the target repeat length fraction given the
    // expected motif (~900) and background-stretch (~2750) lengths.
    const double kMotifLen = 900.0, kStretchLen = 2750.0;
    const double p_paste =
        repeat_fraction_ * kStretchLen /
        (kMotifLen * (1.0 - repeat_fraction_) +
         repeat_fraction_ * kStretchLen);
    while (seq.size() < length) {
      if (regime_left == 0) {
        // Isochore switch: nominally 20k–80k symbols per regime (scaled),
        // long relative to a page so few pages straddle a boundary.
        regime = rng_->Uniform(kNumRegimes);
        regime_left = std::max<size_t>(
            2000, static_cast<size_t>((20000 + rng_->Uniform(60000)) *
                                      regime_scale_));
      }
      if (rng_->Bernoulli(p_paste)) {
        // Paste a (mutated) copy of one of this regime's repeat families.
        const auto& m = motifs_[regime * kMotifsPerRegime +
                                rng_->Uniform(kMotifsPerRegime)];
        for (uint8_t s : m) {
          if (seq.size() >= length) break;
          if (rng_->Bernoulli(mutation_rate_))
            s = static_cast<uint8_t>(rng_->Uniform(4));
          seq.push_back(s);
        }
        regime_left -= std::min<size_t>(regime_left, m.size());
      } else {
        // Background with *multi-scale* compositional drift: a per-stretch
        // bias (~2–3.5 kb) plus a per-micro-stretch bias (~80–150 b) on
        // top of the regime composition. Real sequence composition varies
        // at every scale; without the micro level, disjoint windows of the
        // same stretch have near-identical frequency vectors and the
        // frequency-distance filter stops pruning (flooding the join with
        // edit-distance verifications).
        const size_t stretch =
            std::min<size_t>(2000 + rng_->Uniform(1500), regime_left);
        double stretch_bias[4];
        MakeBias(regimes_[regime], 0.45, stretch_bias);
        size_t emitted = 0;
        while (emitted < stretch && seq.size() < length) {
          const size_t micro =
              std::min<size_t>(80 + rng_->Uniform(70), stretch - emitted);
          double micro_bias[4];
          MakeBias(stretch_bias, 0.55, micro_bias);
          for (size_t i = 0; i < micro && seq.size() < length; ++i) {
            seq.push_back(Draw(micro_bias));
          }
          emitted += micro;
        }
        regime_left -= stretch;
      }
    }
    return seq;
  }

 private:
  static constexpr size_t kNumRegimes = 24;
  static constexpr size_t kMotifsPerRegime = 8;

  /// out = normalize(base × exp(N(0, sigma))) — one multiplicative
  /// composition perturbation.
  void MakeBias(const double* base, double sigma, double* out) {
    double total = 0.0;
    for (int c = 0; c < 4; ++c) {
      out[c] = base[c] * std::exp(rng_->Gaussian(0.0, sigma));
      total += out[c];
    }
    for (int c = 0; c < 4; ++c) out[c] /= total;
  }

  uint8_t Draw(const double* probs) {
    const double pick = rng_->UniformDouble();
    double acc = 0.0;
    for (uint8_t c = 0; c < 4; ++c) {
      acc += probs[c];
      if (pick < acc) return c;
    }
    return 3;
  }

  Rng* rng_;
  double repeat_fraction_;
  double mutation_rate_;
  double regime_scale_;
  double regimes_[kNumRegimes][4];
  std::vector<std::vector<uint8_t>> motifs_;
};

}  // namespace

std::vector<uint8_t> GenDnaSequence(size_t length, uint64_t seed,
                                    double repeat_fraction,
                                    double mutation_rate,
                                    double regime_scale) {
  Rng rng(seed);
  DnaGenerator gen(&rng, repeat_fraction, mutation_rate, regime_scale);
  return gen.Generate(length);
}

void GenDnaPair(size_t length_a, size_t length_b, uint64_t seed,
                std::vector<uint8_t>* a, std::vector<uint8_t>* b,
                double repeat_fraction, double mutation_rate,
                double regime_scale) {
  Rng rng(seed);
  // One generator → one motif pool → shared homologous segments.
  DnaGenerator gen(&rng, repeat_fraction, mutation_rate, regime_scale);
  *a = gen.Generate(length_a);
  *b = gen.Generate(length_b);
}

std::vector<float> GenRandomWalk(size_t length, uint64_t seed,
                                 double volatility) {
  Rng rng(seed);
  std::vector<float> series;
  series.reserve(length);
  double level = 100.0;
  double drift = 0.0;
  for (size_t i = 0; i < length; ++i) {
    if (i % 250 == 0) drift = rng.Gaussian(0.0, volatility / 4.0);
    level += drift + rng.Gaussian(0.0, volatility) * level * 0.01;
    level = std::max(level, 1.0);
    series.push_back(static_cast<float>(level));
  }
  return series;
}

}  // namespace pmjoin
