#include "data/sequence_dataset.h"

#include "data/generators.h"

namespace pmjoin {

Result<StringSequenceStore> BuildDnaStore(StorageBackend* disk,
                                          std::string_view name,
                                          const DnaStoreParams& params) {
  std::vector<uint8_t> seq =
      GenDnaSequence(params.length, params.seed, params.repeat_fraction,
                     params.mutation_rate);
  return StringSequenceStore::Build(disk, name, std::move(seq),
                                    /*alphabet_size=*/4, params.window_len,
                                    params.page_size_bytes);
}

Status BuildDnaStorePair(StorageBackend* disk, std::string_view name_a,
                         std::string_view name_b, const DnaStoreParams& a,
                         const DnaStoreParams& b,
                         StringSequenceStore* out_a,
                         StringSequenceStore* out_b) {
  std::vector<uint8_t> seq_a;
  std::vector<uint8_t> seq_b;
  GenDnaPair(a.length, b.length, a.seed, &seq_a, &seq_b, a.repeat_fraction,
             a.mutation_rate);
  Result<StringSequenceStore> ra =
      StringSequenceStore::Build(disk, name_a, std::move(seq_a),
                                 /*alphabet_size=*/4, a.window_len,
                                 a.page_size_bytes);
  if (!ra.ok()) return ra.status();
  Result<StringSequenceStore> rb =
      StringSequenceStore::Build(disk, name_b, std::move(seq_b),
                                 /*alphabet_size=*/4, b.window_len,
                                 b.page_size_bytes);
  if (!rb.ok()) return rb.status();
  *out_a = std::move(ra).value();
  *out_b = std::move(rb).value();
  return Status::OK();
}

Result<TimeSeriesStore> BuildWalkStore(StorageBackend* disk,
                                       std::string_view name,
                                       const WalkStoreParams& params) {
  std::vector<float> series =
      GenRandomWalk(params.length, params.seed, params.volatility);
  return TimeSeriesStore::Build(disk, name, std::move(series),
                                params.window_len, params.paa_dims,
                                params.page_size_bytes);
}

}  // namespace pmjoin
