#include "data/vector_dataset.h"

#include <algorithm>
#include <cassert>

#include "index/str_bulk_load.h"

namespace pmjoin {

Result<VectorDataset> VectorDataset::Build(SimulatedDisk* disk,
                                           std::string_view name,
                                           VectorData data, Options options) {
  if (disk == nullptr)
    return Status::InvalidArgument("VectorDataset: null disk");
  if (data.dims == 0 || data.values.empty())
    return Status::InvalidArgument("VectorDataset: empty data");
  if (data.values.size() % data.dims != 0)
    return Status::InvalidArgument("VectorDataset: ragged data");
  const uint32_t rpp = static_cast<uint32_t>(
      options.page_size_bytes / (data.dims * sizeof(float)));
  if (rpp == 0)
    return Status::InvalidArgument(
        "VectorDataset: page smaller than one record");

  VectorDataset ds;
  ds.dims_ = data.dims;
  ds.records_per_page_ = rpp;

  const size_t n = data.count();

  // STR-pack record MBRs (degenerate point boxes) into page-sized groups.
  std::vector<Mbr> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    boxes.push_back(Mbr::FromPoint(
        std::span<const float>(data.record(i), data.dims)));
  }
  std::vector<std::vector<uint32_t>> groups = StrPack(boxes, rpp);

  // Flatten the STR order, then slice into pages of exactly `rpp` records
  // (groups at slab boundaries can be short; sequential slicing keeps page
  // occupancy uniform while preserving the spatial ordering).
  std::vector<uint32_t> order;
  order.reserve(n);
  for (const std::vector<uint32_t>& g : groups)
    order.insert(order.end(), g.begin(), g.end());

  const size_t num_pages = (n + rpp - 1) / rpp;
  ds.stride_ = kernels::PaddedWidth(data.dims);
  // Whole pages of zero-initialized padded rows: the tail slots of a
  // short last page and the per-record padding both read as zeros, which
  // contribute nothing to any supported norm.
  ds.packed_.assign(num_pages * size_t(rpp) * ds.stride_, 0.0f);
  ds.orig_ids_.reserve(n);
  ds.origin_pos_.resize(n);
  ds.page_mbrs_.reserve(num_pages);
  std::vector<RStarTree::Entry> leaf_entries;
  leaf_entries.reserve(num_pages);

  for (size_t p = 0; p < num_pages; ++p) {
    Mbr page_mbr(data.dims);
    const size_t end = std::min(n, (p + 1) * size_t(rpp));
    for (size_t i = p * rpp; i < end; ++i) {
      const uint32_t orig = order[i];
      const std::span<const float> rec(data.record(orig), data.dims);
      ds.origin_pos_[orig] = ds.orig_ids_.size();
      ds.orig_ids_.push_back(orig);
      std::copy(rec.begin(), rec.end(),
                ds.packed_.begin() + i * ds.stride_);
      page_mbr.Expand(rec);
    }
    leaf_entries.push_back(
        RStarTree::Entry{page_mbr, static_cast<uint32_t>(p)});
    ds.page_mbrs_.push_back(std::move(page_mbr));
  }

  ds.tree_ = RStarTree::BulkLoadStr(data.dims, std::move(leaf_entries));
  ds.file_id_ = disk->CreateFile(
      name, static_cast<uint32_t>(ds.page_mbrs_.size()));
  // Node file for index-based operators (BFRJ) so node I/O is chargeable.
  ds.tree_.AttachFile(disk, std::string(name) + ".idx");
  return ds;
}

uint32_t VectorDataset::PageRecordCount(uint32_t page) const {
  const uint64_t first = uint64_t(page) * records_per_page_;
  const uint64_t remaining = num_records() - first;
  return static_cast<uint32_t>(
      remaining < records_per_page_ ? remaining : records_per_page_);
}

std::span<const float> VectorDataset::Record(uint32_t page,
                                             uint32_t slot) const {
  const uint64_t pos = uint64_t(page) * records_per_page_ + slot;
  assert(pos < num_records());
  return std::span<const float>(packed_.data() + pos * stride_, dims_);
}

uint64_t VectorDataset::OriginalId(uint32_t page, uint32_t slot) const {
  const uint64_t pos = uint64_t(page) * records_per_page_ + slot;
  assert(pos < num_records());
  return orig_ids_[pos];
}

std::span<const float> VectorDataset::RecordByOriginalId(
    uint64_t orig_id) const {
  assert(orig_id < num_records());
  const uint64_t pos = origin_pos_[orig_id];
  return std::span<const float>(packed_.data() + pos * stride_, dims_);
}

}  // namespace pmjoin
