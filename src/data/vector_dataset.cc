#include "data/vector_dataset.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "index/str_bulk_load.h"
#include "io/wire.h"

namespace pmjoin {

namespace {

/// Metadata sidecar format version tag ("PMJVDS" + version byte pair).
constexpr uint64_t kVectorMetaMagic = 0x31305344564A4D50ULL;  // "PMJVDS01"

}  // namespace

Result<VectorDataset> VectorDataset::Build(StorageBackend* disk,
                                           std::string_view name,
                                           VectorData data, Options options) {
  if (disk == nullptr)
    return Status::InvalidArgument("VectorDataset: null disk");
  if (data.dims == 0 || data.values.empty())
    return Status::InvalidArgument("VectorDataset: empty data");
  if (data.values.size() % data.dims != 0)
    return Status::InvalidArgument("VectorDataset: ragged data");
  const uint32_t rpp = static_cast<uint32_t>(
      options.page_size_bytes / (data.dims * sizeof(float)));
  if (rpp == 0)
    return Status::InvalidArgument(
        "VectorDataset: page smaller than one record");

  VectorDataset ds;
  ds.dims_ = data.dims;
  ds.records_per_page_ = rpp;

  const size_t n = data.count();

  // STR-pack record MBRs (degenerate point boxes) into page-sized groups.
  std::vector<Mbr> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    boxes.push_back(Mbr::FromPoint(
        std::span<const float>(data.record(i), data.dims)));
  }
  std::vector<std::vector<uint32_t>> groups = StrPack(boxes, rpp);

  // Flatten the STR order, then slice into pages of exactly `rpp` records
  // (groups at slab boundaries can be short; sequential slicing keeps page
  // occupancy uniform while preserving the spatial ordering).
  std::vector<uint32_t> order;
  order.reserve(n);
  for (const std::vector<uint32_t>& g : groups)
    order.insert(order.end(), g.begin(), g.end());

  const size_t num_pages = (n + rpp - 1) / rpp;
  ds.stride_ = kernels::PaddedWidth(data.dims);
  // Whole pages of zero-initialized padded rows: the tail slots of a
  // short last page and the per-record padding both read as zeros, which
  // contribute nothing to any supported norm.
  ds.packed_.assign(num_pages * size_t(rpp) * ds.stride_, 0.0f);
  ds.orig_ids_.reserve(n);
  ds.origin_pos_.resize(n);
  ds.page_mbrs_.reserve(num_pages);
  std::vector<RStarTree::Entry> leaf_entries;
  leaf_entries.reserve(num_pages);

  for (size_t p = 0; p < num_pages; ++p) {
    Mbr page_mbr(data.dims);
    const size_t end = std::min(n, (p + 1) * size_t(rpp));
    for (size_t i = p * rpp; i < end; ++i) {
      const uint32_t orig = order[i];
      const std::span<const float> rec(data.record(orig), data.dims);
      ds.origin_pos_[orig] = ds.orig_ids_.size();
      ds.orig_ids_.push_back(orig);
      std::copy(rec.begin(), rec.end(),
                ds.packed_.begin() + i * ds.stride_);
      page_mbr.Expand(rec);
    }
    leaf_entries.push_back(
        RStarTree::Entry{page_mbr, static_cast<uint32_t>(p)});
    ds.page_mbrs_.push_back(std::move(page_mbr));
  }

  ds.tree_ = RStarTree::BulkLoadStr(data.dims, std::move(leaf_entries));
  ds.file_id_ = disk->CreateFile(
      name, static_cast<uint32_t>(ds.page_mbrs_.size()));
  // Node file for index-based operators (BFRJ) so node I/O is chargeable.
  ds.tree_.AttachFile(disk, std::string(name) + ".idx");
  return ds;
}

Status VectorDataset::Persist(StorageBackend* disk) const {
  if (disk == nullptr)
    return Status::InvalidArgument("Persist: null backend");
  if (file_id_ >= disk->NumFiles() ||
      disk->num_pages(file_id_) != num_pages())
    return Status::InvalidArgument(
        "Persist: dataset was not built on this backend");
  const size_t record_bytes = dims_ * sizeof(float);
  if (size_t(records_per_page_) * record_bytes > disk->page_size_bytes())
    return Status::InvalidArgument(
        "Persist: dataset page does not fit a backend page");
  const std::string& name = disk->file(file_id_).name;

  // Data pages: the records of page p, unpadded, in packed order.
  std::vector<uint8_t> payload(size_t(records_per_page_) * record_bytes);
  for (uint32_t p = 0; p < num_pages(); ++p) {
    const uint32_t cnt = PageRecordCount(p);
    for (uint32_t s = 0; s < cnt; ++s) {
      std::memcpy(payload.data() + size_t(s) * record_bytes,
                  packed_.data() +
                      (uint64_t(p) * records_per_page_ + s) * stride_,
                  record_bytes);
    }
    PMJOIN_RETURN_IF_ERROR(disk->WritePagePayload(
        {file_id_, p},
        std::span<const uint8_t>(payload.data(), size_t(cnt) * record_bytes)));
  }

  // Metadata sidecar: everything Open needs that the pages don't hold.
  std::vector<uint8_t> meta;
  wire::AppendU64(&meta, kVectorMetaMagic);
  wire::AppendU32(&meta, static_cast<uint32_t>(dims_));
  wire::AppendU32(&meta, records_per_page_);
  wire::AppendU64(&meta, num_records());
  wire::AppendU32(&meta, num_pages());
  for (uint64_t id : orig_ids_) wire::AppendU64(&meta, id);
  PMJOIN_ASSIGN_OR_RETURN(uint32_t meta_file,
                          WriteBlobFile(disk, std::string(name) + ".meta",
                                        meta));
  (void)meta_file;
  return disk->Sync();
}

Result<VectorDataset> VectorDataset::Open(StorageBackend* disk,
                                          std::string_view name) {
  if (disk == nullptr) return Status::InvalidArgument("Open: null backend");
  PMJOIN_ASSIGN_OR_RETURN(uint32_t meta_file,
                          disk->FindFile(std::string(name) + ".meta"));
  PMJOIN_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                          ReadFileBlob(disk, meta_file));
  wire::Reader r{std::span<const uint8_t>(blob)};
  if (r.U64() != kVectorMetaMagic)
    return Status::Corruption("VectorDataset: bad metadata magic");
  VectorDataset ds;
  ds.dims_ = r.U32();
  ds.records_per_page_ = r.U32();
  const uint64_t num_records = r.U64();
  const uint32_t num_pages = r.U32();
  if (!r.ok || ds.dims_ == 0 || ds.records_per_page_ == 0 ||
      num_records == 0 ||
      num_pages != (num_records + ds.records_per_page_ - 1) /
                       ds.records_per_page_ ||
      num_records > (blob.size() / 8))
    return Status::Corruption("VectorDataset: bad metadata header");
  ds.orig_ids_.resize(num_records);
  ds.origin_pos_.resize(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    const uint64_t id = r.U64();
    if (id >= num_records)
      return Status::Corruption("VectorDataset: original id out of range");
    ds.orig_ids_[i] = id;
    ds.origin_pos_[id] = i;
  }
  if (!r.ok) return Status::Corruption("VectorDataset: truncated metadata");

  PMJOIN_ASSIGN_OR_RETURN(uint32_t data_file, disk->FindFile(name));
  if (disk->num_pages(data_file) < num_pages)
    return Status::Corruption("VectorDataset: data file too short");
  ds.file_id_ = data_file;
  ds.stride_ = kernels::PaddedWidth(ds.dims_);
  const size_t record_bytes = ds.dims_ * sizeof(float);
  ds.packed_.assign(size_t(num_pages) * ds.records_per_page_ * ds.stride_,
                    0.0f);
  ds.page_mbrs_.reserve(num_pages);
  std::vector<RStarTree::Entry> leaf_entries;
  leaf_entries.reserve(num_pages);
  std::vector<uint8_t> payload(disk->page_size_bytes());
  for (uint32_t p = 0; p < num_pages; ++p) {
    PMJOIN_RETURN_IF_ERROR(disk->ReadPagePayload({data_file, p}, payload));
    Mbr page_mbr(ds.dims_);
    const uint32_t cnt = ds.PageRecordCount(p);
    for (uint32_t s = 0; s < cnt; ++s) {
      float* row = ds.packed_.data() +
                   (uint64_t(p) * ds.records_per_page_ + s) * ds.stride_;
      std::memcpy(row, payload.data() + size_t(s) * record_bytes,
                  record_bytes);
      page_mbr.Expand(std::span<const float>(row, ds.dims_));
    }
    leaf_entries.push_back(RStarTree::Entry{page_mbr, p});
    ds.page_mbrs_.push_back(std::move(page_mbr));
  }
  ds.tree_ = RStarTree::BulkLoadStr(ds.dims_, std::move(leaf_entries));
  ds.tree_.AttachFile(disk, std::string(name) + ".idx");
  return ds;
}

uint32_t VectorDataset::PageRecordCount(uint32_t page) const {
  const uint64_t first = uint64_t(page) * records_per_page_;
  const uint64_t remaining = num_records() - first;
  return static_cast<uint32_t>(
      remaining < records_per_page_ ? remaining : records_per_page_);
}

std::span<const float> VectorDataset::Record(uint32_t page,
                                             uint32_t slot) const {
  const uint64_t pos = uint64_t(page) * records_per_page_ + slot;
  assert(pos < num_records());
  return std::span<const float>(packed_.data() + pos * stride_, dims_);
}

uint64_t VectorDataset::OriginalId(uint32_t page, uint32_t slot) const {
  const uint64_t pos = uint64_t(page) * records_per_page_ + slot;
  assert(pos < num_records());
  return orig_ids_[pos];
}

std::span<const float> VectorDataset::RecordByOriginalId(
    uint64_t orig_id) const {
  assert(orig_id < num_records());
  const uint64_t pos = origin_pos_[orig_id];
  return std::span<const float>(packed_.data() + pos * stride_, dims_);
}

}  // namespace pmjoin
