#ifndef PMJOIN_GEOM_DISTANCE_KERNELS_H_
#define PMJOIN_GEOM_DISTANCE_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "geom/distance.h"

namespace pmjoin {
namespace kernels {

/// Batch distance kernels: one query record against a contiguous block of
/// records (DESIGN.md "Kernel layer").
///
/// This header is the *dispatch boundary*: all callers in src/ go through
/// the functions declared here; the implementation picks, per (norm,
/// padded-width) combination, a compile-time-specialized auto-vectorizable
/// loop or — when the build enables it — an explicit `__AVX2__` path. The
/// instruction-set selection is an implementation detail that callers must
/// never see (enforced by tools/pmjoin_lint.py rule kernel-dispatch).
///
/// Determinism contract: every kernel decides "within eps" *exactly* as the
/// scalar reference `WithinDistance` (geom/distance.h) does — a
/// double-precision accumulation over all `dims` terms compared against the
/// threshold. The fast path accumulates in float; any record whose float
/// distance lands inside a conservative rounding-error band around the
/// threshold is re-evaluated with the scalar double-precision reference, so
/// the accept/reject bit is always the reference bit. Layout (padding,
/// tiling, vector width) can therefore never change an emitted pair.

/// A contiguous row-major block of records. `stride` is the float distance
/// between consecutive records and may exceed `dims` (padded layouts, e.g.
/// VectorDataset::PageBlock pads to the SIMD lane width); rows must be
/// zero-filled between `dims` and `stride`.
struct BlockView {
  const float* data = nullptr;
  uint32_t count = 0;
  uint32_t stride = 0;
};

/// The lane width (floats) that padded layouts round the record stride up
/// to. 8 floats = one 256-bit vector register.
inline constexpr uint32_t kLaneFloats = 8;

/// Rounds a record width up to the SIMD lane width.
inline constexpr uint32_t PaddedWidth(size_t dims) {
  return static_cast<uint32_t>((dims + kLaneFloats - 1) / kLaneFloats) *
         kLaneFloats;
}

/// Writes `mask[j] = 1` iff distance(query, row j of block) <= eps under
/// `norm`, `0` otherwise, for j in [0, block.count); returns the number of
/// set entries. `mask` must hold at least `block.count` bytes. `query`
/// must be readable (and zero-padded) out to `block.stride` floats.
uint32_t WithinMaskBlock(const float* query, const BlockView& block,
                         size_t dims, Norm norm, double eps, uint8_t* mask);

/// Number of rows of `block` within `eps` of `query` (same decisions as
/// WithinMaskBlock without materializing the mask).
uint32_t CountWithinBlock(const float* query, const BlockView& block,
                          size_t dims, Norm norm, double eps);

/// One-vs-block top-k candidate pass: writes `stats[j]` for every row j of
/// `block`. Rows whose exact statistic might be <= `bound_stat` (the
/// caller's current k-th-neighbor statistic; +infinity while its heap is
/// unfilled) get their exact `DistanceStat` value; rows the float filter
/// proves beyond the bound get +infinity. `bound_stat` is in statistic
/// space (squared distance for L2, the sum for L1, the max for Linf).
/// Returns the number of exact evaluations. Same float-band +
/// scalar-double re-decision contract as the ε kernels: a row is only
/// dropped when its float statistic clears the bound by more than the
/// rounding-error band, so the surviving candidate set — and hence every
/// selected neighbor — is byte-identical to the scalar reference.
uint32_t KnnCandidateBlock(const float* query, const BlockView& block,
                           size_t dims, Norm norm, double bound_stat,
                           double* stats);

/// One-vs-one predicate with the same decision bit as the scalar reference
/// `WithinDistance` — the kernel-layer entry point for callers whose
/// candidate rows are not contiguous (EGO's grid band, PBSM's buckets).
/// `a` and `b` need only `dims` readable floats (no padding required).
bool WithinOne(const float* a, const float* b, size_t dims, Norm norm,
               double eps);

/// True when the build's explicit SIMD path is compiled in (reported by
/// benchmarks; decisions are identical either way).
bool HasExplicitSimd();

}  // namespace kernels
}  // namespace pmjoin

#endif  // PMJOIN_GEOM_DISTANCE_KERNELS_H_
