#ifndef PMJOIN_GEOM_MBR_H_
#define PMJOIN_GEOM_MBR_H_

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "geom/distance.h"

namespace pmjoin {

/// A d-dimensional Minimum Bounding Rectangle.
///
/// MBRs approximate the contents of a disk page (paper §1): the page MBR of
/// a set of records is the componentwise [min, max] box over their feature
/// vectors. The prediction matrix marks a page pair when the MINDIST lower
/// bound between the two page MBRs is at most the join threshold ε —
/// equivalently (paper §5.1), when the MBRs, each extended by ε/2 in all
/// directions, intersect (exact for L2/L1/Linf interval geometry since
/// MINDIST decomposes per dimension).
class Mbr {
 public:
  /// Creates an empty (inverted) MBR of the given dimensionality. An empty
  /// MBR contains nothing and expands to the first point added.
  explicit Mbr(size_t dims);

  /// Creates a degenerate MBR covering exactly one point.
  static Mbr FromPoint(std::span<const float> point);

  /// Creates an MBR from explicit bounds. `lo[i] <= hi[i]` must hold.
  static Mbr FromBounds(std::vector<float> lo, std::vector<float> hi);

  size_t dims() const { return lo_.size(); }
  bool empty() const;

  /// Lower / upper corner accessors.
  float lo(size_t d) const { return lo_[d]; }
  float hi(size_t d) const { return hi_[d]; }
  std::span<const float> lo() const { return lo_; }
  std::span<const float> hi() const { return hi_; }

  /// Expands this MBR to cover `point`.
  void Expand(std::span<const float> point);

  /// Expands this MBR to cover `other`.
  void Expand(const Mbr& other);

  /// Grows the box by `delta` in every direction (paper step: extend each
  /// MBR by ε/2 before the plane sweep).
  void Extend(float delta);

  /// Returns a copy grown by `delta` in every direction.
  Mbr Extended(float delta) const;

  /// True iff the boxes overlap (closed intervals) in every dimension.
  bool Intersects(const Mbr& other) const;

  /// True iff `point` lies inside this box (closed).
  bool Contains(std::span<const float> point) const;

  /// True iff `other` lies fully inside this box.
  bool Contains(const Mbr& other) const;

  /// The intersection box; empty() if the boxes do not overlap.
  Mbr Intersection(const Mbr& other) const;

  /// Exact minimum distance between any point of this box and any point of
  /// `other`, under `norm`. Zero when the boxes intersect. This is the
  /// lower-bounding distance predictor of Table 1: for any records x in
  /// this page and y in the other page, distance(x, y) >= MinDist.
  double MinDist(const Mbr& other, Norm norm) const;

  /// Exact minimum distance between `point` and this box under `norm`.
  double MinDist(std::span<const float> point, Norm norm) const;

  /// Squared L2 MINDIST: the sum of squared per-dimension gaps, with no
  /// square root. `MinDistSquared(o) == MinDist(o, kL2)²` (same gap terms,
  /// same accumulation order). Threshold filters compare this against
  /// threshold² and skip the sqrt entirely.
  double MinDistSquared(const Mbr& other) const;

  /// True iff `MinDist(other, norm) <= threshold`, computed without the L2
  /// sqrt and with per-dimension early exit (the accumulated gap statistic
  /// is monotone, so the scan stops as soon as it exceeds the threshold).
  /// For L2 the comparison is exactly `MinDistSquared(other) <= threshold²`
  /// — equivalent to the sqrt form except when threshold sits within one
  /// rounding step of the boundary, where the squared form is the more
  /// faithful one (no sqrt rounding on the statistic). This is the
  /// hot-filter form: every descent/sweep test of the shape
  /// `MinDist(...) > t` should use `!MinDistWithin(..., t)` instead.
  bool MinDistWithin(const Mbr& other, Norm norm, double threshold) const;

  /// Point variant of MinDistWithin; avoids materializing a degenerate
  /// point box (unlike `MinDist(point, norm)`, this never allocates).
  bool MinDistWithin(std::span<const float> point, Norm norm,
                     double threshold) const;

  /// Product of side lengths (used by the R*-tree split heuristics).
  double Area() const;

  /// Sum of side lengths (the R*-tree "margin").
  double Margin() const;

  /// Area of the intersection with `other` (0 when disjoint).
  double OverlapArea(const Mbr& other) const;

  /// Center coordinate along dimension `d`.
  double Center(size_t d) const;

  bool operator==(const Mbr& other) const;

  std::string ToString() const;

 private:
  std::vector<float> lo_;
  std::vector<float> hi_;
};

}  // namespace pmjoin

#endif  // PMJOIN_GEOM_MBR_H_
