#include "geom/distance.h"

#include <algorithm>
#include <cassert>

namespace pmjoin {

std::string NormName(Norm norm) {
  switch (norm) {
    case Norm::kL1:
      return "L1";
    case Norm::kL2:
      return "L2";
    case Norm::kLInf:
      return "Linf";
  }
  return "?";
}

double VectorDistance(std::span<const float> a, std::span<const float> b,
                      Norm norm) {
  assert(a.size() == b.size());
  const size_t n = a.size();
  switch (norm) {
    case Norm::kL1: {
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) sum += std::fabs(double(a[i]) - b[i]);
      return sum;
    }
    case Norm::kL2: {
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double d = double(a[i]) - b[i];
        sum += d * d;
      }
      return std::sqrt(sum);
    }
    case Norm::kLInf: {
      double mx = 0.0;
      for (size_t i = 0; i < n; ++i)
        mx = std::max(mx, std::fabs(double(a[i]) - b[i]));
      return mx;
    }
  }
  return 0.0;
}

double SquaredL2(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = double(a[i]) - b[i];
    sum += d * d;
  }
  return sum;
}

double DistanceStat(std::span<const float> a, std::span<const float> b,
                    Norm norm) {
  assert(a.size() == b.size());
  const size_t n = a.size();
  switch (norm) {
    case Norm::kL1: {
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) sum += std::fabs(double(a[i]) - b[i]);
      return sum;
    }
    case Norm::kL2: {
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double d = double(a[i]) - b[i];
        sum += d * d;
      }
      return sum;
    }
    case Norm::kLInf: {
      double mx = 0.0;
      for (size_t i = 0; i < n; ++i)
        mx = std::max(mx, std::fabs(double(a[i]) - b[i]));
      return mx;
    }
  }
  return 0.0;
}

bool WithinDistance(std::span<const float> a, std::span<const float> b,
                    Norm norm, double eps) {
  assert(a.size() == b.size());
  const size_t n = a.size();
  switch (norm) {
    case Norm::kL1: {
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        sum += std::fabs(double(a[i]) - b[i]);
        if (sum > eps) return false;
      }
      return true;
    }
    case Norm::kL2: {
      const double eps2 = eps * eps;
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double d = double(a[i]) - b[i];
        sum += d * d;
        if (sum > eps2) return false;
      }
      return true;
    }
    case Norm::kLInf: {
      for (size_t i = 0; i < n; ++i) {
        if (std::fabs(double(a[i]) - b[i]) > eps) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace pmjoin
