#ifndef PMJOIN_GEOM_DISTANCE_H_
#define PMJOIN_GEOM_DISTANCE_H_

#include <cmath>
#include <cstddef>
#include <span>
#include <string>

namespace pmjoin {

/// Vector norms supported by the join predicates.
///
/// The paper ("any metric", Table 1) evaluates with vector norms; we support
/// L1, L2, and L-infinity. All MINDIST lower bounds in geom/mbr.h are exact
/// for each of these norms.
enum class Norm {
  kL1,
  kL2,
  kLInf,
};

/// Human-readable norm name ("L1", "L2", "Linf").
std::string NormName(Norm norm);

/// Distance between two d-dimensional vectors under `norm`.
///
/// Adds `a.size()` to an externally tracked distance_terms counter at the
/// call site (the function itself is counter-free so it can be used in
/// tight loops and tests).
double VectorDistance(std::span<const float> a, std::span<const float> b,
                      Norm norm);

/// Squared L2 distance (no sqrt); convenient for threshold comparisons.
double SquaredL2(std::span<const float> a, std::span<const float> b);

/// True iff distance(a, b) <= eps under `norm`, with early abandoning:
/// the accumulation stops as soon as the partial sum exceeds the threshold.
bool WithinDistance(std::span<const float> a, std::span<const float> b,
                    Norm norm, double eps);

/// The exact comparison statistic behind every threshold decision: the L1
/// sum, the *squared* L2 sum (no sqrt), or the Linf max, accumulated in
/// double precision in index order. `WithinDistance(a, b, norm, eps)` is
/// exactly `DistanceStat(a, b, norm) <= (norm == L2 ? eps*eps : eps)`; the
/// kNN path orders neighbors by this statistic so its selections agree
/// bit-for-bit with the ε predicates and the scalar reference.
double DistanceStat(std::span<const float> a, std::span<const float> b,
                    Norm norm);

}  // namespace pmjoin

#endif  // PMJOIN_GEOM_DISTANCE_H_
