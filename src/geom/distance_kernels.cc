#include "geom/distance_kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#ifdef __AVX2__
#include <immintrin.h>
#endif

// Kernel implementation notes
// ---------------------------
// Records are compared in single precision: one query row against every
// row of a contiguous tile, with restrict-qualified pointers and
// compile-time trip counts so the compiler can keep the inner loop in
// vector registers. The float statistic (sum for L1/L2, max for Linf) is
// then classified against the threshold with a conservative rounding-error
// band: outside the band the float decision provably equals the scalar
// double-precision decision; inside it we re-run the scalar reference
// `WithinDistance`, so the exported bit is the reference bit in every
// case. That band is what lets the fast path change its accumulation
// order (vector lanes, FMA contraction, the #ifdef __AVX2__ path below)
// without ever changing an emitted pair.

namespace pmjoin {
namespace kernels {
namespace {

#define PMJOIN_RESTRICT __restrict__

/// Error band half-width, relative to the threshold: the float statistic
/// for `n` accumulated terms differs from the exact double value by at
/// most ~(n + 3) ulps relative; we double that and add a tiny absolute
/// floor so a zero threshold still classifies exactly.
inline double ErrorBand(size_t terms, double threshold) {
  return static_cast<double>(terms + 8) * 1.2e-7 * threshold + 1e-35;
}

/// Threshold set for one (norm, dims, eps) combination. `thr` is the
/// exact comparison value (eps, or eps^2 for L2); float statistics at or
/// below `lo` are accepted, at or above `hi` rejected, and anything
/// between is re-decided by the scalar reference.
struct Thresholds {
  double lo = 0.0;
  double hi = 0.0;
  double eps = 0.0;
};

inline Thresholds MakeThresholds(Norm norm, size_t dims, double eps) {
  const double thr = norm == Norm::kL2 ? eps * eps : eps;
  const double band = ErrorBand(dims, thr);
  return Thresholds{thr - band, thr + band, eps};
}

/// Float statistic over exactly `n` terms, `n` known at compile time where
/// it matters (the padded-width dispatch below instantiates W in
/// {8, 16, 32, 64}). Plain contiguous loops: with a constant trip count a
/// multiple of the lane width, these fully unroll and vectorize.
template <Norm N>
inline float FloatStat(const float* PMJOIN_RESTRICT a,
                       const float* PMJOIN_RESTRICT b, size_t n) {
  if constexpr (N == Norm::kL1) {
    float sum = 0.0f;
    for (size_t i = 0; i < n; ++i) sum += std::fabs(a[i] - b[i]);
    return sum;
  } else if constexpr (N == Norm::kL2) {
    float sum = 0.0f;
    for (size_t i = 0; i < n; ++i) {
      const float d = a[i] - b[i];
      sum += d * d;
    }
    return sum;
  } else {
    float mx = 0.0f;
    for (size_t i = 0; i < n; ++i) mx = std::max(mx, std::fabs(a[i] - b[i]));
    return mx;
  }
}

#ifdef __AVX2__

/// Explicit 8-lane path for padded rows (`n` a multiple of kLaneFloats).
/// Reached only through the dispatch below — callers never select it.
template <Norm N>
inline float FloatStatAvx2(const float* PMJOIN_RESTRICT a,
                           const float* PMJOIN_RESTRICT b, size_t n) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  __m256 acc = _mm256_setzero_ps();
  for (size_t i = 0; i < n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    if constexpr (N == Norm::kL1) {
      acc = _mm256_add_ps(acc, _mm256_andnot_ps(sign_mask, d));
    } else if constexpr (N == Norm::kL2) {
      acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
    } else {
      acc = _mm256_max_ps(acc, _mm256_andnot_ps(sign_mask, d));
    }
  }
  // Horizontal reduction of the 8 lanes.
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 r = N == Norm::kLInf ? _mm_max_ps(lo, hi) : _mm_add_ps(lo, hi);
  __m128 shuf = _mm_movehl_ps(r, r);
  r = N == Norm::kLInf ? _mm_max_ps(r, shuf) : _mm_add_ps(r, shuf);
  shuf = _mm_shuffle_ps(r, r, 0x1);
  r = N == Norm::kLInf ? _mm_max_ss(r, shuf) : _mm_add_ss(r, shuf);
  return _mm_cvtss_f32(r);
}

template <Norm N>
inline float PaddedStat(const float* PMJOIN_RESTRICT a,
                        const float* PMJOIN_RESTRICT b, size_t n) {
  return FloatStatAvx2<N>(a, b, n);
}

#else

template <Norm N>
inline float PaddedStat(const float* PMJOIN_RESTRICT a,
                        const float* PMJOIN_RESTRICT b, size_t n) {
  return FloatStat<N>(a, b, n);
}

#endif  // __AVX2__

/// Float statistic with per-tile early abandoning for wide records: the
/// accumulation is checked against the reject bound every
/// `kAbandonChunk` terms, so a distant pair in a 4096-d row stops after
/// one chunk. Only the generic (runtime-width) path abandons; the
/// compile-time widths below are short enough that the branch would cost
/// more than it saves.
constexpr size_t kAbandonChunk = 64;

template <Norm N>
inline float GenericStat(const float* PMJOIN_RESTRICT a,
                         const float* PMJOIN_RESTRICT b, size_t n,
                         float reject_at) {
  if constexpr (N == Norm::kLInf) {
    float mx = 0.0f;
    for (size_t i = 0; i < n; i += kAbandonChunk) {
      const size_t end = std::min(n, i + kAbandonChunk);
      for (size_t k = i; k < end; ++k)
        mx = std::max(mx, std::fabs(a[k] - b[k]));
      if (mx >= reject_at) return mx;
    }
    return mx;
  } else {
    float sum = 0.0f;
    for (size_t i = 0; i < n; i += kAbandonChunk) {
      const size_t end = std::min(n, i + kAbandonChunk);
      if constexpr (N == Norm::kL1) {
        for (size_t k = i; k < end; ++k) sum += std::fabs(a[k] - b[k]);
      } else {
        for (size_t k = i; k < end; ++k) {
          const float d = a[k] - b[k];
          sum += d * d;
        }
      }
      if (sum >= reject_at) return sum;
    }
    return sum;
  }
}

/// Classifies a float statistic: certain accept / certain reject by the
/// error band, exact scalar re-evaluation otherwise.
template <Norm N>
inline bool Decide(float stat, const Thresholds& t, const float* a,
                   const float* b, size_t dims) {
  const double s = static_cast<double>(stat);
  if (s <= t.lo) return true;
  if (s >= t.hi) return false;
  return WithinDistance(std::span<const float>(a, dims),
                        std::span<const float>(b, dims), N, t.eps);
}

/// One query against every row of the block at compile-time padded width
/// W. When `mask` is null only the count is produced.
template <Norm N, uint32_t W>
uint32_t BlockFixed(const float* PMJOIN_RESTRICT query,
                    const BlockView& block, size_t dims,
                    const Thresholds& t, uint8_t* mask) {
  const float* PMJOIN_RESTRICT rows = block.data;
  uint32_t within = 0;
  for (uint32_t j = 0; j < block.count; ++j) {
    const float stat = PaddedStat<N>(query, rows + size_t(j) * W, W);
    const uint8_t bit = Decide<N>(stat, t, query, rows + size_t(j) * W, dims);
    within += bit;
    if (mask != nullptr) mask[j] = bit;
  }
  return within;
}

/// Runtime-width fallback (padded strides wider than 64, and unpadded
/// blocks such as EGO's sorted feature rows, where stride == dims).
template <Norm N>
uint32_t BlockGeneric(const float* PMJOIN_RESTRICT query,
                      const BlockView& block, size_t dims,
                      const Thresholds& t, uint8_t* mask) {
  const float* PMJOIN_RESTRICT rows = block.data;
  const size_t stride = block.stride;
  // Accumulate only over the padded width when rows are padded (the tail
  // is zero-filled and contributes nothing), else over `dims`.
  const size_t n = stride >= dims ? stride : dims;
  const float reject_at = static_cast<float>(t.hi);
  uint32_t within = 0;
  for (uint32_t j = 0; j < block.count; ++j) {
    const float* row = rows + size_t(j) * stride;
    const float stat = GenericStat<N>(query, row, n, reject_at);
    const uint8_t bit = Decide<N>(stat, t, query, row, dims);
    within += bit;
    if (mask != nullptr) mask[j] = bit;
  }
  return within;
}

/// Exact statistic for one row of a kNN candidate pass.
inline double KnnExact(const float* query, const float* row, size_t dims,
                       Norm norm) {
  return DistanceStat(std::span<const float>(query, dims),
                      std::span<const float>(row, dims), norm);
}

/// kNN candidate pass at compile-time padded width W: float statistic
/// filtered against the adaptive bound's reject edge; survivors get the
/// exact scalar statistic. There is no accept edge here — top-k ordering
/// needs the exact value, not just the bit, so every survivor is
/// re-accumulated in double.
template <Norm N, uint32_t W>
uint32_t KnnFixed(const float* PMJOIN_RESTRICT query, const BlockView& block,
                  size_t dims, double reject_hi, double* stats) {
  const float* PMJOIN_RESTRICT rows = block.data;
  uint32_t exact = 0;
  for (uint32_t j = 0; j < block.count; ++j) {
    const float* row = rows + size_t(j) * W;
    const float stat = PaddedStat<N>(query, row, W);
    if (static_cast<double>(stat) >= reject_hi) {
      stats[j] = std::numeric_limits<double>::infinity();
      continue;
    }
    stats[j] = KnnExact(query, row, dims, N);
    ++exact;
  }
  return exact;
}

/// Runtime-width kNN candidate pass (GenericStat abandons at the reject
/// edge, so a distant row in a wide record stops after one chunk).
template <Norm N>
uint32_t KnnGeneric(const float* PMJOIN_RESTRICT query,
                    const BlockView& block, size_t dims, double reject_hi,
                    double* stats) {
  const float* PMJOIN_RESTRICT rows = block.data;
  const size_t stride = block.stride;
  const size_t n = stride >= dims ? stride : dims;
  const float reject_at = static_cast<float>(reject_hi);
  uint32_t exact = 0;
  for (uint32_t j = 0; j < block.count; ++j) {
    const float* row = rows + size_t(j) * stride;
    const float stat = GenericStat<N>(query, row, n, reject_at);
    if (static_cast<double>(stat) >= reject_hi) {
      stats[j] = std::numeric_limits<double>::infinity();
      continue;
    }
    stats[j] = KnnExact(query, row, dims, N);
    ++exact;
  }
  return exact;
}

template <Norm N>
uint32_t KnnDispatch(const float* query, const BlockView& block, size_t dims,
                     double bound_stat, double* stats) {
  if (block.count == 0) return 0;
  if (std::isinf(bound_stat)) {
    // No bound yet (an unfilled heap): every row is a candidate, and a
    // float overflow must not drop one, so skip the float pass entirely.
    const size_t stride = block.stride;
    for (uint32_t j = 0; j < block.count; ++j)
      stats[j] = KnnExact(query, block.data + size_t(j) * stride, dims, N);
    return block.count;
  }
  const double reject_hi = bound_stat + ErrorBand(dims, bound_stat);
  switch (block.stride) {
    case 8:
      return KnnFixed<N, 8>(query, block, dims, reject_hi, stats);
    case 16:
      return KnnFixed<N, 16>(query, block, dims, reject_hi, stats);
    case 32:
      return KnnFixed<N, 32>(query, block, dims, reject_hi, stats);
    case 64:
      return KnnFixed<N, 64>(query, block, dims, reject_hi, stats);
    default:
      return KnnGeneric<N>(query, block, dims, reject_hi, stats);
  }
}

template <Norm N>
uint32_t BlockDispatch(const float* query, const BlockView& block,
                       size_t dims, double eps, uint8_t* mask) {
  const Thresholds t = MakeThresholds(N, dims, eps);
  switch (block.stride) {
    case 8:
      return BlockFixed<N, 8>(query, block, dims, t, mask);
    case 16:
      return BlockFixed<N, 16>(query, block, dims, t, mask);
    case 32:
      return BlockFixed<N, 32>(query, block, dims, t, mask);
    case 64:
      return BlockFixed<N, 64>(query, block, dims, t, mask);
    default:
      return BlockGeneric<N>(query, block, dims, t, mask);
  }
}

uint32_t NormDispatch(const float* query, const BlockView& block,
                      size_t dims, Norm norm, double eps, uint8_t* mask) {
  if (block.count == 0) return 0;
  switch (norm) {
    case Norm::kL1:
      return BlockDispatch<Norm::kL1>(query, block, dims, eps, mask);
    case Norm::kL2:
      return BlockDispatch<Norm::kL2>(query, block, dims, eps, mask);
    case Norm::kLInf:
      return BlockDispatch<Norm::kLInf>(query, block, dims, eps, mask);
  }
  return 0;
}

}  // namespace

uint32_t WithinMaskBlock(const float* query, const BlockView& block,
                         size_t dims, Norm norm, double eps, uint8_t* mask) {
  return NormDispatch(query, block, dims, norm, eps, mask);
}

uint32_t CountWithinBlock(const float* query, const BlockView& block,
                          size_t dims, Norm norm, double eps) {
  return NormDispatch(query, block, dims, norm, eps, nullptr);
}

uint32_t KnnCandidateBlock(const float* query, const BlockView& block,
                           size_t dims, Norm norm, double bound_stat,
                           double* stats) {
  switch (norm) {
    case Norm::kL1:
      return KnnDispatch<Norm::kL1>(query, block, dims, bound_stat, stats);
    case Norm::kL2:
      return KnnDispatch<Norm::kL2>(query, block, dims, bound_stat, stats);
    case Norm::kLInf:
      return KnnDispatch<Norm::kLInf>(query, block, dims, bound_stat, stats);
  }
  return 0;
}

bool WithinOne(const float* a, const float* b, size_t dims, Norm norm,
               double eps) {
  const BlockView one{b, 1, static_cast<uint32_t>(dims)};
  return NormDispatch(a, one, dims, norm, eps, nullptr) != 0;
}

bool HasExplicitSimd() {
#ifdef __AVX2__
  return true;
#else
  return false;
#endif
}

}  // namespace kernels
}  // namespace pmjoin
