#include "geom/mbr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace pmjoin {

Mbr::Mbr(size_t dims)
    : lo_(dims, std::numeric_limits<float>::max()),
      hi_(dims, std::numeric_limits<float>::lowest()) {}

Mbr Mbr::FromPoint(std::span<const float> point) {
  Mbr m(point.size());
  m.Expand(point);
  return m;
}

Mbr Mbr::FromBounds(std::vector<float> lo, std::vector<float> hi) {
  assert(lo.size() == hi.size());
  Mbr m(lo.size());
  m.lo_ = std::move(lo);
  m.hi_ = std::move(hi);
  for (size_t d = 0; d < m.dims(); ++d) assert(m.lo_[d] <= m.hi_[d]);
  return m;
}

bool Mbr::empty() const {
  for (size_t d = 0; d < dims(); ++d) {
    if (lo_[d] > hi_[d]) return true;
  }
  return dims() == 0;
}

void Mbr::Expand(std::span<const float> point) {
  assert(point.size() == dims());
  for (size_t d = 0; d < dims(); ++d) {
    lo_[d] = std::min(lo_[d], point[d]);
    hi_[d] = std::max(hi_[d], point[d]);
  }
}

void Mbr::Expand(const Mbr& other) {
  assert(other.dims() == dims());
  if (other.empty()) return;
  for (size_t d = 0; d < dims(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
}

void Mbr::Extend(float delta) {
  for (size_t d = 0; d < dims(); ++d) {
    lo_[d] -= delta;
    hi_[d] += delta;
  }
}

Mbr Mbr::Extended(float delta) const {
  Mbr m = *this;
  m.Extend(delta);
  return m;
}

bool Mbr::Intersects(const Mbr& other) const {
  assert(other.dims() == dims());
  for (size_t d = 0; d < dims(); ++d) {
    if (lo_[d] > other.hi_[d] || other.lo_[d] > hi_[d]) return false;
  }
  return true;
}

bool Mbr::Contains(std::span<const float> point) const {
  assert(point.size() == dims());
  for (size_t d = 0; d < dims(); ++d) {
    if (point[d] < lo_[d] || point[d] > hi_[d]) return false;
  }
  return true;
}

bool Mbr::Contains(const Mbr& other) const {
  assert(other.dims() == dims());
  for (size_t d = 0; d < dims(); ++d) {
    if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
  }
  return true;
}

Mbr Mbr::Intersection(const Mbr& other) const {
  assert(other.dims() == dims());
  Mbr m(dims());
  for (size_t d = 0; d < dims(); ++d) {
    m.lo_[d] = std::max(lo_[d], other.lo_[d]);
    m.hi_[d] = std::min(hi_[d], other.hi_[d]);
  }
  return m;
}

double Mbr::MinDist(const Mbr& other, Norm norm) const {
  assert(other.dims() == dims());
  switch (norm) {
    case Norm::kL1: {
      double sum = 0.0;
      for (size_t d = 0; d < dims(); ++d) {
        const double gap =
            std::max({0.0, double(lo_[d]) - other.hi_[d],
                      double(other.lo_[d]) - hi_[d]});
        sum += gap;
      }
      return sum;
    }
    case Norm::kL2: {
      double sum = 0.0;
      for (size_t d = 0; d < dims(); ++d) {
        const double gap =
            std::max({0.0, double(lo_[d]) - other.hi_[d],
                      double(other.lo_[d]) - hi_[d]});
        sum += gap * gap;
      }
      return std::sqrt(sum);
    }
    case Norm::kLInf: {
      double mx = 0.0;
      for (size_t d = 0; d < dims(); ++d) {
        const double gap =
            std::max({0.0, double(lo_[d]) - other.hi_[d],
                      double(other.lo_[d]) - hi_[d]});
        mx = std::max(mx, gap);
      }
      return mx;
    }
  }
  return 0.0;
}

double Mbr::MinDist(std::span<const float> point, Norm norm) const {
  return MinDist(Mbr::FromPoint(point), norm);
}

double Mbr::MinDistSquared(const Mbr& other) const {
  assert(other.dims() == dims());
  double sum = 0.0;
  for (size_t d = 0; d < dims(); ++d) {
    const double gap = std::max({0.0, double(lo_[d]) - other.hi_[d],
                                 double(other.lo_[d]) - hi_[d]});
    sum += gap * gap;
  }
  return sum;
}

namespace {

/// Shared accumulator for the MinDistWithin variants. `GapFn(d)` returns
/// the per-dimension gap; the accumulation matches MinDist (same gap
/// terms, same order) and L2 compares in squared space, so no sqrt is
/// ever paid. The partial statistic is monotone nondecreasing, which
/// makes the early exit exact with respect to the full-sum comparison.
template <typename GapFn>
bool GapsWithin(size_t dims, Norm norm, double threshold, GapFn gap_of) {
  switch (norm) {
    case Norm::kL1: {
      double sum = 0.0;
      for (size_t d = 0; d < dims; ++d) {
        sum += gap_of(d);
        if (sum > threshold) return false;
      }
      return true;
    }
    case Norm::kL2: {
      const double threshold_sq = threshold * threshold;
      double sum = 0.0;
      for (size_t d = 0; d < dims; ++d) {
        const double gap = gap_of(d);
        sum += gap * gap;
        if (sum > threshold_sq) return false;
      }
      return true;
    }
    case Norm::kLInf: {
      for (size_t d = 0; d < dims; ++d) {
        if (gap_of(d) > threshold) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

bool Mbr::MinDistWithin(const Mbr& other, Norm norm,
                        double threshold) const {
  assert(other.dims() == dims());
  return GapsWithin(dims(), norm, threshold, [&](size_t d) {
    return std::max({0.0, double(lo_[d]) - other.hi_[d],
                     double(other.lo_[d]) - hi_[d]});
  });
}

bool Mbr::MinDistWithin(std::span<const float> point, Norm norm,
                        double threshold) const {
  assert(point.size() == dims());
  return GapsWithin(dims(), norm, threshold, [&](size_t d) {
    return std::max({0.0, double(lo_[d]) - point[d],
                     double(point[d]) - hi_[d]});
  });
}

double Mbr::Area() const {
  if (empty()) return 0.0;
  double area = 1.0;
  for (size_t d = 0; d < dims(); ++d) area *= double(hi_[d]) - lo_[d];
  return area;
}

double Mbr::Margin() const {
  if (empty()) return 0.0;
  double margin = 0.0;
  for (size_t d = 0; d < dims(); ++d) margin += double(hi_[d]) - lo_[d];
  return margin;
}

double Mbr::OverlapArea(const Mbr& other) const {
  assert(other.dims() == dims());
  double area = 1.0;
  for (size_t d = 0; d < dims(); ++d) {
    const double w = std::min(double(hi_[d]), double(other.hi_[d])) -
                     std::max(double(lo_[d]), double(other.lo_[d]));
    if (w <= 0.0) return 0.0;
    area *= w;
  }
  return area;
}

double Mbr::Center(size_t d) const { return 0.5 * (double(lo_[d]) + hi_[d]); }

bool Mbr::operator==(const Mbr& other) const {
  return lo_ == other.lo_ && hi_ == other.hi_;
}

std::string Mbr::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t d = 0; d < dims(); ++d) {
    if (d) os << ", ";
    os << lo_[d] << ".." << hi_[d];
  }
  os << "]";
  return os.str();
}

}  // namespace pmjoin
