#ifndef PMJOIN_IO_PAGE_FILE_H_
#define PMJOIN_IO_PAGE_FILE_H_

#include <cstdint>
#include <functional>
#include <string>

namespace pmjoin {

/// Identifies one page on the simulated disk: (file id, page index).
struct PageId {
  uint32_t file = 0;
  uint32_t page = 0;

  bool operator==(const PageId& other) const {
    return file == other.file && page == other.page;
  }
  bool operator<(const PageId& other) const {
    return file != other.file ? file < other.file : page < other.page;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& p) const {
    return std::hash<uint64_t>()((uint64_t(p.file) << 32) | p.page);
  }
};

/// Metadata of one file laid out on the simulated disk.
///
/// The simulation keeps only *accounting* state here — page payloads live
/// with the dataset objects that own them (the disk is simulated; the cost
/// model, not the bytes, is what the experiments measure). Each file
/// occupies a disjoint physical region; pages within a file are contiguous,
/// so page p of a file is physically adjacent to page p+1.
struct PageFile {
  uint32_t id = 0;
  std::string name;

  /// Number of pages currently in the file.
  uint32_t num_pages = 0;

  /// Physical address of page 0 (global page offset on the disk).
  uint64_t base_offset = 0;

  /// Physical address of page `page`.
  uint64_t PhysicalOffset(uint32_t page) const { return base_offset + page; }
};

}  // namespace pmjoin

#endif  // PMJOIN_IO_PAGE_FILE_H_
