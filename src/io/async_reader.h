#ifndef PMJOIN_IO_ASYNC_READER_H_
#define PMJOIN_IO_ASYNC_READER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "io/disk_scheduler.h"
#include "io/storage_backend.h"

namespace pmjoin {

/// Asynchronous read pipeline over a staging-capable `StorageBackend`:
/// N dedicated I/O threads service page-read requests from a bounded
/// request queue, physically reading each run into the backend's staging
/// buffers (`PerformStage`). The coordinator later consumes the staged
/// bytes through the ordinary `ReadPages` path — which is also where the
/// modeled `IoStats` are charged, so the async pipeline changes *when*
/// physical bytes move but never what the ledger records.
///
/// Requests are submitted as *batches* (one queue operation and at most
/// one thread wake per batch, not per run — schedules are dominated by
/// short runs, so per-run wakes would cost more than the reads they
/// move). A batch is serviced by one thread in submission order, so
/// submitting contiguous slices of a seek-optimal schedule keeps each
/// thread's physical access pattern seek-optimal (with one I/O thread it
/// is exactly the serial pattern, just earlier).
///
/// Thread-safety: `Submit` and destruction are coordinator-only; the
/// reader threads touch the backend solely through `PerformStage`. The
/// queue mutex holds rank `lock_rank::kAsyncReader` and is never held
/// across a backend call. Destroying the reader joins the I/O threads;
/// runs still queued are simply abandoned (they stay registered as
/// pending in the backend until consumed or `DropStaged`).
class AsyncReader {
 public:
  /// Bound on queued (not-yet-started) batches; a full queue blocks
  /// SubmitBatch, which backpressures the coordinator's staging loop.
  static constexpr size_t kDefaultQueueCapacity = 128;

  /// Spawns `num_threads` (>= 1 enforced) reader threads over `backend`,
  /// which must outlive this object and support staging.
  AsyncReader(StorageBackend* backend, uint32_t num_threads,
              size_t queue_capacity = kDefaultQueueCapacity);
  ~AsyncReader();

  AsyncReader(const AsyncReader&) = delete;
  AsyncReader& operator=(const AsyncReader&) = delete;

  /// Registers each run of `runs` with the backend's staging table and
  /// enqueues the accepted ones as one work item for a reader thread.
  /// Runs the backend declines (empty, no staging support, invalid
  /// range, or a run with the same start already registered) are skipped
  /// — the caller's later `ReadPages` for those simply reads
  /// synchronously. Returns how many runs were accepted. Blocks while
  /// the queue is at capacity.
  size_t SubmitBatch(std::span<const PageRun> runs) PMJOIN_EXCLUDES(mu_);

  /// Single-run convenience wrapper around SubmitBatch.
  bool Submit(const PageRun& run) PMJOIN_EXCLUDES(mu_);

  uint32_t num_threads() const { return num_threads_; }

 private:
  /// Body of one reader thread: pop, PerformStage, repeat until closed.
  void ReaderLoop() PMJOIN_EXCLUDES(mu_);

  StorageBackend* const backend_;
  const uint32_t num_threads_;
  const size_t capacity_;

  Mutex mu_{lock_rank::kAsyncReader, "AsyncReader::mu_"};
  /// Signaled when a batch is enqueued (readers wait on it). Separate
  /// from `cv_space_` so a push wakes exactly one idle reader and never
  /// the submitter.
  CondVar cv_ready_;
  /// Signaled when a batch is dequeued (a capacity-blocked SubmitBatch
  /// waits on it).
  CondVar cv_space_;
  std::deque<std::vector<PageRun>> queue_ PMJOIN_GUARDED_BY(mu_);
  bool closed_ PMJOIN_GUARDED_BY(mu_) = false;

  /// Declared last: its destructor joins the reader threads while the
  /// queue state above is still alive.
  ThreadPool pool_;
};

}  // namespace pmjoin

#endif  // PMJOIN_IO_ASYNC_READER_H_
