#ifndef PMJOIN_IO_DISK_SCHEDULER_H_
#define PMJOIN_IO_DISK_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "io/page_file.h"
#include "io/storage_backend.h"

namespace pmjoin {

/// A maximal run of physically consecutive pages within one file.
struct PageRun {
  PageId start;
  uint32_t length = 0;
};

/// Multi-page request scheduling (paper §8 step 1, citing Seeger '96):
/// given an unordered set of pages to fetch, read them in physical-address
/// order with adjacent pages coalesced into runs, which minimizes the
/// number of random seeks on a linear disk.
///
/// `BuildSchedule` is deterministic and duplicate-free: duplicate PageIds
/// are fetched once.
std::vector<PageRun> BuildSchedule(const StorageBackend& disk,
                                   std::vector<PageId> pages);

/// Executes a schedule against the disk (charges I/O).
Status ExecuteSchedule(StorageBackend* disk, const std::vector<PageRun>& runs);

}  // namespace pmjoin

#endif  // PMJOIN_IO_DISK_SCHEDULER_H_
