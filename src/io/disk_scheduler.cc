#include "io/disk_scheduler.h"

#include <algorithm>

#include "obs/metrics.h"

namespace pmjoin {

std::vector<PageRun> BuildSchedule(const StorageBackend& disk,
                                   std::vector<PageId> pages) {
  std::vector<PageRun> runs;
  if (pages.empty()) return runs;

  std::sort(pages.begin(), pages.end(),
            [&disk](const PageId& a, const PageId& b) {
              return disk.file(a.file).PhysicalOffset(a.page) <
                     disk.file(b.file).PhysicalOffset(b.page);
            });
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

  PageRun current{pages[0], 1};
  for (size_t i = 1; i < pages.size(); ++i) {
    const PageId& p = pages[i];
    const bool adjacent = p.file == current.start.file &&
                          p.page == current.start.page + current.length;
    if (adjacent) {
      ++current.length;
    } else {
      runs.push_back(current);
      current = PageRun{p, 1};
    }
  }
  runs.push_back(current);
  return runs;
}

Status ExecuteSchedule(StorageBackend* disk, const std::vector<PageRun>& runs) {
  PMJOIN_METRIC_COUNT("disk_scheduler.schedules", 1);
  PMJOIN_METRIC_COUNT("disk_scheduler.runs", runs.size());
  for (const PageRun& run : runs) {
    PMJOIN_RETURN_IF_ERROR(disk->ReadPages(run.start, run.length));
  }
  return Status::OK();
}

}  // namespace pmjoin
