#ifndef PMJOIN_IO_CHECKSUM_H_
#define PMJOIN_IO_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace pmjoin {

/// XXH64 (Yann Collet's xxHash, 64-bit variant), implemented locally so the
/// file backend has a fast page checksum without an external dependency.
/// Matches the reference algorithm bit-for-bit, so on-disk checksums remain
/// verifiable with standard tooling.
uint64_t Xxh64(const void* data, size_t len, uint64_t seed = 0);

}  // namespace pmjoin

#endif  // PMJOIN_IO_CHECKSUM_H_
