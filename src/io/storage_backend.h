#ifndef PMJOIN_IO_STORAGE_BACKEND_H_
#define PMJOIN_IO_STORAGE_BACKEND_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/disk_model.h"
#include "io/io_stats.h"
#include "io/page_file.h"

namespace pmjoin {

/// Physical page size used by backends unless the caller overrides it.
/// The *modeled* cost is per-page regardless of size; the page size only
/// matters for backends that store real payload bytes.
inline constexpr uint32_t kDefaultPageSizeBytes = 4096;

/// Abstract page-oriented storage: a set of files, each a dense array of
/// fixed-size pages.
///
/// The base class owns the paper's linear-disk *cost model* — the head
/// position, the seek-vs-sequential accounting, and the cumulative
/// `IoStats`. Every public operation first performs the backend's physical
/// work (a subclass hook), then applies the modeled accounting only on
/// success. Because the accounting lives here and is keyed purely to the
/// sequence of page operations, the modeled `IoStats` of a run are
/// byte-identical across backends by construction; backends differ only in
/// where the payload bytes live (RAM, real files) and in the *measured*
/// I/O they report.
///
/// All I/O performed by the join operators — through the BufferPool or
/// directly (external sort passes, spill files) — funnels through this
/// interface, so `stats()` is the single source of truth for every modeled
/// I/O figure the benchmarks report.
class StorageBackend {
 public:
  /// Real I/O observed by the backend (syscalls issued, bytes moved).
  /// Always counted — cheap integer increments — independent of the obs
  /// layer; the obs metrics mirror these when a tracer session is active.
  /// The simulated backend performs no syscalls, so its counters stay zero.
  struct MeasuredIo {
    uint64_t read_syscalls = 0;
    uint64_t write_syscalls = 0;
    uint64_t read_bytes = 0;
    uint64_t write_bytes = 0;
    uint64_t sync_calls = 0;
    uint64_t checksum_checks = 0;
    uint64_t fadvise_calls = 0;

    /// Folds another counter set into this one (used to merge the
    /// per-staged-run counters accumulated off-thread by the async
    /// reader back into the backend's ledger on the coordinator).
    void Merge(const MeasuredIo& other) {
      read_syscalls += other.read_syscalls;
      write_syscalls += other.write_syscalls;
      read_bytes += other.read_bytes;
      write_bytes += other.write_bytes;
      sync_calls += other.sync_calls;
      checksum_checks += other.checksum_checks;
      fadvise_calls += other.fadvise_calls;
    }
  };

  explicit StorageBackend(DiskModel model = DiskModel(),
                          uint32_t page_size_bytes = kDefaultPageSizeBytes);
  virtual ~StorageBackend();

  StorageBackend(const StorageBackend&) = delete;
  StorageBackend& operator=(const StorageBackend&) = delete;

  /// Short identifier for reports: "sim", "file".
  virtual std::string_view backend_name() const = 0;

  /// Creates a file with `initial_pages` pages. Files occupy disjoint
  /// physical regions; a file may grow later via `AllocatePages`. Returns
  /// the new file's id. Registration itself never fails; a backend whose
  /// physical create fails (e.g. the data directory is not writable)
  /// records a sticky error that every subsequent operation on the file
  /// returns.
  uint32_t CreateFile(std::string_view name, uint32_t initial_pages = 0);

  /// Number of files registered.
  size_t NumFiles() const { return files_.size(); }

  /// File metadata; `file` must be a valid id.
  const PageFile& file(uint32_t file) const { return files_[file]; }

  /// Number of pages currently in `file`; `file` must be a valid id.
  uint32_t num_pages(uint32_t file) const { return files_[file].num_pages; }

  /// Finds a file by name. When several files share a name (e.g. a dataset
  /// persisted twice), the most recently created one wins.
  Result<uint32_t> FindFile(std::string_view name) const;

  /// Grows `file` by `pages` pages (physically contiguous with the file's
  /// existing pages). Returns the index of the first new page.
  Result<uint32_t> AllocatePages(uint32_t file, uint32_t pages = 1);

  /// Reads one page, payload discarded: charges one modeled transfer, plus
  /// a seek if the page is not physically adjacent to the previous access.
  Status ReadPage(PageId pid);

  /// Reads `count` physically consecutive pages starting at `pid` (one
  /// modeled seek at most, `count` transfers).
  Status ReadPages(PageId pid, uint32_t count);

  /// Writes one page of zeros (same adjacency rule as reads). The page
  /// must already exist (use AllocatePages to grow the file first).
  Status WritePage(PageId pid);

  /// Writes one page with the given payload (at most `page_size_bytes()`
  /// bytes; the remainder of the page is zero-filled). Modeled cost is
  /// identical to `WritePage`.
  Status WritePagePayload(PageId pid, std::span<const uint8_t> payload);

  /// Reads one page's payload into `out`, which must be exactly
  /// `page_size_bytes()` long. Modeled cost is identical to `ReadPage`.
  Status ReadPagePayload(PageId pid, std::span<uint8_t> out);

  /// Full sequential scan of a file (one modeled seek + N transfers).
  Status ScanFile(uint32_t file);

  /// Flushes all buffered writes to stable storage. No modeled cost (the
  /// paper's model has no durability dimension).
  Status Sync();

  /// Physical page size in bytes.
  uint32_t page_size_bytes() const { return page_size_bytes_; }

  /// Cumulative modeled I/O counters.
  const IoStats& stats() const { return stats_; }
  IoStats& mutable_stats() { return stats_; }

  /// Cumulative measured (real) I/O counters.
  const MeasuredIo& measured() const { return measured_; }

  /// The disk cost model in force.
  const DiskModel& model() const { return model_; }

  /// Modeled elapsed I/O seconds so far.
  double ModeledSeconds() const { return stats_.ModeledSeconds(model_); }

  /// Resets modeled counters (not file layout). Used between benchmark
  /// phases that share a dataset.
  void ResetStats() { stats_.Reset(); }

  /// --- Asynchronous staging (optional; see io/async_reader.h) ---
  ///
  /// Staging moves *physical bytes only* — it never touches the modeled
  /// `IoStats` ledger, which is charged (by the base class, as always)
  /// when the staged run is later consumed through `ReadPages` at its
  /// normal call site. A backend without physical reads has nothing to
  /// stage; the defaults make staging a no-op there.
  ///
  /// Lifecycle of one staged run (a physically consecutive page range):
  ///   1. BeginStage(pid, count)  — coordinator registers the run (pending).
  ///      Returns false if the backend does not stage, the range is
  ///      invalid, or a run with the same start is already registered.
  ///      (Runs are keyed by start; consumption requires an exact
  ///      (start, count) match, so distinct-start overlaps are harmless —
  ///      they just read some bytes twice.)
  ///   2. PerformStage(pid, count) — an I/O thread claims the pending run,
  ///      physically reads + verifies it into a staging buffer, and
  ///      publishes the result (payload or error). A run already claimed
  ///      back by the coordinator (step 3 hit first) is skipped.
  ///   3. ReadPages(pid, count) on the coordinator consumes the staged
  ///      result instead of re-reading: ready runs are taken as-is
  ///      (blocking briefly if the read is still in flight — the wait is
  ///      surfaced via the `io.wait_ns` metric); still-pending runs are
  ///      claimed back and read synchronously.
  ///   4. DropStaged() discards whatever was never consumed (end of run or
  ///      error unwind). Physical reads that already happened stay in the
  ///      measured ledger — the bytes really moved.
  virtual bool SupportsStaging() const { return false; }
  virtual bool BeginStage(PageId pid, uint32_t count) {
    (void)pid;
    (void)count;
    return false;
  }
  /// Thread-safe; the only StorageBackend entry point I/O threads may call.
  virtual void PerformStage(PageId pid, uint32_t count) {
    (void)pid;
    (void)count;
  }
  /// Blocks until no stage is in flight, then discards unconsumed runs.
  /// Coordinator-only, and only safe once no further PerformStage calls
  /// can be *submitted* (destroy the AsyncReader first).
  virtual void DropStaged() {}
  /// Number of runs currently registered (pending, in flight, or ready).
  virtual size_t StagedCount() const { return 0; }

  /// Advises the OS that `count` pages starting at `pid` will be needed
  /// soon (posix_fadvise WILLNEED where available; counted in
  /// `MeasuredIo::fadvise_calls`). Purely a kernel read-ahead hint: no
  /// modeled cost, no effect on results. Coordinator-only.
  virtual void AdviseWillNeed(PageId pid, uint32_t count) {
    (void)pid;
    (void)count;
  }

 protected:
  /// Physical hooks. The base class validates arguments and performs the
  /// modeled accounting; hooks only move bytes. A hook failure suppresses
  /// the accounting for that operation.
  ///
  /// Physically creates the file. Must not fail destructively: a backend
  /// that cannot create the file records a sticky per-file error instead
  /// (CreateFile registration is infallible by contract).
  virtual void DoCreateFile(uint32_t file_id, std::string_view name,
                            uint32_t initial_pages) = 0;
  /// Physically extends `file` with `count` zeroed pages at `first_new`.
  virtual Status DoAllocatePages(uint32_t file, uint32_t first_new,
                                 uint32_t count) = 0;
  /// Physically reads `count` consecutive pages. If `payload_out` is
  /// non-null it holds `count * page_size_bytes()` bytes to fill; when
  /// null the payload is verified (checksums) but discarded.
  virtual Status DoReadPages(PageId pid, uint32_t count,
                             uint8_t* payload_out) = 0;
  /// Physically writes one page. `payload`/`payload_size` give the leading
  /// bytes (null/0 for a zero page); the rest of the page is zero-filled.
  virtual Status DoWritePage(PageId pid, const uint8_t* payload,
                             uint32_t payload_size) = 0;
  virtual Status DoSync() = 0;

  /// Registers a file restored from existing physical storage (backend
  /// attach path). Bypasses `DoCreateFile` and charges nothing.
  uint32_t RegisterRestoredFile(std::string_view name, uint32_t num_pages);

  /// Real-I/O counters, maintained by subclass hooks.
  MeasuredIo measured_;

  /// Physical region granularity between files. Regions never overlap as
  /// long as no file exceeds this page count; because regions are this far
  /// apart, an access that crosses a file boundary always charges a seek,
  /// which makes the modeled cost independent of file *ids* (only the
  /// per-file page sequences matter).
  static constexpr uint64_t kFileRegionPages = uint64_t(1) << 32;

 private:
  Status CheckPage(PageId pid) const;
  void Access(uint64_t physical, uint32_t run_len, bool is_write);
  uint32_t RegisterFile(std::string_view name, uint32_t num_pages);

  DiskModel model_;
  uint32_t page_size_bytes_;
  std::vector<PageFile> files_;
  IoStats stats_;

  /// Physical address the head would reach next with no seek; ~0 initially
  /// (first access always seeks).
  uint64_t next_sequential_ = ~uint64_t(0);
};

/// Writes `blob` to a new file `name` on `backend` as zero-padded pages.
/// Returns the new file's id. Used for dataset metadata (`Persist`).
Result<uint32_t> WriteBlobFile(StorageBackend* backend, std::string_view name,
                               std::span<const uint8_t> blob);

/// Reads the whole of `file` back as one byte buffer of
/// `num_pages * page_size_bytes()` (the writer's zero padding included).
Result<std::vector<uint8_t>> ReadFileBlob(StorageBackend* backend,
                                          uint32_t file);

}  // namespace pmjoin

#endif  // PMJOIN_IO_STORAGE_BACKEND_H_
