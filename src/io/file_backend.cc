#include "io/file_backend.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <utility>
#include <vector>

#include "io/checksum.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace pmjoin {
namespace {

/// Pages moved per syscall when reading/writing runs of slots.
constexpr uint32_t kChunkPages = 256;

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

Status ErrnoStatus(std::string_view what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

std::string SanitizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    out.push_back(keep ? c : '_');
  }
  if (out.size() > 64) out.resize(64);
  return out;
}

}  // namespace

FileBackend::FileBackend(std::string directory, Options options)
    : StorageBackend(options.model, options.page_size_bytes),
      dir_(std::move(directory)) {}

FileBackend::~FileBackend() {
  for (Handle& h : handles_) {
    if (h.fd >= 0) ::close(h.fd);
  }
  for (auto& [file, fds] : staging_fds_) {
    for (int fd : fds) ::close(fd);
  }
}

Result<std::unique_ptr<FileBackend>> FileBackend::Open(
    std::string_view directory, Options options) {
  if (options.page_size_bytes == 0)
    return Status::InvalidArgument("FileBackend: page size must be nonzero");
  std::string dir(directory);
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    return ErrnoStatus("FileBackend: mkdir " + dir);

  // Collect existing page files: pf<6-digit id>_<name>.pmj.
  std::vector<std::pair<uint32_t, std::string>> entries;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ErrnoStatus("FileBackend: opendir " + dir);
  while (dirent* e = ::readdir(d)) {
    const std::string fname = e->d_name;
    if (fname.size() < 13 || fname.rfind("pf", 0) != 0) continue;
    if (fname.substr(fname.size() - 4) != ".pmj") continue;
    if (fname[8] != '_') continue;
    uint32_t id = 0;
    bool numeric = true;
    for (int i = 2; i < 8; ++i) {
      if (fname[i] < '0' || fname[i] > '9') {
        numeric = false;
        break;
      }
      id = id * 10 + static_cast<uint32_t>(fname[i] - '0');
    }
    if (!numeric) continue;
    entries.emplace_back(id, fname);
  }
  ::closedir(d);
  std::sort(entries.begin(), entries.end());

  std::unique_ptr<FileBackend> backend(
      new FileBackend(std::move(dir), options));
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].first != i)
      return Status::Corruption(
          "FileBackend: page-file id sequence has a gap before " +
          entries[i].second);
    const std::string path = backend->dir_ + "/" + entries[i].second;
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) return ErrnoStatus("FileBackend: open " + path);

    uint8_t sb[kSuperblockBytes];
    Status read =
        backend->PreadAll(fd, sb, sizeof(sb), 0, path, &backend->measured_);
    if (!read.ok()) {
      ::close(fd);
      if (read.IsCorruption())
        return Status::Corruption("FileBackend: truncated superblock in " +
                                  path);
      return read;
    }
    if (std::memcmp(sb, kMagic, sizeof(kMagic)) != 0) {
      ::close(fd);
      return Status::Corruption("FileBackend: bad magic in " + path);
    }
    if (GetU64(sb + kSuperblockBytes - 8) !=
        Xxh64(sb, kSuperblockBytes - 8)) {
      ::close(fd);
      return Status::Corruption("FileBackend: superblock checksum mismatch " +
                                path);
    }
    const uint32_t version = GetU32(sb + 8);
    if (version != kFormatVersion) {
      ::close(fd);
      return Status::Corruption("FileBackend: unsupported format version in " +
                                path);
    }
    const uint32_t page_size = GetU32(sb + 12);
    if (page_size != options.page_size_bytes) {
      ::close(fd);
      return Status::InvalidArgument(
          "FileBackend: page-size mismatch (backend vs. " + path + ")");
    }
    const uint32_t num_pages = GetU32(sb + 16);
    const uint32_t name_len = GetU32(sb + 20);
    if (name_len > kMaxNameBytes) {
      ::close(fd);
      return Status::Corruption("FileBackend: bad name length in " + path);
    }
    const std::string name(reinterpret_cast<const char*>(sb + 24), name_len);
    backend->RegisterRestoredFile(name, num_pages);
    backend->handles_.push_back(Handle{fd, path, Status::OK()});
  }
  return backend;
}

Status FileBackend::FileStatus(uint32_t file) const {
  if (file >= handles_.size())
    return Status::InvalidArgument("FileStatus: bad file id");
  const Handle& h = handles_[file];
  if (h.fd >= 0) return Status::OK();
  return h.error.ok() ? Status::Internal("FileStatus: file has no descriptor")
                      : h.error;
}

std::string FileBackend::PathFor(uint32_t file_id,
                                 std::string_view name) const {
  char prefix[16];
  std::snprintf(prefix, sizeof(prefix), "pf%06u_", file_id);
  return dir_ + "/" + prefix + SanitizeName(name) + ".pmj";
}

Status FileBackend::PreadAll(int fd, uint8_t* buf, size_t len,
                             uint64_t offset, std::string_view what,
                             MeasuredIo* io) {
  size_t done = 0;
  while (done < len) {
#ifndef PMJOIN_OBS_DISABLED
    const bool timed = obs::ObsEnabled();
    const int64_t t0 = timed ? obs::MonotonicNanos() : 0;
#endif
    const ssize_t r = ::pread(fd, buf + done, len - done,
                              static_cast<off_t>(offset + done));
#ifndef PMJOIN_OBS_DISABLED
    if (timed)
      PMJOIN_METRIC_RECORD(
          "io.pread_ns",
          static_cast<uint64_t>(obs::MonotonicNanos() - t0));
#endif
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(std::string("pread ") + std::string(what));
    }
    ++io->read_syscalls;
    io->read_bytes += static_cast<uint64_t>(r);
    PMJOIN_METRIC_COUNT("io.read_syscalls", 1);
    PMJOIN_METRIC_COUNT("io.read_bytes", static_cast<uint64_t>(r));
    if (r == 0)
      return Status::Corruption(std::string(what) +
                                ": short read (file truncated?)");
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status FileBackend::PwriteAll(int fd, const uint8_t* buf, size_t len,
                              uint64_t offset) {
  size_t done = 0;
  while (done < len) {
#ifndef PMJOIN_OBS_DISABLED
    const bool timed = obs::ObsEnabled();
    const int64_t t0 = timed ? obs::MonotonicNanos() : 0;
#endif
    const ssize_t r = ::pwrite(fd, buf + done, len - done,
                               static_cast<off_t>(offset + done));
#ifndef PMJOIN_OBS_DISABLED
    if (timed)
      PMJOIN_METRIC_RECORD(
          "io.pwrite_ns",
          static_cast<uint64_t>(obs::MonotonicNanos() - t0));
#endif
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite");
    }
    ++measured_.write_syscalls;
    measured_.write_bytes += static_cast<uint64_t>(r);
    PMJOIN_METRIC_COUNT("io.write_syscalls", 1);
    PMJOIN_METRIC_COUNT("io.write_bytes", static_cast<uint64_t>(r));
    if (r == 0) return Status::IoError("pwrite: no progress");
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status FileBackend::WriteSuperblock(uint32_t file, std::string_view name,
                                    uint32_t num_pages) {
  uint8_t sb[kSuperblockBytes] = {0};
  std::memcpy(sb, kMagic, sizeof(kMagic));
  PutU32(sb + 8, kFormatVersion);
  PutU32(sb + 12, page_size_bytes());
  PutU32(sb + 16, num_pages);
  std::string_view stored = name.substr(0, kMaxNameBytes);
  PutU32(sb + 20, static_cast<uint32_t>(stored.size()));
  std::memcpy(sb + 24, stored.data(), stored.size());
  PutU64(sb + kSuperblockBytes - 8, Xxh64(sb, kSuperblockBytes - 8));
  return PwriteAll(handles_[file].fd, sb, sizeof(sb), 0);
}

Status FileBackend::WriteZeroSlots(uint32_t file, uint32_t first,
                                   uint32_t count) {
  if (count == 0) return Status::OK();
  const uint64_t slot = SlotBytes(page_size_bytes());
  const uint32_t chunk_pages = std::min(count, kChunkPages);
  // All zero slots are identical: one template chunk, repeated.
  std::vector<uint8_t> zeros(chunk_pages * slot, 0);
  const uint64_t zero_sum = Xxh64(zeros.data(), page_size_bytes());
  for (uint32_t i = 0; i < chunk_pages; ++i)
    PutU64(zeros.data() + i * slot + page_size_bytes(), zero_sum);
  uint32_t written = 0;
  while (written < count) {
    const uint32_t n = std::min(count - written, chunk_pages);
    PMJOIN_RETURN_IF_ERROR(
        PwriteAll(handles_[file].fd, zeros.data(), n * slot,
                  SlotOffset(page_size_bytes(), first + written)));
    written += n;
  }
  return Status::OK();
}

void FileBackend::DoCreateFile(uint32_t file_id, std::string_view name,
                               uint32_t initial_pages) {
  handles_.resize(file_id + 1);
  Handle& h = handles_[file_id];
  const std::string path = PathFor(file_id, name);
  h.path = path;
  h.fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (h.fd < 0) {
    h.error = ErrnoStatus("FileBackend: create " + path);
    return;
  }
  Status st = WriteSuperblock(file_id, name, initial_pages);
  if (st.ok()) st = WriteZeroSlots(file_id, 0, initial_pages);
  if (!st.ok()) {
    ::close(h.fd);
    h.fd = -1;
    h.error = st;
  }
}

Status FileBackend::DoAllocatePages(uint32_t file, uint32_t first_new,
                                    uint32_t count) {
  PMJOIN_RETURN_IF_ERROR(FileStatus(file));
  PMJOIN_RETURN_IF_ERROR(WriteZeroSlots(file, first_new, count));
  return WriteSuperblock(file, this->file(file).name, first_new + count);
}

Status FileBackend::ReadSlotsVerify(int fd, PageId pid, uint32_t count,
                                    const std::string& fname,
                                    uint8_t* payload_out,
                                    std::vector<uint8_t>* scratch,
                                    MeasuredIo* io) {
  const uint64_t slot = SlotBytes(page_size_bytes());
  const uint32_t chunk_pages = std::min(count, kChunkPages);
  scratch->resize(chunk_pages * slot);
  uint32_t done = 0;
  while (done < count) {
    const uint32_t n = std::min(count - done, chunk_pages);
    PMJOIN_RETURN_IF_ERROR(
        PreadAll(fd, scratch->data(), n * slot,
                 SlotOffset(page_size_bytes(), pid.page + done), fname, io));
    for (uint32_t i = 0; i < n; ++i) {
      const uint8_t* slot_base = scratch->data() + i * slot;
      ++io->checksum_checks;
      if (Xxh64(slot_base, page_size_bytes()) !=
          GetU64(slot_base + page_size_bytes())) {
        return Status::Corruption(
            "FileBackend: page checksum mismatch in '" + fname + "' page " +
            std::to_string(pid.page + done + i));
      }
      if (payload_out != nullptr) {
        std::memcpy(payload_out + uint64_t(done + i) * page_size_bytes(),
                    slot_base, page_size_bytes());
      }
    }
    done += n;
  }
  return Status::OK();
}

Status FileBackend::DoReadPages(PageId pid, uint32_t count,
                                uint8_t* payload_out) {
  PMJOIN_RETURN_IF_ERROR(FileStatus(pid.file));

  // Staged-run fast path: when the async reader was asked to stage exactly
  // this run, consume its result instead of re-reading. The modeled ledger
  // is untouched either way — the base class charges it after this hook
  // returns, identically for staged and synchronous reads.
  Status staged_status;
  std::unique_ptr<uint8_t[]> staged_slots;
  MeasuredIo staged_io;
  bool consumed = false;
  uint64_t waited_ns = 0;
  {
    MutexLock lock(&staging_mu_);
    const uint64_t key = StageKey(pid);
    auto it = staging_.find(key);
    if (it != staging_.end() && it->second.count == count) {
      if (it->second.state == StageState::kPending) {
        // The reader never got to it: claim it back, read synchronously.
        staging_.erase(it);
      } else {
        if (it->second.state == StageState::kInFlight) {
#ifndef PMJOIN_OBS_DISABLED
          const bool timed = obs::ObsEnabled();
          const int64_t t0 = timed ? obs::MonotonicNanos() : 0;
#endif
          // Re-find after each wake: BeginStage inserts (from the
          // coordinator) cannot run while we block here, but PerformStage
          // publishing other runs keeps the map live.
          while (staging_.at(key).state == StageState::kInFlight)
            staging_cv_.Wait(&staging_mu_);
#ifndef PMJOIN_OBS_DISABLED
          if (timed)
            waited_ns = static_cast<uint64_t>(obs::MonotonicNanos() - t0);
#endif
        }
        StagedRun& run = staging_.at(key);
        staged_status = std::move(run.status);
        staged_slots = std::move(run.slots);
        staged_io = run.io;
        staging_.erase(key);
        consumed = true;
      }
    }
  }
  if (consumed) {
    measured_.Merge(staged_io);
#ifndef PMJOIN_OBS_DISABLED
    if (waited_ns > 0) PMJOIN_METRIC_RECORD("io.wait_ns", waited_ns);
#endif
    (void)waited_ns;
    PMJOIN_RETURN_IF_ERROR(staged_status);
    if (payload_out != nullptr) {
      const uint64_t slot = SlotBytes(page_size_bytes());
      for (uint32_t i = 0; i < count; ++i) {
        std::memcpy(payload_out + uint64_t(i) * page_size_bytes(),
                    staged_slots.get() + uint64_t(i) * slot,
                    page_size_bytes());
      }
    }
    return Status::OK();
  }

  return ReadSlotsVerify(handles_[pid.file].fd, pid, count,
                         file(pid.file).name, payload_out, &scratch_,
                         &measured_);
}

bool FileBackend::BeginStage(PageId pid, uint32_t count) {
  if (count == 0 || pid.file >= handles_.size()) return false;
  if (handles_[pid.file].fd < 0) return false;
  if (pid.page >= num_pages(pid.file) ||
      count > num_pages(pid.file) - pid.page)
    return false;
  MutexLock lock(&staging_mu_);
  auto [it, inserted] = staging_.try_emplace(StageKey(pid));
  if (!inserted) return false;
  it->second.count = count;
  return true;
}

void FileBackend::PerformStage(PageId pid, uint32_t count) {
  const uint64_t key = StageKey(pid);
  int fd = -1;
  {
    MutexLock lock(&staging_mu_);
    auto it = staging_.find(key);
    if (it == staging_.end() || it->second.state != StageState::kPending ||
        it->second.count != count)
      return;  // claimed back or dropped before we got here
    it->second.state = StageState::kInFlight;
    ++staging_inflight_;
    // Check out this stream's private descriptor (see staging_fds_ in the
    // header: one kernel file description per concurrent read stream keeps
    // readahead sequential-detection intact).
    std::vector<int>& pool = staging_fds_[pid.file];
    if (!pool.empty()) {
      fd = pool.back();
      pool.pop_back();
    }
  }
  // Physical read + verification with no lock held, into per-run local
  // buffers and counters (scratch_/measured_ are coordinator-only, and
  // the metric mirrors inside PreadAll must not fire under staging_mu_).
  // The run's raw slot image is read in the same chunk sizes the
  // synchronous path uses and verified in place; no payload copy happens
  // here (the consume path copies straight from the image).
  const uint64_t slot = SlotBytes(page_size_bytes());
  auto slots = std::make_unique_for_overwrite<uint8_t[]>(uint64_t(count) * slot);
  MeasuredIo io;
  Status st = FileStatus(pid.file);
  if (st.ok()) {
    if (fd < 0 && !handles_[pid.file].path.empty())
      fd = ::open(handles_[pid.file].path.c_str(), O_RDONLY);
    // Shared-descriptor fallback if the private open failed: correct,
    // just slower under concurrency.
    const int read_fd = fd >= 0 ? fd : handles_[pid.file].fd;
    const std::string& fname = file(pid.file).name;
    for (uint32_t done = 0; done < count && st.ok();
         done += std::min(count - done, kChunkPages)) {
      const uint32_t n = std::min(count - done, kChunkPages);
      st = PreadAll(read_fd, slots.get() + uint64_t(done) * slot, n * slot,
                    SlotOffset(page_size_bytes(), pid.page + done), fname,
                    &io);
    }
    for (uint32_t i = 0; i < count && st.ok(); ++i) {
      const uint8_t* slot_base = slots.get() + i * slot;
      ++io.checksum_checks;
      if (Xxh64(slot_base, page_size_bytes()) !=
          GetU64(slot_base + page_size_bytes())) {
        st = Status::Corruption(
            "FileBackend: page checksum mismatch in '" + fname + "' page " +
            std::to_string(pid.page + i));
      }
    }
  }
  MutexLock lock(&staging_mu_);
  auto it = staging_.find(key);
  if (it != staging_.end() && it->second.state == StageState::kInFlight) {
    it->second.state = StageState::kReady;
    it->second.status = std::move(st);
    it->second.slots = std::move(slots);
    it->second.io = io;
  }
  --staging_inflight_;
  if (fd >= 0) staging_fds_[pid.file].push_back(fd);
  staging_cv_.NotifyAll();
}

void FileBackend::DropStaged() {
  MeasuredIo dropped;
  {
    MutexLock lock(&staging_mu_);
    // Pending runs never started; in-flight runs must finish first (the
    // reader thread still references their entries).
    for (auto it = staging_.begin(); it != staging_.end();) {
      it = it->second.state == StageState::kPending ? staging_.erase(it)
                                                    : std::next(it);
    }
    while (staging_inflight_ > 0) staging_cv_.Wait(&staging_mu_);
    for (const auto& [key, run] : staging_) dropped.Merge(run.io);
    staging_.clear();
  }
  // Dropped reads still happened physically: they stay in the measured
  // ledger. The modeled ledger never saw them (staging charges nothing).
  measured_.Merge(dropped);
}

size_t FileBackend::StagedCount() const {
  MutexLock lock(&staging_mu_);
  return staging_.size();
}

void FileBackend::AdviseWillNeed(PageId pid, uint32_t count) {
  if (count == 0 || pid.file >= handles_.size()) return;
  if (handles_[pid.file].fd < 0) return;
  if (pid.page >= num_pages(pid.file) ||
      count > num_pages(pid.file) - pid.page)
    return;
#if defined(POSIX_FADV_WILLNEED)
  int rc;
  do {
    rc = ::posix_fadvise(
        handles_[pid.file].fd,
        static_cast<off_t>(SlotOffset(page_size_bytes(), pid.page)),
        static_cast<off_t>(uint64_t(count) * SlotBytes(page_size_bytes())),
        POSIX_FADV_WILLNEED);
  } while (rc == EINTR);
  if (rc == 0) {
    ++measured_.fadvise_calls;
    PMJOIN_METRIC_COUNT("io.fadvise_calls", 1);
  }
#endif
}

Status FileBackend::DoWritePage(PageId pid, const uint8_t* payload,
                                uint32_t payload_size) {
  PMJOIN_RETURN_IF_ERROR(FileStatus(pid.file));
  const uint64_t slot = SlotBytes(page_size_bytes());
  scratch_.assign(slot, 0);
  if (payload != nullptr && payload_size > 0)
    std::memcpy(scratch_.data(), payload, payload_size);
  PutU64(scratch_.data() + page_size_bytes(),
         Xxh64(scratch_.data(), page_size_bytes()));
  return PwriteAll(handles_[pid.file].fd, scratch_.data(), slot,
                   SlotOffset(page_size_bytes(), pid.page));
}

Status FileBackend::DoSync() {
  for (const Handle& h : handles_) {
    if (h.fd < 0) continue;
    if (::fsync(h.fd) != 0) return ErrnoStatus("fsync");
    ++measured_.sync_calls;
  }
  return Status::OK();
}

}  // namespace pmjoin
