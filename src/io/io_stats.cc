#include "io/io_stats.h"

#include <sstream>

namespace pmjoin {

IoStats IoStats::Delta(const IoStats& start) const {
  IoStats d;
  d.pages_read = pages_read - start.pages_read;
  d.pages_written = pages_written - start.pages_written;
  d.seeks = seeks - start.seeks;
  d.sequential_reads = sequential_reads - start.sequential_reads;
  d.buffer_hits = buffer_hits - start.buffer_hits;
  return d;
}

IoStats& IoStats::operator+=(const IoStats& other) {
  pages_read += other.pages_read;
  pages_written += other.pages_written;
  seeks += other.seeks;
  sequential_reads += other.sequential_reads;
  buffer_hits += other.buffer_hits;
  return *this;
}

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "pages_read=" << pages_read << " pages_written=" << pages_written
     << " seeks=" << seeks << " sequential_reads=" << sequential_reads
     << " buffer_hits=" << buffer_hits;
  return os.str();
}

}  // namespace pmjoin
