#ifndef PMJOIN_IO_FILE_BACKEND_H_
#define PMJOIN_IO_FILE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "io/disk_model.h"
#include "io/page_file.h"
#include "io/storage_backend.h"

namespace pmjoin {

/// Real-file `StorageBackend`: POSIX pread/pwrite over a directory of page
/// files. The modeled `IoStats` are still computed by the base class (so a
/// run's modeled cost is byte-identical to the simulated backend); this
/// backend adds *measured* I/O on top, so modeled-vs-measured cost can be
/// compared in one run report.
///
/// On-disk format (all integers little-endian):
///
///   <dir>/pf<6-digit id>_<sanitized name>.pmj
///
///   [ superblock: kSuperblockBytes ]
///     off 0   magic   "PMJPAGE1" (8 bytes)
///     off 8   u32     format version (kFormatVersion)
///     off 12  u32     page size in bytes
///     off 16  u32     number of pages
///     off 20  u32     file-name length
///     off 24  name    (at most kMaxNameBytes bytes, unpadded)
///     off 504 u64     XXH64 of bytes [0, 504)
///   [ page slot 0: page_size payload + u64 XXH64 of the payload ]
///   [ page slot 1 ] ...
///
/// Every read verifies the per-page checksum; a mismatch (bit flip,
/// truncation, torn write) surfaces as `Status::Corruption` — never a
/// crash. Pages allocated but never written read back as zeros (slots are
/// zero-filled, with valid checksums, at allocation time).
class FileBackend final : public StorageBackend {
 public:
  struct Options {
    DiskModel model;
    uint32_t page_size_bytes = kDefaultPageSizeBytes;
  };

  static constexpr char kMagic[8] = {'P', 'M', 'J', 'P', 'A', 'G', 'E', '1'};
  static constexpr uint32_t kFormatVersion = 1;
  static constexpr uint32_t kSuperblockBytes = 512;
  static constexpr uint32_t kMaxNameBytes = 448;

  /// Byte length of one page slot (payload + checksum trailer).
  static constexpr uint64_t SlotBytes(uint32_t page_size) {
    return uint64_t(page_size) + 8;
  }
  /// Byte offset of page `page`'s slot within its file.
  static constexpr uint64_t SlotOffset(uint32_t page_size, uint32_t page) {
    return kSuperblockBytes + uint64_t(page) * SlotBytes(page_size);
  }

  /// Opens (creating if needed) `directory` as a backend root and attaches
  /// any page files already present, restoring their ids in creation
  /// order. Fails with `Corruption` on a bad superblock (magic, version,
  /// checksum, or a gap in the id sequence) and `InvalidArgument` on a
  /// page-size mismatch with `options`.
  static Result<std::unique_ptr<FileBackend>> Open(std::string_view directory,
                                                   Options options);
  static Result<std::unique_ptr<FileBackend>> Open(std::string_view directory) {
    return Open(directory, Options());
  }

  ~FileBackend() override;

  std::string_view backend_name() const override { return "file"; }

  const std::string& directory() const { return dir_; }

  /// The sticky physical status of `file`: OK, or the error that its
  /// creation hit (every page operation on such a file returns it too).
  Status FileStatus(uint32_t file) const;

  /// Asynchronous staging (see io/storage_backend.h for the lifecycle and
  /// io/async_reader.h for the threads that drive PerformStage). The
  /// staging table is guarded by `staging_mu_` (lock_rank::kIoStaging);
  /// the physical read and its metric mirrors always happen with the
  /// mutex released, so staging never nests a lock over the obs layer.
  /// BeginStage / DropStaged / StagedCount / AdviseWillNeed are
  /// coordinator-only; PerformStage is the one thread-safe entry point.
  /// Staging must not run concurrently with file creation or allocation
  /// (the executor only stages between joins of an already-built dataset).
  bool SupportsStaging() const override { return true; }
  bool BeginStage(PageId pid, uint32_t count) override
      PMJOIN_EXCLUDES(staging_mu_);
  void PerformStage(PageId pid, uint32_t count) override
      PMJOIN_EXCLUDES(staging_mu_);
  void DropStaged() override PMJOIN_EXCLUDES(staging_mu_);
  size_t StagedCount() const override PMJOIN_EXCLUDES(staging_mu_);
  void AdviseWillNeed(PageId pid, uint32_t count) override;

 protected:
  void DoCreateFile(uint32_t file_id, std::string_view name,
                    uint32_t initial_pages) override;
  Status DoAllocatePages(uint32_t file, uint32_t first_new,
                         uint32_t count) override;
  Status DoReadPages(PageId pid, uint32_t count,
                     uint8_t* payload_out) override;
  Status DoWritePage(PageId pid, const uint8_t* payload,
                     uint32_t payload_size) override;
  Status DoSync() override;

 private:
  struct Handle {
    int fd = -1;
    std::string path;  // for opening extra staging descriptors
    Status error;      // sticky: set when creation failed
  };

  /// One staged page run: registered pending by the coordinator, read into
  /// `slots` by an I/O thread (state kInFlight → kReady), consumed or
  /// dropped by the coordinator. `slots` is the run's raw on-disk image
  /// (payload + checksum trailer per page), verified in place by the I/O
  /// thread — the consume path copies payloads straight out of it, so a
  /// staged read costs the same number of copies as a synchronous one.
  /// `io` accumulates the staging read's measured counters off-thread;
  /// they are merged into `measured_` on the coordinator when the run is
  /// consumed or dropped.
  enum class StageState { kPending, kInFlight, kReady };
  struct StagedRun {
    StageState state = StageState::kPending;
    uint32_t count = 0;
    Status status;
    // Uninitialized on purpose: every byte is overwritten by the staging
    // pread (or the run fails and the buffer is dropped unread); zeroing
    // it first would put a full extra memory pass on the staging path.
    std::unique_ptr<uint8_t[]> slots;
    MeasuredIo io;
  };

  FileBackend(std::string directory, Options options);

  /// Staging-table key: the run's physical start (file region + page).
  static uint64_t StageKey(PageId pid) {
    return (uint64_t(pid.file) << 32) | pid.page;
  }

  std::string PathFor(uint32_t file_id, std::string_view name) const;
  Status WriteSuperblock(uint32_t file, std::string_view name,
                         uint32_t num_pages);
  Status WriteZeroSlots(uint32_t file, uint32_t first, uint32_t count);
  Status PwriteAll(int fd, const uint8_t* buf, size_t len, uint64_t offset);
  Status PreadAll(int fd, uint8_t* buf, size_t len, uint64_t offset,
                  std::string_view what, MeasuredIo* io);
  /// Chunked pread + per-page checksum verification of `count` slots
  /// starting at `pid`, copying payloads into `payload_out` when non-null.
  /// Counts into `io` (the caller picks `&measured_` on the coordinator or
  /// a staged run's local set on an I/O thread) and uses `scratch` for the
  /// slot-aligned chunk buffer.
  Status ReadSlotsVerify(int fd, PageId pid, uint32_t count,
                         const std::string& fname, uint8_t* payload_out,
                         std::vector<uint8_t>* scratch, MeasuredIo* io);

  std::string dir_;
  std::vector<Handle> handles_;
  /// Slot-aligned scratch for chunked reads/writes; coordinator-only (the
  /// executor funnels all pool I/O through one thread; staging reads on
  /// I/O threads use per-call local buffers instead).
  std::vector<uint8_t> scratch_;

  mutable Mutex staging_mu_{lock_rank::kIoStaging, "FileBackend::staging_mu_"};
  CondVar staging_cv_;
  std::unordered_map<uint64_t, StagedRun> staging_
      PMJOIN_GUARDED_BY(staging_mu_);
  /// Number of runs currently being read by PerformStage. DropStaged waits
  /// for this to reach zero before clearing the table.
  uint32_t staging_inflight_ PMJOIN_GUARDED_BY(staging_mu_) = 0;
  /// Spare read-only descriptors per file, used exclusively by
  /// PerformStage. Each concurrent staged read checks one out (opening a
  /// new one on first use), so every read stream owns a distinct kernel
  /// file description: the per-description readahead state then sees each
  /// run's chunks back-to-back instead of interleaved with other runs on
  /// the coordinator's descriptor — interleaving defeats sequential
  /// detection and measurably slows the physical reads. The pool never
  /// grows past the number of concurrently staging threads.
  std::unordered_map<uint32_t, std::vector<int>> staging_fds_
      PMJOIN_GUARDED_BY(staging_mu_);
};

}  // namespace pmjoin

#endif  // PMJOIN_IO_FILE_BACKEND_H_
