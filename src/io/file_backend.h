#ifndef PMJOIN_IO_FILE_BACKEND_H_
#define PMJOIN_IO_FILE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/disk_model.h"
#include "io/page_file.h"
#include "io/storage_backend.h"

namespace pmjoin {

/// Real-file `StorageBackend`: POSIX pread/pwrite over a directory of page
/// files. The modeled `IoStats` are still computed by the base class (so a
/// run's modeled cost is byte-identical to the simulated backend); this
/// backend adds *measured* I/O on top, so modeled-vs-measured cost can be
/// compared in one run report.
///
/// On-disk format (all integers little-endian):
///
///   <dir>/pf<6-digit id>_<sanitized name>.pmj
///
///   [ superblock: kSuperblockBytes ]
///     off 0   magic   "PMJPAGE1" (8 bytes)
///     off 8   u32     format version (kFormatVersion)
///     off 12  u32     page size in bytes
///     off 16  u32     number of pages
///     off 20  u32     file-name length
///     off 24  name    (at most kMaxNameBytes bytes, unpadded)
///     off 504 u64     XXH64 of bytes [0, 504)
///   [ page slot 0: page_size payload + u64 XXH64 of the payload ]
///   [ page slot 1 ] ...
///
/// Every read verifies the per-page checksum; a mismatch (bit flip,
/// truncation, torn write) surfaces as `Status::Corruption` — never a
/// crash. Pages allocated but never written read back as zeros (slots are
/// zero-filled, with valid checksums, at allocation time).
class FileBackend final : public StorageBackend {
 public:
  struct Options {
    DiskModel model;
    uint32_t page_size_bytes = kDefaultPageSizeBytes;
  };

  static constexpr char kMagic[8] = {'P', 'M', 'J', 'P', 'A', 'G', 'E', '1'};
  static constexpr uint32_t kFormatVersion = 1;
  static constexpr uint32_t kSuperblockBytes = 512;
  static constexpr uint32_t kMaxNameBytes = 448;

  /// Byte length of one page slot (payload + checksum trailer).
  static constexpr uint64_t SlotBytes(uint32_t page_size) {
    return uint64_t(page_size) + 8;
  }
  /// Byte offset of page `page`'s slot within its file.
  static constexpr uint64_t SlotOffset(uint32_t page_size, uint32_t page) {
    return kSuperblockBytes + uint64_t(page) * SlotBytes(page_size);
  }

  /// Opens (creating if needed) `directory` as a backend root and attaches
  /// any page files already present, restoring their ids in creation
  /// order. Fails with `Corruption` on a bad superblock (magic, version,
  /// checksum, or a gap in the id sequence) and `InvalidArgument` on a
  /// page-size mismatch with `options`.
  static Result<std::unique_ptr<FileBackend>> Open(std::string_view directory,
                                                   Options options);
  static Result<std::unique_ptr<FileBackend>> Open(std::string_view directory) {
    return Open(directory, Options());
  }

  ~FileBackend() override;

  std::string_view backend_name() const override { return "file"; }

  const std::string& directory() const { return dir_; }

  /// The sticky physical status of `file`: OK, or the error that its
  /// creation hit (every page operation on such a file returns it too).
  Status FileStatus(uint32_t file) const;

 protected:
  void DoCreateFile(uint32_t file_id, std::string_view name,
                    uint32_t initial_pages) override;
  Status DoAllocatePages(uint32_t file, uint32_t first_new,
                         uint32_t count) override;
  Status DoReadPages(PageId pid, uint32_t count,
                     uint8_t* payload_out) override;
  Status DoWritePage(PageId pid, const uint8_t* payload,
                     uint32_t payload_size) override;
  Status DoSync() override;

 private:
  struct Handle {
    int fd = -1;
    Status error;  // sticky: set when creation failed
  };

  FileBackend(std::string directory, Options options);

  std::string PathFor(uint32_t file_id, std::string_view name) const;
  Status WriteSuperblock(uint32_t file, std::string_view name,
                         uint32_t num_pages);
  Status WriteZeroSlots(uint32_t file, uint32_t first, uint32_t count);
  Status PwriteAll(int fd, const uint8_t* buf, size_t len, uint64_t offset);
  Status PreadAll(int fd, uint8_t* buf, size_t len, uint64_t offset,
                  std::string_view what);

  std::string dir_;
  std::vector<Handle> handles_;
  /// Slot-aligned scratch for chunked reads/writes; single-threaded use
  /// (the backend, like SimulatedDisk, is driven by one thread — the
  /// executor funnels all I/O through the coordinator).
  std::vector<uint8_t> scratch_;
};

}  // namespace pmjoin

#endif  // PMJOIN_IO_FILE_BACKEND_H_
