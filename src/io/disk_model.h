#ifndef PMJOIN_IO_DISK_MODEL_H_
#define PMJOIN_IO_DISK_MODEL_H_

namespace pmjoin {

/// Parameters of the simulated linear disk (paper §4: "a finite buffer of B
/// pages and a linear disk model").
///
/// A page access costs one sequential transfer; if the page is not physically
/// adjacent to the previously accessed page, a random seek is charged on top.
/// Defaults approximate a early-2000s commodity drive: ~10 ms average seek
/// (seek + rotational latency) and ~1 ms to stream one page. All reported
/// I/O "seconds" in benches derive from these two constants, so algorithm
/// comparisons depend only on their *ratio* (10:1), which is what makes
/// random access expensive — the effect the paper's CC clustering targets.
struct DiskModel {
  /// Cost of a random seek, in seconds.
  double seek_sec = 0.010;

  /// Cost of transferring one page, in seconds.
  double transfer_sec = 0.001;
};

}  // namespace pmjoin

#endif  // PMJOIN_IO_DISK_MODEL_H_
