#ifndef PMJOIN_IO_WIRE_H_
#define PMJOIN_IO_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace pmjoin {
namespace wire {

/// Little-endian byte serialization for the dataset metadata blobs the
/// storage backends persist. Fixed-width integers only — the format must
/// be identical across builds for on-disk checksums to be meaningful.

inline void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  uint8_t b[4];
  std::memcpy(b, &v, sizeof(b));
  out->insert(out->end(), b, b + sizeof(b));
}

inline void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t b[8];
  std::memcpy(b, &v, sizeof(b));
  out->insert(out->end(), b, b + sizeof(b));
}

inline void AppendBytes(std::vector<uint8_t>* out, const void* data,
                        size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + len);
}

/// Bounds-checked sequential reader. Overruns latch `ok` to false and
/// return zeros; callers check `ok` once at the end and report Corruption.
struct Reader {
  std::span<const uint8_t> data;
  size_t pos = 0;
  bool ok = true;

  explicit Reader(std::span<const uint8_t> d) : data(d) {}

  uint32_t U32() {
    uint32_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  bool Bytes(void* dst, size_t len) {
    if (!ok || data.size() - pos < len) {
      ok = false;
      std::memset(dst, 0, len);
      return false;
    }
    std::memcpy(dst, data.data() + pos, len);
    pos += len;
    return true;
  }
};

}  // namespace wire
}  // namespace pmjoin

#endif  // PMJOIN_IO_WIRE_H_
