#ifndef PMJOIN_IO_BUFFER_POOL_H_
#define PMJOIN_IO_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "io/page_file.h"
#include "io/storage_backend.h"

namespace pmjoin {

/// Fixed-capacity page buffer with LRU replacement (paper §4: "We will use
/// LRU as the page replacement policy due to its simplicity and
/// effectiveness").
///
/// The pool tracks *residency*, not payload bytes (payloads live with the
/// datasets; the disk is simulated). A page access that hits the pool is
/// free and counted in `IoStats::buffer_hits`; a miss evicts the LRU
/// unpinned page if the pool is full and charges the simulated disk.
///
/// Cluster reuse across consecutive clusters (the paper's Optimization 3)
/// falls out of this design: pages shared with the previous cluster are
/// still resident and hit the pool.
///
/// A pool may also be shared *across* whole joins (the join server hands
/// one pool to every query via JoinResources): page identity is global
/// (PageId = file + index), so residency left by one query simply turns
/// the next query's reads of the same pages into buffer hits. The sharer
/// must serialize access (the pool is not thread-safe) and should assert
/// CheckQuiescent() at query boundaries — a leaked pin would silently
/// shrink every later query's effective buffer.
class BufferPool {
 public:
  /// A pool holding at most `capacity` pages. `disk` must outlive the pool.
  BufferPool(StorageBackend* disk, uint32_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Makes `pid` resident (reading it from disk if needed) and pins it.
  /// Pinned pages are never evicted; fails with BufferFull if the pool is
  /// full of pinned pages.
  Status Pin(PageId pid);

  /// Makes `pid` resident without pinning (it is immediately evictable).
  Status Touch(PageId pid);

  /// Releases one pin on `pid`. The page stays resident (LRU) until evicted.
  void Unpin(PageId pid);

  /// Pins a batch. Misses are fetched with the seek-optimal disk schedule
  /// (io/disk_scheduler.h); hits cost nothing. The batch must fit:
  /// `pages.size() + pinned pages` must be <= capacity.
  ///
  /// Failure is NOT state-neutral: pins acquired before the failure are
  /// rolled back (and, when the physical read of the miss set fails — a
  /// FileBackend checksum mismatch, say — the missed pages' residency is
  /// dropped too, since their payloads were never read), but evictions
  /// already performed, `buffer_hits` already charged, and refreshed LRU
  /// positions are not restored. A caller that
  /// depends on accounting equivalence (the parallel executor's prefetch,
  /// core/executor.cc) must gate the call so it provably cannot fail —
  /// evictions needed must not exceed the evictable pages *outside* the
  /// batch (see IsEvictable) — or treat failure as fatal.
  Status PinBatch(std::span<const PageId> pages);

  /// Unpins every page in `pages` (each exactly once).
  void UnpinBatch(std::span<const PageId> pages);

  /// True iff the page is resident (pinned or not).
  bool Contains(PageId pid) const;

  /// True iff the page is resident with pin count zero, i.e. currently an
  /// eviction candidate. The parallel executor's prefetch gate uses this
  /// to exclude a batch's own resident-unpinned pages from the victim
  /// supply: PinBatch pins them before admitting any miss, so they can
  /// never be evicted on behalf of that batch.
  bool IsEvictable(PageId pid) const;

  /// Drops all unpinned pages (used between independent experiment phases).
  /// Fails if any page is still pinned.
  Status Clear();

  /// Verifies no page is pinned (every resident page is evictable).
  /// Callers sharing a pool across joins (the join server) check this at
  /// query boundaries: a leaked pin is a bug in the finished query, and
  /// left in place it would steal buffer capacity from every subsequent
  /// one. Returns Internal naming the pinned count on violation.
  Status CheckQuiescent() const;

  /// Full structural audit of the pool's bookkeeping: residency never
  /// exceeds capacity, `PinnedCount()` equals the number of frames with a
  /// positive pin count, and the LRU list holds exactly the unpinned
  /// resident pages (each once, with back-pointers consistent). O(resident)
  /// — called from tests, and at executor phase boundaries in paranoid
  /// builds (-DPMJOIN_PARANOID=ON). Returns Internal describing the first
  /// violation found.
  Status ValidateInvariants() const;

  uint32_t capacity() const { return capacity_; }
  uint32_t ResidentCount() const { return static_cast<uint32_t>(frames_.size()); }
  uint32_t PinnedCount() const { return pinned_count_; }

  /// Resident pages that are evictable (pin count zero). The parallel
  /// executor's prefetch-feasibility check (core/executor.cc) compares the
  /// evictions a batch would need against this.
  uint32_t UnpinnedCount() const {
    return static_cast<uint32_t>(frames_.size()) - pinned_count_;
  }

  StorageBackend* disk() { return disk_; }

 private:
  struct Frame {
    uint32_t pin_count = 0;
    /// Position in lru_ when pin_count == 0; lru_.end() otherwise.
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Ensures residency; appends to `missed` instead of reading when the
  /// page is absent (batch path) or reads immediately when `missed` is null.
  Status Ensure(PageId pid, std::vector<PageId>* missed);

  /// Evicts one LRU unpinned page; BufferFull if none exists.
  Status EvictOne();

  StorageBackend* disk_;
  uint32_t capacity_;
  uint32_t pinned_count_ = 0;
  std::unordered_map<PageId, Frame, PageIdHash> frames_;
  /// Unpinned resident pages, least-recently-used first.
  std::list<PageId> lru_;
};

/// RAII batch pin: pins in the constructor caller's hands, unpins on
/// destruction.
class PinnedBatch {
 public:
  PinnedBatch(BufferPool* pool, std::vector<PageId> pages)
      : pool_(pool), pages_(std::move(pages)) {}
  ~PinnedBatch() {
    if (pool_ != nullptr) pool_->UnpinBatch(pages_);
  }
  PinnedBatch(const PinnedBatch&) = delete;
  PinnedBatch& operator=(const PinnedBatch&) = delete;

  const std::vector<PageId>& pages() const { return pages_; }

 private:
  BufferPool* pool_;
  std::vector<PageId> pages_;
};

}  // namespace pmjoin

#endif  // PMJOIN_IO_BUFFER_POOL_H_
