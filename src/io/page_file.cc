#include "io/page_file.h"

// PageFile and PageId are header-only aggregates; this translation unit
// anchors the header in the build.

namespace pmjoin {}  // namespace pmjoin
