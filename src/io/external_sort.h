#ifndef PMJOIN_IO_EXTERNAL_SORT_H_
#define PMJOIN_IO_EXTERNAL_SORT_H_

#include <cstdint>

#include "common/status.h"
#include "io/storage_backend.h"

namespace pmjoin {

/// Cost plan of an external merge sort of a `pages`-page file with a
/// `buffer_pages` workspace: run formation reads and writes the file once
/// (runs of `buffer_pages` pages), then each (B−1)-way merge pass reads
/// and writes the file once more.
///
/// EGO's reordering step (§2.1: records must be rearranged into ε-grid
/// lexicographic order) is charged through this plan; the planner is also
/// unit-testable against the textbook pass-count formula
/// ceil(log_{B−1}(ceil(N/B))).
struct ExternalSortPlan {
  uint64_t pages = 0;
  uint32_t buffer_pages = 0;

  /// Number of initial sorted runs, ceil(pages / buffer).
  uint64_t initial_runs = 0;

  /// Number of merge passes after run formation.
  uint32_t merge_passes = 0;

  /// Total page transfers in each direction (run formation + merges).
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
};

/// Computes the plan. `buffer_pages` is clamped to >= 2 internally
/// (a one-page buffer cannot merge).
ExternalSortPlan PlanExternalSort(uint64_t pages, uint32_t buffer_pages);

/// Charges the plan's I/O against `disk` using scratch files (reads and
/// writes stream in buffer-sized chunks; one seek per chunk switch, the
/// alternating-extent behaviour of a two-drive-free merge sort).
Status ChargeExternalSort(StorageBackend* disk, uint32_t pages,
                          uint32_t buffer_pages);

}  // namespace pmjoin

#endif  // PMJOIN_IO_EXTERNAL_SORT_H_
