#include "io/external_sort.h"

#include <algorithm>

#include "obs/span.h"

namespace pmjoin {

ExternalSortPlan PlanExternalSort(uint64_t pages, uint32_t buffer_pages) {
  ExternalSortPlan plan;
  plan.pages = pages;
  plan.buffer_pages = std::max<uint32_t>(2, buffer_pages);
  if (pages == 0) return plan;

  plan.initial_runs =
      (pages + plan.buffer_pages - 1) / plan.buffer_pages;
  const uint64_t fan_in = std::max<uint32_t>(2, plan.buffer_pages - 1);
  uint64_t runs = plan.initial_runs;
  while (runs > 1) {
    runs = (runs + fan_in - 1) / fan_in;
    ++plan.merge_passes;
  }
  // Run formation + one read/write of the whole file per merge pass.
  plan.page_reads = pages * (1 + plan.merge_passes);
  plan.page_writes = pages * (1 + plan.merge_passes);
  return plan;
}

Status ChargeExternalSort(StorageBackend* disk, uint32_t pages,
                          uint32_t buffer_pages) {
  if (pages == 0) return Status::OK();
  PMJOIN_SPAN_ARG("external_sort", pages);
  const ExternalSortPlan plan = PlanExternalSort(pages, buffer_pages);
  const uint32_t scratch_a = disk->CreateFile("sort-scratch-a", pages);
  const uint32_t scratch_b = disk->CreateFile("sort-scratch-b", pages);
  const uint32_t fan_in = std::max<uint32_t>(2, plan.buffer_pages - 1);

  // Run formation: read input chunks, write sorted runs.
  for (uint32_t p = 0; p < pages; p += plan.buffer_pages) {
    const uint32_t len = std::min<uint32_t>(plan.buffer_pages, pages - p);
    PMJOIN_RETURN_IF_ERROR(disk->ReadPages({scratch_a, p}, len));
    for (uint32_t i = 0; i < len; ++i) {
      PMJOIN_RETURN_IF_ERROR(disk->WritePage({scratch_b, p + i}));
    }
  }
  // Merge passes: every page read once (one seek per chunk of fan_in) and
  // written once.
  uint32_t src = scratch_b;
  uint32_t dst = scratch_a;
  for (uint32_t pass = 0; pass < plan.merge_passes; ++pass) {
    for (uint32_t start = 0; start < pages; start += fan_in) {
      const uint32_t len = std::min<uint32_t>(fan_in, pages - start);
      PMJOIN_RETURN_IF_ERROR(disk->ReadPages({src, start}, len));
      for (uint32_t i = 0; i < len; ++i) {
        PMJOIN_RETURN_IF_ERROR(disk->WritePage({dst, start + i}));
      }
    }
    std::swap(src, dst);
  }
  return Status::OK();
}

}  // namespace pmjoin
