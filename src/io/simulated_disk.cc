#include "io/simulated_disk.h"

#include <cstring>

namespace pmjoin {

void SimulatedDisk::DoCreateFile(uint32_t /*file_id*/,
                                 std::string_view /*name*/,
                                 uint32_t /*initial_pages*/) {}

Status SimulatedDisk::DoAllocatePages(uint32_t /*file*/,
                                      uint32_t /*first_new*/,
                                      uint32_t /*count*/) {
  return Status::OK();
}

Status SimulatedDisk::DoReadPages(PageId pid, uint32_t count,
                                  uint8_t* payload_out) {
  if (payload_out == nullptr) return Status::OK();
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t* dst = payload_out + uint64_t(i) * page_size_bytes();
    std::memset(dst, 0, page_size_bytes());
    auto it = payloads_.find({pid.file, pid.page + i});
    if (it != payloads_.end())
      std::memcpy(dst, it->second.data(), it->second.size());
  }
  return Status::OK();
}

Status SimulatedDisk::DoWritePage(PageId pid, const uint8_t* payload,
                                  uint32_t payload_size) {
  if (payload == nullptr || payload_size == 0) {
    payloads_.erase(pid);
    return Status::OK();
  }
  payloads_[pid].assign(payload, payload + payload_size);
  return Status::OK();
}

Status SimulatedDisk::DoSync() { return Status::OK(); }

}  // namespace pmjoin
