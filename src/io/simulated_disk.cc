#include "io/simulated_disk.h"

#include <cassert>

namespace pmjoin {

SimulatedDisk::SimulatedDisk(DiskModel model) : model_(model) {}

uint32_t SimulatedDisk::CreateFile(std::string_view name,
                                   uint32_t initial_pages) {
  PageFile f;
  f.id = static_cast<uint32_t>(files_.size());
  f.name = std::string(name);
  f.num_pages = initial_pages;
  f.base_offset = uint64_t(f.id) * kFileRegionPages;
  files_.push_back(std::move(f));
  return files_.back().id;
}

Result<uint32_t> SimulatedDisk::Append(uint32_t file, uint32_t pages) {
  if (file >= files_.size())
    return Status::InvalidArgument("Append: bad file id");
  PageFile& f = files_[file];
  const uint32_t first = f.num_pages;
  if (uint64_t(f.num_pages) + pages > kFileRegionPages)
    return Status::OutOfRange("Append: file region exhausted");
  f.num_pages += pages;
  return first;
}

Status SimulatedDisk::CheckPage(PageId pid) const {
  if (pid.file >= files_.size())
    return Status::InvalidArgument("bad file id");
  if (pid.page >= files_[pid.file].num_pages)
    return Status::OutOfRange("page index out of bounds");
  return Status::OK();
}

void SimulatedDisk::Access(uint64_t physical, uint32_t run_len,
                           bool is_write) {
  if (physical != next_sequential_) {
    ++stats_.seeks;
  } else if (!is_write) {
    ++stats_.sequential_reads;
    // Count the remaining pages of the run as sequential too.
    stats_.sequential_reads += run_len - 1;
  }
  if (is_write) {
    stats_.pages_written += run_len;
  } else {
    stats_.pages_read += run_len;
    if (physical != next_sequential_ && run_len > 1) {
      // After the seek, the tail of the run streams sequentially.
      stats_.sequential_reads += run_len - 1;
    }
  }
  next_sequential_ = physical + run_len;
}

Status SimulatedDisk::ReadPage(PageId pid) {
  PMJOIN_RETURN_IF_ERROR(CheckPage(pid));
  Access(files_[pid.file].PhysicalOffset(pid.page), 1, /*is_write=*/false);
  return Status::OK();
}

Status SimulatedDisk::ReadRun(PageId pid, uint32_t count) {
  if (count == 0) return Status::OK();
  PMJOIN_RETURN_IF_ERROR(CheckPage(pid));
  PMJOIN_RETURN_IF_ERROR(CheckPage({pid.file, pid.page + count - 1}));
  Access(files_[pid.file].PhysicalOffset(pid.page), count,
         /*is_write=*/false);
  return Status::OK();
}

Status SimulatedDisk::WritePage(PageId pid) {
  PMJOIN_RETURN_IF_ERROR(CheckPage(pid));
  Access(files_[pid.file].PhysicalOffset(pid.page), 1, /*is_write=*/true);
  return Status::OK();
}

Status SimulatedDisk::ScanFile(uint32_t file) {
  if (file >= files_.size())
    return Status::InvalidArgument("ScanFile: bad file id");
  const PageFile& f = files_[file];
  if (f.num_pages == 0) return Status::OK();
  return ReadRun({file, 0}, f.num_pages);
}

}  // namespace pmjoin
