#ifndef PMJOIN_IO_IO_STATS_H_
#define PMJOIN_IO_IO_STATS_H_

#include <cstdint>
#include <string>

#include "io/disk_model.h"

namespace pmjoin {

/// Monotonic I/O counters maintained by the simulated disk.
///
/// Take a snapshot before a phase and call `Delta` after it to attribute
/// I/O to that phase; `ModeledSeconds` converts counters to modeled time
/// under a `DiskModel`.
struct IoStats {
  /// Pages transferred from disk (reads).
  uint64_t pages_read = 0;

  /// Pages transferred to disk (writes; used by EGO's external sort and
  /// BFRJ's spilled intermediate lists).
  uint64_t pages_written = 0;

  /// Random seeks charged (non-adjacent access, read or write).
  uint64_t seeks = 0;

  /// Reads satisfied sequentially (no seek).
  uint64_t sequential_reads = 0;

  /// Buffer-pool hits (no disk access at all). Maintained by BufferPool.
  uint64_t buffer_hits = 0;

  bool operator==(const IoStats& other) const = default;

  IoStats Delta(const IoStats& start) const;
  IoStats& operator+=(const IoStats& other);
  void Reset() { *this = IoStats(); }

  /// Total pages moved in either direction.
  uint64_t TotalTransfers() const { return pages_read + pages_written; }

  /// Modeled I/O time in seconds under `model`.
  double ModeledSeconds(const DiskModel& model) const {
    return seeks * model.seek_sec + TotalTransfers() * model.transfer_sec;
  }

  std::string ToString() const;
};

}  // namespace pmjoin

#endif  // PMJOIN_IO_IO_STATS_H_
