#include "io/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "io/disk_scheduler.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace pmjoin {

BufferPool::BufferPool(StorageBackend* disk, uint32_t capacity)
    : disk_(disk), capacity_(capacity) {
  assert(disk != nullptr);
  assert(capacity > 0);
}

Status BufferPool::EvictOne() {
  if (lru_.empty())
    return Status::BufferFull("all resident pages are pinned");
  PageId victim = lru_.front();
  lru_.pop_front();
  frames_.erase(victim);
  PMJOIN_METRIC_COUNT("buffer_pool.evictions", 1);
  return Status::OK();
}

Status BufferPool::Ensure(PageId pid, std::vector<PageId>* missed) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) {
    PMJOIN_METRIC_COUNT("buffer_pool.hits", 1);
    ++disk_->mutable_stats().buffer_hits;
    // Refresh LRU position if unpinned.
    Frame& f = it->second;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.lru_pos = lru_.insert(lru_.end(), pid);
    }
    return Status::OK();
  }
  PMJOIN_METRIC_COUNT("buffer_pool.misses", 1);
  if (frames_.size() >= capacity_) {
    PMJOIN_RETURN_IF_ERROR(EvictOne());
  }
  if (missed != nullptr) {
    missed->push_back(pid);
  } else {
    PMJOIN_RETURN_IF_ERROR(disk_->ReadPage(pid));
  }
  Frame f;
  f.lru_pos = lru_.insert(lru_.end(), pid);
  f.in_lru = true;
  frames_.emplace(pid, f);
  return Status::OK();
}

Status BufferPool::Pin(PageId pid) {
  PMJOIN_RETURN_IF_ERROR(Ensure(pid, nullptr));
  Frame& f = frames_.at(pid);
  if (f.pin_count == 0) {
    ++pinned_count_;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
  }
  ++f.pin_count;
  return Status::OK();
}

Status BufferPool::Touch(PageId pid) { return Ensure(pid, nullptr); }

void BufferPool::Unpin(PageId pid) {
  auto it = frames_.find(pid);
  assert(it != frames_.end() && "Unpin of non-resident page");
  Frame& f = it->second;
  assert(f.pin_count > 0 && "Unpin of unpinned page");
  --f.pin_count;
  if (f.pin_count == 0) {
    --pinned_count_;
    f.lru_pos = lru_.insert(lru_.end(), pid);
    f.in_lru = true;
  }
}

Status BufferPool::PinBatch(std::span<const PageId> pages) {
  PMJOIN_SPAN_ARG("pin_batch", pages.size());
  // Pin already-resident pages first: a miss admitted later can only evict
  // unpinned frames, so the batch's own resident pages can never be pushed
  // out before they are used (this preserves cross-cluster reuse even when
  // the batch fills the whole pool).
  std::vector<PageId> ordered(pages.begin(), pages.end());
  std::stable_partition(
      ordered.begin(), ordered.end(),
      [this](const PageId& pid) { return frames_.count(pid) > 0; });

  std::vector<PageId> missed;
  missed.reserve(ordered.size());
  // Register residency, collecting misses without charging I/O, so the
  // whole miss set can be read with one seek-optimal schedule.
  size_t done = 0;
  Status st;
  for (const PageId& pid : ordered) {
    st = Ensure(pid, &missed);
    if (!st.ok()) break;
    Frame& f = frames_.at(pid);
    if (f.pin_count == 0) {
      ++pinned_count_;
      if (f.in_lru) {
        lru_.erase(f.lru_pos);
        f.in_lru = false;
      }
    }
    ++f.pin_count;
    ++done;
  }
  if (!st.ok()) {
    // Roll back the pins acquired so far.
    for (size_t i = 0; i < done; ++i) Unpin(ordered[i]);
    return st;
  }
  std::vector<PageRun> schedule = BuildSchedule(*disk_, missed);
  st = ExecuteSchedule(disk_, schedule);
  if (!st.ok()) {
    // A physical read failure (e.g. a FileBackend checksum mismatch)
    // arrives after every pin in the batch is held: release them all and
    // drop the missed pages' residency — their payloads were never
    // (completely) read, so leaving them resident would let a later Pin
    // treat a never-read page as a hit.
    for (const PageId& pid : ordered) Unpin(pid);
    for (const PageId& pid : missed) {
      auto it = frames_.find(pid);
      if (it == frames_.end()) continue;
      if (it->second.in_lru) lru_.erase(it->second.lru_pos);
      frames_.erase(it);
    }
  }
  return st;
}

void BufferPool::UnpinBatch(std::span<const PageId> pages) {
  for (const PageId& pid : pages) Unpin(pid);
}

bool BufferPool::Contains(PageId pid) const {
  return frames_.find(pid) != frames_.end();
}

bool BufferPool::IsEvictable(PageId pid) const {
  auto it = frames_.find(pid);
  return it != frames_.end() && it->second.pin_count == 0;
}

Status BufferPool::ValidateInvariants() const {
  if (frames_.size() > capacity_)
    return Status::Internal("resident pages exceed capacity");
  uint32_t pinned = 0;
  size_t in_lru = 0;
  for (const auto& [pid, frame] : frames_) {
    if (frame.pin_count > 0) {
      ++pinned;
      if (frame.in_lru)
        return Status::Internal("pinned page present in LRU list");
    } else {
      if (!frame.in_lru)
        return Status::Internal("unpinned resident page missing from LRU");
      if (frame.lru_pos == lru_.end() || !(*frame.lru_pos == pid))
        return Status::Internal("LRU back-pointer names the wrong page");
      ++in_lru;
    }
  }
  if (pinned != pinned_count_)
    return Status::Internal("pinned_count does not match per-frame pins");
  if (in_lru != lru_.size())
    return Status::Internal("LRU list size does not match unpinned frames");
  for (const PageId& pid : lru_) {
    auto it = frames_.find(pid);
    if (it == frames_.end())
      return Status::Internal("LRU entry is not resident");
    if (it->second.pin_count != 0)
      return Status::Internal("LRU entry is pinned");
  }
  return Status::OK();
}

Status BufferPool::Clear() {
  if (pinned_count_ > 0)
    return Status::Internal("Clear with pinned pages outstanding");
  frames_.clear();
  lru_.clear();
  return Status::OK();
}

Status BufferPool::CheckQuiescent() const {
  if (pinned_count_ > 0)
    return Status::Internal("pool not quiescent: " +
                            std::to_string(pinned_count_) +
                            " pinned page(s) outstanding");
  return Status::OK();
}

}  // namespace pmjoin
