#ifndef PMJOIN_IO_SIMULATED_DISK_H_
#define PMJOIN_IO_SIMULATED_DISK_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "io/disk_model.h"
#include "io/page_file.h"
#include "io/storage_backend.h"

namespace pmjoin {

/// Simulated linear disk (paper §4's model): the deterministic, in-RAM
/// `StorageBackend`. All the seek/transfer accounting lives in the base
/// class; this backend performs no real I/O, so its `measured()` counters
/// stay zero and every operation succeeds instantly.
///
/// Page payloads written via `WritePagePayload` are retained in RAM so
/// `Persist`/`Open` round-trips work identically to the file backend
/// within one process; pages never written read back as zeros.
class SimulatedDisk final : public StorageBackend {
 public:
  explicit SimulatedDisk(DiskModel model = DiskModel(),
                         uint32_t page_size_bytes = kDefaultPageSizeBytes)
      : StorageBackend(model, page_size_bytes) {}

  std::string_view backend_name() const override { return "sim"; }

 protected:
  void DoCreateFile(uint32_t file_id, std::string_view name,
                    uint32_t initial_pages) override;
  Status DoAllocatePages(uint32_t file, uint32_t first_new,
                         uint32_t count) override;
  Status DoReadPages(PageId pid, uint32_t count,
                     uint8_t* payload_out) override;
  Status DoWritePage(PageId pid, const uint8_t* payload,
                     uint32_t payload_size) override;
  Status DoSync() override;

 private:
  /// Sparse payload store: only pages written through `WritePagePayload`
  /// occupy RAM (accounting-only writes store nothing).
  std::unordered_map<PageId, std::vector<uint8_t>, PageIdHash> payloads_;
};

}  // namespace pmjoin

#endif  // PMJOIN_IO_SIMULATED_DISK_H_
