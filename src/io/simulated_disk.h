#ifndef PMJOIN_IO_SIMULATED_DISK_H_
#define PMJOIN_IO_SIMULATED_DISK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/disk_model.h"
#include "io/io_stats.h"
#include "io/page_file.h"

namespace pmjoin {

/// Simulated linear disk: tracks the head position and charges a seek for
/// every non-adjacent page access (paper §4's linear disk model).
///
/// All I/O performed by the join operators — through the BufferPool or
/// directly (external sort passes, spill files) — funnels through
/// `ReadPage`/`WritePage` here, so `stats()` is the single source of truth
/// for every I/O figure the benchmarks report.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(DiskModel model = DiskModel());

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  /// Creates a file with `initial_pages` pages. Files occupy disjoint
  /// physical regions; a file may grow later via `Append`.
  /// Returns the new file's id.
  uint32_t CreateFile(std::string_view name, uint32_t initial_pages = 0);

  /// Number of files created.
  size_t NumFiles() const { return files_.size(); }

  /// File metadata; `file` must be a valid id.
  const PageFile& file(uint32_t file) const { return files_[file]; }

  /// Grows `file` by `pages` pages (they are physically contiguous with the
  /// file's existing pages). Returns the index of the first new page.
  Result<uint32_t> Append(uint32_t file, uint32_t pages = 1);

  /// Simulates reading one page: charges one transfer, plus a seek if the
  /// page is not physically adjacent to the previous access.
  Status ReadPage(PageId pid);

  /// Simulates reading `count` physically consecutive pages starting at
  /// `pid` (one seek at most, `count` transfers).
  Status ReadRun(PageId pid, uint32_t count);

  /// Simulates writing one page (same adjacency rule as reads). The page
  /// must already exist (use Append to grow the file first).
  Status WritePage(PageId pid);

  /// Simulates a full sequential scan of a file (one seek + N transfers).
  Status ScanFile(uint32_t file);

  /// Cumulative I/O counters.
  const IoStats& stats() const { return stats_; }
  IoStats& mutable_stats() { return stats_; }

  /// The disk cost model in force.
  const DiskModel& model() const { return model_; }

  /// Modeled elapsed I/O seconds so far.
  double ModeledSeconds() const { return stats_.ModeledSeconds(model_); }

  /// Resets counters (not file layout). Used between benchmark phases that
  /// share a dataset.
  void ResetStats() { stats_.Reset(); }

 private:
  Status CheckPage(PageId pid) const;
  void Access(uint64_t physical, uint32_t run_len, bool is_write);

  DiskModel model_;
  std::vector<PageFile> files_;
  IoStats stats_;

  /// Physical region granularity between files. Regions never overlap as
  /// long as no file exceeds this page count.
  static constexpr uint64_t kFileRegionPages = uint64_t(1) << 32;

  /// Physical address the head would reach next with no seek; ~0 initially
  /// (first access always seeks).
  uint64_t next_sequential_ = ~uint64_t(0);
};

}  // namespace pmjoin

#endif  // PMJOIN_IO_SIMULATED_DISK_H_
