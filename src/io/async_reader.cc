#include "io/async_reader.h"

#include <thread>
#include <utility>

namespace pmjoin {

AsyncReader::AsyncReader(StorageBackend* backend, uint32_t num_threads,
                         size_t queue_capacity)
    : backend_(backend),
      num_threads_(num_threads == 0 ? 1 : num_threads),
      capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      pool_(num_threads_) {
  for (uint32_t i = 0; i < num_threads_; ++i) {
    pool_.Submit([this] { ReaderLoop(); });
  }
}

AsyncReader::~AsyncReader() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
  }
  cv_ready_.NotifyAll();
  cv_space_.NotifyAll();
  // pool_'s destructor joins the reader threads; queued runs that no
  // thread reached stay pending in the backend's staging table.
}

size_t AsyncReader::SubmitBatch(std::span<const PageRun> runs) {
  std::vector<PageRun> accepted;
  accepted.reserve(runs.size());
  for (const PageRun& run : runs) {
    if (run.length == 0) continue;
    if (backend_->BeginStage(run.start, run.length)) accepted.push_back(run);
  }
  if (accepted.empty()) return 0;
  const size_t count = accepted.size();
  {
    MutexLock lock(&mu_);
    while (queue_.size() >= capacity_ && !closed_) cv_space_.Wait(&mu_);
    // On shutdown the registered runs stay pending in the staging table;
    // DropStaged (or a synchronous ReadPages) reclaims them.
    if (closed_) return 0;
    queue_.push_back(std::move(accepted));
  }
  cv_ready_.NotifyOne();
  // Give the woken reader a scheduling slot before racing it to the next
  // consume. On a loaded (or single-CPU) machine the wake alone does not
  // preempt the coordinator, which then reaches ReadPages while the run
  // is still pending and claims it back synchronously — losing exactly
  // the overlap the submission was for. One yield is a few hundred
  // nanoseconds; a claimed-back run is a full synchronous read.
  std::this_thread::yield();
  return count;
}

bool AsyncReader::Submit(const PageRun& run) {
  return SubmitBatch({&run, 1}) == 1;
}

void AsyncReader::ReaderLoop() {
  for (;;) {
    std::vector<PageRun> batch;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !closed_) cv_ready_.Wait(&mu_);
      if (closed_) return;
      batch = std::move(queue_.front());
      queue_.pop_front();
      cv_space_.NotifyOne();
    }
    // Mutex released: the physical reads (and their metric mirrors)
    // never run under the queue lock.
    for (const PageRun& run : batch) {
      backend_->PerformStage(run.start, run.length);
    }
  }
}

}  // namespace pmjoin
