#include "io/storage_backend.h"

#include <algorithm>

namespace pmjoin {

StorageBackend::StorageBackend(DiskModel model, uint32_t page_size_bytes)
    : model_(model), page_size_bytes_(page_size_bytes) {}

StorageBackend::~StorageBackend() = default;

uint32_t StorageBackend::RegisterFile(std::string_view name,
                                      uint32_t num_pages) {
  PageFile f;
  f.id = static_cast<uint32_t>(files_.size());
  f.name = std::string(name);
  f.num_pages = num_pages;
  f.base_offset = uint64_t(f.id) * kFileRegionPages;
  files_.push_back(std::move(f));
  return files_.back().id;
}

uint32_t StorageBackend::CreateFile(std::string_view name,
                                    uint32_t initial_pages) {
  const uint32_t id = RegisterFile(name, initial_pages);
  DoCreateFile(id, name, initial_pages);
  return id;
}

uint32_t StorageBackend::RegisterRestoredFile(std::string_view name,
                                              uint32_t num_pages) {
  return RegisterFile(name, num_pages);
}

Result<uint32_t> StorageBackend::FindFile(std::string_view name) const {
  for (size_t i = files_.size(); i > 0; --i) {
    if (files_[i - 1].name == name)
      return static_cast<uint32_t>(i - 1);
  }
  return Status::NotFound("FindFile: no file named '" + std::string(name) +
                          "'");
}

Result<uint32_t> StorageBackend::AllocatePages(uint32_t file,
                                               uint32_t pages) {
  if (file >= files_.size())
    return Status::InvalidArgument("AllocatePages: bad file id");
  PageFile& f = files_[file];
  const uint32_t first = f.num_pages;
  if (uint64_t(f.num_pages) + pages > kFileRegionPages)
    return Status::OutOfRange("AllocatePages: file region exhausted");
  PMJOIN_RETURN_IF_ERROR(DoAllocatePages(file, first, pages));
  f.num_pages += pages;
  return first;
}

Status StorageBackend::CheckPage(PageId pid) const {
  if (pid.file >= files_.size())
    return Status::InvalidArgument("bad file id");
  if (pid.page >= files_[pid.file].num_pages)
    return Status::OutOfRange("page index out of bounds");
  return Status::OK();
}

void StorageBackend::Access(uint64_t physical, uint32_t run_len,
                            bool is_write) {
  if (physical != next_sequential_) {
    ++stats_.seeks;
  } else if (!is_write) {
    ++stats_.sequential_reads;
    // Count the remaining pages of the run as sequential too.
    stats_.sequential_reads += run_len - 1;
  }
  if (is_write) {
    stats_.pages_written += run_len;
  } else {
    stats_.pages_read += run_len;
    if (physical != next_sequential_ && run_len > 1) {
      // After the seek, the tail of the run streams sequentially.
      stats_.sequential_reads += run_len - 1;
    }
  }
  next_sequential_ = physical + run_len;
}

Status StorageBackend::ReadPage(PageId pid) {
  PMJOIN_RETURN_IF_ERROR(CheckPage(pid));
  PMJOIN_RETURN_IF_ERROR(DoReadPages(pid, 1, /*payload_out=*/nullptr));
  Access(files_[pid.file].PhysicalOffset(pid.page), 1, /*is_write=*/false);
  return Status::OK();
}

Status StorageBackend::ReadPages(PageId pid, uint32_t count) {
  if (count == 0) return Status::OK();
  PMJOIN_RETURN_IF_ERROR(CheckPage(pid));
  PMJOIN_RETURN_IF_ERROR(CheckPage({pid.file, pid.page + count - 1}));
  PMJOIN_RETURN_IF_ERROR(DoReadPages(pid, count, /*payload_out=*/nullptr));
  Access(files_[pid.file].PhysicalOffset(pid.page), count,
         /*is_write=*/false);
  return Status::OK();
}

Status StorageBackend::WritePage(PageId pid) {
  PMJOIN_RETURN_IF_ERROR(CheckPage(pid));
  PMJOIN_RETURN_IF_ERROR(DoWritePage(pid, /*payload=*/nullptr, 0));
  Access(files_[pid.file].PhysicalOffset(pid.page), 1, /*is_write=*/true);
  return Status::OK();
}

Status StorageBackend::WritePagePayload(PageId pid,
                                        std::span<const uint8_t> payload) {
  PMJOIN_RETURN_IF_ERROR(CheckPage(pid));
  if (payload.size() > page_size_bytes_)
    return Status::InvalidArgument("WritePagePayload: payload exceeds page");
  PMJOIN_RETURN_IF_ERROR(DoWritePage(
      pid, payload.data(), static_cast<uint32_t>(payload.size())));
  Access(files_[pid.file].PhysicalOffset(pid.page), 1, /*is_write=*/true);
  return Status::OK();
}

Status StorageBackend::ReadPagePayload(PageId pid, std::span<uint8_t> out) {
  PMJOIN_RETURN_IF_ERROR(CheckPage(pid));
  if (out.size() != page_size_bytes_)
    return Status::InvalidArgument(
        "ReadPagePayload: buffer must be exactly one page");
  PMJOIN_RETURN_IF_ERROR(DoReadPages(pid, 1, out.data()));
  Access(files_[pid.file].PhysicalOffset(pid.page), 1, /*is_write=*/false);
  return Status::OK();
}

Status StorageBackend::ScanFile(uint32_t file) {
  if (file >= files_.size())
    return Status::InvalidArgument("ScanFile: bad file id");
  const PageFile& f = files_[file];
  if (f.num_pages == 0) return Status::OK();
  return ReadPages({file, 0}, f.num_pages);
}

Status StorageBackend::Sync() { return DoSync(); }

Result<uint32_t> WriteBlobFile(StorageBackend* backend, std::string_view name,
                               std::span<const uint8_t> blob) {
  const uint32_t page_size = backend->page_size_bytes();
  const uint32_t pages = static_cast<uint32_t>(
      (blob.size() + page_size - 1) / page_size);
  const uint32_t file = backend->CreateFile(name, pages);
  for (uint32_t p = 0; p < pages; ++p) {
    const size_t off = size_t(p) * page_size;
    const size_t len = std::min<size_t>(page_size, blob.size() - off);
    PMJOIN_RETURN_IF_ERROR(
        backend->WritePagePayload({file, p}, blob.subspan(off, len)));
  }
  return file;
}

Result<std::vector<uint8_t>> ReadFileBlob(StorageBackend* backend,
                                          uint32_t file) {
  if (file >= backend->NumFiles())
    return Status::InvalidArgument("ReadFileBlob: bad file id");
  const uint32_t page_size = backend->page_size_bytes();
  const uint32_t pages = backend->num_pages(file);
  std::vector<uint8_t> blob(size_t(pages) * page_size);
  for (uint32_t p = 0; p < pages; ++p) {
    PMJOIN_RETURN_IF_ERROR(backend->ReadPagePayload(
        {file, p},
        std::span<uint8_t>(blob.data() + size_t(p) * page_size, page_size)));
  }
  return blob;
}

}  // namespace pmjoin
