#include "server/artifact_cache.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "core/plane_sweep.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace pmjoin {
namespace server {

namespace {

/// Matrix memo key: dataset keys + predicate + build knobs. eps is
/// rendered with %.17g so distinct doubles get distinct keys (a
/// round-trip-exact encoding), and equal doubles always collide.
std::string MatrixKey(const std::string& r_key, const std::string& s_key,
                      double eps, Norm norm, bool hierarchical,
                      uint32_t filter_iterations) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "|%.17g|", eps);
  return r_key + "|" + s_key + buf + NormName(norm) +
         (hierarchical ? "|hier|" : "|flat|") +
         std::to_string(filter_iterations);
}

/// kNN candidate-matrix memo key: dataset keys + norm only — the
/// structure holds ε-free MINDIST lower bounds, so neither eps nor k
/// belongs in the key.
std::string KnnMatrixKey(const std::string& r_key, const std::string& s_key,
                         Norm norm) {
  return r_key + "|" + s_key + "|knn|" + NormName(norm);
}

}  // namespace

ArtifactCache::ArtifactCache(StorageBackend* disk, Options options)
    : disk_(disk), options_(options) {}

Result<const VectorDataset*> ArtifactCache::GetDataset(
    const DatasetSpec& spec) {
  MutexLock lock(&mu_);
  return GetDatasetLocked(spec);
}

Result<const VectorDataset*> ArtifactCache::GetDatasetLocked(
    const DatasetSpec& spec) {
  const std::string key = spec.Canonical();
  auto it = datasets_.find(key);
  if (it != datasets_.end()) {
    ++stats_.dataset_hits;
    PMJOIN_METRIC_COUNT("server.cache.dataset_hits", 1);
    return static_cast<const VectorDataset*>(it->second.get());
  }

  PMJOIN_SPAN("artifact_dataset");
  // A persisted copy (this process with persist_datasets on, or a prior
  // one over the same file backend) restores bit-identically; NotFound
  // means we are the first and must build.
  Result<VectorDataset> opened = VectorDataset::Open(disk_, key);
  if (opened.ok()) {
    ++stats_.dataset_opens;
    PMJOIN_METRIC_COUNT("server.cache.dataset_opens", 1);
    auto owned =
        std::make_unique<VectorDataset>(std::move(opened).value());
    const VectorDataset* raw = owned.get();
    datasets_.emplace(key, std::move(owned));
    return raw;
  }
  if (!opened.status().IsNotFound()) return opened.status();

  VectorDataset::Options build_options;
  build_options.page_size_bytes = options_.page_size_bytes;
  Result<VectorDataset> built =
      VectorDataset::Build(disk_, key, spec.Generate(), build_options);
  if (!built.ok()) return built.status();
  if (options_.persist_datasets) {
    Status st = built.value().Persist(disk_);
    if (!st.ok()) return st;
  }
  ++stats_.dataset_builds;
  PMJOIN_METRIC_COUNT("server.cache.dataset_builds", 1);
  auto owned = std::make_unique<VectorDataset>(std::move(built).value());
  const VectorDataset* raw = owned.get();
  datasets_.emplace(key, std::move(owned));
  return raw;
}

Result<const ArtifactCache::CachedMatrix*> ArtifactCache::GetMatrix(
    const DatasetSpec& r, const DatasetSpec& s, double eps, Norm norm,
    bool* hit) {
  MutexLock lock(&mu_);
  const std::string key =
      MatrixKey(r.Canonical(), s.Canonical(), eps, norm,
                options_.hierarchical_matrix, options_.filter_iterations);
  auto it = matrices_.find(key);
  if (it != matrices_.end()) {
    *hit = true;
    ++stats_.matrix_hits;
    PMJOIN_METRIC_COUNT("server.cache.matrix_hits", 1);
    return static_cast<const CachedMatrix*>(it->second.get());
  }
  *hit = false;

  Result<const VectorDataset*> rd = GetDatasetLocked(r);
  if (!rd.ok()) return rd.status();
  Result<const VectorDataset*> sd = GetDatasetLocked(s);
  if (!sd.ok()) return sd.status();

  PMJOIN_SPAN("artifact_matrix");
  // The build charges its OpCounters into the cached entry; the driver
  // replays them per consuming query (JoinResources::matrix_build_ops),
  // so the counters end up identical to a standalone run whether this
  // entry is cold or warm.
  OpCounters build_ops;
  PredictionMatrix matrix =
      options_.hierarchical_matrix
          ? BuildPredictionMatrixHierarchical(
                (*rd)->tree(), (*sd)->tree(), (*rd)->num_pages(),
                (*sd)->num_pages(), eps, norm,
                options_.filter_iterations, &build_ops)
          : BuildPredictionMatrixFlat((*rd)->page_mbrs(),
                                      (*sd)->page_mbrs(), eps, norm,
                                      &build_ops);
  auto cached = std::make_unique<CachedMatrix>(
      CachedMatrix{std::move(matrix), build_ops});
  ++stats_.matrix_builds;
  PMJOIN_METRIC_COUNT("server.cache.matrix_builds", 1);
  const CachedMatrix* raw = cached.get();
  matrices_.emplace(key, std::move(cached));
  return raw;
}

Result<const ArtifactCache::CachedKnnMatrix*> ArtifactCache::GetKnnMatrix(
    const DatasetSpec& r, const DatasetSpec& s, Norm norm, bool* hit) {
  MutexLock lock(&mu_);
  const std::string key = KnnMatrixKey(r.Canonical(), s.Canonical(), norm);
  auto it = knn_matrices_.find(key);
  if (it != knn_matrices_.end()) {
    *hit = true;
    ++stats_.knn_matrix_hits;
    PMJOIN_METRIC_COUNT("server.cache.knn_matrix_hits", 1);
    return static_cast<const CachedKnnMatrix*>(it->second.get());
  }
  *hit = false;

  Result<const VectorDataset*> rd = GetDatasetLocked(r);
  if (!rd.ok()) return rd.status();
  Result<const VectorDataset*> sd = GetDatasetLocked(s);
  if (!sd.ok()) return sd.status();

  PMJOIN_SPAN("artifact_knn_matrix");
  OpCounters build_ops;
  KnnCandidateMatrix matrix = KnnCandidateMatrix::Build(
      (*rd)->page_mbrs(), (*sd)->page_mbrs(), norm, &build_ops);
  auto cached = std::make_unique<CachedKnnMatrix>(
      CachedKnnMatrix{std::move(matrix), build_ops});
  ++stats_.knn_matrix_builds;
  PMJOIN_METRIC_COUNT("server.cache.knn_matrix_builds", 1);
  const CachedKnnMatrix* raw = cached.get();
  knn_matrices_.emplace(key, std::move(cached));
  return raw;
}

}  // namespace server
}  // namespace pmjoin
