#ifndef PMJOIN_SERVER_ARTIFACT_CACHE_H_
#define PMJOIN_SERVER_ARTIFACT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/op_counters.h"
#include "common/result.h"
#include "common/sync.h"
#include "core/knn_join.h"
#include "core/prediction_matrix.h"
#include "data/vector_dataset.h"
#include "geom/distance.h"
#include "io/storage_backend.h"
#include "server/job.h"

namespace pmjoin {
namespace server {

/// Per-dataset artifacts shared across the queries of one server process:
/// the datasets themselves (pages + page MBRs + R*-tree) and the
/// prediction matrices derived from dataset pairs.
///
/// Keys are pure functions of the inputs, so cached artifacts are
/// bit-identical to freshly built ones and reuse can never change a
/// query's results:
///
///   - datasets: DatasetSpec::Canonical() — the generators are
///     deterministic in (kind, n, seed, dims), and VectorDataset::Open
///     restores a persisted build bit-identically (PR 5).
///   - matrices: (r key, s key, eps, norm) plus the build knobs
///     (hierarchical, filter iterations). Everything Theorem 1 reads.
///   - kNN candidate matrices: (r key, s key, norm) only — the structure
///     is ε- and k-free (sorted MINDIST lower bounds per page pair), so
///     one cached build serves every k over the same dataset pair.
///
/// Invalidation: never — every key pins immutable content, so entries
/// stay valid for the process lifetime (restarting the server is the only
/// eviction; a persistent backend then turns rebuilds into Opens).
///
/// Thread-safe: one mutex (rank lock_rank::kArtifactCache) guards the
/// memo maps and stats. The server's single worker is the only builder
/// today, but stats() may race it from reporting threads, and the
/// sharded-execution roadmap item will add concurrent readers — the lock
/// is held across builds by design so a second requester of the same key
/// waits for the first build instead of duplicating it.
class ArtifactCache {
 public:
  struct Options {
    uint32_t page_size_bytes = 4096;
    /// Persist freshly built datasets to the backend (Persist()), so a
    /// later server process over the same file backend Opens them
    /// instead of regenerating.
    bool persist_datasets = false;
    /// Matrix-build knobs; part of the matrix cache key by fiat (the
    /// server fixes them process-wide).
    bool hierarchical_matrix = true;
    uint32_t filter_iterations = 5;
  };

  ArtifactCache(StorageBackend* disk, Options options);

  /// The dataset for `spec`, from (in order): the in-memory map, a
  /// persisted copy on the backend (`Open`), or a fresh generate + Build
  /// (persisted when Options::persist_datasets). The pointer is stable
  /// for the cache's lifetime — two specs with equal canonical forms
  /// return the *same* object, which is how a self-join (`&r == &s`)
  /// reaches the driver.
  Result<const VectorDataset*> GetDataset(const DatasetSpec& spec)
      PMJOIN_EXCLUDES(mu_);

  /// A memoized matrix plus the OpCounters its build charged; the driver
  /// replays those on reuse so a cache hit reports the same modeled CPU
  /// cost as a cold build (JoinResources::matrix_build_ops).
  struct CachedMatrix {
    PredictionMatrix matrix;
    OpCounters build_ops;
  };

  /// The prediction matrix for (r, s, eps, norm), building and memoizing
  /// it on first use. Both datasets must already be cached (GetDataset).
  /// `*hit` reports whether this call was served from memory.
  Result<const CachedMatrix*> GetMatrix(const DatasetSpec& r,
                                        const DatasetSpec& s, double eps,
                                        Norm norm, bool* hit)
      PMJOIN_EXCLUDES(mu_);

  /// A memoized kNN candidate matrix plus its build OpCounters, replayed
  /// on reuse (JoinResources::knn_matrix_build_ops) just like
  /// CachedMatrix::build_ops.
  struct CachedKnnMatrix {
    KnnCandidateMatrix matrix;
    OpCounters build_ops;
  };

  /// The kNN candidate matrix for (r, s, norm), building and memoizing
  /// it on first use. Keyed without eps or k, so every kNN query over
  /// the same dataset pair and norm hits the same entry. `*hit` reports
  /// whether this call was served from memory.
  Result<const CachedKnnMatrix*> GetKnnMatrix(const DatasetSpec& r,
                                              const DatasetSpec& s,
                                              Norm norm, bool* hit)
      PMJOIN_EXCLUDES(mu_);

  /// Monotonic since construction; "hit" = served from memory, "open" =
  /// restored from the backend, "build" = generated from scratch.
  struct Stats {
    uint64_t dataset_hits = 0;
    uint64_t dataset_opens = 0;
    uint64_t dataset_builds = 0;
    uint64_t matrix_hits = 0;
    uint64_t matrix_builds = 0;
    uint64_t knn_matrix_hits = 0;
    uint64_t knn_matrix_builds = 0;
  };
  Stats stats() const PMJOIN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  /// GetDataset body, for callers (GetMatrix) already holding the lock.
  Result<const VectorDataset*> GetDatasetLocked(const DatasetSpec& spec)
      PMJOIN_REQUIRES(mu_);

  StorageBackend* disk_;
  Options options_;
  mutable Mutex mu_{lock_rank::kArtifactCache, "ArtifactCache::mu_"};
  Stats stats_ PMJOIN_GUARDED_BY(mu_);
  /// unique_ptr values: GetDataset hands out stable pointers.
  std::map<std::string, std::unique_ptr<VectorDataset>> datasets_
      PMJOIN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<CachedMatrix>> matrices_
      PMJOIN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<CachedKnnMatrix>> knn_matrices_
      PMJOIN_GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace pmjoin

#endif  // PMJOIN_SERVER_ARTIFACT_CACHE_H_
