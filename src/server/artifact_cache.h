#ifndef PMJOIN_SERVER_ARTIFACT_CACHE_H_
#define PMJOIN_SERVER_ARTIFACT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/op_counters.h"
#include "common/result.h"
#include "core/prediction_matrix.h"
#include "data/vector_dataset.h"
#include "geom/distance.h"
#include "io/storage_backend.h"
#include "server/job.h"

namespace pmjoin {
namespace server {

/// Per-dataset artifacts shared across the queries of one server process:
/// the datasets themselves (pages + page MBRs + R*-tree) and the
/// prediction matrices derived from dataset pairs.
///
/// Keys are pure functions of the inputs, so cached artifacts are
/// bit-identical to freshly built ones and reuse can never change a
/// query's results:
///
///   - datasets: DatasetSpec::Canonical() — the generators are
///     deterministic in (kind, n, seed, dims), and VectorDataset::Open
///     restores a persisted build bit-identically (PR 5).
///   - matrices: (r key, s key, eps, norm) plus the build knobs
///     (hierarchical, filter iterations). Everything Theorem 1 reads.
///
/// Invalidation: never — every key pins immutable content, so entries
/// stay valid for the process lifetime (restarting the server is the only
/// eviction; a persistent backend then turns rebuilds into Opens). Not
/// thread-safe: the server's single worker thread is the only caller.
class ArtifactCache {
 public:
  struct Options {
    uint32_t page_size_bytes = 4096;
    /// Persist freshly built datasets to the backend (Persist()), so a
    /// later server process over the same file backend Opens them
    /// instead of regenerating.
    bool persist_datasets = false;
    /// Matrix-build knobs; part of the matrix cache key by fiat (the
    /// server fixes them process-wide).
    bool hierarchical_matrix = true;
    uint32_t filter_iterations = 5;
  };

  ArtifactCache(StorageBackend* disk, Options options);

  /// The dataset for `spec`, from (in order): the in-memory map, a
  /// persisted copy on the backend (`Open`), or a fresh generate + Build
  /// (persisted when Options::persist_datasets). The pointer is stable
  /// for the cache's lifetime — two specs with equal canonical forms
  /// return the *same* object, which is how a self-join (`&r == &s`)
  /// reaches the driver.
  Result<const VectorDataset*> GetDataset(const DatasetSpec& spec);

  /// A memoized matrix plus the OpCounters its build charged; the driver
  /// replays those on reuse so a cache hit reports the same modeled CPU
  /// cost as a cold build (JoinResources::matrix_build_ops).
  struct CachedMatrix {
    PredictionMatrix matrix;
    OpCounters build_ops;
  };

  /// The prediction matrix for (r, s, eps, norm), building and memoizing
  /// it on first use. Both datasets must already be cached (GetDataset).
  /// `*hit` reports whether this call was served from memory.
  Result<const CachedMatrix*> GetMatrix(const DatasetSpec& r,
                                        const DatasetSpec& s, double eps,
                                        Norm norm, bool* hit);

  /// Monotonic since construction; "hit" = served from memory, "open" =
  /// restored from the backend, "build" = generated from scratch.
  struct Stats {
    uint64_t dataset_hits = 0;
    uint64_t dataset_opens = 0;
    uint64_t dataset_builds = 0;
    uint64_t matrix_hits = 0;
    uint64_t matrix_builds = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  StorageBackend* disk_;
  Options options_;
  Stats stats_;
  /// unique_ptr values: GetDataset hands out stable pointers.
  std::map<std::string, std::unique_ptr<VectorDataset>> datasets_;
  std::map<std::string, std::unique_ptr<CachedMatrix>> matrices_;
};

}  // namespace server
}  // namespace pmjoin

#endif  // PMJOIN_SERVER_ARTIFACT_CACHE_H_
