#ifndef PMJOIN_SERVER_JOB_H_
#define PMJOIN_SERVER_JOB_H_

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/join_driver.h"

namespace pmjoin {
namespace server {

/// A dataset reference in a job line: `<gen>/<n>/<seed>[/<dims>]`, e.g.
/// "road/2000/7" or "uniform/1000/3/8". The spec fully determines the
/// dataset (the generators are deterministic in their arguments), so its
/// canonical form doubles as the artifact-cache key and the storage
/// backend file name.
///
/// Generators: `road` (2-d road-network points; dims fixed at 2),
/// `clusters` (correlated Gaussian clusters), `uniform` (uniform
/// hypercube). `clusters` and `uniform` default to 8 dimensions when the
/// fourth segment is omitted.
struct DatasetSpec {
  enum class Kind { kRoad, kClusters, kUniform };

  Kind kind = Kind::kRoad;
  uint64_t n = 0;
  uint64_t seed = 0;
  uint32_t dims = 2;

  /// Parses the `<gen>/<n>/<seed>[/<dims>]` grammar. Fails with
  /// InvalidArgument naming the offending segment.
  static Result<DatasetSpec> Parse(const std::string& text);

  /// Normalized key, also a legal backend file name (no '/'):
  /// "road-2000-7", "uniform-1000-3-d8". Two specs denote the same
  /// dataset iff their canonical forms match.
  std::string Canonical() const;

  /// Materializes the spec's records (deterministic in the spec).
  VectorData Generate() const;
};

/// One parsed `submit` line. Unset optional knobs are 0 and resolved to
/// the server defaults at admission.
struct JobSpec {
  /// Client-chosen query id; the server assigns "q<seq>" when empty.
  std::string id;
  std::string r;  ///< DatasetSpec text for the outer input.
  std::string s;  ///< DatasetSpec text for the inner input.
  double eps = 0.0;
  Algorithm engine = Algorithm::kSc;
  uint32_t buffer_pages = 0;  ///< 0 = server default.
  uint32_t num_threads = 0;   ///< 0 = server default.
  uint32_t io_threads = 0;    ///< 0 = server default (which may be 0 = sync).
  /// 0 = ε-join (eps required); >= 1 = kNN join with this k (eps and
  /// engine must be absent — the kNN engine is its own query type).
  uint32_t k = 0;
  /// Modeled shards; 0 = server default, 1 = single-node. Clamped to the
  /// admission controller's max_shards.
  uint32_t shards = 0;
};

/// Parses an engine token ("nlj", "pm-nlj", "rand-sc", "sc", "cc";
/// case-insensitive). Only the matrix family is served — the competitor
/// algorithms (ego/bfrj/pbsm) build private per-run structures that defeat
/// the server's artifact sharing, so they are rejected here.
Result<Algorithm> ParseEngine(const std::string& text);

/// Lowercase job-file token for `algorithm` (inverse of ParseEngine).
std::string EngineToken(Algorithm algorithm);

/// Parses one newline-delimited-JSON job line:
///
///   {"cmd": "submit", "r": "road/2000/7", "s": "road/2000/8",
///    "eps": 0.01, "engine": "sc"}
///
/// Recognized keys: cmd (optional, must be "submit"), id, r, s, eps,
/// engine, buffer_pages, threads, io_threads, k, shards. `r` and `s` are
/// always
/// required; exactly one of `eps` (ε-join) or `k` (kNN join) must be
/// present, and `engine` only applies to ε-joins. Unknown keys are
/// rejected by name — a typo must not run the wrong query shape.
/// Returns nullopt for blank lines and `#` comments. The JSON subset is
/// flat (scalar values only) — see docs/SERVER.md for the grammar.
Result<std::optional<JobSpec>> ParseJobLine(const std::string& line);

/// Parses a whole job stream, one line at a time, skipping blanks and
/// comments. Fails on the first malformed line, naming its line number.
Result<std::vector<JobSpec>> ParseJobStream(std::istream& in);

}  // namespace server
}  // namespace pmjoin

#endif  // PMJOIN_SERVER_JOB_H_
