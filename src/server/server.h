#ifndef PMJOIN_SERVER_SERVER_H_
#define PMJOIN_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/join_driver.h"
#include "geom/distance.h"
#include "io/buffer_pool.h"
#include "io/storage_backend.h"
#include "server/admission.h"
#include "server/artifact_cache.h"
#include "server/job.h"
#include "server/server_report.h"

namespace pmjoin {
namespace server {

/// Long-lived join server over one storage backend, serving both ε-joins
/// and kNN joins (JobSpec::k) from the same queue and artifact cache.
///
/// Topology: N submitter threads → AdmissionController → bounded
/// QueryQueue → one worker thread → JoinDriver. Concurrency lives at the
/// submission edge; execution is deliberately serial — each query may
/// still parallelize internally via JoinOptions::num_threads, and serial
/// execution is what keeps the shared buffer pool, the artifact cache,
/// and the per-query obs sessions (which are single-session by design)
/// exact: every query's results and counters are byte-identical to a
/// standalone run of the same job, warm or cold (see
/// tests/server/server_concordance_test.cc).
///
/// What the server shares across queries:
///   - one BufferPool (Options::pool_pages): residency left by a query
///     turns the next query's reads of the same pages into buffer hits;
///   - one ArtifactCache: datasets (generate/Build once, or Open a copy
///     persisted by a prior process), memoized prediction matrices keyed
///     by (dataset pair, eps, norm), and memoized kNN candidate matrices
///     keyed by (dataset pair, norm) — shared by every k.
///
/// Observability: each executed query runs inside its own Tracer session
/// and emits a standard obs::RunReport (written to
/// Options::query_report_dir when set); the server folds every query
/// into a ServerReport whose ledger — Σ queries[].io + unattributed_io ==
/// io_totals — is exact because execution is serial on one disk.
class JoinServer {
 public:
  struct Options {
    /// Shared buffer pool capacity in pages. Must be >= the largest
    /// per-query buffer_pages (admission enforces it per job).
    uint32_t pool_pages = 256;
    /// Per-query buffer budget B when the job does not set one. Smaller
    /// than pool_pages by design: the paper's algorithms size clusters
    /// to B, and the headroom is what lets residency survive between
    /// queries.
    uint32_t default_buffer_pages = 100;
    uint32_t default_threads = 1;
    uint32_t max_threads = 64;
    /// JoinOptions::io_threads when the job does not set one (async read
    /// pipeline; 0 = synchronous reads, the meaningful default on the
    /// simulated backend, which has no physical reads to overlap).
    uint32_t default_io_threads = 0;
    uint32_t max_io_threads = 16;
    /// JoinOptions::shards when the job does not set one (modeled shard
    /// count of core/shard_coordinator.h; 1 = single-node). Sharding
    /// never changes pairs or totals, so defaulting it on is safe — it
    /// only adds the per-shard report section and its planning cost.
    uint32_t default_shards = 1;
    uint32_t max_shards = 64;
    size_t max_queue_depth = 64;
    uint32_t page_size_bytes = 4096;
    Norm norm = Norm::kL2;
    /// JoinOptions::seed for rand-sc / cc (must match a standalone run
    /// for concordance).
    uint64_t seed = 1;
    bool hierarchical_matrix = true;
    uint32_t filter_iterations = 5;
    /// Persist built datasets so a later process over the same file
    /// backend reopens instead of regenerating.
    bool persist_datasets = false;
    /// When non-empty, each query's obs::RunReport is written to
    /// `<dir>/<query id>.json`.
    std::string query_report_dir;
  };

  /// Result of one submitted query, readable once `done`.
  struct QueryResult {
    QueryRow row;       ///< The server-report row (status, io, ops, ...).
    JoinReport report;  ///< Valid when row.executed.
    /// Sorted deduplicated (r id, s id) result pairs.
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    bool done = false;
  };

  /// `disk` must outlive the server and must not be used by anything
  /// else between Start and Shutdown (the I/O ledger attributes every
  /// page moved on it to this server).
  JoinServer(StorageBackend* disk, Options options);
  ~JoinServer();

  JoinServer(const JoinServer&) = delete;
  JoinServer& operator=(const JoinServer&) = delete;

  /// Spawns the worker. Call once.
  Status Start();

  /// Admits and enqueues `job`, returning its query index. Admission
  /// failures and a full queue reject synchronously (BufferFull for the
  /// latter); rejected jobs still get an index and a "rejected" result
  /// row. Thread-safe.
  Result<uint64_t> Submit(const JobSpec& job) PMJOIN_EXCLUDES(mu_);

  /// Like Submit, but blocks for queue space instead of rejecting
  /// (producer backpressure).
  Result<uint64_t> SubmitBlocking(const JobSpec& job) PMJOIN_EXCLUDES(mu_);

  /// Blocks until query `index` completes; the reference stays valid for
  /// the server's lifetime.
  const QueryResult& Wait(uint64_t index) PMJOIN_EXCLUDES(mu_);

  /// Blocks until every submitted query has completed.
  void WaitAll() PMJOIN_EXCLUDES(mu_);

  /// Closes the queue, drains the remaining queries, and joins the
  /// worker. Idempotent; the destructor calls it.
  void Shutdown() PMJOIN_EXCLUDES(mu_);

  /// Aggregate report over everything submitted so far. Call after
  /// WaitAll/Shutdown for a complete picture.
  ServerReport BuildReport() PMJOIN_EXCLUDES(mu_);

  ArtifactCache::Stats cache_stats() const { return cache_.stats(); }
  const Options& options() const { return options_; }

 private:
  /// Worker loop: pops until the queue closes and drains.
  void WorkerLoop();
  /// Executes one admitted query inside its own obs session.
  void Execute(const QueuedQuery& queued) PMJOIN_EXCLUDES(mu_);
  /// Records a terminal state for query `index` and wakes waiters.
  void Finish(uint64_t index, QueryResult result) PMJOIN_EXCLUDES(mu_);
  /// Allocates the next result slot; fills id if empty.
  uint64_t Register(JobSpec* job) PMJOIN_EXCLUDES(mu_);
  /// True when every allocated result slot has completed.
  bool AllDoneLocked() const PMJOIN_REQUIRES(mu_);

  StorageBackend* disk_;
  Options options_;
  AdmissionController admission_;
  QueryQueue queue_;
  ArtifactCache cache_;
  BufferPool pool_;
  JoinDriver driver_;

  mutable Mutex mu_{lock_rank::kServer, "JoinServer::mu_"};
  CondVar done_cv_;
  IoStats server_start_io_ PMJOIN_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<QueryResult>> results_ PMJOIN_GUARDED_BY(mu_);
  ServerReport::AdmissionStats admission_stats_ PMJOIN_GUARDED_BY(mu_);
  bool started_ PMJOIN_GUARDED_BY(mu_) = false;
  bool shut_down_ PMJOIN_GUARDED_BY(mu_) = false;

  std::thread worker_;
};

}  // namespace server
}  // namespace pmjoin

#endif  // PMJOIN_SERVER_SERVER_H_
