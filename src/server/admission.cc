#include "server/admission.h"

#include <utility>

namespace pmjoin {
namespace server {

Status AdmissionController::Admit(JobSpec* job) const {
  Result<DatasetSpec> r = DatasetSpec::Parse(job->r);
  if (!r.ok()) return r.status();
  Result<DatasetSpec> s = DatasetSpec::Parse(job->s);
  if (!s.ok()) return s.status();
  if (r->dims != s->dims)
    return Status::InvalidArgument("dimension mismatch: " + job->r +
                                   " vs " + job->s);
  if (job->eps <= 0.0)
    return Status::InvalidArgument("eps must be > 0");
  switch (job->engine) {
    case Algorithm::kNlj:
    case Algorithm::kPmNlj:
    case Algorithm::kRandomSc:
    case Algorithm::kSc:
    case Algorithm::kCc:
      break;
    default:
      return Status::InvalidArgument(
          "engine not served (matrix family only): " +
          AlgorithmName(job->engine));
  }
  if (job->buffer_pages == 0)
    job->buffer_pages = options_.default_buffer_pages;
  if (job->buffer_pages > options_.pool_pages)
    return Status::InvalidArgument(
        "buffer_pages " + std::to_string(job->buffer_pages) +
        " exceeds the shared pool (" + std::to_string(options_.pool_pages) +
        " pages)");
  if (job->num_threads == 0) job->num_threads = options_.default_threads;
  if (job->num_threads > options_.max_threads)
    return Status::InvalidArgument(
        "threads " + std::to_string(job->num_threads) + " exceeds limit " +
        std::to_string(options_.max_threads));
  return Status::OK();
}

QueryQueue::QueryQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Status QueryQueue::TryPush(QueuedQuery query) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::InvalidArgument("queue closed");
    if (entries_.size() >= capacity_)
      return Status::BufferFull("query queue at capacity (" +
                                std::to_string(capacity_) + ")");
    entries_.push_back(std::move(query));
    if (entries_.size() > max_depth_seen_) max_depth_seen_ = entries_.size();
  }
  not_empty_.notify_one();
  return Status::OK();
}

Status QueryQueue::PushBlocking(QueuedQuery query) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return closed_ || entries_.size() < capacity_;
    });
    if (closed_) return Status::InvalidArgument("queue closed");
    entries_.push_back(std::move(query));
    if (entries_.size() > max_depth_seen_) max_depth_seen_ = entries_.size();
  }
  not_empty_.notify_one();
  return Status::OK();
}

std::optional<QueuedQuery> QueryQueue::Pop() {
  std::optional<QueuedQuery> out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !entries_.empty(); });
    if (entries_.empty()) return out;  // closed and drained
    out = std::move(entries_.front());
    entries_.pop_front();
  }
  not_full_.notify_one();
  return out;
}

void QueryQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

size_t QueryQueue::Depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t QueryQueue::MaxDepthSeen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_depth_seen_;
}

}  // namespace server
}  // namespace pmjoin
