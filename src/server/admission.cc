#include "server/admission.h"

#include <utility>

namespace pmjoin {
namespace server {

Status AdmissionController::Admit(JobSpec* job) const {
  Result<DatasetSpec> r = DatasetSpec::Parse(job->r);
  if (!r.ok()) return r.status();
  Result<DatasetSpec> s = DatasetSpec::Parse(job->s);
  if (!s.ok()) return s.status();
  if (r->dims != s->dims)
    return Status::InvalidArgument("dimension mismatch: " + job->r +
                                   " vs " + job->s);
  if (job->k > 0) {
    // kNN job: the engine field is inert, but a nonzero eps signals a
    // confused submission — reject rather than silently drop it.
    if (job->eps != 0.0)
      return Status::InvalidArgument("kNN jobs take \"k\", not \"eps\"");
  } else {
    if (job->eps <= 0.0)
      return Status::InvalidArgument("eps must be > 0");
    switch (job->engine) {
      case Algorithm::kNlj:
      case Algorithm::kPmNlj:
      case Algorithm::kRandomSc:
      case Algorithm::kSc:
      case Algorithm::kCc:
        break;
      default:
        return Status::InvalidArgument(
            "engine not served (matrix family only): " +
            AlgorithmName(job->engine));
    }
  }
  if (job->buffer_pages == 0)
    job->buffer_pages = options_.default_buffer_pages;
  if (job->buffer_pages > options_.pool_pages)
    return Status::InvalidArgument(
        "buffer_pages " + std::to_string(job->buffer_pages) +
        " exceeds the shared pool (" + std::to_string(options_.pool_pages) +
        " pages)");
  if (job->num_threads == 0) job->num_threads = options_.default_threads;
  if (job->num_threads > options_.max_threads)
    return Status::InvalidArgument(
        "threads " + std::to_string(job->num_threads) + " exceeds limit " +
        std::to_string(options_.max_threads));
  if (job->io_threads == 0) job->io_threads = options_.default_io_threads;
  if (job->io_threads > options_.max_io_threads)
    return Status::InvalidArgument(
        "io_threads " + std::to_string(job->io_threads) + " exceeds limit " +
        std::to_string(options_.max_io_threads));
  if (job->shards == 0) job->shards = options_.default_shards;
  if (job->shards > options_.max_shards)
    return Status::InvalidArgument(
        "shards " + std::to_string(job->shards) + " exceeds limit " +
        std::to_string(options_.max_shards));
  return Status::OK();
}

QueryQueue::QueryQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void QueryQueue::NoteDepthLocked() {
  if (entries_.size() > max_depth_seen_) max_depth_seen_ = entries_.size();
}

Status QueryQueue::TryPush(QueuedQuery query) {
  {
    MutexLock lock(&mu_);
    if (closed_) return Status::InvalidArgument("queue closed");
    if (entries_.size() >= capacity_)
      return Status::BufferFull("query queue at capacity (" +
                                std::to_string(capacity_) + ")");
    entries_.push_back(std::move(query));
    NoteDepthLocked();
  }
  not_empty_.NotifyOne();
  return Status::OK();
}

Status QueryQueue::PushBlocking(QueuedQuery query) {
  {
    MutexLock lock(&mu_);
    while (!closed_ && entries_.size() >= capacity_) not_full_.Wait(&mu_);
    if (closed_) return Status::InvalidArgument("queue closed");
    entries_.push_back(std::move(query));
    NoteDepthLocked();
  }
  not_empty_.NotifyOne();
  return Status::OK();
}

std::optional<QueuedQuery> QueryQueue::Pop() {
  std::optional<QueuedQuery> out;
  {
    MutexLock lock(&mu_);
    while (!closed_ && entries_.empty()) not_empty_.Wait(&mu_);
    if (entries_.empty()) return out;  // closed and drained
    out = std::move(entries_.front());
    entries_.pop_front();
  }
  not_full_.NotifyOne();
  return out;
}

void QueryQueue::Close() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
  }
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
}

size_t QueryQueue::Depth() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

size_t QueryQueue::MaxDepthSeen() const {
  MutexLock lock(&mu_);
  return max_depth_seen_;
}

}  // namespace server
}  // namespace pmjoin
