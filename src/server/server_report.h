#ifndef PMJOIN_SERVER_SERVER_REPORT_H_
#define PMJOIN_SERVER_SERVER_REPORT_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/op_counters.h"
#include "common/status.h"
#include "io/io_stats.h"
#include "obs/run_report.h"

namespace pmjoin {
namespace server {

/// One query's row in the aggregate server report.
struct QueryRow {
  std::string id;
  std::string engine;  ///< Job-file token ("sc", "cc", ..., "knn").
  std::string r;       ///< Canonical dataset key.
  std::string s;
  double eps = 0.0;    ///< 0 for kNN rows.
  uint32_t k = 0;      ///< 0 for ε-join rows; >= 1 for kNN rows.
  std::string status;  ///< "ok" | "rejected" | "failed".
  std::string error;   ///< Status message when not "ok".
  uint64_t result_pairs = 0;
  int64_t queue_ns = 0;  ///< Admission to dequeue.
  int64_t exec_ns = 0;   ///< Dequeue to completion.
  bool matrix_cache_hit = false;
  bool executed = false;  ///< False for rejected jobs: io/ops all-zero.
  /// Full obs-session I/O delta for this query — artifact builds
  /// included. These are the rows the server ledger sums: Σ queries[].io
  /// + unattributed_io == io_totals, field by field.
  IoStats io;
  /// The join's own I/O (JoinReport.io), a subset of `io`; comparable
  /// against a standalone run of the same query.
  IoStats join_io;
  OpCounters ops;
  uint64_t num_clusters = 0;
  /// Per-shard section when the job ran with shards > 1 (same shape as a
  /// run report's "shards": Σ per_shard[].io + unattributed_io ==
  /// join_io, field by field).
  bool has_shards = false;
  obs::ShardSection shards;
};

/// Aggregate report of one server process: per-query rows, server I/O
/// totals with the exact-attribution ledger, an end-to-end latency
/// histogram, and cache/admission statistics. Written as
/// `pmjoin.server_report.v1` JSON — the multi-query sibling of
/// obs::RunReport (tools/server_report_schema.json documents it;
/// tools/validate_report.py checks both schema and ledger).
class ServerReport {
 public:
  static constexpr const char* kSchema = "pmjoin.server_report.v1";
  /// Latency buckets: bucket b counts queries whose end-to-end latency in
  /// microseconds has bit_width b (bucket 0 = sub-microsecond), matching
  /// the obs::Histogram convention.
  static constexpr uint32_t kLatencyBuckets = 65;

  // Context rows appear under "context" in insertion order (same
  // contract as obs::RunReport).
  void SetContext(const std::string& key, const std::string& value);
  void SetContext(const std::string& key, const char* value);
  void SetContext(const std::string& key, int64_t value);
  void SetContext(const std::string& key, uint64_t value);
  void SetContext(const std::string& key, double value);

  /// Appends one query row and folds its end-to-end latency
  /// (queue_ns + exec_ns) into the histogram (executed rows only).
  void AddQuery(QueryRow row);

  /// Server-lifetime I/O totals (disk stats delta since server start).
  /// unattributed_io is derived: totals minus the sum of row io.
  void SetIoTotals(const IoStats& totals);

  struct CacheStats {
    uint64_t dataset_hits = 0;
    uint64_t dataset_opens = 0;
    uint64_t dataset_builds = 0;
    uint64_t matrix_hits = 0;
    uint64_t matrix_builds = 0;
    uint64_t knn_matrix_hits = 0;
    uint64_t knn_matrix_builds = 0;
  };
  void SetCacheStats(const CacheStats& stats) { cache_ = stats; }

  struct AdmissionStats {
    uint64_t submitted = 0;  ///< All submission attempts.
    uint64_t admitted = 0;   ///< Entered the queue.
    uint64_t rejected = 0;   ///< Refused (policy or full queue).
    uint64_t completed = 0;  ///< Executed successfully.
    uint64_t failed = 0;     ///< Admitted but failed during execution.
    uint64_t max_queue_depth = 0;
  };
  void SetAdmissionStats(const AdmissionStats& stats) { admission_ = stats; }

  const std::vector<QueryRow>& queries() const { return queries_; }
  const IoStats& io_totals() const { return io_totals_; }
  IoStats UnattributedIo() const;

  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> context_;  // key, value
  std::vector<QueryRow> queries_;
  IoStats io_totals_;
  std::array<uint64_t, kLatencyBuckets> latency_buckets_ = {};
  CacheStats cache_;
  AdmissionStats admission_;
};

}  // namespace server
}  // namespace pmjoin

#endif  // PMJOIN_SERVER_SERVER_REPORT_H_
