#include "server/job.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <utility>

namespace pmjoin {
namespace server {

namespace {

/// Scalar value of a flat JSON object: the repo carries no JSON
/// dependency and the no-throw rule rules out std::stod-style parsing, so
/// job lines are decoded by this small Status-based recognizer.
struct JsonScalar {
  enum class Type { kString, kNumber, kBool };
  Type type = Type::kString;
  std::string text;   // string value, or raw number/bool token
  double number = 0;  // valid when type == kNumber
};

/// Cursor over one job line.
struct Lexer {
  const std::string& s;
  size_t pos = 0;

  void SkipWs() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0)
      ++pos;
  }
  bool Eat(char c) {
    SkipWs();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

Status LexString(Lexer* lex, std::string* out) {
  if (!lex->Eat('"')) return Status::InvalidArgument("expected '\"'");
  out->clear();
  while (lex->pos < lex->s.size()) {
    char c = lex->s[lex->pos++];
    if (c == '"') return Status::OK();
    if (c == '\\') {
      if (lex->pos >= lex->s.size())
        return Status::InvalidArgument("dangling escape in string");
      c = lex->s[lex->pos++];
      if (c != '"' && c != '\\' && c != '/')
        return Status::InvalidArgument("unsupported escape in string");
    }
    out->push_back(c);
  }
  return Status::InvalidArgument("unterminated string");
}

Status LexScalar(Lexer* lex, JsonScalar* out) {
  lex->SkipWs();
  if (lex->pos >= lex->s.size())
    return Status::InvalidArgument("expected a value");
  const char first = lex->s[lex->pos];
  if (first == '"') {
    out->type = JsonScalar::Type::kString;
    return LexString(lex, &out->text);
  }
  if (first == '{' || first == '[')
    return Status::InvalidArgument(
        "nested values are not part of the job grammar");
  const size_t start = lex->pos;
  while (lex->pos < lex->s.size() && lex->s[lex->pos] != ',' &&
         lex->s[lex->pos] != '}' &&
         std::isspace(static_cast<unsigned char>(lex->s[lex->pos])) == 0)
    ++lex->pos;
  out->text = lex->s.substr(start, lex->pos - start);
  if (out->text == "true" || out->text == "false") {
    out->type = JsonScalar::Type::kBool;
    return Status::OK();
  }
  char* end = nullptr;
  out->number = std::strtod(out->text.c_str(), &end);
  if (end == nullptr || *end != '\0' || out->text.empty())
    return Status::InvalidArgument("malformed value: " + out->text);
  out->type = JsonScalar::Type::kNumber;
  return Status::OK();
}

/// Parses `{"key": scalar, ...}`; duplicate keys are an error.
Status ParseFlatObject(const std::string& line,
                       std::map<std::string, JsonScalar>* out) {
  Lexer lex{line};
  if (!lex.Eat('{')) return Status::InvalidArgument("expected '{'");
  lex.SkipWs();
  if (lex.Eat('}')) {
    lex.SkipWs();
    return lex.pos == line.size()
               ? Status::OK()
               : Status::InvalidArgument("trailing text after object");
  }
  while (true) {
    std::string key;
    Status st = LexString(&lex, &key);
    if (!st.ok()) return st;
    if (!lex.Eat(':'))
      return Status::InvalidArgument("expected ':' after key " + key);
    JsonScalar value;
    st = LexScalar(&lex, &value);
    if (!st.ok()) return st;
    if (!out->emplace(key, std::move(value)).second)
      return Status::InvalidArgument("duplicate key: " + key);
    if (lex.Eat(',')) continue;
    if (lex.Eat('}')) break;
    return Status::InvalidArgument("expected ',' or '}' after value");
  }
  lex.SkipWs();
  if (lex.pos != line.size())
    return Status::InvalidArgument("trailing text after object");
  return Status::OK();
}

std::string Lower(std::string text) {
  for (char& c : text)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

/// Non-negative integer segment of a dataset spec.
Status ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9')
      return Status::InvalidArgument("not a number: " + text);
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10)
      return Status::InvalidArgument("number out of range: " + text);
    value = value * 10 + digit;
  }
  *out = value;
  return Status::OK();
}

}  // namespace

Result<DatasetSpec> DatasetSpec::Parse(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t slash = text.find('/', start);
    parts.push_back(text.substr(start, slash - start));
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  if (parts.size() < 3 || parts.size() > 4)
    return Status::InvalidArgument(
        "dataset spec must be <gen>/<n>/<seed>[/<dims>]: " + text);

  DatasetSpec spec;
  const std::string gen = Lower(parts[0]);
  if (gen == "road") {
    spec.kind = Kind::kRoad;
    spec.dims = 2;
  } else if (gen == "clusters") {
    spec.kind = Kind::kClusters;
    spec.dims = 8;
  } else if (gen == "uniform") {
    spec.kind = Kind::kUniform;
    spec.dims = 8;
  } else {
    return Status::InvalidArgument(
        "unknown generator (want road|clusters|uniform): " + parts[0]);
  }

  Status st = ParseUint(parts[1], &spec.n);
  if (!st.ok()) return Status::InvalidArgument("bad n in spec " + text);
  if (spec.n == 0)
    return Status::InvalidArgument("dataset spec n must be > 0: " + text);
  st = ParseUint(parts[2], &spec.seed);
  if (!st.ok()) return Status::InvalidArgument("bad seed in spec " + text);
  if (parts.size() == 4) {
    if (spec.kind == Kind::kRoad)
      return Status::InvalidArgument("road is 2-d; drop the dims segment");
    uint64_t dims = 0;
    st = ParseUint(parts[3], &dims);
    if (!st.ok() || dims == 0 || dims > 1024)
      return Status::InvalidArgument("bad dims in spec " + text);
    spec.dims = static_cast<uint32_t>(dims);
  }
  return spec;
}

std::string DatasetSpec::Canonical() const {
  std::string out;
  switch (kind) {
    case Kind::kRoad:
      out = "road";
      break;
    case Kind::kClusters:
      out = "clusters";
      break;
    case Kind::kUniform:
      out = "uniform";
      break;
  }
  out += '-';
  out += std::to_string(n);
  out += '-';
  out += std::to_string(seed);
  if (kind != Kind::kRoad) {
    out += "-d";
    out += std::to_string(dims);
  }
  return out;
}

VectorData DatasetSpec::Generate() const {
  switch (kind) {
    case Kind::kRoad:
      return GenRoadNetwork(n, seed);
    case Kind::kClusters:
      return GenCorrelatedClusters(n, dims, seed);
    case Kind::kUniform:
      return GenUniform(n, dims, seed);
  }
  return VectorData{};
}

Result<Algorithm> ParseEngine(const std::string& text) {
  const std::string token = Lower(text);
  if (token == "nlj") return Algorithm::kNlj;
  if (token == "pm-nlj") return Algorithm::kPmNlj;
  if (token == "rand-sc") return Algorithm::kRandomSc;
  if (token == "sc") return Algorithm::kSc;
  if (token == "cc") return Algorithm::kCc;
  return Status::InvalidArgument(
      "unknown engine (want nlj|pm-nlj|rand-sc|sc|cc): " + text);
}

std::string EngineToken(Algorithm algorithm) {
  return Lower(AlgorithmName(algorithm));
}

Result<std::optional<JobSpec>> ParseJobLine(const std::string& line) {
  size_t first = 0;
  while (first < line.size() &&
         std::isspace(static_cast<unsigned char>(line[first])) != 0)
    ++first;
  if (first == line.size() || line[first] == '#')
    return std::optional<JobSpec>();

  std::map<std::string, JsonScalar> object;
  Status st = ParseFlatObject(line, &object);
  if (!st.ok()) return st;

  JobSpec job;
  for (const auto& [key, value] : object) {
    if (key == "cmd") {
      if (value.text != "submit")
        return Status::InvalidArgument("unknown cmd: " + value.text);
    } else if (key == "id") {
      job.id = value.text;
    } else if (key == "r") {
      job.r = value.text;
    } else if (key == "s") {
      job.s = value.text;
    } else if (key == "eps") {
      if (value.type != JsonScalar::Type::kNumber)
        return Status::InvalidArgument("eps must be a number");
      job.eps = value.number;
    } else if (key == "engine") {
      PMJOIN_ASSIGN_OR_RETURN(job.engine, ParseEngine(value.text));
    } else if (key == "buffer_pages" || key == "threads" ||
               key == "io_threads" || key == "k" || key == "shards") {
      if (value.type != JsonScalar::Type::kNumber || value.number < 0 ||
          value.number != static_cast<double>(
                              static_cast<uint32_t>(value.number)))
        return Status::InvalidArgument(key + " must be a small integer");
      (key == "buffer_pages"
           ? job.buffer_pages
           : key == "threads"
                 ? job.num_threads
                 : key == "io_threads"
                       ? job.io_threads
                       : key == "k" ? job.k : job.shards) =
          static_cast<uint32_t>(value.number);
    } else {
      return Status::InvalidArgument("unknown job key: " + key);
    }
  }
  if (job.r.empty() || job.s.empty())
    return Status::InvalidArgument("job needs both \"r\" and \"s\"");
  if (job.k > 0) {
    // kNN job: its own query type, so the ε-join knobs must be absent.
    if (object.count("eps") != 0)
      return Status::InvalidArgument(
          "\"eps\" and \"k\" are mutually exclusive");
    if (object.count("engine") != 0)
      return Status::InvalidArgument("\"engine\" does not apply to kNN jobs");
  } else if (object.count("k") != 0) {
    return Status::InvalidArgument("job needs \"k\" >= 1");
  } else if (job.eps <= 0.0) {
    return Status::InvalidArgument("job needs \"eps\" > 0 (or \"k\" for kNN)");
  }
  return std::optional<JobSpec>(std::move(job));
}

Result<std::vector<JobSpec>> ParseJobStream(std::istream& in) {
  std::vector<JobSpec> jobs;
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    Result<std::optional<JobSpec>> parsed = ParseJobLine(line);
    if (!parsed.ok())
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": " + parsed.status().message());
    if (parsed.value().has_value())
      jobs.push_back(std::move(*parsed.value()));
  }
  return jobs;
}

}  // namespace server
}  // namespace pmjoin
