#include "server/server.h"

#include <cstdio>
#include <utility>

#include "common/pair_sink.h"
#include "obs/clock.h"
#include "obs/run_report.h"
#include "obs/span.h"

namespace pmjoin {
namespace server {

JoinServer::JoinServer(StorageBackend* disk, Options options)
    : disk_(disk),
      options_(options),
      admission_(AdmissionController::Options{
          options.pool_pages, options.default_buffer_pages,
          options.default_threads, options.max_threads,
          options.default_io_threads, options.max_io_threads,
          options.default_shards, options.max_shards}),
      queue_(options.max_queue_depth),
      cache_(disk, ArtifactCache::Options{
                       options.page_size_bytes, options.persist_datasets,
                       options.hierarchical_matrix,
                       options.filter_iterations}),
      pool_(disk, options.pool_pages),
      driver_(disk) {}

JoinServer::~JoinServer() { Shutdown(); }

Status JoinServer::Start() {
  {
    MutexLock lock(&mu_);
    if (started_) return Status::Internal("Start called twice");
    started_ = true;
    server_start_io_ = disk_->stats();
  }
  worker_ = std::thread(&JoinServer::WorkerLoop, this);
  return Status::OK();
}

uint64_t JoinServer::Register(JobSpec* job) {
  MutexLock lock(&mu_);
  const uint64_t index = results_.size();
  if (job->id.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "q%llu",
                  static_cast<unsigned long long>(index));
    job->id = buf;
  }
  results_.push_back(std::make_unique<QueryResult>());
  ++admission_stats_.submitted;
  return index;
}

Result<uint64_t> JoinServer::Submit(const JobSpec& job_in) {
  JobSpec job = job_in;
  const uint64_t index = Register(&job);
  Status st = admission_.Admit(&job);
  if (st.ok())
    st = queue_.TryPush(QueuedQuery{index, job, obs::MonotonicNanos()});
  if (!st.ok()) {
    QueryResult rejected;
    rejected.row.id = job.id;
    rejected.row.engine = EngineToken(job.k > 0 ? Algorithm::kKnn
                                                : job.engine);
    rejected.row.r = job.r;
    rejected.row.s = job.s;
    rejected.row.eps = job.eps;
    rejected.row.k = job.k;
    rejected.row.status = "rejected";
    rejected.row.error = st.message();
    {
      MutexLock lock(&mu_);
      ++admission_stats_.rejected;
    }
    Finish(index, std::move(rejected));
    return st;
  }
  {
    MutexLock lock(&mu_);
    ++admission_stats_.admitted;
  }
  return index;
}

Result<uint64_t> JoinServer::SubmitBlocking(const JobSpec& job_in) {
  JobSpec job = job_in;
  const uint64_t index = Register(&job);
  Status st = admission_.Admit(&job);
  if (st.ok())
    st = queue_.PushBlocking(QueuedQuery{index, job, obs::MonotonicNanos()});
  if (!st.ok()) {
    QueryResult rejected;
    rejected.row.id = job.id;
    rejected.row.engine = EngineToken(job.k > 0 ? Algorithm::kKnn
                                                : job.engine);
    rejected.row.r = job.r;
    rejected.row.s = job.s;
    rejected.row.eps = job.eps;
    rejected.row.k = job.k;
    rejected.row.status = "rejected";
    rejected.row.error = st.message();
    {
      MutexLock lock(&mu_);
      ++admission_stats_.rejected;
    }
    Finish(index, std::move(rejected));
    return st;
  }
  {
    MutexLock lock(&mu_);
    ++admission_stats_.admitted;
  }
  return index;
}

const JoinServer::QueryResult& JoinServer::Wait(uint64_t index) {
  MutexLock lock(&mu_);
  while (index >= results_.size() || !results_[index]->done)
    done_cv_.Wait(&mu_);
  return *results_[index];
}

bool JoinServer::AllDoneLocked() const {
  for (const auto& result : results_)
    if (!result->done) return false;
  return true;
}

void JoinServer::WaitAll() {
  MutexLock lock(&mu_);
  while (!AllDoneLocked()) done_cv_.Wait(&mu_);
}

void JoinServer::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.Close();
  if (worker_.joinable()) worker_.join();
}

void JoinServer::WorkerLoop() {
  while (true) {
    std::optional<QueuedQuery> queued = queue_.Pop();
    if (!queued.has_value()) return;
    Execute(*queued);
  }
}

void JoinServer::Execute(const QueuedQuery& queued) {
  const int64_t dequeue_ns = obs::MonotonicNanos();
  const JobSpec& job = queued.job;

  QueryResult result;
  QueryRow& row = result.row;
  row.id = job.id;
  row.engine = EngineToken(job.k > 0 ? Algorithm::kKnn : job.engine);
  row.eps = job.eps;
  row.k = job.k;
  row.queue_ns = dequeue_ns - queued.enqueue_ns;

  // Specs were validated at admission; Parse cannot fail here.
  const DatasetSpec r_spec = *DatasetSpec::Parse(job.r);
  const DatasetSpec s_spec = *DatasetSpec::Parse(job.s);
  row.r = r_spec.Canonical();
  row.s = s_spec.Canonical();

  // One obs session per query: its IoStats delta is the row's `io` (the
  // server-ledger component, artifact builds included) and its events
  // become the query's own RunReport.
  obs::Tracer::Get().StartSession(disk_);

  Status st = Status::OK();
  CollectingSink sink;
  bool matrix_hit = false;
  do {
    // Datasets first (a self-join needs both refs to be the same cached
    // object), then the memoized matrix.
    Result<const VectorDataset*> rd = cache_.GetDataset(r_spec);
    if (!rd.ok()) {
      st = rd.status();
      break;
    }
    Result<const VectorDataset*> sd = cache_.GetDataset(s_spec);
    if (!sd.ok()) {
      st = sd.status();
      break;
    }

    JoinOptions join_options;
    join_options.algorithm = job.engine;
    join_options.buffer_pages = job.buffer_pages;
    join_options.norm = options_.norm;
    join_options.hierarchical_matrix = options_.hierarchical_matrix;
    join_options.filter_iterations = options_.filter_iterations;
    join_options.seed = options_.seed;
    join_options.page_size_bytes = options_.page_size_bytes;
    join_options.num_threads = job.num_threads;
    join_options.io_threads = job.io_threads;
    join_options.shards = job.shards;

    JoinResources resources;
    resources.shared_pool = &pool_;

    Result<JoinReport> report = JoinReport{};
    if (job.k > 0) {
      // kNN query: the candidate matrix is ε- and k-free, so every kNN
      // query on this dataset pair (any k) shares one cached build.
      Result<const ArtifactCache::CachedKnnMatrix*> km =
          cache_.GetKnnMatrix(r_spec, s_spec, options_.norm, &matrix_hit);
      if (!km.ok()) {
        st = km.status();
        break;
      }
      resources.knn_matrix = &(*km)->matrix;
      resources.knn_matrix_build_ops = &(*km)->build_ops;
      report = driver_.RunKnnJoin(**rd, **sd, job.k, join_options, &sink,
                                  resources);
    } else {
      Result<const ArtifactCache::CachedMatrix*> cm = cache_.GetMatrix(
          r_spec, s_spec, job.eps, options_.norm, &matrix_hit);
      if (!cm.ok()) {
        st = cm.status();
        break;
      }
      resources.matrix = &(*cm)->matrix;
      resources.matrix_build_ops = &(*cm)->build_ops;
      report = driver_.RunVector(**rd, **sd, job.eps, join_options, &sink,
                                 resources);
    }
    if (!report.ok()) {
      st = report.status();
      break;
    }
    result.report = std::move(report).value();

    // Query boundary: a leaked pin would shrink every later query's
    // effective buffer; fail loudly instead.
    st = pool_.CheckQuiescent();
  } while (false);

  obs::Tracer::Get().StopSession();

  obs::RunReport query_report;
  query_report.SetContext("tool", "pmjoin_server");
  query_report.SetContext("query", row.id);
  query_report.SetContext("engine", row.engine);
  query_report.SetContext("r", row.r);
  query_report.SetContext("s", row.s);
  query_report.SetContext("eps", row.eps);
  query_report.SetContext("k", static_cast<uint64_t>(row.k));
  query_report.SetContext("matrix_cache_hit",
                          static_cast<uint64_t>(matrix_hit ? 1 : 0));
  query_report.SetContext("shards", static_cast<uint64_t>(job.shards));
  if (st.ok() && result.report.shards > 1)
    query_report.SetShardSection(ShardSectionOf(result.report));
  query_report.CaptureSession();

  row.matrix_cache_hit = matrix_hit;
  row.io = query_report.io_totals();
  row.exec_ns = obs::MonotonicNanos() - dequeue_ns;
  if (st.ok()) {
    row.status = "ok";
    row.executed = true;
    row.result_pairs = result.report.result_pairs;
    row.join_io = result.report.io;
    row.ops = result.report.ops;
    row.num_clusters = result.report.num_clusters;
    if (result.report.shards > 1) {
      row.has_shards = true;
      row.shards = ShardSectionOf(result.report);
    }
    result.pairs = sink.Sorted();
  } else {
    row.status = "failed";
    row.error = st.message();
  }

  if (!options_.query_report_dir.empty()) {
    std::string name = row.id;
    for (char& c : name)
      if (c == '/') c = '_';
    const Status write_st = query_report.WriteFile(
        options_.query_report_dir + "/" + name + ".json");
    if (!write_st.ok() && row.status == "ok") {
      row.status = "failed";
      row.error = write_st.message();
      row.executed = true;  // the join itself ran and is attributable
    }
  }

  Finish(queued.index, std::move(result));
}

void JoinServer::Finish(uint64_t index, QueryResult result) {
  result.done = true;
  {
    MutexLock lock(&mu_);
    if (result.row.status == "ok")
      ++admission_stats_.completed;
    else if (result.row.status == "failed")
      ++admission_stats_.failed;
    *results_[index] = std::move(result);
  }
  done_cv_.NotifyAll();
}

ServerReport JoinServer::BuildReport() {
  ServerReport report;
  report.SetContext("tool", "pmjoin_server");
  report.SetContext("pool_pages", static_cast<uint64_t>(options_.pool_pages));
  report.SetContext("default_buffer_pages",
                    static_cast<uint64_t>(options_.default_buffer_pages));
  report.SetContext("max_queue_depth",
                    static_cast<uint64_t>(queue_.capacity()));
  report.SetContext("page_size_bytes",
                    static_cast<uint64_t>(options_.page_size_bytes));
  report.SetContext("norm", NormName(options_.norm));
  report.SetContext("seed", options_.seed);

  MutexLock lock(&mu_);
  for (const auto& result : results_)
    if (result->done) report.AddQuery(result->row);

  report.SetIoTotals(disk_->stats().Delta(server_start_io_));

  const ArtifactCache::Stats cache_stats = cache_.stats();
  ServerReport::CacheStats cache_row;
  cache_row.dataset_hits = cache_stats.dataset_hits;
  cache_row.dataset_opens = cache_stats.dataset_opens;
  cache_row.dataset_builds = cache_stats.dataset_builds;
  cache_row.matrix_hits = cache_stats.matrix_hits;
  cache_row.matrix_builds = cache_stats.matrix_builds;
  cache_row.knn_matrix_hits = cache_stats.knn_matrix_hits;
  cache_row.knn_matrix_builds = cache_stats.knn_matrix_builds;
  report.SetCacheStats(cache_row);

  ServerReport::AdmissionStats admission_row = admission_stats_;
  admission_row.max_queue_depth = queue_.MaxDepthSeen();
  report.SetAdmissionStats(admission_row);
  return report;
}

}  // namespace server
}  // namespace pmjoin
