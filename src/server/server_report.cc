#include "server/server_report.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/run_report.h"

namespace pmjoin {
namespace server {

namespace {

using obs::AppendJsonIoStats;
using obs::AppendJsonOpCounters;
using obs::JsonEscape;

void AppendU64(std::string* out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, value);
  *out += buf;
}

void AppendI64(std::string* out, const char* key, int64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key,
                static_cast<long long>(value));
  *out += buf;
}

}  // namespace

void ServerReport::SetContext(const std::string& key,
                              const std::string& value) {
  context_.emplace_back(key, JsonEscape(value));
}

void ServerReport::SetContext(const std::string& key, const char* value) {
  context_.emplace_back(key, JsonEscape(value));
}

void ServerReport::SetContext(const std::string& key, int64_t value) {
  context_.emplace_back(key, std::to_string(value));
}

void ServerReport::SetContext(const std::string& key, uint64_t value) {
  context_.emplace_back(key, std::to_string(value));
}

void ServerReport::SetContext(const std::string& key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  context_.emplace_back(key, buf);
}

void ServerReport::AddQuery(QueryRow row) {
  if (row.executed) {
    const int64_t total_ns = row.queue_ns + row.exec_ns;
    const uint64_t us =
        total_ns <= 0 ? 0 : static_cast<uint64_t>(total_ns) / 1000;
    ++latency_buckets_[std::bit_width(us)];
  }
  queries_.push_back(std::move(row));
}

void ServerReport::SetIoTotals(const IoStats& totals) {
  io_totals_ = totals;
}

IoStats ServerReport::UnattributedIo() const {
  IoStats attributed;
  for (const QueryRow& row : queries_) attributed += row.io;
  return io_totals_.Delta(attributed);
}

std::string ServerReport::ToJson() const {
  std::string out = "{\"schema\":";
  out += JsonEscape(kSchema);

  out += ",\"context\":{";
  for (size_t i = 0; i < context_.size(); ++i) {
    if (i != 0) out += ',';
    out += JsonEscape(context_[i].first);
    out += ':';
    out += context_[i].second;
  }
  out += '}';

  out += ",\"queries\":[";
  for (size_t i = 0; i < queries_.size(); ++i) {
    const QueryRow& row = queries_[i];
    if (i != 0) out += ',';
    out += "{\"id\":";
    out += JsonEscape(row.id);
    out += ",\"engine\":";
    out += JsonEscape(row.engine);
    out += ",\"r\":";
    out += JsonEscape(row.r);
    out += ",\"s\":";
    out += JsonEscape(row.s);
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"eps\":%.17g,", row.eps);
    out += buf;
    AppendU64(&out, "k", row.k);
    out += ',';
    out += "\"status\":";
    out += JsonEscape(row.status);
    if (!row.error.empty()) {
      out += ",\"error\":";
      out += JsonEscape(row.error);
    }
    out += ',';
    AppendU64(&out, "result_pairs", row.result_pairs);
    out += ',';
    AppendI64(&out, "queue_ns", row.queue_ns);
    out += ',';
    AppendI64(&out, "exec_ns", row.exec_ns);
    out += ",\"matrix_cache_hit\":";
    out += row.matrix_cache_hit ? "true" : "false";
    out += ",\"io\":";
    AppendJsonIoStats(&out, row.io);
    if (row.executed) {
      out += ",\"join_io\":";
      AppendJsonIoStats(&out, row.join_io);
      out += ",\"ops\":";
      AppendJsonOpCounters(&out, row.ops);
      out += ',';
      AppendU64(&out, "num_clusters", row.num_clusters);
      if (row.has_shards) {
        out += ",\"shards\":";
        obs::AppendJsonShardSection(&out, row.shards);
      }
    }
    out += '}';
  }
  out += ']';

  out += ",\"io_totals\":";
  AppendJsonIoStats(&out, io_totals_);
  out += ",\"unattributed_io\":";
  AppendJsonIoStats(&out, UnattributedIo());

  out += ",\"latency_histogram_us\":[";
  bool first = true;
  for (uint32_t b = 0; b < kLatencyBuckets; ++b) {
    if (latency_buckets_[b] == 0) continue;
    if (!first) out += ',';
    first = false;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[%u,%" PRIu64 "]", b,
                  latency_buckets_[b]);
    out += buf;
  }
  out += ']';

  out += ",\"cache\":{";
  AppendU64(&out, "dataset_hits", cache_.dataset_hits);
  out += ',';
  AppendU64(&out, "dataset_opens", cache_.dataset_opens);
  out += ',';
  AppendU64(&out, "dataset_builds", cache_.dataset_builds);
  out += ',';
  AppendU64(&out, "matrix_hits", cache_.matrix_hits);
  out += ',';
  AppendU64(&out, "matrix_builds", cache_.matrix_builds);
  out += ',';
  AppendU64(&out, "knn_matrix_hits", cache_.knn_matrix_hits);
  out += ',';
  AppendU64(&out, "knn_matrix_builds", cache_.knn_matrix_builds);
  out += '}';

  out += ",\"admission\":{";
  AppendU64(&out, "submitted", admission_.submitted);
  out += ',';
  AppendU64(&out, "admitted", admission_.admitted);
  out += ',';
  AppendU64(&out, "rejected", admission_.rejected);
  out += ',';
  AppendU64(&out, "completed", admission_.completed);
  out += ',';
  AppendU64(&out, "failed", admission_.failed);
  out += ',';
  AppendU64(&out, "max_queue_depth", admission_.max_queue_depth);
  out += "}}\n";
  return out;
}

Status ServerReport::WriteFile(const std::string& path) const {
  return obs::WriteTextFile(path, ToJson());
}

}  // namespace server
}  // namespace pmjoin
