#ifndef PMJOIN_SERVER_ADMISSION_H_
#define PMJOIN_SERVER_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "common/status.h"
#include "common/sync.h"
#include "server/job.h"

namespace pmjoin {
namespace server {

/// A job accepted into the queue, with its submission order and enqueue
/// timestamp (obs::MonotonicNanos) for queue-wait accounting.
struct QueuedQuery {
  uint64_t index = 0;  ///< Dense per-server query index (result slot).
  JobSpec job;
  int64_t enqueue_ns = 0;
};

/// Static admission policy, checked before a job may enter the queue.
/// Rejections are cheap and synchronous — nothing is generated, built, or
/// cached for a rejected job.
///
/// A job is admitted iff:
///   - both dataset specs parse (DatasetSpec::Parse) and agree on dims
///     (the driver would reject the pair anyway; failing here is free),
///   - it is exactly one of the two query shapes: an ε-join (eps > 0,
///     k == 0) or a kNN join (k >= 1, eps == 0),
///   - for ε-joins, the engine is in the served matrix family
///     (ParseEngine enforces this at parse time; re-checked for
///     programmatic submissions — kNN jobs ignore the engine field),
///   - its buffer_pages (explicit or server default) fits the shared
///     pool, so the query cannot deadlock on pool capacity,
///   - num_threads is at most max_threads,
///   - io_threads (explicit or server default; the async read pipeline's
///     dedicated reader threads) is at most max_io_threads,
///   - shards (explicit or server default; the modeled shard count of
///     core/shard_coordinator.h) is at most max_shards.
class AdmissionController {
 public:
  struct Options {
    uint32_t pool_pages = 256;          ///< Shared pool capacity.
    uint32_t default_buffer_pages = 100;
    uint32_t default_threads = 1;
    uint32_t max_threads = 64;
    uint32_t default_io_threads = 0;    ///< 0 = synchronous reads.
    uint32_t max_io_threads = 16;
    uint32_t default_shards = 1;        ///< 1 = single-node execution.
    uint32_t max_shards = 64;
  };

  explicit AdmissionController(Options options) : options_(options) {}

  /// Checks the policy above. On OK, `job`'s zero-valued knobs have been
  /// resolved to the server defaults in place.
  Status Admit(JobSpec* job) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Bounded multi-producer single-consumer FIFO between the submission
/// side (any thread) and the server's worker. Bounding the queue is the
/// server's backpressure mechanism: TryPush refuses with BufferFull when
/// the bound is reached (the caller sees an explicit rejection), and
/// PushBlocking parks the producer instead — pick per submission.
class QueryQueue {
 public:
  explicit QueryQueue(size_t capacity);

  /// Enqueues, or fails with BufferFull (queue at capacity) /
  /// InvalidArgument (queue closed). Never blocks.
  Status TryPush(QueuedQuery query) PMJOIN_EXCLUDES(mu_);

  /// Enqueues, waiting for space if the queue is at capacity. Fails only
  /// if the queue is closed while waiting.
  Status PushBlocking(QueuedQuery query) PMJOIN_EXCLUDES(mu_);

  /// Dequeues the oldest entry, blocking while the queue is open and
  /// empty. Returns nullopt once the queue is closed *and* drained —
  /// the worker's termination signal.
  std::optional<QueuedQuery> Pop() PMJOIN_EXCLUDES(mu_);

  /// Closes the queue: further pushes fail, blocked producers wake with
  /// an error, and Pop drains the remaining entries before returning
  /// nullopt.
  void Close() PMJOIN_EXCLUDES(mu_);

  size_t Depth() const PMJOIN_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

  /// High-water mark of Depth() over the queue's lifetime.
  size_t MaxDepthSeen() const PMJOIN_EXCLUDES(mu_);

 private:
  /// Folds the current depth into the high-water mark; call after every
  /// push, with the queue mutex held.
  void NoteDepthLocked() PMJOIN_REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_{lock_rank::kQueryQueue, "QueryQueue::mu_"};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<QueuedQuery> entries_ PMJOIN_GUARDED_BY(mu_);
  size_t max_depth_seen_ PMJOIN_GUARDED_BY(mu_) = 0;
  bool closed_ PMJOIN_GUARDED_BY(mu_) = false;
};

}  // namespace server
}  // namespace pmjoin

#endif  // PMJOIN_SERVER_ADMISSION_H_
