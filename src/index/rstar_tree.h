#ifndef PMJOIN_INDEX_RSTAR_TREE_H_
#define PMJOIN_INDEX_RSTAR_TREE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "geom/mbr.h"
#include "io/storage_backend.h"

namespace pmjoin {

/// R*-tree (Beckmann et al., SIGMOD '90) over d-dimensional MBRs.
///
/// This is the index structure the paper assumes for point and spatial data
/// (Table 1). In pmjoin the tree indexes *data pages*: each leaf entry is
/// one page of the dataset with its page MBR. The hierarchical
/// prediction-matrix construction (Fig. 1) and the BFRJ baseline both
/// traverse this structure; the tree's own nodes can be attached to a disk
/// file so that node accesses are charged I/O (one node per page).
///
/// Both construction paths are supported:
///  - `BulkLoadStr` — Sort-Tile-Recursive packing (fast, near-optimal);
///  - `Insert` — the full R* insertion algorithm with ChooseSubtree,
///    forced reinsertion (30%), and the margin/overlap-driven split.
class RStarTree {
 public:
  /// A node slot: bounding box plus either a child node id (internal) or a
  /// caller-defined data id (leaf).
  struct Entry {
    Mbr mbr;
    uint32_t id = 0;
  };

  struct Node {
    Mbr mbr;
    std::vector<Entry> entries;
    /// 0 at the leaf level, increasing toward the root.
    uint32_t level = 0;
    bool IsLeaf() const { return level == 0; }

    explicit Node(size_t dims, uint32_t level_in = 0)
        : mbr(dims), level(level_in) {}
  };

  struct Options {
    /// Maximum entries per node (fanout), M.
    uint32_t max_entries = 64;
    /// Minimum entries per node, m (R* default: 40% of M).
    uint32_t min_entries = 26;
    /// Entries removed on forced reinsert (R* default: 30% of M).
    uint32_t reinsert_count = 19;
  };

  /// An empty tree over `dims`-dimensional boxes with default node
  /// geometry (fanout 64, m = 40%·M, p = 30%·M).
  explicit RStarTree(size_t dims) : RStarTree(dims, Options{}) {}
  RStarTree(size_t dims, Options options);

  /// Bulk loads a tree from leaf entries using STR packing. The relative
  /// order of `leaf_entries` is not preserved (they are spatially sorted).
  static RStarTree BulkLoadStr(size_t dims, std::vector<Entry> leaf_entries) {
    return BulkLoadStr(dims, std::move(leaf_entries), Options{});
  }
  static RStarTree BulkLoadStr(size_t dims, std::vector<Entry> leaf_entries,
                               Options options);

  /// Inserts one leaf entry using the full R* algorithm.
  void Insert(const Mbr& mbr, uint32_t data_id);

  size_t dims() const { return dims_; }
  const Options& options() const { return options_; }
  bool empty() const { return size_ == 0; }
  uint64_t size() const { return size_; }

  /// Root node id. Only valid when !empty().
  uint32_t root() const { return root_; }

  /// Tree height = root level + 1. 0 for an empty tree.
  uint32_t height() const { return empty() ? 0 : nodes_[root_].level + 1; }

  const Node& node(uint32_t id) const { return nodes_[id]; }
  size_t NumNodes() const { return nodes_.size(); }

  /// Collects the data ids of all leaf entries whose MBR intersects `box`.
  void RangeSearch(const Mbr& box, std::vector<uint32_t>* out) const;

  /// Collects data ids of leaf entries with MinDist(query) <= eps.
  void DistanceSearch(const Mbr& query, double eps, Norm norm,
                      std::vector<uint32_t>* out) const;

  /// Registers a `NumNodes()`-page file on `disk` so traversals can charge
  /// node I/O (node n lives on page n). Call after the tree is built.
  void AttachFile(StorageBackend* disk, std::string_view name);

  /// The attached node file id, if any.
  std::optional<uint32_t> file_id() const { return file_id_; }

  /// Structural self-check: entry counts within [m, M] (root exempt),
  /// parent MBRs exactly cover children, uniform leaf depth, all data ids
  /// reachable exactly once. Used heavily by tests.
  Status CheckInvariants() const;

  /// Canonical audit name shared by all stateful cores (BufferPool,
  /// PredictionMatrix, the clustering validators); forwards to
  /// CheckInvariants().
  Status ValidateInvariants() const { return CheckInvariants(); }

 private:
  uint32_t NewNode(uint32_t level);
  void RecomputeMbr(uint32_t node_id);
  void SyncEntryMbrsUpward(const std::vector<uint32_t>& path,
                           uint32_t node_id);
  uint32_t ChooseSubtree(const Mbr& mbr, uint32_t target_level,
                         std::vector<uint32_t>* path) const;
  /// Handles an overflowing node: forced reinsert on first overflow at a
  /// level per insertion, split otherwise. `path` holds ancestors
  /// (root..parent).
  void OverflowTreatment(uint32_t node_id, std::vector<uint32_t>& path,
                         std::vector<bool>& reinserted_at_level);
  void SplitNode(uint32_t node_id, std::vector<uint32_t>& path);
  void InsertEntry(const Entry& entry, uint32_t target_level,
                   std::vector<bool>& reinserted_at_level);

  size_t dims_;
  Options options_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  uint64_t size_ = 0;
  std::optional<uint32_t> file_id_;
};

}  // namespace pmjoin

#endif  // PMJOIN_INDEX_RSTAR_TREE_H_
