#include "index/str_bulk_load.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pmjoin {
namespace {

/// Recursively partitions `idx[lo, hi)` (indices into `items`) into groups
/// of at most `capacity`, sorting by center along `dim` and slicing into
/// slabs, then recursing on the next dimension.
void PackRecursive(const std::vector<Mbr>& items, std::vector<uint32_t>& idx,
                   size_t lo, size_t hi, size_t dim, size_t capacity,
                   std::vector<std::vector<uint32_t>>* groups) {
  const size_t n = hi - lo;
  if (n == 0) return;
  const size_t dims = items[idx[lo]].dims();
  if (n <= capacity) {
    groups->emplace_back(idx.begin() + lo, idx.begin() + hi);
    return;
  }

  std::sort(idx.begin() + lo, idx.begin() + hi,
            [&items, dim](uint32_t a, uint32_t b) {
              const double ca = items[a].Center(dim);
              const double cb = items[b].Center(dim);
              if (ca != cb) return ca < cb;
              return a < b;  // Deterministic tie-break.
            });

  if (dim + 1 >= dims) {
    // Last dimension: emit consecutive chunks.
    for (size_t i = lo; i < hi; i += capacity) {
      const size_t end = std::min(i + capacity, hi);
      groups->emplace_back(idx.begin() + i, idx.begin() + end);
    }
    return;
  }

  // Number of groups needed and slab count: S = ceil(P^(1/remaining_dims)).
  const size_t p = (n + capacity - 1) / capacity;
  const double remaining = static_cast<double>(dims - dim);
  size_t slabs = static_cast<size_t>(
      std::ceil(std::pow(static_cast<double>(p), 1.0 / remaining)));
  slabs = std::max<size_t>(1, std::min(slabs, p));
  const size_t per_slab = (n + slabs - 1) / slabs;

  for (size_t i = lo; i < hi; i += per_slab) {
    const size_t end = std::min(i + per_slab, hi);
    PackRecursive(items, idx, i, end, dim + 1, capacity, groups);
  }
}

}  // namespace

std::vector<std::vector<uint32_t>> StrPack(const std::vector<Mbr>& items,
                                           size_t capacity) {
  assert(capacity > 0);
  std::vector<std::vector<uint32_t>> groups;
  if (items.empty()) return groups;
  std::vector<uint32_t> idx(items.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);
  PackRecursive(items, idx, 0, idx.size(), 0, capacity, &groups);
  return groups;
}

}  // namespace pmjoin
