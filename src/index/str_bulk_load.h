#ifndef PMJOIN_INDEX_STR_BULK_LOAD_H_
#define PMJOIN_INDEX_STR_BULK_LOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/mbr.h"

namespace pmjoin {

/// Sort-Tile-Recursive packing (Leutenegger et al.): groups `items` into
/// runs of at most `capacity` so that each run is spatially tight.
///
/// Used in two places:
///  1. laying out a vector dataset on disk so each page's records are
///     spatially clustered (paper §5.1: "the data objects are sorted so
///     that the contents of each leaf level MBR appear contiguously on
///     disk");
///  2. bulk-loading the R*-tree levels bottom-up.
///
/// Returns the item indices in packed order, partitioned into groups:
/// `groups[g]` lists indices of `items` forming group g. Works for any
/// dimensionality (recursive slab partitioning). Deterministic.
std::vector<std::vector<uint32_t>> StrPack(const std::vector<Mbr>& items,
                                           size_t capacity);

}  // namespace pmjoin

#endif  // PMJOIN_INDEX_STR_BULK_LOAD_H_
