#include "index/rstar_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "index/str_bulk_load.h"

namespace pmjoin {

RStarTree::RStarTree(size_t dims, Options options)
    : dims_(dims), options_(options) {
  assert(options_.max_entries >= 4);
  assert(options_.min_entries >= 2);
  assert(options_.min_entries <= options_.max_entries / 2);
  assert(options_.reinsert_count < options_.max_entries);
  root_ = NewNode(/*level=*/0);
}

uint32_t RStarTree::NewNode(uint32_t level) {
  nodes_.emplace_back(dims_, level);
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void RStarTree::RecomputeMbr(uint32_t node_id) {
  Node& n = nodes_[node_id];
  n.mbr = Mbr(dims_);
  for (const Entry& e : n.entries) n.mbr.Expand(e.mbr);
}

void RStarTree::SyncEntryMbrsUpward(const std::vector<uint32_t>& path,
                                    uint32_t node_id) {
  // Walk ancestors bottom-up, refreshing each parent's entry for its child
  // and then the parent's own MBR, so the stored entry boxes always equal
  // the child node boxes (searches prune on entry boxes).
  uint32_t child = node_id;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Node& parent = nodes_[*it];
    for (Entry& e : parent.entries) {
      if (e.id == child) {
        e.mbr = nodes_[child].mbr;
        break;
      }
    }
    RecomputeMbr(*it);
    child = *it;
  }
}

RStarTree RStarTree::BulkLoadStr(size_t dims,
                                 std::vector<Entry> leaf_entries,
                                 Options options) {
  RStarTree tree(dims, options);
  if (leaf_entries.empty()) return tree;
  tree.nodes_.clear();
  tree.size_ = leaf_entries.size();

  // Pack the current level's entries into nodes, then iterate upward.
  std::vector<Entry> level_entries = std::move(leaf_entries);
  uint32_t level = 0;
  for (;;) {
    std::vector<Mbr> boxes;
    boxes.reserve(level_entries.size());
    for (const Entry& e : level_entries) boxes.push_back(e.mbr);
    std::vector<std::vector<uint32_t>> groups =
        StrPack(boxes, options.max_entries);

    std::vector<Entry> next;
    next.reserve(groups.size());
    for (const std::vector<uint32_t>& group : groups) {
      const uint32_t node_id = tree.NewNode(level);
      Node& n = tree.nodes_[node_id];
      n.entries.reserve(group.size());
      for (uint32_t i : group) n.entries.push_back(level_entries[i]);
      tree.RecomputeMbr(node_id);
      next.push_back(Entry{n.mbr, node_id});
    }
    if (next.size() == 1) {
      tree.root_ = next[0].id;
      break;
    }
    level_entries = std::move(next);
    ++level;
  }
  return tree;
}

namespace {

double AreaEnlargement(const Mbr& box, const Mbr& add) {
  Mbr u = box;
  u.Expand(add);
  return u.Area() - box.Area();
}

}  // namespace

uint32_t RStarTree::ChooseSubtree(const Mbr& mbr, uint32_t target_level,
                                  std::vector<uint32_t>* path) const {
  uint32_t current = root_;
  while (nodes_[current].level > target_level) {
    path->push_back(current);
    const Node& n = nodes_[current];
    const bool children_are_leaves = n.level == 1;
    uint32_t best = n.entries[0].id;
    double best_primary = std::numeric_limits<double>::max();
    double best_secondary = std::numeric_limits<double>::max();
    double best_area = std::numeric_limits<double>::max();

    for (const Entry& e : n.entries) {
      double primary;
      const double enlargement = AreaEnlargement(e.mbr, mbr);
      if (children_are_leaves) {
        // R*: minimize overlap enlargement w.r.t. siblings.
        Mbr enlarged = e.mbr;
        enlarged.Expand(mbr);
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (const Entry& other : n.entries) {
          if (&other == &e) continue;
          overlap_before += e.mbr.OverlapArea(other.mbr);
          overlap_after += enlarged.OverlapArea(other.mbr);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = enlargement;
      }
      const double secondary = children_are_leaves ? enlargement : 0.0;
      const double area = e.mbr.Area();
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary) ||
          (primary == best_primary && secondary == best_secondary &&
           area < best_area)) {
        best_primary = primary;
        best_secondary = secondary;
        best_area = area;
        best = e.id;
      }
    }
    current = best;
  }
  return current;
}

void RStarTree::Insert(const Mbr& mbr, uint32_t data_id) {
  std::vector<bool> reinserted(height() + 2, false);
  InsertEntry(Entry{mbr, data_id}, /*target_level=*/0, reinserted);
  ++size_;
}

void RStarTree::InsertEntry(const Entry& entry, uint32_t target_level,
                            std::vector<bool>& reinserted_at_level) {
  std::vector<uint32_t> path;
  const uint32_t node_id = ChooseSubtree(entry.mbr, target_level, &path);
  nodes_[node_id].entries.push_back(entry);
  nodes_[node_id].mbr.Expand(entry.mbr);
  SyncEntryMbrsUpward(path, node_id);

  if (nodes_[node_id].entries.size() > options_.max_entries) {
    OverflowTreatment(node_id, path, reinserted_at_level);
  }
}

void RStarTree::OverflowTreatment(uint32_t node_id,
                                  std::vector<uint32_t>& path,
                                  std::vector<bool>& reinserted_at_level) {
  Node& n = nodes_[node_id];
  const uint32_t level = n.level;
  if (level >= reinserted_at_level.size())
    reinserted_at_level.resize(level + 1, false);

  if (node_id != root_ && !reinserted_at_level[level]) {
    reinserted_at_level[level] = true;
    // Forced reinsert: remove the reinsert_count entries whose centers are
    // farthest from the node center, re-add them (farthest first).
    std::vector<double> center(dims_);
    for (size_t d = 0; d < dims_; ++d) center[d] = n.mbr.Center(d);
    std::vector<std::pair<double, size_t>> by_dist;
    by_dist.reserve(n.entries.size());
    for (size_t i = 0; i < n.entries.size(); ++i) {
      double sq = 0.0;
      for (size_t d = 0; d < dims_; ++d) {
        const double dd = n.entries[i].mbr.Center(d) - center[d];
        sq += dd * dd;
      }
      by_dist.emplace_back(sq, i);
    }
    std::sort(by_dist.begin(), by_dist.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    std::vector<Entry> removed;
    std::vector<bool> drop(n.entries.size(), false);
    for (uint32_t k = 0; k < options_.reinsert_count; ++k) {
      removed.push_back(n.entries[by_dist[k].second]);
      drop[by_dist[k].second] = true;
    }
    std::vector<Entry> kept;
    kept.reserve(n.entries.size() - removed.size());
    for (size_t i = 0; i < n.entries.size(); ++i) {
      if (!drop[i]) kept.push_back(n.entries[i]);
    }
    n.entries = std::move(kept);
    RecomputeMbr(node_id);
    SyncEntryMbrsUpward(path, node_id);

    for (const Entry& e : removed) {
      InsertEntry(e, level, reinserted_at_level);
    }
    return;
  }
  SplitNode(node_id, path);
}

void RStarTree::SplitNode(uint32_t node_id, std::vector<uint32_t>& path) {
  // R* split: pick the axis minimizing the summed margin over all valid
  // distributions (of both lo- and hi-sorted orders), then the distribution
  // minimizing overlap (ties: area).
  const uint32_t m = options_.min_entries;
  std::vector<Entry> entries = std::move(nodes_[node_id].entries);
  const size_t total = entries.size();
  const size_t dist_count = total - 2 * m + 1;

  size_t best_axis = 0;
  bool best_axis_hi = false;
  double best_margin_sum = std::numeric_limits<double>::max();

  auto sort_entries = [&entries](size_t axis, bool by_hi) {
    std::sort(entries.begin(), entries.end(),
              [axis, by_hi](const Entry& a, const Entry& b) {
                const float ka = by_hi ? a.mbr.hi(axis) : a.mbr.lo(axis);
                const float kb = by_hi ? b.mbr.hi(axis) : b.mbr.lo(axis);
                if (ka != kb) return ka < kb;
                return a.id < b.id;
              });
  };

  for (size_t axis = 0; axis < dims_; ++axis) {
    for (bool by_hi : {false, true}) {
      sort_entries(axis, by_hi);
      double margin_sum = 0.0;
      for (size_t k = 0; k < dist_count; ++k) {
        const size_t split = m + k;
        Mbr left(dims_), right(dims_);
        for (size_t i = 0; i < split; ++i) left.Expand(entries[i].mbr);
        for (size_t i = split; i < total; ++i) right.Expand(entries[i].mbr);
        margin_sum += left.Margin() + right.Margin();
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
        best_axis_hi = by_hi;
      }
    }
  }

  sort_entries(best_axis, best_axis_hi);
  size_t best_split = m;
  double best_overlap = std::numeric_limits<double>::max();
  double best_area = std::numeric_limits<double>::max();
  for (size_t k = 0; k < dist_count; ++k) {
    const size_t split = m + k;
    Mbr left(dims_), right(dims_);
    for (size_t i = 0; i < split; ++i) left.Expand(entries[i].mbr);
    for (size_t i = split; i < total; ++i) right.Expand(entries[i].mbr);
    const double overlap = left.OverlapArea(right);
    const double area = left.Area() + right.Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_split = split;
    }
  }

  Node& left = nodes_[node_id];
  left.entries.assign(entries.begin(), entries.begin() + best_split);
  RecomputeMbr(node_id);

  const uint32_t right_id = NewNode(left.level);
  Node& right = nodes_[right_id];
  right.entries.assign(entries.begin() + best_split, entries.end());
  RecomputeMbr(right_id);

  if (node_id == root_) {
    const uint32_t new_root = NewNode(nodes_[node_id].level + 1);
    nodes_[new_root].entries.push_back(
        Entry{nodes_[node_id].mbr, node_id});
    nodes_[new_root].entries.push_back(
        Entry{nodes_[right_id].mbr, right_id});
    RecomputeMbr(new_root);
    root_ = new_root;
    return;
  }

  const uint32_t parent = path.back();
  path.pop_back();
  // Refresh the split node's entry in the parent and add the new sibling.
  for (Entry& e : nodes_[parent].entries) {
    if (e.id == node_id) {
      e.mbr = nodes_[node_id].mbr;
      break;
    }
  }
  nodes_[parent].entries.push_back(Entry{nodes_[right_id].mbr, right_id});
  RecomputeMbr(parent);
  if (nodes_[parent].entries.size() > options_.max_entries) {
    // Propagate: split the parent (reinsert only applies once per level,
    // handled by the caller's bookkeeping — here we split directly, which
    // matches the R* behaviour after a reinsert already happened).
    SplitNode(parent, path);
  } else {
    SyncEntryMbrsUpward(path, parent);
  }
}

void RStarTree::RangeSearch(const Mbr& box,
                            std::vector<uint32_t>* out) const {
  if (empty()) return;
  std::vector<uint32_t> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    for (const Entry& e : n.entries) {
      if (!e.mbr.Intersects(box)) continue;
      if (n.IsLeaf()) {
        out->push_back(e.id);
      } else {
        stack.push_back(e.id);
      }
    }
  }
}

void RStarTree::DistanceSearch(const Mbr& query, double eps, Norm norm,
                               std::vector<uint32_t>* out) const {
  if (empty()) return;
  std::vector<uint32_t> stack{root_};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    for (const Entry& e : n.entries) {
      if (!e.mbr.MinDistWithin(query, norm, eps)) continue;
      if (n.IsLeaf()) {
        out->push_back(e.id);
      } else {
        stack.push_back(e.id);
      }
    }
  }
}

void RStarTree::AttachFile(StorageBackend* disk, std::string_view name) {
  file_id_ = disk->CreateFile(name, static_cast<uint32_t>(nodes_.size()));
}

Status RStarTree::CheckInvariants() const {
  if (empty()) return Status::OK();
  std::unordered_set<uint32_t> seen_data;
  std::vector<std::pair<uint32_t, uint32_t>> stack{{root_, nodes_[root_].level}};
  uint64_t leaf_entries = 0;
  while (!stack.empty()) {
    const auto [id, expected_level] = stack.back();
    stack.pop_back();
    const Node& n = nodes_[id];
    if (n.level != expected_level)
      return Status::Corruption("non-uniform level structure");
    if (n.entries.empty())
      return Status::Corruption("empty node");
    if (id != root_ && n.entries.size() < options_.min_entries)
      return Status::Corruption("node under-full");
    if (n.entries.size() > options_.max_entries)
      return Status::Corruption("node over-full");
    Mbr cover(dims_);
    for (const Entry& e : n.entries) cover.Expand(e.mbr);
    if (!(cover == n.mbr))
      return Status::Corruption("node MBR does not match children");
    for (const Entry& e : n.entries) {
      if (n.IsLeaf()) {
        ++leaf_entries;
      } else {
        if (!(nodes_[e.id].mbr == e.mbr))
          return Status::Corruption("entry MBR does not match child node");
        stack.emplace_back(e.id, n.level - 1);
      }
    }
  }
  if (leaf_entries != size_)
    return Status::Corruption("leaf entry count does not match size");
  return Status::OK();
}

}  // namespace pmjoin
