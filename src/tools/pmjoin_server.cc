// pmjoin_server — long-lived join server: reads newline-delimited JSON
// submit lines from a job file (or stdin), runs them through the
// admission controller, bounded query queue, shared buffer pool, and
// artifact cache, and writes the aggregate pmjoin.server_report.v1 JSON.
// Serves both ε-joins ("eps" key) and kNN joins ("k" key).
//
// Usage:
//   pmjoin_server [--jobs=FILE|-] [--backend=sim|file] [--data-dir=DIR]
//                 [--pool=PAGES] [--buffer=PAGES] [--queue=N]
//                 [--threads=N] [--io-threads=N] [--shards=N]
//                 [--page=BYTES] [--norm=l1|l2|linf] [--seed=S]
//                 [--report=FILE] [--query-reports=DIR] [--persist]
//                 [--no-backpressure]
//
// Job lines (see docs/SERVER.md for the full grammar):
//   {"cmd": "submit", "r": "road/2000/7", "s": "road/2000/8",
//    "eps": 0.01, "engine": "sc"}
//   {"cmd": "submit", "r": "road/2000/7", "s": "road/2000/8", "k": 8}
//
// --jobs selects the job file; `-` (the default) reads stdin, so the
// server can be driven interactively or from a pipe. --backend and
// --data-dir mirror pmjoin_cli: `sim` models I/O only, `file` keeps real
// checksummed page files in DIR and lets --persist'ed datasets survive
// into the next server process. --pool sizes the shared buffer pool;
// --buffer is the per-query default budget B (jobs may override, capped
// at --pool by admission). --queue bounds the query queue: under the
// default backpressure regime a full queue blocks the submitter, with
// --no-backpressure it rejects the job instead. --threads and
// --io-threads set the per-query worker/async-I/O-thread defaults (jobs
// may override via the "threads" / "io_threads" keys, capped by
// admission); --io-threads only matters with --backend=file, where it
// overlaps the physical page reads with the joins. --shards sets the
// per-query default modeled shard count (jobs may override via the
// "shards" key, capped by admission); sharded queries report per-shard
// I/O with results byte-identical to single-node. --report writes the
// aggregate server report; --query-reports writes each query's
// pmjoin.run_report.v1 to DIR/<id>.json.
//
// Example (two jobs over one pipe; the second reuses the cached
// datasets and shared pool residency of the first):
//   { echo '{"r": "road/2000/1", "s": "road/2000/2", "eps": 0.01}';
//     echo '{"r": "road/2000/1", "s": "road/2000/2", "eps": 0.02}';
//   } | pmjoin_server --pool=128 --report=server.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "io/file_backend.h"
#include "io/simulated_disk.h"
#include "io/storage_backend.h"
#include "server/job.h"
#include "server/server.h"
#include "server/server_report.h"

namespace {

using namespace pmjoin;

struct CliArgs {
  std::string jobs = "-";
  std::string backend = "sim";
  std::string data_dir = "pmjoin-data";
  uint32_t pool = 256;
  uint32_t buffer = 64;
  uint32_t queue = 64;
  uint32_t threads = 1;
  uint32_t io_threads = 0;
  uint32_t shards = 1;
  uint32_t page = 1024;
  std::string norm = "l2";
  uint64_t seed = 1;
  std::string report;
  std::string query_reports;
  bool persist = false;
  bool no_backpressure = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

std::optional<CliArgs> Parse(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--jobs", &value)) {
      args.jobs = value;
    } else if (ParseFlag(argv[i], "--backend", &value)) {
      args.backend = value;
    } else if (ParseFlag(argv[i], "--data-dir", &value)) {
      args.data_dir = value;
    } else if (ParseFlag(argv[i], "--pool", &value)) {
      args.pool = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--buffer", &value)) {
      args.buffer = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--queue", &value)) {
      args.queue = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      args.threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--io-threads", &value)) {
      args.io_threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--shards", &value)) {
      args.shards = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--page", &value)) {
      args.page = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--norm", &value)) {
      args.norm = value;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      args.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--report", &value)) {
      args.report = value;
    } else if (ParseFlag(argv[i], "--query-reports", &value)) {
      args.query_reports = value;
    } else if (std::strcmp(argv[i], "--persist") == 0) {
      args.persist = true;
    } else if (std::strcmp(argv[i], "--no-backpressure") == 0) {
      args.no_backpressure = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", argv[i]);
      return std::nullopt;
    }
  }
  return args;
}

std::optional<Norm> NormOf(const std::string& name) {
  if (name == "l1") return Norm::kL1;
  if (name == "l2") return Norm::kL2;
  if (name == "linf") return Norm::kLInf;
  return std::nullopt;
}

int Run(const CliArgs& args) {
  const auto norm = NormOf(args.norm);
  if (!norm) {
    std::fprintf(stderr, "bad --norm value: %s\n", args.norm.c_str());
    return 2;
  }
  if (args.pool == 0 || args.buffer == 0 || args.buffer > args.pool) {
    std::fprintf(stderr,
                 "need 0 < --buffer (%u) <= --pool (%u)\n", args.buffer,
                 args.pool);
    return 2;
  }

  // Job lines are read up front: the whole stream is known before the
  // server starts, which keeps the demo single-process. (The submission
  // API itself is thread-safe; tests/server exercises concurrent
  // submitters.)
  std::vector<server::JobSpec> jobs;
  if (args.jobs == "-") {
    auto parsed = server::ParseJobStream(std::cin);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--jobs stdin: %s\n",
                   parsed.status().message().c_str());
      return 1;
    }
    jobs = std::move(parsed).value();
  } else {
    std::ifstream in(args.jobs);
    if (!in) {
      std::fprintf(stderr, "cannot open --jobs file: %s\n",
                   args.jobs.c_str());
      return 1;
    }
    auto parsed = server::ParseJobStream(in);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", args.jobs.c_str(),
                   parsed.status().message().c_str());
      return 1;
    }
    jobs = std::move(parsed).value();
  }

  std::unique_ptr<StorageBackend> backend;
  if (args.backend == "sim") {
    backend = std::make_unique<SimulatedDisk>();
  } else if (args.backend == "file") {
    FileBackend::Options fb;
    fb.page_size_bytes = args.page;
    auto opened = FileBackend::Open(args.data_dir, fb);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    backend = std::move(opened).value();
  } else {
    std::fprintf(stderr, "bad --backend value: %s\n", args.backend.c_str());
    return 2;
  }

  server::JoinServer::Options options;
  options.pool_pages = args.pool;
  options.default_buffer_pages = args.buffer;
  options.default_threads = args.threads;
  options.default_io_threads = args.io_threads;
  options.default_shards = args.shards;
  options.max_queue_depth = args.queue;
  options.page_size_bytes = args.page;
  options.norm = *norm;
  options.seed = args.seed;
  options.persist_datasets = args.persist;
  options.query_report_dir = args.query_reports;

  server::JoinServer join_server(backend.get(), options);
  Status st = join_server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  for (const server::JobSpec& job : jobs) {
    const auto submitted = args.no_backpressure
                               ? join_server.Submit(job)
                               : join_server.SubmitBlocking(job);
    if (!submitted.ok())
      std::fprintf(stderr, "rejected %s: %s\n", job.id.c_str(),
                   submitted.status().message().c_str());
  }
  join_server.WaitAll();
  join_server.Shutdown();

  server::ServerReport report = join_server.BuildReport();
  report.SetContext("backend", args.backend);

  uint64_t ok = 0, failed = 0, rejected = 0;
  for (const server::QueryRow& row : report.queries()) {
    if (row.status == "ok") {
      ++ok;
      char predicate[32];
      if (row.k > 0)
        std::snprintf(predicate, sizeof(predicate), "k=%u", row.k);
      else
        std::snprintf(predicate, sizeof(predicate), "eps=%g", row.eps);
      std::printf("%-8s %-8s %s ⋈ %s %s pairs=%llu io.read=%llu "
                  "hits=%llu%s\n",
                  row.id.c_str(), row.engine.c_str(), row.r.c_str(),
                  row.s.c_str(), predicate,
                  (unsigned long long)row.result_pairs,
                  (unsigned long long)row.io.pages_read,
                  (unsigned long long)row.io.buffer_hits,
                  row.matrix_cache_hit ? " [matrix cached]" : "");
    } else {
      row.status == "failed" ? ++failed : ++rejected;
      std::printf("%-8s %s: %s\n", row.id.c_str(), row.status.c_str(),
                  row.error.c_str());
    }
  }
  std::printf("served %llu ok, %llu failed, %llu rejected\n",
              (unsigned long long)ok, (unsigned long long)failed,
              (unsigned long long)rejected);

  if (!args.report.empty()) {
    st = report.WriteFile(args.report);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("report: %s (%zu queries)\n", args.report.c_str(),
                report.queries().size());
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = Parse(argc, argv);
  if (!args) {
    std::printf(
        "usage: pmjoin_server [--jobs=FILE|-] [--backend=sim|file]\n"
        "                     [--data-dir=DIR] [--pool=PAGES]\n"
        "                     [--buffer=PAGES] [--queue=N] [--threads=N]\n"
        "                     [--io-threads=N] [--shards=N] [--page=BYTES]\n"
        "                     [--norm=l1|l2|linf]\n"
        "                     [--seed=S] [--report=FILE]\n"
        "                     [--query-reports=DIR] [--persist]\n"
        "                     [--no-backpressure]\n"
        "Reads newline-delimited JSON submit lines from --jobs (default\n"
        "stdin), serves them over one shared buffer pool and artifact\n"
        "cache, and prints one line per query. --report writes the\n"
        "aggregate pmjoin.server_report.v1 JSON; --query-reports writes\n"
        "each query's pmjoin.run_report.v1 to DIR/<id>.json. --persist\n"
        "keeps built datasets on the backend (with --backend=file they\n"
        "survive into the next server process). --io-threads=N overlaps\n"
        "the file backend's physical reads with the joins (async\n"
        "prefetch); results and modeled I/O unchanged. --shards=N sets\n"
        "the default modeled shard count (per-shard report section;\n"
        "results byte-identical to single-node). See docs/SERVER.md.\n");
    return 2;
  }
  return Run(*args);
}
