#ifndef PMJOIN_CORE_SHARD_PLANNER_H_
#define PMJOIN_CORE_SHARD_PLANNER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/op_counters.h"
#include "core/cluster.h"
#include "io/io_stats.h"

namespace pmjoin {

/// One cluster's exact execution charges, recorded by the clustered
/// executor (ExecutorOptions::cluster_charges) or the kNN join
/// (KnnJoinOptions::page_charges): the modeled I/O the cluster's pins
/// cost and the CPU its entry joins charged. The shard coordinator folds
/// these into per-shard totals by ownership, which is what makes the
/// shard ledger exact — Σ per-shard charges + unattributed equals the
/// run's totals field by field, because every charge is a delta of the
/// same monotone counters the run totals are.
struct ClusterCharge {
  IoStats io;
  OpCounters ops;
};

/// Per-shard summary of a shard plan, partly filled by PlanShards
/// (clusters/entries/pages) and completed by the shard coordinator
/// (attributed execution charges, isolated modeled replay).
struct ShardStats {
  /// Clusters owned by this shard.
  uint64_t clusters = 0;
  /// Marked entries owned (the planner's load unit).
  uint64_t entries = 0;
  /// Distinct pages the shard's clusters touch — Σ over shards exceeds
  /// the global distinct count by exactly the replicated pages.
  uint64_t pages = 0;
  /// Modeled I/O charged by the single-node execution on behalf of this
  /// shard's clusters (exact attribution; see ClusterCharge).
  IoStats io;
  /// CPU counters charged on behalf of this shard's clusters.
  OpCounters ops;
  /// Modeled I/O of this shard running alone: its sub-order replayed
  /// through a private BufferPool over a private backend mirror. Includes
  /// the replication cost the attributed view cannot show — pages shared
  /// across shards are read once per shard here.
  IoStats modeled_io;
};

/// A partition of the clusters across N modeled shards, minimizing the
/// sharing-graph edge weight cut by the partition (the distributed
/// analogue of the §8 schedule: weight kept inside a shard is page reuse
/// that shard can still realize; weight cut is replication).
struct ShardPlan {
  uint32_t num_shards = 1;

  /// owner[i] is the shard of cluster i.
  std::vector<uint32_t> owner;

  /// Clusters of each shard, ascending.
  std::vector<std::vector<uint32_t>> shard_clusters;

  /// Sharing-graph weight crossing shards / total weight.
  uint64_t cut_weight = 0;
  uint64_t sharing_weight = 0;

  /// Σ per-shard distinct pages − global distinct pages: the pages read
  /// more than once because the clusters needing them live on different
  /// shards (the replication-vs-balance cost of McCauley & Silvestri /
  /// Lu et al.).
  uint64_t replicated_pages = 0;
  uint64_t distinct_pages = 0;

  /// Max shard entry load over the mean load (1.0 = perfectly balanced).
  double balance_ratio = 0.0;

  /// Per-shard rows, size num_shards.
  std::vector<ShardStats> shards;
};

/// Greedily partitions the clusters into `num_shards` balanced shards
/// minimizing the sharing-graph cut. Clusters are considered in
/// descending (incident sharing weight, entry count) order — the
/// best-connected first, so their neighborhoods cohere — and each is
/// placed on the shard holding the most sharing weight to its already
/// placed neighbors, among shards still under the balanced load cap
/// (⌈total entries / num_shards⌉). Deterministic tie-breaks throughout:
/// equal gain → lower load → lower shard id; equal sort keys → lower
/// cluster index. `num_shards` == 0 is treated as 1; shards may end up
/// empty when there are fewer clusters than shards.
ShardPlan PlanShards(const std::vector<Cluster>& clusters,
                     const JoinInput& input, uint32_t num_shards);

/// The global schedule restricted to one shard's clusters: `order` with
/// every cluster not owned by `shard` removed. This is the order the
/// shard's isolated replay processes — each shard inherits the §8
/// schedule's reuse structure for the clusters it owns.
std::vector<uint32_t> ShardSubOrder(const ShardPlan& plan,
                                    std::span<const uint32_t> order,
                                    uint32_t shard);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_SHARD_PLANNER_H_
