#include "core/executor.h"

namespace pmjoin {

Status ExecuteClusteredJoin(const JoinInput& input,
                            const std::vector<Cluster>& clusters,
                            std::span<const uint32_t> order,
                            BufferPool* pool, PairSink* sink,
                            OpCounters* ops) {
  if (order.size() != clusters.size())
    return Status::InvalidArgument("order size != cluster count");

  for (uint32_t index : order) {
    if (index >= clusters.size())
      return Status::InvalidArgument("order index out of range");
    const Cluster& cluster = clusters[index];
    std::vector<PageId> pages = ClusterPageSet(cluster, input);
    if (pages.size() > pool->capacity())
      return Status::BufferFull("cluster larger than buffer pool");

    PMJOIN_RETURN_IF_ERROR(pool->PinBatch(pages));
    for (const MatrixEntry& e : cluster.entries) {
      input.joiner->JoinPages(e.row, e.col, sink, ops);
    }
    pool->UnpinBatch(pages);
  }
  return Status::OK();
}

}  // namespace pmjoin
