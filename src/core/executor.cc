#include "core/executor.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/check.h"
#include "obs/span.h"

namespace pmjoin {

void JoinEntries(const JoinInput& input, std::span<const MatrixEntry> entries,
                 PairSink* sink, OpCounters* ops) {
  for (const MatrixEntry& e : entries) {
    input.joiner->JoinPages(e.row, e.col, sink, ops);
  }
}

namespace {

/// Validates the next cluster index and computes its page set, mirroring
/// the serial loop's per-cluster checks so both paths fail at the same
/// point with the same status.
Status ValidateAndPageSet(const JoinInput& input,
                          const std::vector<Cluster>& clusters,
                          uint32_t index, uint32_t capacity,
                          std::vector<PageId>* pages) {
  if (index >= clusters.size())
    return Status::InvalidArgument("order index out of range");
  *pages = ClusterPageSet(clusters[index], input);
  if (pages->size() > capacity)
    return Status::BufferFull("cluster larger than buffer pool");
  return Status::OK();
}

/// True iff pinning `pages` now (with the current cluster still pinned)
/// provably succeeds, charges the same simulated I/O, and evicts the same
/// victims as pinning them at the serial position (after the current
/// cluster is unpinned).
///
/// Why this is sufficient: Unpin changes no residency and no counters, so
/// the hit/miss classification of `pages` — and hence the transfer/seek
/// schedule over the miss set — is the same at both positions. The only
/// state difference is that the serial pool's LRU list additionally holds
/// the current cluster's pages *at its tail*. Victims pop from the front.
///
/// The victim supply, however, is not UnpinnedCount(): PinBatch pins the
/// batch's resident pages *before* admitting any miss (and pins each
/// admitted miss immediately), so a batch page that is resident-unpinned
/// right now leaves the LRU list before the first eviction and can never
/// be a victim of its own batch. Only evictable pages *outside* the batch
/// count. If the evictions needed (resident + misses − capacity) fit in
/// that supply, both runs evict the identical prefix of the shared
/// non-batch LRU — and the pin cannot fail mid-batch (PinBatch failure is
/// not state-neutral, so a failed early pin would already have diverged
/// the accounting; see io/buffer_pool.h). Beyond the bound the serial run
/// would draw victims from the current cluster's just-unpinned pages, so
/// the caller defers the pin to the serial position instead.
bool CanPrefetch(const BufferPool& pool, std::span<const PageId> pages) {
  uint64_t misses = 0;
  uint64_t batch_evictable = 0;
  for (const PageId& pid : pages) {
    if (!pool.Contains(pid))
      ++misses;
    else if (pool.IsEvictable(pid))
      ++batch_evictable;
  }
  const uint64_t after = pool.ResidentCount() + misses;
  const uint64_t evictions =
      after > pool.capacity() ? after - pool.capacity() : 0;
  return evictions + batch_evictable <= pool.UnpinnedCount();
}

/// The serial §8 loop: read each cluster's page set with the seek-optimal
/// schedule, join its marked entries in memory, release the pins.
Status ExecuteSerial(const JoinInput& input,
                     const std::vector<Cluster>& clusters,
                     std::span<const uint32_t> order, BufferPool* pool,
                     PairSink* sink, OpCounters* ops) {
  for (uint32_t index : order) {
    PMJOIN_SPAN_OPS_ARG("cluster", ops, index);
    std::vector<PageId> pages;
    PMJOIN_RETURN_IF_ERROR(ValidateAndPageSet(input, clusters, index,
                                              pool->capacity(), &pages));
    PMJOIN_RETURN_IF_ERROR(pool->PinBatch(pages));
    const Cluster& cluster = clusters[index];
    JoinEntries(input, cluster.entries, sink, ops);
    pool->UnpinBatch(pages);
    // Phase boundary: the cluster's pins are released, the pool must be
    // back in a self-consistent state (paranoid builds only).
    PMJOIN_DCHECK_OK(pool->ValidateInvariants());
  }
  return Status::OK();
}

/// The parallel executor: workers join the current cluster's entries in
/// contiguous chunks while the coordinator stages the next cluster's pages.
///
/// Invariants that keep every observable identical to ExecuteSerial:
///  - Pool and disk are touched by the coordinator thread only; workers
///    compute on dataset memory (pages pinned for the cluster they are
///    joining) and write to private sink/counter shards.
///  - Cluster k+1's pages are pinned early only when CanPrefetch proves
///    the charged I/O and the eviction victims match the serial position;
///    otherwise the pin happens exactly where the serial loop does it.
///  - Chunks are contiguous subranges of the entry list assigned to shards
///    in order, and shards are drained in shard order after the cluster's
///    WaitGroup clears — reproducing the serial emission sequence, not
///    just the set.
Status ExecuteParallel(const JoinInput& input,
                       const std::vector<Cluster>& clusters,
                       std::span<const uint32_t> order, BufferPool* pool,
                       PairSink* sink, OpCounters* ops,
                       const ExecutorOptions& options) {
  std::optional<ThreadPool> owned_pool;
  ThreadPool* workers = options.thread_pool;
  if (workers == nullptr) {
    owned_pool.emplace(options.num_threads);
    workers = &*owned_pool;
  }
  const uint32_t num_workers = workers->size();

  ShardedPairSink pair_shards(num_workers);
  ShardedOpCounters op_shards(num_workers);

  std::vector<PageId> current;
  PMJOIN_RETURN_IF_ERROR(ValidateAndPageSet(input, clusters, order[0],
                                            pool->capacity(), &current));
  PMJOIN_RETURN_IF_ERROR(pool->PinBatch(current));

  for (size_t i = 0; i < order.size(); ++i) {
    PMJOIN_SPAN_OPS_ARG("cluster", ops, order[i]);
    const Cluster& cluster = clusters[order[i]];
    const size_t n = cluster.entries.size();
    const uint32_t chunks = static_cast<uint32_t>(
        std::min<size_t>(num_workers, n));

    WaitGroup wg;
    wg.Add(chunks);
    for (uint32_t c = 0; c < chunks; ++c) {
      const size_t lo = n * c / chunks;
      const size_t hi = n * (c + 1) / chunks;
      const std::span<const MatrixEntry> chunk(cluster.entries.data() + lo,
                                               hi - lo);
      PairSink* chunk_sink = pair_shards.shard(c);
      OpCounters* chunk_ops = op_shards.shard(c);
      workers->Submit([&input, &wg, chunk, chunk_sink, chunk_ops] {
        {
          // Scoped so the span's final read of *chunk_ops completes before
          // Done() releases the chunk to the coordinator's drain.
          PMJOIN_SPAN_OPS("join_entries", chunk_ops);
          JoinEntries(input, chunk, chunk_sink, chunk_ops);
        }
        wg.Done();
      });
    }

    // Prefetch stage: while the workers chew on cluster i, stage cluster
    // i+1's pages in schedule order (when provably accounting-neutral).
    const bool have_next = i + 1 < order.size();
    Status next_status;
    std::vector<PageId> next;
    bool next_pinned = false;
    if (have_next) {
      PMJOIN_SPAN_ARG("prefetch", order[i + 1]);
      next_status = ValidateAndPageSet(input, clusters, order[i + 1],
                                       pool->capacity(), &next);
      if (next_status.ok() && options.prefetch_next_cluster &&
          CanPrefetch(*pool, next)) {
        next_status = pool->PinBatch(next);
        next_pinned = next_status.ok();
      }
    }

    wg.Wait();
    op_shards.DrainInto(ops);
    pair_shards.Drain(sink);
    pool->UnpinBatch(current);
    // Phase boundary: cluster i's pins are gone and its shards drained;
    // only the (optional) prefetched batch may still hold pins.
    PMJOIN_DCHECK_OK(pool->ValidateInvariants());

    if (have_next) {
      PMJOIN_RETURN_IF_ERROR(next_status);
      if (!next_pinned) PMJOIN_RETURN_IF_ERROR(pool->PinBatch(next));
      current = std::move(next);
    }
  }
  return Status::OK();
}

}  // namespace

Status ExecuteClusteredJoin(const JoinInput& input,
                            const std::vector<Cluster>& clusters,
                            std::span<const uint32_t> order,
                            BufferPool* pool, PairSink* sink,
                            OpCounters* ops,
                            const ExecutorOptions& options) {
  PMJOIN_SPAN_OPS("execute", ops);
  if (order.size() != clusters.size())
    return Status::InvalidArgument("order size != cluster count");
  if (order.empty()) return Status::OK();

  if (options.num_threads <= 1)
    return ExecuteSerial(input, clusters, order, pool, sink, ops);
  return ExecuteParallel(input, clusters, order, pool, sink, ops, options);
}

}  // namespace pmjoin
