#include "core/executor.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <utility>

#include "common/check.h"
#include "io/async_reader.h"
#include "io/disk_scheduler.h"
#include "obs/span.h"

namespace pmjoin {

void JoinEntries(const JoinInput& input, std::span<const MatrixEntry> entries,
                 PairSink* sink, OpCounters* ops) {
  for (const MatrixEntry& e : entries) {
    input.joiner->JoinPages(e.row, e.col, sink, ops);
  }
}

namespace {

/// Validates the next cluster index and computes its page set, mirroring
/// the serial loop's per-cluster checks so both paths fail at the same
/// point with the same status.
Status ValidateAndPageSet(const JoinInput& input,
                          const std::vector<Cluster>& clusters,
                          uint32_t index, uint32_t capacity,
                          std::vector<PageId>* pages) {
  if (index >= clusters.size())
    return Status::InvalidArgument("order index out of range");
  *pages = ClusterPageSet(clusters[index], input);
  if (pages->size() > capacity)
    return Status::BufferFull("cluster larger than buffer pool");
  return Status::OK();
}

/// True iff pinning `pages` now (with the current cluster still pinned)
/// provably succeeds, charges the same simulated I/O, and evicts the same
/// victims as pinning them at the serial position (after the current
/// cluster is unpinned).
///
/// Why this is sufficient: Unpin changes no residency and no counters, so
/// the hit/miss classification of `pages` — and hence the transfer/seek
/// schedule over the miss set — is the same at both positions. The only
/// state difference is that the serial pool's LRU list additionally holds
/// the current cluster's pages *at its tail*. Victims pop from the front.
///
/// The victim supply, however, is not UnpinnedCount(): PinBatch pins the
/// batch's resident pages *before* admitting any miss (and pins each
/// admitted miss immediately), so a batch page that is resident-unpinned
/// right now leaves the LRU list before the first eviction and can never
/// be a victim of its own batch. Only evictable pages *outside* the batch
/// count. If the evictions needed (resident + misses − capacity) fit in
/// that supply, both runs evict the identical prefix of the shared
/// non-batch LRU — and the pin cannot fail mid-batch (PinBatch failure is
/// not state-neutral, so a failed early pin would already have diverged
/// the accounting; see io/buffer_pool.h). Beyond the bound the serial run
/// would draw victims from the current cluster's just-unpinned pages, so
/// the caller defers the pin to the serial position instead.
bool CanPrefetch(const BufferPool& pool, std::span<const PageId> pages) {
  uint64_t misses = 0;
  uint64_t batch_evictable = 0;
  for (const PageId& pid : pages) {
    if (!pool.Contains(pid))
      ++misses;
    else if (pool.IsEvictable(pid))
      ++batch_evictable;
  }
  const uint64_t after = pool.ResidentCount() + misses;
  const uint64_t evictions =
      after > pool.capacity() ? after - pool.capacity() : 0;
  return evictions + batch_evictable <= pool.UnpinnedCount();
}

/// The seek-optimal physical read schedule of `pages`'s non-resident
/// subset — the runs the later PinBatch will issue for them. Exact for
/// the immediately next cluster (nothing changes residency between this
/// prediction and that PinBatch: Unpin touches no residency, and
/// PinBatch pins a batch's resident pages before any eviction). For
/// clusters staged further ahead the prediction can go stale — see
/// StagingWindow.
std::vector<PageRun> MissRuns(BufferPool* pool,
                              std::span<const PageId> pages) {
  std::vector<PageId> missed;
  for (const PageId& pid : pages) {
    if (!pool->Contains(pid)) missed.push_back(pid);
  }
  return BuildSchedule(*pool->disk(), std::move(missed));
}

/// Hands one upcoming cluster's miss runs to the async reader, which
/// physically reads them into staging buffers while earlier clusters are
/// joined. The schedule is split into one contiguous slice per reader
/// thread, so multiple I/O threads share a cluster's reads while each
/// slice stays in seek-optimal order. (Deliberately no fadvise hint on
/// this path: the reader threads issue the reads themselves, and an
/// additional WILLNEED readahead measurably competes with them for CPU;
/// the hint path serves the synchronous pin-early prefetch, which has no
/// reader thread working for it.)
/// Ledger-neutral: staging charges no modeled I/O — consumption happens
/// inside the later PinBatch at its usual position, where the base
/// backend applies the identical accounting the synchronous read would
/// have.
void StageCluster(BufferPool* pool, AsyncReader* reader,
                  std::span<const PageId> next, uint32_t next_index) {
  PMJOIN_SPAN_ARG("prefetch_async", next_index);
  const std::vector<PageRun> runs = MissRuns(pool, next);
  if (runs.empty()) return;
  const size_t slices = std::min<size_t>(reader->num_threads(), runs.size());
  const size_t per_slice = (runs.size() + slices - 1) / slices;
  for (size_t begin = 0; begin < runs.size(); begin += per_slice) {
    reader->SubmitBatch(std::span(runs).subspan(
        begin, std::min(per_slice, runs.size() - begin)));
  }
}

/// Sliding lookahead window for the async read pipeline: keeps the miss
/// runs of up to kLookaheadClusters upcoming clusters staged ahead of the
/// join cursor, bounded by a staged-page budget so staging memory stays a
/// few MB regardless of pool size (the cluster right after the cursor is
/// always staged, matching the minimum one-cluster pipeline). Depth
/// beyond one cluster is what keeps the I/O threads busy while the
/// coordinator consumes and joins — with a single cluster in flight the
/// pipeline drains at every cluster boundary, serializing reader and
/// coordinator again.
///
/// Staleness: runs for clusters beyond the immediately next one are
/// predicted against residency at stage time; pins and evictions by the
/// intervening clusters can shift the pin-time run boundaries (only where
/// page sets overlap). A stale staged run is simply never consumed — the
/// pin reads those pages synchronously and DropStaged reclaims the run
/// when the join finishes. Correctness and the modeled ledger are
/// unaffected; only the wasted physical read is lost.
class StagingWindow {
 public:
  static constexpr size_t kLookaheadClusters = 16;
  static constexpr size_t kLookaheadPages = 1024;

  StagingWindow(const JoinInput& input, const std::vector<Cluster>& clusters,
                std::span<const uint32_t> order, BufferPool* pool,
                AsyncReader* reader)
      : input_(input),
        clusters_(clusters),
        order_(order),
        pool_(pool),
        reader_(reader) {}

  /// Stages every not-yet-staged cluster in (i, i + kLookaheadClusters]
  /// that fits the page budget (the first of them unconditionally). Call
  /// right after cluster order[i]'s pins land; `i` must be monotone.
  void Advance(size_t i) {
    if (reader_ == nullptr) return;
    while (!window_.empty() && window_.front().first <= i) {
      staged_pages_ -= window_.front().second;
      window_.pop_front();
    }
    if (next_ <= i) next_ = i + 1;
    while (next_ < order_.size() && next_ <= i + kLookaheadClusters) {
      std::vector<PageId> pages;
      // A validation failure is ignored on purpose: the join loop's own
      // iteration for that cluster fails at the same point with the same
      // status.
      if (!ValidateAndPageSet(input_, clusters_, order_[next_],
                              pool_->capacity(), &pages)
               .ok())
        return;
      if (next_ > i + 1 && staged_pages_ + pages.size() > kLookaheadPages)
        return;
      StageCluster(pool_, reader_, pages, order_[next_]);
      window_.emplace_back(next_, pages.size());
      staged_pages_ += pages.size();
      ++next_;
    }
  }

 private:
  const JoinInput& input_;
  const std::vector<Cluster>& clusters_;
  const std::span<const uint32_t> order_;
  BufferPool* const pool_;
  AsyncReader* const reader_;
  /// (order position, page count) of clusters staged and not yet passed
  /// by the cursor; `staged_pages_` is the sum of the page counts.
  std::deque<std::pair<size_t, size_t>> window_;
  size_t staged_pages_ = 0;
  size_t next_ = 0;
};

/// The serial §8 loop: read each cluster's page set with the seek-optimal
/// schedule, join its marked entries in memory, release the pins. With an
/// async reader, the next cluster's physical reads are staged right after
/// this cluster's pins land, so they proceed while the entries join.
Status ExecuteSerial(const JoinInput& input,
                     const std::vector<Cluster>& clusters,
                     std::span<const uint32_t> order, BufferPool* pool,
                     PairSink* sink, OpCounters* ops, AsyncReader* reader,
                     std::vector<ClusterCharge>* charges) {
  StagingWindow staging(input, clusters, order, pool, reader);
  for (size_t i = 0; i < order.size(); ++i) {
    const uint32_t index = order[i];
    PMJOIN_SPAN_OPS_ARG("cluster", ops, index);
    std::vector<PageId> pages;
    PMJOIN_RETURN_IF_ERROR(ValidateAndPageSet(input, clusters, index,
                                              pool->capacity(), &pages));
    const IoStats io_before =
        charges != nullptr ? pool->disk()->stats() : IoStats();
    PMJOIN_RETURN_IF_ERROR(pool->PinBatch(pages));
    if (charges != nullptr)
      (*charges)[index].io += pool->disk()->stats().Delta(io_before);
    staging.Advance(i);
    const Cluster& cluster = clusters[index];
    const OpCounters ops_before =
        charges != nullptr && ops != nullptr ? *ops : OpCounters();
    JoinEntries(input, cluster.entries, sink, ops);
    if (charges != nullptr && ops != nullptr)
      (*charges)[index].ops += ops->Delta(ops_before);
    pool->UnpinBatch(pages);
    // Phase boundary: the cluster's pins are released, the pool must be
    // back in a self-consistent state (paranoid builds only).
    PMJOIN_DCHECK_OK(pool->ValidateInvariants());
  }
  return Status::OK();
}

/// The parallel executor: workers join the current cluster's entries in
/// contiguous chunks while the coordinator stages the next cluster's pages.
///
/// Invariants that keep every observable identical to ExecuteSerial:
///  - Pool and disk are touched by the coordinator thread only; workers
///    compute on dataset memory (pages pinned for the cluster they are
///    joining) and write to private sink/counter shards.
///  - Cluster k+1's pages are pinned early only when CanPrefetch proves
///    the charged I/O and the eviction victims match the serial position;
///    otherwise the pin happens exactly where the serial loop does it.
///  - Chunks are contiguous subranges of the entry list assigned to shards
///    in order, and shards are drained in shard order after the cluster's
///    WaitGroup clears — reproducing the serial emission sequence, not
///    just the set.
Status ExecuteParallel(const JoinInput& input,
                       const std::vector<Cluster>& clusters,
                       std::span<const uint32_t> order, BufferPool* pool,
                       PairSink* sink, OpCounters* ops,
                       const ExecutorOptions& options, AsyncReader* reader) {
  std::optional<ThreadPool> owned_pool;
  ThreadPool* workers = options.thread_pool;
  if (workers == nullptr) {
    owned_pool.emplace(options.num_threads);
    workers = &*owned_pool;
  }
  const uint32_t num_workers = workers->size();

  ShardedPairSink pair_shards(num_workers);
  ShardedOpCounters op_shards(num_workers);

  std::vector<ClusterCharge>* const charges = options.cluster_charges;
  StagingWindow staging(input, clusters, order, pool, reader);
  std::vector<PageId> current;
  PMJOIN_RETURN_IF_ERROR(ValidateAndPageSet(input, clusters, order[0],
                                            pool->capacity(), &current));
  const IoStats first_before =
      charges != nullptr ? pool->disk()->stats() : IoStats();
  PMJOIN_RETURN_IF_ERROR(pool->PinBatch(current));
  if (charges != nullptr)
    (*charges)[order[0]].io += pool->disk()->stats().Delta(first_before);

  for (size_t i = 0; i < order.size(); ++i) {
    PMJOIN_SPAN_OPS_ARG("cluster", ops, order[i]);
    const Cluster& cluster = clusters[order[i]];
    const size_t n = cluster.entries.size();
    const uint32_t chunks = static_cast<uint32_t>(
        std::min<size_t>(num_workers, n));

    WaitGroup wg;
    wg.Add(chunks);
    for (uint32_t c = 0; c < chunks; ++c) {
      const size_t lo = n * c / chunks;
      const size_t hi = n * (c + 1) / chunks;
      const std::span<const MatrixEntry> chunk(cluster.entries.data() + lo,
                                               hi - lo);
      PairSink* chunk_sink = pair_shards.shard(c);
      OpCounters* chunk_ops = op_shards.shard(c);
      workers->Submit([&input, &wg, chunk, chunk_sink, chunk_ops] {
        {
          // Scoped so the span's final read of *chunk_ops completes before
          // Done() releases the chunk to the coordinator's drain.
          PMJOIN_SPAN_OPS("join_entries", chunk_ops);
          JoinEntries(input, chunk, chunk_sink, chunk_ops);
        }
        wg.Done();
      });
    }

    // Prefetch stage: while the workers chew on cluster i, stage the
    // upcoming clusters' pages. The async reader moves the physical bytes
    // regardless (ledger-neutral); the feasibility gate still decides
    // whether cluster i+1's pages may additionally be *pinned* early
    // (accounting-neutral pin).
    const bool have_next = i + 1 < order.size();
    Status next_status;
    std::vector<PageId> next;
    bool next_pinned = false;
    if (have_next) {
      PMJOIN_SPAN_ARG("prefetch", order[i + 1]);
      next_status = ValidateAndPageSet(input, clusters, order[i + 1],
                                       pool->capacity(), &next);
      if (next_status.ok()) {
        const bool pin_early =
            options.prefetch_next_cluster && CanPrefetch(*pool, next);
        if (reader != nullptr) {
          staging.Advance(i);
        } else if (pin_early) {
          // Kernel read-ahead hint for the accepted batch's miss runs.
          for (const PageRun& run : MissRuns(pool, next)) {
            pool->disk()->AdviseWillNeed(run.start, run.length);
          }
        }
        if (pin_early) {
          const IoStats io_before =
              charges != nullptr ? pool->disk()->stats() : IoStats();
          next_status = pool->PinBatch(next);
          next_pinned = next_status.ok();
          if (charges != nullptr && next_pinned)
            (*charges)[order[i + 1]].io +=
                pool->disk()->stats().Delta(io_before);
        }
      }
    }

    wg.Wait();
    // The workers' shard totals are exactly cluster i's entry-join CPU:
    // the shards were drained after the previous cluster and only this
    // cluster's chunks have written to them since.
    if (charges != nullptr) (*charges)[order[i]].ops += op_shards.Total();
    op_shards.DrainInto(ops);
    pair_shards.Drain(sink);
    pool->UnpinBatch(current);
    // Phase boundary: cluster i's pins are gone and its shards drained;
    // only the (optional) prefetched batch may still hold pins.
    PMJOIN_DCHECK_OK(pool->ValidateInvariants());

    if (have_next) {
      PMJOIN_RETURN_IF_ERROR(next_status);
      if (!next_pinned) {
        const IoStats io_before =
            charges != nullptr ? pool->disk()->stats() : IoStats();
        PMJOIN_RETURN_IF_ERROR(pool->PinBatch(next));
        if (charges != nullptr)
          (*charges)[order[i + 1]].io +=
              pool->disk()->stats().Delta(io_before);
      }
      current = std::move(next);
    }
  }
  return Status::OK();
}

}  // namespace

Status ExecuteClusteredJoin(const JoinInput& input,
                            const std::vector<Cluster>& clusters,
                            std::span<const uint32_t> order,
                            BufferPool* pool, PairSink* sink,
                            OpCounters* ops,
                            const ExecutorOptions& options) {
  PMJOIN_SPAN_OPS("execute", ops);
  if (order.size() != clusters.size())
    return Status::InvalidArgument("order size != cluster count");
  if (options.cluster_charges != nullptr &&
      options.cluster_charges->size() < clusters.size())
    return Status::InvalidArgument("cluster_charges smaller than clusters");
  if (order.empty()) return Status::OK();

  // Async read pipeline. `cleanup` is declared before the reader so the
  // unwind order — on every exit path, including errors — is: join the
  // I/O threads first (no further PerformStage can start), then drop
  // whatever was staged but never consumed.
  struct StagedCleanup {
    StorageBackend* disk = nullptr;
    ~StagedCleanup() {
      if (disk != nullptr) disk->DropStaged();
    }
  } cleanup;
  std::optional<AsyncReader> reader;
  if (options.io_threads > 0 && pool->disk()->SupportsStaging()) {
    cleanup.disk = pool->disk();
    reader.emplace(pool->disk(), options.io_threads);
  }
  AsyncReader* reader_ptr = reader ? &*reader : nullptr;

  if (options.num_threads <= 1)
    return ExecuteSerial(input, clusters, order, pool, sink, ops, reader_ptr,
                         options.cluster_charges);
  return ExecuteParallel(input, clusters, order, pool, sink, ops, options,
                         reader_ptr);
}

}  // namespace pmjoin
