#include "core/join_driver.h"

#include <memory>
#include <numeric>
#include <optional>
#include <vector>

#include "baselines/bfrj.h"
#include "baselines/block_nlj.h"
#include "baselines/ego.h"
#include "baselines/pbsm.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/cost_clustering.h"
#include "core/executor.h"
#include "core/invariant_audit.h"
#include "core/joiners.h"
#include "core/knn_join.h"
#include "core/plane_sweep.h"
#include "core/pm_nlj.h"
#include "core/scheduler.h"
#include "core/shard_coordinator.h"
#include "core/square_clustering.h"
#include "io/buffer_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace pmjoin {

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kNlj:
      return "NLJ";
    case Algorithm::kPmNlj:
      return "pm-NLJ";
    case Algorithm::kRandomSc:
      return "rand-SC";
    case Algorithm::kSc:
      return "SC";
    case Algorithm::kCc:
      return "CC";
    case Algorithm::kEgo:
      return "EGO";
    case Algorithm::kBfrj:
      return "BFRJ";
    case Algorithm::kPbsm:
      return "PBSM";
    case Algorithm::kKnn:
      return "kNN";
  }
  return "?";
}

JoinDriver::JoinDriver(StorageBackend* disk, CpuCostModel cpu_model)
    : disk_(disk), cpu_model_(cpu_model) {}

obs::ShardSection ShardSectionOf(const JoinReport& report) {
  obs::ShardSection section;
  section.count = report.shards;
  section.cut_weight = report.shard_cut_weight;
  section.sharing_weight = report.shard_sharing_weight;
  section.replicated_pages = report.shard_replicated_pages;
  section.distinct_pages = report.shard_distinct_pages;
  section.balance_ratio = report.shard_balance_ratio;
  section.join_io = report.io;
  section.join_ops = report.ops;
  section.unattributed_io = report.shard_unattributed_io;
  section.unattributed_ops = report.shard_unattributed_ops;
  section.per_shard.reserve(report.shard_stats.size());
  for (size_t i = 0; i < report.shard_stats.size(); ++i) {
    const ShardStats& s = report.shard_stats[i];
    obs::ShardRow row;
    row.shard = static_cast<uint32_t>(i);
    row.clusters = s.clusters;
    row.entries = s.entries;
    row.pages = s.pages;
    row.io = s.io;
    row.ops = s.ops;
    row.modeled_io = s.modeled_io;
    section.per_shard.push_back(std::move(row));
  }
  return section;
}

const RStarTree* JoinDriver::SequencePageTree(
    const void* store_key, const std::vector<Mbr>& page_mbrs) {
  auto it = seq_trees_.find(store_key);
  if (it != seq_trees_.end()) return it->second.get();
  std::vector<RStarTree::Entry> leaves;
  leaves.reserve(page_mbrs.size());
  for (uint32_t p = 0; p < page_mbrs.size(); ++p)
    leaves.push_back(RStarTree::Entry{page_mbrs[p], p});
  auto tree = std::make_unique<RStarTree>(
      RStarTree::BulkLoadStr(page_mbrs.empty() ? 1 : page_mbrs[0].dims(),
                             std::move(leaves)));
  tree->AttachFile(disk_, "seq-page-tree");
  const RStarTree* raw = tree.get();
  seq_trees_.emplace(store_key, std::move(tree));
  return raw;
}

namespace {

/// Copies a completed shard plan into the report's shard section. The
/// attributed/modeled per-shard stats ride along in plan.shards.
void FillShardReport(ShardPlan&& plan, JoinReport* report) {
  report->shards = plan.num_shards;
  report->shard_cut_weight = plan.cut_weight;
  report->shard_sharing_weight = plan.sharing_weight;
  report->shard_replicated_pages = plan.replicated_pages;
  report->shard_distinct_pages = plan.distinct_pages;
  report->shard_balance_ratio = plan.balance_ratio;
  report->shard_stats = std::move(plan.shards);
}

/// Closes the shard ledger once report->io/ops hold the run totals:
/// the unattributed remainder is totals minus the summed per-shard
/// charges. Every charge is a delta of the same monotone counters the
/// totals are, so the subtraction is exact and non-negative.
void FinalizeShardLedger(JoinReport* report) {
  if (report->shards <= 1) return;
  IoStats attributed_io;
  OpCounters attributed_ops;
  for (const ShardStats& s : report->shard_stats) {
    attributed_io += s.io;
    attributed_ops += s.ops;
  }
  report->shard_unattributed_io = report->io.Delta(attributed_io);
  report->shard_unattributed_ops = report->ops.Delta(attributed_ops);
}

/// Runs one matrix-based algorithm (NLJ uses the matrix as a result-free
/// oracle only; see BlockNlj). `external_pool`, when non-null, replaces
/// the private per-run pool so callers (the join server) can carry page
/// residency across runs; it must have capacity >= options.buffer_pages.
/// For the clustered engines with options.shards > 1, execution goes
/// through the shard coordinator and `report`'s shard section is filled
/// (num_clusters is set either way).
Status RunMatrixAlgorithm(const JoinInput& input,
                          const PredictionMatrix& matrix,
                          const JoinOptions& options, const DiskModel& model,
                          StorageBackend* disk, PairSink* sink,
                          OpCounters* ops, JoinReport* report,
                          BufferPool* external_pool) {
  std::unique_ptr<BufferPool> owned;
  BufferPool* pool_ptr = external_pool;
  if (pool_ptr == nullptr) {
    owned = std::make_unique<BufferPool>(disk, options.buffer_pages);
    pool_ptr = owned.get();
  }
  BufferPool& pool = *pool_ptr;
  switch (options.algorithm) {
    case Algorithm::kNlj: {
      PMJOIN_SPAN_OPS("block_nlj", ops);
      return BlockNlj(input, &pool, sink, ops, &matrix);
    }
    case Algorithm::kPmNlj:
      return PmNlj(input, matrix, &pool, sink, ops);
    case Algorithm::kRandomSc:
    case Algorithm::kSc:
    case Algorithm::kCc: {
      std::vector<Cluster> clusters;
      if (options.algorithm == Algorithm::kCc) {
        Rng rng(options.seed);
        clusters =
            CostClustering(matrix, options.buffer_pages, model,
                           options.cc_histogram_resolution, &rng, ops);
      } else {
        clusters = SquareClustering(matrix, options.buffer_pages, ops);
        // Phase boundary (paranoid builds): SC output must satisfy the
        // Theorem 2 / Lemma 2 shape guarantees before execution.
        PMJOIN_DCHECK_OK(
            ValidateSquareClusters(matrix, clusters, options.buffer_pages));
      }
      // Phase boundary (paranoid builds): whichever algorithm produced the
      // clustering, every marked entry must be assigned exactly once and
      // every cluster must fit the buffer (Lemma 2).
      PMJOIN_DCHECK_OK(
          ValidateClustering(matrix, clusters, options.buffer_pages));
      report->num_clusters = clusters.size();
      PMJOIN_METRIC_GAUGE_SET("executor.clusters",
                              static_cast<int64_t>(clusters.size()));

      std::vector<uint32_t> order;
      if (options.algorithm == Algorithm::kRandomSc) {
        order.resize(clusters.size());
        std::iota(order.begin(), order.end(), 0u);
        Rng rng(options.seed);
        rng.Shuffle(order);
      } else if (options.schedule_clusters) {
        order = ScheduleClusters(clusters, input, ops);
      } else {
        order.resize(clusters.size());
        std::iota(order.begin(), order.end(), 0u);
      }
      ExecutorOptions exec_options;
      exec_options.num_threads = options.num_threads;
      exec_options.io_threads = options.io_threads;
      if (options.shards <= 1)
        return ExecuteClusteredJoin(input, clusters, order, &pool, sink, ops,
                                    exec_options);
      // Shard-aware path: one worker pool serves both the executor's
      // entry joins and the coordinator's isolated shard replays.
      std::optional<ThreadPool> shard_workers;
      if (options.num_threads > 1) {
        shard_workers.emplace(options.num_threads);
        exec_options.thread_pool = &*shard_workers;
      }
      ShardPlan plan;
      PMJOIN_RETURN_IF_ERROR(ExecuteShardedJoin(
          input, clusters, order, &pool, sink, ops, exec_options,
          options.shards, options.buffer_pages,
          shard_workers ? &*shard_workers : nullptr, &plan));
      FillShardReport(std::move(plan), report);
      return Status::OK();
    }
    case Algorithm::kEgo:
    case Algorithm::kBfrj:
    case Algorithm::kPbsm:
      return Status::Internal("not a matrix algorithm");
    case Algorithm::kKnn:
      return Status::Internal("kNN is served by RunKnnJoin, not an ε-join");
  }
  return Status::Internal("unknown algorithm");
}

}  // namespace

Result<JoinReport> JoinDriver::RunVector(const VectorDataset& r,
                                         const VectorDataset& s, double eps,
                                         const JoinOptions& options,
                                         PairSink* sink) {
  return RunVector(r, s, eps, options, sink, JoinResources());
}

Result<JoinReport> JoinDriver::RunVector(const VectorDataset& r,
                                         const VectorDataset& s, double eps,
                                         const JoinOptions& options,
                                         PairSink* sink,
                                         const JoinResources& resources) {
  if (r.dims() != s.dims())
    return Status::InvalidArgument("RunVector: dimension mismatch");
  if (options.algorithm == Algorithm::kKnn)
    return Status::InvalidArgument(
        "RunVector: kNN is a separate query type (RunKnnJoin)");
  const bool matrix_algorithm = options.algorithm == Algorithm::kNlj ||
                                options.algorithm == Algorithm::kPmNlj ||
                                options.algorithm == Algorithm::kRandomSc ||
                                options.algorithm == Algorithm::kSc ||
                                options.algorithm == Algorithm::kCc;
  if (!matrix_algorithm &&
      (resources.matrix != nullptr || resources.shared_pool != nullptr))
    return Status::InvalidArgument(
        "RunVector: cached resources supplied for a non-matrix algorithm");
  if (resources.shared_pool != nullptr &&
      resources.shared_pool->capacity() < options.buffer_pages)
    return Status::InvalidArgument(
        "RunVector: shared pool smaller than options.buffer_pages");
  const bool self = &r == &s;
  VectorPairJoiner joiner(&r, &s, eps, options.norm, self);
  JoinInput input;
  input.r_file = r.file_id();
  input.s_file = s.file_id();
  input.r_pages = r.num_pages();
  input.s_pages = s.num_pages();
  input.self_join = self;
  input.joiner = &joiner;

  const IoStats io_before = disk_->stats();
  OpCounters ops;
  JoinReport report;
  report.algorithm = options.algorithm;
  PMJOIN_SPAN_OPS("join", &ops);

  Status st;
  if (options.algorithm == Algorithm::kEgo) {
    PMJOIN_SPAN_OPS("ego", &ops);
    BufferPool pool(disk_, options.buffer_pages);
    st = EgoJoinVectors(r, s, self, eps, options.norm, disk_, &pool, sink,
                        &ops);
  } else if (options.algorithm == Algorithm::kBfrj) {
    if (!r.tree().file_id().has_value() || !s.tree().file_id().has_value())
      return Status::InvalidArgument(
          "BFRJ: dataset trees lack node files (rebuild datasets)");
    PMJOIN_SPAN_OPS("bfrj", &ops);
    BufferPool pool(disk_, options.buffer_pages);
    st = BfrjJoin(r.tree(), s.tree(), input, eps, options.norm,
                  options.page_size_bytes, disk_, &pool, sink, &ops);
  } else if (options.algorithm == Algorithm::kPbsm) {
    PMJOIN_SPAN_OPS("pbsm", &ops);
    BufferPool pool(disk_, options.buffer_pages);
    st = PbsmJoinVectors(r, s, self, eps, options.norm, disk_, &pool, sink,
                         &ops);
  } else {
    // Oracle for NLJ is built uncharged; pm algorithms charge the build.
    OpCounters* build_ops =
        options.algorithm == Algorithm::kNlj ? nullptr : &ops;
    std::optional<PredictionMatrix> built;
    const PredictionMatrix* matrix = resources.matrix;
    if (matrix == nullptr) {
      built = options.hierarchical_matrix
                  ? BuildPredictionMatrixHierarchical(
                        r.tree(), s.tree(), r.num_pages(), s.num_pages(),
                        eps, options.norm, options.filter_iterations,
                        build_ops)
                  : BuildPredictionMatrixFlat(r.page_mbrs(), s.page_mbrs(),
                                              eps, options.norm, build_ops);
      matrix = &*built;
    } else if (build_ops != nullptr &&
               resources.matrix_build_ops != nullptr) {
      // Replay the memoized build's counters so a cache hit reports the
      // identical modeled CPU cost as a cold run (kNlj replays nothing:
      // its oracle build is uncharged either way).
      *build_ops += *resources.matrix_build_ops;
    }
    report.marked_entries = matrix->MarkedCount();
    report.matrix_rows = matrix->rows();
    report.matrix_cols = matrix->cols();
    report.matrix_selectivity = matrix->Selectivity();
    // Phase boundary (paranoid builds): whether freshly built or memoized,
    // the matrix must be finalized and structurally sound before any
    // operator consumes it.
    PMJOIN_DCHECK_OK(matrix->ValidateInvariants());
    st = RunMatrixAlgorithm(input, *matrix, options, disk_->model(), disk_,
                            sink, &ops, &report, resources.shared_pool);
  }
  if (!st.ok()) return st;

  report.io = disk_->stats().Delta(io_before);
  report.ops = ops;
  report.io_seconds = report.io.ModeledSeconds(disk_->model());
  report.cpu_join_seconds = cpu_model_.JoinSeconds(ops);
  report.preprocess_seconds = cpu_model_.PreprocessSeconds(ops);
  report.result_pairs = ops.result_pairs;
  FinalizeShardLedger(&report);
  return report;
}

Result<JoinReport> JoinDriver::RunKnnJoin(const VectorDataset& r,
                                          const VectorDataset& s, uint32_t k,
                                          const JoinOptions& options,
                                          PairSink* sink) {
  return RunKnnJoin(r, s, k, options, sink, JoinResources());
}

Result<JoinReport> JoinDriver::RunKnnJoin(const VectorDataset& r,
                                          const VectorDataset& s, uint32_t k,
                                          const JoinOptions& options,
                                          PairSink* sink,
                                          const JoinResources& resources) {
  if (r.dims() != s.dims())
    return Status::InvalidArgument("RunKnnJoin: dimension mismatch");
  if (k == 0) return Status::InvalidArgument("RunKnnJoin: k must be >= 1");
  if (resources.matrix != nullptr)
    return Status::InvalidArgument(
        "RunKnnJoin: an ε prediction matrix is not a kNN artifact");
  if (resources.shared_pool != nullptr &&
      resources.shared_pool->capacity() < options.buffer_pages)
    return Status::InvalidArgument(
        "RunKnnJoin: shared pool smaller than options.buffer_pages");

  const IoStats io_before = disk_->stats();
  OpCounters ops;
  JoinReport report;
  report.algorithm = Algorithm::kKnn;
  PMJOIN_SPAN_OPS("join", &ops);

  std::optional<KnnCandidateMatrix> built;
  const KnnCandidateMatrix* matrix = resources.knn_matrix;
  if (matrix == nullptr) {
    PMJOIN_SPAN_OPS("knn_matrix", &ops);
    built = KnnCandidateMatrix::Build(r.page_mbrs(), s.page_mbrs(),
                                      options.norm, &ops);
    matrix = &*built;
  } else if (resources.knn_matrix_build_ops != nullptr) {
    // Same warm == cold convention as the ε matrices: replay the memoized
    // build's counters so a cache hit reports identical modeled CPU cost.
    ops += *resources.knn_matrix_build_ops;
  }
  report.matrix_rows = matrix->rows();
  report.matrix_cols = matrix->cols();
  // Phase boundary (paranoid builds): whether freshly built or memoized,
  // every candidate row must be complete and sorted before expansion.
  PMJOIN_DCHECK_OK(matrix->ValidateInvariants());
  PMJOIN_METRIC_GAUGE_SET("knn.k", static_cast<int64_t>(k));

  KnnJoinOptions knn_options;
  knn_options.k = k;
  knn_options.norm = options.norm;
  knn_options.self_join = &r == &s;
  knn_options.num_threads = options.num_threads;

  // Shard-aware path: each R page's expansion is one ownership unit (its
  // page plus the candidate prefix it is most likely to pin), partitioned
  // with the same planner as the clustered engines. The expansion itself
  // stays single-node — the adaptive bounds make the page schedule
  // data-dependent, so there is no precomputable per-shard replay and
  // modeled_io stays zero; the ledger covers the attributed charges.
  ShardPlan plan;
  std::vector<ClusterCharge> page_charges;
  if (options.shards > 1) {
    JoinInput knn_input;
    knn_input.r_file = r.file_id();
    knn_input.s_file = s.file_id();
    knn_input.r_pages = r.num_pages();
    knn_input.s_pages = s.num_pages();
    knn_input.self_join = knn_options.self_join;
    const std::vector<Cluster> units =
        KnnOwnershipClusters(*matrix, options.buffer_pages);
    {
      PMJOIN_SPAN("shard_plan");
      plan = PlanShards(units, knn_input, options.shards);
    }
    page_charges.resize(r.num_pages());
    knn_options.page_charges = &page_charges;
  }

  std::unique_ptr<BufferPool> owned;
  BufferPool* pool = resources.shared_pool;
  if (pool == nullptr) {
    owned = std::make_unique<BufferPool>(disk_, options.buffer_pages);
    pool = owned.get();
  }
  std::unique_ptr<ThreadPool> workers;
  if (options.num_threads > 1)
    workers = std::make_unique<ThreadPool>(options.num_threads);

  KnnResultSink results(r.num_records(), k);
  Status st = KnnJoinVectors(r, s, *matrix, knn_options, pool, &results,
                             &ops, workers.get());
  if (!st.ok()) return st;
  results.Emit(sink, &ops);

  if (options.shards > 1) {
    AttributeCharges(page_charges, &plan);
    FillShardReport(std::move(plan), &report);
  }

  report.io = disk_->stats().Delta(io_before);
  report.ops = ops;
  report.io_seconds = report.io.ModeledSeconds(disk_->model());
  report.cpu_join_seconds = cpu_model_.JoinSeconds(ops);
  report.preprocess_seconds = cpu_model_.PreprocessSeconds(ops);
  report.result_pairs = ops.result_pairs;
  FinalizeShardLedger(&report);
  return report;
}

Result<JoinReport> JoinDriver::RunTimeSeries(const TimeSeriesStore& r,
                                             const TimeSeriesStore& s,
                                             double eps,
                                             const JoinOptions& options,
                                             PairSink* sink) {
  if (r.layout().window_len != s.layout().window_len)
    return Status::InvalidArgument("RunTimeSeries: window length mismatch");
  if (options.algorithm == Algorithm::kPbsm)
    return Status::Unimplemented(
        "PBSM requires in-place partitioning; sequence data cannot be "
        "reordered (paper 3)");
  const bool self = &r == &s;
  TimeSeriesPairJoiner joiner(&r, &s, eps, self);
  JoinInput input;
  input.r_file = r.file_id();
  input.s_file = s.file_id();
  input.r_pages = r.layout().NumPages();
  input.s_pages = s.layout().NumPages();
  input.self_join = self;
  input.joiner = &joiner;

  const IoStats io_before = disk_->stats();
  OpCounters ops;
  JoinReport report;
  report.algorithm = options.algorithm;
  PMJOIN_SPAN_OPS("join", &ops);

  Status st;
  if (options.algorithm == Algorithm::kEgo) {
    PMJOIN_SPAN_OPS("ego", &ops);
    BufferPool pool(disk_, options.buffer_pages);
    st = EgoJoinTimeSeries(r, s, self, eps, disk_, &pool, sink, &ops);
  } else if (options.algorithm == Algorithm::kBfrj) {
    PMJOIN_SPAN_OPS("bfrj", &ops);
    const RStarTree* rt = SequencePageTree(&r, r.page_mbrs());
    const RStarTree* stree =
        self ? rt : SequencePageTree(&s, s.page_mbrs());
    BufferPool pool(disk_, options.buffer_pages);
    st = BfrjJoin(*rt, *stree, input, joiner.MatrixThreshold(), Norm::kL2,
                  options.page_size_bytes, disk_, &pool, sink, &ops);
  } else {
    OpCounters* build_ops =
        options.algorithm == Algorithm::kNlj ? nullptr : &ops;
    PredictionMatrix matrix =
        options.hierarchical_matrix
            ? BuildPredictionMatrixHierarchical(
                  *SequencePageTree(&r, r.page_mbrs()),
                  self ? *SequencePageTree(&r, r.page_mbrs())
                       : *SequencePageTree(&s, s.page_mbrs()),
                  input.r_pages, input.s_pages, joiner.MatrixThreshold(),
                  Norm::kL2, options.filter_iterations, build_ops)
            : BuildPredictionMatrixFlat(r.page_mbrs(), s.page_mbrs(),
                                        joiner.MatrixThreshold(), Norm::kL2,
                                        build_ops);
    report.marked_entries = matrix.MarkedCount();
    report.matrix_rows = matrix.rows();
    report.matrix_cols = matrix.cols();
    report.matrix_selectivity = matrix.Selectivity();
    // Phase boundary (paranoid builds): the freshly built matrix must be
    // finalized and structurally sound before any operator consumes it.
    PMJOIN_DCHECK_OK(matrix.ValidateInvariants());
    st = RunMatrixAlgorithm(input, matrix, options, disk_->model(), disk_,
                            sink, &ops, &report, nullptr);
  }
  if (!st.ok()) return st;

  report.io = disk_->stats().Delta(io_before);
  report.ops = ops;
  report.io_seconds = report.io.ModeledSeconds(disk_->model());
  report.cpu_join_seconds = cpu_model_.JoinSeconds(ops);
  report.preprocess_seconds = cpu_model_.PreprocessSeconds(ops);
  report.result_pairs = ops.result_pairs;
  FinalizeShardLedger(&report);
  return report;
}

Result<JoinReport> JoinDriver::RunString(const StringSequenceStore& r,
                                         const StringSequenceStore& s,
                                         uint32_t max_edits,
                                         const JoinOptions& options,
                                         PairSink* sink) {
  if (r.layout().window_len != s.layout().window_len)
    return Status::InvalidArgument("RunString: window length mismatch");
  if (options.algorithm == Algorithm::kPbsm)
    return Status::Unimplemented(
        "PBSM requires in-place partitioning; sequence data cannot be "
        "reordered (paper 3)");
  const bool self = &r == &s;
  StringPairJoiner joiner(&r, &s, max_edits, self);
  JoinInput input;
  input.r_file = r.file_id();
  input.s_file = s.file_id();
  input.r_pages = r.layout().NumPages();
  input.s_pages = s.layout().NumPages();
  input.self_join = self;
  input.joiner = &joiner;

  const IoStats io_before = disk_->stats();
  OpCounters ops;
  JoinReport report;
  report.algorithm = options.algorithm;
  PMJOIN_SPAN_OPS("join", &ops);

  Status st;
  if (options.algorithm == Algorithm::kEgo) {
    PMJOIN_SPAN_OPS("ego", &ops);
    BufferPool pool(disk_, options.buffer_pages);
    st = EgoJoinStrings(r, s, self, max_edits, disk_, &pool, sink, &ops);
  } else if (options.algorithm == Algorithm::kBfrj) {
    PMJOIN_SPAN_OPS("bfrj", &ops);
    const RStarTree* rt = SequencePageTree(&r, r.page_mbrs());
    const RStarTree* stree =
        self ? rt : SequencePageTree(&s, s.page_mbrs());
    BufferPool pool(disk_, options.buffer_pages);
    st = BfrjJoin(*rt, *stree, input, joiner.MatrixThreshold(), Norm::kL1,
                  options.page_size_bytes, disk_, &pool, sink, &ops);
  } else {
    OpCounters* build_ops =
        options.algorithm == Algorithm::kNlj ? nullptr : &ops;
    PredictionMatrix matrix =
        options.hierarchical_matrix
            ? BuildPredictionMatrixHierarchical(
                  *SequencePageTree(&r, r.page_mbrs()),
                  self ? *SequencePageTree(&r, r.page_mbrs())
                       : *SequencePageTree(&s, s.page_mbrs()),
                  input.r_pages, input.s_pages, joiner.MatrixThreshold(),
                  Norm::kL1, options.filter_iterations, build_ops)
            : BuildPredictionMatrixFlat(r.page_mbrs(), s.page_mbrs(),
                                        joiner.MatrixThreshold(), Norm::kL1,
                                        build_ops);
    report.marked_entries = matrix.MarkedCount();
    report.matrix_rows = matrix.rows();
    report.matrix_cols = matrix.cols();
    report.matrix_selectivity = matrix.Selectivity();
    // Phase boundary (paranoid builds): the freshly built matrix must be
    // finalized and structurally sound before any operator consumes it.
    PMJOIN_DCHECK_OK(matrix.ValidateInvariants());
    st = RunMatrixAlgorithm(input, matrix, options, disk_->model(), disk_,
                            sink, &ops, &report, nullptr);
  }
  if (!st.ok()) return st;

  report.io = disk_->stats().Delta(io_before);
  report.ops = ops;
  report.io_seconds = report.io.ModeledSeconds(disk_->model());
  report.cpu_join_seconds = cpu_model_.JoinSeconds(ops);
  report.preprocess_seconds = cpu_model_.PreprocessSeconds(ops);
  report.result_pairs = ops.result_pairs;
  FinalizeShardLedger(&report);
  return report;
}

}  // namespace pmjoin
