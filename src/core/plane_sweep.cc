#include "core/plane_sweep.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/span.h"

namespace pmjoin {
namespace {

/// True iff every per-dimension gap between the boxes is <= threshold —
/// i.e. the boxes, each extended by threshold/2, intersect. A necessary
/// condition for MINDIST <= threshold under any Lp norm.
bool GapWithin(const Mbr& a, const Mbr& b, double threshold) {
  for (size_t d = 0; d < a.dims(); ++d) {
    const double gap = std::max(
        {0.0, double(a.lo(d)) - b.hi(d), double(b.lo(d)) - a.hi(d)});
    if (gap > threshold) return false;
  }
  return true;
}

struct Endpoint {
  float x = 0;
  /// 0 = start, 1 = end; starts sort before ends at equal x so touching
  /// intervals are treated as overlapping (closed intervals).
  uint8_t kind = 0;
  /// 0 = R set, 1 = S set.
  uint8_t set = 0;
  uint32_t index = 0;  // Index into the item span.
};

}  // namespace

void SweepPairs(std::span<const SweepItem> r, std::span<const SweepItem> s,
                double threshold, Norm norm, OpCounters* ops,
                const std::function<void(const SweepItem&,
                                         const SweepItem&)>& emit) {
  if (r.empty() || s.empty()) return;
  PMJOIN_METRIC_COUNT("plane_sweep.sweeps", 1);
  PMJOIN_METRIC_COUNT("plane_sweep.items", r.size() + s.size());
  const float half = static_cast<float>(threshold / 2.0);

  std::vector<Endpoint> events;
  events.reserve(2 * (r.size() + s.size()));
  for (uint32_t i = 0; i < r.size(); ++i) {
    events.push_back(Endpoint{r[i].box.lo(0) - half, 0, 0, i});
    events.push_back(Endpoint{r[i].box.hi(0) + half, 1, 0, i});
  }
  for (uint32_t j = 0; j < s.size(); ++j) {
    events.push_back(Endpoint{s[j].box.lo(0) - half, 0, 1, j});
    events.push_back(Endpoint{s[j].box.hi(0) + half, 1, 1, j});
  }
  std::sort(events.begin(), events.end(),
            [](const Endpoint& a, const Endpoint& b) {
              if (a.x != b.x) return a.x < b.x;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.set != b.set) return a.set < b.set;
              return a.index < b.index;
            });

  // Active lists with O(1) removal (swap-pop via position maps).
  std::vector<uint32_t> active_r, active_s;
  std::vector<uint32_t> pos_r(r.size(), UINT32_MAX),
      pos_s(s.size(), UINT32_MAX);

  auto activate = [](std::vector<uint32_t>& act, std::vector<uint32_t>& pos,
                     uint32_t idx) {
    pos[idx] = static_cast<uint32_t>(act.size());
    act.push_back(idx);
  };
  auto deactivate = [](std::vector<uint32_t>& act, std::vector<uint32_t>& pos,
                       uint32_t idx) {
    const uint32_t p = pos[idx];
    act[p] = act.back();
    pos[act.back()] = p;
    act.pop_back();
    pos[idx] = UINT32_MAX;
  };

  for (const Endpoint& e : events) {
    if (e.kind == 1) {
      if (e.set == 0) {
        deactivate(active_r, pos_r, e.index);
      } else {
        deactivate(active_s, pos_s, e.index);
      }
      continue;
    }
    if (e.set == 0) {
      const SweepItem& item = r[e.index];
      for (uint32_t j : active_s) {
        if (ops != nullptr) ++ops->mbr_tests;
        if (!GapWithin(item.box, s[j].box, threshold)) continue;
        if (!item.box.MinDistWithin(s[j].box, norm, threshold)) continue;
        emit(item, s[j]);
      }
      activate(active_r, pos_r, e.index);
    } else {
      const SweepItem& item = s[e.index];
      for (uint32_t i : active_r) {
        if (ops != nullptr) ++ops->mbr_tests;
        if (!GapWithin(r[i].box, item.box, threshold)) continue;
        if (!r[i].box.MinDistWithin(item.box, norm, threshold)) continue;
        emit(r[i], item);
      }
      activate(active_s, pos_s, e.index);
    }
  }
}

void FilterChildren(std::span<const SweepItem> r,
                    std::span<const SweepItem> s, double threshold,
                    uint32_t max_iterations, OpCounters* ops,
                    std::vector<uint32_t>* r_survivors,
                    std::vector<uint32_t>* s_survivors) {
  r_survivors->clear();
  s_survivors->clear();
  if (r.empty() || s.empty()) return;
  const float half = static_cast<float>(threshold / 2.0);
  const size_t dims = r[0].box.dims();

  // Work in extended space: all boxes grown by threshold/2, so "within
  // threshold" becomes plain intersection.
  std::vector<Mbr> er, es;
  er.reserve(r.size());
  es.reserve(s.size());
  for (const SweepItem& it : r) er.push_back(it.box.Extended(half));
  for (const SweepItem& it : s) es.push_back(it.box.Extended(half));

  std::vector<uint32_t> alive_r(r.size()), alive_s(s.size());
  for (uint32_t i = 0; i < r.size(); ++i) alive_r[i] = i;
  for (uint32_t j = 0; j < s.size(); ++j) alive_s[j] = j;

  // I: intersection of the two extended covers.
  Mbr cover_r(dims), cover_s(dims);
  for (const Mbr& b : er) cover_r.Expand(b);
  for (const Mbr& b : es) cover_s.Expand(b);
  Mbr region = cover_r.Intersection(cover_s);
  if (region.empty()) return;

  for (uint32_t iter = 0; iter < max_iterations; ++iter) {
    // B_R = cover of (extended R_i ∩ region); B_S likewise; B_RS = B_R ∩ B_S.
    Mbr br(dims), bs(dims);
    for (uint32_t i : alive_r) {
      const Mbr clipped = er[i].Intersection(region);
      if (ops != nullptr) ++ops->mbr_tests;
      if (!clipped.empty()) br.Expand(clipped);
    }
    for (uint32_t j : alive_s) {
      const Mbr clipped = es[j].Intersection(region);
      if (ops != nullptr) ++ops->mbr_tests;
      if (!clipped.empty()) bs.Expand(clipped);
    }
    if (br.empty() || bs.empty()) {
      alive_r.clear();
      alive_s.clear();
      break;
    }
    const Mbr brs = br.Intersection(bs);
    if (brs.empty()) {
      alive_r.clear();
      alive_s.clear();
      break;
    }

    size_t before = alive_r.size() + alive_s.size();
    std::vector<uint32_t> next_r, next_s;
    next_r.reserve(alive_r.size());
    next_s.reserve(alive_s.size());
    for (uint32_t i : alive_r) {
      if (ops != nullptr) ++ops->mbr_tests;
      if (er[i].Intersects(brs)) next_r.push_back(i);
    }
    for (uint32_t j : alive_s) {
      if (ops != nullptr) ++ops->mbr_tests;
      if (es[j].Intersects(brs)) next_s.push_back(j);
    }
    alive_r = std::move(next_r);
    alive_s = std::move(next_s);
    region = brs;
    if (alive_r.empty() || alive_s.empty()) break;
    if (alive_r.size() + alive_s.size() == before &&
        region == brs && iter > 0) {
      break;  // Fixpoint.
    }
  }

  *r_survivors = std::move(alive_r);
  *s_survivors = std::move(alive_s);
}

PredictionMatrix BuildPredictionMatrixFlat(const std::vector<Mbr>& r_pages,
                                           const std::vector<Mbr>& s_pages,
                                           double threshold, Norm norm,
                                           OpCounters* ops) {
  PMJOIN_SPAN_OPS("matrix_build", ops);
  PredictionMatrix matrix(static_cast<uint32_t>(r_pages.size()),
                          static_cast<uint32_t>(s_pages.size()));
  std::vector<SweepItem> r, s;
  r.reserve(r_pages.size());
  s.reserve(s_pages.size());
  for (uint32_t i = 0; i < r_pages.size(); ++i)
    r.push_back(SweepItem{r_pages[i], i});
  for (uint32_t j = 0; j < s_pages.size(); ++j)
    s.push_back(SweepItem{s_pages[j], j});
  SweepPairs(r, s, threshold, norm, ops,
             [&matrix](const SweepItem& a, const SweepItem& b) {
               matrix.Mark(a.id, b.id);
             });
  matrix.Finalize();
  PMJOIN_METRIC_GAUGE_SET("matrix.marked_entries",
                          static_cast<int64_t>(matrix.MarkedCount()));
  return matrix;
}

namespace {

/// Recursion driver for the hierarchical construction.
class HierarchicalBuilder {
 public:
  HierarchicalBuilder(const RStarTree& rt, const RStarTree& st,
                      double threshold, Norm norm, uint32_t filter_iters,
                      OpCounters* ops, PredictionMatrix* matrix)
      : rt_(rt),
        st_(st),
        threshold_(threshold),
        norm_(norm),
        filter_iters_(filter_iters),
        ops_(ops),
        matrix_(matrix) {}

  void Run() {
    if (rt_.empty() || st_.empty()) return;
    if (ops_ != nullptr) ++ops_->mbr_tests;
    if (!rt_.node(rt_.root())
             .mbr.MinDistWithin(st_.node(st_.root()).mbr, norm_,
                                threshold_)) {
      return;
    }
    NodePair(rt_.root(), st_.root());
  }

 private:
  void NodePair(uint32_t rn, uint32_t sn) {
    const RStarTree::Node& a = rt_.node(rn);
    const RStarTree::Node& b = st_.node(sn);

    // Height alignment: descend the deeper side alone until levels match.
    if (a.level > b.level) {
      for (const RStarTree::Entry& e : a.entries) {
        if (ops_ != nullptr) ++ops_->mbr_tests;
        if (e.mbr.MinDistWithin(b.mbr, norm_, threshold_))
          NodePair(e.id, sn);
      }
      return;
    }
    if (b.level > a.level) {
      for (const RStarTree::Entry& e : b.entries) {
        if (ops_ != nullptr) ++ops_->mbr_tests;
        if (a.mbr.MinDistWithin(e.mbr, norm_, threshold_))
          NodePair(rn, e.id);
      }
      return;
    }

    // Same level: filter the two child sets (Fig. 2), then sweep.
    std::vector<SweepItem> r_items, s_items;
    r_items.reserve(a.entries.size());
    s_items.reserve(b.entries.size());
    for (const RStarTree::Entry& e : a.entries)
      r_items.push_back(SweepItem{e.mbr, e.id});
    for (const RStarTree::Entry& e : b.entries)
      s_items.push_back(SweepItem{e.mbr, e.id});

    std::vector<uint32_t> keep_r, keep_s;
    FilterChildren(r_items, s_items, threshold_, filter_iters_, ops_,
                   &keep_r, &keep_s);
    if (keep_r.empty() || keep_s.empty()) return;

    std::vector<SweepItem> fr, fs;
    fr.reserve(keep_r.size());
    fs.reserve(keep_s.size());
    for (uint32_t i : keep_r) fr.push_back(r_items[i]);
    for (uint32_t j : keep_s) fs.push_back(s_items[j]);

    const bool leaves = a.IsLeaf();  // == b.IsLeaf() at equal level 0.
    SweepPairs(fr, fs, threshold_, norm_, ops_,
               [this, leaves](const SweepItem& x, const SweepItem& y) {
                 if (leaves) {
                   matrix_->Mark(x.id, y.id);
                 } else {
                   NodePair(x.id, y.id);
                 }
               });
  }

  const RStarTree& rt_;
  const RStarTree& st_;
  double threshold_;
  Norm norm_;
  uint32_t filter_iters_;
  OpCounters* ops_;
  PredictionMatrix* matrix_;
};

}  // namespace

PredictionMatrix BuildPredictionMatrixHierarchical(
    const RStarTree& r_tree, const RStarTree& s_tree, uint32_t r_page_count,
    uint32_t s_page_count, double threshold, Norm norm,
    uint32_t filter_iterations, OpCounters* ops) {
  PMJOIN_SPAN_OPS("matrix_build", ops);
  PredictionMatrix matrix(r_page_count, s_page_count);
  HierarchicalBuilder builder(r_tree, s_tree, threshold, norm,
                              filter_iterations, ops, &matrix);
  builder.Run();
  matrix.Finalize();
  PMJOIN_METRIC_GAUGE_SET("matrix.marked_entries",
                          static_cast<int64_t>(matrix.MarkedCount()));
  return matrix;
}

}  // namespace pmjoin
