#include "core/scheduler.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/span.h"

namespace pmjoin {
namespace {

/// Union-find with path compression (cycle detection for the greedy path).
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(uint32_t a, uint32_t b) {
    const uint32_t ra = Find(a);
    const uint32_t rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

std::vector<SharingEdge> BuildSharingGraph(
    const std::vector<Cluster>& clusters, const JoinInput& input,
    OpCounters* ops) {
  // Inverted index: page -> clusters that need it.
  std::unordered_map<uint64_t, std::vector<uint32_t>> page_clusters;
  for (uint32_t i = 0; i < clusters.size(); ++i) {
    for (const PageId& pid : ClusterPageSet(clusters[i], input)) {
      page_clusters[(uint64_t(pid.file) << 32) | pid.page].push_back(i);
      if (ops != nullptr) ++ops->cluster_ops;
    }
  }
  // Accumulate co-occurrence weights.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> weights;
  for (const auto& [page, owners] : page_clusters) {
    for (size_t x = 0; x < owners.size(); ++x) {
      for (size_t y = x + 1; y < owners.size(); ++y) {
        ++weights[{owners[x], owners[y]}];
        if (ops != nullptr) ++ops->cluster_ops;
      }
    }
  }
  std::vector<SharingEdge> edges;
  edges.reserve(weights.size());
  for (const auto& [key, w] : weights) {
    edges.push_back(SharingEdge{key.first, key.second, w});
  }
  return edges;
}

std::vector<uint32_t> ScheduleClusters(const std::vector<Cluster>& clusters,
                                       const JoinInput& input,
                                       OpCounters* ops) {
  PMJOIN_SPAN_OPS("schedule_clusters", ops);
  const uint32_t n = static_cast<uint32_t>(clusters.size());
  std::vector<uint32_t> order;
  if (n == 0) return order;
  if (n == 1) return {0};

  std::vector<SharingEdge> edges = BuildSharingGraph(clusters, input, ops);
  PMJOIN_METRIC_GAUGE_SET("scheduler.sharing_edges",
                          static_cast<int64_t>(edges.size()));
  // Greedy: heaviest edge first; ties broken by (a, b) for determinism.
  std::sort(edges.begin(), edges.end(),
            [](const SharingEdge& x, const SharingEdge& y) {
              if (x.weight != y.weight) return x.weight > y.weight;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });

  UnionFind uf(n);
  std::vector<uint32_t> degree(n, 0);
  std::vector<std::vector<uint32_t>> adjacent(n);
  for (const SharingEdge& e : edges) {
    if (degree[e.a] >= 2 || degree[e.b] >= 2) continue;
    if (!uf.Union(e.a, e.b)) continue;  // Would close a cycle.
    ++degree[e.a];
    ++degree[e.b];
    adjacent[e.a].push_back(e.b);
    adjacent[e.b].push_back(e.a);
    if (ops != nullptr) ++ops->cluster_ops;
  }

  // Walk each path from an endpoint (degree <= 1); isolated vertices are
  // their own paths. Components are emitted in ascending endpoint order.
  std::vector<bool> visited(n, false);
  order.reserve(n);
  for (uint32_t start = 0; start < n; ++start) {
    if (visited[start] || degree[start] > 1) continue;
    uint32_t current = start;
    uint32_t previous = UINT32_MAX;
    while (true) {
      visited[current] = true;
      order.push_back(current);
      uint32_t next = UINT32_MAX;
      for (uint32_t nb : adjacent[current]) {
        if (nb != previous && !visited[nb]) {
          next = nb;
          break;
        }
      }
      if (next == UINT32_MAX) break;
      previous = current;
      current = next;
    }
  }
  return order;
}

}  // namespace pmjoin
