#ifndef PMJOIN_CORE_PLANE_SWEEP_H_
#define PMJOIN_CORE_PLANE_SWEEP_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/op_counters.h"
#include "core/prediction_matrix.h"
#include "geom/mbr.h"
#include "index/rstar_tree.h"

namespace pmjoin {

/// A box with a caller-defined id (page or node), the unit of the sweep.
struct SweepItem {
  Mbr box;
  uint32_t id = 0;
};

/// Plane sweep over two box sets: invokes `emit(r, s)` for every pair whose
/// per-dimension gap is <= `threshold` in every dimension *and* whose exact
/// MINDIST under `norm` is <= `threshold`.
///
/// This is the candidate-pair engine of the prediction-matrix construction
/// (Fig. 1 step 5): endpoints (extended by threshold/2) are processed in
/// ascending first-coordinate order with active lists for both sets.
/// `ops->mbr_tests` counts box-pair tests.
void SweepPairs(std::span<const SweepItem> r, std::span<const SweepItem> s,
                double threshold, Norm norm, OpCounters* ops,
                const std::function<void(const SweepItem&,
                                         const SweepItem&)>& emit);

/// The paper's iterative MBR filter (Fig. 2), applied to the child sets of
/// a node pair before sweeping them: children that cannot participate in
/// any pair within `threshold` are removed. Runs at most `max_iterations`
/// rounds (the paper uses k = 5) or until a fixpoint. Returns the indices
/// (into `r` / `s`) of the surviving items.
///
/// Correctness: an (r_i, s_j) pair within `threshold` implies that both
/// extended boxes intersect the iterated cover B_RS, so filtered items are
/// provably irrelevant — the filter never loses a marked entry (tested in
/// tests/core/plane_sweep_test.cc).
void FilterChildren(std::span<const SweepItem> r, std::span<const SweepItem> s,
                    double threshold, uint32_t max_iterations,
                    OpCounters* ops, std::vector<uint32_t>* r_survivors,
                    std::vector<uint32_t>* s_survivors);

/// Builds the prediction matrix by a flat leaf-level sweep over the two
/// page-MBR lists: entry (i, j) is marked iff MINDIST(r_pages[i],
/// s_pages[j]) <= threshold under `norm`. Used for sequence stores, whose
/// page summaries form a flat list (MR-/MRS-index leaf level).
PredictionMatrix BuildPredictionMatrixFlat(const std::vector<Mbr>& r_pages,
                                           const std::vector<Mbr>& s_pages,
                                           double threshold, Norm norm,
                                           OpCounters* ops);

/// Builds the prediction matrix by the hierarchical algorithm of Fig. 1:
/// simultaneous descent of the two R*-trees, filtering (Fig. 2) and
/// sweeping the child sets of each intersecting node pair. Produces exactly
/// the same matrix as the flat construction (property-tested) at much lower
/// CPU cost for large page counts.
///
/// `r_page_count`/`s_page_count` size the matrix; leaf entry ids of the
/// trees must be page indices into those ranges.
PredictionMatrix BuildPredictionMatrixHierarchical(
    const RStarTree& r_tree, const RStarTree& s_tree, uint32_t r_page_count,
    uint32_t s_page_count, double threshold, Norm norm,
    uint32_t filter_iterations, OpCounters* ops);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_PLANE_SWEEP_H_
