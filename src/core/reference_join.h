#ifndef PMJOIN_CORE_REFERENCE_JOIN_H_
#define PMJOIN_CORE_REFERENCE_JOIN_H_

#include <cstdint>
#include <span>

#include "common/pair_sink.h"
#include "data/generators.h"
#include "geom/distance.h"

namespace pmjoin {

/// Brute-force reference joins over the raw (pre-paging, pre-permutation)
/// inputs. Every operator in pmjoin must produce exactly these result sets
/// — the integration tests compare against them. Quadratic; test-scale
/// inputs only.

/// All (i, j) with distance(r_i, s_j) <= eps. Self join: i < j only.
void ReferenceVectorJoin(const VectorData& r, const VectorData& s,
                         double eps, Norm norm, bool self_join,
                         PairSink* sink);

/// Brute-force kNN join: for every record i of r, its k nearest records of
/// s ordered by (DistanceStat, id) — the deterministic tie-break at the
/// k-th distance. Unlike the ε self-join's unordered-pair convention, a
/// kNN self join is per-row: it only skips the identity pair i == j, so
/// (i, j) and (j, i) can both appear. When k >= |s| every (non-identity)
/// pair is a neighbor. Pairs are emitted i-ascending, then
/// (statistic, id)-ascending within a row.
void ReferenceKnnJoin(const VectorData& r, const VectorData& s, uint32_t k,
                      Norm norm, bool self_join, PairSink* sink);

/// All window pairs with L2 distance <= eps. Self join: x + L <= y only.
void ReferenceTimeSeriesJoin(std::span<const float> x,
                             std::span<const float> y, uint32_t window_len,
                             double eps, bool self_join, PairSink* sink);

/// All window pairs with edit distance <= max_edits. Self join:
/// x + L <= y only.
void ReferenceStringJoin(std::span<const uint8_t> x,
                         std::span<const uint8_t> y, uint32_t window_len,
                         uint32_t max_edits, bool self_join, PairSink* sink);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_REFERENCE_JOIN_H_
