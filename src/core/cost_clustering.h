#ifndef PMJOIN_CORE_COST_CLUSTERING_H_
#define PMJOIN_CORE_COST_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "common/op_counters.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "core/prediction_matrix.h"
#include "io/disk_model.h"

namespace pmjoin {

/// Cost-based Clustering (CC, §7.2 / Fig. 8): grows each cluster from a
/// seed in the densest region of the prediction matrix, repeatedly
/// expanding toward the marked entry that minimizes the increase in
/// modeled disk cost (random seek + sequential transfer) of reading the
/// cluster's pages, until the cluster fills the buffer.
///
/// Implementation notes relative to Fig. 8:
///  - The seed is drawn from the fullest bucket of a `hist_resolution`²
///    density histogram (step 2/3.a); the draw is deterministic given
///    `rng`.
///  - Fagin's threshold algorithm over the two expansion directions is
///    realized by evaluating the frontier candidate of each direction
///    (nearest unassigned entry left/right of the column range and
///    above/below the row range) — the head of each cost-sorted list —
///    and committing the cheapest (step 3.c).
///  - Expanding the rectangle to cover the chosen entry also absorbs the
///    unassigned entries that fall inside the grown rectangle, while the
///    buffer bound of B pages is respected.
///
/// The paper uses CC as an approximate lower bound on I/O cost (it is
/// CPU-expensive: O(w^{3/2}) worst case); `ops->cluster_ops` accounts that
/// preprocessing cost.
std::vector<Cluster> CostClustering(const PredictionMatrix& matrix,
                                    uint32_t buffer_pages,
                                    const DiskModel& model,
                                    uint32_t hist_resolution, Rng* rng,
                                    OpCounters* ops);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_COST_CLUSTERING_H_
