#ifndef PMJOIN_CORE_KNN_JOIN_H_
#define PMJOIN_CORE_KNN_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/op_counters.h"
#include "common/pair_sink.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/shard_planner.h"
#include "data/vector_dataset.h"
#include "geom/distance.h"
#include "geom/mbr.h"
#include "io/buffer_pool.h"

namespace pmjoin {

/// kNN join over paged vector datasets — the ε-join path's peer query
/// engine (DESIGN.md "kNN join").
///
/// Where the ε-join marks page pairs whose MINDIST clears a *fixed*
/// threshold (Theorem 1), the kNN join works with a *shrinking* one: each
/// R record maintains the statistic of its current k-th nearest neighbor
/// (+infinity until k candidates have been seen), which is an adaptive ε
/// that only tightens. Candidate S pages are expanded per R page in
/// ascending MINDIST order; a candidate whose page-level lower bound
/// exceeds every resident record's bound can be skipped — and so can every
/// candidate after it, since the row is sorted. The same per-record bound
/// short-circuits the kernel tiles (kernels::KnnCandidateBlock).
///
/// Determinism: neighbor sets are ordered by the exact double statistic
/// (DistanceStat) with an (statistic, id) tie-break, so the selected k are
/// the unique k smallest keys of the candidate multiset — independent of
/// expansion order, thread count, and the float filter (which only drops
/// rows provably beyond the bound). Results are byte-identical to
/// ReferenceKnnJoin.

struct KnnJoinOptions {
  /// Neighbors per R record (>= 1). When k >= |S| every (non-identity)
  /// pair is a neighbor and no pruning ever fires.
  uint32_t k = 1;
  Norm norm = Norm::kL2;
  /// Per-row self join: only the identity pair r_id == s_id is skipped
  /// (unlike the ε self-join's unordered-pair convention).
  bool self_join = false;
  /// When false, every S page is expanded for every R page — the
  /// brute-force I/O baseline the bench and the pruning tests compare
  /// against. Answers are identical either way.
  bool prune = true;
  /// Worker threads for the in-page kernel work (records of the R page are
  /// split into contiguous chunks). All buffer-pool access stays on the
  /// calling thread and every pruning decision is made at a page-pair
  /// barrier, so modeled IoStats and OpCounters are byte-identical to the
  /// serial run — the executor's serial-equivalence gate, upheld here.
  uint32_t num_threads = 1;

  /// When non-null, records each R page's exact charges into
  /// `(*page_charges)[r page]` (+=): the modeled IoStats delta of the
  /// page's expansion (its own pin plus every candidate S-page pin — all
  /// pool access is coordinator-side, so the delta is exact) and the
  /// OpCounters delta of its kernel work. The kNN analogue of
  /// ExecutorOptions::cluster_charges; the shard coordinator folds the
  /// charges into per-shard totals by R-page ownership. Must be sized >=
  /// r.num_pages(). Attribution changes nothing observable.
  std::vector<ClusterCharge>* page_charges = nullptr;
};

/// Per-row bounded neighbor heaps — the kNN analogue of PairSink.
///
/// Each R record owns a max-heap of at most k (statistic, s_id) entries
/// ordered lexicographically, so the k-th bound is the heap top and ties
/// at the k-th distance resolve to the smaller id. Rows are independent:
/// workers handed disjoint record ranges may Offer concurrently with no
/// locks, the same contiguous-chunk sharding discipline as
/// ShardedPairSink.
class KnnResultSink {
 public:
  struct Neighbor {
    double stat = 0.0;
    uint64_t id = 0;
  };

  /// Heaps for records [0, num_records), each holding at most `k`.
  KnnResultSink(uint64_t num_records, uint32_t k);

  /// Offers candidate `s_id` at exact statistic `stat` to record `r_id`'s
  /// heap; +infinity statistics (filtered kernel rows) are ignored.
  void Offer(uint64_t r_id, double stat, uint64_t s_id);

  /// Record `r_id`'s current k-th-neighbor statistic: +infinity while the
  /// heap is unfilled, else the largest retained statistic. This is the
  /// adaptive ε — it never grows.
  double BoundStat(uint64_t r_id) const;

  uint32_t k() const { return k_; }
  uint64_t num_records() const { return heaps_.size(); }

  /// Record `r_id`'s neighbors in ascending (statistic, id) order.
  std::vector<Neighbor> SortedNeighbors(uint64_t r_id) const;

  /// Emits every neighbor pair — r ascending, (statistic, id) ascending
  /// within a row — charging `ops->result_pairs` (when `ops` is non-null).
  /// Returns the number of pairs emitted.
  uint64_t Emit(PairSink* sink, OpCounters* ops) const;

 private:
  uint32_t k_;
  std::vector<std::vector<Neighbor>> heaps_;
};

/// Per-R-page candidate lists over the page MBRs: row p holds every S page
/// ascending by (page-level lower-bound statistic, page id) — the
/// materialized per-row priority queue of page pairs. The bound is the
/// MINDIST statistic in the same comparison space as the record statistic
/// (Mbr::MinDistSquared for L2, MinDist for L1/Linf), so it is directly
/// comparable against KnnResultSink::BoundStat.
///
/// The structure is ε-free — one build serves every k and both query
/// types' dataset pair — which is what lets the join server cache it
/// alongside the ε prediction matrices (server/artifact_cache.h).
class KnnCandidateMatrix {
 public:
  struct Candidate {
    double bound_stat = 0.0;
    uint32_t s_page = 0;
  };

  /// Builds the candidate lists from the two page-MBR sets. Charges
  /// `ops->mbr_tests` for the rows*cols MINDIST evaluations and
  /// `ops->cluster_ops` for the entries ordered (when `ops` is non-null).
  static KnnCandidateMatrix Build(const std::vector<Mbr>& r_mbrs,
                                  const std::vector<Mbr>& s_mbrs, Norm norm,
                                  OpCounters* ops);

  const std::vector<Candidate>& Row(uint32_t r_page) const {
    return rows_[r_page];
  }
  uint32_t rows() const { return static_cast<uint32_t>(rows_.size()); }
  uint32_t cols() const { return cols_; }

  /// Structural audit: every row lists each S page exactly once, sorted
  /// ascending by (bound, page). O(rows*cols); tests and paranoid builds.
  Status ValidateInvariants() const;

 private:
  std::vector<std::vector<Candidate>> rows_;
  uint32_t cols_ = 0;
};

/// Runs the kNN join: for every record of `r`, the k nearest records of
/// `s` under `options.norm`, accumulated into `results` (which must be
/// shaped (r.num_records(), options.k)). All page access goes through
/// `pool` (both datasets must live on its backend); `ops` is charged the
/// deterministic CPU cost — `dims` distance terms per record pair of every
/// expanded page pair (early abandoning changes wall time, never the
/// charge) plus one filter check per candidate page considered. Pass a
/// `thread_pool` to parallelize kernel work per KnnJoinOptions::num_threads;
/// results and all counters are byte-identical to the serial run.
Status KnnJoinVectors(const VectorDataset& r, const VectorDataset& s,
                      const KnnCandidateMatrix& matrix,
                      const KnnJoinOptions& options, BufferPool* pool,
                      KnnResultSink* results, OpCounters* ops,
                      ThreadPool* thread_pool = nullptr);

}  // namespace pmjoin

#endif  // PMJOIN_CORE_KNN_JOIN_H_
