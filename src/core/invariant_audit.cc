#include "core/invariant_audit.h"

#include <algorithm>
#include <sstream>

namespace pmjoin {

namespace {

/// The distinct, ascending values of `xs` selected by `field` — what a
/// cluster's row/col list must equal exactly.
std::vector<uint32_t> DistinctFieldValues(const std::vector<MatrixEntry>& xs,
                                          uint32_t MatrixEntry::*field) {
  std::vector<uint32_t> out;
  out.reserve(xs.size());
  for (const MatrixEntry& e : xs) out.push_back(e.*field);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Status ValidateSquareClusters(const PredictionMatrix& matrix,
                              const std::vector<Cluster>& clusters,
                              uint32_t buffer_pages) {
  PMJOIN_RETURN_IF_ERROR(ValidateClustering(matrix, clusters, buffer_pages));
  const uint32_t half = std::max<uint32_t>(1, buffer_pages / 2);
  for (size_t i = 0; i < clusters.size(); ++i) {
    const Cluster& cluster = clusters[i];
    if (cluster.rows != DistinctFieldValues(cluster.entries,
                                            &MatrixEntry::row) ||
        cluster.cols != DistinctFieldValues(cluster.entries,
                                            &MatrixEntry::col)) {
      std::ostringstream os;
      os << "cluster " << i
         << ": row/col lists are not exactly the entries' rows/cols";
      return Status::Internal(os.str());
    }
    if (cluster.rows.size() > half) {
      std::ostringstream os;
      os << "unbalanced square cluster " << i << ": " << cluster.rows.size()
         << " rows exceed the equal-split bound B/2 = " << half
         << " (Theorem 2)";
      return Status::Internal(os.str());
    }
  }
  return Status::OK();
}

Status ValidateMatrixCoversPairs(
    const PredictionMatrix& matrix, const VectorDataset& r,
    const VectorDataset& s, bool self_join,
    const std::vector<std::pair<uint64_t, uint64_t>>& reference_pairs) {
  PMJOIN_RETURN_IF_ERROR(matrix.ValidateInvariants());
  for (const auto& [rid, sid] : reference_pairs) {
    const uint32_t r_page = r.PageOfOriginalId(rid);
    const uint32_t s_page = s.PageOfOriginalId(sid);
    bool covered = matrix.IsMarked(r_page, s_page);
    // A self join emits each unordered pair once (rid < sid), but the
    // marked entry may sit on either side of the diagonal.
    if (!covered && self_join) covered = matrix.IsMarked(s_page, r_page);
    if (!covered) {
      std::ostringstream os;
      os << "result pair (" << rid << ", " << sid << ") maps to page pair ("
         << r_page << ", " << s_page
         << ") which the matrix does not mark (Theorem 1 violated)";
      return Status::Internal(os.str());
    }
  }
  return Status::OK();
}

}  // namespace pmjoin
