#ifndef PMJOIN_CORE_JOINERS_H_
#define PMJOIN_CORE_JOINERS_H_

#include <cstdint>

#include "common/op_counters.h"
#include "common/pair_sink.h"
#include "data/vector_dataset.h"
#include "geom/distance.h"
#include "io/page_file.h"
#include "seq/sequence_store.h"

namespace pmjoin {

/// In-memory join of one page pair. Implementations embody the join
/// predicate (vector ε-join, subsequence ε-join, string k-edit join) and
/// the CPU accounting; operators (NLJ, pm-NLJ, SC/CC executor, baselines)
/// decide *which* page pairs to join and in what order.
///
/// The executor guarantees both pages are buffer-resident before calling
/// `JoinPages` (I/O is charged by the buffer pool, never here).
class PagePairJoiner {
 public:
  virtual ~PagePairJoiner() = default;

  /// Joins page `r_page` of R with page `s_page` of S: emits every
  /// predicate-satisfying record/window pair to `sink` and charges the CPU
  /// counters for the work performed.
  virtual void JoinPages(uint32_t r_page, uint32_t s_page, PairSink* sink,
                         OpCounters* ops) = 0;

  /// Charges `ops` the deterministic CPU cost of a *record-level scan* of
  /// the page pair — what an operator with no index summaries (plain NLJ)
  /// performs — excluding verification work that only fires on
  /// near-matches. Plain NLJ charges this for every page pair; for
  /// unmarked pairs no verification can fire (Theorem 1 plus the
  /// lower-bounding filters), so charging this instead of executing the
  /// kernel leaves all reported numbers identical to a real execution at a
  /// fraction of the wall time (the DESIGN.md "simulation shortcut").
  /// Index-assisted operators (pm-NLJ, SC, CC) never call this — their
  /// JoinPages uses the sub-box summaries and charges what it does.
  virtual void ChargeScanned(uint32_t r_page, uint32_t s_page,
                             OpCounters* ops) const = 0;
};

/// Identifies the two sides of a join for the I/O layer plus the joiner
/// that processes page pairs. For a self join, `r_file == s_file` and the
/// joiner applies the de-duplication rule (emit each unordered pair once).
struct JoinInput {
  uint32_t r_file = 0;
  uint32_t s_file = 0;
  uint32_t r_pages = 0;
  uint32_t s_pages = 0;
  bool self_join = false;
  PagePairJoiner* joiner = nullptr;

  PageId RPage(uint32_t p) const { return PageId{r_file, p}; }
  PageId SPage(uint32_t p) const { return PageId{s_file, p}; }
};

/// ε-join of two vector datasets: emits (orig_id_r, orig_id_s) for record
/// pairs with distance <= eps under `norm`. For a self join (r == s), each
/// unordered pair is emitted once (orig_id_r < orig_id_s).
///
/// CPU accounting: every record pair costs `dims` distance terms (the
/// deterministic full-evaluation cost; the implementation may early-abandon
/// for wall time, the charge does not depend on it).
class VectorPairJoiner : public PagePairJoiner {
 public:
  VectorPairJoiner(const VectorDataset* r, const VectorDataset* s, double eps,
                   Norm norm, bool self_join);

  void JoinPages(uint32_t r_page, uint32_t s_page, PairSink* sink,
                 OpCounters* ops) override;
  void ChargeScanned(uint32_t r_page, uint32_t s_page,
                     OpCounters* ops) const override;

  /// The page-level lower-bound threshold for the prediction matrix: raw ε.
  double MatrixThreshold() const { return eps_; }

 private:
  const VectorDataset* r_;
  const VectorDataset* s_;
  double eps_;
  Norm norm_;
  bool self_join_;
};

/// Subsequence ε-join of two time series (L2 on length-L windows). Emits
/// (window_start_r, window_start_s); self joins emit each unordered,
/// non-overlapping pair once (r + L <= s).
class TimeSeriesPairJoiner : public PagePairJoiner {
 public:
  TimeSeriesPairJoiner(const TimeSeriesStore* r, const TimeSeriesStore* s,
                       double eps, bool self_join);

  void JoinPages(uint32_t r_page, uint32_t s_page, PairSink* sink,
                 OpCounters* ops) override;
  void ChargeScanned(uint32_t r_page, uint32_t s_page,
                     OpCounters* ops) const override;

  /// Threshold in PAA feature space: ε / sqrt(L/f) (see seq/paa.h).
  double MatrixThreshold() const;

 private:
  const TimeSeriesStore* r_;
  const TimeSeriesStore* s_;
  double eps_;
  bool self_join_;
};

/// Subsequence edit-distance join of two strings (ED <= max_edits on
/// length-L windows). Self joins emit each unordered, non-overlapping pair
/// once.
class StringPairJoiner : public PagePairJoiner {
 public:
  StringPairJoiner(const StringSequenceStore* r,
                   const StringSequenceStore* s, uint32_t max_edits,
                   bool self_join);

  void JoinPages(uint32_t r_page, uint32_t s_page, PairSink* sink,
                 OpCounters* ops) override;
  void ChargeScanned(uint32_t r_page, uint32_t s_page,
                     OpCounters* ops) const override;

  /// Threshold in frequency space under L1: 2·max_edits (since
  /// ED >= L1/2; see seq/frequency_vector.h).
  double MatrixThreshold() const { return 2.0 * max_edits_; }

 private:
  const StringSequenceStore* r_;
  const StringSequenceStore* s_;
  uint32_t max_edits_;
  bool self_join_;
};

}  // namespace pmjoin

#endif  // PMJOIN_CORE_JOINERS_H_
